// Universe-scaling benchmark: how many simulated rank-steps per second
// does one whole modeled-mode universe sustain as the rank count grows?
// This is the curve the cooperative rank scheduler is judged by: each
// entry runs a full pattern measurement (metadata-only payloads,
// sampled digest verification) at a fixed 8 KiB strided layout, from a
// 16-rank ring up through graph(ring:1024), plus the dense
// transpose(64) and halo3d(8x8x8) geometries, and reports wall-clock
// rank-steps/sec for direct execution and — where the cell compiles —
// for compile-once/replay-many.
//
// This is a wall-clock benchmark like BENCH_engine_scale: the emitted
// times vary run to run and the JSON is not a golden file.  Flags are
// the engine's shared set; --pattern substitutes the measured pattern
// set, --reps the per-cell step count (default 3 under --quick, 8
// otherwise).  Exit status asserts every cell self-verified and — for
// the default set — that the curve reaches at least 1024 ranks, that
// graph(ring:1024) sustains at least half the rank-steps/sec of
// graph(ring:16) (the flattened-decay gate the hot-path allocation
// overhaul is judged by), and that the hot path stayed pooled
// (allocations per message below 1).
#include <algorithm>
#include <iostream>
#include <vector>

#include "figure_common.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const BenchCli cli = BenchCli::parse(argc, argv);
  // Whole-universe steps are the expensive unit here, so the bench's
  // own defaults (8, or 3 under --quick) replace the harness's 20;
  // an explicit --reps still wins.
  const int reps = cli.quick ? std::min(cli.reps, 3)
                             : (cli.reps == 20 ? 8 : cli.reps);

  const std::vector<UniverseScaleRecord> records =
      benchcommon::measure_universe_scale(reps, cli.patterns);
  for (const UniverseScaleRecord& r : records)
    std::cout << r.pattern << " x " << r.scheme << " (" << r.nranks
              << " ranks, " << r.reps << " reps): direct "
              << r.direct_seconds << "s ("
              << r.direct_rank_steps_per_sec() << " rank-steps/s), replay "
              << r.replay_seconds << "s, allocs/msg "
              << r.perf.allocs_per_message() << ", verified "
              << (r.verified ? "yes" : "NO") << "\n";

  if (cli.csv) {
    benchcommon::write_store_file(
        cli.out_dir, "BENCH_universe_scale.json", [&](std::ostream& os) {
          ResultStore::write_bench_universe_scale_json(os, records);
        });
  }

  bool ok = !records.empty();
  int max_ranks = 0;
  for (const UniverseScaleRecord& r : records) {
    ok = ok && r.verified;
    max_ranks = std::max(max_ranks, r.nranks);
  }
  if (cli.patterns.empty()) {
    ok = ok && max_ranks >= 1024;
    // The throughput-decay gate: before the hot-path allocation
    // overhaul the 1k-rank ring ran ~4x slower than the 16-rank ring
    // per rank-step; pooled envelopes/requests plus the O(E) pattern
    // map must hold the decay within 2x.  The pooling gate rides
    // along: with warm pools, per-message heap allocations sit near
    // zero even at the default low rep counts — 1.0 is the
    // unmistakably-broken threshold, not the target.
    const UniverseScaleRecord* ring16 = nullptr;
    const UniverseScaleRecord* ring1024 = nullptr;
    for (const UniverseScaleRecord& r : records) {
      if (r.pattern == "graph(ring:16)") ring16 = &r;
      if (r.pattern == "graph(ring:1024)") ring1024 = &r;
    }
    if (ring16 != nullptr && ring1024 != nullptr) {
      const double decay = ring1024->direct_rank_steps_per_sec() /
                           std::max(ring16->direct_rank_steps_per_sec(), 1.0);
      if (decay < 0.5) {
        std::cerr << "universe_scale: ring:1024 sustains only " << decay
                  << "x of ring:16 rank-steps/sec (gate: >= 0.5)\n";
        ok = false;
      }
      if (ring1024->perf.allocs_per_message() > 1.0) {
        std::cerr << "universe_scale: ring:1024 hot path allocated "
                  << ring1024->perf.allocs_per_message()
                  << " per message (gate: <= 1.0)\n";
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
