// Figure 3: "Time and bandwidth on a Cray XC40 using the native MPI".
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return benchcommon::run_figure(
      {&minimpi::MachineProfile::ls5_cray(), "fig3_ls5_cray",
       "Figure 3 - Packing on ls5: Lonestar5 Cray XC40, Cray MPICH"},
      argc, argv);
}
