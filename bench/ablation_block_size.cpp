// Ablation for paper §4.7 items 1-2:
//   "Types with less regular spacing may give worse performance due to
//    decreased use of prefetch streams"; "Types with larger block sizes
//    may perform better due to higher cache line utilization".
//
// Fixes the payload at 8 MB and varies (a) the block length of a regular
// strided layout and (b) regular vs irregular (FEM-boundary) spacing,
// reporting copying / vector-type / packing(v) times.
#include <iomanip>
#include <iostream>

#include "figure_common.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const auto args = benchcommon::BenchArgs::parse(argc, argv);
  constexpr std::size_t payload = 8'000'000;
  constexpr std::size_t elems = payload / 8;
  const std::vector<std::string> schemes = {"copying", "vector type",
                                            "packing(v)"};
  minimpi::UniverseOptions opts;
  opts.nranks = 2;
  opts.functional_payload_limit = 1 << 20;
  HarnessConfig hc;
  hc.reps = args.reps;

  std::cout << "== Ablation: block size and spacing regularity (paper 4.7) "
               "==\npayload fixed at 8 MB, skx-impi\n\n"
            << std::setw(22) << "layout";
  for (const auto& s : schemes) std::cout << std::setw(14) << s;
  std::cout << "\n";

  auto run_row = [&](const Layout& layout) {
    std::cout << std::setw(22) << layout.name();
    std::vector<double> times;
    for (const auto& s : schemes) {
      const RunResult r = run_experiment(opts, s, layout, hc);
      times.push_back(r.time());
      std::cout << std::setw(14) << std::scientific << std::setprecision(3)
                << r.time();
    }
    std::cout << "\n";
    return times;
  };

  std::vector<double> blocklen1, blocklen64;
  for (const std::size_t blocklen : {1, 2, 4, 8, 16, 64}) {
    const auto t =
        run_row(Layout::strided(elems / blocklen, blocklen, 2 * blocklen));
    if (blocklen == 1) blocklen1 = t;
    if (blocklen == 64) blocklen64 = t;
  }
  const auto irregular = run_row(Layout::fem_boundary(elems, elems * 2));

  // Larger blocks must speed up every copy-bound scheme (the gather is
  // ~4x faster, diluted by the size-invariant wire time); irregular
  // spacing must not beat the regular stride-2 layout.
  const bool blocks_help = blocklen64[0] < blocklen1[0] / 1.5;
  const bool irregular_not_faster = irregular[0] >= blocklen1[0] * 0.99;
  std::cout << "\nblocklen 64 vs 1 copying speedup: " << std::fixed
            << std::setprecision(2) << blocklen1[0] / blocklen64[0]
            << "x (paper: larger blocks perform better)\n"
            << "irregular spacing no faster than regular: "
            << (irregular_not_faster ? "yes" : "NO") << "\n";
  return blocks_help && irregular_not_faster ? 0 : 1;
}
