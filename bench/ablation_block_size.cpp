// Ablation for paper §4.7 items 1-2:
//   "Types with less regular spacing may give worse performance due to
//    decreased use of prefetch streams"; "Types with larger block sizes
//    may perform better due to higher cache line utilization".
//
// One plan: the payload fixed at 8 MB, the layout axis swept over (a)
// regular strided layouts of growing block length and (b) irregular
// (FEM-boundary) spacing, reporting copying / vector-type / packing(v)
// times per axis value.
#include <iomanip>
#include <iostream>

#include "figure_common.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const BenchCli cli = BenchCli::parse(argc, argv);
  cli.reject_patterns("ablation_block_size");
  constexpr std::size_t payload = 8'000'000;

  ExperimentPlan plan;
  plan.name = "ablation_block_size";
  plan.schemes = {"copying", "vector type", "packing(v)"};
  plan.sizes_bytes = {payload};
  plan.harness.reps = cli.effective_reps();
  plan.layouts.clear();
  for (const std::size_t blocklen : {1, 2, 4, 8, 16, 64}) {
    plan.layouts.push_back(
        {"", [blocklen](std::size_t n) {
           return Layout::strided(n / blocklen, blocklen, 2 * blocklen);
         }});
  }
  plan.layouts.push_back({"", [](std::size_t n) {
                            return Layout::fem_boundary(n, n * 2);
                          }});

  const PlanResult result = run_plan(plan, ExecutorOptions{cli.jobs});

  std::cout << "== Ablation: block size and spacing regularity (paper 4.7) "
               "==\npayload fixed at 8 MB, skx-impi\n\n"
            << std::setw(22) << "layout";
  for (const auto& s : plan.schemes) std::cout << std::setw(14) << s;
  std::cout << "\n";

  std::vector<std::vector<double>> rows;
  for (std::size_t li = 0; li < plan.layouts.size(); ++li) {
    const SweepResult& r = result.sweep(0, li);
    std::cout << std::setw(22) << r.layout_name;
    std::vector<double> times;
    for (std::size_t ci = 0; ci < r.schemes.size(); ++ci) {
      times.push_back(r.time(0, ci));
      std::cout << std::setw(14) << std::scientific << std::setprecision(3)
                << r.time(0, ci);
    }
    std::cout << "\n";
    rows.push_back(std::move(times));
  }
  const std::vector<double>& blocklen1 = rows.front();
  const std::vector<double>& blocklen64 = rows[5];
  const std::vector<double>& irregular = rows.back();

  // Larger blocks must speed up every copy-bound scheme (the gather is
  // ~4x faster, diluted by the size-invariant wire time); irregular
  // spacing must not beat the regular stride-2 layout.
  const bool blocks_help = blocklen64[0] < blocklen1[0] / 1.5;
  const bool irregular_not_faster = irregular[0] >= blocklen1[0] * 0.99;
  std::cout << "\nblocklen 64 vs 1 copying speedup: " << std::fixed
            << std::setprecision(2) << blocklen1[0] / blocklen64[0]
            << "x (paper: larger blocks perform better)\n"
            << "irregular spacing no faster than regular: "
            << (irregular_not_faster ? "yes" : "NO") << "\n";
  return blocks_help && irregular_not_faster ? 0 : 1;
}
