// Host wall-clock micro-benchmarks of the datatype engine (the one part
// of the reproduction where real hardware speed matters): is our
// MPI_Pack as fast as a hand-written gather loop, as the paper found
// for the vendors' implementations (§4.3)?
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "minimpi/datatype/pack.hpp"

using namespace minimpi;

namespace {

std::vector<double> make_source(std::size_t doubles) {
  std::vector<double> v(doubles);
  std::iota(v.begin(), v.end(), 0.0);
  return v;
}

void BM_MemcpyContiguous(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const auto src = make_source(bytes / 8);
  std::vector<double> dst(bytes / 8);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), bytes);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

void BM_ManualStridedGather(benchmark::State& state) {
  // The paper's §2.2 user copy loop: every other double.
  const std::size_t n = static_cast<std::size_t>(state.range(0)) / 8;
  const auto src = make_source(2 * n);
  std::vector<double> dst(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[2 * i];
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_PackVectorType(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0)) / 8;
  const auto src = make_source(2 * n);
  std::vector<std::byte> dst(n * 8);
  Datatype vec = Datatype::vector(n, 1, 2, Datatype::float64());
  vec.commit();
  for (auto _ : state) {
    std::size_t pos = 0;
    pack(src.data(), 1, vec, dst.data(), dst.size(), pos);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_PackBlockedVectorType(benchmark::State& state) {
  // Blocklen 8: the engine should approach memcpy speed (§4.7 item 2).
  const std::size_t n = static_cast<std::size_t>(state.range(0)) / 8;
  const auto src = make_source(2 * n);
  std::vector<std::byte> dst(n * 8);
  Datatype vec = Datatype::vector(n / 8, 8, 16, Datatype::float64());
  vec.commit();
  for (auto _ : state) {
    std::size_t pos = 0;
    pack(src.data(), 1, vec, dst.data(), dst.size(), pos);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_PackElementwise(benchmark::State& state) {
  // packing(e): one pack call per element — the paper's worst case.
  const std::size_t n = static_cast<std::size_t>(state.range(0)) / 8;
  const auto src = make_source(2 * n);
  std::vector<std::byte> dst(n * 8);
  const Datatype f64 = Datatype::float64();
  for (auto _ : state) {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < n; ++i)
      pack(&src[2 * i], 1, f64, dst.data(), dst.size(), pos);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_UnpackVectorType(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0)) / 8;
  std::vector<std::byte> src(n * 8, std::byte{1});
  std::vector<double> dst(2 * n);
  Datatype vec = Datatype::vector(n, 1, 2, Datatype::float64());
  vec.commit();
  for (auto _ : state) {
    std::size_t pos = 0;
    unpack(src.data(), src.size(), pos, dst.data(), 1, vec);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_SubarrayPack2D(benchmark::State& state) {
  // Interior of a square 2-D array: the FEM/stencil staging pattern.
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = static_cast<std::size_t>(
      std::max<double>(4.0, std::sqrt(static_cast<double>(bytes / 8))));
  const std::size_t sizes[] = {dim, dim};
  const std::size_t sub[] = {dim - 2, dim - 2};
  const std::size_t starts[] = {1, 1};
  Datatype t = Datatype::subarray(sizes, sub, starts, Datatype::float64());
  t.commit();
  const auto src = make_source(dim * dim);
  std::vector<std::byte> dst(pack_size(1, t));
  for (auto _ : state) {
    std::size_t pos = 0;
    pack(src.data(), 1, t, dst.data(), dst.size(), pos);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dst.size()));
}

}  // namespace

BENCHMARK(BM_MemcpyContiguous)->Arg(1 << 13)->Arg(1 << 17)->Arg(1 << 21);
BENCHMARK(BM_ManualStridedGather)->Arg(1 << 13)->Arg(1 << 17)->Arg(1 << 21);
BENCHMARK(BM_PackVectorType)->Arg(1 << 13)->Arg(1 << 17)->Arg(1 << 21);
BENCHMARK(BM_PackBlockedVectorType)->Arg(1 << 13)->Arg(1 << 17)->Arg(1 << 21);
BENCHMARK(BM_PackElementwise)->Arg(1 << 13)->Arg(1 << 17);
BENCHMARK(BM_UnpackVectorType)->Arg(1 << 13)->Arg(1 << 17)->Arg(1 << 21);
BENCHMARK(BM_SubarrayPack2D)->Arg(1 << 13)->Arg(1 << 17)->Arg(1 << 21);
