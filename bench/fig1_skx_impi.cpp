// Figure 1: "Time and bandwidth on Stampede2-skx using Intel MPI".
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return benchcommon::run_figure(
      {&minimpi::MachineProfile::skx_impi(), "fig1_skx_impi",
       "Figure 1 - Packing on skx-i3: Stampede2 Skylake, Intel MPI"},
      argc, argv);
}
