// Validation: the simulated runtime (mailboxes, promises, virtual-clock
// plumbing) must reproduce the closed-form analytic composition of the
// cost model exactly.  Any drift would mean the harness measures
// simulator artifacts instead of the model.
//
// One plan over schemes x sizes; each measured cell is compared against
// the analytic prediction of one steady-state ping-pong.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "figure_common.hpp"

using namespace ncsend;
using minimpi::BlockStats;
using minimpi::CostModel;
using minimpi::MachineProfile;

namespace {

/// Closed-form steady-state ping-pong time (receiver pre-posted).
double predict(const CostModel& m, const std::string& scheme,
               std::size_t bytes, const BlockStats& stats) {
  const MachineProfile& p = m.profile();
  const bool noncontig = stats.block_count > 1;

  // User-space work before the send call.
  double local = 0.0;
  if (scheme == "copying") {
    local = m.user_copy_time(bytes, stats);
  } else if (scheme == "packing(v)") {
    local = m.call_overhead(1) + m.user_copy_time(bytes, stats);
  } else if (scheme == "packing(e)") {
    local = m.call_overhead(bytes / 8) + m.user_copy_time(bytes, stats);
  }
  // Schemes that hand MPI a contiguous buffer.
  const bool wire_contig =
      scheme == "reference" || scheme == "copying" ||
      scheme == "packing(v)" || scheme == "packing(e)";
  const BlockStats contig{1, bytes, bytes, bytes};
  const BlockStats& wire_stats = wire_contig ? contig : stats;

  double send_path;
  if (scheme == "buffered") {
    send_path = p.send_overhead_s + p.bsend_overhead_s +
                static_cast<double>(bytes) / p.bsend_copy_bandwidth_Bps *
                    m.block_factor(stats) +
                m.internal_contiguous_copy_time(bytes) +
                (m.is_eager(bytes) ? 0.0 : m.handshake_time()) +
                (bytes > p.internal_buffer_bytes
                     ? static_cast<double>(bytes - p.internal_buffer_bytes) /
                           p.internal_copy_bandwidth_Bps * p.large_msg_penalty
                     : 0.0) +
                m.wire_time(bytes) + p.net_latency_s;
  } else if (m.is_eager(bytes)) {
    const bool nc = !wire_contig && noncontig;
    send_path = p.send_overhead_s +
                (nc ? m.internal_staging_time(bytes, wire_stats)
                    : m.internal_contiguous_copy_time(bytes)) +
                m.wire_time(bytes) + p.net_latency_s;
  } else {
    const bool nc = !wire_contig && noncontig;
    send_path = p.send_overhead_s + m.handshake_time() +
                (nc ? m.internal_staging_time(bytes, wire_stats) : 0.0) +
                m.wire_time(bytes) + p.net_latency_s;
  }
  // Receive completion (expected message: no copy-out) + zero-byte pong.
  const double recv_side = p.recv_overhead_s;
  const double pong = p.send_overhead_s + p.net_latency_s + p.recv_overhead_s;
  return local + send_path + recv_side + pong;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = BenchCli::parse(argc, argv);
  cli.reject_patterns("model_validation");
  ExperimentPlan plan;
  plan.name = "model_validation";
  plan.profiles = {&MachineProfile::skx_impi()};
  plan.schemes = {"reference", "copying",    "buffered",  "vector type",
                  "subarray",  "packing(e)", "packing(v)"};
  plan.sizes_bytes = {1'000,      100'000,     1'000'000,
                      10'000'000, 100'000'000, 1'000'000'000};
  plan.harness.reps = std::min(cli.effective_reps(), 5);
  plan.wtime_resolution = 0.0;  // exact clocks for the comparison
  const SweepResult r = run_plan(plan, ExecutorOptions{cli.jobs}).sweep(0, 0);
  const CostModel model(MachineProfile::skx_impi());

  std::cout << "== Model validation: harness measurement vs closed-form "
               "prediction (skx-impi) ==\n\n"
            << std::setw(12) << "bytes" << std::setw(14) << "scheme"
            << std::setw(15) << "measured" << std::setw(15) << "predicted"
            << std::setw(13) << "rel. error\n";
  double worst = 0.0;
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
    const std::size_t bytes = r.sizes_bytes[si];
    const Layout layout = Layout::strided(bytes / 8, 1, 2);
    for (std::size_t ci = 0; ci < r.schemes.size(); ++ci) {
      const double measured = r.time(si, ci);
      const double predicted = predict(model, r.schemes[ci],
                                       layout.payload_bytes(),
                                       layout.stats());
      const double err = std::abs(measured / predicted - 1.0);
      worst = std::max(worst, err);
      std::cout << std::setw(12) << bytes << std::setw(14) << r.schemes[ci]
                << std::setw(15) << std::scientific << std::setprecision(4)
                << measured << std::setw(15) << predicted << std::setw(13)
                << std::setprecision(2) << err << "\n";
    }
  }
  std::cout << "\nworst relative error: " << std::scientific << worst
            << (worst < 1e-6 ? "  (simulator == analytic model)" : "  TOO LARGE")
            << "\n";
  return worst < 1e-6 ? 0 : 1;
}
