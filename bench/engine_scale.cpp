// Engine-throughput benchmark: how fast does the simulator itself run,
// and what does plan compilation buy?  Each entry measures one grid
// cell two ways —
//
//   direct    the full stack every iteration: scheme charge sequences,
//             runtime protocol engine, one OS thread per rank
//   compiled  capture a 2-rep charge program once (ncsend/plan/), then
//             interpret the frozen action arrays for all iterations on
//             a single thread
//
// and reports wall-clock cells/sec and rank-steps/sec (nranks x iters,
// the unit the ROADMAP's >= 2x replay target counts).  The replayed
// timing statistics are byte-identical to direct execution (the
// `identical` field asserts it), so the speedup is free.
//
// This is a wall-clock benchmark like BENCH_pack_engine: the emitted
// times vary run to run and the JSON is not a golden file.  Flags are
// the engine's shared set; --iters sets the per-cell iteration count
// (default 60 under --quick, 200 otherwise).
#include <iostream>
#include <vector>

#include "figure_common.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const BenchCli cli = BenchCli::parse(argc, argv);
  cli.reject_patterns("engine_scale");
  const int iters = cli.iters > 0 ? cli.iters : (cli.quick ? 60 : 200);

  const std::vector<EngineScaleRecord> records =
      benchcommon::measure_engine_scale(iters);
  for (const EngineScaleRecord& r : records)
    std::cout << r.pattern << " x " << r.scheme << " (" << r.nranks
              << " ranks, " << r.iters << " iters): direct "
              << r.direct_seconds << "s, compiled " << r.compiled_seconds
              << "s, speedup " << r.speedup() << "x, identical "
              << (r.identical ? "yes" : "NO") << "\n";

  if (cli.csv) {
    benchcommon::write_store_file(
        cli.out_dir, "BENCH_engine_scale.json", [&](std::ostream& os) {
          ResultStore::write_bench_engine_scale_json(os, records);
        });
  }

  bool ok = records.size() == 2;
  for (const EngineScaleRecord& r : records) ok = ok && r.identical;
  return ok ? 0 : 1;
}
