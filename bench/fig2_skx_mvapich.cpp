// Figure 2: "Time and bandwidth on Stampede2-skx nodes using mvapich2".
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return benchcommon::run_figure(
      {&minimpi::MachineProfile::skx_mvapich2(), "fig2_skx_mvapich",
       "Figure 2 - Packing on skx-v3: Stampede2 Skylake, MVAPICH2"},
      argc, argv);
}
