// Extension ablation: pipelined packing vs the paper's winner.
//
// The paper concludes that packing a derived type into user space and
// sending contiguously is the consistently best scheme (§5).  Its cost
// is still pack + wire, serialized.  This ablation runs the natural next
// step — chunked, double-buffered packing with in-flight isends — and
// quantifies how much of the serialization it recovers, as a function of
// message size, on all four machine profiles: one plan over the full
// profile axis, executed in parallel by the engine.
#include <iomanip>
#include <iostream>

#include "figure_common.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const BenchCli cli = BenchCli::parse(argc, argv);
  cli.reject_patterns("ablation_pipelined_pack");
  ExperimentPlan plan;
  plan.name = "ablation_pipelined_pack";
  plan.profiles.clear();
  for (const auto& name : minimpi::MachineProfile::names())
    plan.profiles.push_back(&minimpi::MachineProfile::by_name(name));
  plan.sizes_bytes = log_sizes(1e5, 1e9, 1);
  plan.schemes = {"reference", "packing(v)", "packing(p)"};
  // Virtual times are deterministic and the chunked scheme costs real
  // host work per chunk (a 1 GB message is ~2000 rendezvous chunks),
  // so a handful of repetitions suffices.
  plan.harness.reps = std::min(cli.effective_reps(), 5);
  plan.wtime_resolution = 0.0;

  const PlanResult result = run_plan(plan, ExecutorOptions{cli.jobs});

  bool overlap_wins_large = true;
  std::cout << "== Ablation: pipelined packing(p) vs packing(v) ==\n"
            << "chunk size " << PackingPipelinedScheme::chunk_bytes
            << " B, double-buffered isends\n";
  for (std::size_t pi = 0; pi < plan.profiles.size(); ++pi) {
    const SweepResult& r = result.sweep(pi, 0);
    std::cout << "\n-- " << r.profile_name << " --\n"
              << std::setw(12) << "bytes" << std::setw(14) << "packing(v)"
              << std::setw(14) << "packing(p)" << std::setw(12)
              << "speedup\n";
    for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
      const double pv = r.time(si, 1);
      const double pp = r.time(si, 2);
      std::cout << std::setw(12) << r.sizes_bytes[si] << std::setw(14)
                << std::scientific << std::setprecision(3) << pv
                << std::setw(14) << pp << std::setw(11) << std::fixed
                << std::setprecision(2) << pv / pp << "x\n";
      if (r.sizes_bytes[si] >= 100'000'000 && pp >= pv)
        overlap_wins_large = false;
    }
  }
  std::cout << "\npipelined packing faster than packing(v) at >= 1e8 B on "
               "every profile: "
            << (overlap_wins_large ? "yes" : "NO") << "\n"
            << "(caveat: the fabric model does not serialize concurrent "
               "chunks on the wire; with pack slower than the wire on all "
               "profiles, arrivals are pack-spaced and the approximation "
               "is sound)\n";
  return overlap_wins_large ? 0 : 1;
}
