#pragma once
/// \file figure_common.hpp
/// \brief Shared driver for the per-figure benchmark binaries.
///
/// Each `figN_*` binary reproduces one figure of the paper as a thin
/// plan registration against the experiment engine: the full
/// sizes x schemes sweep on one machine profile, executed over the
/// engine's worker pool, printed as the three panels (time / bandwidth /
/// slowdown) plus ASCII plots, and written as CSV + JSON to
/// `<out-dir>/<id>.{csv,json}` through the unified `ResultStore`
/// writers.  Flags are the engine's shared set (`--help` lists them);
/// unknown flags exit with status 2.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ncsend/ncsend.hpp"
#include "ncsend/plan/comm_plan.hpp"

namespace benchcommon {

struct FigureSpec {
  const minimpi::MachineProfile* profile;
  std::string id;     ///< <out-dir>/<id>.{csv,json}
  std::string title;  ///< printed header
};

/// \brief Write one store through a writer member into `<dir>/<name>`,
/// creating the directory; reports the path (or a warning) on `std::cout`
/// / `std::cerr`.  Returns false if the file could not be opened.
template <class WriteFn>
inline bool write_store_file(const std::string& dir, const std::string& name,
                             WriteFn&& write) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "could not open " << path << " for writing\n";
    return false;
  }
  write(os);
  std::cout << "wrote " << path << "\n";
  return true;
}

/// \brief The `BENCH_engine_scale` measurement, shared by the
/// standalone `engine_scale` bench and `run_all`: wall-clock one cell
/// (8 KiB stride-2 "vector type" on skx) per pattern, direct execution
/// vs compile-once/replay-many, `iters` iterations each way.  The
/// replayed timing statistics must be byte-identical to direct
/// execution; the per-record `identical` flag reports it.
inline std::vector<ncsend::EngineScaleRecord> measure_engine_scale(
    int iters) {
  namespace nc = ncsend;
  const auto wall_seconds = [](auto&& fn) {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  const auto same_timing = [](const nc::TimingStats& a,
                              const nc::TimingStats& b) {
    return a.mean == b.mean && a.stddev == b.stddev && a.min == b.min &&
           a.max == b.max && a.samples == b.samples &&
           a.rejected == b.rejected;
  };

  minimpi::UniverseOptions opts;
  opts.profile = &minimpi::MachineProfile::skx_impi();
  opts.functional = true;
  opts.functional_payload_limit = 1 << 14;

  constexpr std::size_t payload = 8'192;
  const nc::Layout layout =
      nc::Layout::strided(payload / sizeof(double), 1, 2);
  const std::string scheme = "vector type";

  std::vector<nc::EngineScaleRecord> records;
  for (const char* pattern_name : {"transpose(4)", "halo2d(3x3)"}) {
    const auto pattern = nc::CommPattern::by_name(pattern_name);
    nc::HarnessConfig cfg;
    cfg.reps = iters;

    minimpi::PerfCounters pc;
    opts.perf = &pc;
    nc::RunResult direct;
    const double direct_s = wall_seconds([&] {
      direct =
          nc::run_pattern_experiment(opts, *pattern, scheme, layout, cfg);
    });
    opts.perf = nullptr;

    nc::RunResult replayed;
    bool valid = true;
    const double compiled_s = wall_seconds([&] {
      const nc::plan::CommPlan cp =
          nc::plan::compile_cell(opts, *pattern, scheme, layout, cfg);
      valid = cp.valid;
      if (cp.valid) replayed = cp.replay(iters);
    });
    if (!valid) {
      std::cerr << "engine_scale: " << pattern_name
                << " did not compile; skipping\n";
      continue;
    }

    nc::EngineScaleRecord rec;
    rec.pattern = pattern->name();
    rec.scheme = scheme;
    rec.nranks = pattern->nranks();
    rec.payload_bytes = layout.payload_bytes();
    rec.iters = iters;
    rec.direct_seconds = direct_s;
    rec.compiled_seconds = compiled_s;
    rec.identical = same_timing(direct.timing, replayed.timing);
    rec.perf = {pc.messages, pc.envelope_allocs + pc.request_allocs,
                pc.fiber_switches, pc.match_probes};
    records.push_back(rec);
  }
  return records;
}

/// \brief The universe-scaling measurement shared by the standalone
/// `universe_scale` bench and `run_all`: wall-clock whole modeled-mode
/// universes (metadata-only payloads, sampled digest verification) at
/// growing rank counts, so the curve reports simulated rank-steps/sec
/// under the cooperative scheduler up to 1k+ ranks.  `specs` may
/// override the default pattern set (each spec must name a pattern the
/// registry accepts).  Patterns that record a compilable plan also get
/// a compile-once/replay-many timing; `replay_seconds` stays 0 where
/// capture is not applicable.
inline std::vector<ncsend::UniverseScaleRecord> measure_universe_scale(
    int reps, const std::vector<std::string>& specs = {}) {
  namespace nc = ncsend;
  const auto wall_seconds = [](auto&& fn) {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };

  // Modeled mode: payloads travel as metadata, virtual timing identical
  // (a tested invariant); sampled digests stand in for byte checks.
  minimpi::UniverseOptions opts;
  opts.profile = &minimpi::MachineProfile::skx_impi();
  opts.functional = false;

  constexpr std::size_t payload = 8'192;
  const nc::Layout layout =
      nc::Layout::strided(payload / sizeof(double), 1, 2);
  const std::string scheme = "vector type";

  // Default curve: sparse ring topologies riding the rank axis to 1024
  // (linear traffic growth), one denser hypercube point, the ISSUE's
  // named geometries transpose(64) and halo3d(8x8x8), and one 1k-rank
  // collective schedule (2046 ring rounds through the same engine).
  const std::vector<std::string> defaults = {
      "graph(ring:16)",  "graph(ring:64)", "graph(ring:256)",
      "graph(ring:1024)", "graph(hyper:64)", "transpose(64)",
      "halo3d(8x8x8)", "collective(allreduce:ring:1024)"};
  const std::vector<std::string>& names = specs.empty() ? defaults : specs;

  std::vector<nc::UniverseScaleRecord> records;
  for (const std::string& pattern_name : names) {
    const auto pattern = nc::CommPattern::by_name(pattern_name);
    nc::HarnessConfig cfg;
    cfg.reps = reps;
    cfg.verify_samples = 4;

    minimpi::PerfCounters pc;
    opts.perf = &pc;
    nc::RunResult direct;
    const double direct_s = wall_seconds([&] {
      direct =
          nc::run_pattern_experiment(opts, *pattern, scheme, layout, cfg);
    });
    opts.perf = nullptr;

    bool compiled = false;
    const double compiled_s = wall_seconds([&] {
      const nc::plan::CommPlan cp =
          nc::plan::compile_cell(opts, *pattern, scheme, layout, cfg);
      compiled = cp.valid;
      if (cp.valid) (void)cp.replay(reps);
    });
    const double replay_s = compiled ? compiled_s : 0.0;

    nc::UniverseScaleRecord rec;
    rec.pattern = pattern->name();
    rec.scheme = scheme;
    rec.nranks = pattern->nranks();
    rec.payload_bytes = layout.payload_bytes();
    rec.reps = reps;
    rec.direct_seconds = direct_s;
    rec.replay_seconds = replay_s;
    rec.verified = direct.data_checked && direct.verified;
    rec.perf = {pc.messages, pc.envelope_allocs + pc.request_allocs,
                pc.fiber_switches, pc.match_probes};
    records.push_back(rec);
  }
  return records;
}

/// \brief The `BENCH_collective_sweep` measurement shared by the
/// standalone `collective_sweep` bench and `run_all`: virtual time of
/// each collective cell across a message-size grid on the skx and knl
/// profiles, modeled mode with sampled digest verification.  The point
/// of the sweep is the algorithm crossover — logarithmic schedules
/// (tree, rd) win the latency-bound small-message end, the chunked
/// ring wins the bandwidth-bound large-message end — and that ordering
/// *emerges* from per-rank CPU/NIC timeline occupancy; nothing in the
/// engine special-cases a collective's cost.  `specs` may override the
/// default cells with canonical `collective(op:algo:N)` names (the
/// `--collective` flag).  With `replay`, every cell is compiled once
/// and replayed (`plan::compile_cell`), which must reproduce direct
/// execution byte-for-byte in the artifact.
inline std::vector<ncsend::CollectiveSweepRecord> measure_collective_sweep(
    bool quick, int reps, bool replay,
    const std::vector<std::string>& specs = {}) {
  namespace nc = ncsend;

  const std::vector<std::string> defaults =
      quick ? std::vector<std::string>{"collective(allreduce:tree:32)",
                                       "collective(allreduce:ring:32)",
                                       "collective(allreduce:rd:32)"}
            : std::vector<std::string>{"collective(allreduce:tree:32)",
                                       "collective(allreduce:ring:32)",
                                       "collective(allreduce:rd:32)",
                                       "collective(bcast:tree:32)",
                                       "collective(bcast:ring:32)",
                                       "collective(allgather:tree:32)",
                                       "collective(allgather:ring:32)",
                                       "collective(reduce-scatter:tree:32)",
                                       "collective(reduce-scatter:ring:32)"};
  const std::vector<std::string>& names = specs.empty() ? defaults : specs;
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{4'096, 1'048'576}
            : std::vector<std::size_t>{1'024, 16'384, 131'072, 1'048'576};

  std::vector<nc::CollectiveSweepRecord> records;
  for (const minimpi::MachineProfile* profile :
       {&minimpi::MachineProfile::skx_impi(),
        &minimpi::MachineProfile::knl_impi()}) {
    minimpi::UniverseOptions opts;
    opts.profile = profile;
    opts.functional = false;  // modeled: payloads as metadata + digests

    for (const std::string& spec : names) {
      const auto pattern = nc::CommPattern::by_name(spec);
      const auto* cp = dynamic_cast<const nc::coll::CollectivePattern*>(
          pattern.get());
      if (cp == nullptr) {
        std::cerr << "collective_sweep: " << spec
                  << " is not a collective cell; skipping\n";
        continue;
      }
      nc::CollectiveSweepRecord rec;
      rec.profile = profile->name;
      rec.op = nc::coll::op_name(cp->op());
      rec.algo = nc::coll::algo_name(cp->algo());
      rec.nranks = cp->nranks();
      rec.scheme = "vector type";
      bool ok = true;
      for (const std::size_t bytes : sizes) {
        const nc::Layout layout =
            nc::Layout::strided(bytes / sizeof(double), 1, 2);
        nc::HarnessConfig cfg;
        cfg.reps = reps;
        cfg.verify_samples = 4;
        nc::RunResult r;
        if (replay) {
          const nc::plan::CommPlan plan =
              nc::plan::compile_cell(opts, *pattern, rec.scheme, layout, cfg);
          minimpi::require(plan.valid, minimpi::ErrorClass::invalid_arg,
                           "collective_sweep: " + spec +
                               " did not compile: " + plan.invalid_reason);
          r = plan.replay(reps);
        } else {
          r = nc::run_pattern_experiment(opts, *pattern, rec.scheme, layout,
                                         cfg);
        }
        rec.sizes_bytes.push_back(bytes);
        rec.times_s.push_back(r.time());
        ok = ok && r.data_checked && r.verified;
      }
      rec.verified = ok;
      records.push_back(rec);
    }
  }
  return records;
}

/// \brief Exit-code criterion for the collective sweep: at least one
/// profile must show the crossover — a logarithmic schedule (tree or
/// rd) fastest at the smallest swept size AND the ring fastest at the
/// largest — for some (op, nranks) cell with both families present.
inline bool collective_crossover_present(
    const std::vector<ncsend::CollectiveSweepRecord>& records) {
  for (const ncsend::CollectiveSweepRecord& r : records) {
    if (r.times_s.empty()) continue;
    const ncsend::CollectiveSweepRecord* small = &r;
    const ncsend::CollectiveSweepRecord* large = &r;
    for (const ncsend::CollectiveSweepRecord& c : records) {
      if (c.profile != r.profile || c.op != r.op || c.nranks != r.nranks ||
          c.times_s.empty())
        continue;
      if (c.times_s.front() < small->times_s.front()) small = &c;
      if (c.times_s.back() < large->times_s.back()) large = &c;
    }
    if (small->algo != "ring" && large->algo == "ring") return true;
  }
  return false;
}

/// \brief The figure driver: register the plan, run it, report it.
/// `--pattern` re-measures the figure under other communication
/// patterns — one plan per pattern.  The N-rank engine runs the full
/// legend (the paper's eight plus the extension schemes) through the
/// same peer-addressed transfer schemes the harness drives; the
/// pingpong plan keeps the paper's eight so the figures stay the
/// paper's figures.
inline int run_figure(const FigureSpec& spec, int argc, char** argv) {
  const ncsend::BenchCli cli = ncsend::BenchCli::parse(argc, argv);
  // `--collective` cells are pattern cells too: append them so a figure
  // can be re-measured under a collective schedule.
  std::vector<std::string> patterns = cli.patterns;
  patterns.insert(patterns.end(), cli.collectives.begin(),
                  cli.collectives.end());
  if (patterns.empty()) patterns = {"pingpong"};
  ncsend::ResultStore store;
  bool all_verified = true;
  for (const std::string& pattern : patterns) {
    ncsend::ExperimentPlan plan;
    plan.name = spec.id;
    plan.patterns = {pattern};
    plan.profiles = {spec.profile};
    plan.sizes_bytes = ncsend::paper_sizes(cli.effective_per_decade());
    plan.harness.reps = cli.effective_reps();
    if (ncsend::coll::is_collective_pattern_name(pattern))
      plan.schemes = ncsend::coll::collective_scheme_names();
    else if (pattern != "pingpong")
      plan.schemes = ncsend::pattern_scheme_names();
    const ncsend::PlanResult result =
        ncsend::run_plan(plan, ncsend::ExecutorOptions{cli.jobs});
    const ncsend::SweepResult& sweep = result.sweep(0, 0);
    const std::string title = pattern == "pingpong"
                                  ? spec.title
                                  : spec.title + " - " + sweep.pattern;
    ncsend::print_figure(std::cout, sweep, title);
    store.add_plan(result);
    all_verified = all_verified && result.all_verified();
  }
  if (cli.csv) {
    write_store_file(cli.out_dir, spec.id + ".csv",
                     [&](std::ostream& os) { store.write_csv(os); });
    write_store_file(cli.out_dir, spec.id + ".json",
                     [&](std::ostream& os) { store.write_sweep_json(os); });
  }
  return all_verified ? 0 : 1;
}

}  // namespace benchcommon
