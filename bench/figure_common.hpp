#pragma once
/// \file figure_common.hpp
/// \brief Shared driver for the per-figure benchmark binaries.
///
/// Each `figN_*` binary reproduces one figure of the paper: the full
/// sizes x schemes sweep on one machine profile, printed as the three
/// panels (time / bandwidth / slowdown) plus ASCII plots, and written as
/// CSV to `results/<id>.csv` for external plotting.
///
/// Flags:
///   --quick           2 points/decade, 5 reps (CI-friendly)
///   --per-decade N    size-grid density (default 4)
///   --reps N          ping-pongs per measurement (default 20, as in §3.2)
///   --no-csv          skip the results/ file

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "ncsend/ncsend.hpp"

namespace benchcommon {

struct FigureSpec {
  const minimpi::MachineProfile* profile;
  std::string id;     ///< results/<id>.csv
  std::string title;  ///< printed header
};

struct BenchArgs {
  int per_decade = 4;
  int reps = 20;
  bool csv = true;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        a.per_decade = 2;
        a.reps = 5;
      } else if (arg == "--per-decade" && i + 1 < argc) {
        a.per_decade = std::stoi(argv[++i]);
      } else if (arg == "--reps" && i + 1 < argc) {
        a.reps = std::stoi(argv[++i]);
      } else if (arg == "--no-csv") {
        a.csv = false;
      } else {
        std::cerr << "unknown flag: " << arg << "\n";
      }
    }
    return a;
  }
};

inline void maybe_write_csv(const ncsend::SweepResult& result,
                            const std::string& id, bool enabled) {
  if (!enabled) return;
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const std::string csv_path = "results/" + id + ".csv";
  if (std::ofstream csv(csv_path); csv) {
    ncsend::write_csv(csv, result);
    std::cout << "\nCSV written to " << csv_path << "\n";
  } else {
    std::cerr << "could not open " << csv_path << " for writing\n";
  }
  const std::string json_path = "results/" + id + ".json";
  if (std::ofstream json(json_path); json) {
    ncsend::write_json(json, result);
    std::cout << "JSON written to " << json_path << "\n";
  }
}

inline int run_figure(const FigureSpec& spec, int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  ncsend::SweepConfig cfg;
  cfg.profile = spec.profile;
  cfg.sizes_bytes = ncsend::paper_sizes(args.per_decade);
  cfg.harness.reps = args.reps;
  const ncsend::SweepResult result = ncsend::run_sweep(cfg);
  ncsend::print_figure(std::cout, result, spec.title);
  maybe_write_csv(result, spec.id, args.csv);
  return result.all_verified() ? 0 : 1;
}

}  // namespace benchcommon
