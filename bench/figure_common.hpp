#pragma once
/// \file figure_common.hpp
/// \brief Shared driver for the per-figure benchmark binaries.
///
/// Each `figN_*` binary reproduces one figure of the paper as a thin
/// plan registration against the experiment engine: the full
/// sizes x schemes sweep on one machine profile, executed over the
/// engine's worker pool, printed as the three panels (time / bandwidth /
/// slowdown) plus ASCII plots, and written as CSV + JSON to
/// `<out-dir>/<id>.{csv,json}` through the unified `ResultStore`
/// writers.  Flags are the engine's shared set (`--help` lists them);
/// unknown flags exit with status 2.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ncsend/ncsend.hpp"

namespace benchcommon {

struct FigureSpec {
  const minimpi::MachineProfile* profile;
  std::string id;     ///< <out-dir>/<id>.{csv,json}
  std::string title;  ///< printed header
};

/// \brief Write one store through a writer member into `<dir>/<name>`,
/// creating the directory; reports the path (or a warning) on `std::cout`
/// / `std::cerr`.  Returns false if the file could not be opened.
template <class WriteFn>
inline bool write_store_file(const std::string& dir, const std::string& name,
                             WriteFn&& write) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "could not open " << path << " for writing\n";
    return false;
  }
  write(os);
  std::cout << "wrote " << path << "\n";
  return true;
}

/// \brief The figure driver: register the plan, run it, report it.
/// `--pattern` re-measures the figure under other communication
/// patterns — one plan per pattern.  The N-rank engine runs the full
/// legend (the paper's eight plus the extension schemes) through the
/// same peer-addressed transfer schemes the harness drives; the
/// pingpong plan keeps the paper's eight so the figures stay the
/// paper's figures.
inline int run_figure(const FigureSpec& spec, int argc, char** argv) {
  const ncsend::BenchCli cli = ncsend::BenchCli::parse(argc, argv);
  const std::vector<std::string> patterns =
      cli.patterns.empty() ? std::vector<std::string>{"pingpong"}
                           : cli.patterns;
  ncsend::ResultStore store;
  bool all_verified = true;
  for (const std::string& pattern : patterns) {
    ncsend::ExperimentPlan plan;
    plan.name = spec.id;
    plan.patterns = {pattern};
    plan.profiles = {spec.profile};
    plan.sizes_bytes = ncsend::paper_sizes(cli.effective_per_decade());
    plan.harness.reps = cli.effective_reps();
    if (pattern != "pingpong") plan.schemes = ncsend::pattern_scheme_names();
    const ncsend::PlanResult result =
        ncsend::run_plan(plan, ncsend::ExecutorOptions{cli.jobs});
    const ncsend::SweepResult& sweep = result.sweep(0, 0);
    const std::string title = pattern == "pingpong"
                                  ? spec.title
                                  : spec.title + " - " + sweep.pattern;
    ncsend::print_figure(std::cout, sweep, title);
    store.add_plan(result);
    all_verified = all_verified && result.all_verified();
  }
  if (cli.csv) {
    write_store_file(cli.out_dir, spec.id + ".csv",
                     [&](std::ostream& os) { store.write_csv(os); });
    write_store_file(cli.out_dir, spec.id + ".json",
                     [&](std::ostream& os) { store.write_sweep_json(os); });
  }
  return all_verified ? 0 : 1;
}

}  // namespace benchcommon
