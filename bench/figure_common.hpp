#pragma once
/// \file figure_common.hpp
/// \brief Shared driver for the per-figure benchmark binaries.
///
/// Each `figN_*` binary reproduces one figure of the paper as a thin
/// plan registration against the experiment engine: the full
/// sizes x schemes sweep on one machine profile, executed over the
/// engine's worker pool, printed as the three panels (time / bandwidth /
/// slowdown) plus ASCII plots, and written as CSV + JSON to
/// `<out-dir>/<id>.{csv,json}` through the unified `ResultStore`
/// writers.  Flags are the engine's shared set (`--help` lists them);
/// unknown flags exit with status 2.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "ncsend/ncsend.hpp"

namespace benchcommon {

struct FigureSpec {
  const minimpi::MachineProfile* profile;
  std::string id;     ///< <out-dir>/<id>.{csv,json}
  std::string title;  ///< printed header
};

/// \brief Write one store through a writer member into `<dir>/<name>`,
/// creating the directory; reports the path (or a warning) on `std::cout`
/// / `std::cerr`.  Returns false if the file could not be opened.
template <class WriteFn>
inline bool write_store_file(const std::string& dir, const std::string& name,
                             WriteFn&& write) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "could not open " << path << " for writing\n";
    return false;
  }
  write(os);
  std::cout << "wrote " << path << "\n";
  return true;
}

inline void maybe_write_outputs(const ncsend::PlanResult& result,
                                const ncsend::BenchCli& cli,
                                const std::string& id) {
  if (!cli.csv) return;
  ncsend::ResultStore store;
  store.add_plan(result);
  write_store_file(cli.out_dir, id + ".csv",
                   [&](std::ostream& os) { store.write_csv(os); });
  write_store_file(cli.out_dir, id + ".json",
                   [&](std::ostream& os) { store.write_sweep_json(os); });
}

/// \brief The figure driver: register the plan, run it, report it.
inline int run_figure(const FigureSpec& spec, int argc, char** argv) {
  const ncsend::BenchCli cli = ncsend::BenchCli::parse(argc, argv);
  ncsend::ExperimentPlan plan;
  plan.name = spec.id;
  plan.profiles = {spec.profile};
  plan.sizes_bytes = ncsend::paper_sizes(cli.effective_per_decade());
  plan.harness.reps = cli.effective_reps();
  const ncsend::PlanResult result =
      ncsend::run_plan(plan, ncsend::ExecutorOptions{cli.jobs});
  ncsend::print_figure(std::cout, result.sweep(0, 0), spec.title);
  maybe_write_outputs(result, cli, spec.id);
  return result.all_verified() ? 0 : 1;
}

}  // namespace benchcommon
