// Figure 4: "Time and bandwidth on Stampede2-knl using Intel MPI".
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return benchcommon::run_figure(
      {&minimpi::MachineProfile::knl_impi(), "fig4_knl_impi",
       "Figure 4 - Packing on knl: Stampede2 Knights Landing, Intel MPI"},
      argc, argv);
}
