/// \file collective_sweep.cpp
/// \brief The collective-algorithm crossover benchmark.
///
/// Sweeps `collective(op:algo:N)` cells across a message-size grid on
/// the skx and knl profiles and writes `BENCH_collective_sweep.json`.
/// The headline result: binomial trees / recursive doubling win the
/// latency-bound small-message end while the chunked ring wins the
/// bandwidth-bound large-message end, and that crossover *emerges*
/// from per-rank CPU/NIC timeline occupancy — the engine prices only
/// point-to-point transfers and copies, never a collective as such.
/// The exit code asserts the crossover is present for at least one
/// profile; `--collective op:algo:N` overrides the swept cells and
/// `--replay` routes every cell through compiled-plan replay
/// (byte-identical output, a CI-checked invariant).
#include <iostream>

#include "figure_common.hpp"

int main(int argc, char** argv) {
  namespace nc = ncsend;
  const nc::BenchCli cli = nc::BenchCli::parse(argc, argv);
  cli.reject_patterns("collective_sweep");

  const std::vector<nc::CollectiveSweepRecord> records =
      benchcommon::measure_collective_sweep(cli.quick, cli.effective_reps(),
                                            cli.replay, cli.collectives);

  std::cout << "collective algorithm sweep ("
            << (cli.replay ? "compiled replay" : "direct execution")
            << ", modeled mode, virtual seconds):\n";
  for (const nc::CollectiveSweepRecord& r : records) {
    std::cout << "  " << r.profile << "  " << r.op << ":" << r.algo << ":"
              << r.nranks << "  [";
    for (std::size_t i = 0; i < r.times_s.size(); ++i)
      std::cout << (i ? ", " : "") << r.times_s[i];
    std::cout << "] s" << (r.verified ? "" : "  UNVERIFIED") << "\n";
  }

  if (cli.csv) {
    benchcommon::write_store_file(
        cli.out_dir, "BENCH_collective_sweep.json", [&](std::ostream& os) {
          nc::ResultStore::write_bench_collective_sweep_json(os, records);
        });
  }

  bool all_verified = true;
  for (const nc::CollectiveSweepRecord& r : records)
    all_verified = all_verified && r.verified;
  if (!all_verified) {
    std::cerr << "collective_sweep: digest verification failed\n";
    return 1;
  }
  // The sweep's reason to exist: the tree-vs-ring crossover must show
  // up for at least one profile (skipped under a --collective override,
  // which may name a single algorithm).
  if (cli.collectives.empty() &&
      !benchcommon::collective_crossover_present(records)) {
    std::cerr << "collective_sweep: no profile shows the expected "
                 "tree-vs-ring crossover\n";
    return 1;
  }
  return 0;
}
