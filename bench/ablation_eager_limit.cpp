// Ablation for paper §4.5: "We have tested setting the eager limit over
// the maximum message size, but this did not appreciably change the
// results for large messages."
//
// The same plan registered twice — default eager limit, then the limit
// raised to 4 GiB — and the per-size relative change.  The mechanism
// that makes large messages insensitive is that no MPI can eagerly
// buffer beyond its internal staging capacity, so the effective limit
// saturates there.
#include <iomanip>
#include <iostream>

#include "figure_common.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const BenchCli cli = BenchCli::parse(argc, argv);
  cli.reject_patterns("ablation_eager_limit");
  ExperimentPlan plan;
  plan.name = "ablation_eager_limit";
  plan.profiles = {&minimpi::MachineProfile::skx_impi()};
  plan.sizes_bytes = paper_sizes(std::max(2, cli.effective_per_decade() / 2));
  plan.schemes = {"reference", "copying", "vector type", "packing(v)"};
  plan.harness.reps = cli.effective_reps();

  const ExecutorOptions exec{cli.jobs};
  const SweepResult base = run_plan(plan, exec).sweep(0, 0);
  plan.eager_limit_override = std::size_t{4} << 30;
  const SweepResult raised = run_plan(plan, exec).sweep(0, 0);

  std::cout << "== Ablation: eager limit raised above max message size "
               "(paper 4.5) ==\n"
            << "profile skx-impi; default limit "
            << plan.profiles[0]->eager_limit_bytes << " B -> override 4 GiB\n\n"
            << std::setw(12) << "bytes";
  for (const auto& s : base.schemes)
    std::cout << std::setw(14) << (s + " d%");
  std::cout << "\n";

  double max_large_change = 0.0;
  for (std::size_t si = 0; si < base.sizes_bytes.size(); ++si) {
    std::cout << std::setw(12) << base.sizes_bytes[si];
    for (std::size_t ci = 0; ci < base.schemes.size(); ++ci) {
      const double delta =
          (raised.time(si, ci) / base.time(si, ci) - 1.0) * 100.0;
      if (base.sizes_bytes[si] > 100'000'000)
        max_large_change = std::max(max_large_change, std::abs(delta));
      std::cout << std::setw(13) << std::fixed << std::setprecision(2)
                << delta << "%";
    }
    std::cout << "\n";
  }
  std::cout << "\nmax |change| for messages > 1e8 B: " << std::setprecision(3)
            << max_large_change << "%  (paper: 'did not appreciably change "
            << "the results for large messages')\n";
  return max_large_change < 1.0 ? 0 : 1;
}
