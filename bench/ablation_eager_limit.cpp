// Ablation for paper §4.5: "We have tested setting the eager limit over
// the maximum message size, but this did not appreciably change the
// results for large messages."
//
// Runs the skx-impi sweep with the default eager limit and with the
// limit raised to 4 GiB, then reports the per-size relative change.
// The mechanism that makes large messages insensitive is that no MPI
// can eagerly buffer beyond its internal staging capacity, so the
// effective limit saturates there.
#include <iomanip>
#include <iostream>

#include "figure_common.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const auto args = benchcommon::BenchArgs::parse(argc, argv);
  SweepConfig cfg;
  cfg.profile = &minimpi::MachineProfile::skx_impi();
  cfg.sizes_bytes = paper_sizes(std::max(2, args.per_decade / 2));
  cfg.schemes = {"reference", "copying", "vector type", "packing(v)"};
  cfg.harness.reps = args.reps;

  const SweepResult base = run_sweep(cfg);
  cfg.eager_limit_override = std::size_t{4} << 30;
  const SweepResult raised = run_sweep(cfg);

  std::cout << "== Ablation: eager limit raised above max message size "
               "(paper 4.5) ==\n"
            << "profile skx-impi; default limit "
            << cfg.profile->eager_limit_bytes << " B -> override 4 GiB\n\n"
            << std::setw(12) << "bytes";
  for (const auto& s : base.schemes)
    std::cout << std::setw(14) << (s + " d%");
  std::cout << "\n";

  double max_large_change = 0.0;
  for (std::size_t si = 0; si < base.sizes_bytes.size(); ++si) {
    std::cout << std::setw(12) << base.sizes_bytes[si];
    for (std::size_t ci = 0; ci < base.schemes.size(); ++ci) {
      const double delta =
          (raised.time(si, ci) / base.time(si, ci) - 1.0) * 100.0;
      if (base.sizes_bytes[si] > 100'000'000)
        max_large_change = std::max(max_large_change, std::abs(delta));
      std::cout << std::setw(13) << std::fixed << std::setprecision(2)
                << delta << "%";
    }
    std::cout << "\n";
  }
  std::cout << "\nmax |change| for messages > 1e8 B: " << std::setprecision(3)
            << max_large_change << "%  (paper: 'did not appreciably change "
            << "the results for large messages')\n";
  return max_large_change < 1.0 ? 0 : 1;
}
