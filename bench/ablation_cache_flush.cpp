// Ablation for paper §4.6: "In tests not reported here we dispensed
// with flushing the cache in between sends.  This had a clear positive
// effect on intermediate size messages."
//
// Two registrations of the same plan — with and without the 50 MB
// inter-ping flush — and the warm/flushed speedup per size.  The effect
// must appear for intermediate sizes (layout fits in cache), vanish for
// large ones (does not fit), and leave the reference scheme untouched.
#include <iomanip>
#include <iostream>

#include "figure_common.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const BenchCli cli = BenchCli::parse(argc, argv);
  cli.reject_patterns("ablation_cache_flush");
  ExperimentPlan plan;
  plan.name = "ablation_cache_flush";
  plan.profiles = {&minimpi::MachineProfile::skx_impi()};
  plan.sizes_bytes = log_sizes(1e4, 1e9, 2);
  plan.schemes = {"reference", "copying", "packing(v)"};
  plan.harness.reps = cli.effective_reps();
  plan.wtime_resolution = 0.0;  // exact clocks: isolate the cache effect

  const ExecutorOptions exec{cli.jobs};
  const SweepResult flushed = run_plan(plan, exec).sweep(0, 0);
  plan.harness.flush = false;
  const SweepResult warm = run_plan(plan, exec).sweep(0, 0);

  std::cout << "== Ablation: cache flushing between ping-pongs (paper 4.6) "
               "==\nspeedup = flushed time / warm time (>1 means skipping "
               "the flush helps)\n\n"
            << std::setw(12) << "bytes";
  for (const auto& s : flushed.schemes) std::cout << std::setw(13) << s;
  std::cout << "\n";
  bool intermediate_effect = false;
  bool reference_unaffected = true;
  for (std::size_t si = 0; si < flushed.sizes_bytes.size(); ++si) {
    std::cout << std::setw(12) << flushed.sizes_bytes[si];
    for (std::size_t ci = 0; ci < flushed.schemes.size(); ++ci) {
      const double speedup = flushed.time(si, ci) / warm.time(si, ci);
      std::cout << std::setw(13) << std::fixed << std::setprecision(3)
                << speedup;
      const std::size_t bytes = flushed.sizes_bytes[si];
      if (flushed.schemes[ci] == "copying" && bytes >= 100'000 &&
          bytes <= 4'000'000 && speedup > 1.2)
        intermediate_effect = true;
      if (flushed.schemes[ci] == "reference" &&
          std::abs(speedup - 1.0) > 1e-6)
        reference_unaffected = false;
    }
    std::cout << "\n";
  }
  std::cout << "\nintermediate-size warm speedup observed: "
            << (intermediate_effect ? "yes" : "NO") << "\n"
            << "reference scheme unaffected:             "
            << (reference_unaffected ? "yes" : "NO") << "\n";
  return intermediate_effect && reference_unaffected ? 0 : 1;
}
