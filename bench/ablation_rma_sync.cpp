// Extension ablation: one-sided synchronization mechanisms.
//
// The paper attributes slow small one-sided transfers to "the more
// complicated synchronization mechanism of MPI_Win_fence, which imposes
// a large overhead" (§4.4).  This ablation quantifies that attribution
// by re-running the one-sided scheme with generalized active target
// synchronization (post/start/complete/wait): pairwise sync removes the
// global fence and should recover most of the small-message penalty
// while leaving large messages (bandwidth-bound) unchanged.
#include <iomanip>
#include <iostream>

#include "figure_common.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const BenchCli cli = BenchCli::parse(argc, argv);
  cli.reject_patterns("ablation_rma_sync");
  ExperimentPlan plan;
  plan.name = "ablation_rma_sync";
  plan.profiles = {&minimpi::MachineProfile::skx_impi()};
  plan.sizes_bytes = log_sizes(1e3, 1e9, 2);
  plan.schemes = {"reference", "onesided", "onesided-pscw"};
  plan.harness.reps = cli.effective_reps();
  plan.wtime_resolution = 0.0;
  const SweepResult r = run_plan(plan, ExecutorOptions{cli.jobs}).sweep(0, 0);

  std::cout << "== Ablation: one-sided sync — fence vs post/start/"
               "complete/wait (skx-impi) ==\n\n"
            << std::setw(12) << "bytes" << std::setw(14) << "fence(s)"
            << std::setw(14) << "pscw(s)" << std::setw(14) << "fence/pscw"
            << std::setw(16) << "pscw slowdown\n";
  bool small_recovered = false;
  bool large_unchanged = false;
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
    const double fence = r.time(si, 1);
    const double pscw = r.time(si, 2);
    std::cout << std::setw(12) << r.sizes_bytes[si] << std::setw(14)
              << std::scientific << std::setprecision(3) << fence
              << std::setw(14) << pscw << std::setw(14) << std::fixed
              << std::setprecision(2) << fence / pscw << std::setw(15)
              << r.slowdown(si, 2) << "\n";
    if (r.sizes_bytes[si] <= 10'000 && fence / pscw > 1.5)
      small_recovered = true;
    if (r.sizes_bytes[si] >= 100'000'000 &&
        std::abs(fence / pscw - 1.0) < 0.1)
      large_unchanged = true;
  }
  std::cout << "\nsmall-message fence overhead recovered by pairwise sync: "
            << (small_recovered ? "yes (supports the paper's 4.4 "
                                  "attribution)"
                                : "NO")
            << "\nlarge messages unaffected (bandwidth-bound):             "
            << (large_unchanged ? "yes" : "NO") << "\n";
  return small_recovered && large_unchanged ? 0 : 1;
}
