// Extension ablation: MPI send modes on the derived-type send.
//
// The paper measures standard-mode MPI_Send only; this ablation isolates
// the protocol component by comparing blocking, nonblocking, synchronous,
// ready, and persistent variants across sizes.  Expectations from the
// protocol model: below the eager limit ssend pays the handshake that
// standard mode skips; above it rsend saves the handshake everyone else
// pays; isend/persistent match blocking on an idle sender.
#include <iomanip>
#include <iostream>

#include "figure_common.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const BenchCli cli = BenchCli::parse(argc, argv);
  cli.reject_patterns("ablation_sync_modes");
  ExperimentPlan plan;
  plan.name = "ablation_sync_modes";
  plan.profiles = {&minimpi::MachineProfile::skx_impi()};
  plan.sizes_bytes = log_sizes(1e3, 1e8, 2);
  plan.schemes = {"vector type", "isend(v)", "ssend(v)", "rsend(v)",
                  "persistent(v)"};
  plan.harness.reps = cli.effective_reps();
  plan.wtime_resolution = 0.0;
  const SweepResult r = run_plan(plan, ExecutorOptions{cli.jobs}).sweep(0, 0);

  std::cout << "== Ablation: send modes for the direct derived-type send "
               "(skx-impi) ==\n(times relative to blocking standard mode)\n\n"
            << std::setw(12) << "bytes";
  for (const auto& s : r.schemes) std::cout << std::setw(15) << s;
  std::cout << "\n";
  bool rsend_helps_large = false, isend_matches = true;
  const std::size_t eager = plan.profiles[0]->eager_limit_bytes;
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
    std::cout << std::setw(12) << r.sizes_bytes[si];
    const double base = r.time(si, 0);
    for (std::size_t ci = 0; ci < r.schemes.size(); ++ci) {
      const double rel = r.time(si, ci) / base;
      std::cout << std::setw(15) << std::fixed << std::setprecision(4)
                << rel;
      if (r.schemes[ci] == "rsend(v)" && r.sizes_bytes[si] > eager &&
          rel < 0.999)
        rsend_helps_large = true;
      if (r.schemes[ci] == "isend(v)" && std::abs(rel - 1.0) > 0.01)
        isend_matches = false;
    }
    std::cout << "\n";
  }
  std::cout << "\nready mode saves the handshake above the eager limit: "
            << (rsend_helps_large ? "yes" : "NO") << "\n"
            << "isend+wait matches blocking send:                     "
            << (isend_matches ? "yes" : "NO") << "\n";
  return rsend_helps_large && isend_matches ? 0 : 1;
}
