// Ablation for paper §4.7: "a limited test ... shows that no
// performance degradation results from having all processes on a node
// communicate."
//
// Runs P simultaneous ping-pong pairs (ranks 2i <-> 2i+1) inside one
// universe and compares per-pair time against the single-pair baseline.
// The scenario is the pattern subsystem's `multi-pair(P)`: per-pair
// timing comes from the same N-rank engine the pattern sweeps use, and
// the "no degradation" outcome is now a parameterized model feature —
// the profiles' `link_contention_factor` is 0.0, encoding exactly the
// paper's observation (flip it in a custom profile to ask the what-if
// the paper could not).  Flags come from the engine's shared CLI.
#include <iomanip>
#include <iostream>
#include <vector>

#include "figure_common.hpp"

using namespace minimpi;

namespace {

/// Mean per-ping-pong time over all pairs for a vector-type send of
/// `elems` doubles, with `pairs` concurrent communicating pairs.
double pair_time(int pairs, std::size_t elems, int reps) {
  const auto pattern = ncsend::CommPattern::by_name(
      "multi-pair(" + std::to_string(pairs) + ")");
  UniverseOptions opts;
  opts.functional_payload_limit = 1 << 20;
  opts.wtime_resolution = 0.0;
  ncsend::HarnessConfig cfg;
  cfg.reps = reps;
  cfg.flush = false;
  const ncsend::RunResult r = ncsend::run_pattern_experiment(
      opts, *pattern, "vector type", ncsend::Layout::strided(elems, 1, 2),
      cfg);
  return r.time();
}

}  // namespace

int main(int argc, char** argv) {
  const ncsend::BenchCli cli = ncsend::BenchCli::parse(argc, argv);
  cli.reject_patterns("ablation_multi_pair");
  const int reps = cli.effective_reps();
  const std::vector<std::size_t> sizes = {1'000, 100'000, 10'000'000};
  const std::vector<int> pair_counts = {1, 2, 4, 8};

  std::cout << "== Ablation: all node pairs communicating (paper 4.7) ==\n"
               "per-pair ping-pong time, vector-type send, skx-impi\n\n"
            << std::setw(12) << "bytes";
  for (const int p : pair_counts)
    std::cout << std::setw(12) << (std::to_string(p) + " pair(s)");
  std::cout << std::setw(14) << "degradation\n";

  bool ok = true;
  for (const std::size_t bytes : sizes) {
    const std::size_t elems = bytes / 8;
    std::cout << std::setw(12) << bytes;
    double base = 0.0, worst = 0.0;
    for (const int p : pair_counts) {
      const double t = pair_time(p, elems, reps);
      if (p == 1) base = t;
      worst = std::max(worst, t);
      std::cout << std::setw(12) << std::scientific << std::setprecision(3)
                << t;
    }
    const double degradation = worst / base - 1.0;
    std::cout << std::setw(12) << std::fixed << std::setprecision(2)
              << degradation * 100.0 << "%\n";
    if (degradation > 0.01) ok = false;
  }
  std::cout << "\nno degradation with all pairs active: "
            << (ok ? "yes (matches the paper)" : "NO") << "\n";
  return ok ? 0 : 1;
}
