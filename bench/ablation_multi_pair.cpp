// Ablation for paper §4.7: "a limited test ... shows that no
// performance degradation results from having all processes on a node
// communicate."
//
// Runs P simultaneous ping-pong pairs (ranks 2i <-> 2i+1) inside one
// universe and compares per-pair time against the single-pair baseline.
// The simulated fabric models per-pair links without contention, which
// encodes exactly the paper's observation; this bench demonstrates that
// the multi-rank runtime reproduces it end to end (matching, clocks and
// collectives included).  The cells here are multi-rank universes, not
// 2-rank sweep cells, so this is the one bench that drives Universe::run
// directly instead of registering a plan; flags still come from the
// engine's shared CLI.
#include <iomanip>
#include <iostream>
#include <vector>

#include "figure_common.hpp"

using namespace minimpi;

namespace {

/// Mean per-ping-pong time over all pairs for a vector-type send of
/// `elems` doubles, with `pairs` concurrent communicating pairs.
double pair_time(int pairs, std::size_t elems, int reps) {
  double result = 0.0;
  UniverseOptions opts;
  opts.nranks = 2 * pairs;
  opts.functional_payload_limit = 1 << 20;
  opts.wtime_resolution = 0.0;
  Universe::run(opts, [&](Comm& c) {
    Datatype vec = Datatype::vector(elems, 1, 2, Datatype::float64());
    vec.commit();
    const bool sender = c.rank() % 2 == 0;
    const Rank peer = sender ? c.rank() + 1 : c.rank() - 1;
    Buffer user = Buffer::allocate((2 * elems) * 8,
                                   c.moves_payload(2 * elems * 8));
    Buffer recv = Buffer::allocate(elems * 8, c.moves_payload(elems * 8));
    c.barrier();
    double t0 = c.clock();
    for (int rep = 0; rep < reps; ++rep) {
      if (sender) {
        c.send(user.data(), 1, vec, peer, 0);
        c.recv(nullptr, 0, Datatype::byte(), peer, 1);
      } else {
        c.recv(recv.data(), elems, Datatype::float64(), peer, 0);
        c.send(nullptr, 0, Datatype::byte(), peer, 1);
      }
    }
    const double mine = sender ? (c.clock() - t0) / reps : 0.0;
    // Average the senders' times across pairs.
    const double total = c.allreduce(mine, ReduceOp::sum);
    if (c.rank() == 0) result = total / pairs;
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const ncsend::BenchCli cli = ncsend::BenchCli::parse(argc, argv);
  const int reps = cli.effective_reps();
  const std::vector<std::size_t> sizes = {1'000, 100'000, 10'000'000};
  const std::vector<int> pair_counts = {1, 2, 4, 8};

  std::cout << "== Ablation: all node pairs communicating (paper 4.7) ==\n"
               "per-pair ping-pong time, vector-type send, skx-impi\n\n"
            << std::setw(12) << "bytes";
  for (const int p : pair_counts)
    std::cout << std::setw(12) << (std::to_string(p) + " pair(s)");
  std::cout << std::setw(14) << "degradation\n";

  bool ok = true;
  for (const std::size_t bytes : sizes) {
    const std::size_t elems = bytes / 8;
    std::cout << std::setw(12) << bytes;
    double base = 0.0, worst = 0.0;
    for (const int p : pair_counts) {
      const double t = pair_time(p, elems, reps);
      if (p == 1) base = t;
      worst = std::max(worst, t);
      std::cout << std::setw(12) << std::scientific << std::setprecision(3)
                << t;
    }
    const double degradation = worst / base - 1.0;
    std::cout << std::setw(12) << std::fixed << std::setprecision(2)
              << degradation * 100.0 << "%\n";
    if (degradation > 0.01) ok = false;
  }
  std::cout << "\nno degradation with all pairs active: "
            << (ok ? "yes (matches the paper)" : "NO") << "\n";
  return ok ? 0 : 1;
}
