// Benchmark driver: runs the ablation set in-process and emits
// machine-readable BENCH_*.json files, one per benchmark family.
//
//   BENCH_pack_engine.json   wall-clock pack-engine kernels (GB/s) —
//                            the one place real hardware speed matters
//   BENCH_scheme_sweep.json  modeled sizes x schemes sweep, all profiles
//   BENCH_eager_limit.json   paper 4.5 ablation: raised eager limit
//
// The JSON is flat and self-describing so CI can diff successive runs
// and a plotting script can ingest it without bespoke parsing.
//
// Flags:
//   --quick        smaller grids (CI default cadence is fine either way)
//   --out-dir D    directory for the BENCH_*.json files (default ".")
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "minimpi/datatype/pack.hpp"
#include "ncsend/ncsend.hpp"

namespace {

struct DriverArgs {
  bool quick = false;
  std::string out_dir = ".";
  bool ok = true;
};

DriverArgs parse_args(int argc, char** argv) {
  DriverArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      a.quick = true;
    } else if (arg == "--out-dir" && i + 1 < argc) {
      a.out_dir = argv[++i];
    } else {
      std::cerr << "unknown flag: " << arg
                << "\nusage: run_all [--quick] [--out-dir DIR]\n";
      a.ok = false;
    }
  }
  return a;
}

std::ofstream open_out(const DriverArgs& args, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  const std::string path = args.out_dir + "/" + name;
  std::ofstream os(path);
  if (!os) std::cerr << "cannot open " << path << " for writing\n";
  return os;
}

/// Best-of-N wall time of `fn` in seconds (min filters scheduler noise).
template <class Fn>
double best_seconds(int iters, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  double best = 1e30;
  for (int i = 0; i < iters; ++i) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// --- BENCH_pack_engine: wall-clock kernels ------------------------------

struct KernelResult {
  std::string kernel;
  std::size_t payload_bytes;
  double gbps;
};

std::vector<KernelResult> run_pack_engine(bool quick) {
  using minimpi::Datatype;
  std::vector<KernelResult> out;
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{1u << 17}
            : std::vector<std::size_t>{1u << 13, 1u << 17, 1u << 21};
  const int iters = quick ? 20 : 50;
  for (const std::size_t bytes : sizes) {
    const std::size_t n = bytes / 8;
    std::vector<double> src(2 * n);
    std::iota(src.begin(), src.end(), 0.0);
    std::vector<double> dst(n);

    const double t_memcpy = best_seconds(iters, [&] {
      std::memcpy(dst.data(), src.data(), bytes);
    });
    out.push_back({"memcpy_contiguous", bytes, bytes / t_memcpy / 1e9});

    const double t_manual = best_seconds(iters, [&] {
      for (std::size_t i = 0; i < n; ++i) dst[i] = src[2 * i];
    });
    out.push_back({"manual_strided_gather", bytes, bytes / t_manual / 1e9});

    Datatype vec = Datatype::vector(n, 1, 2, Datatype::float64());
    vec.commit();
    auto* packed = reinterpret_cast<std::byte*>(dst.data());
    const double t_pack = best_seconds(iters, [&] {
      std::size_t pos = 0;
      minimpi::pack(src.data(), 1, vec, packed, bytes, pos);
    });
    out.push_back({"pack_vector_type", bytes, bytes / t_pack / 1e9});

    Datatype blocked = Datatype::vector(n / 8, 8, 16, Datatype::float64());
    blocked.commit();
    const double t_blocked = best_seconds(iters, [&] {
      std::size_t pos = 0;
      minimpi::pack(src.data(), 1, blocked, packed, bytes, pos);
    });
    out.push_back({"pack_blocked_vector", bytes, bytes / t_blocked / 1e9});
  }
  return out;
}

void write_pack_engine(std::ostream& os, const std::vector<KernelResult>& rs) {
  os << "{\n  \"benchmark\": \"pack_engine\",\n  \"unit\": \"GB/s\",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rs.size(); ++i)
    os << "    {\"kernel\": \"" << rs[i].kernel << "\", \"payload_bytes\": "
       << rs[i].payload_bytes << ", \"gbps\": " << rs[i].gbps << "}"
       << (i + 1 < rs.size() ? "," : "") << "\n";
  os << "  ]\n}\n";
}

// --- BENCH_scheme_sweep: modeled sweep on every profile -----------------

void emit_sweep_object(std::ostream& os, const ncsend::SweepResult& r) {
  os << "    {\"profile\": \"" << r.profile_name << "\", \"sizes_bytes\": [";
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si)
    os << (si ? ", " : "") << r.sizes_bytes[si];
  os << "], \"schemes\": [";
  for (std::size_t ci = 0; ci < r.schemes.size(); ++ci)
    os << (ci ? ", " : "") << "\"" << r.schemes[ci] << "\"";
  os << "],\n     \"time_s\": [";
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
    os << (si ? ", " : "") << "[";
    for (std::size_t ci = 0; ci < r.schemes.size(); ++ci)
      os << (ci ? ", " : "") << r.time(si, ci);
    os << "]";
  }
  os << "]}";
}

void run_scheme_sweep(std::ostream& os, bool quick) {
  os << "{\n  \"benchmark\": \"scheme_sweep\",\n  \"unit\": \"s\",\n"
     << "  \"profiles\": [\n";
  const auto& names = minimpi::MachineProfile::names();
  for (std::size_t pi = 0; pi < names.size(); ++pi) {
    ncsend::SweepConfig cfg;
    cfg.profile = &minimpi::MachineProfile::by_name(names[pi]);
    cfg.sizes_bytes = quick
                          ? std::vector<std::size_t>{100'000, 10'000'000}
                          : std::vector<std::size_t>{10'000, 100'000,
                                                     1'000'000, 10'000'000,
                                                     100'000'000};
    cfg.harness.reps = 5;
    cfg.functional_payload_limit = 1 << 16;  // mostly modeled: fast
    emit_sweep_object(os, ncsend::run_sweep(cfg));
    os << (pi + 1 < names.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

// --- BENCH_eager_limit: paper 4.5 ablation ------------------------------

void run_eager_limit(std::ostream& os, bool quick) {
  ncsend::SweepConfig cfg;
  cfg.profile = &minimpi::MachineProfile::skx_impi();
  cfg.sizes_bytes = quick ? std::vector<std::size_t>{1'000'000'000}
                          : std::vector<std::size_t>{10'000'000,
                                                     1'000'000'000};
  cfg.schemes = {"reference", "vector type"};
  cfg.harness.reps = 5;
  cfg.functional_payload_limit = 1 << 16;
  const auto base = ncsend::run_sweep(cfg);
  cfg.eager_limit_override = std::size_t{4} << 30;
  const auto raised = ncsend::run_sweep(cfg);

  os << "{\n  \"benchmark\": \"eager_limit\",\n"
     << "  \"profile\": \"skx-impi\",\n  \"override_bytes\": "
     << (std::size_t{4} << 30) << ",\n  \"results\": [\n";
  bool first = true;
  for (std::size_t si = 0; si < base.sizes_bytes.size(); ++si)
    for (std::size_t ci = 0; ci < base.schemes.size(); ++ci) {
      if (!first) os << ",\n";
      first = false;
      os << "    {\"scheme\": \"" << base.schemes[ci]
         << "\", \"size_bytes\": " << base.sizes_bytes[si]
         << ", \"time_s\": " << base.time(si, ci)
         << ", \"time_raised_s\": " << raised.time(si, ci) << "}";
    }
  os << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const DriverArgs args = parse_args(argc, argv);
  if (!args.ok) return 2;
  int written = 0;

  if (auto os = open_out(args, "BENCH_pack_engine.json")) {
    write_pack_engine(os, run_pack_engine(args.quick));
    std::cout << "wrote BENCH_pack_engine.json\n";
    ++written;
  }
  if (auto os = open_out(args, "BENCH_scheme_sweep.json")) {
    run_scheme_sweep(os, args.quick);
    std::cout << "wrote BENCH_scheme_sweep.json\n";
    ++written;
  }
  if (auto os = open_out(args, "BENCH_eager_limit.json")) {
    run_eager_limit(os, args.quick);
    std::cout << "wrote BENCH_eager_limit.json\n";
    ++written;
  }

  std::cout << written << "/3 benchmark files written to " << args.out_dir
            << "\n";
  return written == 3 ? 0 : 1;
}
