// Benchmark driver: runs the benchmark families in-process and emits
// machine-readable BENCH_*.json files through the unified ResultStore
// writers (the schemas live in src/ncsend/experiment/result_store.cpp,
// and only there):
//
//   BENCH_pack_engine.json    wall-clock pack-engine kernels (GB/s) —
//                             the one place real hardware speed matters
//   BENCH_scheme_sweep.json   modeled sizes x schemes sweep: every
//                             machine profile x {stride2, indexed-blocks}
//                             layout axis — the paper's eight schemes
//                             plus the extension schemes (incl. the
//                             pipelined packing(p)) — one plan, executed
//                             in parallel
//   BENCH_pattern_sweep.json  N-rank communication patterns (paper
//                             4.7): ping-pong, concurrent pairs, 2-D/3-D
//                             halo faces, all-to-all transpose panels,
//                             each x {skx, knl} x the full scheme legend
//   BENCH_eager_limit.json    paper 4.5 ablation: raised eager limit
//   BENCH_engine_scale.json   wall-clock engine throughput: compiled
//                             plan replay vs direct execution (not a
//                             golden file — times vary run to run)
//   BENCH_universe_scale.json simulated rank-steps/sec vs rank count:
//                             whole modeled-mode universes up to
//                             graph(ring:1024) under the cooperative
//                             scheduler (not a golden file either)
//   BENCH_collective_sweep.json
//                             collective algorithms as transfer
//                             schedules: tree/ring/rd cells across a
//                             size grid on {skx, knl}, exposing the
//                             small-message-tree vs large-message-ring
//                             crossover per profile
//
// Flags are the engine's shared set (see --help): --quick picks the
// small CI grids, --per-decade shapes the full-mode sweep grid, --reps
// sets the per-cell repetition count (virtual clocks are deterministic,
// so extra reps cost time without changing the emitted values),
// --no-csv dry-runs everything without writing files.  The sweep cells
// are independent simulated universes, so --jobs N > 1 changes
// wall-clock only: the JSON is byte-identical at any job count.
// --replay routes every plan cell through compiled-plan replay
// (capture once, interpret), which is also byte-identical — CI diffs
// the golden files across the two modes.
#include <chrono>
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "figure_common.hpp"
#include "minimpi/datatype/pack.hpp"

using namespace ncsend;

namespace {

/// Best-of-N wall time of `fn` in seconds (min filters scheduler noise).
template <class Fn>
double best_seconds(int iters, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  double best = 1e30;
  for (int i = 0; i < iters; ++i) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// --- BENCH_pack_engine: wall-clock kernels ------------------------------

void run_pack_engine(ResultStore& store, bool quick) {
  using minimpi::Datatype;
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{1u << 17}
            : std::vector<std::size_t>{1u << 13, 1u << 17, 1u << 21};
  const int iters = quick ? 20 : 50;
  for (const std::size_t bytes : sizes) {
    const std::size_t n = bytes / 8;
    std::vector<double> src(2 * n);
    std::iota(src.begin(), src.end(), 0.0);
    std::vector<double> dst(n);

    const double t_memcpy = best_seconds(iters, [&] {
      std::memcpy(dst.data(), src.data(), bytes);
    });
    store.add_kernel({"memcpy_contiguous", bytes, bytes / t_memcpy / 1e9});

    const double t_manual = best_seconds(iters, [&] {
      for (std::size_t i = 0; i < n; ++i) dst[i] = src[2 * i];
    });
    store.add_kernel(
        {"manual_strided_gather", bytes, bytes / t_manual / 1e9});

    Datatype vec = Datatype::vector(n, 1, 2, Datatype::float64());
    vec.commit();
    auto* packed = reinterpret_cast<std::byte*>(dst.data());
    const double t_pack = best_seconds(iters, [&] {
      std::size_t pos = 0;
      minimpi::pack(src.data(), 1, vec, packed, bytes, pos);
    });
    store.add_kernel({"pack_vector_type", bytes, bytes / t_pack / 1e9});

    Datatype blocked = Datatype::vector(n / 8, 8, 16, Datatype::float64());
    blocked.commit();
    const double t_blocked = best_seconds(iters, [&] {
      std::size_t pos = 0;
      minimpi::pack(src.data(), 1, blocked, packed, bytes, pos);
    });
    store.add_kernel({"pack_blocked_vector", bytes, bytes / t_blocked / 1e9});
  }
}

// --- BENCH_scheme_sweep: one plan over every profile and layout axis ----

ExperimentPlan scheme_sweep_plan(const BenchCli& cli) {
  ExperimentPlan plan;
  plan.name = "scheme_sweep";
  plan.profiles.clear();
  for (const auto& name : minimpi::MachineProfile::names())
    plan.profiles.push_back(&minimpi::MachineProfile::by_name(name));
  // The paper's legend plus the extension schemes: the pipelined
  // packing(p) rides in the default sweep so its large-message
  // trajectory is tracked run over run (ROADMAP perf target).
  for (const auto& name : extended_scheme_names())
    plan.schemes.push_back(name);
  plan.layouts = {LayoutAxis::stride2(), LayoutAxis::indexed_blocks()};
  plan.sizes_bytes =
      cli.quick ? std::vector<std::size_t>{100'000, 10'000'000}
                : log_sizes(1e4, 1e8, cli.effective_per_decade());
  plan.harness.reps = cli.effective_reps();
  plan.functional_payload_limit = 1 << 16;  // mostly modeled: fast
  return plan;
}

// --- BENCH_pattern_sweep: N-rank patterns on the same engine ------------

ExperimentPlan pattern_sweep_plan(const BenchCli& cli) {
  ExperimentPlan plan;
  plan.name = "pattern_sweep";
  plan.patterns =
      cli.patterns.empty()
          ? std::vector<std::string>{"pingpong", "multi-pair(4)",
                                     "halo2d(3x3)", "halo3d(2x2x2)",
                                     "transpose(4)"}
          : cli.patterns;
  plan.profiles = {&minimpi::MachineProfile::skx_impi(),
                   &minimpi::MachineProfile::knl_impi()};
  plan.schemes = pattern_scheme_names();
  plan.sizes_bytes =
      cli.quick ? std::vector<std::size_t>{8'192, 524'288}
                : std::vector<std::size_t>{8'192, 262'144, 8'388'608};
  plan.harness.reps = cli.effective_reps();
  plan.functional_payload_limit = 1 << 14;  // halo faces stay light
  return plan;
}

// --- BENCH_eager_limit: paper 4.5 ablation ------------------------------

ExperimentPlan eager_limit_plan(const BenchCli& cli) {
  ExperimentPlan plan;
  plan.name = "eager_limit";
  plan.profiles = {&minimpi::MachineProfile::skx_impi()};
  plan.sizes_bytes = cli.quick ? std::vector<std::size_t>{1'000'000'000}
                               : std::vector<std::size_t>{10'000'000,
                                                          1'000'000'000};
  plan.schemes = {"reference", "vector type"};
  plan.harness.reps = cli.effective_reps();
  plan.functional_payload_limit = 1 << 16;
  return plan;
}

/// Apply the `--replay` routing to a plan.  `--iters` is deliberately
/// NOT forwarded: extrapolated iteration counts change the sample
/// population, and the golden files must stay byte-identical across
/// execution modes — here `--iters` only sizes the engine-scale
/// measurement below.
ExperimentPlan with_replay(ExperimentPlan plan, const BenchCli& cli) {
  plan.compiled_replay = cli.replay;
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = BenchCli::parse(argc, argv);
  const ExecutorOptions exec{cli.jobs};
  const int expected = cli.csv ? 9 : 0;
  int written = 0;

  const auto maybe_write = [&](const std::string& name, auto&& writer) {
    if (!cli.csv) return;
    if (benchcommon::write_store_file(cli.out_dir, name, writer)) ++written;
  };

  {
    ResultStore store;
    run_pack_engine(store, cli.quick);
    maybe_write("BENCH_pack_engine.json", [&](std::ostream& os) {
      store.write_bench_pack_engine_json(os);
    });
  }
  {
    ResultStore store;
    store.add_plan(run_plan(with_replay(scheme_sweep_plan(cli), cli), exec));
    maybe_write("BENCH_scheme_sweep.json", [&](std::ostream& os) {
      store.write_bench_sweep_json(os);
    });
  }
  {
    ResultStore store;
    store.add_plan(run_plan(with_replay(pattern_sweep_plan(cli), cli), exec));
    maybe_write("BENCH_pattern_sweep.json", [&](std::ostream& os) {
      store.write_bench_pattern_sweep_json(os);
    });
  }
  {
    constexpr std::size_t override_bytes = std::size_t{4} << 30;
    ExperimentPlan plan = with_replay(eager_limit_plan(cli), cli);
    const PlanResult base = run_plan(plan, exec);
    plan.eager_limit_override = override_bytes;
    const PlanResult raised = run_plan(plan, exec);
    maybe_write("BENCH_eager_limit.json", [&](std::ostream& os) {
      ResultStore::write_bench_eager_limit_json(
          os, base.sweep(0, 0), raised.sweep(0, 0), override_bytes);
    });
  }

  {
    // The ref-[2] what-if on the charge timeline: the same small grid
    // with and without the `nic_gather` capability (the standalone
    // `ablation_nic_pipelining` bench runs the denser grid).
    ExperimentPlan plan;
    plan.name = "ablation_nic_pipelining";
    plan.profiles = {&minimpi::MachineProfile::skx_impi()};
    plan.sizes_bytes = cli.quick
                           ? std::vector<std::size_t>{100'000'000,
                                                      1'000'000'000}
                           : log_sizes(1e6, 1e9, 2);
    plan.schemes = {"reference", "vector type"};
    plan.harness.reps = cli.effective_reps();
    const SweepResult plain = run_plan(plan, exec).sweep(0, 0);
    minimpi::MachineProfile umr = minimpi::MachineProfile::skx_impi();
    umr.name = "skx-impi+umr";
    umr.nic_gather = true;
    plan.profiles = {&umr};
    const SweepResult piped = run_plan(plan, exec).sweep(0, 0);
    maybe_write("BENCH_ablation_nic_pipelining.json", [&](std::ostream& os) {
      ResultStore::write_bench_ablation_json(
          os, "ablation_nic_pipelining",
          {{"serial-nic", plain}, {"nic-gather", piped}});
    });
  }
  {
    // Static link-contention factor vs emergent NIC occupancy on the
    // patterns where they disagree (the full comparison and the
    // documented verdict live in `ablation_contention`).
    ExperimentPlan plan;
    plan.name = "ablation_contention";
    plan.patterns = {"multi-pair(4)", "transpose(4)"};
    plan.profiles = {&minimpi::MachineProfile::skx_impi()};
    plan.schemes = {"vector type"};
    plan.sizes_bytes = {100'000, 10'000'000};
    plan.harness.reps = cli.effective_reps();
    plan.functional_payload_limit = 1 << 14;
    const PlanResult baseline = run_plan(plan, exec);
    plan.nic_occupancy_contention = true;
    const PlanResult emergent = run_plan(plan, exec);
    maybe_write("BENCH_ablation_contention.json", [&](std::ostream& os) {
      ResultStore::write_bench_ablation_json(
          os, "ablation_contention",
          {{"baseline", baseline.sweep(0, 0, 0)},
           {"baseline", baseline.sweep(1, 0, 0)},
           {"nic-occupancy", emergent.sweep(0, 0, 0)},
           {"nic-occupancy", emergent.sweep(1, 0, 0)}});
    });
  }

  {
    // Wall-clock engine throughput: compiled replay vs direct.  Small
    // iteration counts here — the standalone `engine_scale` bench runs
    // the denser measurement.
    const int iters = cli.iters > 0 ? cli.iters : (cli.quick ? 60 : 200);
    const std::vector<EngineScaleRecord> records =
        benchcommon::measure_engine_scale(iters);
    maybe_write("BENCH_engine_scale.json", [&](std::ostream& os) {
      ResultStore::write_bench_engine_scale_json(os, records);
    });
  }
  {
    // Universe scaling: whole modeled-mode universes at growing rank
    // counts (the standalone `universe_scale` bench prints the curve
    // and asserts it reaches 1024 ranks).
    const int reps = cli.quick ? 3 : 8;
    const std::vector<UniverseScaleRecord> records =
        benchcommon::measure_universe_scale(reps);
    maybe_write("BENCH_universe_scale.json", [&](std::ostream& os) {
      ResultStore::write_bench_universe_scale_json(os, records);
    });
  }
  {
    // Collective algorithms as transfer schedules: virtual-time grids
    // whose tree-vs-ring crossover emerges from timeline occupancy
    // (the standalone `collective_sweep` bench asserts the crossover
    // in its exit code; here the artifact is golden — byte-identical
    // across job counts and across direct vs --replay execution).
    const std::vector<CollectiveSweepRecord> records =
        benchcommon::measure_collective_sweep(
            cli.quick, cli.effective_reps(), cli.replay, cli.collectives);
    maybe_write("BENCH_collective_sweep.json", [&](std::ostream& os) {
      ResultStore::write_bench_collective_sweep_json(os, records);
    });
  }

  if (cli.csv)
    std::cout << written << "/9 benchmark files written to " << cli.out_dir
              << "\n";
  else
    std::cout << "dry run (--no-csv): benchmarks executed, nothing written\n";
  return written == expected ? 0 : 1;
}
