// Ablation: static link-contention factor vs emergent NIC-occupancy
// contention (closes the ROADMAP item on calibrating
// `link_contention_factor`).
//
// The paper's §4.7 "limited test" saw *no* degradation with all node
// pairs communicating.  The old way to ask the what-if was the static
// `link_contention_factor`: a bandwidth rescale by the pattern's
// concurrent-sender count.  The charge-timeline redesign offers the
// mechanistic alternative: every injection occupies the sending rank's
// NIC FIFO (`UniverseOptions::nic_occupancy_contention`), so
// contention *emerges* exactly where sends genuinely overlap on one
// NIC and nowhere else.
//
// This bench runs the same (pattern x size) grid, vector-type sends on
// skx-impi, under three configurations:
//
//   baseline       factor 0.0, occupancy off  (the seed model)
//   static-factor  link_contention_factor = 0.25 on a profile copy
//   nic-occupancy  emergent FIFO contention
//
// over `multi-pair(4)` (one injection per rank per step: NICs never
// queue) and `transpose(4)` (each rank fires 3 injections per step:
// NICs queue).  The documented verdict — asserted by the exit code:
//
//   * emergent contention slows transpose and leaves multi-pair
//     untouched, reproducing §4.7 *mechanistically*;
//   * the static factor mis-models multi-pair: it rescales bandwidth
//     by `concurrent_senders` even though each sender there owns its
//     NIC outright, predicting a degradation the paper explicitly did
//     not observe.  Use it only for genuinely shared links (e.g. many
//     ranks behind one adapter), and prefer the emergent model
//     everywhere else.
//
// Emits `BENCH_ablation_contention.json` (run_all emits the same
// artifact on its quick grid).
#include <iomanip>
#include <iostream>
#include <vector>

#include "figure_common.hpp"

using namespace ncsend;

namespace {

struct Variant {
  std::string label;
  SweepResult multi_pair;
  SweepResult transpose;
};

Variant run_variant(const std::string& label,
                    const minimpi::MachineProfile& profile,
                    bool nic_occupancy, const BenchCli& cli) {
  ExperimentPlan plan;
  plan.name = "ablation_contention";
  plan.patterns = {"multi-pair(4)", "transpose(4)"};
  plan.profiles = {&profile};
  plan.schemes = {"vector type"};
  plan.sizes_bytes = cli.quick
                         ? std::vector<std::size_t>{100'000, 10'000'000}
                         : std::vector<std::size_t>{100'000, 1'000'000,
                                                    10'000'000, 100'000'000};
  plan.harness.reps = cli.effective_reps();
  plan.functional_payload_limit = 1 << 14;
  plan.nic_occupancy_contention = nic_occupancy;
  const PlanResult r = run_plan(plan, ExecutorOptions{cli.jobs});
  return {label, r.sweep(0, 0, 0), r.sweep(1, 0, 0)};
}

double slowdown(const SweepResult& v, const SweepResult& base,
                std::size_t si) {
  return v.time(si, 0) / base.time(si, 0) - 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchCli cli = BenchCli::parse(argc, argv);
  cli.reject_patterns("ablation_contention");

  const minimpi::MachineProfile& skx = minimpi::MachineProfile::skx_impi();
  minimpi::MachineProfile contended = skx;
  contended.name = "skx-impi+static0.25";
  contended.link_contention_factor = 0.25;

  const Variant baseline = run_variant("baseline", skx, false, cli);
  const Variant statict = run_variant("static-factor", contended, false, cli);
  const Variant emergent = run_variant("nic-occupancy", skx, true, cli);

  std::cout << "== Ablation: static contention factor vs emergent "
               "NIC occupancy (vector type, skx-impi) ==\n\n"
            << "slowdown over the uncontended baseline, per pattern:\n\n"
            << std::setw(12) << "bytes" << std::setw(22)
            << "multi-pair static" << std::setw(22) << "multi-pair emergent"
            << std::setw(22) << "transpose static" << std::setw(22)
            << "transpose emergent" << "\n";
  bool emergent_slows_transpose = false;
  bool emergent_spares_multi_pair = true;
  bool static_mismodels_multi_pair = false;
  for (std::size_t si = 0; si < baseline.multi_pair.sizes_bytes.size();
       ++si) {
    const double mp_static = slowdown(statict.multi_pair,
                                      baseline.multi_pair, si);
    const double mp_emerg = slowdown(emergent.multi_pair,
                                     baseline.multi_pair, si);
    const double tr_static = slowdown(statict.transpose,
                                      baseline.transpose, si);
    const double tr_emerg = slowdown(emergent.transpose,
                                     baseline.transpose, si);
    std::cout << std::setw(12) << baseline.multi_pair.sizes_bytes[si]
              << std::fixed << std::setprecision(1) << std::setw(21)
              << mp_static * 100.0 << "%" << std::setw(21)
              << mp_emerg * 100.0 << "%" << std::setw(21)
              << tr_static * 100.0 << "%" << std::setw(21)
              << tr_emerg * 100.0 << "%\n";
    if (tr_emerg > 0.01) emergent_slows_transpose = true;
    if (mp_emerg > 0.01) emergent_spares_multi_pair = false;
    if (mp_static > 0.01) static_mismodels_multi_pair = true;
  }

  std::cout
      << "\nemergent NIC occupancy slows transpose(4): "
      << (emergent_slows_transpose ? "yes" : "NO")
      << "\nemergent NIC occupancy leaves multi-pair(4) untouched "
         "(paper 4.7): "
      << (emergent_spares_multi_pair ? "yes" : "NO")
      << "\nstatic factor wrongly degrades multi-pair(4) (per-rank NICs "
         "never share the link): "
      << (static_mismodels_multi_pair ? "yes - fallback only" : "no")
      << "\n";

  if (cli.csv) {
    benchcommon::write_store_file(
        cli.out_dir, "BENCH_ablation_contention.json", [&](std::ostream& os) {
          ResultStore::write_bench_ablation_json(
              os, "ablation_contention",
              {{baseline.label, baseline.multi_pair},
               {baseline.label, baseline.transpose},
               {statict.label, statict.multi_pair},
               {statict.label, statict.transpose},
               {emergent.label, emergent.multi_pair},
               {emergent.label, emergent.transpose}});
        });
  }
  const bool ok = emergent_slows_transpose && emergent_spares_multi_pair &&
                  static_mismodels_multi_pair;
  return ok ? 0 : 1;
}
