// Ablation for the paper's reference [2] (Li et al., user-mode memory
// registration): "Attaining such overlap for non-contiguous data
// depends on advanced functionality of the network interface."
//
// The same plan registered twice — plain skx-impi, then a copy of the
// profile with the `nic_gather` capability flipped on.  The capability
// is not a hand-built what-if branch: it flows through the charge
// timeline (minimpi/net/timeline.hpp), where it stops `wire` atoms
// from occupying the CPU, so the rendezvous pack overlaps its own
// injection *and* the staging-buffer capacity penalty vanishes — the
// paper's future-work scenario as a real measured ablation.  Emits
// `BENCH_ablation_nic_pipelining.json` through the unified ResultStore
// writer (run_all emits the same artifact on its quick grid).
#include <iomanip>
#include <iostream>

#include "figure_common.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const BenchCli cli = BenchCli::parse(argc, argv);
  cli.reject_patterns("ablation_nic_pipelining");
  ExperimentPlan plan;
  plan.name = "ablation_nic_pipelining";
  plan.profiles = {&minimpi::MachineProfile::skx_impi()};
  plan.sizes_bytes = log_sizes(1e6, 1e9, 2);
  plan.schemes = {"reference", "vector type"};
  plan.harness.reps = cli.effective_reps();

  const ExecutorOptions exec{cli.jobs};
  const SweepResult plain = run_plan(plan, exec).sweep(0, 0);

  minimpi::MachineProfile umr = minimpi::MachineProfile::skx_impi();
  umr.name = "skx-impi+umr";
  umr.nic_gather = true;
  plan.profiles = {&umr};
  const SweepResult piped = run_plan(plan, exec).sweep(0, 0);

  std::cout << "== Ablation: NIC gather/pipelining for derived types "
               "(paper ref [2]) ==\n\n"
            << std::setw(12) << "bytes" << std::setw(16) << "vector/plain"
            << std::setw(16) << "vector/UMR" << std::setw(12) << "recovered"
            << "\n";
  bool helps_large = false;
  for (std::size_t si = 0; si < plain.sizes_bytes.size(); ++si) {
    const double t_plain = plain.time(si, 1);
    const double t_piped = piped.time(si, 1);
    const double ref = plain.time(si, 0);
    std::cout << std::setw(12) << plain.sizes_bytes[si] << std::setw(16)
              << std::scientific << std::setprecision(3) << t_plain
              << std::setw(16) << t_piped << std::setw(11) << std::fixed
              << std::setprecision(1) << (t_plain / t_piped - 1.0) * 100.0
              << "%\n";
    if (plain.sizes_bytes[si] >= 100'000'000 && t_piped < 0.8 * t_plain &&
        t_piped > ref)
      helps_large = true;
  }
  std::cout << "\nNIC pipelining recovers a large fraction of the "
               "derived-type penalty at large sizes: "
            << (helps_large ? "yes" : "NO") << "\n";

  if (cli.csv) {
    benchcommon::write_store_file(
        cli.out_dir, "BENCH_ablation_nic_pipelining.json",
        [&](std::ostream& os) {
          ResultStore::write_bench_ablation_json(
              os, "ablation_nic_pipelining",
              {{"serial-nic", plain}, {"nic-gather", piped}});
        });
  }
  return helps_large ? 0 : 1;
}
