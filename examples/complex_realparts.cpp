// The paper's first motivating workload: sending "the real parts of a
// complex array" (§1).  A std::complex<double> array is exactly the
// stride-2 layout; this example benchmarks all eight schemes on it at
// three sizes and prints the paper-style comparison.
//
//   $ ./complex_realparts [machine]     (default: skx-impi)
#include <complex>
#include <iomanip>
#include <iostream>
#include <vector>

#include "ncsend/ncsend.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const std::string machine = argc > 1 ? argv[1] : "skx-impi";
  const auto& profile = minimpi::MachineProfile::by_name(machine);

  std::cout << "Sending the real parts of a complex<double> array\n"
            << "machine: " << profile.description << "\n\n";

  // Demonstrate the layout on actual std::complex data first.
  minimpi::UniverseOptions opts;
  opts.nranks = 2;
  minimpi::Universe::run(opts, [](minimpi::Comm& comm) {
    constexpr std::size_t n = 256;
    minimpi::Datatype real_parts =
        minimpi::Datatype::vector(n, 1, 2, minimpi::Datatype::float64());
    real_parts.commit();
    if (comm.rank() == 0) {
      std::vector<std::complex<double>> z(n);
      for (std::size_t i = 0; i < n; ++i)
        z[i] = {static_cast<double>(i), -static_cast<double>(i)};
      comm.send(z.data(), 1, real_parts, 1, 0);
    } else {
      std::vector<double> re(n);
      comm.recv(re.data(), n, minimpi::Datatype::float64(), 0, 0);
      bool ok = true;
      for (std::size_t i = 0; i < n; ++i) ok &= re[i] == static_cast<double>(i);
      std::cout << "real parts extracted on the wire: "
                << (ok ? "correct" : "WRONG") << "\n\n";
    }
  });

  // Now the performance comparison, paper-style.
  SweepConfig cfg;
  cfg.profile = &profile;
  cfg.sizes_bytes = {100'000, 10'000'000, 1'000'000'000};
  cfg.harness.reps = 10;
  const SweepResult r = run_sweep(cfg);

  std::cout << std::setw(14) << "scheme";
  for (const std::size_t s : r.sizes_bytes)
    std::cout << std::setw(12) << (std::to_string(s / 1000) + " KB");
  std::cout << "   (slowdown vs contiguous send)\n";
  for (std::size_t ci = 0; ci < r.schemes.size(); ++ci) {
    std::cout << std::setw(14) << r.schemes[ci];
    for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si)
      std::cout << std::setw(12) << std::fixed << std::setprecision(2)
                << r.slowdown(si, ci);
    std::cout << "\n";
  }

  const auto rec = advise(profile, 1'000'000'000,
                          Layout::strided(125'000'000, 1, 2));
  std::cout << "\nfor the 1 GB case the advisor says: " << rec.scheme
            << "\n";
  return 0;
}
