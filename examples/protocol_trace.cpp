// Protocol explorer: run one ping-pong of a chosen scheme with tracing
// enabled and dump every protocol decision the simulated MPI made —
// which sends went eager vs rendezvous, what was staged, when fences
// synchronized — plus the *typed charge atoms* behind the numbers:
// every scheduled atom (cpu_pack, wire, handshake, ...) with its
// resource lane and [start, finish) placement, rendered as the
// sender's per-resource timeline.  For a rendezvous send this shows
// the paper's central mechanism directly: the wire atom occupies the
// CPU lane too, so it cannot start until the pack finishes.
//
// The final section compiles the same cell into a `CommPlan` and dumps
// its per-rank action arrays — the frozen charge program the
// experiment layer replays instead of re-running the full stack
// (ncsend/plan/, DESIGN.md §2.9).
//
//   $ ./protocol_trace ["scheme"] [payload_bytes]
//   $ ./protocol_trace "vector type" 1000000
//   $ ./protocol_trace onesided 4096
#include <iostream>

#include "ncsend/ncsend.hpp"
#include "ncsend/plan/comm_plan.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const std::string scheme_name = argc > 1 ? argv[1] : "vector type";
  const std::size_t bytes =
      argc > 2 ? static_cast<std::size_t>(std::stoull(argv[2])) : 1'000'000;
  const Layout layout = Layout::strided(std::max<std::size_t>(1, bytes / 8),
                                        1, 2);

  auto trace = std::make_shared<minimpi::TraceLog>();
  minimpi::UniverseOptions opts;
  opts.nranks = 2;
  opts.trace = trace;
  opts.wtime_resolution = 0.0;

  RunResult result;
  HarnessConfig cfg;
  cfg.reps = 1;  // one rep: a readable trace
  cfg.flush = false;
  minimpi::Universe::run(opts, [&](minimpi::Comm& comm) {
    auto scheme = make_scheme(scheme_name);
    run_pingpong_rank(comm, *scheme, layout, cfg, &result);
  });

  std::cout << "scheme \"" << scheme_name << "\", payload "
            << layout.payload_bytes() << " B, layout " << layout.name()
            << "\nping-pong time " << result.time() << " s (virtual), "
            << (result.verified ? "verified" : "UNVERIFIED") << "\n"
            << "\nprotocol trace (" << trace->size() << " events):\n";
  trace->dump(std::cout);

  std::cout << "\nsummary: " << trace->count(minimpi::TraceEvent::send_eager)
            << " eager, "
            << trace->count(minimpi::TraceEvent::send_rendezvous)
            << " rendezvous, "
            << trace->count(minimpi::TraceEvent::send_buffered)
            << " buffered sends; "
            << trace->count(minimpi::TraceEvent::win_fence) << " fences; "
            << trace->count(minimpi::TraceEvent::rma_put) << " puts; "
            << trace->count(minimpi::TraceEvent::collective)
            << " collectives\n";

  // The typed charge atoms behind the trace, as the sender's
  // per-resource timeline (rank 0 performs the non-contiguous ping).
  std::cout << "\ntyped charge atoms ("
            << trace->charges().size() << " scheduled):\n";
  trace->dump_timeline(std::cout, 0);

  // The paper's "nothing overlaps pack and wire": for a rendezvous
  // send the wire atom also occupies the CPU, so it starts exactly
  // where the pack ends.  Show the serialization explicitly.
  if (trace->count(minimpi::TraceEvent::send_rendezvous) > 0 &&
      trace->charge_count(minimpi::ChargeAtom::cpu_pack) > 0) {
    double pack_end = 0.0, wire_start = 0.0;
    for (const minimpi::ChargeRecord& r : trace->charges()) {
      if (r.rank != 0) continue;
      if (r.atom == minimpi::ChargeAtom::cpu_pack)
        pack_end = std::max(pack_end, r.finish);
      if (r.atom == minimpi::ChargeAtom::wire && wire_start == 0.0)
        wire_start = r.start;
    }
    std::cout << "\nrendezvous serialization: pack ends " << pack_end
              << ", wire starts " << wire_start
              << (wire_start >= pack_end
                      ? " -> pack and wire serialize (no NIC gather)\n"
                      : " -> wire overlaps the pack (NIC gather)\n");
  }

  // The compiled form of this cell: the flat action array replay
  // interprets.  (A separate capture run — the traced universe above
  // used 1 rep, too few to pin a steady state.)
  minimpi::UniverseOptions copts;
  copts.wtime_resolution = 0.0;
  HarnessConfig ccfg;
  ccfg.reps = 2;
  const auto pattern = CommPattern::by_name("pingpong");
  const plan::CommPlan cp =
      plan::compile_cell(copts, *pattern, scheme_name, layout, ccfg);
  std::cout << "\ncompiled plan (what the experiment layer replays):\n";
  cp.dump(std::cout);
  return 0;
}
