// Command-line advisor: given a machine, a message size, and optionally
// a communication pattern, print the paper's recommendation and back it
// with a quick measured comparison.
//
//   $ ./scheme_advisor [machine] [payload_bytes] [pattern]
//   $ ./scheme_advisor knl-impi 500000000
//   $ ./scheme_advisor skx-impi 50000000 "halo3d(2x2x2)"
#include <iomanip>
#include <iostream>

#include "ncsend/ncsend.hpp"

using namespace ncsend;

int main(int argc, char** argv) {
  const std::string machine = argc > 1 ? argv[1] : "skx-impi";
  const std::size_t bytes =
      argc > 2 ? static_cast<std::size_t>(std::stoull(argv[2])) : 10'000'000;
  const std::string pattern_name = argc > 3 ? argv[3] : "";
  const auto& profile = minimpi::MachineProfile::by_name(machine);
  const Layout layout = Layout::strided(std::max<std::size_t>(1, bytes / 8),
                                        1, 2);

  std::cout << "machine: " << profile.description << "\n"
            << "payload: " << bytes << " B, layout: " << layout.name()
            << "\n\n";

  const Recommendation rec = advise(profile, bytes, layout);
  std::cout << "recommended scheme (2-rank ping-pong): " << rec.scheme
            << "\n  " << rec.rationale << "\n";
  if (!rec.avoid.empty()) {
    std::cout << "\navoid:\n";
    for (const auto& a : rec.avoid) std::cout << "  - " << a << "\n";
  }

  // The §5 conclusion, adjusted for the traffic the message rides in:
  // neighbor count and link contention shift the thresholds, and
  // fence-based one-sided is flagged beyond two ranks.
  if (!pattern_name.empty()) {
    const auto pattern = CommPattern::by_name(pattern_name);
    const Recommendation prec = advise(profile, bytes, layout, *pattern);
    std::cout << "\nrecommended scheme under " << pattern->name() << " ("
              << pattern->nranks() << " ranks, "
              << pattern->concurrent_senders()
              << " concurrent senders): " << prec.scheme << "\n  "
              << prec.rationale << "\n";
    if (!prec.avoid.empty()) {
      std::cout << "\navoid under this pattern:\n";
      for (const auto& a : prec.avoid) std::cout << "  - " << a << "\n";
    }
  }

  // Collective algorithm choice: when the message is one collective's
  // payload, which topology should carry it on this machine?
  {
    const int coll_ranks = pattern_name.empty()
                               ? 64
                               : std::max(2, CommPattern::by_name(
                                                 pattern_name)->nranks());
    std::cout << "\ncollective algorithms at N=" << coll_ranks
              << " ranks (tree/ring crossover on this machine):\n";
    for (const char* op :
         {"allreduce", "bcast", "allgather", "reduce-scatter"}) {
      const CollectiveAdvice adv =
          advise_collective(profile, op, bytes, coll_ranks);
      std::cout << "  " << std::setw(14) << op << " -> " << std::setw(4)
                << adv.algorithm << "  (crossover "
                << adv.crossover_bytes << " B)\n";
    }
    const CollectiveAdvice why =
        advise_collective(profile, "allreduce", bytes, coll_ranks);
    std::cout << "  " << why.rationale << "\n";
  }

  std::cout << "\nmeasured evidence (ping-pong on the simulated fabric):\n";
  SweepConfig cfg;
  cfg.profile = &profile;
  cfg.sizes_bytes = {bytes};
  cfg.harness.reps = 10;
  const SweepResult r = run_sweep(cfg);
  for (std::size_t ci = 0; ci < r.schemes.size(); ++ci) {
    std::cout << "  " << std::setw(12) << r.schemes[ci] << "  "
              << std::scientific << std::setprecision(3) << r.time(0, ci)
              << " s   " << std::fixed << std::setprecision(2)
              << std::setw(6) << r.bandwidth_GBps(0, ci) << " GB/s   "
              << "slowdown " << r.slowdown(0, ci) << "\n";
  }
  std::cout << "\navailable machines:";
  for (const auto& n : minimpi::MachineProfile::names())
    std::cout << " " << n;
  std::cout << "\navailable patterns:";
  for (const auto& n : CommPattern::names()) std::cout << " " << n;
  std::cout << "\n";
  return 0;
}
