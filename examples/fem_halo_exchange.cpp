// The paper's third motivating workload: "irregularly spaced elements
// in a FEM boundary transfer" (§1).  Four ranks hold partitions of a
// synthetic unstructured mesh; each sends its irregular boundary nodes
// to the next rank in a ring, using indexed datatypes, and accumulates
// the received halo values — a full multi-rank application of minimpi.
//
//   $ ./fem_halo_exchange
#include <iomanip>
#include <iostream>
#include <vector>

#include "ncsend/ncsend.hpp"

using namespace minimpi;

namespace {
constexpr std::size_t mesh_points = 40'000;   // per-rank partition size
constexpr std::size_t boundary_nodes = 2'000;  // nodes shared with neighbor
}  // namespace

int main() {
  UniverseOptions opts;
  opts.nranks = 4;

  Universe::run(opts, [](Comm& comm) {
    const Rank next = (comm.rank() + 1) % comm.size();
    const Rank prev = (comm.rank() + comm.size() - 1) % comm.size();

    // Each rank's boundary-node set is irregular and rank-specific.
    const ncsend::Layout boundary = ncsend::Layout::fem_boundary(
        boundary_nodes, mesh_points,
        /*seed=*/100 + static_cast<std::uint64_t>(comm.rank()));
    Datatype boundary_type = boundary.datatype(ncsend::TypeStyle::indexed);

    // Solution vector: value encodes (rank, mesh index).
    std::vector<double> u(mesh_points);
    for (std::size_t i = 0; i < mesh_points; ++i)
      u[i] = comm.rank() * 1e6 + static_cast<double>(i);

    // Halo exchange around the ring: send my boundary (non-contiguous),
    // receive the neighbor's into a contiguous ghost buffer.
    std::vector<double> ghost(boundary_nodes);
    const double t0 = comm.wtime();
    comm.sendrecv(u.data(), 1, boundary_type, next, /*sendtag=*/1,
                  ghost.data(), boundary_nodes, Datatype::float64(), prev,
                  /*recvtag=*/1);
    const double dt = comm.wtime() - t0;

    // Verify against the sender's known layout (same seed recipe).
    const ncsend::Layout sender_boundary = ncsend::Layout::fem_boundary(
        boundary_nodes, mesh_points, 100 + static_cast<std::uint64_t>(prev));
    bool ok = true;
    sender_boundary.for_each_element([&](std::size_t k, std::size_t src) {
      if (ghost[k] != prev * 1e6 + static_cast<double>(src)) ok = false;
    });

    const double worst = comm.allreduce(dt, ReduceOp::max);
    const double all_ok = comm.allreduce(ok ? 1.0 : 0.0, ReduceOp::min);
    if (comm.rank() == 0) {
      std::cout << "4-rank FEM halo exchange (" << boundary_nodes
                << " irregular nodes per boundary)\n"
                << "ghost data " << (all_ok > 0.5 ? "verified" : "WRONG")
                << ", slowest rank " << std::scientific
                << std::setprecision(3) << worst << " s (virtual)\n\n";
    }
  });

  // How do the schemes compare on this irregular layout?
  ncsend::SweepConfig cfg;
  cfg.sizes_bytes = {boundary_nodes * 8};
  cfg.schemes = {"reference", "copying", "vector type", "packing(v)"};
  cfg.layout_factory = [](std::size_t elems) {
    return ncsend::Layout::fem_boundary(elems, elems * 20);
  };
  cfg.harness.reps = 10;
  const auto r = ncsend::run_sweep(cfg);
  std::cout << "scheme comparison on the FEM boundary layout ("
            << r.sizes_bytes[0] << " B):\n";
  for (std::size_t ci = 0; ci < r.schemes.size(); ++ci)
    std::cout << "  " << std::setw(12) << r.schemes[ci] << "  slowdown "
              << std::fixed << std::setprecision(2) << r.slowdown(0, ci)
              << "\n";
  std::cout << "(\"vector type\" falls back to the indexed constructor for "
               "irregular data)\n";
  return 0;
}
