// The paper's motivating halo workload (§1), rebased on the pattern
// subsystem: a 3x3 grid of ranks — a structured FEM domain
// decomposition — exchanges boundary faces every step.  Faces to
// row-neighbors are contiguous rows; faces to column-neighbors are true
// columns, i.e. the canonical blocklen-1 strided vector.  The exchange
// runs on the same `halo2d` CommPattern the benchmark sweeps measure,
// so the narrative example and the measured pattern share one code
// path; payloads move for real and are verified end to end.
//
//   $ ./fem_halo_exchange
#include <iomanip>
#include <iostream>
#include <vector>

#include "ncsend/ncsend.hpp"

using namespace minimpi;

namespace {
constexpr std::size_t face_nodes = 500;  // doubles per boundary face
}  // namespace

int main() {
  const auto pattern = ncsend::CommPattern::by_name("halo2d(3x3)");
  // The base layout sizes the faces; halo2d derives its own per-face
  // layouts (contiguous rows, strided columns) from the element count.
  const ncsend::Layout base = ncsend::Layout::strided(face_nodes, 1, 2);

  UniverseOptions opts;
  // Column faces live in an n x n local block; keep them functional so
  // every ghost value is verified against the sender's fill pattern.
  opts.functional_payload_limit = std::size_t{8} << 20;

  ncsend::HarnessConfig cfg;
  cfg.reps = 10;

  std::cout << "3x3 FEM halo exchange on the halo2d pattern ("
            << pattern->nranks() << " ranks, " << face_nodes
            << " doubles per face, interior ranks send 4 faces/step)\n\n"
            << std::setw(14) << "scheme" << std::setw(14) << "step time"
            << std::setw(10) << "slowdown" << std::setw(10) << "data"
            << "\n";

  const std::vector<std::string> schemes = {"reference", "copying",
                                            "vector type", "packing(v)"};
  bool all_ok = true;
  double reference_time = 0.0;
  for (const std::string& scheme : schemes) {
    const ncsend::RunResult r =
        ncsend::run_pattern_experiment(opts, *pattern, scheme, base, cfg);
    if (scheme == "reference") reference_time = r.time();
    const bool ok = r.data_checked && r.verified;
    all_ok = all_ok && ok;
    std::cout << std::setw(14) << scheme << std::setw(14) << std::scientific
              << std::setprecision(3) << r.time() << std::setw(10)
              << std::fixed << std::setprecision(2)
              << (reference_time > 0.0 ? r.time() / reference_time : 0.0)
              << std::setw(10) << (ok ? "verified" : "WRONG") << "\n";
  }

  std::cout << "\nThe ranking matches the paper's ping-pong finding: "
               "whole-message packing\nstays with manual copying, and both "
               "pay the gather cost over the raw\ncontiguous send — now "
               "demonstrated inside multi-rank halo traffic.\n";
  return all_ok ? 0 : 1;
}
