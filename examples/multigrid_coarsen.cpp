// The paper's second motivating workload: "every other element of a
// grid during multigrid coarsening" (§1).  A fine grid is restricted
// level by level; at each level the coarse points (stride 2^k) move to
// the rank that owns the next level, and we compare send schemes as the
// stride grows.
//
//   $ ./multigrid_coarsen
#include <iomanip>
#include <iostream>
#include <vector>

#include "ncsend/ncsend.hpp"

using namespace minimpi;

int main() {
  constexpr std::size_t fine_points = 1 << 20;  // 1M-point fine grid

  UniverseOptions opts;
  opts.nranks = 2;
  Universe::run(opts, [](Comm& comm) {
    std::vector<double> grid(fine_points);
    for (std::size_t i = 0; i < fine_points; ++i)
      grid[i] = static_cast<double>(i % 977);

    if (comm.rank() == 0) std::cout << "level  coarse points   transfer(s)\n";
    for (int level = 1; level <= 4; ++level) {
      const std::size_t coarse = fine_points >> level;
      Datatype coarsen = Datatype::vector(
          coarse, 1, std::ptrdiff_t{1} << level, Datatype::float64());
      coarsen.commit();
      if (comm.rank() == 0) {
        const double t0 = comm.wtime();
        comm.send(grid.data(), 1, coarsen, 1, level);
        comm.recv(nullptr, 0, Datatype::byte(), 1, 100 + level);
        std::cout << std::setw(5) << level << std::setw(15) << coarse
                  << std::setw(14) << std::scientific << std::setprecision(3)
                  << comm.wtime() - t0 << "\n";
      } else {
        std::vector<double> coarse_grid(coarse);
        comm.recv(coarse_grid.data(), coarse, Datatype::float64(), 0, level);
        bool ok = true;
        for (std::size_t i = 0; i < coarse; ++i)
          ok &= coarse_grid[i] ==
                static_cast<double>((i << level) % 977);
        if (!ok) std::cout << "  level " << level << " VERIFY FAILED\n";
        comm.send(nullptr, 0, Datatype::byte(), 0, 100 + level);
      }
    }
  });

  // Scheme comparison across coarsening levels: payload halves while the
  // stride doubles, so per-byte copy cost stays put but totals shrink.
  std::cout << "\nscheme slowdowns per level (payload = coarse points):\n"
            << std::setw(7) << "level" << std::setw(12) << "copying"
            << std::setw(14) << "vector type" << std::setw(12)
            << "packing(v)" << "\n";
  for (int level = 1; level <= 4; ++level) {
    ncsend::SweepConfig cfg;
    cfg.sizes_bytes = {(fine_points >> level) * 8};
    cfg.schemes = {"reference", "copying", "vector type", "packing(v)"};
    cfg.layout_factory = [level](std::size_t elems) {
      return ncsend::Layout::multigrid(elems, level);
    };
    cfg.harness.reps = 10;
    const auto r = ncsend::run_sweep(cfg);
    std::cout << std::setw(7) << level;
    for (std::size_t ci = 1; ci < r.schemes.size(); ++ci)
      std::cout << std::setw(12 + (ci == 2 ? 2 : 0)) << std::fixed
                << std::setprecision(2) << r.slowdown(0, ci);
    std::cout << "\n";
  }
  std::cout << "(the restriction operator is communication-friendly: all "
               "schemes stay near the copying bound)\n";
  return 0;
}
