// Quickstart: send every other element of an array between two
// simulated ranks three ways — manual copy, derived datatype, and
// pack+send — then ask the advisor which one to use.
//
//   $ ./quickstart
#include <iostream>
#include <numeric>
#include <vector>

#include "ncsend/ncsend.hpp"

using namespace minimpi;

int main() {
  UniverseOptions opts;
  opts.nranks = 2;  // rank 0 sends, rank 1 receives

  Universe::run(opts, [](Comm& comm) {
    constexpr std::size_t n = 1024;  // elements to send
    Datatype every_other = Datatype::vector(n, 1, 2, Datatype::float64());
    every_other.commit();

    if (comm.rank() == 0) {
      // A host array of 2n doubles; we want elements 0, 2, 4, ...
      std::vector<double> data(2 * n);
      std::iota(data.begin(), data.end(), 0.0);

      // 1. The friendly way: send the derived datatype directly.
      comm.send(data.data(), 1, every_other, /*dst=*/1, /*tag=*/0);

      // 2. The manual way: gather into a contiguous buffer, then send.
      std::vector<double> sendbuf(n);
      for (std::size_t i = 0; i < n; ++i) sendbuf[i] = data[2 * i];
      comm.send(sendbuf.data(), n, Datatype::float64(), 1, 1);

      // 3. The paper's winner for large messages: MPI_Pack the derived
      //    type into user space and send the packed bytes.
      std::vector<std::byte> packed(pack_size(1, every_other));
      std::size_t pos = 0;
      pack(data.data(), 1, every_other, packed.data(), packed.size(), pos);
      comm.send(packed.data(), pos, Datatype::packed(), 1, 2);

      std::cout << "rank 0: sent " << n << " doubles three ways; virtual "
                << "clock now " << comm.wtime() << " s\n";
    } else {
      std::vector<double> a(n), b(n), c(n);
      comm.recv(a.data(), n, Datatype::float64(), 0, 0);
      comm.recv(b.data(), n, Datatype::float64(), 0, 1);
      comm.recv(c.data(), n, Datatype::float64(), 0, 2);
      bool ok = true;
      for (std::size_t i = 0; i < n; ++i)
        ok &= a[i] == 2.0 * i && b[i] == 2.0 * i && c[i] == 2.0 * i;
      std::cout << "rank 1: all three receives "
                << (ok ? "byte-identical" : "MISMATCHED") << "\n";
    }
  });

  // What should a user do for this layout?  Ask the paper.
  const ncsend::Layout layout = ncsend::Layout::strided(1024, 1, 2);
  const auto rec = ncsend::advise(MachineProfile::skx_impi(),
                                  layout.payload_bytes(), layout);
  std::cout << "\nadvisor: use \"" << rec.scheme << "\"\n  "
            << rec.rationale << "\n";
  return 0;
}
