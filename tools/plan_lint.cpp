/// \file plan_lint.cpp
/// \brief Standalone front-end for the static plan verifier.
///
/// Compiles one (pattern, scheme, layout) experiment cell — or sweeps
/// the whole default legend — and reports what the verifier proved:
/// a per-check PASS table when the plan is clean, the typed
/// diagnostics when it is not.  CI runs `plan_lint --sweep` and fails
/// on any diagnostic, so every cell the benches can compile is known
/// statically well-formed before a result table is ever produced.
///
/// Exit status: 0 = every linted plan clean (cells the compiler cannot
/// capture fall back to direct execution and are reported but not
/// failed), 1 = at least one verifier diagnostic, 2 = usage error.

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "minimpi/net/machine_profile.hpp"
#include "ncsend/ncsend.hpp"
#include "ncsend/plan/comm_plan.hpp"
#include "ncsend/plan/verify.hpp"

namespace {

using namespace ncsend;

struct LintOptions {
  std::string pattern = "pingpong";
  std::string scheme;  ///< empty: every scheme the pattern engine knows
  std::string layout = "strided";
  std::size_t elems = 1024;
  std::string profile = "skx-impi";
  bool contention = false;
  int reps = 5;
  plan::PassOptions passes;
  bool dump = false;
  bool sweep = false;
};

void usage(std::ostream& os) {
  os << "usage: plan_lint [options]\n"
        "  --pattern NAME   pattern cell (default pingpong; any\n"
        "                   CommPattern::by_name form)\n"
        "  --scheme NAME    scheme to compile (default: every scheme)\n"
        "  --layout KIND    strided | contiguous (default strided)\n"
        "  --elems N        layout element count (default 1024)\n"
        "  --profile NAME   machine profile (default skx-impi)\n"
        "  --contention     enable emergent NIC contention\n"
        "  --reps N         capture repetitions (default 5)\n"
        "  --passes LIST    comma list of aggregate,sort to apply\n"
        "  --dump           dump the compiled action arrays\n"
        "  --sweep          lint every default pattern x scheme cell;\n"
        "                   exit 1 on any diagnostic\n"
        "  --help           this text\n";
}

[[nodiscard]] Layout make_layout(const LintOptions& o) {
  if (o.layout == "contiguous") return Layout::contiguous(o.elems);
  if (o.layout == "strided") return Layout::strided(o.elems, 1, 2);
  std::cerr << "plan_lint: unknown layout kind '" << o.layout << "'\n";
  std::exit(2);
}

[[nodiscard]] minimpi::UniverseOptions make_opts(const LintOptions& o) {
  minimpi::UniverseOptions opts;
  opts.profile = &minimpi::MachineProfile::by_name(o.profile);
  opts.functional = true;
  opts.functional_payload_limit = 1 << 16;
  opts.nic_occupancy_contention = o.contention;
  return opts;
}

/// Lint one cell.  Returns the number of verifier diagnostics (0 for a
/// clean or un-capturable cell); prints per-check verdicts.
std::size_t lint_cell(const LintOptions& o, const CommPattern& pattern,
                      const std::string& scheme, bool verbose) {
  HarnessConfig cfg;
  cfg.reps = o.reps;
  const Layout layout = make_layout(o);
  const std::string cell = pattern.name() + " / " + scheme + " / " +
                           layout.name();
  plan::CommPlan cp;
  try {
    cp = plan::compile_cell(make_opts(o), pattern, scheme, layout, cfg,
                            o.passes);
  } catch (const std::exception& e) {
    // A pattern that rejects the scheme outright (e.g. the collective
    // engine given a point-to-point scheme) is not a lintable cell.
    std::cout << cell << ": not applicable (" << e.what() << ")\n";
    return 0;
  }
  if (cp.programs.empty()) {
    // Capture never produced a program (wildcards, pinned state, ...):
    // the experiment layer falls back to direct execution, so there is
    // nothing to lint — report, don't fail.
    std::cout << cell << ": not compilable (" << cp.invalid_reason
              << "); falls back to direct execution\n";
    return 0;
  }

  const plan::VerifyReport report = plan::verify_plan(cp);
  const auto verdict = [](bool ok) { return ok ? "PASS" : "FAIL"; };
  if (report.ok() && !verbose) {
    std::cout << cell << ": PASS ("
              << (cp.valid ? "plan valid" : cp.invalid_reason) << ")\n";
  } else {
    std::cout << cell << ":\n"
              << "  match completeness  " << verdict(report.match_complete)
              << "\n"
              << "  deadlock freedom    " << verdict(report.deadlock_free)
              << "\n"
              << "  pass safety         " << verdict(report.pass_safe)
              << "\n"
              << "  RMA window safety   " << verdict(report.rma_safe)
              << "\n";
    for (const plan::PlanDiagnostic& d : report.diagnostics)
      std::cout << "  " << d.to_string() << "\n";
  }
  if (o.dump) cp.dump(std::cout);
  return report.diagnostics.size();
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "plan_lint: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pattern") {
      o.pattern = value();
    } else if (arg == "--scheme") {
      o.scheme = value();
    } else if (arg == "--layout") {
      o.layout = value();
    } else if (arg == "--elems") {
      o.elems = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--profile") {
      o.profile = value();
    } else if (arg == "--contention") {
      o.contention = true;
    } else if (arg == "--reps") {
      o.reps = std::stoi(value());
    } else if (arg == "--passes") {
      const std::string list = value();
      o.passes.aggregate_small = list.find("aggregate") != std::string::npos;
      o.passes.sort_injections = list.find("sort") != std::string::npos;
    } else if (arg == "--dump") {
      o.dump = true;
    } else if (arg == "--sweep") {
      o.sweep = true;
    } else if (arg == "--help") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "plan_lint: unknown flag '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  try {
    std::size_t total = 0;
    if (o.sweep) {
      std::size_t cells = 0;
      for (const std::string& pname : CommPattern::names()) {
        const auto pattern = CommPattern::by_name(pname);
        for (const std::string& sname : pattern_scheme_names()) {
          total += lint_cell(o, *pattern, sname, /*verbose=*/false);
          ++cells;
        }
      }
      std::cout << "plan_lint: " << cells << " cells, " << total
                << " diagnostics\n";
    } else {
      const auto pattern = CommPattern::by_name(o.pattern);
      std::vector<std::string> schemes;
      if (!o.scheme.empty())
        schemes.push_back(o.scheme);
      else
        schemes = pattern_scheme_names();
      for (const std::string& sname : schemes)
        total += lint_cell(o, *pattern, sname, /*verbose=*/true);
    }
    return total == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "plan_lint: " << e.what() << "\n";
    return 2;
  }
}
