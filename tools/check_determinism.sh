#!/bin/sh
# Determinism lint: grep the simulator sources for constructs that leak
# host state into results.  The whole repo's contract is that every
# artifact (BENCH JSONs, digests, compiled plans) is a pure function of
# the inputs — see DESIGN.md §2.5 — so wall-clock reads, hardware
# randomness, and hash-order iteration feeding outputs are bugs by
# definition, not style.
#
# Checks:
#   1. Banned sources of nondeterminism anywhere under src/:
#      std::chrono::system_clock / high_resolution_clock (wall clock in
#      model code; bench wall-timing uses steady_clock, which is allowed
#      because it never feeds a result value), std::random_device,
#      rand()/srand() (seeded global state; deterministic LCGs or
#      seeded engines are fine).
#   2. Hash-order iteration: a range-for over a variable declared as an
#      unordered_{map,set} in the same file.  Keyed lookups are fine;
#      iterating one into an output or digest is not.  A true negative
#      (iteration whose order provably cannot escape, e.g. drained into
#      a sort) can be annotated with `// determinism: ok` on the line.
#
# Exit status: 0 clean, 1 findings, 2 usage.

set -u

root=${1:-$(dirname "$0")/..}
srcdir="$root/src"
[ -d "$srcdir" ] || { echo "check_determinism: no src/ under $root" >&2; exit 2; }

status=0

# --- 1: banned constructs ---------------------------------------------------
banned='std::chrono::system_clock|std::chrono::high_resolution_clock|std::random_device|[^a-zA-Z0-9_]srand[ ]*\(|[^a-zA-Z0-9_.>]rand[ ]*\('
hits=$(grep -rnE "$banned" "$srcdir" --include='*.cpp' --include='*.hpp' \
       | grep -v 'determinism: ok' || true)
if [ -n "$hits" ]; then
  echo "check_determinism: banned nondeterminism sources in src/:"
  echo "$hits" | sed 's/^/  /'
  status=1
fi

# --- 2: hash-order iteration ------------------------------------------------
# For every file declaring an unordered container variable, flag a
# range-for over that variable's name.
for f in $(grep -rlE 'unordered_(map|set)<' "$srcdir" \
           --include='*.cpp' --include='*.hpp'); do
  names=$(grep -oE 'unordered_(map|set)<[^;]*> +[a-zA-Z_][a-zA-Z0-9_]*' "$f" \
          | grep -oE '[a-zA-Z_][a-zA-Z0-9_]*$' | sort -u)
  for n in $names; do
    hits=$(grep -nE "for *\(.*: *${n}[^a-zA-Z0-9_]" "$f" \
           | grep -v 'determinism: ok' || true)
    if [ -n "$hits" ]; then
      echo "check_determinism: hash-order iteration over '$n' in $f:"
      echo "$hits" | sed 's/^/  /'
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "check_determinism: clean"
fi
exit $status
