#pragma once
/// \file flusher.hpp
/// \brief The paper's inter-ping cache flush (a 50 MB array rewrite).

#include "memsim/cache_model.hpp"
#include "minimpi/runtime/comm.hpp"

namespace memsim {

/// \brief Flush strategy used by the ping-pong harness between
/// repetitions, mirroring paper §3.2: "an array of size 50M is
/// rewritten.  This is enough to flush the caches on our systems."
class CacheFlusher {
 public:
  static constexpr std::size_t default_flush_bytes = 50'000'000;

  CacheFlusher(CacheModel& cache, bool enabled,
               std::size_t flush_bytes = default_flush_bytes)
      : cache_(&cache), enabled_(enabled), flush_bytes_(flush_bytes) {}

  /// \brief Rewrite the flush array: charges the streaming cost to the
  /// rank's clock and invalidates the cache model.  No-op when disabled
  /// (the §4.6 ablation).
  void flush(minimpi::Comm& comm) {
    if (!enabled_) return;
    const minimpi::BlockStats contig{1, flush_bytes_, flush_bytes_,
                                     flush_bytes_};
    comm.charge_copy(flush_bytes_, contig);
    cache_->flush();
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

 private:
  CacheModel* cache_;
  bool enabled_;
  std::size_t flush_bytes_;
};

}  // namespace memsim
