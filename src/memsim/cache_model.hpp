#pragma once
/// \file cache_model.hpp
/// \brief LRU occupancy model of one rank's cache hierarchy.
///
/// The paper flushes caches between ping-pongs by rewriting a 50 MB
/// array (§3.2) and notes that *not* flushing visibly helps intermediate
/// message sizes (§4.6).  To reproduce that mechanism the harness tracks
/// which user buffers are cache-resident: a gather loop over a warm
/// source runs at `warm_copy_factor` times the cold bandwidth.
///
/// The model is a coarse region-granular LRU: each named region (a
/// buffer) is either resident with some byte count or absent.  That is
/// deliberately simple — the paper's effect only needs "fits and was
/// recently touched" vs "was flushed/evicted".

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace memsim {

class CacheModel {
 public:
  explicit CacheModel(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// \brief Fraction of `bytes` of `region` that were resident *before*
  /// this touch; afterwards the region is resident (up to capacity) and
  /// most recently used.
  double touch(std::uint64_t region, std::size_t bytes) {
    const double warm = warm_fraction(region, bytes);
    if (bytes == 0) return warm;
    const std::size_t resident = std::min(bytes, capacity_);
    if (auto it = index_.find(region); it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
    }
    lru_.push_front({region, resident});
    index_[region] = lru_.begin();
    evict_to_fit();
    return warm;
  }

  /// \brief Read-only query: how much of `bytes` of `region` is warm?
  [[nodiscard]] double warm_fraction(std::uint64_t region,
                                     std::size_t bytes) const {
    if (bytes == 0) return 0.0;
    const auto it = index_.find(region);
    if (it == index_.end()) return 0.0;
    const std::size_t resident = it->second->bytes;
    return static_cast<double>(std::min(resident, bytes)) /
           static_cast<double>(bytes);
  }

  /// \brief Invalidate everything (the 50 MB rewrite).
  void flush() {
    lru_.clear();
    index_.clear();
  }

  [[nodiscard]] std::size_t resident_bytes() const {
    std::size_t total = 0;
    for (const auto& e : lru_) total += e.bytes;
    return total;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::uint64_t region;
    std::size_t bytes;
  };

  void evict_to_fit() {
    std::size_t total = resident_bytes();
    while (total > capacity_ && !lru_.empty()) {
      total -= lru_.back().bytes;
      index_.erase(lru_.back().region);
      lru_.pop_back();
    }
  }

  std::size_t capacity_;
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace memsim
