#include "minimpi/datatype/pack.hpp"

#include <cstring>
#include <optional>

namespace minimpi {
namespace {

/// memcpy with the common tiny block sizes dispatched to constant-size
/// copies the compiler fully inlines.  A stride-1 vector of doubles
/// produces one 8-byte block per element; without this the engine makes
/// a libc memcpy call per element and runs several times slower than a
/// hand-written gather loop — with it, it matches (the paper's §4.3
/// observation for vendor pack engines, reproduced for ours by
/// bench/micro_pack_engine).
inline void copy_block(std::byte* dst, const std::byte* src,
                       std::size_t n) {
  switch (n) {
    case 4: std::memcpy(dst, src, 4); return;
    case 8: std::memcpy(dst, src, 8); return;
    case 16: std::memcpy(dst, src, 16); return;
    case 32: std::memcpy(dst, src, 32); return;
    case 64: std::memcpy(dst, src, 64); return;
    default: std::memcpy(dst, src, n); return;
  }
}

/// A message expressible as `count` equally-spaced 8-byte blocks.
struct Strided8 {
  std::ptrdiff_t first;        ///< byte offset of block 0
  std::ptrdiff_t step_elems;   ///< spacing in doubles
  std::size_t count;           ///< number of blocks
};

/// \brief Detect the study's canonical pattern — a (possibly resized)
/// hvector of dense 8-byte blocks with 8-byte-aligned stride — so the
/// gather/scatter hot loops can use a specialized strided kernel instead
/// of the generic per-block walker.  This is the dataloop-style
/// optimization every serious MPI pack engine has; without it a generic
/// engine runs several times slower than a hand-written loop (the exact
/// deficit paper §4.3 says vendor engines do *not* have).
std::optional<Strided8> as_strided8(const detail::TypeNode& n) {
  const detail::TypeNode* p = &n;
  while (p->kind == detail::NodeKind::resized) p = p->child.get();
  if (p->kind != detail::NodeKind::hvector) return std::nullopt;
  const detail::TypeNode& c = *p->child;
  const bool dense_block =
      c.single_block &&
      (p->blocklen <= 1 ||
       static_cast<std::ptrdiff_t>(c.extent()) ==
           static_cast<std::ptrdiff_t>(c.size));
  if (!dense_block || p->blocklen * c.size != 8) return std::nullopt;
  if (p->stride_bytes % 8 != 0) return std::nullopt;
  return Strided8{c.true_lb, p->stride_bytes / 8, p->count};
}

void strided8_gather(const std::byte* src, const Strided8& s, std::byte* dst) {
  const auto* in = reinterpret_cast<const double*>(src + s.first);
  auto* out = reinterpret_cast<double*>(dst);
  const std::ptrdiff_t step = s.step_elems;
  for (std::size_t i = 0; i < s.count; ++i)
    out[i] = in[static_cast<std::ptrdiff_t>(i) * step];
}

void strided8_scatter(const std::byte* src, const Strided8& s, std::byte* dst) {
  const auto* in = reinterpret_cast<const double*>(src);
  auto* out = reinterpret_cast<double*>(dst + s.first);
  const std::ptrdiff_t step = s.step_elems;
  for (std::size_t i = 0; i < s.count; ++i)
    out[static_cast<std::ptrdiff_t>(i) * step] = in[i];
}

}  // namespace

void pack(const void* inbuf, std::size_t incount, const Datatype& t,
          void* outbuf, std::size_t outsize, std::size_t& position) {
  require(t.committed(), ErrorClass::invalid_type,
          "pack: datatype not committed");
  const std::size_t need = pack_size(incount, t);
  require(position + need <= outsize, ErrorClass::truncate,
          "pack: output buffer too small");
  if (inbuf == nullptr || outbuf == nullptr) {  // phantom dry run
    position += need;
    return;
  }
  const auto* src = static_cast<const std::byte*>(inbuf);
  auto* dst = static_cast<std::byte*>(outbuf) + position;
  if (const auto s8 = as_strided8(t.node())) {
    const auto ext = static_cast<std::ptrdiff_t>(t.extent());
    for (std::size_t e = 0; e < incount; ++e)
      strided8_gather(src + static_cast<std::ptrdiff_t>(e) * ext, *s8,
                      dst + e * t.size());
    position += need;
    return;
  }
  for_each_block(t, incount, [&](std::ptrdiff_t off, std::size_t n) {
    copy_block(dst, src + off, n);
    dst += n;
  });
  position += need;
}

void unpack(const void* inbuf, std::size_t insize, std::size_t& position,
            void* outbuf, std::size_t outcount, const Datatype& t) {
  require(t.committed(), ErrorClass::invalid_type,
          "unpack: datatype not committed");
  const std::size_t need = pack_size(outcount, t);
  require(position + need <= insize, ErrorClass::truncate,
          "unpack: input exhausted");
  if (inbuf == nullptr || outbuf == nullptr) {  // phantom dry run
    position += need;
    return;
  }
  const auto* src = static_cast<const std::byte*>(inbuf) + position;
  auto* dst = static_cast<std::byte*>(outbuf);
  if (const auto s8 = as_strided8(t.node())) {
    const auto ext = static_cast<std::ptrdiff_t>(t.extent());
    for (std::size_t e = 0; e < outcount; ++e)
      strided8_scatter(src + e * t.size(), *s8,
                       dst + static_cast<std::ptrdiff_t>(e) * ext);
    position += need;
    return;
  }
  for_each_block(t, outcount, [&](std::ptrdiff_t off, std::size_t n) {
    copy_block(dst + off, src, n);
    src += n;
  });
  position += need;
}

std::size_t pack_region(const void* inbuf, std::size_t count,
                        const Datatype& t, std::size_t stream_offset,
                        void* outbuf, std::size_t max_bytes) {
  require(t.committed(), ErrorClass::invalid_type,
          "pack_region: datatype not committed");
  const std::size_t total = pack_size(count, t);
  if (stream_offset >= total || max_bytes == 0) return 0;
  const std::size_t want = std::min(max_bytes, total - stream_offset);
  if (inbuf == nullptr || outbuf == nullptr) return want;  // dry run

  const auto* src = static_cast<const std::byte*>(inbuf);
  auto* dst = static_cast<std::byte*>(outbuf);
  std::size_t cursor = 0;    // position in the packed stream
  std::size_t produced = 0;  // bytes written to outbuf
  const std::size_t region_end = stream_offset + want;
  for_each_block(t, count, [&](std::ptrdiff_t off, std::size_t n) {
    if (produced == want || cursor + n <= stream_offset) {
      cursor += n;
      return;  // block entirely before the region (or region done)
    }
    if (cursor >= region_end) {
      cursor += n;
      return;
    }
    // Clip the block to the region.
    const std::size_t skip =
        cursor < stream_offset ? stream_offset - cursor : 0;
    const std::size_t take =
        std::min(n - skip, region_end - std::max(cursor, stream_offset));
    std::memcpy(dst + produced, src + off + skip, take);
    produced += take;
    cursor += n;
  });
  return produced;
}

void gather(const void* src, std::size_t count, const Datatype& t,
            void* dst) {
  if (src == nullptr || dst == nullptr) return;
  auto* out = static_cast<std::byte*>(dst);
  const auto* in = static_cast<const std::byte*>(src);
  if (const auto s8 = as_strided8(t.node())) {
    const auto ext = static_cast<std::ptrdiff_t>(t.extent());
    for (std::size_t e = 0; e < count; ++e)
      strided8_gather(in + static_cast<std::ptrdiff_t>(e) * ext, *s8,
                      out + e * t.size());
    return;
  }
  for_each_block(t, count, [&](std::ptrdiff_t off, std::size_t n) {
    copy_block(out, in + off, n);
    out += n;
  });
}

void scatter(const void* src, void* dst, std::size_t count,
             const Datatype& t) {
  if (src == nullptr || dst == nullptr) return;
  const auto* in = static_cast<const std::byte*>(src);
  auto* out = static_cast<std::byte*>(dst);
  if (const auto s8 = as_strided8(t.node())) {
    const auto ext = static_cast<std::ptrdiff_t>(t.extent());
    for (std::size_t e = 0; e < count; ++e)
      strided8_scatter(in + e * t.size(), *s8,
                       out + static_cast<std::ptrdiff_t>(e) * ext);
    return;
  }
  for_each_block(t, count, [&](std::ptrdiff_t off, std::size_t n) {
    copy_block(out + off, in, n);
    in += n;
  });
}

void typed_copy(void* dst, const void* src, std::size_t count,
                const Datatype& t) {
  if (dst == nullptr || src == nullptr) return;
  auto* out = static_cast<std::byte*>(dst);
  const auto* in = static_cast<const std::byte*>(src);
  for_each_block(t, count, [&](std::ptrdiff_t off, std::size_t n) {
    copy_block(out + off, in + off, n);
  });
}

std::vector<FlatBlock> flatten(const Datatype& t, std::size_t count,
                               std::size_t max_blocks) {
  std::vector<FlatBlock> blocks;
  for_each_block(t, count, [&](std::ptrdiff_t off, std::size_t n) {
    require(blocks.size() < max_blocks, ErrorClass::invalid_arg,
            "flatten: block list exceeds max_blocks");
    blocks.push_back({off, n});
  });
  return blocks;
}

bool typed_equal(const void* a, const void* b, std::size_t count,
                 const Datatype& t) {
  if (a == nullptr || b == nullptr) return a == b;
  const auto* pa = static_cast<const std::byte*>(a);
  const auto* pb = static_cast<const std::byte*>(b);
  bool equal = true;
  for_each_block(t, count, [&](std::ptrdiff_t off, std::size_t n) {
    if (equal && std::memcmp(pa + off, pb + off, n) != 0) equal = false;
  });
  return equal;
}

}  // namespace minimpi
