#include "minimpi/datatype/datatype.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace minimpi {

// ---------------------------------------------------------------------------
// TypeSignature
// ---------------------------------------------------------------------------

void TypeSignature::append(BasicType t, std::size_t n) {
  if (n == 0) return;
  bytes_ += basic_size(t) * n;
  per_basic_[static_cast<std::size_t>(t)] += n;
  if (!exact_) return;
  if (!runs_.empty() && runs_.back().first == t) {
    runs_.back().second += n;
  } else if (runs_.size() < max_runs) {
    runs_.emplace_back(t, n);
  } else {
    exact_ = false;
    runs_.clear();
  }
}

void TypeSignature::append(const TypeSignature& other, std::size_t repeat) {
  if (repeat == 0 || other.bytes_ == 0) return;
  bytes_ += other.bytes_ * repeat;
  for (std::size_t i = 0; i < 9; ++i)
    per_basic_[i] += other.per_basic_[i] * repeat;
  if (!exact_) return;
  if (!other.exact_) {
    exact_ = false;
    runs_.clear();
    return;
  }
  if (other.runs_.size() == 1) {
    // Single homogeneous run: repetition collapses into one run.
    auto [t, n] = other.runs_.front();
    if (!runs_.empty() && runs_.back().first == t) {
      runs_.back().second += n * repeat;
    } else if (runs_.size() < max_runs) {
      runs_.emplace_back(t, n * repeat);
    } else {
      exact_ = false;
      runs_.clear();
    }
    return;
  }
  if (runs_.size() + other.runs_.size() * repeat > max_runs) {
    exact_ = false;
    runs_.clear();
    return;
  }
  for (std::size_t r = 0; r < repeat; ++r) {
    for (auto [t, n] : other.runs_) {
      if (!runs_.empty() && runs_.back().first == t)
        runs_.back().second += n;
      else
        runs_.emplace_back(t, n);
    }
  }
}

namespace {
bool all_raw_bytes(const std::vector<std::pair<BasicType, std::size_t>>& runs) {
  return std::all_of(runs.begin(), runs.end(), [](const auto& r) {
    return r.first == BasicType::byte_ || r.first == BasicType::packed ||
           r.first == BasicType::char_;
  });
}
}  // namespace

bool TypeSignature::accepts(const TypeSignature& send_sig) const {
  if (send_sig.bytes_ == 0) return true;
  if (bytes_ < send_sig.bytes_) return false;
  // MPI_PACKED (and raw bytes) interoperate with any signature of the
  // same byte length: packing erases type structure.
  if ((exact_ && all_raw_bytes(runs_)) ||
      (send_sig.exact_ && all_raw_bytes(send_sig.runs_))) {
    return true;
  }
  if (exact_ && send_sig.exact_) {
    // The receive signature must contain the send signature as a prefix
    // (element-wise; a recv run may be split across send runs and vice
    // versa).  Two-pointer walk over run-length forms.
    std::size_t ri = 0, ravail = runs_.empty() ? 0 : runs_[0].second;
    for (auto [st, sn] : send_sig.runs_) {
      std::size_t need = sn;
      while (need > 0) {
        if (ri >= runs_.size()) return false;
        if (ravail == 0) {
          if (++ri >= runs_.size()) return false;
          ravail = runs_[ri].second;
        }
        if (runs_[ri].first != st) return false;
        const std::size_t take = std::min(need, ravail);
        need -= take;
        ravail -= take;
      }
    }
    return true;
  }
  // Degraded mode: require element totals per basic type to fit.  Exact
  // for homogeneous signatures; best-effort for the pathological rest.
  for (std::size_t i = 0; i < 9; ++i)
    if (per_basic_[i] < send_sig.per_basic_[i]) return false;
  return true;
}

std::string TypeSignature::to_string() const {
  std::ostringstream os;
  if (!exact_) {
    os << "~" << bytes_ << "B";
    return os.str();
  }
  os << "[";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (i) os << ",";
    os << basic_name(runs_[i].first) << "x" << runs_[i].second;
  }
  os << "]";
  return os.str();
}

// ---------------------------------------------------------------------------
// Node construction helpers
// ---------------------------------------------------------------------------

namespace detail {
namespace {

/// Per-block geometry used while folding hindexed/struct nodes.
struct BlockGeom {
  std::ptrdiff_t displ;        // block start displacement (bytes)
  std::size_t blocklen;        // children in the block
  const TypeNode* child;
};

/// \brief Fold bounds, density and block statistics over a block list.
///
/// Shared by hindexed and struct finalization.  Detects runs of dense,
/// address-adjacent blocks (typemap order == address order) so that e.g.
/// an indexed type describing one contiguous range is recognized as a
/// single block.
void finalize_blocks(TypeNode& n, const std::vector<BlockGeom>& blocks) {
  bool first = true;
  bool dense_so_far = true;
  std::ptrdiff_t expected_next = 0;  // address where the next dense byte must
                                     // start for the whole type to stay dense
  n.stats = {};
  for (const auto& b : blocks) {
    if (b.blocklen == 0 || b.child->size == 0) continue;
    const auto& c = *b.child;
    const std::ptrdiff_t ext = static_cast<std::ptrdiff_t>(c.extent());
    const std::ptrdiff_t blk_lb = b.displ + c.lb;
    const std::ptrdiff_t blk_ub =
        b.displ + c.ub + static_cast<std::ptrdiff_t>(b.blocklen - 1) * ext;
    const std::ptrdiff_t blk_tlb = b.displ + c.true_lb;
    const std::ptrdiff_t blk_tub =
        b.displ + c.true_ub + static_cast<std::ptrdiff_t>(b.blocklen - 1) * ext;
    if (first) {
      n.lb = blk_lb;
      n.ub = blk_ub;
      n.true_lb = blk_tlb;
      n.true_ub = blk_tub;
    } else {
      n.lb = std::min(n.lb, blk_lb);
      n.ub = std::max(n.ub, blk_ub);
      n.true_lb = std::min(n.true_lb, blk_tlb);
      n.true_ub = std::max(n.true_ub, blk_tub);
    }
    // Density: every child dense, children within the block adjacent,
    // and the block starting right where the previous data ended.
    const bool block_internally_dense =
        c.single_block &&
        (b.blocklen <= 1 || ext == static_cast<std::ptrdiff_t>(c.size));
    if (dense_so_far) {
      if (!block_internally_dense || (!first && blk_tlb != expected_next)) {
        dense_so_far = false;
      } else {
        expected_next = blk_tlb + static_cast<std::ptrdiff_t>(
                                      b.blocklen * c.size);
      }
    }
    // Statistics: merged dense blocks counted exactly when the whole
    // type stays dense; otherwise per-block accounting.
    const std::size_t block_bytes = b.blocklen * c.size;
    if (block_internally_dense) {
      n.stats.block_count += 1;
      n.stats.min_block = first ? block_bytes
                                : std::min(n.stats.min_block, block_bytes);
      n.stats.max_block = std::max(n.stats.max_block, block_bytes);
    } else {
      n.stats.block_count += b.blocklen * c.stats.block_count;
      n.stats.min_block =
          first ? c.stats.min_block : std::min(n.stats.min_block,
                                               c.stats.min_block);
      n.stats.max_block = std::max(n.stats.max_block, c.stats.max_block);
    }
    n.stats.total_bytes += block_bytes;
    first = false;
  }
  if (first) {  // no non-empty blocks
    n.lb = n.ub = n.true_lb = n.true_ub = 0;
    n.single_block = true;
    n.stats = {};
    return;
  }
  n.single_block = dense_so_far;
  if (n.single_block) {
    n.stats.block_count = 1;
    n.stats.min_block = n.stats.max_block = n.stats.total_bytes;
  }
}

}  // namespace
}  // namespace detail

// ---------------------------------------------------------------------------
// Datatype factories
// ---------------------------------------------------------------------------

using detail::NodeKind;
using detail::NodePtr;
using detail::TypeNode;

Datatype Datatype::basic(BasicType t) {
  auto n = std::make_shared<TypeNode>();
  n->kind = NodeKind::basic;
  n->basic = t;
  n->size = basic_size(t);
  n->lb = n->true_lb = 0;
  n->ub = n->true_ub = static_cast<std::ptrdiff_t>(n->size);
  n->single_block = true;
  n->stats = {1, n->size, n->size, n->size};
  n->sig.append(t, 1);
  Datatype d{NodePtr(std::move(n))};
  d.committed_ = true;  // predefined types are pre-committed, as in MPI
  return d;
}

Datatype Datatype::contiguous(std::size_t count, const Datatype& old) {
  const TypeNode& c = old.node();
  auto n = std::make_shared<TypeNode>();
  n->kind = NodeKind::contiguous;
  n->count = count;
  n->child = old.node_;
  n->depth = c.depth + 1;
  n->size = count * c.size;
  if (count == 0 || c.size == 0) {
    n->lb = n->ub = n->true_lb = n->true_ub = 0;
    n->single_block = true;
    n->sig.append(c.sig, count);
    return Datatype{NodePtr(std::move(n))};
  }
  const auto ext = static_cast<std::ptrdiff_t>(c.extent());
  n->lb = c.lb;
  n->ub = c.ub + static_cast<std::ptrdiff_t>(count - 1) * ext;
  n->true_lb = c.true_lb;
  n->true_ub = c.true_ub + static_cast<std::ptrdiff_t>(count - 1) * ext;
  n->single_block =
      c.single_block &&
      (count <= 1 || ext == static_cast<std::ptrdiff_t>(c.size));
  if (n->single_block) {
    n->stats = {1, n->size, n->size, n->size};
  } else {
    n->stats = {count * c.stats.block_count, n->size, c.stats.min_block,
                c.stats.max_block};
  }
  n->sig.append(c.sig, count);
  return Datatype{NodePtr(std::move(n))};
}

Datatype Datatype::hvector(std::size_t count, std::size_t blocklen,
                           std::ptrdiff_t stride_bytes, const Datatype& old) {
  const TypeNode& c = old.node();
  auto n = std::make_shared<TypeNode>();
  n->kind = NodeKind::hvector;
  n->count = count;
  n->blocklen = blocklen;
  n->stride_bytes = stride_bytes;
  n->child = old.node_;
  n->depth = c.depth + 1;
  n->size = count * blocklen * c.size;
  n->sig.append(c.sig, count * blocklen);
  if (count == 0 || blocklen == 0 || c.size == 0) {
    n->lb = n->ub = n->true_lb = n->true_ub = 0;
    n->single_block = true;
    return Datatype{NodePtr(std::move(n))};
  }
  const auto ext = static_cast<std::ptrdiff_t>(c.extent());
  // Geometry of one block (blocklen children, child-extent spacing).
  const std::ptrdiff_t blk_lb = c.lb;
  const std::ptrdiff_t blk_ub =
      c.ub + static_cast<std::ptrdiff_t>(blocklen - 1) * ext;
  const std::ptrdiff_t blk_tlb = c.true_lb;
  const std::ptrdiff_t blk_tub =
      c.true_ub + static_cast<std::ptrdiff_t>(blocklen - 1) * ext;
  const std::ptrdiff_t last = static_cast<std::ptrdiff_t>(count - 1) * stride_bytes;
  n->lb = std::min(blk_lb, blk_lb + last);
  n->ub = std::max(blk_ub, blk_ub + last);
  n->true_lb = std::min(blk_tlb, blk_tlb + last);
  n->true_ub = std::max(blk_tub, blk_tub + last);
  const std::size_t blk_bytes = blocklen * c.size;
  const bool blk_dense =
      c.single_block &&
      (blocklen <= 1 || ext == static_cast<std::ptrdiff_t>(c.size));
  // Dense overall requires positive stride equal to the dense block size
  // so typemap order coincides with ascending addresses.
  n->single_block =
      blk_dense && (count <= 1 ||
                    stride_bytes == static_cast<std::ptrdiff_t>(blk_bytes));
  if (n->single_block) {
    n->stats = {1, n->size, n->size, n->size};
  } else if (blk_dense) {
    n->stats = {count, n->size, blk_bytes, blk_bytes};
  } else {
    n->stats = {count * blocklen * c.stats.block_count, n->size,
                c.stats.min_block, c.stats.max_block};
  }
  return Datatype{NodePtr(std::move(n))};
}

Datatype Datatype::vector(std::size_t count, std::size_t blocklen,
                          std::ptrdiff_t stride, const Datatype& old) {
  return hvector(count, blocklen,
                 stride * static_cast<std::ptrdiff_t>(old.extent()), old);
}

Datatype Datatype::hindexed(std::span<const std::size_t> blocklens,
                            std::span<const std::ptrdiff_t> displs_bytes,
                            const Datatype& old) {
  require(blocklens.size() == displs_bytes.size(), ErrorClass::invalid_arg,
          "hindexed: blocklens/displs length mismatch");
  const TypeNode& c = old.node();
  auto n = std::make_shared<TypeNode>();
  n->kind = NodeKind::hindexed;
  n->blocklens.assign(blocklens.begin(), blocklens.end());
  n->displs_bytes.assign(displs_bytes.begin(), displs_bytes.end());
  n->child = old.node_;
  n->depth = c.depth + 1;
  std::size_t total = std::accumulate(blocklens.begin(), blocklens.end(),
                                      std::size_t{0});
  n->size = total * c.size;
  n->sig.append(c.sig, total);
  std::vector<detail::BlockGeom> blocks;
  blocks.reserve(blocklens.size());
  for (std::size_t j = 0; j < blocklens.size(); ++j)
    blocks.push_back({displs_bytes[j], blocklens[j], &c});
  detail::finalize_blocks(*n, blocks);
  return Datatype{NodePtr(std::move(n))};
}

Datatype Datatype::indexed(std::span<const std::size_t> blocklens,
                           std::span<const std::ptrdiff_t> displs,
                           const Datatype& old) {
  const auto ext = static_cast<std::ptrdiff_t>(old.extent());
  std::vector<std::ptrdiff_t> displs_bytes(displs.size());
  for (std::size_t i = 0; i < displs.size(); ++i)
    displs_bytes[i] = displs[i] * ext;
  return hindexed(blocklens, displs_bytes, old);
}

Datatype Datatype::indexed_block(std::size_t blocklen,
                                 std::span<const std::ptrdiff_t> displs,
                                 const Datatype& old) {
  std::vector<std::size_t> blocklens(displs.size(), blocklen);
  return indexed(blocklens, displs, old);
}

Datatype Datatype::subarray(std::span<const std::size_t> sizes,
                            std::span<const std::size_t> subsizes,
                            std::span<const std::size_t> starts,
                            const Datatype& old, StorageOrder order) {
  const std::size_t ndims = sizes.size();
  require(ndims > 0, ErrorClass::invalid_arg, "subarray: ndims == 0");
  require(subsizes.size() == ndims && starts.size() == ndims,
          ErrorClass::invalid_arg, "subarray: dimension count mismatch");
  for (std::size_t d = 0; d < ndims; ++d) {
    require(subsizes[d] >= 1 && subsizes[d] <= sizes[d] &&
                starts[d] + subsizes[d] <= sizes[d],
            ErrorClass::invalid_arg, "subarray: sub-block out of range");
  }
  // Normalize to C order (slowest dimension first).
  std::vector<std::size_t> sz(sizes.begin(), sizes.end());
  std::vector<std::size_t> ssz(subsizes.begin(), subsizes.end());
  std::vector<std::size_t> st(starts.begin(), starts.end());
  if (order == StorageOrder::fortran) {
    std::reverse(sz.begin(), sz.end());
    std::reverse(ssz.begin(), ssz.end());
    std::reverse(st.begin(), st.end());
  }
  const auto old_ext = static_cast<std::ptrdiff_t>(old.extent());
  // Row pitches: bytes per index step in each dimension.
  std::vector<std::ptrdiff_t> pitch(ndims);
  pitch[ndims - 1] = old_ext;
  for (std::size_t d = ndims - 1; d-- > 0;)
    pitch[d] = pitch[d + 1] * static_cast<std::ptrdiff_t>(sz[d + 1]);
  // Build nested vectors, innermost dimension first.
  Datatype t = contiguous(ssz[ndims - 1], old);
  for (std::size_t d = ndims - 1; d-- > 0;)
    t = hvector(ssz[d], 1, pitch[d], t);
  // Fold the start offsets in, then resize to the full-array footprint so
  // consecutive subarray elements tile the enclosing array (MPI semantics).
  std::ptrdiff_t offset = 0;
  for (std::size_t d = 0; d < ndims; ++d)
    offset += static_cast<std::ptrdiff_t>(st[d]) * pitch[d];
  const std::size_t blocklens1[] = {1};
  const std::ptrdiff_t displs1[] = {offset};
  t = hindexed(blocklens1, displs1, t);
  const std::size_t full_extent =
      static_cast<std::size_t>(pitch[0]) * sz[0];
  return resized(t, 0, full_extent);
}

Datatype Datatype::struct_(std::span<const std::size_t> blocklens,
                           std::span<const std::ptrdiff_t> displs_bytes,
                           std::span<const Datatype> types) {
  require(blocklens.size() == displs_bytes.size() &&
              blocklens.size() == types.size(),
          ErrorClass::invalid_arg, "struct: array length mismatch");
  auto n = std::make_shared<TypeNode>();
  n->kind = NodeKind::struct_;
  n->blocklens.assign(blocklens.begin(), blocklens.end());
  n->displs_bytes.assign(displs_bytes.begin(), displs_bytes.end());
  n->children.reserve(types.size());
  std::vector<detail::BlockGeom> blocks;
  blocks.reserve(types.size());
  n->size = 0;
  for (std::size_t j = 0; j < types.size(); ++j) {
    const TypeNode& c = types[j].node();
    n->children.push_back(types[j].node_);
    n->depth = std::max(n->depth, c.depth + 1);
    n->size += blocklens[j] * c.size;
    n->sig.append(c.sig, blocklens[j]);
    blocks.push_back({displs_bytes[j], blocklens[j], &c});
  }
  detail::finalize_blocks(*n, blocks);
  return Datatype{NodePtr(std::move(n))};
}

Datatype Datatype::resized(const Datatype& old, std::ptrdiff_t lb,
                           std::size_t extent) {
  const TypeNode& c = old.node();
  auto n = std::make_shared<TypeNode>();
  n->kind = NodeKind::resized;
  n->child = old.node_;
  n->depth = c.depth + 1;
  n->size = c.size;
  n->lb = lb;
  n->ub = lb + static_cast<std::ptrdiff_t>(extent);
  n->true_lb = c.true_lb;
  n->true_ub = c.true_ub;
  n->single_block = c.single_block;
  n->stats = c.stats;
  n->sig = c.sig;
  return Datatype{NodePtr(std::move(n))};
}

Datatype Datatype::dup() const {
  Datatype d{node_};
  d.committed_ = committed_;
  return d;
}

Datatype& Datatype::commit() {
  require(valid(), ErrorClass::invalid_type, "commit of invalid datatype");
  committed_ = true;
  return *this;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

std::size_t Datatype::size() const { return node().size; }
std::ptrdiff_t Datatype::lb() const { return node().lb; }
std::ptrdiff_t Datatype::ub() const { return node().ub; }
std::size_t Datatype::extent() const { return node().extent(); }
std::ptrdiff_t Datatype::true_lb() const { return node().true_lb; }
std::size_t Datatype::true_extent() const { return node().true_extent(); }
bool Datatype::is_single_block() const { return node().single_block; }
const BlockStats& Datatype::block_stats() const { return node().stats; }
const TypeSignature& Datatype::signature() const { return node().sig; }

namespace {
void describe_node(const TypeNode& n, std::ostringstream& os, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad;
  switch (n.kind) {
    case NodeKind::basic:
      os << basic_name(n.basic) << "\n";
      return;
    case NodeKind::contiguous:
      os << "contiguous(count=" << n.count << ")\n";
      break;
    case NodeKind::hvector:
      os << "hvector(count=" << n.count << ", blocklen=" << n.blocklen
         << ", stride=" << n.stride_bytes << "B)\n";
      break;
    case NodeKind::hindexed:
      os << "hindexed(blocks=" << n.blocklens.size() << ")\n";
      break;
    case NodeKind::struct_:
      os << "struct(blocks=" << n.blocklens.size() << ")\n";
      for (const auto& c : n.children) describe_node(*c, os, indent + 1);
      return;
    case NodeKind::resized:
      os << "resized(lb=" << n.lb << ", extent=" << n.extent() << ")\n";
      break;
  }
  if (n.child) describe_node(*n.child, os, indent + 1);
}
}  // namespace

TypeEnvelope Datatype::envelope() const {
  const TypeNode& n = node();
  TypeEnvelope e;
  e.depth = n.depth;
  switch (n.kind) {
    case NodeKind::basic:
      e.combiner = TypeCombiner::named;
      e.basic = n.basic;
      break;
    case NodeKind::contiguous:
      e.combiner = TypeCombiner::contiguous;
      e.count = n.count;
      break;
    case NodeKind::hvector:
      e.combiner = TypeCombiner::hvector;
      e.count = n.count;
      e.blocklen = n.blocklen;
      e.stride_bytes = n.stride_bytes;
      break;
    case NodeKind::hindexed:
      e.combiner = TypeCombiner::hindexed;
      e.nblocks = n.blocklens.size();
      break;
    case NodeKind::struct_:
      e.combiner = TypeCombiner::struct_;
      e.nblocks = n.blocklens.size();
      break;
    case NodeKind::resized:
      e.combiner = TypeCombiner::resized;
      break;
  }
  return e;
}

Datatype Datatype::child() const {
  const TypeNode& n = node();
  NodePtr c = n.child ? n.child
                      : (n.children.empty() ? nullptr : n.children.front());
  if (!c) return Datatype{};
  Datatype d{std::move(c)};
  if (d.node_->kind == NodeKind::basic) d.committed_ = true;  // predefined
  return d;
}

std::string Datatype::describe() const {
  std::ostringstream os;
  const TypeNode& n = node();
  os << "datatype{size=" << n.size << "B, extent=" << n.extent()
     << "B, blocks=" << n.stats.block_count << "}\n";
  describe_node(n, os, 1);
  return os.str();
}

}  // namespace minimpi
