#pragma once
/// \file datatype.hpp
/// \brief MPI derived-datatype engine: construction and geometry.
///
/// A `Datatype` describes where the bytes of a (possibly non-contiguous)
/// message live relative to a base address, exactly like MPI derived
/// datatypes.  Types are immutable trees of `detail::TypeNode`s; the
/// public constructors mirror the MPI type-constructor family the paper
/// exercises (`MPI_Type_vector`, `MPI_Type_create_subarray`, ...) plus
/// the rest of the standard family so the engine is complete enough for
/// downstream use (indexed, hindexed, indexed_block, struct, resized).
///
/// Geometry vocabulary (all byte-valued, MPI semantics):
///   * size          — number of data bytes in one element of the type
///   * lb / ub       — lower/upper bound markers; extent = ub - lb
///   * true_lb/ub    — bounds of the actual data, ignoring resizing
///   * contiguous    — the data bytes form one dense range
///
/// Types must be `commit()`ed before use in communication, matching MPI.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "minimpi/base/error.hpp"
#include "minimpi/base/types.hpp"

namespace minimpi {

/// Array storage order for subarray types (MPI_ORDER_C / MPI_ORDER_FORTRAN).
enum class StorageOrder { c, fortran };

/// \brief Aggregate block statistics of a type's flattened layout.
///
/// Computed analytically (no block enumeration), these drive the cost
/// model: a layout with many short blocks packs slower than one long
/// block of the same total size (§4.7 of the paper).
struct BlockStats {
  std::size_t block_count = 0;   ///< contiguous blocks after merging
  std::size_t total_bytes = 0;   ///< sum of block lengths (== size * count)
  std::size_t min_block = 0;     ///< shortest block, bytes
  std::size_t max_block = 0;     ///< longest block, bytes
};

/// \brief Run-length-compressed type signature used for matching checks.
///
/// MPI requires send/recv *signatures* (the flattened sequence of basic
/// types) to be compatible.  We keep an exact run-length form while it
/// stays small and degrade to per-basic-type totals for pathological
/// alternating signatures; the degraded check is still exact for the
/// homogeneous types used in practice (and in this study).
class TypeSignature {
 public:
  void append(BasicType t, std::size_t n);
  void append(const TypeSignature& other, std::size_t repeat);

  /// Restore the default-constructed state, keeping `runs_` capacity —
  /// pooled envelopes clear and refill their signature per message
  /// without reallocating.
  void clear() noexcept {
    runs_.clear();
    for (auto& n : per_basic_) n = 0;
    bytes_ = 0;
    exact_ = true;
  }

  /// \brief True if `recv_sig` can legally receive a message with this
  /// (send) signature: recv must start with send's sequence.
  [[nodiscard]] bool accepts(const TypeSignature& send_sig) const;

  [[nodiscard]] std::size_t total_bytes() const noexcept { return bytes_; }
  [[nodiscard]] bool exact() const noexcept { return exact_; }
  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr std::size_t max_runs = 1024;
  std::vector<std::pair<BasicType, std::size_t>> runs_;
  std::size_t per_basic_[9] = {};  ///< element totals per BasicType
  std::size_t bytes_ = 0;
  bool exact_ = true;  ///< runs_ is the full signature (not truncated)
};

namespace detail {
class TypeNode;
using NodePtr = std::shared_ptr<const TypeNode>;
}  // namespace detail

/// What constructor produced a datatype (MPI_Type_get_envelope's
/// "combiner", reduced to minimpi's normalized node kinds).
enum class TypeCombiner : std::uint8_t {
  named,       ///< predefined basic type
  contiguous,
  hvector,     ///< vector / hvector / subarray rows lower onto this
  hindexed,    ///< indexed / indexed_block / hindexed lower onto this
  struct_,
  resized,
};

/// \brief Construction parameters of a datatype's top-level node
/// (the MPI_Type_get_envelope / get_contents analogue).
struct TypeEnvelope {
  TypeCombiner combiner = TypeCombiner::named;
  BasicType basic = BasicType::byte_;      ///< combiner == named
  std::size_t count = 0;                   ///< contiguous / hvector
  std::size_t blocklen = 0;                ///< hvector
  std::ptrdiff_t stride_bytes = 0;         ///< hvector
  std::size_t nblocks = 0;                 ///< hindexed / struct
  int depth = 1;                           ///< nesting depth of the tree
};

/// \brief Handle to an immutable datatype description.
///
/// Cheap to copy (shared ownership of the node tree).  A default-
/// constructed Datatype is invalid; use the factories.
class Datatype {
 public:
  Datatype() = default;

  // --- predefined types -------------------------------------------------
  static Datatype basic(BasicType t);
  static Datatype byte() { return basic(BasicType::byte_); }
  static Datatype int32() { return basic(BasicType::int32); }
  static Datatype int64() { return basic(BasicType::int64); }
  static Datatype float32() { return basic(BasicType::float_); }
  static Datatype float64() { return basic(BasicType::double_); }
  static Datatype packed() { return basic(BasicType::packed); }

  // --- constructors (MPI_Type_* family) ----------------------------------
  /// MPI_Type_contiguous
  static Datatype contiguous(std::size_t count, const Datatype& old);
  /// MPI_Type_vector: stride counted in elements of `old`
  static Datatype vector(std::size_t count, std::size_t blocklen,
                         std::ptrdiff_t stride, const Datatype& old);
  /// MPI_Type_create_hvector: stride counted in bytes
  static Datatype hvector(std::size_t count, std::size_t blocklen,
                          std::ptrdiff_t stride_bytes, const Datatype& old);
  /// MPI_Type_indexed: displacements in elements of `old`
  static Datatype indexed(std::span<const std::size_t> blocklens,
                          std::span<const std::ptrdiff_t> displs,
                          const Datatype& old);
  /// MPI_Type_create_hindexed: displacements in bytes
  static Datatype hindexed(std::span<const std::size_t> blocklens,
                           std::span<const std::ptrdiff_t> displs_bytes,
                           const Datatype& old);
  /// MPI_Type_create_indexed_block
  static Datatype indexed_block(std::size_t blocklen,
                                std::span<const std::ptrdiff_t> displs,
                                const Datatype& old);
  /// MPI_Type_create_subarray
  static Datatype subarray(std::span<const std::size_t> sizes,
                           std::span<const std::size_t> subsizes,
                           std::span<const std::size_t> starts,
                           const Datatype& old,
                           StorageOrder order = StorageOrder::c);
  /// MPI_Type_create_struct
  static Datatype struct_(std::span<const std::size_t> blocklens,
                          std::span<const std::ptrdiff_t> displs_bytes,
                          std::span<const Datatype> types);
  /// MPI_Type_create_resized
  static Datatype resized(const Datatype& old, std::ptrdiff_t lb,
                          std::size_t extent);
  /// MPI_Type_dup
  [[nodiscard]] Datatype dup() const;

  // --- lifecycle ----------------------------------------------------------
  /// \brief Mark ready for communication (MPI_Type_commit).
  Datatype& commit();
  [[nodiscard]] bool committed() const noexcept { return committed_; }
  [[nodiscard]] bool valid() const noexcept { return node_ != nullptr; }

  // --- geometry -----------------------------------------------------------
  [[nodiscard]] std::size_t size() const;          ///< MPI_Type_size
  [[nodiscard]] std::ptrdiff_t lb() const;         ///< MPI_Type_get_extent
  [[nodiscard]] std::ptrdiff_t ub() const;
  [[nodiscard]] std::size_t extent() const;
  [[nodiscard]] std::ptrdiff_t true_lb() const;    ///< MPI_Type_get_true_extent
  [[nodiscard]] std::size_t true_extent() const;
  /// \brief Data bytes form a single dense range.
  [[nodiscard]] bool is_single_block() const;
  [[nodiscard]] const BlockStats& block_stats() const;
  [[nodiscard]] const TypeSignature& signature() const;
  [[nodiscard]] std::string describe() const;      ///< human-readable tree
  /// \brief Top-level construction parameters (introspection).
  [[nodiscard]] TypeEnvelope envelope() const;
  /// \brief The datatype this one was built from (invalid for basics;
  /// the first child for structs).
  [[nodiscard]] Datatype child() const;

  [[nodiscard]] const detail::TypeNode& node() const {
    require(valid(), ErrorClass::invalid_type, "use of invalid datatype");
    return *node_;
  }

  friend bool operator==(const Datatype& a, const Datatype& b) noexcept {
    return a.node_ == b.node_;
  }

 private:
  explicit Datatype(detail::NodePtr n) : node_(std::move(n)) {}
  detail::NodePtr node_;
  bool committed_ = false;
};

namespace detail {

/// Internal node kinds; the public sugar constructors lower onto these.
enum class NodeKind : std::uint8_t {
  basic,
  contiguous,   ///< count x child at child-extent spacing
  hvector,      ///< count blocks of blocklen children, byte stride
  hindexed,     ///< blocks of children at byte displacements
  struct_,      ///< heterogeneous blocks
  resized,      ///< child with overridden lb/extent
};

/// \brief Immutable datatype tree node with eagerly computed geometry.
class TypeNode {
 public:
  NodeKind kind;
  BasicType basic = BasicType::byte_;  // kind == basic

  std::size_t count = 0;      // contiguous / hvector
  std::size_t blocklen = 0;   // hvector
  std::ptrdiff_t stride_bytes = 0;  // hvector
  std::vector<std::size_t> blocklens;        // hindexed / struct
  std::vector<std::ptrdiff_t> displs_bytes;  // hindexed / struct
  NodePtr child;                             // all but basic/struct
  std::vector<NodePtr> children;             // struct

  // cached geometry
  std::size_t size = 0;
  std::ptrdiff_t lb = 0, ub = 0;
  std::ptrdiff_t true_lb = 0, true_ub = 0;
  bool single_block = false;  ///< all data bytes dense
  BlockStats stats;
  TypeSignature sig;
  int depth = 1;  ///< tree depth, for diagnostics / cost model

  [[nodiscard]] std::size_t extent() const noexcept {
    return static_cast<std::size_t>(ub - lb);
  }
  [[nodiscard]] std::size_t true_extent() const noexcept {
    return static_cast<std::size_t>(true_ub - true_lb);
  }
};

}  // namespace detail
}  // namespace minimpi
