#pragma once
/// \file pack.hpp
/// \brief Pack/unpack engine and the flattened-block walker.
///
/// `for_each_block` enumerates the contiguous byte blocks of a
/// `(count, datatype)` message in *typemap order* (the order MPI packs
/// them), merging dense subtrees into single blocks.  Everything else —
/// `pack`/`unpack` (the MPI_Pack family with an explicit position
/// cursor), `gather`/`scatter` (whole-message staging copies) and
/// `typed_equal` (test support) — is built on the walker.
///
/// All data-moving entry points are *phantom-aware*: passing a null
/// source or destination performs a dry run that advances cursors and
/// validates bounds without touching memory.  The benchmark sweeps use
/// this to simulate multi-gigabyte messages cheaply; the cost model
/// charges time independently of whether bytes really moved.

#include <cstring>
#include <vector>

#include "minimpi/datatype/datatype.hpp"

namespace minimpi {
namespace detail {

template <class Fn>
void walk_node(const TypeNode& n, std::ptrdiff_t base, Fn&& fn) {
  if (n.size == 0) return;
  if (n.single_block) {
    fn(base + n.true_lb, n.size);
    return;
  }
  switch (n.kind) {
    case NodeKind::basic:
      fn(base, n.size);  // unreachable: basics are single_block
      return;
    case NodeKind::contiguous: {
      const auto ext = static_cast<std::ptrdiff_t>(n.child->extent());
      for (std::size_t i = 0; i < n.count; ++i)
        walk_node(*n.child, base + static_cast<std::ptrdiff_t>(i) * ext, fn);
      return;
    }
    case NodeKind::hvector: {
      const auto ext = static_cast<std::ptrdiff_t>(n.child->extent());
      for (std::size_t i = 0; i < n.count; ++i) {
        const std::ptrdiff_t blk =
            base + static_cast<std::ptrdiff_t>(i) * n.stride_bytes;
        // Merge the inner block when it is dense: the common vector case
        // (blocklen contiguous children) becomes one callback.
        if (n.child->single_block &&
            (n.blocklen <= 1 ||
             ext == static_cast<std::ptrdiff_t>(n.child->size))) {
          fn(blk + n.child->true_lb, n.blocklen * n.child->size);
        } else {
          for (std::size_t b = 0; b < n.blocklen; ++b)
            walk_node(*n.child,
                      blk + static_cast<std::ptrdiff_t>(b) * ext, fn);
        }
      }
      return;
    }
    case NodeKind::hindexed: {
      const auto ext = static_cast<std::ptrdiff_t>(n.child->extent());
      for (std::size_t j = 0; j < n.blocklens.size(); ++j) {
        const std::ptrdiff_t blk = base + n.displs_bytes[j];
        if (n.child->single_block &&
            (n.blocklens[j] <= 1 ||
             ext == static_cast<std::ptrdiff_t>(n.child->size))) {
          if (n.blocklens[j] > 0)
            fn(blk + n.child->true_lb, n.blocklens[j] * n.child->size);
        } else {
          for (std::size_t b = 0; b < n.blocklens[j]; ++b)
            walk_node(*n.child,
                      blk + static_cast<std::ptrdiff_t>(b) * ext, fn);
        }
      }
      return;
    }
    case NodeKind::struct_: {
      for (std::size_t j = 0; j < n.children.size(); ++j) {
        const TypeNode& c = *n.children[j];
        const auto ext = static_cast<std::ptrdiff_t>(c.extent());
        const std::ptrdiff_t blk = base + n.displs_bytes[j];
        if (c.single_block &&
            (n.blocklens[j] <= 1 ||
             ext == static_cast<std::ptrdiff_t>(c.size))) {
          if (n.blocklens[j] > 0 && c.size > 0)
            fn(blk + c.true_lb, n.blocklens[j] * c.size);
        } else {
          for (std::size_t b = 0; b < n.blocklens[j]; ++b)
            walk_node(c, blk + static_cast<std::ptrdiff_t>(b) * ext, fn);
        }
      }
      return;
    }
    case NodeKind::resized:
      walk_node(*n.child, base, fn);
      return;
  }
}

}  // namespace detail

/// \brief Visit every contiguous block of a `(count, type)` message.
///
/// `fn(std::ptrdiff_t offset_bytes, std::size_t nbytes)` is called once
/// per block, in typemap order, with offsets relative to the message
/// base address.  Replication across `count` follows MPI: element `i`
/// starts at `i * extent`.
template <class Fn>
void for_each_block(const Datatype& t, std::size_t count, Fn&& fn) {
  const detail::TypeNode& n = t.node();
  const auto ext = static_cast<std::ptrdiff_t>(n.extent());
  for (std::size_t i = 0; i < count; ++i)
    detail::walk_node(n, static_cast<std::ptrdiff_t>(i) * ext, fn);
}

/// \brief Bytes needed to pack `count` elements of `t` (MPI_Pack_size).
///
/// minimpi's packed representation is the raw data bytes, so the pack
/// size equals `count * t.size()` exactly (real MPIs may add headers).
inline std::size_t pack_size(std::size_t count, const Datatype& t) {
  return count * t.size();
}

/// \brief MPI_Pack: append `count` elements of `(inbuf, t)` into
/// `outbuf` at byte cursor `position`, advancing the cursor.
///
/// Dry-run if `inbuf` or `outbuf` is null (phantom buffers).
void pack(const void* inbuf, std::size_t incount, const Datatype& t,
          void* outbuf, std::size_t outsize, std::size_t& position);

/// \brief MPI_Unpack: scatter packed bytes at cursor `position` of
/// `inbuf` out to `(outbuf, outcount, t)`, advancing the cursor.
void unpack(const void* inbuf, std::size_t insize, std::size_t& position,
            void* outbuf, std::size_t outcount, const Datatype& t);

/// \brief Pack a *region* of the typed message's packed stream: bytes
/// `[stream_offset, stream_offset + max_bytes)` of what a full
/// `pack(inbuf, count, t, ...)` would produce.
///
/// This is the resumable primitive behind pipelined packing (pack a
/// chunk, send it, pack the next chunk while the first is on the wire —
/// the user-space analogue of MPICH's segment machinery).  Regions may
/// split blocks at arbitrary byte boundaries.  Returns the bytes
/// actually produced (less than `max_bytes` only at the end of the
/// message).  Dry-run (no copying) when `inbuf` or `outbuf` is null.
std::size_t pack_region(const void* inbuf, std::size_t count,
                        const Datatype& t, std::size_t stream_offset,
                        void* outbuf, std::size_t max_bytes);

/// \brief Gather a typed message into a contiguous buffer of
/// `count * t.size()` bytes (staging copy used by protocols).
void gather(const void* src, std::size_t count, const Datatype& t, void* dst);

/// \brief Scatter a contiguous buffer out to a typed message layout.
void scatter(const void* src, void* dst, std::size_t count, const Datatype& t);

/// \brief Compare the typed data of two messages byte-for-byte.
bool typed_equal(const void* a, const void* b, std::size_t count,
                 const Datatype& t);

/// \brief Copy typed data between two buffers with identical layout
/// (used by collectives, where all ranks pass the same datatype).
void typed_copy(void* dst, const void* src, std::size_t count,
                const Datatype& t);

/// One contiguous piece of a flattened message.
struct FlatBlock {
  std::ptrdiff_t offset;  ///< bytes from the message base address
  std::size_t length;     ///< bytes
};

/// \brief Materialize the flattened block list of a `(count, type)`
/// message, in typemap order — the iovec a gather-capable NIC would be
/// handed.  Throws MM_ERR_ARG if the list would exceed `max_blocks`
/// (guards against accidentally materializing 10^8 entries).
std::vector<FlatBlock> flatten(const Datatype& t, std::size_t count,
                               std::size_t max_blocks = 1u << 20);

}  // namespace minimpi
