#pragma once
/// \file trace.hpp
/// \brief Protocol event tracing for the simulated runtime.
///
/// When a `TraceLog` is attached to `UniverseOptions::trace`, every
/// protocol decision is recorded: which path a send took (eager,
/// rendezvous, buffered, ready), how many bytes were staged, RMA
/// operations and synchronization events.  Tests use this to assert
/// *mechanisms* ("this send used the rendezvous protocol") rather than
/// inferring them from timing; users can dump a trace to understand why
/// a transfer behaved the way it did.
///
/// Since the charge-timeline redesign the log also records **typed
/// charge atoms**: every scheduled atom (`cpu_pack`, `wire`,
/// `handshake`, ... — timeline.hpp) lands as a `ChargeRecord` with its
/// resource lane and `[start, finish)` placement, so a trace shows not
/// just *which* protocol ran but *what occupied which resource when* —
/// `dump_timeline` renders the per-resource timeline of a rank
/// (examples/protocol_trace prints one for a rendezvous send).

#include <algorithm>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "minimpi/base/types.hpp"
#include "minimpi/net/timeline.hpp"

namespace minimpi {

enum class TraceEvent : std::uint8_t {
  send_eager,
  send_rendezvous,
  send_buffered,
  send_ready,
  recv_complete,
  rma_put,
  rma_get,
  rma_accumulate,
  win_fence,
  pscw_post,
  pscw_start,
  pscw_complete,
  pscw_wait,
  lock_acquire,
  lock_release,
  collective,
};

std::string_view to_string(TraceEvent e) noexcept;

struct TraceRecord {
  double vtime = 0.0;   ///< virtual time at the event
  Rank rank = 0;        ///< acting rank
  Rank peer = -1;       ///< destination / source / target (-1: n/a)
  TraceEvent event = TraceEvent::send_eager;
  std::size_t bytes = 0;
  std::size_t staged_bytes = 0;  ///< bytes that went through MPI staging
};

/// One scheduled charge atom on a rank's resource timeline.
struct ChargeRecord {
  Rank rank = 0;        ///< rank whose resources the atom occupied
  ChargeAtom atom = ChargeAtom::call_overhead;
  Resource resource = Resource::none;  ///< declared lane (cpu / nic / -)
  double start = 0.0;
  double finish = 0.0;
  std::size_t bytes = 0;
};

/// \brief Thread-safe append-only event log shared by all ranks.
class TraceLog {
 public:
  void record(const TraceRecord& r) {
    std::lock_guard lk(m_);
    records_.push_back(r);
  }

  /// \brief Snapshot of all records (copy; safe after the universe ends).
  [[nodiscard]] std::vector<TraceRecord> records() const {
    std::lock_guard lk(m_);
    return records_;
  }

  [[nodiscard]] std::size_t count(TraceEvent e) const {
    std::lock_guard lk(m_);
    return static_cast<std::size_t>(
        std::count_if(records_.begin(), records_.end(),
                      [&](const TraceRecord& r) { return r.event == e; }));
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lk(m_);
    return records_.size();
  }

  void clear() {
    std::lock_guard lk(m_);
    records_.clear();
    charges_.clear();
  }

  // --- typed charge atoms ---------------------------------------------------

  /// \brief Record the placement of `rank`'s scheduled atoms.
  void record_charges(Rank rank, std::span<const PlacedCharge> placed) {
    std::lock_guard lk(m_);
    for (const PlacedCharge& p : placed)
      charges_.push_back({rank, p.atom, p.resource, p.start, p.finish,
                          p.bytes});
  }

  /// \brief Snapshot of all charge records (copy).
  [[nodiscard]] std::vector<ChargeRecord> charges() const {
    std::lock_guard lk(m_);
    return charges_;
  }

  [[nodiscard]] std::size_t charge_count(ChargeAtom a) const {
    std::lock_guard lk(m_);
    return static_cast<std::size_t>(
        std::count_if(charges_.begin(), charges_.end(),
                      [&](const ChargeRecord& r) { return r.atom == a; }));
  }

  /// \brief Human-readable dump, one line per event, time-sorted.
  void dump(std::ostream& os) const;

  /// \brief Render `rank`'s charge atoms as a per-resource timeline
  /// (one line per atom, grouped into cpu / nic / unbound lanes).
  void dump_timeline(std::ostream& os, Rank rank) const;

 private:
  mutable std::mutex m_;
  std::vector<TraceRecord> records_;
  std::vector<ChargeRecord> charges_;
};

}  // namespace minimpi
