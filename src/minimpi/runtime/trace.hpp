#pragma once
/// \file trace.hpp
/// \brief Protocol event tracing for the simulated runtime.
///
/// When a `TraceLog` is attached to `UniverseOptions::trace`, every
/// protocol decision is recorded: which path a send took (eager,
/// rendezvous, buffered, ready), how many bytes were staged, RMA
/// operations and synchronization events.  Tests use this to assert
/// *mechanisms* ("this send used the rendezvous protocol") rather than
/// inferring them from timing; users can dump a trace to understand why
/// a transfer behaved the way it did.

#include <algorithm>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string_view>
#include <vector>

#include "minimpi/base/types.hpp"

namespace minimpi {

enum class TraceEvent : std::uint8_t {
  send_eager,
  send_rendezvous,
  send_buffered,
  send_ready,
  recv_complete,
  rma_put,
  rma_get,
  rma_accumulate,
  win_fence,
  pscw_post,
  pscw_start,
  pscw_complete,
  pscw_wait,
  lock_acquire,
  lock_release,
  collective,
};

std::string_view to_string(TraceEvent e) noexcept;

struct TraceRecord {
  double vtime = 0.0;   ///< virtual time at the event
  Rank rank = 0;        ///< acting rank
  Rank peer = -1;       ///< destination / source / target (-1: n/a)
  TraceEvent event = TraceEvent::send_eager;
  std::size_t bytes = 0;
  std::size_t staged_bytes = 0;  ///< bytes that went through MPI staging
};

/// \brief Thread-safe append-only event log shared by all ranks.
class TraceLog {
 public:
  void record(const TraceRecord& r) {
    std::lock_guard lk(m_);
    records_.push_back(r);
  }

  /// \brief Snapshot of all records (copy; safe after the universe ends).
  [[nodiscard]] std::vector<TraceRecord> records() const {
    std::lock_guard lk(m_);
    return records_;
  }

  [[nodiscard]] std::size_t count(TraceEvent e) const {
    std::lock_guard lk(m_);
    return static_cast<std::size_t>(
        std::count_if(records_.begin(), records_.end(),
                      [&](const TraceRecord& r) { return r.event == e; }));
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lk(m_);
    return records_.size();
  }

  void clear() {
    std::lock_guard lk(m_);
    records_.clear();
  }

  /// \brief Human-readable dump, one line per event, time-sorted.
  void dump(std::ostream& os) const;

 private:
  mutable std::mutex m_;
  std::vector<TraceRecord> records_;
};

}  // namespace minimpi
