#pragma once
/// \file plan_record.hpp
/// \brief Capture of a rank's per-rep communication program as a flat
/// action array (the "compiled communication plan" substrate).
///
/// A `plan::Recorder` hangs off `UniverseOptions` like the trace log;
/// when present, every `Comm` operation executed *inside a rep* (between
/// the harness's `plan_begin_rep`/`plan_end_rep` marks) appends one typed
/// `Action` to the recording rank's current program.  The action carries
/// everything needed to re-execute the operation's virtual-clock
/// arithmetic without the scheme/runtime object stack: the protocol arm
/// taken (eager, rendezvous, ready, buffered — the *decision* is frozen,
/// the *timing* is not), the peer/tag/bytes, and the `BlockStats` the
/// cost model was fed.  Amounts that do not depend on the clock
/// (`charge`, `charge_copy`) are frozen as scalar `advance` actions.
///
/// What is deliberately NOT captured: any absolute clock value used by
/// an operation.  Replay (ncsend/plan/) re-runs the same pure
/// `CostModel` arithmetic from the captured initial state, so quantized
/// `wtime()` samples come out bit-identical — see DESIGN.md §2.9 for the
/// substitution argument.
///
/// Operations whose replay semantics we do not model (wildcard receives,
/// probes, tests, payload collectives mid-rep, buffer attach/detach
/// mid-rep) mark the recording *uncompilable*; the experiment layer then
/// falls back to direct execution, so capture can never produce a wrong
/// plan — only no plan.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "minimpi/base/types.hpp"
#include "minimpi/datatype/datatype.hpp"
#include "minimpi/net/timeline.hpp"

namespace minimpi::plan {

/// Operation kinds a compiled program can replay.
enum class Op : std::uint8_t {
  advance,        ///< clock += seconds (charge / charge_copy, frozen amount)
  send,           ///< arm-specific send; creates send event #`event`
  wait_send,      ///< Request::wait on send event #`event`
  recv,           ///< match (src,tag) FIFO + receiver-side completion
  barrier,        ///< clock-fusing barrier over all ranks
  fence,          ///< window fence epoch boundary
  put,            ///< RMA put into `peer` through window `win`
  get,            ///< RMA get from `peer` through window `win`
  pscw_post,      ///< expose epoch open (post)
  pscw_start,     ///< access epoch open towards `group`
  pscw_complete,  ///< access epoch close towards `group`
  pscw_wait,      ///< expose epoch close; `event` = expected completes
  sample_begin,   ///< harness timer start; `seconds` = captured wtime()
  sample_end,     ///< harness timer stop; `event` = contributes flag
};

/// Which protocol arm a captured send took.  Replay re-executes the
/// matching `CostModel` composition; the eager-vs-rendezvous *decision*
/// is part of the program, its *timing* is recomputed.
enum class SendArm : std::uint8_t {
  eager_blocking,  ///< blocking standard send below the eager limit
  eager_posted,    ///< isend below the eager limit
  rdv_blocking,    ///< blocking standard/synchronous send, rendezvous
  rdv_posted,      ///< isend above the limit, or issend
  ready,           ///< rsend (no handshake, staged injection)
  buffered,        ///< bsend (gather to attached pool, background wire)
};

/// One step of a rank's compiled program.  Flat POD-ish struct; the
/// whole program is a contiguous `std::vector<Action>`.
struct Action {
  Op op = Op::advance;
  SendArm arm = SendArm::eager_blocking;
  Rank peer = -1;           ///< send dst / recv src / RMA target
  Tag tag = 0;
  std::size_t bytes = 0;    ///< payload bytes on the wire
  BlockStats stats;         ///< sender-side stats (send/put) or
                            ///< receiver-side stats (recv)
  double seconds = 0.0;     ///< advance amount; captured wtime() at marks
  std::uint32_t event = 0;  ///< send/wait_send event id; pscw_wait expected;
                            ///< sample_end contributes flag
  int win = -1;             ///< window id for RMA / pscw ops
  std::size_t offset = 0;   ///< RMA put/get target offset (verifier input)
  std::vector<Rank> group;  ///< pscw_start / pscw_complete target group
  bool inserted = false;    ///< added by an optimization pass (visible
                            ///< plan-level charge, not captured)
  ChargeAtom atom = ChargeAtom::cpu_pack;  ///< advance label (dump /
                                           ///< pass accounting)
};

/// One rep's actions for one rank.
using RankProgram = std::vector<Action>;

[[nodiscard]] const char* op_name(Op op) noexcept;
[[nodiscard]] const char* arm_name(SendArm arm) noexcept;

/// \brief Per-universe capture sink.
///
/// Threading: each rank thread appends only to its own per-rank state,
/// so recording is lock-free on the hot path; the window registry and
/// the uncompilable flag (touchable from any rank) take a mutex.
class Recorder {
 public:
  /// Virtual-clock state of one rank at a rep boundary.
  struct Snapshot {
    double clock = 0.0;
    double staged_busy = 0.0;  ///< staged-class NIC ledger busy_until
    double rdv_busy = 0.0;     ///< rendezvous-class NIC ledger busy_until
  };

  explicit Recorder(int nranks)
      : per_rank_(static_cast<std::size_t>(nranks)) {}

  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(per_rank_.size());
  }

  // --- rank-thread API (called from Comm under the harness marks) -------

  void begin_rep(Rank r, const Snapshot& at) {
    RankState& st = per_rank_[static_cast<std::size_t>(r)];
    st.begin_snapshots.push_back(at);
    st.reps.emplace_back();
    st.recording = true;
    st.next_event = 0;
  }

  void end_rep(Rank r, const Snapshot& at) {
    RankState& st = per_rank_[static_cast<std::size_t>(r)];
    st.end_snapshots.push_back(at);
    st.recording = false;
  }

  /// True while rank `r` is inside a rep (setup / verification /
  /// teardown traffic outside the marks is not part of the program).
  [[nodiscard]] bool recording(Rank r) const {
    return per_rank_[static_cast<std::size_t>(r)].recording;
  }

  void record(Rank r, Action a) {
    per_rank_[static_cast<std::size_t>(r)].reps.back().push_back(
        std::move(a));
  }

  /// Fresh send-event id, unique within the rank's current rep.
  [[nodiscard]] std::uint32_t next_send_event(Rank r) {
    return per_rank_[static_cast<std::size_t>(r)].next_event++;
  }

  /// Stable small id for a window, shared across ranks (windows are
  /// created collectively, so every rank registers the same state
  /// object set; the id is the registration order of the shared state).
  /// `sizes` is the window's per-rank exposed byte counts — immutable
  /// after the collective create, captured once on first registration
  /// so the static verifier can bound-check put/get offsets.
  [[nodiscard]] int window_id(const void* state,
                              const std::vector<std::size_t>& sizes) {
    std::lock_guard<std::mutex> lock(m_);
    for (std::size_t i = 0; i < windows_.size(); ++i)
      if (windows_[i] == state) return static_cast<int>(i);
    windows_.push_back(state);
    window_sizes_.push_back(sizes);
    return static_cast<int>(windows_.size() - 1);
  }

  /// An operation replay cannot model was captured: poison the plan.
  void mark_uncompilable(const std::string& why) {
    std::lock_guard<std::mutex> lock(m_);
    if (uncompilable_reason_.empty()) uncompilable_reason_ = why;
  }

  // --- harvest API (after Universe::run returns) ------------------------

  [[nodiscard]] bool uncompilable() const {
    std::lock_guard<std::mutex> lock(m_);
    return !uncompilable_reason_.empty();
  }
  [[nodiscard]] std::string reason() const {
    std::lock_guard<std::mutex> lock(m_);
    return uncompilable_reason_;
  }

  [[nodiscard]] const std::vector<RankProgram>& reps(Rank r) const {
    return per_rank_[static_cast<std::size_t>(r)].reps;
  }
  [[nodiscard]] const std::vector<Snapshot>& begin_snapshots(Rank r) const {
    return per_rank_[static_cast<std::size_t>(r)].begin_snapshots;
  }
  [[nodiscard]] const std::vector<Snapshot>& end_snapshots(Rank r) const {
    return per_rank_[static_cast<std::size_t>(r)].end_snapshots;
  }
  [[nodiscard]] std::size_t window_count() const {
    std::lock_guard<std::mutex> lock(m_);
    return windows_.size();
  }
  /// Captured per-rank byte sizes of every registered window, in
  /// window-id order.
  [[nodiscard]] std::vector<std::vector<std::size_t>> window_sizes() const {
    std::lock_guard<std::mutex> lock(m_);
    return window_sizes_;
  }

 private:
  struct RankState {
    bool recording = false;
    std::uint32_t next_event = 0;
    std::vector<RankProgram> reps;
    std::vector<Snapshot> begin_snapshots;
    std::vector<Snapshot> end_snapshots;
  };

  std::vector<RankState> per_rank_;
  mutable std::mutex m_;
  std::vector<const void*> windows_;
  std::vector<std::vector<std::size_t>> window_sizes_;
  std::string uncompilable_reason_;
};

inline const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::advance: return "advance";
    case Op::send: return "send";
    case Op::wait_send: return "wait_send";
    case Op::recv: return "recv";
    case Op::barrier: return "barrier";
    case Op::fence: return "fence";
    case Op::put: return "put";
    case Op::get: return "get";
    case Op::pscw_post: return "pscw_post";
    case Op::pscw_start: return "pscw_start";
    case Op::pscw_complete: return "pscw_complete";
    case Op::pscw_wait: return "pscw_wait";
    case Op::sample_begin: return "sample_begin";
    case Op::sample_end: return "sample_end";
  }
  return "?";
}

inline const char* arm_name(SendArm arm) noexcept {
  switch (arm) {
    case SendArm::eager_blocking: return "eager";
    case SendArm::eager_posted: return "eager-posted";
    case SendArm::rdv_blocking: return "rdv";
    case SendArm::rdv_posted: return "rdv-posted";
    case SendArm::ready: return "ready";
    case SendArm::buffered: return "buffered";
  }
  return "?";
}

}  // namespace minimpi::plan
