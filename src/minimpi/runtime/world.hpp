#pragma once
/// \file world.hpp
/// \brief Process-wide shared state of a simulated MPI job.
///
/// One `World` backs one `Universe::run` invocation: it owns the
/// mailboxes, the clock-fusing barrier used by collectives and RMA
/// fences, the collective data-exchange slot, and the RMA window
/// registry.  Ranks are cooperative fiber tasks multiplexed over one
/// carrier thread (base/coop.hpp); all cross-rank communication flows
/// through this object, blocking on `coop::WaitQueue`s, while *virtual*
/// time is computed from the cost model so results are independent of
/// host scheduling (DESIGN.md §2.5/§2.10).

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "minimpi/base/perf.hpp"
#include "minimpi/base/pool.hpp"
#include "minimpi/net/cost_model.hpp"
#include "minimpi/runtime/matching.hpp"
#include "minimpi/runtime/trace.hpp"

namespace minimpi {

namespace plan {
class Recorder;
}  // namespace plan

/// User-facing configuration of a simulated job.
struct UniverseOptions {
  int nranks = 2;
  /// Machine profile to simulate; see MachineProfile::names().
  const MachineProfile* profile = &MachineProfile::skx_impi();
  /// Move payload bytes (functional mode) or metadata only (modeled
  /// mode).  Virtual timing is identical either way — a tested invariant.
  bool functional = true;
  /// Even in functional mode, payloads larger than this travel as
  /// metadata only (lets sweeps reach 1e9 bytes without 1e9-byte copies).
  std::size_t functional_payload_limit = std::numeric_limits<std::size_t>::max();
  /// Override the profile's eager limit (paper §4.5 experiment).
  std::optional<std::size_t> eager_limit_override;
  /// Simultaneous senders sharing one NIC (communication patterns);
  /// feeds the profile's `link_contention_factor` term — the
  /// explicitly-labelled *static fallback* contention model.  1 = the
  /// 2-rank ping-pong, where the term is always inert.
  int concurrent_senders = 1;
  /// Emergent NIC-occupancy contention: every message send takes a
  /// FIFO slot on its rank's NIC timeline (`NicLedger`), so the
  /// injections of concurrent sends from one rank queue behind each
  /// other instead of overlapping for free.  Deterministic — queue
  /// order is the sender's program order — and off by default, which
  /// keeps every existing curve bit-identical; `bench/ablation_contention`
  /// compares it against the static fallback.
  bool nic_occupancy_contention = false;
  /// MPI_Wtime tick (paper: 1e-6 s); 0 means exact clocks.
  double wtime_resolution = 1e-6;
  /// Optional protocol trace; events from all ranks are appended here.
  std::shared_ptr<TraceLog> trace;
  /// Optional compiled-plan capture sink (plan_record.hpp).  When set,
  /// every in-rep communication op appends a typed action to the
  /// recording rank's program; the harness brackets reps via the
  /// `Comm::plan_*` marks.  Not owned; must outlive `Universe::run`.
  plan::Recorder* plan_recorder = nullptr;
  /// Optional host-side performance-counter sink (base/perf.hpp).
  /// `Universe::run` *accumulates* the run's counters into it on exit
  /// (pool hits/misses, fiber switches, match probes).  Not owned;
  /// purely observational — attaching it cannot change any virtual
  /// clock.
  PerfCounters* perf = nullptr;
};

namespace detail {

/// \brief Reusable N-party barrier that also fuses virtual clocks.
///
/// Each participant contributes a value; everyone receives the maximum.
/// Generation counting makes it safely reusable, relying on the fact
/// that every rank participates in every round.
class ClockBarrier {
 public:
  explicit ClockBarrier(int parties) : parties_(parties) {}

  double arrive(double value) {
    std::unique_lock lk(m_);
    const std::uint64_t gen = generation_;
    pending_max_ = std::max(pending_max_, value);
    if (++arrived_ == parties_) {
      result_ = pending_max_;
      pending_max_ = -std::numeric_limits<double>::infinity();
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return result_;
    }
    cv_.wait(lk, [&] { return generation_ != gen; });
    return result_;
  }

 private:
  std::mutex m_;
  coop::WaitQueue cv_;
  const int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  double pending_max_ = -std::numeric_limits<double>::infinity();
  double result_ = 0.0;
};

/// \brief Rendezvous slot for collective data movement.
///
/// Phase 1: every rank deposits a pointer to its contribution and fuses
/// clocks; a designated rank (root / reducer) then works on the gathered
/// pointers.  Phase 2 releases the buffers.  Data movement is host-level;
/// timing comes from the fused clocks plus a model-derived cost added by
/// the caller.
class CollectiveSlot {
 public:
  explicit CollectiveSlot(int parties)
      : parties_(parties), contribs_(parties), barrier_a_(parties),
        barrier_b_(parties) {}

  /// Deposit a contribution pointer, returning the fused (max) clock.
  double deposit(Rank r, const void* ptr, double clock) {
    contribs_[static_cast<std::size_t>(r)] = ptr;
    return barrier_a_.arrive(clock);
  }

  [[nodiscard]] const void* contribution(Rank r) const {
    return contribs_[static_cast<std::size_t>(r)];
  }

  /// \name Per-round fold cache
  /// Every rank of an allreduce folds the *same* contributions in the
  /// same 0..N-1 order, so the first rank past the deposit barrier may
  /// compute the fold once and the rest copy it — N-1 redundant O(N)
  /// walks (the O(N²) term that dominated 1k-rank universe setup)
  /// collapse to one, and the cached bits are exactly what every rank
  /// would have produced itself.  Fibers share one carrier thread, so
  /// the check-then-store pair needs no lock as long as the fold loop
  /// itself never blocks (contribution reads and scalar ops do not).
  /// @{
  [[nodiscard]] bool fold_cached() const noexcept {
    return fold_round_ == round_;
  }
  void store_fold(const void* bits, std::size_t n) noexcept {
    std::memcpy(fold_.data(), bits, n);
    fold_round_ = round_;
  }
  [[nodiscard]] const void* fold() const noexcept { return fold_.data(); }
  /// @}

  /// Release the slot; every rank must call this once per collective.
  /// The last release closes the round, invalidating the fold cache.
  void release() {
    if (++released_ == parties_) {
      released_ = 0;
      ++round_;
    }
    barrier_b_.arrive(0.0);
  }

 private:
  const int parties_;
  std::vector<const void*> contribs_;
  ClockBarrier barrier_a_;
  ClockBarrier barrier_b_;
  int released_ = 0;
  std::uint64_t round_ = 1;       ///< current collective round
  std::uint64_t fold_round_ = 0;  ///< round whose fold is cached (0 = none)
  std::array<std::byte, 16> fold_{};
};

/// \brief Shared state of one RMA window (MPI_Win).
struct WindowState {
  explicit WindowState(int parties)
      : bases(parties, nullptr), sizes(parties, 0), in_epoch(parties, false),
        post_seq(parties, 0), post_time(parties, 0.0),
        post_origins(parties), complete_count(parties, 0),
        complete_max(parties, 0.0), lock_held(parties, false),
        lock_release_time(parties, 0.0), barrier(parties) {}

  std::vector<std::byte*> bases;   ///< per-rank exposed memory (may be null)
  std::vector<std::size_t> sizes;  ///< per-rank exposed bytes
  std::vector<bool> in_epoch;      ///< per-rank epoch flag (fence toggled)

  std::mutex m;                    ///< guards target memory + all state below
  coop::WaitQueue cv;              ///< PSCW / lock wakeups
  double pending_max = 0.0;        ///< latest arrival among epoch's RMA ops

  // Generalized active target (post/start/complete/wait) state.
  std::vector<int> post_seq;                 ///< per rank: posts issued
  std::vector<double> post_time;             ///< per rank: last post's clock
  std::vector<std::vector<Rank>> post_origins;  ///< last post's origin group
  std::vector<int> complete_count;           ///< completes received this epoch
  std::vector<double> complete_max;          ///< latest completion time

  // Passive target state.
  std::vector<bool> lock_held;
  std::vector<double> lock_release_time;

  ClockBarrier barrier;
};

class World {
 public:
  explicit World(const UniverseOptions& opts)
      : options(opts),
        model(*opts.profile, opts.eager_limit_override,
              opts.concurrent_senders),
        barrier_(opts.nranks),
        coll_(opts.nranks) {
    mailboxes_.reserve(static_cast<std::size_t>(opts.nranks));
    bsend_pools_.reserve(static_cast<std::size_t>(opts.nranks));
    staged_ledgers_.reserve(static_cast<std::size_t>(opts.nranks));
    rdv_ledgers_.reserve(static_cast<std::size_t>(opts.nranks));
    for (int i = 0; i < opts.nranks; ++i) {
      mailboxes_.push_back(std::make_unique<Mailbox>());
      bsend_pools_.push_back(std::make_shared<BsendPool>());
      staged_ledgers_.push_back(
          std::make_unique<NicLedger>(opts.nic_occupancy_contention));
      rdv_ledgers_.push_back(
          std::make_unique<NicLedger>(opts.nic_occupancy_contention));
    }
  }

  UniverseOptions options;
  CostModel model;

  /// A clean envelope from the per-universe pool — the only way the
  /// runtime creates envelopes, so the pool's acquire count *is* the
  /// message count.
  EnvRef acquire_envelope() { return env_pool_.acquire(); }
  ObjectPool<Envelope>& envelope_pool() noexcept { return env_pool_; }

  /// Run-wide counter accumulator (Comm destructors fold their
  /// request-pool statistics in here as rank bodies finish).
  PerfCounters& counters() noexcept { return counters_; }

  /// Fold the pool / mailbox statistics into `counters_` and
  /// accumulate the total into the options sink, if one is attached.
  /// Called once by `Universe::run` after the scheduler drains.
  void publish_counters(std::uint64_t fiber_switches) {
    counters_.messages = env_pool_.acquires();
    counters_.envelope_allocs = env_pool_.misses();
    counters_.fiber_switches = fiber_switches;
    for (auto& mb : mailboxes_) counters_.match_probes += mb->probes();
    if (options.perf != nullptr) options.perf->add(counters_);
  }

  Mailbox& mailbox(Rank r) { return *mailboxes_[static_cast<std::size_t>(r)]; }
  std::shared_ptr<BsendPool> bsend_pool(Rank r) {
    return bsend_pools_[static_cast<std::size_t>(r)];
  }
  /// Rank `r`'s NIC injection queues.  Two FIFO classes, one per
  /// resolution site, so an injection never waits across classes:
  ///
  ///  * *staged* — eager, ready, buffered, and RMA sends, whose wire
  ///    times are known at post time.  Tickets are taken and resolved
  ///    back to back on the sending rank's own thread, so this class
  ///    never blocks anywhere;
  ///  * *rendezvous* — large-message sends whose timing only the
  ///    matching receiver can compute.  The ticket travels in the
  ///    envelope and the receiver resolves it (after delivery, so the
  ///    wait can never hold back an undelivered message), strictly in
  ///    post order — which is how same-sender large messages are
  ///    matched under MPI's non-overtaking rule and the pattern
  ///    engine's ascending-sender drain.
  ///
  /// The cost: an eager injection does not queue behind a pending
  /// rendezvous injection of the same rank (defensible — rendezvous
  /// data is not injected until its CTS anyway, so the staged message
  /// genuinely goes out first); cross-class NIC overlap is not
  /// modeled.
  NicLedger& nic_ledger(Rank r, bool rendezvous = false) {
    return rendezvous ? *rdv_ledgers_[static_cast<std::size_t>(r)]
                      : *staged_ledgers_[static_cast<std::size_t>(r)];
  }
  /// \brief Take the next FIFO slot on rank `r`'s NIC (class per the
  /// ledger split above).  Must be called on rank `r`'s own thread
  /// (program order is the queue order); whoever realizes the
  /// transfer's charges resolves it.  Inert (no ticket, no state)
  /// unless emergent contention is enabled.
  NicGate nic_gate(Rank r, bool rendezvous = false) {
    NicLedger& l = nic_ledger(r, rendezvous);
    return NicGate{&l, l.ticket()};
  }
  ClockBarrier& barrier() { return barrier_; }
  CollectiveSlot& collective() { return coll_; }

  std::shared_ptr<WindowState> create_window() {
    std::lock_guard lk(wm_);
    auto w = std::make_shared<WindowState>(options.nranks);
    windows_.push_back(w);
    return w;
  }

  /// True if a payload of `bytes` should physically move.
  [[nodiscard]] bool move_payload(std::size_t bytes) const noexcept {
    return options.functional && bytes <= options.functional_payload_limit;
  }

  void trace_event(double vtime, Rank rank, Rank peer, TraceEvent event,
                   std::size_t bytes, std::size_t staged = 0) const {
    if (options.trace)
      options.trace->record({vtime, rank, peer, event, bytes, staged});
  }

  /// True if scheduled charge atoms should be captured for the trace.
  [[nodiscard]] bool tracing() const noexcept {
    return options.trace != nullptr;
  }
  void trace_charges(Rank rank, std::span<const PlacedCharge> placed) const {
    if (options.trace) options.trace->record_charges(rank, placed);
  }

 private:
  /// Declared before the mailboxes on purpose: members destroy in
  /// reverse order, so queued envelopes a mailbox still holds at world
  /// teardown recycle into a live pool.
  ObjectPool<Envelope> env_pool_;
  PerfCounters counters_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::shared_ptr<BsendPool>> bsend_pools_;
  std::vector<std::unique_ptr<NicLedger>> staged_ledgers_;
  std::vector<std::unique_ptr<NicLedger>> rdv_ledgers_;
  ClockBarrier barrier_;
  CollectiveSlot coll_;
  std::mutex wm_;
  std::vector<std::shared_ptr<WindowState>> windows_;
};

}  // namespace detail
}  // namespace minimpi
