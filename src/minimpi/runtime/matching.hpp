#pragma once
/// \file matching.hpp
/// \brief Message envelopes and per-rank mailboxes with MPI matching rules.
///
/// Every send deposits an `Envelope` in the destination rank's mailbox.
/// Receives match on `(source, tag)` with MPI wildcard semantics and the
/// MPI non-overtaking guarantee: envelopes from the same source are
/// matched in the order they were sent (the deque preserves per-source
/// program order because each sender enqueues sequentially).
///
/// Rendezvous-protocol envelopes carry a promise through which the
/// *receiver* — who alone knows both sides' virtual clocks — reports the
/// computed sender-completion time back to the (blocked) sender.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "minimpi/base/types.hpp"
#include "minimpi/datatype/datatype.hpp"
#include "minimpi/net/timeline.hpp"

namespace minimpi::detail {

class BsendPool;

struct Envelope {
  Rank src = 0;
  Rank dst = 0;
  Tag tag = 0;
  std::size_t bytes = 0;             ///< packed payload size
  TypeSignature signature;           ///< send-side type signature
  BlockStats send_stats;             ///< layout stats of the send message
  std::vector<std::byte> payload;    ///< packed bytes (empty in modeled mode)
  bool has_payload = false;

  bool eager = true;                 ///< protocol used by the sender
  double sender_done = 0.0;          ///< eager/bsend: precomputed
  double arrival = 0.0;              ///< eager/bsend: precomputed

  bool needs_rdv_ack = false;        ///< rendezvous: receiver resolves timing
  double sender_ready = 0.0;         ///< rendezvous: sender clock + overhead
  std::promise<double> rdv_promise;  ///< fulfilled with sender_done

  /// FIFO slot on the *sender's* NIC ledger, taken at post time in
  /// program order; the receiver that computes the rendezvous timing
  /// resolves it (inert when emergent contention is off).
  NicGate nic_gate;

  /// Buffered sends release their reservation when the transfer is
  /// consumed; null for non-buffered sends.
  std::shared_ptr<BsendPool> bsend_pool;
  std::size_t bsend_reserved = 0;
};

/// \brief Per-destination queue with blocking wildcard matching.
class Mailbox {
 public:
  void push(std::shared_ptr<Envelope> env) {
    {
      std::lock_guard lk(m_);
      q_.push_back(std::move(env));
    }
    cv_.notify_all();
  }

  /// \brief Remove and return the first envelope matching (src, tag),
  /// blocking until one exists.
  std::shared_ptr<Envelope> match(Rank src, Tag tag) {
    std::unique_lock lk(m_);
    for (;;) {
      if (auto env = take_locked(src, tag)) return env;
      cv_.wait(lk);
    }
  }

  /// \brief Non-blocking variant; null if nothing matches.
  std::shared_ptr<Envelope> try_match(Rank src, Tag tag) {
    std::lock_guard lk(m_);
    return take_locked(src, tag);
  }

  /// \brief Blocking peek (MPI_Probe): the envelope stays queued.
  std::shared_ptr<Envelope> peek(Rank src, Tag tag) {
    std::unique_lock lk(m_);
    for (;;) {
      for (const auto& e : q_)
        if (matches(*e, src, tag)) return e;
      cv_.wait(lk);
    }
  }

  /// \brief Non-blocking peek (MPI_Iprobe); null if nothing matches.
  std::shared_ptr<Envelope> try_peek(Rank src, Tag tag) {
    std::lock_guard lk(m_);
    for (const auto& e : q_)
      if (matches(*e, src, tag)) return e;
    return nullptr;
  }

  [[nodiscard]] std::size_t pending() {
    std::lock_guard lk(m_);
    return q_.size();
  }

 private:
  static bool matches(const Envelope& e, Rank src, Tag tag) {
    return (src == any_source || e.src == src) &&
           (tag == any_tag || e.tag == tag);
  }

  std::shared_ptr<Envelope> take_locked(Rank src, Tag tag) {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (matches(**it, src, tag)) {
        auto env = std::move(*it);
        q_.erase(it);
        return env;
      }
    }
    return nullptr;
  }

  std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Envelope>> q_;
};

/// \brief Accounting for the user buffer attached via buffer_attach.
///
/// MPI_Bsend reserves `packed size + bsend_overhead_bytes` from the
/// attached buffer and releases it when the message is delivered; a
/// reservation failure is MM_ERR_BUFFER, exactly like MPI's
/// MPI_ERR_BUFFER for an exhausted attach buffer.
class BsendPool {
 public:
  static constexpr std::size_t bsend_overhead_bytes = 64;

  void attach(std::size_t capacity) {
    std::lock_guard lk(m_);
    attached_ = true;
    capacity_ = capacity;
    used_ = 0;
    high_water_ = 0;
  }

  /// \brief Block until all buffered sends drain, then detach.
  /// \return the capacity that was attached.
  std::size_t detach() {
    std::unique_lock lk(m_);
    cv_.wait(lk, [&] { return used_ == 0; });
    attached_ = false;
    const std::size_t cap = capacity_;
    capacity_ = 0;
    return cap;
  }

  [[nodiscard]] bool reserve(std::size_t payload_bytes) {
    std::lock_guard lk(m_);
    const std::size_t need = payload_bytes + bsend_overhead_bytes;
    if (!attached_ || used_ + need > capacity_) return false;
    used_ += need;
    high_water_ = std::max(high_water_, used_);
    return true;
  }

  void release(std::size_t payload_bytes) {
    {
      std::lock_guard lk(m_);
      used_ -= std::min(used_, payload_bytes + bsend_overhead_bytes);
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool attached() {
    std::lock_guard lk(m_);
    return attached_;
  }
  [[nodiscard]] std::size_t in_use() {
    std::lock_guard lk(m_);
    return used_;
  }
  [[nodiscard]] std::size_t high_water() {
    std::lock_guard lk(m_);
    return high_water_;
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool attached_ = false;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace minimpi::detail
