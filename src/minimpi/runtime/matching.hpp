#pragma once
/// \file matching.hpp
/// \brief Message envelopes and per-rank mailboxes with MPI matching rules.
///
/// Every send deposits an `Envelope` in the destination rank's mailbox.
/// Receives match on `(source, tag)` with MPI wildcard semantics and the
/// MPI non-overtaking guarantee: envelopes from the same source are
/// matched in the order they were sent.
///
/// Matching is indexed: envelopes live in per-`(src, tag)` buckets
/// (each a FIFO deque), so the engine's hot path — a fully-addressed
/// receive against a pattern neighbor — is one hash lookup plus a
/// pop-front, independent of how many thousand other messages are
/// queued.  Wildcard receives (`any_source` / `any_tag`) fall back to a
/// scan over the *buckets* for the globally earliest arrival: every
/// envelope carries a monotone arrival sequence number, per-bucket
/// FIFOs keep per-source program order, and the minimum head sequence
/// across matching buckets is exactly the envelope the old linear deque
/// scan would have taken — so wildcard arrival order and non-overtaking
/// are preserved bit-for-bit.
///
/// Rendezvous-protocol envelopes carry an ack slot through which the
/// *receiver* — who alone knows both sides' virtual clocks — reports
/// the computed sender-completion time back to the (blocked) sender.
/// The slot is a `coop::WaitQueue`, not a promise/future pair: the
/// blocked sender is a parked fiber, and a future's `get()` would hang
/// the carrier thread that also has to run the matching receiver.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "minimpi/base/coop.hpp"
#include "minimpi/base/pool.hpp"
#include "minimpi/base/types.hpp"
#include "minimpi/datatype/datatype.hpp"
#include "minimpi/net/timeline.hpp"

namespace minimpi::detail {

class BsendPool;

/// Pooled (pool.hpp): the world hands envelopes out of a per-universe
/// free list; `reset()` returns a node to its default-constructed
/// state while keeping the `signature` and `payload` capacities, so
/// steady-state messaging allocates nothing.
struct Envelope : Poolable<Envelope> {
  Rank src = 0;
  Rank dst = 0;
  Tag tag = 0;
  std::size_t bytes = 0;             ///< packed payload size
  TypeSignature signature;           ///< send-side type signature
  BlockStats send_stats;             ///< layout stats of the send message
  std::vector<std::byte> payload;    ///< packed bytes (empty in modeled mode)
  bool has_payload = false;

  bool eager = true;                 ///< protocol used by the sender
  double sender_done = 0.0;          ///< eager/bsend: precomputed
  double arrival = 0.0;              ///< eager/bsend: precomputed

  bool needs_rdv_ack = false;        ///< rendezvous: receiver resolves timing
  double sender_ready = 0.0;         ///< rendezvous: sender clock + overhead
  bool ack_ready = false;            ///< receiver published ack_value
  double ack_value = 0.0;            ///< the computed sender_done
  coop::WaitQueue ack_wq;            ///< parks the blocked sender fiber

  /// FIFO slot on the *sender's* NIC ledger, taken at post time in
  /// program order; the receiver that computes the rendezvous timing
  /// resolves it (inert when emergent contention is off).
  NicGate nic_gate;

  /// Buffered sends release their reservation when the transfer is
  /// consumed; null for non-buffered sends.
  std::shared_ptr<BsendPool> bsend_pool;
  std::size_t bsend_reserved = 0;

  /// Scrub every field back to the values above (the recycling
  /// contract; test_pool_recycling's tripwire enumerates them).
  /// `ack_wq` needs no touch: a released envelope has no parked
  /// sender, and an empty `WaitQueue` carries no state.
  void reset() {
    src = 0;
    dst = 0;
    tag = 0;
    bytes = 0;
    signature.clear();
    send_stats = BlockStats{};
    payload.clear();
    has_payload = false;
    eager = true;
    sender_done = 0.0;
    arrival = 0.0;
    needs_rdv_ack = false;
    sender_ready = 0.0;
    ack_ready = false;
    ack_value = 0.0;
    nic_gate = NicGate{};
    bsend_pool.reset();
    bsend_reserved = 0;
  }
};

/// Pooled envelope handle: single pointer, intrusive refcount.
using EnvRef = PoolRef<Envelope>;

/// \brief Per-destination mailbox: `(src, tag)`-indexed buckets with a
/// wildcard earliest-arrival fallback, blocking via the coop scheduler.
class Mailbox {
 public:
  Mailbox() {
    // Reserve bucket headroom up front and keep the table sparse: a
    // pattern rank talks to a handful of `(src, tag)` pairs, and
    // rehashing mid-run would churn every bucket node the moment the
    // working set stabilizes.  Buckets are never erased, so after the
    // first rep the pair set — and the table — is fixed.
    buckets_.max_load_factor(0.5F);
    buckets_.reserve(16);
  }

  void push(EnvRef env) {
    {
      std::lock_guard lk(m_);
      bucket_at(key(env->src, env->tag))
          .items.push_back(Item{next_seq_++, std::move(env)});
      ++size_;
    }
    wq_.notify_all();
  }

  /// \brief Remove and return the first envelope matching (src, tag),
  /// blocking until one exists.
  EnvRef match(Rank src, Tag tag) {
    std::unique_lock lk(m_);
    EnvRef env;
    wq_.wait(lk, [&] { return (env = take_locked(src, tag)) != nullptr; });
    return env;
  }

  /// \brief Non-blocking variant; null if nothing matches.
  EnvRef try_match(Rank src, Tag tag) {
    std::lock_guard lk(m_);
    return take_locked(src, tag);
  }

  /// \brief Blocking peek (MPI_Probe): the envelope stays queued, and
  /// it is exactly the one the next matching `match` will take.
  EnvRef peek(Rank src, Tag tag) {
    std::unique_lock lk(m_);
    EnvRef env;
    wq_.wait(lk, [&] { return (env = peek_locked(src, tag)) != nullptr; });
    return env;
  }

  /// \brief Non-blocking peek (MPI_Iprobe); null if nothing matches.
  EnvRef try_peek(Rank src, Tag tag) {
    std::lock_guard lk(m_);
    return peek_locked(src, tag);
  }

  /// Total queued envelopes: maintained as a running counter so it
  /// stays one load, and consistent with the sum of the per-bucket
  /// totals, no matter how the buckets are split.
  [[nodiscard]] std::size_t pending() {
    std::lock_guard lk(m_);
    return size_;
  }

  /// Queued envelopes a `(src, tag)` receive would consider (wildcards
  /// allowed): the per-bucket accounting behind `pending()`.
  [[nodiscard]] std::size_t pending(Rank src, Tag tag) {
    std::lock_guard lk(m_);
    if (src != any_source && tag != any_tag) {
      const auto it = buckets_.find(key(src, tag));
      return it == buckets_.end() ? 0 : it->second.size();
    }
    std::size_t n = 0;
    // Commutative sum: bucket order cannot reach the result.
    for (const auto& [k, q] : buckets_)  // determinism: ok
      if (key_matches(k, src, tag)) n += q.size();
    return n;
  }

  /// Bucket probes performed so far: 1 per addressed lookup, plus one
  /// per bucket a wildcard had to scan — the perf-counter layer's
  /// match-probe figure.
  [[nodiscard]] std::uint64_t probes() {
    std::lock_guard lk(m_);
    return probes_;
  }

 private:
  struct Item {
    std::uint64_t seq = 0;  ///< global arrival order within this mailbox
    EnvRef env;
  };

  /// FIFO over a capacity-retaining vector: pop-front advances `head`,
  /// and draining resets both — so a bucket that breathes (one message
  /// in, one out, every rep) reuses the same slot forever instead of
  /// cycling deque chunks through the allocator.
  struct Bucket {
    std::vector<Item> items;
    std::size_t head = 0;

    [[nodiscard]] bool empty() const noexcept {
      return head == items.size();
    }
    [[nodiscard]] std::size_t size() const noexcept {
      return items.size() - head;
    }
    [[nodiscard]] Item& front() noexcept { return items[head]; }
    [[nodiscard]] const Item& front() const noexcept { return items[head]; }
    void pop_front() noexcept {
      if (++head == items.size()) {
        items.clear();
        head = 0;
      }
    }
  };

  static std::uint64_t key(Rank src, Tag tag) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }
  static bool key_matches(std::uint64_t k, Rank src, Tag tag) noexcept {
    const auto ksrc = static_cast<Rank>(static_cast<std::int32_t>(k >> 32));
    const auto ktag =
        static_cast<Tag>(static_cast<std::int32_t>(k & 0xffffffffu));
    return (src == any_source || ksrc == src) &&
           (tag == any_tag || ktag == tag);
  }

  Bucket& bucket_at(std::uint64_t k) { return buckets_[k]; }

  /// The bucket whose head is the earliest-arrived envelope a
  /// `(src, tag)` receive may take — O(1) on the fully-addressed hot
  /// path, O(#non-empty buckets) under a wildcard.  Null if none match.
  Bucket* find_bucket(Rank src, Tag tag) {
    if (src != any_source && tag != any_tag) {
      ++probes_;
      const auto it = buckets_.find(key(src, tag));
      return (it != buckets_.end() && !it->second.empty()) ? &it->second
                                                           : nullptr;
    }
    Bucket* best = nullptr;
    // `seq` is unique within the mailbox, so the strict `<` selects the
    // same bucket whatever order the hash table yields them in.
    for (auto& [k, q] : buckets_) {  // determinism: ok
      ++probes_;
      if (q.empty() || !key_matches(k, src, tag)) continue;
      if (best == nullptr || q.front().seq < best->front().seq) best = &q;
    }
    return best;
  }

  EnvRef take_locked(Rank src, Tag tag) {
    Bucket* b = find_bucket(src, tag);
    if (b == nullptr) return nullptr;
    EnvRef env = std::move(b->front().env);
    b->pop_front();
    --size_;
    return env;
  }

  EnvRef peek_locked(Rank src, Tag tag) {
    Bucket* b = find_bucket(src, tag);
    return b == nullptr ? nullptr : b->front().env;
  }

  std::mutex m_;
  coop::WaitQueue wq_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
  std::uint64_t probes_ = 0;
};

/// \brief Accounting for the user buffer attached via buffer_attach.
///
/// MPI_Bsend reserves `packed size + bsend_overhead_bytes` from the
/// attached buffer and releases it when the message is delivered; a
/// reservation failure is MM_ERR_BUFFER, exactly like MPI's
/// MPI_ERR_BUFFER for an exhausted attach buffer.
class BsendPool {
 public:
  static constexpr std::size_t bsend_overhead_bytes = 64;

  void attach(std::size_t capacity) {
    std::lock_guard lk(m_);
    attached_ = true;
    capacity_ = capacity;
    used_ = 0;
    high_water_ = 0;
  }

  /// \brief Block until all buffered sends drain, then detach.
  /// \return the capacity that was attached.
  std::size_t detach() {
    std::unique_lock lk(m_);
    wq_.wait(lk, [&] { return used_ == 0; });
    attached_ = false;
    const std::size_t cap = capacity_;
    capacity_ = 0;
    return cap;
  }

  [[nodiscard]] bool reserve(std::size_t payload_bytes) {
    std::lock_guard lk(m_);
    const std::size_t need = payload_bytes + bsend_overhead_bytes;
    if (!attached_ || used_ + need > capacity_) return false;
    used_ += need;
    high_water_ = std::max(high_water_, used_);
    return true;
  }

  void release(std::size_t payload_bytes) {
    {
      std::lock_guard lk(m_);
      used_ -= std::min(used_, payload_bytes + bsend_overhead_bytes);
    }
    wq_.notify_all();
  }

  [[nodiscard]] bool attached() {
    std::lock_guard lk(m_);
    return attached_;
  }
  [[nodiscard]] std::size_t in_use() {
    std::lock_guard lk(m_);
    return used_;
  }
  [[nodiscard]] std::size_t high_water() {
    std::lock_guard lk(m_);
    return high_water_;
  }

 private:
  std::mutex m_;
  coop::WaitQueue wq_;
  bool attached_ = false;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace minimpi::detail
