#include "minimpi/runtime/trace.hpp"

#include <iomanip>
#include <ostream>

namespace minimpi {

std::string_view to_string(TraceEvent e) noexcept {
  switch (e) {
    case TraceEvent::send_eager: return "send.eager";
    case TraceEvent::send_rendezvous: return "send.rendezvous";
    case TraceEvent::send_buffered: return "send.buffered";
    case TraceEvent::send_ready: return "send.ready";
    case TraceEvent::recv_complete: return "recv.complete";
    case TraceEvent::rma_put: return "rma.put";
    case TraceEvent::rma_get: return "rma.get";
    case TraceEvent::rma_accumulate: return "rma.accumulate";
    case TraceEvent::win_fence: return "win.fence";
    case TraceEvent::pscw_post: return "pscw.post";
    case TraceEvent::pscw_start: return "pscw.start";
    case TraceEvent::pscw_complete: return "pscw.complete";
    case TraceEvent::pscw_wait: return "pscw.wait";
    case TraceEvent::lock_acquire: return "lock.acquire";
    case TraceEvent::lock_release: return "lock.release";
    case TraceEvent::collective: return "collective";
  }
  return "?";
}

void TraceLog::dump_timeline(std::ostream& os, Rank rank) const {
  auto all = charges();
  std::erase_if(all, [&](const ChargeRecord& r) { return r.rank != rank; });
  std::stable_sort(all.begin(), all.end(),
                   [](const ChargeRecord& a, const ChargeRecord& b) {
                     return a.start < b.start;
                   });
  os << "rank " << rank << " resource timeline (" << all.size()
     << " atoms)\n";
  for (const Resource lane :
       {Resource::cpu, Resource::nic, Resource::none}) {
    bool any = false;
    for (const ChargeRecord& r : all)
      if (r.resource == lane) { any = true; break; }
    if (!any) continue;
    os << "  [" << to_string(lane) << "]\n";
    for (const ChargeRecord& r : all) {
      if (r.resource != lane) continue;
      os << "    " << std::scientific << std::setprecision(3) << r.start
         << " .. " << r.finish << "  " << to_string(r.atom);
      if (r.bytes > 0) os << "  " << r.bytes << "B";
      os << "\n";
    }
  }
}

void TraceLog::dump(std::ostream& os) const {
  auto sorted = records();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.vtime < b.vtime;
                   });
  for (const auto& r : sorted) {
    os << std::scientific << std::setprecision(3) << r.vtime << "  rank "
       << r.rank;
    if (r.peer >= 0) os << " -> " << r.peer;
    os << "  " << to_string(r.event);
    if (r.bytes > 0) os << "  " << r.bytes << "B";
    if (r.staged_bytes > 0) os << " (staged " << r.staged_bytes << "B)";
    os << "\n";
  }
}

}  // namespace minimpi
