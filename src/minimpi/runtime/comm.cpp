#include "minimpi/runtime/comm.hpp"

#include <cmath>
#include <cstring>
#include <type_traits>

#include "minimpi/base/coop.hpp"
#include "minimpi/runtime/plan_record.hpp"

namespace minimpi {

using detail::Envelope;

namespace {

/// The active plan recorder, or nullptr when rank `r` is not inside a
/// recorded rep (setup / verification / teardown traffic is not part of
/// a compiled program).
plan::Recorder* plan_rec(detail::World& w, Rank r) {
  plan::Recorder* rec = w.options.plan_recorder;
  return (rec != nullptr && rec->recording(r)) ? rec : nullptr;
}

plan::Action plan_send_action(plan::SendArm arm, Rank peer, Tag tag,
                              const Envelope& env, std::uint32_t event) {
  plan::Action a;
  a.op = plan::Op::send;
  a.arm = arm;
  a.peer = peer;
  a.tag = tag;
  a.bytes = env.bytes;
  a.stats = env.send_stats;
  a.event = event;
  return a;
}

}  // namespace

// ---------------------------------------------------------------------------
// ChargeCapture
// ---------------------------------------------------------------------------

/// Captures the scheduler's atom placements for the trace: hand
/// `sink()` to a `CostModel` scheduling call; the placements land in
/// the trace log on destruction.  With no trace attached, construction
/// is one flag test and `sink()` is null — the hot path does no work
/// at all.  When tracing, the placement buffer is *borrowed* from the
/// owning rank's scratch stack (capacity retained across ops), so even
/// traced runs stop allocating once the stack is warm.  A stack rather
/// than a single buffer because `finish_recv` holds two captures at
/// once (sender and receiver timelines).
struct Comm::ChargeCapture {
  ChargeCapture(Comm& c, Rank timeline_rank)
      : comm_(c), rank_(timeline_rank) {
    if (c.world_->tracing()) {
      if (c.trace_depth_ == c.trace_scratch_.size())
        c.trace_scratch_.emplace_back();
      buf_ = &c.trace_scratch_[c.trace_depth_++];
      buf_->clear();
    }
  }
  ChargeCapture(const ChargeCapture&) = delete;
  ChargeCapture& operator=(const ChargeCapture&) = delete;
  ~ChargeCapture() {
    if (buf_ != nullptr) {
      if (!buf_->empty()) comm_.world_->trace_charges(rank_, *buf_);
      --comm_.trace_depth_;
    }
  }

  [[nodiscard]] std::vector<PlacedCharge>* sink() const noexcept {
    return buf_;
  }

 private:
  Comm& comm_;
  Rank rank_;
  std::vector<PlacedCharge>* buf_ = nullptr;
};

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

struct Request::State : Poolable<Request::State> {
  enum class Kind { send_eager, send_rdv, recv };
  Kind kind = Kind::send_eager;
  Comm* comm = nullptr;
  bool done = false;
  Status status;

  // sends
  double completion = 0.0;   // eager: known at post time
  detail::EnvRef env;        // rendezvous: receiver posts the ack

  // receives
  void* buf = nullptr;
  std::size_t count = 0;
  Datatype type;
  Rank src = any_source;
  Tag tag = any_tag;
  double post_clock = 0.0;

  // compiled-plan capture: the send event this request refers to
  bool plan_tracked = false;
  std::uint32_t plan_event = 0;

  /// Restore every field to its default-constructed value on the way
  /// back into the pool (pool contract, base/pool.hpp).
  void reset() {
    kind = Kind::send_eager;
    comm = nullptr;
    done = false;
    status = Status{};
    completion = 0.0;
    env.reset();
    buf = nullptr;
    count = 0;
    type = Datatype{};
    src = any_source;
    tag = any_tag;
    post_clock = 0.0;
    plan_tracked = false;
    plan_event = 0;
  }
};

// Out of line (cf. comm.hpp): State is complete only here.
Request::Request() noexcept = default;
Request::Request(const Request&) noexcept = default;
Request::Request(Request&&) noexcept = default;
Request& Request::operator=(const Request&) noexcept = default;
Request& Request::operator=(Request&&) noexcept = default;
Request::~Request() = default;
Request::Request(PoolRef<State> s) noexcept : state_(std::move(s)) {}

Status Request::wait() {
  require(state_ != nullptr, ErrorClass::invalid_arg,
          "wait on empty request");
  auto& s = *state_;
  if (s.done) return s.status;
  Comm& c = *s.comm;
  if (s.kind != State::Kind::recv) {
    if (auto* rec = plan_rec(*c.world_, c.rank_)) {
      if (s.plan_tracked) {
        plan::Action a;
        a.op = plan::Op::wait_send;
        a.event = s.plan_event;
        rec->record(c.rank_, std::move(a));
      } else {
        // A send posted outside the rep completing inside it: its
        // timing is not part of the program.
        rec->mark_uncompilable("wait on a send posted outside the rep");
      }
    }
  }
  switch (s.kind) {
    case State::Kind::send_eager:
      c.clock_ = std::max(c.clock_, s.completion);
      break;
    case State::Kind::send_rdv:
      s.env->ack_wq.wait([&] { return s.env->ack_ready; });
      c.clock_ = std::max(c.clock_, s.env->ack_value);
      break;
    case State::Kind::recv: {
      auto env = c.world_->mailbox(c.rank_).match(s.src, s.tag);
      s.status = c.finish_recv(s.buf, s.count, s.type, *env, s.post_clock);
      break;
    }
  }
  s.done = true;
  return s.status;
}

bool Request::test(Status* status) {
  require(state_ != nullptr, ErrorClass::invalid_arg,
          "test on empty request");
  auto& s = *state_;
  if (!s.done) {
    Comm& c = *s.comm;
    if (auto* rec = plan_rec(*c.world_, c.rank_)) {
      // Whether a test succeeds depends on host scheduling, so its
      // clock effect cannot be part of a deterministic program.
      rec->mark_uncompilable("MPI_Test during a recorded rep");
    }
    switch (s.kind) {
      case State::Kind::send_eager:
        c.clock_ = std::max(c.clock_, s.completion);
        break;
      case State::Kind::send_rdv:
        if (!s.env->ack_ready) {
          // Cooperative poll loops (`while (!r.test()) {}`) must let the
          // peer fiber run, or the carrier spins forever.
          coop::yield_now();
          return false;
        }
        c.clock_ = std::max(c.clock_, s.env->ack_value);
        break;
      case State::Kind::recv: {
        auto env = c.world_->mailbox(c.rank_).try_match(s.src, s.tag);
        if (!env) {
          coop::yield_now();
          return false;
        }
        s.status = c.finish_recv(s.buf, s.count, s.type, *env, s.post_clock);
        break;
      }
    }
    s.done = true;
  }
  if (status) *status = s.status;
  return true;
}

// ---------------------------------------------------------------------------
// Comm: lifetime
// ---------------------------------------------------------------------------

Comm::Comm(detail::World& world, Rank rank)
    : world_(&world), rank_(rank), bsend_pool_(world.bsend_pool(rank)) {}

Comm::~Comm() {
  // Fold this rank's request-pool statistics into the run-wide
  // counters before the pool disappears with the fiber.
  PerfCounters& c = world_->counters();
  c.requests += req_pool_.acquires();
  c.request_allocs += req_pool_.misses();
}

// ---------------------------------------------------------------------------
// Comm: time
// ---------------------------------------------------------------------------

double Comm::wtime() const noexcept {
  const double res = world_->options.wtime_resolution;
  if (res <= 0.0) return clock_;
  return std::floor(clock_ / res) * res;
}

void Comm::charge(double seconds) {
  require(seconds >= 0.0, ErrorClass::invalid_arg, "negative charge");
  if (auto* rec = plan_rec(*world_, rank_)) {
    plan::Action a;
    a.seconds = seconds;
    rec->record(rank_, std::move(a));
  }
  clock_ += seconds;
}

void Comm::charge_copy(std::size_t bytes, const BlockStats& stats,
                       double warm_fraction) {
  const double d = world_->model.user_copy_time(bytes, stats, warm_fraction);
  if (world_->tracing()) {
    const PlacedCharge p{ChargeAtom::cpu_pack, Resource::cpu, clock_,
                         clock_ + d, bytes};
    world_->trace_charges(rank_, {&p, 1});
  }
  if (auto* rec = plan_rec(*world_, rank_)) {
    // The amount is clock-independent, so it freezes to a scalar.
    plan::Action a;
    a.seconds = d;
    a.bytes = bytes;
    rec->record(rank_, std::move(a));
  }
  clock_ += d;
}

// ---------------------------------------------------------------------------
// Comm: two-sided
// ---------------------------------------------------------------------------

void Comm::validate_p2p(std::size_t count, const Datatype& t, Rank peer,
                        Tag tag, bool is_recv) const {
  require(t.valid() && t.committed(), ErrorClass::invalid_type,
          "datatype not committed");
  (void)count;
  if (is_recv) {
    require(peer == any_source || (peer >= 0 && peer < size()),
            ErrorClass::invalid_rank, "receive source out of range");
    require(tag == any_tag || (tag >= 0 && tag <= tag_ub),
            ErrorClass::invalid_tag, "receive tag out of range");
  } else {
    require(peer >= 0 && peer < size(), ErrorClass::invalid_rank,
            "send destination out of range");
    require(tag >= 0 && tag <= tag_ub, ErrorClass::invalid_tag,
            "send tag out of range");
  }
}

detail::EnvRef Comm::make_envelope(const void* buf, std::size_t count,
                                   const Datatype& t, Rank dst, Tag tag) {
  auto env = world_->acquire_envelope();
  env->src = rank_;
  env->dst = dst;
  env->tag = tag;
  env->bytes = count * t.size();
  env->signature.append(t.signature(), count);
  env->send_stats = message_stats(t, count);
  if (buf != nullptr && world_->move_payload(env->bytes)) {
    env->payload.resize(env->bytes);
    minimpi::gather(buf, count, t, env->payload.data());
    env->has_payload = true;
  }
  return env;
}

void Comm::send(const void* buf, std::size_t count, const Datatype& t,
                Rank dst, Tag tag) {
  validate_p2p(count, t, dst, tag, false);
  auto env = make_envelope(buf, count, t, dst, tag);
  const bool noncontig = env->send_stats.block_count > 1;
  if (auto* rec = plan_rec(*world_, rank_)) {
    const auto arm = world_->model.is_eager(env->bytes)
                         ? plan::SendArm::eager_blocking
                         : plan::SendArm::rdv_blocking;
    rec->record(rank_, plan_send_action(arm, dst, tag, *env,
                                        rec->next_send_event(rank_)));
  }
  if (world_->model.is_eager(env->bytes)) {
    ChargeCapture cc{*this, rank_};
    const auto timing =
        world_->model.eager_timing(clock_, env->bytes, env->send_stats,
                                   world_->nic_gate(rank_), cc.sink());
    env->eager = true;
    env->sender_done = timing.sender_done;
    env->arrival = timing.arrival;
    world_->trace_event(clock_, rank_, dst, TraceEvent::send_eager,
                        env->bytes, env->bytes);  // eager always stages
    world_->mailbox(dst).push(env);
    clock_ = timing.sender_done;
  } else {
    env->eager = false;
    env->needs_rdv_ack = true;
    env->sender_ready = clock_ + profile().send_overhead_s;
    // The FIFO slot on this rank's NIC is taken now (program order);
    // the receiver that computes the rendezvous timing resolves it.
    env->nic_gate = world_->nic_gate(rank_, /*rendezvous=*/true);
    world_->trace_event(clock_, rank_, dst, TraceEvent::send_rendezvous,
                        env->bytes, noncontig ? env->bytes : 0);
    world_->mailbox(dst).push(env);
    // Parked until the receiver matches (rendezvous) and posts the ack.
    env->ack_wq.wait([&] { return env->ack_ready; });
    clock_ = env->ack_value;
  }
}

void Comm::ssend(const void* buf, std::size_t count, const Datatype& t,
                 Rank dst, Tag tag) {
  // Synchronous mode: always handshake, regardless of size.
  validate_p2p(count, t, dst, tag, false);
  auto env = make_envelope(buf, count, t, dst, tag);
  if (auto* rec = plan_rec(*world_, rank_)) {
    rec->record(rank_,
                plan_send_action(plan::SendArm::rdv_blocking, dst, tag, *env,
                                 rec->next_send_event(rank_)));
  }
  env->eager = false;
  env->needs_rdv_ack = true;
  env->sender_ready = clock_ + profile().send_overhead_s;
  env->nic_gate = world_->nic_gate(rank_, /*rendezvous=*/true);
  world_->mailbox(dst).push(env);
  env->ack_wq.wait([&] { return env->ack_ready; });
  clock_ = env->ack_value;
}

void Comm::rsend(const void* buf, std::size_t count, const Datatype& t,
                 Rank dst, Tag tag) {
  // Ready mode: the caller promises a matching receive is already
  // posted (MPI leaves violations undefined; we deliver anyway but the
  // timing assumes no handshake).
  validate_p2p(count, t, dst, tag, false);
  auto env = make_envelope(buf, count, t, dst, tag);
  if (auto* rec = plan_rec(*world_, rank_)) {
    rec->record(rank_, plan_send_action(plan::SendArm::ready, dst, tag, *env,
                                        rec->next_send_event(rank_)));
  }
  ChargeCapture cc{*this, rank_};
  const auto timing =
      world_->model.rsend_timing(clock_, env->bytes, env->send_stats,
                                 world_->nic_gate(rank_), cc.sink());
  env->eager = true;  // no rendezvous ack needed
  env->sender_done = timing.sender_done;
  env->arrival = timing.arrival;
  const bool noncontig = env->send_stats.block_count > 1;
  world_->trace_event(clock_, rank_, dst, TraceEvent::send_ready, env->bytes,
                      noncontig ? env->bytes : 0);
  world_->mailbox(dst).push(std::move(env));
  clock_ = timing.sender_done;
}

void Comm::bsend(const void* buf, std::size_t count, const Datatype& t,
                 Rank dst, Tag tag) {
  validate_p2p(count, t, dst, tag, false);
  auto env = make_envelope(buf, count, t, dst, tag);
  require(bsend_pool_->reserve(env->bytes), ErrorClass::buffer,
          "bsend: attached buffer absent or exhausted");
  env->bsend_pool = bsend_pool_;
  env->bsend_reserved = env->bytes;
  if (auto* rec = plan_rec(*world_, rank_)) {
    // Pool accounting is timing-neutral (reserve here, release in the
    // receiver's completion), so the replayed arm skips it; capture
    // validated that the pool never ran dry.
    rec->record(rank_,
                plan_send_action(plan::SendArm::buffered, dst, tag, *env,
                                 rec->next_send_event(rank_)));
  }
  ChargeCapture cc{*this, rank_};
  const auto timing =
      world_->model.bsend_timing(clock_, env->bytes, env->send_stats,
                                 world_->nic_gate(rank_), cc.sink());
  env->eager = true;  // buffered sends never block on the receiver
  env->sender_done = timing.sender_done;
  env->arrival = timing.arrival;
  world_->trace_event(clock_, rank_, dst, TraceEvent::send_buffered,
                      env->bytes, env->bytes);
  world_->mailbox(dst).push(std::move(env));
  clock_ = timing.sender_done;
}

Status Comm::finish_recv(void* buf, std::size_t count, const Datatype& t,
                         Envelope& env, double post_clock) {
  const std::size_t capacity = count * t.size();
  require(env.bytes <= capacity, ErrorClass::truncate,
          "message longer than receive buffer");
  TypeSignature recv_sig;
  recv_sig.append(t.signature(), count);
  require(recv_sig.accepts(env.signature), ErrorClass::type_mismatch,
          "send/recv type signatures incompatible: send " +
              env.signature.to_string() + " vs recv " + recv_sig.to_string());

  if (auto* rec = plan_rec(*world_, rank_)) {
    // One action at the *match* position: the receiver's clock is
    // monotonic and the post happened earlier on this same rank, so
    // recv_ready == clock_ here — no separate post action is needed.
    plan::Action a;
    a.op = plan::Op::recv;
    a.peer = env.src;
    a.tag = env.tag;
    a.bytes = env.bytes;
    a.stats = message_stats(t, count);
    rec->record(rank_, std::move(a));
  }

  double arrival;
  bool eager;
  const double recv_ready = std::max(clock_, post_clock);
  if (env.needs_rdv_ack) {
    // The transfer's atoms (pack, wire) occupy the *sender's*
    // resources; under emergent contention the wire atom resolves the
    // sender's FIFO NIC slot carried in the envelope.
    ChargeCapture sc{*this, env.src};
    const auto timing = world_->model.rendezvous_timing(
        env.sender_ready, recv_ready, env.bytes, env.send_stats,
        env.nic_gate, sc.sink());
    env.ack_value = timing.sender_done;
    env.ack_ready = true;
    env.ack_wq.notify_all();
    arrival = timing.arrival;
    eager = false;
  } else {
    arrival = env.arrival;
    eager = env.eager;
  }
  ChargeCapture rc{*this, rank_};
  clock_ = world_->model.recv_completion(recv_ready, arrival, env.bytes,
                                         message_stats(t, count), eager,
                                         rc.sink());

  if (env.has_payload && buf != nullptr) {
    require(t.size() == 0 || env.bytes % t.size() == 0,
            ErrorClass::not_supported,
            "partial-element receives not supported");
    const std::size_t nelem = t.size() ? env.bytes / t.size() : 0;
    std::size_t pos = 0;
    unpack(env.payload.data(), env.bytes, pos, buf, nelem, t);
  }
  if (env.bsend_pool) env.bsend_pool->release(env.bsend_reserved);
  world_->trace_event(clock_, rank_, env.src, TraceEvent::recv_complete,
                      env.bytes);
  return Status{env.src, env.tag, env.bytes};
}

Status Comm::recv(void* buf, std::size_t count, const Datatype& t, Rank src,
                  Tag tag) {
  validate_p2p(count, t, src, tag, true);
  if (auto* rec = plan_rec(*world_, rank_)) {
    if (src == any_source || tag == any_tag)
      rec->mark_uncompilable("wildcard receive during a recorded rep");
  }
  auto env = world_->mailbox(rank_).match(src, tag);
  return finish_recv(buf, count, t, *env, clock_);
}

Request Comm::isend(const void* buf, std::size_t count, const Datatype& t,
                    Rank dst, Tag tag) {
  validate_p2p(count, t, dst, tag, false);
  auto env = make_envelope(buf, count, t, dst, tag);
  auto state = req_pool_.acquire();
  state->comm = this;
  if (auto* rec = plan_rec(*world_, rank_)) {
    const auto arm = world_->model.is_eager(env->bytes)
                         ? plan::SendArm::eager_posted
                         : plan::SendArm::rdv_posted;
    state->plan_tracked = true;
    state->plan_event = rec->next_send_event(rank_);
    rec->record(rank_,
                plan_send_action(arm, dst, tag, *env, state->plan_event));
  }
  if (world_->model.is_eager(env->bytes)) {
    ChargeCapture cc{*this, rank_};
    const auto timing =
        world_->model.eager_timing(clock_, env->bytes, env->send_stats,
                                   world_->nic_gate(rank_), cc.sink());
    env->eager = true;
    env->sender_done = timing.sender_done;
    env->arrival = timing.arrival;
    state->kind = Request::State::Kind::send_eager;
    state->completion = timing.sender_done;
    // The isend call itself only costs the initiation overhead.
    clock_ += profile().send_overhead_s;
    world_->mailbox(dst).push(std::move(env));
  } else {
    env->eager = false;
    env->needs_rdv_ack = true;
    env->sender_ready = clock_ + profile().send_overhead_s;
    env->nic_gate = world_->nic_gate(rank_, /*rendezvous=*/true);
    state->kind = Request::State::Kind::send_rdv;
    state->env = env;
    clock_ += profile().send_overhead_s;
    world_->mailbox(dst).push(std::move(env));
  }
  return Request{std::move(state)};
}

Request Comm::issend(const void* buf, std::size_t count, const Datatype& t,
                     Rank dst, Tag tag) {
  // The isend rendezvous arm, taken unconditionally: synchronous mode
  // handshakes regardless of message size (cf. ssend).
  validate_p2p(count, t, dst, tag, false);
  auto env = make_envelope(buf, count, t, dst, tag);
  auto state = req_pool_.acquire();
  state->comm = this;
  if (auto* rec = plan_rec(*world_, rank_)) {
    state->plan_tracked = true;
    state->plan_event = rec->next_send_event(rank_);
    rec->record(rank_,
                plan_send_action(plan::SendArm::rdv_posted, dst, tag, *env,
                                 state->plan_event));
  }
  env->eager = false;
  env->needs_rdv_ack = true;
  env->sender_ready = clock_ + profile().send_overhead_s;
  env->nic_gate = world_->nic_gate(rank_, /*rendezvous=*/true);
  state->kind = Request::State::Kind::send_rdv;
  state->env = env;
  clock_ += profile().send_overhead_s;
  world_->mailbox(dst).push(std::move(env));
  return Request{std::move(state)};
}

Request Comm::irecv(void* buf, std::size_t count, const Datatype& t, Rank src,
                    Tag tag) {
  validate_p2p(count, t, src, tag, true);
  if (auto* rec = plan_rec(*world_, rank_)) {
    if (src == any_source || tag == any_tag)
      rec->mark_uncompilable("wildcard receive during a recorded rep");
  }
  auto state = req_pool_.acquire();
  state->comm = this;
  state->kind = Request::State::Kind::recv;
  state->buf = buf;
  state->count = count;
  state->type = t;
  state->src = src;
  state->tag = tag;
  state->post_clock = clock_;
  return Request{std::move(state)};
}

Status Comm::sendrecv(const void* sendbuf, std::size_t sendcount,
                      const Datatype& sendtype, Rank dst, Tag sendtag,
                      void* recvbuf, std::size_t recvcount,
                      const Datatype& recvtype, Rank src, Tag recvtag) {
  // Nonblocking send + blocking receive: deadlock-free like MPI_Sendrecv.
  Request sreq = isend(sendbuf, sendcount, sendtype, dst, sendtag);
  Status st = recv(recvbuf, recvcount, recvtype, src, recvtag);
  sreq.wait();
  return st;
}

Status Comm::probe(Rank src, Tag tag) {
  validate_p2p(0, Datatype::byte(), src, tag, true);
  if (auto* rec = plan_rec(*world_, rank_))
    rec->mark_uncompilable("probe during a recorded rep");
  auto env = world_->mailbox(rank_).peek(src, tag);
  // A rendezvous message is visible once its RTS arrives.
  const double visible = env->needs_rdv_ack
                             ? env->sender_ready + profile().net_latency_s
                             : env->arrival;
  clock_ = std::max(clock_, visible);
  return Status{env->src, env->tag, env->bytes};
}

std::optional<Status> Comm::iprobe(Rank src, Tag tag) {
  validate_p2p(0, Datatype::byte(), src, tag, true);
  if (auto* rec = plan_rec(*world_, rank_))
    rec->mark_uncompilable("iprobe during a recorded rep");
  auto env = world_->mailbox(rank_).try_peek(src, tag);
  if (!env) {
    coop::yield_now();  // iprobe loops must let the sender fiber run
    return std::nullopt;
  }
  const double visible = env->needs_rdv_ack
                             ? env->sender_ready + profile().net_latency_s
                             : env->arrival;
  clock_ = std::max(clock_, visible);
  return Status{env->src, env->tag, env->bytes};
}

// ---------------------------------------------------------------------------
// Persistent requests and request-set helpers
// ---------------------------------------------------------------------------

PersistentRequest Comm::send_init(const void* buf, std::size_t count,
                                  const Datatype& t, Rank dst, Tag tag) {
  validate_p2p(count, t, dst, tag, false);
  PersistentRequest::Params p;
  p.is_send = true;
  p.sendbuf = buf;
  p.count = count;
  p.type = t;
  p.peer = dst;
  p.tag = tag;
  p.comm = this;
  return PersistentRequest{std::move(p)};
}

PersistentRequest Comm::recv_init(void* buf, std::size_t count,
                                  const Datatype& t, Rank src, Tag tag) {
  validate_p2p(count, t, src, tag, true);
  PersistentRequest::Params p;
  p.is_send = false;
  p.recvbuf = buf;
  p.count = count;
  p.type = t;
  p.peer = src;
  p.tag = tag;
  p.comm = this;
  return PersistentRequest{std::move(p)};
}

void PersistentRequest::start() {
  require(params_.comm != nullptr, ErrorClass::invalid_arg,
          "start on empty persistent request");
  require(!current_.valid(), ErrorClass::invalid_arg,
          "persistent request already active");
  Comm& c = *params_.comm;
  current_ = params_.is_send
                 ? c.isend(params_.sendbuf, params_.count, params_.type,
                           params_.peer, params_.tag)
                 : c.irecv(params_.recvbuf, params_.count, params_.type,
                           params_.peer, params_.tag);
}

Status PersistentRequest::wait() {
  require(current_.valid(), ErrorClass::invalid_arg,
          "wait on inactive persistent request (call start first)");
  const Status st = current_.wait();
  current_ = Request{};
  return st;
}

void waitall(std::span<Request> requests) {
  for (Request& r : requests) r.wait();
}

std::size_t waitany(std::span<Request> requests, Status* status) {
  require(!requests.empty(), ErrorClass::invalid_arg,
          "waitany on empty request set");
  for (;;) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].test(status)) return i;
    }
    coop::yield_now();
  }
}

bool testall(std::span<Request> requests) {
  bool all = true;
  for (Request& r : requests) all &= r.test();
  return all;
}

// ---------------------------------------------------------------------------
// Comm: buffered-send management
// ---------------------------------------------------------------------------

void Comm::buffer_attach(Buffer& buf) {
  require(!bsend_pool_->attached(), ErrorClass::buffer,
          "buffer already attached");
  if (auto* rec = plan_rec(*world_, rank_))
    rec->mark_uncompilable("buffer_attach during a recorded rep");
  bsend_pool_->attach(buf.size());
}

void Comm::buffer_detach() {
  require(bsend_pool_->attached(), ErrorClass::buffer, "no buffer attached");
  if (auto* rec = plan_rec(*world_, rank_))
    rec->mark_uncompilable("buffer_detach during a recorded rep");
  bsend_pool_->detach();
}

// ---------------------------------------------------------------------------
// Comm: collectives
// ---------------------------------------------------------------------------

double Comm::collective_cost(std::size_t bytes) const {
  const auto& p = profile();
  const double rounds = std::ceil(std::log2(std::max(2, size())));
  return rounds * (p.send_overhead_s + p.net_latency_s +
                   world_->model.wire_time(bytes));
}

void Comm::barrier() {
  if (auto* rec = plan_rec(*world_, rank_)) {
    plan::Action a;
    a.op = plan::Op::barrier;
    rec->record(rank_, std::move(a));
  }
  clock_ = world_->barrier().arrive(clock_) + collective_cost(0);
  world_->trace_event(clock_, rank_, -1, TraceEvent::collective, 0);
}

void Comm::bcast(void* buf, std::size_t count, const Datatype& t, Rank root) {
  require(t.valid() && t.committed(), ErrorClass::invalid_type,
          "bcast: datatype not committed");
  if (auto* rec = plan_rec(*world_, rank_))
    rec->mark_uncompilable("payload collective during a recorded rep");
  require(root >= 0 && root < size(), ErrorClass::invalid_rank,
          "bcast: root out of range");
  const std::size_t bytes = count * t.size();
  auto& slot = world_->collective();
  const double fused = slot.deposit(rank_, buf, clock_);
  if (rank_ != root && buf != nullptr && world_->move_payload(bytes)) {
    const void* src = slot.contribution(root);
    if (src != nullptr) typed_copy(buf, src, count, t);
  }
  clock_ = fused + collective_cost(bytes);
  world_->trace_event(clock_, rank_, root, TraceEvent::collective, bytes);
  slot.release();
}

namespace {
template <class T>
T apply_op(ReduceOp op, T a, T b) {
  switch (op) {
    case ReduceOp::sum:
      // Integer sums wrap by contract (digest fusion feeds full-range
      // int64 terms through this); do the add on the unsigned type so
      // the wraparound is defined, with the same two's-complement bits.
      if constexpr (std::is_integral_v<T>) {
        using U = std::make_unsigned_t<T>;
        return static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
      } else {
        return a + b;
      }
    case ReduceOp::min: return std::min(a, b);
    case ReduceOp::max: return std::max(a, b);
  }
  return a;
}

}  // namespace

double Comm::reduce(double value, ReduceOp op, Rank root) {
  if (auto* rec = plan_rec(*world_, rank_))
    rec->mark_uncompilable("payload collective during a recorded rep");
  auto& slot = world_->collective();
  const double fused = slot.deposit(rank_, &value, clock_);
  double result = 0.0;
  if (rank_ == root) {
    result = *static_cast<const double*>(slot.contribution(0));
    for (Rank r = 1; r < size(); ++r)
      result = apply_op(op, result,
                        *static_cast<const double*>(slot.contribution(r)));
  }
  clock_ = fused + collective_cost(sizeof(double));
  slot.release();
  return result;
}

template <class T>
T Comm::allreduce_impl(T value, ReduceOp op) {
  static_assert(sizeof(T) == sizeof(double),
                "allreduce charges one 8-byte scalar");
  if (auto* rec = plan_rec(*world_, rank_))
    rec->mark_uncompilable("payload collective during a recorded rep");
  auto& slot = world_->collective();
  const double fused = slot.deposit(rank_, &value, clock_);
  // First rank past the barrier folds for everyone (same 0..N-1 order
  // every rank used to apply itself, so the cached bits are identical);
  // the rest copy.  Cuts the collective from O(N²) total to O(N).
  T result;
  if (slot.fold_cached()) {
    std::memcpy(&result, slot.fold(), sizeof(T));
  } else {
    result = *static_cast<const T*>(slot.contribution(0));
    for (Rank r = 1; r < size(); ++r)
      result = apply_op(op, result,
                        *static_cast<const T*>(slot.contribution(r)));
    slot.store_fold(&result, sizeof(T));
  }
  // Reduce + broadcast: twice the tree cost.
  clock_ = fused + 2.0 * collective_cost(sizeof(T));
  slot.release();
  return result;
}

double Comm::allreduce(double value, ReduceOp op) {
  return allreduce_impl(value, op);
}

// Exact for integer digest terms: the deposited bits are folded as
// int64, so fused totals above 2^53 do not round the way the former
// convert-to-double detour did.
std::int64_t Comm::allreduce(std::int64_t value, ReduceOp op) {
  return allreduce_impl(value, op);
}

std::vector<double> Comm::gather(double value, Rank root) {
  if (auto* rec = plan_rec(*world_, rank_))
    rec->mark_uncompilable("payload collective during a recorded rep");
  auto& slot = world_->collective();
  const double fused = slot.deposit(rank_, &value, clock_);
  std::vector<double> out;
  if (rank_ == root) {
    out.reserve(static_cast<std::size_t>(size()));
    for (Rank r = 0; r < size(); ++r)
      out.push_back(*static_cast<const double*>(slot.contribution(r)));
  }
  clock_ = fused + collective_cost(sizeof(double) *
                                   static_cast<std::size_t>(size()));
  slot.release();
  return out;
}

// ---------------------------------------------------------------------------
// Comm / Window: one-sided
// ---------------------------------------------------------------------------

Window Comm::win_create(void* base, std::size_t size_bytes) {
  if (auto* rec = plan_rec(*world_, rank_))
    rec->mark_uncompilable("win_create during a recorded rep");
  auto& slot = world_->collective();
  std::shared_ptr<detail::WindowState> ws;
  if (rank_ == 0) ws = world_->create_window();
  const double fused = slot.deposit(rank_, rank_ == 0 ? &ws : nullptr, clock_);
  if (rank_ != 0) {
    ws = *static_cast<const std::shared_ptr<detail::WindowState>*>(
        slot.contribution(0));
  }
  ws->bases[static_cast<std::size_t>(rank_)] = static_cast<std::byte*>(base);
  ws->sizes[static_cast<std::size_t>(rank_)] = size_bytes;
  clock_ = fused + collective_cost(0);
  slot.release();
  return Window{this, std::move(ws)};
}

void Window::check_epoch(Rank target) const {
  if (fence_count_ >= 1) return;
  if (in_pscw_access_) {
    for (const Rank t : pscw_targets_)
      if (t == target) return;
    throw Error(ErrorClass::rma_sync,
                "RMA target not in the start() access group");
  }
  if (locked_target_ >= 0) {
    require(locked_target_ == target, ErrorClass::rma_sync,
            "RMA target differs from the locked rank");
    return;
  }
  throw Error(ErrorClass::rma_sync,
              "RMA operation outside an access epoch (fence, start, or "
              "lock first)");
}

void Window::record_op_arrival(double arrival) {
  // Shared: fences fold every pending arrival.  Local: the epoch-closing
  // call (complete / unlock) flushes this rank's own operations.
  state_->pending_max = std::max(state_->pending_max, arrival);
  access_pending_ = std::max(access_pending_, arrival);
}

void Window::fence() {
  if (auto* rec = plan_rec(*comm_->world_, comm_->rank())) {
    plan::Action a;
    a.op = plan::Op::fence;
    a.win = rec->window_id(state_.get(), state_->sizes);
    rec->record(comm_->rank(), std::move(a));
  }
  double pending;
  {
    std::lock_guard lk(state_->m);
    pending = state_->pending_max;
  }
  const double fused =
      state_->barrier.arrive(std::max(comm_->clock_, pending));
  if (comm_->rank() == 0) {
    std::lock_guard lk(state_->m);
    state_->pending_max = 0.0;
  }
  state_->barrier.arrive(0.0);  // make the reset visible before new ops
  {
    // The fence charge is a typed join atom on this rank's timeline.
    Comm::ChargeCapture cc{*comm_, comm_->rank()};
    const Charge f{ChargeAtom::fence, comm_->model().fence_time(), 0};
    comm_->clock_ =
        schedule_sequence(fused, {&f, 1}, comm_->model().capabilities(), {},
                          cc.sink())
            .finish;
  }
  ++fence_count_;
  access_pending_ = 0.0;
  comm_->world_->trace_event(comm_->clock_, comm_->rank(), -1,
                             TraceEvent::win_fence, 0);
}

void Window::post(std::span<const Rank> origins) {
  const auto me = static_cast<std::size_t>(comm_->rank());
  if (auto* rec = plan_rec(*comm_->world_, comm_->rank())) {
    plan::Action a;
    a.op = plan::Op::pscw_post;
    a.win = rec->window_id(state_.get(), state_->sizes);
    rec->record(comm_->rank(), std::move(a));
  }
  comm_->clock_ += comm_->profile().send_overhead_s;
  {
    std::lock_guard lk(state_->m);
    ++state_->post_seq[me];
    state_->post_time[me] = comm_->clock_;
    state_->post_origins[me].assign(origins.begin(), origins.end());
    state_->complete_count[me] = 0;
    state_->complete_max[me] = 0.0;
  }
  state_->cv.notify_all();
  comm_->world_->trace_event(comm_->clock_, comm_->rank(), -1,
                             TraceEvent::pscw_post, 0);
}

void Window::start(std::span<const Rank> targets) {
  require(!in_pscw_access_, ErrorClass::rma_sync,
          "start: access epoch already open");
  if (auto* rec = plan_rec(*comm_->world_, comm_->rank())) {
    plan::Action a;
    a.op = plan::Op::pscw_start;
    a.win = rec->window_id(state_.get(), state_->sizes);
    a.group.assign(targets.begin(), targets.end());
    rec->record(comm_->rank(), std::move(a));
  }
  if (consumed_post_seq_.empty())
    consumed_post_seq_.assign(static_cast<std::size_t>(comm_->size()), 0);
  const double latency = comm_->profile().net_latency_s;
  std::unique_lock lk(state_->m);
  for (const Rank t : targets) {
    require(t >= 0 && t < comm_->size(), ErrorClass::invalid_rank,
            "start: target out of range");
    const auto ti = static_cast<std::size_t>(t);
    state_->cv.wait(lk, [&] {
      return state_->post_seq[ti] > consumed_post_seq_[ti];
    });
    consumed_post_seq_[ti] = state_->post_seq[ti];
    // The post notification has to reach the origin.
    comm_->clock_ =
        std::max(comm_->clock_, state_->post_time[ti] + latency);
  }
  lk.unlock();
  in_pscw_access_ = true;
  pscw_targets_.assign(targets.begin(), targets.end());
  access_pending_ = 0.0;
  comm_->world_->trace_event(comm_->clock_, comm_->rank(), -1,
                             TraceEvent::pscw_start, 0);
}

void Window::complete() {
  require(in_pscw_access_, ErrorClass::rma_sync,
          "complete: no access epoch open");
  if (auto* rec = plan_rec(*comm_->world_, comm_->rank())) {
    plan::Action a;
    a.op = plan::Op::pscw_complete;
    a.win = rec->window_id(state_.get(), state_->sizes);
    a.group = pscw_targets_;
    rec->record(comm_->rank(), std::move(a));
  }
  comm_->clock_ += comm_->profile().send_overhead_s;
  const double done = std::max(comm_->clock_, access_pending_);
  {
    std::lock_guard lk(state_->m);
    for (const Rank t : pscw_targets_) {
      const auto ti = static_cast<std::size_t>(t);
      ++state_->complete_count[ti];
      state_->complete_max[ti] = std::max(state_->complete_max[ti], done);
    }
  }
  state_->cv.notify_all();
  in_pscw_access_ = false;
  pscw_targets_.clear();
  access_pending_ = 0.0;
  comm_->world_->trace_event(comm_->clock_, comm_->rank(), -1,
                             TraceEvent::pscw_complete, 0);
}

void Window::wait_post() {
  const auto me = static_cast<std::size_t>(comm_->rank());
  std::unique_lock lk(state_->m);
  require(!state_->post_origins[me].empty() || state_->post_seq[me] > 0,
          ErrorClass::rma_sync, "wait_post: no exposure epoch open");
  const auto expected =
      static_cast<int>(state_->post_origins[me].size());
  if (auto* rec = plan_rec(*comm_->world_, comm_->rank())) {
    plan::Action a;
    a.op = plan::Op::pscw_wait;
    a.win = rec->window_id(state_.get(), state_->sizes);
    a.event = static_cast<std::uint32_t>(expected);
    rec->record(comm_->rank(), std::move(a));
  }
  state_->cv.wait(lk, [&] {
    return state_->complete_count[me] >= expected;
  });
  comm_->clock_ = std::max(comm_->clock_, state_->complete_max[me]) +
                  comm_->profile().recv_overhead_s;
  state_->complete_count[me] = 0;
  lk.unlock();
  comm_->world_->trace_event(comm_->clock_, comm_->rank(), -1,
                             TraceEvent::pscw_wait, 0);
}

void Window::lock(Rank target) {
  require(target >= 0 && target < comm_->size(), ErrorClass::invalid_rank,
          "lock: target out of range");
  require(locked_target_ < 0, ErrorClass::rma_sync,
          "lock: a lock is already held");
  if (auto* rec = plan_rec(*comm_->world_, comm_->rank()))
    rec->mark_uncompilable("passive-target lock during a recorded rep");
  const auto ti = static_cast<std::size_t>(target);
  std::unique_lock lk(state_->m);
  state_->cv.wait(lk, [&] { return !state_->lock_held[ti]; });
  state_->lock_held[ti] = true;
  // Lock acquisition is a round trip to the target, serialized behind
  // the previous holder's release.
  comm_->clock_ =
      std::max(comm_->clock_ + 2.0 * comm_->profile().net_latency_s,
               state_->lock_release_time[ti]);
  lk.unlock();
  locked_target_ = target;
  access_pending_ = 0.0;
  comm_->world_->trace_event(comm_->clock_, comm_->rank(), target,
                             TraceEvent::lock_acquire, 0);
}

void Window::unlock(Rank target) {
  require(locked_target_ == target, ErrorClass::rma_sync,
          "unlock: this rank does not hold that lock");
  const auto ti = static_cast<std::size_t>(target);
  // Unlock flushes: every operation of the epoch must have landed.
  const double done = std::max(comm_->clock_, access_pending_);
  {
    std::lock_guard lk(state_->m);
    state_->lock_held[ti] = false;
    state_->lock_release_time[ti] = done;
  }
  state_->cv.notify_all();
  comm_->clock_ = done + comm_->profile().net_latency_s;
  locked_target_ = -1;
  access_pending_ = 0.0;
  comm_->world_->trace_event(comm_->clock_, comm_->rank(), target,
                             TraceEvent::lock_release, 0);
}

void Window::put(const void* buf, std::size_t count, const Datatype& t,
                 Rank target, std::size_t target_offset) {
  check_epoch(target);
  require(t.valid() && t.committed(), ErrorClass::invalid_type,
          "put: datatype not committed");
  require(target >= 0 && target < comm_->size(), ErrorClass::invalid_rank,
          "put: target out of range");
  const std::size_t bytes = count * t.size();
  if (auto* rec = plan_rec(*comm_->world_, comm_->rank())) {
    plan::Action a;
    a.op = plan::Op::put;
    a.peer = target;
    a.bytes = bytes;
    a.stats = message_stats(t, count);
    a.win = rec->window_id(state_.get(), state_->sizes);
    a.offset = target_offset;
    rec->record(comm_->rank(), std::move(a));
  }
  Comm::ChargeCapture cc{*comm_, comm_->rank()};
  const auto timing = comm_->model().put_timing(
      comm_->clock_, bytes, message_stats(t, count),
      comm_->world_->nic_gate(comm_->rank()), cc.sink());
  comm_->clock_ = timing.sender_done;
  std::lock_guard lk(state_->m);
  require(target_offset + bytes <= state_->sizes[static_cast<std::size_t>(target)],
          ErrorClass::rma_range, "put: outside target window");
  std::byte* tbase = state_->bases[static_cast<std::size_t>(target)];
  if (tbase != nullptr && buf != nullptr &&
      comm_->moves_payload(bytes)) {
    // Origin layout is packed into the contiguous target region, as in
    // the study (the receive side of every scheme is contiguous).
    minimpi::gather(buf, count, t, tbase + target_offset);
  }
  record_op_arrival(timing.arrival);
  comm_->world_->trace_event(comm_->clock_, comm_->rank(), target,
                             TraceEvent::rma_put, bytes);
}

void Window::get(void* buf, std::size_t count, const Datatype& t, Rank target,
                 std::size_t target_offset) {
  check_epoch(target);
  require(t.valid() && t.committed(), ErrorClass::invalid_type,
          "get: datatype not committed");
  require(target >= 0 && target < comm_->size(), ErrorClass::invalid_rank,
          "get: target out of range");
  const std::size_t bytes = count * t.size();
  if (auto* rec = plan_rec(*comm_->world_, comm_->rank())) {
    plan::Action a;
    a.op = plan::Op::get;
    a.peer = target;
    a.bytes = bytes;
    a.stats = message_stats(t, count);
    a.win = rec->window_id(state_.get(), state_->sizes);
    a.offset = target_offset;
    rec->record(comm_->rank(), std::move(a));
  }
  Comm::ChargeCapture cc{*comm_, comm_->rank()};
  // The response wire serializes on the *target's* NIC, which the
  // per-rank ledgers deliberately do not track: no gate.
  const auto timing = comm_->model().get_timing(
      comm_->clock_, bytes, message_stats(t, count), {}, cc.sink());
  comm_->clock_ = timing.sender_done;
  std::lock_guard lk(state_->m);
  require(target_offset + bytes <= state_->sizes[static_cast<std::size_t>(target)],
          ErrorClass::rma_range, "get: outside target window");
  const std::byte* tbase = state_->bases[static_cast<std::size_t>(target)];
  if (tbase != nullptr && buf != nullptr && comm_->moves_payload(bytes)) {
    minimpi::scatter(tbase + target_offset, buf, count, t);
  }
  record_op_arrival(timing.arrival);
  comm_->world_->trace_event(comm_->clock_, comm_->rank(), target,
                             TraceEvent::rma_get, bytes);
}

void Window::accumulate_sum_f64(const double* buf, std::size_t count,
                                Rank target, std::size_t target_offset) {
  check_epoch(target);
  require(target >= 0 && target < comm_->size(), ErrorClass::invalid_rank,
          "accumulate: target out of range");
  const std::size_t bytes = count * sizeof(double);
  if (auto* rec = plan_rec(*comm_->world_, comm_->rank())) {
    plan::Action a;
    a.op = plan::Op::put;  // accumulate charges exactly like a put
    a.peer = target;
    a.bytes = bytes;
    a.stats = BlockStats{1, bytes, bytes, bytes};
    a.win = rec->window_id(state_.get(), state_->sizes);
    a.offset = target_offset;
    a.event = 1;  // accumulate: exempt from the verifier's overlap check
    rec->record(comm_->rank(), std::move(a));
  }
  Comm::ChargeCapture cc{*comm_, comm_->rank()};
  const auto timing = comm_->model().put_timing(
      comm_->clock_, bytes, BlockStats{1, bytes, bytes, bytes},
      comm_->world_->nic_gate(comm_->rank()), cc.sink());
  comm_->clock_ = timing.sender_done;
  std::lock_guard lk(state_->m);
  require(target_offset + bytes <= state_->sizes[static_cast<std::size_t>(target)],
          ErrorClass::rma_range, "accumulate: outside target window");
  std::byte* tbase = state_->bases[static_cast<std::size_t>(target)];
  if (tbase != nullptr && buf != nullptr && comm_->moves_payload(bytes)) {
    auto* dst = reinterpret_cast<double*>(tbase + target_offset);
    for (std::size_t i = 0; i < count; ++i) dst[i] += buf[i];
  }
  record_op_arrival(timing.arrival);
  comm_->world_->trace_event(comm_->clock_, comm_->rank(), target,
                             TraceEvent::rma_accumulate, bytes);
}

// ---------------------------------------------------------------------------
// Comm: compiled-plan capture marks
// ---------------------------------------------------------------------------

void Comm::plan_begin_rep() {
  plan::Recorder* rec = world_->options.plan_recorder;
  if (rec == nullptr) return;
  rec->begin_rep(rank_,
                 {clock_, world_->nic_ledger(rank_, false).busy_until(),
                  world_->nic_ledger(rank_, true).busy_until()});
}

void Comm::plan_end_rep() {
  plan::Recorder* rec = world_->options.plan_recorder;
  if (rec == nullptr) return;
  rec->end_rep(rank_,
               {clock_, world_->nic_ledger(rank_, false).busy_until(),
                world_->nic_ledger(rank_, true).busy_until()});
}

void Comm::plan_sample_begin() {
  if (auto* rec = plan_rec(*world_, rank_)) {
    plan::Action a;
    a.op = plan::Op::sample_begin;
    a.seconds = wtime();  // captured absolute; replay must reproduce it
    rec->record(rank_, std::move(a));
  }
}

void Comm::plan_sample_end(bool contributes) {
  if (auto* rec = plan_rec(*world_, rank_)) {
    plan::Action a;
    a.op = plan::Op::sample_end;
    a.seconds = wtime();
    a.event = contributes ? 1u : 0u;
    rec->record(rank_, std::move(a));
  }
}

// ---------------------------------------------------------------------------
// Universe
// ---------------------------------------------------------------------------

void Universe::run(const UniverseOptions& opts,
                   const std::function<void(Comm&)>& body) {
  require(opts.nranks >= 1, ErrorClass::invalid_arg,
          "universe needs at least one rank");
  require(opts.nranks <= coop::Scheduler::max_tasks(), ErrorClass::resource,
          "universe of " + std::to_string(opts.nranks) +
              " ranks exceeds the cooperative scheduler's capacity of " +
              std::to_string(coop::Scheduler::max_tasks()) +
              " rank tasks (one fiber stack per rank)");
  detail::World world(opts);
  // Every rank is a cooperative fiber on this (carrier) thread, resumed
  // in spawn order and run to its next blocking point.  Virtual clocks
  // are independent of execution interleaving (DESIGN.md §2.10), so the
  // serial schedule produces exactly what the old thread-per-rank
  // executor did — without kernel threads or condition-variable wakeups.
  coop::Scheduler sched;
  for (Rank r = 0; r < opts.nranks; ++r) {
    sched.spawn([&world, &body, r] {
      Comm comm(world, r);
      body(comm);
    });
  }
  sched.run();
  // Rank bodies (and their Comm destructors) have finished: fold the
  // run's counters into the options sink.  Before the error checks so
  // the observational layer reports even for failed runs.
  world.publish_counters(sched.switches());
  if (auto err = sched.first_error()) std::rethrow_exception(err);
  require(!sched.deadlocked(), ErrorClass::deadlock,
          "all " + std::to_string(sched.blocked_at_deadlock()) +
              " blocked ranks are waiting on each other; no progress is "
              "possible");
}

}  // namespace minimpi
