#pragma once
/// \file comm.hpp
/// \brief The per-rank communication handle (the MPI API surface).
///
/// `Comm` is handed to each rank's body function by `Universe::run` and
/// exposes the MPI subset the study needs, in idiomatic C++:
///
///   * two-sided: send / bsend / ssend / recv, isend / irecv + Request,
///     probe / iprobe, sendrecv — with eager/rendezvous protocol
///     selection and full derived-datatype support;
///   * buffered-send buffer management (buffer_attach / buffer_detach);
///   * one-sided: win_create -> Window, put / get / accumulate inside
///     fence epochs;
///   * collectives: barrier, bcast, reduce, allreduce, gather;
///   * virtual time: wtime() (quantized like MPI_Wtime), clock(),
///     charge() / charge_copy() for user-space work the model must see.
///
/// Every blocking call advances this rank's *virtual clock* according to
/// the cost model; host-thread blocking is only a synchronization
/// vehicle.  See DESIGN.md §2 for why this substitution preserves the
/// paper's observable behaviour.

#include <cstdint>
#include <functional>

#include "minimpi/base/buffer.hpp"
#include "minimpi/datatype/pack.hpp"
#include "minimpi/runtime/world.hpp"

namespace minimpi {

class Comm;

/// \brief Layout statistics of a whole `(count, datatype)` message.
inline BlockStats message_stats(const Datatype& t, std::size_t count) {
  const BlockStats& s = t.block_stats();
  if (count == 0 || t.size() == 0) return {};
  if (count == 1) return s;
  const std::size_t total = count * t.size();
  if (t.is_single_block()) {
    if (t.extent() == t.size()) return {1, total, total, total};
    return {count, total, t.size(), t.size()};
  }
  return {count * s.block_count, total, s.min_block, s.max_block};
}

/// \brief Handle for a nonblocking operation (MPI_Request).
///
/// The backing `State` comes from the owning `Comm`'s object pool and
/// recycles when the last handle drops (request states never leave
/// their rank, so the pool needs no cross-rank story).  Special
/// members are out of line: `State` is incomplete here, and the pool
/// handle needs the complete type to release it.
class Request {
 public:
  Request() noexcept;
  Request(const Request&) noexcept;
  Request(Request&&) noexcept;
  Request& operator=(const Request&) noexcept;
  Request& operator=(Request&&) noexcept;
  ~Request();

  /// \brief Block until the operation completes; advances the owning
  /// rank's clock.  Returns the receive status (empty Status for sends).
  Status wait();
  /// \brief Nonblocking completion check (MPI_Test).
  bool test(Status* status = nullptr);
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class Comm;
  struct State;
  explicit Request(PoolRef<State> s) noexcept;
  PoolRef<State> state_;
};

/// \brief Reusable communication operation (MPI_Send_init / Recv_init).
///
/// Persistent requests let a harness set up the transfer once and
/// restart it each repetition: `start()` activates the operation,
/// `wait()` completes it, and the pair can be repeated indefinitely.
class PersistentRequest {
 public:
  PersistentRequest() = default;

  /// \brief Activate the operation (MPI_Start).
  void start();
  /// \brief Complete the active operation; the request stays reusable.
  Status wait();
  [[nodiscard]] bool active() const noexcept { return current_.valid(); }

 private:
  friend class Comm;
  struct Params {
    bool is_send = true;
    const void* sendbuf = nullptr;
    void* recvbuf = nullptr;
    std::size_t count = 0;
    Datatype type;
    Rank peer = 0;
    Tag tag = 0;
    Comm* comm = nullptr;
  };
  explicit PersistentRequest(Params p) : params_(std::move(p)) {}
  Params params_;
  Request current_;
};

/// \brief Complete every request (MPI_Waitall).
void waitall(std::span<Request> requests);
/// \brief Block until some request completes; returns its index
/// (MPI_Waitany).
std::size_t waitany(std::span<Request> requests, Status* status = nullptr);
/// \brief True if all requests are complete (MPI_Testall); completes
/// those that are ready either way.
bool testall(std::span<Request> requests);

/// \brief One-sided communication window (MPI_Win).
///
/// Created collectively by `Comm::win_create`.  Three synchronization
/// modes, as in MPI:
///  * fence epochs (`fence()`), used by the paper;
///  * generalized active target (`post`/`start`/`complete`/`wait_post`),
///    which avoids the global fence for pairwise transfers;
///  * passive target (`lock`/`unlock`).
/// `put`/`get`/`accumulate` require an open epoch of some kind.
class Window {
 public:
  /// \brief Active-target synchronization (MPI_Win_fence).  Fuses all
  /// ranks' clocks with every pending RMA operation's arrival time and
  /// charges the profile's fence cost.
  void fence();

  // --- generalized active target (PSCW) ------------------------------------
  /// \brief Expose the local window to `origins` (MPI_Win_post).
  void post(std::span<const Rank> origins);
  /// \brief Open an access epoch to `targets` (MPI_Win_start); blocks
  /// until every target has posted.
  void start(std::span<const Rank> targets);
  /// \brief Close the access epoch (MPI_Win_complete).
  void complete();
  /// \brief Close the exposure epoch: blocks until every origin named in
  /// the post has completed (MPI_Win_wait).
  void wait_post();

  // --- passive target -------------------------------------------------------
  /// \brief Acquire an exclusive lock on `target`'s window
  /// (MPI_Win_lock with MPI_LOCK_EXCLUSIVE).
  void lock(Rank target);
  /// \brief Flush pending operations and release the lock
  /// (MPI_Win_unlock).
  void unlock(Rank target);

  /// \brief MPI_Put: write `(buf, count, t)` to `target_offset` bytes
  /// into `target`'s window.  Completes at the next fence.
  void put(const void* buf, std::size_t count, const Datatype& t,
           Rank target, std::size_t target_offset);

  /// \brief MPI_Get: read from the target window into `(buf, count, t)`.
  /// The data is valid after the next fence.
  void get(void* buf, std::size_t count, const Datatype& t, Rank target,
           std::size_t target_offset);

  /// \brief MPI_Accumulate with MPI_SUM over doubles.
  void accumulate_sum_f64(const double* buf, std::size_t count, Rank target,
                          std::size_t target_offset);

  [[nodiscard]] std::size_t size(Rank r) const {
    return state_->sizes[static_cast<std::size_t>(r)];
  }

 private:
  friend class Comm;
  Window(Comm* comm, std::shared_ptr<detail::WindowState> s)
      : comm_(comm), state_(std::move(s)) {}

  void check_epoch(Rank target) const;
  void record_op_arrival(double arrival);

  Comm* comm_ = nullptr;
  std::shared_ptr<detail::WindowState> state_;
  int fence_count_ = 0;
  bool in_pscw_access_ = false;
  std::vector<Rank> pscw_targets_;
  std::vector<int> consumed_post_seq_;  ///< per target, posts already used
  Rank locked_target_ = -1;
  double access_pending_ = 0.0;  ///< latest arrival in the open epoch
};

/// Reduction operators for the scalar collectives.
enum class ReduceOp { sum, min, max };

class Comm {
 public:
  /// Out of line: constructing the per-rank request-state pool (and
  /// destroying it — the destructor also folds this rank's pool
  /// statistics into the world's perf counters) needs the complete
  /// `Request::State`, which lives in comm.cpp.
  Comm(detail::World& world, Rank rank);
  ~Comm();

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  // --- identity & time -----------------------------------------------------
  [[nodiscard]] Rank rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return world_->options.nranks; }
  /// MPI_Wtime: the virtual clock quantized to the configured tick.
  [[nodiscard]] double wtime() const noexcept;
  /// Exact virtual clock (model-facing; tests use this).
  [[nodiscard]] double clock() const noexcept { return clock_; }
  [[nodiscard]] double wtick() const noexcept {
    return world_->options.wtime_resolution;
  }

  /// \brief Charge local (user-space) work to this rank's clock.
  void charge(double seconds);
  /// \brief Charge a user-space gather/scatter loop over a layout.
  void charge_copy(std::size_t bytes, const BlockStats& stats,
                   double warm_fraction = 0.0);

  [[nodiscard]] const MachineProfile& profile() const noexcept {
    return world_->model.profile();
  }
  [[nodiscard]] const CostModel& model() const noexcept {
    return world_->model;
  }
  /// True if payloads of this size physically move (cf. phantom buffers).
  [[nodiscard]] bool moves_payload(std::size_t bytes) const noexcept {
    return world_->move_payload(bytes);
  }

  // --- two-sided point-to-point -------------------------------------------
  void send(const void* buf, std::size_t count, const Datatype& t, Rank dst,
            Tag tag);
  void bsend(const void* buf, std::size_t count, const Datatype& t, Rank dst,
             Tag tag);
  void ssend(const void* buf, std::size_t count, const Datatype& t, Rank dst,
             Tag tag);
  /// Ready mode (MPI_Rsend): the caller guarantees the receive is
  /// already posted, so even large messages skip the handshake.
  void rsend(const void* buf, std::size_t count, const Datatype& t, Rank dst,
             Tag tag);
  Status recv(void* buf, std::size_t count, const Datatype& t, Rank src,
              Tag tag);
  Request isend(const void* buf, std::size_t count, const Datatype& t,
                Rank dst, Tag tag);
  /// Nonblocking synchronous send (MPI_Issend): always handshakes, so
  /// the request completes only once the receiver has matched.
  Request issend(const void* buf, std::size_t count, const Datatype& t,
                 Rank dst, Tag tag);
  Request irecv(void* buf, std::size_t count, const Datatype& t, Rank src,
                Tag tag);
  Status sendrecv(const void* sendbuf, std::size_t sendcount,
                  const Datatype& sendtype, Rank dst, Tag sendtag,
                  void* recvbuf, std::size_t recvcount,
                  const Datatype& recvtype, Rank src, Tag recvtag);
  Status probe(Rank src, Tag tag);
  std::optional<Status> iprobe(Rank src, Tag tag);

  /// Persistent operations (MPI_Send_init / MPI_Recv_init).
  PersistentRequest send_init(const void* buf, std::size_t count,
                              const Datatype& t, Rank dst, Tag tag);
  PersistentRequest recv_init(void* buf, std::size_t count, const Datatype& t,
                              Rank src, Tag tag);

  /// Typed conveniences for contiguous arrays.
  template <class T>
  void send(std::span<const T> data, Rank dst, Tag tag) {
    send(data.data(), data.size(), Datatype::basic(basic_type_of<T>()), dst,
         tag);
  }
  template <class T>
  Status recv(std::span<T> data, Rank src, Tag tag) {
    return recv(data.data(), data.size(),
                Datatype::basic(basic_type_of<T>()), src, tag);
  }

  // --- buffered-send management --------------------------------------------
  /// MPI_Buffer_attach: hand MPI a user buffer for Bsend staging.
  void buffer_attach(Buffer& buf);
  /// MPI_Buffer_detach: blocks until all buffered sends drain.
  void buffer_detach();
  [[nodiscard]] std::size_t bsend_high_water() const {
    return bsend_pool_->high_water();
  }

  // --- collectives -----------------------------------------------------------
  void barrier();
  void bcast(void* buf, std::size_t count, const Datatype& t, Rank root);
  /// Scalar reductions over one double per rank.
  double reduce(double value, ReduceOp op, Rank root);
  double allreduce(double value, ReduceOp op);
  /// Typed integer allreduce: exact for digest terms whose fused totals
  /// exceed 2^53 (a double round-trip would silently round them).  Both
  /// overloads share one typed reduce entry point; the charge is
  /// identical (one 8-byte scalar either way).
  std::int64_t allreduce(std::int64_t value, ReduceOp op);
  /// Gather one double per rank to root (returns full vector at root,
  /// empty elsewhere).
  std::vector<double> gather(double value, Rank root);

  // --- one-sided -------------------------------------------------------------
  /// Collective window creation over `span` bytes of local memory
  /// (null base is allowed for phantom buffers).
  Window win_create(void* base, std::size_t size_bytes);

  // --- compiled-plan capture marks ------------------------------------------
  // Harness hooks bracketing one timed rep and its timer window; no-ops
  // unless `UniverseOptions::plan_recorder` is set (plan_record.hpp).
  // `plan_begin_rep` snapshots this rank's virtual-clock state so a
  // replay can resume from exactly here.
  void plan_begin_rep();
  void plan_end_rep();
  void plan_sample_begin();
  /// \param contributes  whether this rank's dt enters the fused sample
  ///   (the harness's `sender ? dt : 0.0` decision, frozen).
  void plan_sample_end(bool contributes);

 private:
  friend class Window;
  friend class Request;
  friend class PersistentRequest;

  struct PendingRecv;
  struct ChargeCapture;
  void validate_p2p(std::size_t count, const Datatype& t, Rank peer, Tag tag,
                    bool is_recv) const;
  detail::EnvRef make_envelope(const void* buf, std::size_t count,
                               const Datatype& t, Rank dst, Tag tag);
  Status finish_recv(void* buf, std::size_t count, const Datatype& t,
                     detail::Envelope& env, double post_clock);
  double collective_cost(std::size_t bytes) const;
  /// Shared body of the scalar allreduce overloads (defined in
  /// comm.cpp; instantiated for double and std::int64_t).
  template <class T>
  T allreduce_impl(T value, ReduceOp op);

  detail::World* world_;
  Rank rank_;
  double clock_ = 0.0;
  std::shared_ptr<detail::BsendPool> bsend_pool_;
  /// Per-rank pool of request states (complete type in comm.cpp).
  ObjectPool<Request::State> req_pool_;
  /// Borrow-stack of placement scratch buffers for tracing-enabled
  /// runs: each live `ChargeCapture` borrows one level (capacity
  /// retained across ops), so even tracing allocates only until the
  /// buffers warm up.  `finish_recv` holds two levels at once.
  std::vector<std::vector<PlacedCharge>> trace_scratch_;
  std::size_t trace_depth_ = 0;
};

/// \brief Entry point: run `body` on `opts.nranks` simulated ranks.
///
/// Spawns one thread per rank, constructs its `Comm`, runs `body`, joins
/// everything, and rethrows the first exception any rank produced.
class Universe {
 public:
  static void run(const UniverseOptions& opts,
                  const std::function<void(Comm&)>& body);
  /// Two-rank convenience with default options.
  static void run(int nranks, const std::function<void(Comm&)>& body) {
    UniverseOptions o;
    o.nranks = nranks;
    run(o, body);
  }
};

}  // namespace minimpi
