#pragma once
/// \file minimpi.hpp
/// \brief Umbrella header for the minimpi substrate.
///
/// minimpi is a from-scratch, thread-backed implementation of the MPI
/// subset exercised by "Performance of MPI Sends of Non-Contiguous Data"
/// (Eijkhout): derived datatypes with pack/unpack, two-sided sends in
/// standard/buffered/synchronous modes with an eager/rendezvous
/// protocol, one-sided windows with fence synchronization, and a small
/// set of collectives — all running against a simulated fabric whose
/// timing comes from per-cluster `MachineProfile`s.

#include "minimpi/base/buffer.hpp"
#include "minimpi/base/error.hpp"
#include "minimpi/base/types.hpp"
#include "minimpi/datatype/datatype.hpp"
#include "minimpi/datatype/pack.hpp"
#include "minimpi/net/cost_model.hpp"
#include "minimpi/net/machine_profile.hpp"
#include "minimpi/runtime/comm.hpp"
