#pragma once
/// \file timeline.hpp
/// \brief Typed cost atoms on per-rank CPU/NIC resource timelines.
///
/// The paper's central observations are *resource* statements: pack and
/// wire serialize because nothing overlaps them (§4.3), and
/// simultaneous senders did not degrade because the NIC was not the
/// bottleneck (§4.7).  This file makes those statements first-class.
/// A protocol composition is no longer an opaque closed-form sum: the
/// `CostModel` emits a sequence of **typed charge atoms** (`cpu_pack`,
/// `wire`, `handshake`, ...), each with a declared resource, and a
/// scheduler places them on the rank's resource timeline:
///
///   * atoms on the *same* resource serialize (a CPU cannot pack two
///     buffers at once; a NIC injects one message at a time);
///   * consecutive atoms on *disjoint* resources overlap when the
///     hardware capability profile says they can — the `nic_gather`
///     capability (user-mode memory registration, paper ref [2]) frees
///     `wire` atoms from occupying the CPU, which is exactly the
///     pack/inject overlap no measured system had;
///   * `Resource::none` atoms (handshakes, fences, fabric latency) are
///     join points: they start when everything before them has
///     finished and everything after them waits.
///
/// Overlap and contention are therefore *emergent properties* of atom
/// occupancy instead of hand-coded special cases.  In the fully serial
/// 2-rank blocking ping-pong every atom chain degenerates to the sum
/// of its durations — bit-identically reproducing the closed forms
/// this API replaced (DESIGN.md §2.8 gives the substitution argument;
/// the seed `BENCH_*.json` goldens are the safety net).
///
/// Cross-*operation* NIC contention lives in the `NicLedger`: one per
/// rank, modelling the NIC as a FIFO injection queue.  When enabled
/// (`UniverseOptions::nic_occupancy_contention`), every message send
/// takes a ticket in program order and its wire/injection atom cannot
/// start before the previous ticket's injection has drained — so a
/// rank firing N concurrent sends (a transpose step) sees its
/// injections serialize, while independent pairs (multi-pair) see no
/// contention at all because NICs are per-rank.  The ledger is inert
/// by default, keeping the 2-rank curves and the static
/// `link_contention_factor` fallback byte-identical.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "minimpi/base/coop.hpp"

namespace minimpi {

/// \brief The vocabulary of typed cost atoms a protocol can charge.
enum class ChargeAtom : std::uint8_t {
  cpu_pack,          ///< layout-aware gather/scatter through a copy loop
  internal_copy,     ///< MPI-internal copy of already-contiguous bytes
  call_overhead,     ///< per-call library overhead (o_s, per-put, ...)
  handshake,         ///< rendezvous RTS/CTS round trip (a join point)
  injection,         ///< NIC draining an already-staged message (DMA)
  wire,              ///< wire serialization the sender is busy for
  fence,             ///< RMA epoch synchronization
  match,             ///< receive matching / completion overhead (o_r)
  capacity_penalty,  ///< beyond-capacity staging bookkeeping (§4.1)
  net_latency,       ///< fabric traversal delay (a join point)
};

/// \brief The resource an atom occupies while it runs.
enum class Resource : std::uint8_t { cpu, nic, none };

/// \brief Declared resource of each atom type.  `wire` is special: it
/// is declared `nic` but *also* occupies the CPU unless the profile
/// grants `NicCapabilities::nic_gather` (see `occupies_cpu`).
[[nodiscard]] Resource resource_of(ChargeAtom a) noexcept;

[[nodiscard]] std::string_view to_string(ChargeAtom a) noexcept;
[[nodiscard]] std::string_view to_string(Resource r) noexcept;

/// \brief One typed charge: an atom, its virtual-time duration, and
/// the payload bytes it accounts for (0 for pure overheads).
struct Charge {
  ChargeAtom atom = ChargeAtom::call_overhead;
  double seconds = 0.0;
  std::size_t bytes = 0;
};

/// \brief Small-inline-capacity charge sequence.
///
/// Every protocol composition the cost model emits is a handful of
/// atoms — the largest (`bsend_charges`) is 8 across both halves — yet
/// each used to materialize a fresh `std::vector<Charge>`, two heap
/// round-trips per message on the engine's hottest path.  `ChargeSeq`
/// keeps up to `inline_capacity` atoms in the object itself and only
/// spills to a vector beyond that (custom models may compose longer
/// sequences), staying contiguous either way so `schedule_sequence`
/// consumes it through the same `std::span<const Charge>`.
class ChargeSeq {
 public:
  static constexpr std::size_t inline_capacity = 8;

  ChargeSeq() = default;

  void push_back(const Charge& c) {
    if (size_ < inline_capacity) {
      inline_[size_] = c;
    } else {
      if (size_ == inline_capacity && spill_.empty())
        spill_.assign(inline_, inline_ + inline_capacity);
      spill_.push_back(c);
    }
    ++size_;
  }
  void emplace_back(ChargeAtom atom, double seconds, std::size_t bytes = 0) {
    push_back(Charge{atom, seconds, bytes});
  }

  void clear() noexcept {
    size_ = 0;
    spill_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const Charge* data() const noexcept {
    return size_ > inline_capacity ? spill_.data() : inline_;
  }
  const Charge& operator[](std::size_t i) const noexcept { return data()[i]; }
  [[nodiscard]] const Charge* begin() const noexcept { return data(); }
  [[nodiscard]] const Charge* end() const noexcept { return data() + size_; }

  // NOLINTNEXTLINE(google-explicit-constructor): the whole point
  operator std::span<const Charge>() const noexcept {
    return {data(), size_};
  }

 private:
  Charge inline_[inline_capacity];
  std::size_t size_ = 0;
  std::vector<Charge> spill_;  ///< holds *all* charges once spilled
};

/// A protocol composition's atom sequence, split at the instant the
/// sending call returns: `local` runs on the sender's timeline up to
/// `sender_done`; `transit` continues (background injection, fabric
/// latency) up to the arrival instant.
struct TransferCharges {
  ChargeSeq local;
  ChargeSeq transit;
  bool eager = true;
};

/// \brief What the hardware can overlap, derived from a
/// `MachineProfile` (`CostModel::capabilities`).
struct NicCapabilities {
  /// NIC gathers non-contiguous data while injecting (user-mode memory
  /// registration, paper ref [2]): `wire` atoms leave the CPU free, so
  /// a rendezvous pack overlaps its own injection.  False on every
  /// system the paper measured; `bench/ablation_nic_pipelining` flips
  /// it on a profile copy.
  bool nic_gather = false;
};

/// True if `a` occupies the CPU under `caps` (`wire` does unless the
/// NIC can gather; `injection` never does — the bytes are staged).
[[nodiscard]] bool occupies_cpu(ChargeAtom a,
                                const NicCapabilities& caps) noexcept;
/// True if `a` occupies the NIC (`wire` and `injection`).
[[nodiscard]] bool occupies_nic(ChargeAtom a) noexcept;

/// \brief One atom as the scheduler placed it (trace / introspection).
struct PlacedCharge {
  ChargeAtom atom;
  Resource resource;  ///< declared resource (the trace lane)
  double start = 0.0;
  double finish = 0.0;
  std::size_t bytes = 0;
};

/// \brief Per-rank FIFO NIC injection queue (emergent contention).
///
/// Tickets are issued on the owning rank's thread in program order, so
/// the queue order is deterministic; a ticket is *resolved* (its
/// injection placed) either immediately by the sender — eager, ready,
/// buffered, RMA, whose wire times are known at post time — or by the
/// receiver that computes the rendezvous timing.  Resolution happens
/// strictly in ticket order: a resolver for ticket k blocks (host
/// level only) until ticket k-1 has drained, which is what makes a
/// later injection queue behind an earlier one.  Disabled ledgers are
/// completely inert: no tickets, no waiting, no state — the bit-exact
/// default.
class NicLedger {
 public:
  NicLedger() = default;
  explicit NicLedger(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Issue the next ticket (owning rank's thread, program order).
  /// Returns 0 when disabled.
  std::uint64_t ticket();

  /// Resolve `ticket`: the injection becomes ready at `ready` and
  /// occupies the NIC for `seconds`.  Returns the actual start (==
  /// `ready` when the queue is empty; later when it must drain).
  /// Blocks until every earlier ticket has resolved.
  double inject(std::uint64_t ticket, double ready, double seconds);

  /// Resolve `ticket` without occupying the NIC (a message that emits
  /// no injection); keeps the FIFO moving.
  void skip(std::uint64_t ticket);

  /// Latest instant the NIC is known busy until (tests/introspection).
  [[nodiscard]] double busy_until() const;

  /// Tickets resolved so far (compiled-plan replay polls this instead
  /// of blocking inside `inject`, which would deadlock its single
  /// interpreter thread).
  [[nodiscard]] std::uint64_t resolved() const;

  /// Seed `busy_until` with a captured value: a replayed plan's ledger
  /// replica starts where the capture run's ledger stood at the first
  /// recorded rep boundary (an eager sender can return before its wire
  /// drains, so busy time carries across reps under contention).
  void preload(double busy_until);

 private:
  bool enabled_ = false;
  mutable std::mutex m_;
  /// Fiber-aware wait queue with a condition-variable fallback, so the
  /// ledger works both under the cooperative scheduler and from raw OS
  /// threads (tests drive it that way).
  coop::WaitQueue cv_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t resolved_ = 0;
  double busy_until_ = 0.0;
};

/// \brief A pending FIFO slot on some rank's NIC: the ledger plus the
/// ticket this message holds.  Default-constructed gates are inert.
struct NicGate {
  NicLedger* ledger = nullptr;
  std::uint64_t ticket = 0;

  [[nodiscard]] bool active() const noexcept {
    return ledger != nullptr && ledger->enabled();
  }
};

/// \brief Result of scheduling one atom sequence.
struct ScheduleResult {
  double finish = 0.0;    ///< when every atom has completed
  bool gate_used = false; ///< a wire/injection atom consumed the gate
};

/// \brief Place `seq` on a resource timeline starting at `start`.
///
/// Scheduling rule: consecutive atoms whose occupancy sets intersect
/// form a *serial run* — the run finishes at its start plus the
/// left-to-right sum of its durations, which is what makes the serial
/// case degenerate to the legacy closed-form sums bit-exactly.  An
/// atom whose occupancy is disjoint from the current run starts at its
/// own resource's free time (overlap); a `Resource::none` atom joins
/// all resources.  The first NIC-occupying atom additionally queues
/// through `gate` when it is active (emergent contention).
///
/// Pure function of its inputs apart from the gate: identical calls
/// give identical placements.
ScheduleResult schedule_sequence(double start, std::span<const Charge> seq,
                                 const NicCapabilities& caps,
                                 NicGate gate = {},
                                 std::vector<PlacedCharge>* placed = nullptr);

}  // namespace minimpi
