#pragma once
/// \file machine_profile.hpp
/// \brief Parameter sets describing the four clusters of the study.
///
/// The paper measures four installations (Stampede2-SKX with Intel MPI
/// and with MVAPICH2, Lonestar5/Cray with Cray MPICH, Stampede2-KNL with
/// Intel MPI).  Between installations the *shapes* of the curves differ
/// only through a handful of physical and implementation parameters;
/// a `MachineProfile` captures exactly those.  Values are calibrated to
/// the paper's figures (peak bandwidths, minimum ping-pong time of
/// ~6 µs, eager-limit positions, KNL's weak core) — see DESIGN.md §2 for
/// the substitution argument and EXPERIMENTS.md for validation.

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

namespace minimpi {

struct MachineProfile {
  std::string name;
  std::string description;

  // --- network fabric (LogGP-style) --------------------------------------
  double net_latency_s;         ///< one-way wire latency L
  double net_bandwidth_Bps;     ///< peak per-link bandwidth (1/G)
  double send_overhead_s;       ///< o_s: CPU cost to initiate a send
  double recv_overhead_s;       ///< o_r: CPU cost to complete a receive
  std::size_t packet_bytes;     ///< fabric MTU
  double per_packet_overhead_s; ///< header/credit cost per packet

  // --- protocol switchover ------------------------------------------------
  std::size_t eager_limit_bytes;   ///< eager -> rendezvous threshold
  double rendezvous_handshake_s;   ///< RTS/CTS round trip cost

  // --- MPI-internal staging (the mechanism behind paper §4.1) -------------
  double internal_copy_bandwidth_Bps; ///< MPI's own pack/copy engine
  std::size_t internal_segment_bytes; ///< staging pipeline granularity
  double per_segment_overhead_s;      ///< bookkeeping per staged segment
  std::size_t internal_buffer_bytes;  ///< comfortable staging capacity;
                                      ///< beyond it bookkeeping grows
  double large_msg_penalty;           ///< strength of beyond-capacity term

  // --- core/memory subsystem (user-space copy loops) ----------------------
  /// Effective bandwidth, per *payload* byte, of a user-space strided
  /// gather loop on one core.  The loop loads 2N and stores N bytes, so
  /// this is roughly a third of streaming bandwidth; KNL's weak core is
  /// expressed here (paper §4.8, figure 4).
  double copy_bandwidth_Bps;
  double warm_copy_factor;      ///< bandwidth multiplier when source in cache
  std::size_t cache_bytes;      ///< per-core effective cache for warm hits
  double per_call_overhead_s;   ///< cost of one library call (packing(e))
  /// Block-size sensitivity of copy loops: per-byte cost scales as
  /// (1 + c/avg_block) / (1 + c/8) with c = this value, normalized so the
  /// study's canonical 8-byte blocks cost exactly 1/copy_bandwidth per
  /// byte.  Longer blocks approach memcpy speed (paper §4.7 item 2).
  double copy_block_overhead_bytes;

  // --- one-sided ----------------------------------------------------------
  double fence_cost_s;          ///< per MPI_Win_fence synchronization
  double put_bandwidth_factor;  ///< RMA put bandwidth / net bandwidth
  double put_overhead_s;        ///< per-put origin-side overhead
  double rma_large_penalty;     ///< additional large-message RMA penalty

  // --- buffered sends -----------------------------------------------------
  double bsend_overhead_s;          ///< per-message accounting cost
  double bsend_copy_bandwidth_Bps;  ///< copy into the attached buffer

  // --- NIC capability -----------------------------------------------------
  /// True if the NIC can gather non-contiguous data while injecting
  /// (user-mode memory registration, paper ref [2]): `wire` atoms stop
  /// occupying the CPU on the charge timeline (timeline.hpp), so a
  /// rendezvous pack overlaps its own injection.  False on every
  /// system the paper measured; `bench/ablation_nic_pipelining` flips
  /// it on a profile copy.
  bool nic_gather;

  /// **Static fallback** for link contention: fractional wire-bandwidth
  /// loss per *additional* concurrent sender sharing one NIC — S
  /// simultaneous senders see the link at
  /// bandwidth / (1 + factor * (S - 1)), with S from
  /// `UniverseOptions::concurrent_senders`.  The paper's §4.7 "limited
  /// test" observed no degradation with all node pairs active, so every
  /// canned profile ships 0.0 (the term is inert).  The mechanistic
  /// alternative is emergent NIC-occupancy contention
  /// (`UniverseOptions::nic_occupancy_contention`): injections queue
  /// FIFO on the sending rank's NIC timeline, so contention arises only
  /// where sends genuinely overlap on one NIC —
  /// `bench/ablation_contention` compares the two and documents where
  /// this static factor mis-models.
  double link_contention_factor = 0.0;

  // --- canned profiles ----------------------------------------------------
  static const MachineProfile& skx_impi();      ///< Stampede2 Skylake, Intel MPI (fig 1)
  static const MachineProfile& skx_mvapich2();  ///< Stampede2 Skylake, MVAPICH2 (fig 2)
  static const MachineProfile& ls5_cray();      ///< Lonestar5 Cray XC40 (fig 3)
  static const MachineProfile& knl_impi();      ///< Stampede2 KNL, Intel MPI (fig 4)

  static const std::vector<std::string>& names();
  static const MachineProfile& by_name(const std::string& name);
};

}  // namespace minimpi
