#pragma once
/// \file cost_model.hpp
/// \brief Analytic timing model for the simulated fabric and MPI internals.
///
/// The cost model turns a `MachineProfile` into the virtual-time charges
/// used by the protocol layer.  It is deliberately *mechanistic* rather
/// than curve-fitted: each term corresponds to a cause the paper
/// identifies (staging copies, segment bookkeeping, the eager/rendezvous
/// switchover, fence synchronization, per-call overheads), so the
/// reproduced curves bend for the same reasons the measured ones do.
///
/// All times are seconds of virtual time; all sizes are payload bytes.

#include <cstddef>
#include <cstring>
#include <optional>

#include "minimpi/datatype/datatype.hpp"
#include "minimpi/net/machine_profile.hpp"

namespace minimpi {

class CostModel {
 public:
  /// \param eager_override  optional replacement for the profile's eager
  ///   limit (paper §4.5 tests raising it beyond the message size).  The
  ///   effective limit is always capped by `internal_buffer_bytes`: no
  ///   implementation eagerly buffers beyond its staging capacity, which
  ///   is exactly why the paper saw no large-message change.
  /// The profile is copied: a CostModel stays valid (and unchanged) even
  /// if the caller's profile object is mutated or destroyed afterwards.
  /// \param concurrent_senders  simultaneous senders sharing one NIC in
  ///   the scenario being modeled (multi-rank communication patterns);
  ///   together with the profile's `link_contention_factor` it scales
  ///   the effective wire bandwidth.  1 (the 2-rank ping-pong) or a
  ///   factor of 0.0 leave every charge exactly as before.
  explicit CostModel(const MachineProfile& p,
                     std::optional<std::size_t> eager_override = {},
                     int concurrent_senders = 1);

  [[nodiscard]] const MachineProfile& profile() const noexcept { return p_; }
  [[nodiscard]] std::size_t eager_limit() const noexcept { return eager_limit_; }
  /// Wire-time multiplier from link contention (1.0 when inert).
  [[nodiscard]] double contention_multiplier() const noexcept {
    return contention_;
  }
  [[nodiscard]] bool is_eager(std::size_t bytes) const noexcept {
    return bytes <= eager_limit_;
  }

  // --- primitive terms ----------------------------------------------------

  /// Wire serialization: bytes/bandwidth plus per-packet overhead.
  [[nodiscard]] double wire_time(std::size_t bytes) const;

  /// Block-size sensitivity of any software copy loop, normalized so the
  /// study's canonical 8-byte blocks have factor 1.  Contiguous data
  /// approaches 1/(1 + c/8) (~4x faster: plain memcpy).
  [[nodiscard]] double block_factor(const BlockStats& stats) const;
  [[nodiscard]] double block_factor_contiguous() const;

  /// User-space gather/scatter loop over a layout; `warm_fraction` in
  /// [0,1] scales bandwidth toward `warm_copy_factor` (cache hits).
  [[nodiscard]] double user_copy_time(std::size_t bytes,
                                      const BlockStats& stats,
                                      double warm_fraction = 0.0) const;

  /// Cost of `ncalls` library calls (MPI_Pack per element, §2.6).
  [[nodiscard]] double call_overhead(std::size_t ncalls) const;

  /// MPI-internal staging of a non-contiguous message: pack engine,
  /// per-segment bookkeeping, and the beyond-capacity penalty that
  /// produces the paper's large-message degradation (§4.1).
  [[nodiscard]] double internal_staging_time(std::size_t bytes,
                                             const BlockStats& stats) const;

  /// MPI-internal copy of already-contiguous bytes (eager buffering,
  /// buffered-send re-copies).
  [[nodiscard]] double internal_contiguous_copy_time(std::size_t bytes) const;

  [[nodiscard]] double handshake_time() const noexcept {
    return p_.rendezvous_handshake_s;
  }
  [[nodiscard]] double fence_time() const noexcept { return p_.fence_cost_s; }

  // --- protocol compositions ----------------------------------------------

  struct Timing {
    double sender_done;  ///< virtual time the send call returns
    double arrival;      ///< virtual time the last byte is at the receiver
    bool eager;
  };

  /// Standard-mode send below the eager limit: copy into MPI's internal
  /// buffer, fire and forget.
  [[nodiscard]] Timing eager_timing(double ts, std::size_t bytes,
                                    const BlockStats& send_stats) const;

  /// Standard/synchronous send above the eager limit: RTS/CTS handshake
  /// gated on the receiver, then (pack +) wire; the sender is busy until
  /// the data is injected.  Without NIC gather support pack and wire
  /// serialize — the paper's central "no overlap" observation.
  [[nodiscard]] Timing rendezvous_timing(double sender_ready, double recv_ready,
                                         std::size_t bytes,
                                         const BlockStats& send_stats) const;

  /// Ready-mode send: the receive is guaranteed posted, so no handshake
  /// and no eager buffering copy — non-contiguous data still stages.
  [[nodiscard]] Timing rsend_timing(double ts, std::size_t bytes,
                                    const BlockStats& send_stats) const;

  /// Buffered send: gather into the user-attached buffer, return; the
  /// background transfer still pays MPI's internal copy and, for large
  /// messages, the capacity penalty — which is why Bsend never helps
  /// (paper §4.2).
  [[nodiscard]] Timing bsend_timing(double ts, std::size_t bytes,
                                    const BlockStats& send_stats) const;

  /// Receiver-side completion for a message that arrived at `arrival`:
  /// match overhead, eager copy-out, scatter for non-contiguous receive
  /// types.
  [[nodiscard]] double recv_completion(double recv_ready, double arrival,
                                       std::size_t bytes,
                                       const BlockStats& recv_stats,
                                       bool eager) const;

  /// One-sided put of a (possibly derived-type) message: origin-side
  /// staging through the same internal engine, RMA-specific wire rate,
  /// plus any profile-specific large-message RMA penalty.
  [[nodiscard]] Timing put_timing(double t_origin, std::size_t bytes,
                                  const BlockStats& origin_stats) const;

  /// One-sided get: same pieces mirrored; data is available to the
  /// origin at `arrival`.
  [[nodiscard]] Timing get_timing(double t_origin, std::size_t bytes,
                                  const BlockStats& target_stats) const;

 private:
  [[nodiscard]] double capacity_penalty(std::size_t bytes) const;

  MachineProfile p_;
  std::size_t eager_limit_;
  double contention_ = 1.0;
};

}  // namespace minimpi
