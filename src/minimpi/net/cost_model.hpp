#pragma once
/// \file cost_model.hpp
/// \brief Analytic timing model for the simulated fabric and MPI internals.
///
/// The cost model turns a `MachineProfile` into the virtual-time charges
/// used by the protocol layer.  It is deliberately *mechanistic* rather
/// than curve-fitted: each term corresponds to a cause the paper
/// identifies (staging copies, segment bookkeeping, the eager/rendezvous
/// switchover, fence synchronization, per-call overheads), so the
/// reproduced curves bend for the same reasons the measured ones do.
///
/// Since the charge-timeline redesign the protocol compositions are not
/// closed-form sums: each one **emits a sequence of typed charge atoms**
/// (`*_charges`, timeline.hpp) — pack, wire, handshake, ... with a
/// declared CPU/NIC resource each — and the `Timing` is derived by
/// *scheduling* that sequence on a resource timeline (`realize`).
/// Same-resource atoms serialize; cross-resource atoms overlap when the
/// profile's NIC capabilities allow (`nic_gather`); per-rank NIC gates
/// make injections of concurrent sends queue FIFO when emergent
/// contention is enabled.  In the fully serial case the schedule
/// degenerates to the legacy sums bit-exactly (DESIGN.md §2.8).
///
/// All times are seconds of virtual time; all sizes are payload bytes.

#include <cstddef>
#include <cstring>
#include <optional>
#include <vector>

#include "minimpi/datatype/datatype.hpp"
#include "minimpi/net/machine_profile.hpp"
#include "minimpi/net/timeline.hpp"

namespace minimpi {

class CostModel {
 public:
  /// \param eager_override  optional replacement for the profile's eager
  ///   limit (paper §4.5 tests raising it beyond the message size).  The
  ///   effective limit is always capped by `internal_buffer_bytes`: no
  ///   implementation eagerly buffers beyond its staging capacity, which
  ///   is exactly why the paper saw no large-message change.
  /// The profile is copied: a CostModel stays valid (and unchanged) even
  /// if the caller's profile object is mutated or destroyed afterwards.
  /// \param concurrent_senders  simultaneous senders sharing one NIC in
  ///   the scenario being modeled (multi-rank communication patterns);
  ///   together with the profile's `link_contention_factor` it scales
  ///   the effective wire bandwidth.  This is the *static fallback*
  ///   contention model — the mechanistic alternative is NIC-occupancy
  ///   queueing through per-rank `NicGate`s.  1 (the 2-rank ping-pong)
  ///   or a factor of 0.0 leave every charge exactly as before.
  explicit CostModel(const MachineProfile& p,
                     std::optional<std::size_t> eager_override = {},
                     int concurrent_senders = 1);

  [[nodiscard]] const MachineProfile& profile() const noexcept { return p_; }
  [[nodiscard]] std::size_t eager_limit() const noexcept { return eager_limit_; }
  /// Wire-time multiplier from static link contention (1.0 when inert).
  [[nodiscard]] double contention_multiplier() const noexcept {
    return contention_;
  }
  /// Hardware overlap capabilities the scheduler honours.
  [[nodiscard]] NicCapabilities capabilities() const noexcept {
    return NicCapabilities{p_.nic_gather};
  }
  [[nodiscard]] bool is_eager(std::size_t bytes) const noexcept {
    return bytes <= eager_limit_;
  }

  // --- primitive terms ----------------------------------------------------

  /// Wire serialization: bytes/bandwidth plus per-packet overhead.
  [[nodiscard]] double wire_time(std::size_t bytes) const;

  /// Block-size sensitivity of any software copy loop, normalized so the
  /// study's canonical 8-byte blocks have factor 1.  Contiguous data
  /// approaches 1/(1 + c/8) (~4x faster: plain memcpy).
  [[nodiscard]] double block_factor(const BlockStats& stats) const;
  [[nodiscard]] double block_factor_contiguous() const;

  /// User-space gather/scatter loop over a layout; `warm_fraction` in
  /// [0,1] scales bandwidth toward `warm_copy_factor` (cache hits).
  [[nodiscard]] double user_copy_time(std::size_t bytes,
                                      const BlockStats& stats,
                                      double warm_fraction = 0.0) const;

  /// Cost of `ncalls` library calls (MPI_Pack per element, §2.6).
  [[nodiscard]] double call_overhead(std::size_t ncalls) const;

  /// The pack-engine part of MPI-internal staging: copy-loop time plus
  /// per-segment bookkeeping, *without* the beyond-capacity penalty
  /// (that is its own typed atom).
  [[nodiscard]] double staging_base_time(std::size_t bytes,
                                         const BlockStats& stats) const;

  /// Beyond-capacity bookkeeping behind the paper's large-message
  /// degradation (§4.1); zero at or below `internal_buffer_bytes`.
  [[nodiscard]] double capacity_penalty_time(std::size_t bytes) const;

  /// MPI-internal staging of a non-contiguous message: pack engine,
  /// per-segment bookkeeping, and the beyond-capacity penalty
  /// (`staging_base_time` + `capacity_penalty_time`).
  [[nodiscard]] double internal_staging_time(std::size_t bytes,
                                             const BlockStats& stats) const;

  /// MPI-internal copy of already-contiguous bytes (eager buffering,
  /// buffered-send re-copies).
  [[nodiscard]] double internal_contiguous_copy_time(std::size_t bytes) const;

  [[nodiscard]] double handshake_time() const noexcept {
    return p_.rendezvous_handshake_s;
  }
  [[nodiscard]] double fence_time() const noexcept { return p_.fence_cost_s; }

  // --- typed charge-atom emission (the timeline API) ----------------------
  //
  // Each protocol composition is defined by the atom sequence it emits;
  // `realize` (or the legacy-shaped `*_timing` wrappers below) derives
  // the observable Timing by scheduling it.  The emitters are public so
  // traces, tests, and what-if tools can inspect the exact atoms a
  // transfer would charge.

  /// Standard-mode send below the eager limit: copy into MPI's internal
  /// buffer (fire and forget), background injection + latency.
  [[nodiscard]] TransferCharges eager_charges(std::size_t bytes,
                                              const BlockStats& stats) const;

  /// Standard/synchronous send above the eager limit.  The sequence
  /// starts at max(sender_ready, recv_ready): handshake, then staging
  /// pack and wire — which serialize on the CPU unless the profile has
  /// `nic_gather`, in which case the wire atom occupies only the NIC
  /// (and the capacity penalty vanishes with the staging buffer,
  /// paper ref [2]).
  [[nodiscard]] TransferCharges rendezvous_charges(
      std::size_t bytes, const BlockStats& stats) const;

  /// Ready-mode send: no handshake, no eager copy; staging (if
  /// non-contiguous) and wire keep the sender busy.
  [[nodiscard]] TransferCharges rsend_charges(std::size_t bytes,
                                              const BlockStats& stats) const;

  /// Buffered send: gather into the user-attached buffer, return; the
  /// background transfer still pays MPI's internal copy, the capacity
  /// penalty, and (above the eager limit) a handshake — why Bsend never
  /// helps (paper §4.2).
  [[nodiscard]] TransferCharges bsend_charges(std::size_t bytes,
                                              const BlockStats& stats) const;

  /// Receiver-side completion atoms for a message that has arrived:
  /// match overhead, copy-out for *unexpected* eager messages, scatter
  /// for non-contiguous receive types.
  [[nodiscard]] ChargeSeq recv_charges(std::size_t bytes,
                                       const BlockStats& recv_stats,
                                       bool eager, bool unexpected) const;

  /// One-sided put: origin-side staging through the same internal
  /// engine, injection at the RMA-specific rate, plus any
  /// profile-specific large-message RMA penalty.
  [[nodiscard]] TransferCharges put_charges(
      std::size_t bytes, const BlockStats& origin_stats) const;

  /// One-sided get: request latency, target-side gather, response.
  [[nodiscard]] TransferCharges get_charges(
      std::size_t bytes, const BlockStats& target_stats) const;

  // --- scheduling ----------------------------------------------------------

  struct Timing {
    double sender_done;  ///< virtual time the send call returns
    double arrival;      ///< virtual time the last byte is at the receiver
    bool eager;
  };

  /// \brief Derive a Timing by scheduling `charges` from `start`:
  /// `local` up to `sender_done`, `transit` on to `arrival`.  The NIC
  /// gate (when active) queues the sequence's wire/injection atom FIFO
  /// behind the rank's earlier injections — emergent contention; an
  /// inert gate leaves the schedule untouched.  `placed` (optional)
  /// receives every atom's placement for tracing.
  Timing realize(double start, const TransferCharges& charges,
                 NicGate gate = {},
                 std::vector<PlacedCharge>* placed = nullptr) const;

  // --- protocol compositions (scheduled wrappers) --------------------------

  [[nodiscard]] Timing eager_timing(
      double ts, std::size_t bytes, const BlockStats& send_stats,
      NicGate gate = {}, std::vector<PlacedCharge>* placed = nullptr) const;

  [[nodiscard]] Timing rendezvous_timing(
      double sender_ready, double recv_ready, std::size_t bytes,
      const BlockStats& send_stats, NicGate gate = {},
      std::vector<PlacedCharge>* placed = nullptr) const;

  [[nodiscard]] Timing rsend_timing(
      double ts, std::size_t bytes, const BlockStats& send_stats,
      NicGate gate = {}, std::vector<PlacedCharge>* placed = nullptr) const;

  [[nodiscard]] Timing bsend_timing(
      double ts, std::size_t bytes, const BlockStats& send_stats,
      NicGate gate = {}, std::vector<PlacedCharge>* placed = nullptr) const;

  /// Receiver-side completion for a message that arrived at `arrival`.
  [[nodiscard]] double recv_completion(
      double recv_ready, double arrival, std::size_t bytes,
      const BlockStats& recv_stats, bool eager,
      std::vector<PlacedCharge>* placed = nullptr) const;

  [[nodiscard]] Timing put_timing(
      double t_origin, std::size_t bytes, const BlockStats& origin_stats,
      NicGate gate = {}, std::vector<PlacedCharge>* placed = nullptr) const;

  [[nodiscard]] Timing get_timing(
      double t_origin, std::size_t bytes, const BlockStats& target_stats,
      NicGate gate = {}, std::vector<PlacedCharge>* placed = nullptr) const;

 private:
  MachineProfile p_;
  std::size_t eager_limit_;
  double contention_ = 1.0;
};

}  // namespace minimpi
