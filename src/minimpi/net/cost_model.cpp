#include "minimpi/net/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace minimpi {

CostModel::CostModel(const MachineProfile& p,
                     std::optional<std::size_t> eager_override,
                     int concurrent_senders)
    : p_(p),
      eager_limit_(std::min(eager_override.value_or(p.eager_limit_bytes),
                            p.internal_buffer_bytes)),
      contention_(1.0 +
                  p.link_contention_factor *
                      static_cast<double>(std::max(concurrent_senders, 1) -
                                          1)) {}

double CostModel::wire_time(std::size_t bytes) const {
  if (bytes == 0) return 0.0;
  const std::size_t packets =
      (bytes + p_.packet_bytes - 1) / p_.packet_bytes;
  // Under link contention S senders share the NIC: each sees the wire
  // at bandwidth / contention_ (contention_ == 1.0 when the term is
  // inert, keeping the 2-rank curves bit-identical).
  return static_cast<double>(bytes) * contention_ / p_.net_bandwidth_Bps +
         static_cast<double>(packets) * p_.per_packet_overhead_s;
}

double CostModel::block_factor(const BlockStats& stats) const {
  if (stats.total_bytes == 0) return block_factor_contiguous();
  const double avg =
      stats.block_count == 0
          ? static_cast<double>(stats.total_bytes)
          : static_cast<double>(stats.total_bytes) /
                static_cast<double>(stats.block_count);
  const double c = p_.copy_block_overhead_bytes;
  return (1.0 + c / avg) / (1.0 + c / 8.0);
}

double CostModel::block_factor_contiguous() const {
  const double c = p_.copy_block_overhead_bytes;
  return 1.0 / (1.0 + c / 8.0);
}

double CostModel::user_copy_time(std::size_t bytes, const BlockStats& stats,
                                 double warm_fraction) const {
  if (bytes == 0) return 0.0;
  const double warm = std::clamp(warm_fraction, 0.0, 1.0);
  const double bw = p_.copy_bandwidth_Bps *
                    (1.0 + (p_.warm_copy_factor - 1.0) * warm);
  return static_cast<double>(bytes) / bw * block_factor(stats);
}

double CostModel::call_overhead(std::size_t ncalls) const {
  return static_cast<double>(ncalls) * p_.per_call_overhead_s;
}

double CostModel::capacity_penalty(std::size_t bytes) const {
  if (bytes <= p_.internal_buffer_bytes) return 0.0;
  return static_cast<double>(bytes - p_.internal_buffer_bytes) /
         p_.internal_copy_bandwidth_Bps * p_.large_msg_penalty;
}

double CostModel::internal_staging_time(std::size_t bytes,
                                        const BlockStats& stats) const {
  if (bytes == 0) return 0.0;
  const std::size_t segments =
      (bytes + p_.internal_segment_bytes - 1) / p_.internal_segment_bytes;
  return static_cast<double>(bytes) / p_.internal_copy_bandwidth_Bps *
             block_factor(stats) +
         static_cast<double>(segments) * p_.per_segment_overhead_s +
         capacity_penalty(bytes);
}

double CostModel::internal_contiguous_copy_time(std::size_t bytes) const {
  if (bytes == 0) return 0.0;
  const std::size_t segments =
      (bytes + p_.internal_segment_bytes - 1) / p_.internal_segment_bytes;
  return static_cast<double>(bytes) / p_.internal_copy_bandwidth_Bps *
             block_factor_contiguous() +
         static_cast<double>(segments) * p_.per_segment_overhead_s;
}

CostModel::Timing CostModel::eager_timing(double ts, std::size_t bytes,
                                          const BlockStats& send_stats) const {
  const bool noncontig = send_stats.block_count > 1;
  const double local =
      p_.send_overhead_s + (noncontig ? internal_staging_time(bytes, send_stats)
                                       : internal_contiguous_copy_time(bytes));
  const double sender_done = ts + local;
  return {sender_done, sender_done + wire_time(bytes) + p_.net_latency_s,
          true};
}

CostModel::Timing CostModel::rendezvous_timing(
    double sender_ready, double recv_ready, std::size_t bytes,
    const BlockStats& send_stats) const {
  const bool noncontig = send_stats.block_count > 1;
  const double start =
      std::max(sender_ready, recv_ready) + p_.rendezvous_handshake_s;
  const double pack_t =
      noncontig ? internal_staging_time(bytes, send_stats) : 0.0;
  const double wire_t = wire_time(bytes);
  // Paper §2.3/§5: without NIC gather support, building the internal
  // buffer cannot overlap injection; ref [2] hardware (user-mode memory
  // registration) overlaps the gather with injection *and* dispenses
  // with the big staging buffer, so the capacity penalty vanishes too.
  double xfer;
  if (p_.nic_noncontig_pipelining) {
    const double gather_t = pack_t - capacity_penalty(bytes);
    xfer = std::max(gather_t, wire_t);
  } else {
    xfer = pack_t + wire_t;
  }
  const double sender_done = start + xfer;
  return {sender_done, sender_done + p_.net_latency_s, false};
}

CostModel::Timing CostModel::rsend_timing(double ts, std::size_t bytes,
                                          const BlockStats& send_stats) const {
  const bool noncontig = send_stats.block_count > 1;
  const double local =
      p_.send_overhead_s +
      (noncontig ? internal_staging_time(bytes, send_stats) : 0.0);
  const double sender_done = ts + local + wire_time(bytes);
  return {sender_done, sender_done + p_.net_latency_s, false};
}

CostModel::Timing CostModel::bsend_timing(double ts, std::size_t bytes,
                                          const BlockStats& send_stats) const {
  // Gather into the user-attached buffer (charged like the MPI pack
  // engine: paper §4.3 shows MPI_Pack ~= a user copy loop)...
  const double local = p_.send_overhead_s + p_.bsend_overhead_s +
                       static_cast<double>(bytes) /
                           p_.bsend_copy_bandwidth_Bps *
                           block_factor(send_stats);
  const double sender_done = ts + local;
  // ...then the background transfer still runs through MPI's internal
  // machinery: an internal standard send (which handshakes above the
  // eager limit), another contiguous copy, and the capacity penalty.
  // This is the modeled reason Bsend does not rescue large messages
  // (§4.2): the user-space buffer adds a copy without removing any.
  const double background = internal_contiguous_copy_time(bytes) +
                            capacity_penalty(bytes) +
                            (is_eager(bytes) ? 0.0 : handshake_time());
  return {sender_done,
          sender_done + background + wire_time(bytes) + p_.net_latency_s,
          true};
}

double CostModel::recv_completion(double recv_ready, double arrival,
                                  std::size_t bytes,
                                  const BlockStats& recv_stats,
                                  bool eager) const {
  double t = std::max(recv_ready, arrival) + p_.recv_overhead_s;
  // Eager copy-out happens only for *unexpected* messages (those that
  // landed in MPI's buffer before the receive was posted); an expected
  // eager message is delivered straight into the user buffer.
  if (eager && recv_ready > arrival)
    t += internal_contiguous_copy_time(bytes);
  if (recv_stats.block_count > 1)
    t += internal_staging_time(bytes, recv_stats);  // scatter to layout
  return t;
}

CostModel::Timing CostModel::put_timing(double t_origin, std::size_t bytes,
                                        const BlockStats& origin_stats) const {
  const bool noncontig = origin_stats.block_count > 1;
  const double pack_t =
      noncontig ? internal_staging_time(bytes, origin_stats) : 0.0;
  const double rma_wire =
      bytes == 0 ? 0.0
                 : static_cast<double>(bytes) * contention_ /
                       (p_.net_bandwidth_Bps * p_.put_bandwidth_factor);
  const double extra =
      bytes > p_.internal_buffer_bytes
          ? static_cast<double>(bytes - p_.internal_buffer_bytes) /
                p_.net_bandwidth_Bps * p_.rma_large_penalty
          : 0.0;
  const double origin_done = t_origin + p_.put_overhead_s + pack_t;
  return {origin_done, origin_done + rma_wire + extra + p_.net_latency_s,
          false};
}

CostModel::Timing CostModel::get_timing(double t_origin, std::size_t bytes,
                                        const BlockStats& target_stats) const {
  // Mirror of put: request goes out, target-side gather, data comes back.
  const bool noncontig = target_stats.block_count > 1;
  const double pack_t =
      noncontig ? internal_staging_time(bytes, target_stats) : 0.0;
  const double rma_wire =
      bytes == 0 ? 0.0
                 : static_cast<double>(bytes) * contention_ /
                       (p_.net_bandwidth_Bps * p_.put_bandwidth_factor);
  const double extra =
      bytes > p_.internal_buffer_bytes
          ? static_cast<double>(bytes - p_.internal_buffer_bytes) /
                p_.net_bandwidth_Bps * p_.rma_large_penalty
          : 0.0;
  const double origin_done = t_origin + p_.put_overhead_s;
  return {origin_done, origin_done + p_.net_latency_s + pack_t + rma_wire +
                           extra + p_.net_latency_s,
          false};
}

}  // namespace minimpi
