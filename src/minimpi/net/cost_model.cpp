#include "minimpi/net/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace minimpi {

CostModel::CostModel(const MachineProfile& p,
                     std::optional<std::size_t> eager_override,
                     int concurrent_senders)
    : p_(p),
      eager_limit_(std::min(eager_override.value_or(p.eager_limit_bytes),
                            p.internal_buffer_bytes)),
      contention_(1.0 +
                  p.link_contention_factor *
                      static_cast<double>(std::max(concurrent_senders, 1) -
                                          1)) {}

double CostModel::wire_time(std::size_t bytes) const {
  if (bytes == 0) return 0.0;
  const std::size_t packets =
      (bytes + p_.packet_bytes - 1) / p_.packet_bytes;
  // Under static link contention S senders share the NIC: each sees the
  // wire at bandwidth / contention_ (contention_ == 1.0 when the term
  // is inert, keeping the 2-rank curves bit-identical).  The emergent
  // alternative — injections queueing on a rank's NIC timeline — needs
  // no bandwidth rescaling at all.
  return static_cast<double>(bytes) * contention_ / p_.net_bandwidth_Bps +
         static_cast<double>(packets) * p_.per_packet_overhead_s;
}

double CostModel::block_factor(const BlockStats& stats) const {
  if (stats.total_bytes == 0) return block_factor_contiguous();
  const double avg =
      stats.block_count == 0
          ? static_cast<double>(stats.total_bytes)
          : static_cast<double>(stats.total_bytes) /
                static_cast<double>(stats.block_count);
  const double c = p_.copy_block_overhead_bytes;
  return (1.0 + c / avg) / (1.0 + c / 8.0);
}

double CostModel::block_factor_contiguous() const {
  const double c = p_.copy_block_overhead_bytes;
  return 1.0 / (1.0 + c / 8.0);
}

double CostModel::user_copy_time(std::size_t bytes, const BlockStats& stats,
                                 double warm_fraction) const {
  if (bytes == 0) return 0.0;
  const double warm = std::clamp(warm_fraction, 0.0, 1.0);
  const double bw = p_.copy_bandwidth_Bps *
                    (1.0 + (p_.warm_copy_factor - 1.0) * warm);
  return static_cast<double>(bytes) / bw * block_factor(stats);
}

double CostModel::call_overhead(std::size_t ncalls) const {
  return static_cast<double>(ncalls) * p_.per_call_overhead_s;
}

double CostModel::capacity_penalty_time(std::size_t bytes) const {
  if (bytes <= p_.internal_buffer_bytes) return 0.0;
  return static_cast<double>(bytes - p_.internal_buffer_bytes) /
         p_.internal_copy_bandwidth_Bps * p_.large_msg_penalty;
}

double CostModel::staging_base_time(std::size_t bytes,
                                    const BlockStats& stats) const {
  if (bytes == 0) return 0.0;
  const std::size_t segments =
      (bytes + p_.internal_segment_bytes - 1) / p_.internal_segment_bytes;
  return static_cast<double>(bytes) / p_.internal_copy_bandwidth_Bps *
             block_factor(stats) +
         static_cast<double>(segments) * p_.per_segment_overhead_s;
}

double CostModel::internal_staging_time(std::size_t bytes,
                                        const BlockStats& stats) const {
  if (bytes == 0) return 0.0;
  return staging_base_time(bytes, stats) + capacity_penalty_time(bytes);
}

double CostModel::internal_contiguous_copy_time(std::size_t bytes) const {
  if (bytes == 0) return 0.0;
  const std::size_t segments =
      (bytes + p_.internal_segment_bytes - 1) / p_.internal_segment_bytes;
  return static_cast<double>(bytes) / p_.internal_copy_bandwidth_Bps *
             block_factor_contiguous() +
         static_cast<double>(segments) * p_.per_segment_overhead_s;
}

// ---------------------------------------------------------------------------
// Charge-atom emission
// ---------------------------------------------------------------------------
//
// Every composition below is defined by the atom sequence it emits; the
// scheduler derives the observable Timing.  The serial schedule of each
// sequence reproduces the closed forms this file used to hard-code —
// a serial run's finish is its start plus the left-to-right sum of its
// durations, which is the association the old expressions used
// (DESIGN.md §2.8 gives the substitution argument; the seed BENCH
// goldens pin it down).

TransferCharges CostModel::eager_charges(std::size_t bytes,
                                         const BlockStats& stats) const {
  const bool noncontig = stats.block_count > 1;
  TransferCharges c;
  c.eager = true;
  c.local.push_back({ChargeAtom::call_overhead, p_.send_overhead_s, 0});
  if (noncontig) {
    // The capacity penalty is structurally zero here: the eager limit
    // is capped by the staging capacity, so an eager message always
    // fits — exactly the paper's §4.5 mechanism.
    c.local.push_back({ChargeAtom::cpu_pack, staging_base_time(bytes, stats),
                       bytes});
    c.local.push_back(
        {ChargeAtom::capacity_penalty, capacity_penalty_time(bytes), 0});
  } else {
    c.local.push_back({ChargeAtom::internal_copy,
                       internal_contiguous_copy_time(bytes), bytes});
  }
  // Fire and forget: the NIC drains the staged buffer in the
  // background; the sender's CPU is already free.
  c.transit.push_back({ChargeAtom::injection, wire_time(bytes), bytes});
  c.transit.push_back({ChargeAtom::net_latency, p_.net_latency_s, 0});
  return c;
}

TransferCharges CostModel::rendezvous_charges(std::size_t bytes,
                                              const BlockStats& stats) const {
  const bool noncontig = stats.block_count > 1;
  TransferCharges c;
  c.eager = false;
  c.local.push_back({ChargeAtom::handshake, p_.rendezvous_handshake_s, 0});
  if (noncontig) {
    c.local.push_back({ChargeAtom::cpu_pack, staging_base_time(bytes, stats),
                       bytes});
    // Ref [2] hardware gathers straight from user memory: no staging
    // buffer, so the beyond-capacity penalty vanishes along with the
    // CPU occupancy of the wire atom.
    if (!p_.nic_gather)
      c.local.push_back(
          {ChargeAtom::capacity_penalty, capacity_penalty_time(bytes), 0});
  }
  // Without `nic_gather` this wire atom occupies the CPU too, so it
  // serializes behind the pack — the paper's central "no overlap"
  // observation (§2.3/§5), emerging from resource occupancy instead of
  // a hand-coded branch.
  c.local.push_back({ChargeAtom::wire, wire_time(bytes), bytes});
  c.transit.push_back({ChargeAtom::net_latency, p_.net_latency_s, 0});
  return c;
}

TransferCharges CostModel::rsend_charges(std::size_t bytes,
                                         const BlockStats& stats) const {
  const bool noncontig = stats.block_count > 1;
  TransferCharges c;
  c.eager = true;  // no rendezvous ack needed
  c.local.push_back({ChargeAtom::call_overhead, p_.send_overhead_s, 0});
  if (noncontig) {
    c.local.push_back({ChargeAtom::cpu_pack, staging_base_time(bytes, stats),
                       bytes});
    c.local.push_back(
        {ChargeAtom::capacity_penalty, capacity_penalty_time(bytes), 0});
  }
  c.local.push_back({ChargeAtom::wire, wire_time(bytes), bytes});
  c.transit.push_back({ChargeAtom::net_latency, p_.net_latency_s, 0});
  return c;
}

TransferCharges CostModel::bsend_charges(std::size_t bytes,
                                         const BlockStats& stats) const {
  TransferCharges c;
  c.eager = true;  // buffered sends never block on the receiver
  // Gather into the user-attached buffer (charged like the MPI pack
  // engine: paper §4.3 shows MPI_Pack ~= a user copy loop)...
  c.local.push_back({ChargeAtom::call_overhead, p_.send_overhead_s, 0});
  c.local.push_back({ChargeAtom::call_overhead, p_.bsend_overhead_s, 0});
  c.local.push_back({ChargeAtom::cpu_pack,
                     static_cast<double>(bytes) /
                         p_.bsend_copy_bandwidth_Bps * block_factor(stats),
                     bytes});
  // ...then the background transfer still runs through MPI's internal
  // machinery: another contiguous copy, the capacity penalty, and an
  // internal standard send that handshakes above the eager limit.
  // This is the modeled reason Bsend does not rescue large messages
  // (§4.2): the user-space buffer adds a copy without removing any.
  c.transit.push_back({ChargeAtom::internal_copy,
                       internal_contiguous_copy_time(bytes), bytes});
  c.transit.push_back(
      {ChargeAtom::capacity_penalty, capacity_penalty_time(bytes), 0});
  c.transit.push_back({ChargeAtom::handshake,
                       is_eager(bytes) ? 0.0 : p_.rendezvous_handshake_s, 0});
  c.transit.push_back({ChargeAtom::injection, wire_time(bytes), bytes});
  c.transit.push_back({ChargeAtom::net_latency, p_.net_latency_s, 0});
  return c;
}

ChargeSeq CostModel::recv_charges(std::size_t bytes,
                                  const BlockStats& recv_stats, bool eager,
                                  bool unexpected) const {
  ChargeSeq seq;
  seq.push_back({ChargeAtom::match, p_.recv_overhead_s, 0});
  // Eager copy-out happens only for *unexpected* messages (those that
  // landed in MPI's buffer before the receive was posted); an expected
  // eager message is delivered straight into the user buffer.
  if (eager && unexpected)
    seq.push_back({ChargeAtom::internal_copy,
                   internal_contiguous_copy_time(bytes), bytes});
  if (recv_stats.block_count > 1) {  // scatter to the receive layout
    seq.push_back(
        {ChargeAtom::cpu_pack, staging_base_time(bytes, recv_stats), bytes});
    seq.push_back(
        {ChargeAtom::capacity_penalty, capacity_penalty_time(bytes), 0});
  }
  return seq;
}

TransferCharges CostModel::put_charges(std::size_t bytes,
                                       const BlockStats& origin_stats) const {
  const bool noncontig = origin_stats.block_count > 1;
  const double rma_wire =
      bytes == 0 ? 0.0
                 : static_cast<double>(bytes) * contention_ /
                       (p_.net_bandwidth_Bps * p_.put_bandwidth_factor);
  const double extra =
      bytes > p_.internal_buffer_bytes
          ? static_cast<double>(bytes - p_.internal_buffer_bytes) /
                p_.net_bandwidth_Bps * p_.rma_large_penalty
          : 0.0;
  TransferCharges c;
  c.eager = false;
  c.local.push_back({ChargeAtom::call_overhead, p_.put_overhead_s, 0});
  if (noncontig) {
    c.local.push_back(
        {ChargeAtom::cpu_pack, staging_base_time(bytes, origin_stats), bytes});
    c.local.push_back(
        {ChargeAtom::capacity_penalty, capacity_penalty_time(bytes), 0});
  }
  // Injection at the RMA-specific rate; the profile's large-message RMA
  // penalty rides as extra wire occupancy so it cannot overlap it.
  c.transit.push_back({ChargeAtom::injection, rma_wire, bytes});
  if (extra > 0.0) c.transit.push_back({ChargeAtom::wire, extra, 0});
  c.transit.push_back({ChargeAtom::net_latency, p_.net_latency_s, 0});
  return c;
}

TransferCharges CostModel::get_charges(std::size_t bytes,
                                       const BlockStats& target_stats) const {
  const bool noncontig = target_stats.block_count > 1;
  const double rma_wire =
      bytes == 0 ? 0.0
                 : static_cast<double>(bytes) * contention_ /
                       (p_.net_bandwidth_Bps * p_.put_bandwidth_factor);
  const double extra =
      bytes > p_.internal_buffer_bytes
          ? static_cast<double>(bytes - p_.internal_buffer_bytes) /
                p_.net_bandwidth_Bps * p_.rma_large_penalty
          : 0.0;
  // Mirror of put: request goes out, target-side gather, data comes
  // back.  The response serializes on the *target's* NIC, which the
  // per-rank ledgers do not track (documented limitation: only
  // sender-side injections contend).
  TransferCharges c;
  c.eager = false;
  c.local.push_back({ChargeAtom::call_overhead, p_.put_overhead_s, 0});
  c.transit.push_back({ChargeAtom::net_latency, p_.net_latency_s, 0});
  if (noncontig) {
    c.transit.push_back(
        {ChargeAtom::cpu_pack, staging_base_time(bytes, target_stats), bytes});
    c.transit.push_back(
        {ChargeAtom::capacity_penalty, capacity_penalty_time(bytes), 0});
  }
  c.transit.push_back({ChargeAtom::wire, rma_wire, bytes});
  if (extra > 0.0) c.transit.push_back({ChargeAtom::wire, extra, 0});
  c.transit.push_back({ChargeAtom::net_latency, p_.net_latency_s, 0});
  return c;
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

CostModel::Timing CostModel::realize(double start,
                                     const TransferCharges& charges,
                                     NicGate gate,
                                     std::vector<PlacedCharge>* placed) const {
  const NicCapabilities caps = capabilities();
  const ScheduleResult local =
      schedule_sequence(start, charges.local, caps, gate, placed);
  const ScheduleResult transit = schedule_sequence(
      local.finish, charges.transit, caps,
      local.gate_used ? NicGate{} : gate, placed);
  // A message that emitted no NIC atom must still release its FIFO slot.
  if (gate.active() && !local.gate_used && !transit.gate_used)
    gate.ledger->skip(gate.ticket);
  return {local.finish, transit.finish, charges.eager};
}

CostModel::Timing CostModel::eager_timing(
    double ts, std::size_t bytes, const BlockStats& send_stats, NicGate gate,
    std::vector<PlacedCharge>* placed) const {
  return realize(ts, eager_charges(bytes, send_stats), gate, placed);
}

CostModel::Timing CostModel::rendezvous_timing(
    double sender_ready, double recv_ready, std::size_t bytes,
    const BlockStats& send_stats, NicGate gate,
    std::vector<PlacedCharge>* placed) const {
  return realize(std::max(sender_ready, recv_ready),
                 rendezvous_charges(bytes, send_stats), gate, placed);
}

CostModel::Timing CostModel::rsend_timing(
    double ts, std::size_t bytes, const BlockStats& send_stats, NicGate gate,
    std::vector<PlacedCharge>* placed) const {
  return realize(ts, rsend_charges(bytes, send_stats), gate, placed);
}

CostModel::Timing CostModel::bsend_timing(
    double ts, std::size_t bytes, const BlockStats& send_stats, NicGate gate,
    std::vector<PlacedCharge>* placed) const {
  return realize(ts, bsend_charges(bytes, send_stats), gate, placed);
}

double CostModel::recv_completion(double recv_ready, double arrival,
                                  std::size_t bytes,
                                  const BlockStats& recv_stats, bool eager,
                                  std::vector<PlacedCharge>* placed) const {
  const bool unexpected = recv_ready > arrival;
  const auto seq = recv_charges(bytes, recv_stats, eager, unexpected);
  return schedule_sequence(std::max(recv_ready, arrival), seq, capabilities(),
                           {}, placed)
      .finish;
}

CostModel::Timing CostModel::put_timing(
    double t_origin, std::size_t bytes, const BlockStats& origin_stats,
    NicGate gate, std::vector<PlacedCharge>* placed) const {
  return realize(t_origin, put_charges(bytes, origin_stats), gate, placed);
}

CostModel::Timing CostModel::get_timing(
    double t_origin, std::size_t bytes, const BlockStats& target_stats,
    NicGate gate, std::vector<PlacedCharge>* placed) const {
  return realize(t_origin, get_charges(bytes, target_stats), gate, placed);
}

}  // namespace minimpi
