#include "minimpi/net/machine_profile.hpp"

#include "minimpi/base/error.hpp"

namespace minimpi {
namespace {

/// Baseline: Stampede2 Skylake + Omni-Path + Intel MPI (paper figure 1).
/// Peak fabric bandwidth ~12.5 GB/s (100 Gb/s Omni-Path); minimum
/// ping-pong ~6 us; copying slowdown ~3x; derived-type degradation
/// beyond a few tens of MB.
MachineProfile make_skx_impi() {
  MachineProfile p;
  p.name = "skx-impi";
  p.description = "Stampede2 dual-Skylake, Omni-Path, Intel MPI (fig. 1)";
  p.net_latency_s = 1.1e-6;
  p.net_bandwidth_Bps = 12.3e9;
  p.send_overhead_s = 0.6e-6;
  p.recv_overhead_s = 0.6e-6;
  p.packet_bytes = 4096;
  p.per_packet_overhead_s = 5e-9;
  p.eager_limit_bytes = 64 * 1024;
  // Large enough that crossing into rendezvous costs more than the eager
  // copy it replaces: the per-byte dip at the eager limit (paper S4.5).
  p.rendezvous_handshake_s = 8.0e-6;
  p.internal_copy_bandwidth_Bps = 6.0e9;
  p.internal_segment_bytes = 512 * 1024;
  p.per_segment_overhead_s = 2.0e-6;
  p.internal_buffer_bytes = 32u * 1024 * 1024;
  p.large_msg_penalty = 3.0;
  p.copy_bandwidth_Bps = 6.0e9;
  p.warm_copy_factor = 2.5;
  p.cache_bytes = 16u * 1024 * 1024;
  p.per_call_overhead_s = 2.5e-8;
  p.copy_block_overhead_bytes = 24.0;
  p.fence_cost_s = 1.2e-5;
  p.put_bandwidth_factor = 0.9;
  p.put_overhead_s = 1.5e-6;
  p.rma_large_penalty = 1.5;
  p.bsend_overhead_s = 1.0e-6;
  p.bsend_copy_bandwidth_Bps = 6.0e9;
  p.nic_gather = false;
  p.link_contention_factor = 0.0;  // §4.7: no degradation observed
  return p;
}

/// Stampede2 Skylake + MVAPICH2 (paper figure 2): same hardware, smaller
/// eager limit, markedly slower one-sided puts (paper §4.4 item 2).
MachineProfile make_skx_mvapich2() {
  MachineProfile p = make_skx_impi();
  p.name = "skx-mvapich2";
  p.description = "Stampede2 dual-Skylake, Omni-Path, MVAPICH2 (fig. 2)";
  p.eager_limit_bytes = 16 * 1024;
  p.rendezvous_handshake_s = 6.0e-6;
  p.large_msg_penalty = 3.5;
  p.fence_cost_s = 1.5e-5;
  p.put_bandwidth_factor = 0.25;
  p.rma_large_penalty = 2.0;
  return p;
}

/// Lonestar5 Cray XC40 + Aries + Cray MPICH (paper figure 3): lower peak
/// bandwidth (~8 GB/s in the figure), small eager limit, and one-sided
/// transfers that stay on par with derived types at large sizes
/// (paper §4.8).
MachineProfile make_ls5_cray() {
  MachineProfile p;
  p.name = "ls5-cray";
  p.description = "Lonestar5 Cray XC40, Aries, Cray MPICH (fig. 3)";
  p.net_latency_s = 1.3e-6;
  p.net_bandwidth_Bps = 7.8e9;
  p.send_overhead_s = 0.7e-6;
  p.recv_overhead_s = 0.7e-6;
  p.packet_bytes = 4096;
  p.per_packet_overhead_s = 5e-9;
  p.eager_limit_bytes = 8 * 1024;
  p.rendezvous_handshake_s = 6.0e-6;
  p.internal_copy_bandwidth_Bps = 3.9e9;
  p.internal_segment_bytes = 512 * 1024;
  p.per_segment_overhead_s = 2.0e-6;
  p.internal_buffer_bytes = 32u * 1024 * 1024;
  p.large_msg_penalty = 2.5;
  p.copy_bandwidth_Bps = 3.9e9;
  p.warm_copy_factor = 2.5;
  p.cache_bytes = 16u * 1024 * 1024;
  p.per_call_overhead_s = 2.5e-8;
  p.copy_block_overhead_bytes = 24.0;
  p.fence_cost_s = 0.8e-5;
  p.put_bandwidth_factor = 0.95;
  p.put_overhead_s = 1.2e-6;
  p.rma_large_penalty = 0.0;  // Cray RMA keeps up at large sizes
  p.bsend_overhead_s = 1.0e-6;
  p.bsend_copy_bandwidth_Bps = 3.9e9;
  p.nic_gather = false;
  p.link_contention_factor = 0.0;  // §4.7: no degradation observed
  return p;
}

/// Stampede2 KNL + Intel MPI (paper figure 4): identical fabric to the
/// SKX partition but a much weaker core, so every scheme that builds a
/// send buffer in software is hampered (paper §4.8).
MachineProfile make_knl_impi() {
  MachineProfile p = make_skx_impi();
  p.name = "knl-impi";
  p.description = "Stampede2 Knights Landing, Omni-Path, Intel MPI (fig. 4)";
  p.send_overhead_s = 2.0e-6;
  p.recv_overhead_s = 2.0e-6;
  // The slow core also runs the protocol engine: the handshake must
  // still exceed the (expensive) eager copy at the 64 KiB limit.
  p.rendezvous_handshake_s = 2.0e-5;
  p.copy_bandwidth_Bps = 1.5e9;
  p.internal_copy_bandwidth_Bps = 1.5e9;
  p.bsend_copy_bandwidth_Bps = 1.5e9;
  p.per_call_overhead_s = 8.0e-8;
  p.fence_cost_s = 2.5e-5;
  p.put_overhead_s = 4.0e-6;
  return p;
}

}  // namespace

const MachineProfile& MachineProfile::skx_impi() {
  static const MachineProfile p = make_skx_impi();
  return p;
}
const MachineProfile& MachineProfile::skx_mvapich2() {
  static const MachineProfile p = make_skx_mvapich2();
  return p;
}
const MachineProfile& MachineProfile::ls5_cray() {
  static const MachineProfile p = make_ls5_cray();
  return p;
}
const MachineProfile& MachineProfile::knl_impi() {
  static const MachineProfile p = make_knl_impi();
  return p;
}

const std::vector<std::string>& MachineProfile::names() {
  static const std::vector<std::string> v = {"skx-impi", "skx-mvapich2",
                                             "ls5-cray", "knl-impi"};
  return v;
}

const MachineProfile& MachineProfile::by_name(const std::string& name) {
  if (name == "skx-impi") return skx_impi();
  if (name == "skx-mvapich2") return skx_mvapich2();
  if (name == "ls5-cray") return ls5_cray();
  if (name == "knl-impi") return knl_impi();
  throw Error(ErrorClass::invalid_arg, "unknown machine profile: " + name);
}

}  // namespace minimpi
