#include "minimpi/net/timeline.hpp"

#include <algorithm>

namespace minimpi {

Resource resource_of(ChargeAtom a) noexcept {
  switch (a) {
    case ChargeAtom::cpu_pack:
    case ChargeAtom::internal_copy:
    case ChargeAtom::call_overhead:
    case ChargeAtom::match:
    case ChargeAtom::capacity_penalty:
      return Resource::cpu;
    case ChargeAtom::injection:
    case ChargeAtom::wire:
      return Resource::nic;
    case ChargeAtom::handshake:
    case ChargeAtom::fence:
    case ChargeAtom::net_latency:
      return Resource::none;
  }
  return Resource::none;
}

std::string_view to_string(ChargeAtom a) noexcept {
  switch (a) {
    case ChargeAtom::cpu_pack: return "cpu_pack";
    case ChargeAtom::internal_copy: return "internal_copy";
    case ChargeAtom::call_overhead: return "call_overhead";
    case ChargeAtom::handshake: return "handshake";
    case ChargeAtom::injection: return "injection";
    case ChargeAtom::wire: return "wire";
    case ChargeAtom::fence: return "fence";
    case ChargeAtom::match: return "match";
    case ChargeAtom::capacity_penalty: return "capacity_penalty";
    case ChargeAtom::net_latency: return "net_latency";
  }
  return "?";
}

std::string_view to_string(Resource r) noexcept {
  switch (r) {
    case Resource::cpu: return "cpu";
    case Resource::nic: return "nic";
    case Resource::none: return "-";
  }
  return "?";
}

bool occupies_cpu(ChargeAtom a, const NicCapabilities& caps) noexcept {
  if (resource_of(a) == Resource::cpu) return true;
  // Without NIC gather support the CPU babysits wire serialization —
  // the paper's central "nothing overlaps pack and wire" observation.
  // `injection` drains an already-staged buffer and never needs it.
  return a == ChargeAtom::wire && !caps.nic_gather;
}

bool occupies_nic(ChargeAtom a) noexcept {
  return resource_of(a) == Resource::nic;
}

// ---------------------------------------------------------------------------
// NicLedger
// ---------------------------------------------------------------------------

std::uint64_t NicLedger::ticket() {
  if (!enabled_) return 0;
  std::lock_guard lk(m_);
  return next_ticket_++;
}

double NicLedger::inject(std::uint64_t ticket, double ready, double seconds) {
  if (!enabled_) return ready;
  std::unique_lock lk(m_);
  cv_.wait(lk, [&] { return resolved_ == ticket; });
  // FIFO: this injection starts once the queue ahead of it has drained.
  // `max` keeps the inert case exact: an idle NIC returns `ready`
  // bit-identically.
  const double start = std::max(ready, busy_until_);
  busy_until_ = start + seconds;
  ++resolved_;
  cv_.notify_all();
  return start;
}

void NicLedger::skip(std::uint64_t ticket) {
  if (!enabled_) return;
  std::unique_lock lk(m_);
  cv_.wait(lk, [&] { return resolved_ == ticket; });
  ++resolved_;
  cv_.notify_all();
}

double NicLedger::busy_until() const {
  std::lock_guard lk(m_);
  return busy_until_;
}

std::uint64_t NicLedger::resolved() const {
  std::lock_guard lk(m_);
  return resolved_;
}

void NicLedger::preload(double busy_until) {
  std::lock_guard lk(m_);
  busy_until_ = busy_until;
}

// ---------------------------------------------------------------------------
// schedule_sequence
// ---------------------------------------------------------------------------

namespace {

struct Occupancy {
  bool cpu = false;
  bool nic = false;
  [[nodiscard]] bool empty() const noexcept { return !cpu && !nic; }
  [[nodiscard]] bool intersects(const Occupancy& o) const noexcept {
    return (cpu && o.cpu) || (nic && o.nic);
  }
};

}  // namespace

namespace {

/// Total NIC occupancy of the run a gated atom opens: the atom itself
/// plus the immediately following atoms that keep occupying the NIC
/// (e.g. a put's injection followed by its large-message wire
/// penalty).  The ledger reservation must cover all of it, or a later
/// injection could start inside this one's tail.
double gated_nic_seconds(std::span<const Charge> seq, std::size_t i) {
  double total = 0.0;
  for (; i < seq.size() && occupies_nic(seq[i].atom); ++i)
    total += seq[i].seconds;
  return total;
}

}  // namespace

ScheduleResult schedule_sequence(double start, std::span<const Charge> seq,
                                 const NicCapabilities& caps, NicGate gate,
                                 std::vector<PlacedCharge>* placed) {
  double free_cpu = start;
  double free_nic = start;
  // A new run may overlap the previous one (disjoint resources) but
  // never *precede* it: the wire of a send cannot start before the
  // call that produces the data has begun.  Vacuous in every serial
  // chain (runs there split only at joins, whose finish bounds the
  // next start anyway), so the bit-exact degeneration is untouched.
  double prev_start = start;

  // The current serial run: consecutive atoms with intersecting
  // occupancy accumulate into one left-to-right sum added to the run's
  // start, so a fully serial chain computes `start + (d1 + d2 + ...)`
  // — the exact association of the closed forms this scheduler
  // replaced (DESIGN.md §2.8).
  Occupancy run_occ;
  double run_start = start;
  double run_acc = 0.0;
  bool run_active = false;
  bool gate_used = false;

  const auto flush = [&] {
    if (!run_active) return;
    const double f = run_start + run_acc;
    if (run_occ.cpu) free_cpu = f;
    if (run_occ.nic) free_nic = f;
    run_active = false;
  };

  for (std::size_t i = 0; i < seq.size(); ++i) {
    const Charge& c = seq[i];
    Occupancy occ;
    occ.cpu = occupies_cpu(c.atom, caps);
    occ.nic = occupies_nic(c.atom);

    double s;
    double f;
    if (occ.empty()) {
      // Join point: starts when everything so far has finished,
      // everything after it waits.
      flush();
      s = std::max(free_cpu, free_nic);
      f = s + c.seconds;
      free_cpu = f;
      free_nic = f;
    } else {
      const bool wants_gate = gate.active() && occ.nic && !gate_used;
      if (run_active && !wants_gate && occ.intersects(run_occ)) {
        // Serial: extend the run.
        s = run_start + run_acc;
        run_occ.cpu |= occ.cpu;
        run_occ.nic |= occ.nic;
        run_acc += c.seconds;
        f = run_start + run_acc;
      } else {
        // Overlap (disjoint resources) or a gated injection: a new run
        // starting at this atom's own resources' free time (but never
        // before the previous atom started).
        flush();
        s = occ.cpu && occ.nic ? std::max(free_cpu, free_nic)
            : occ.cpu          ? free_cpu
                               : free_nic;
        s = std::max(s, prev_start);
        if (wants_gate) {
          // Reserve the run's whole NIC occupancy, not just this
          // atom's share, so later injections queue behind its tail.
          s = gate.ledger->inject(gate.ticket, s,
                                  gated_nic_seconds(seq, i));
          gate_used = true;
        }
        run_occ = occ;
        run_start = s;
        run_acc = c.seconds;
        run_active = true;
        f = run_start + run_acc;
      }
    }
    prev_start = s;
    if (placed != nullptr)
      placed->push_back({c.atom, resource_of(c.atom), s, f, c.bytes});
  }
  flush();
  return {std::max(free_cpu, free_nic), gate_used};
}

}  // namespace minimpi
