#pragma once
/// \file pool.hpp
/// \brief Per-universe object pools: intrusive-refcount handles with
/// free-list recycling for the per-message runtime objects.
///
/// The messaging hot path used to pay one heap round-trip per object
/// per message: `make_shared<Envelope>` on every send, a fresh
/// `Request::State` on every nonblocking call.  At 1k ranks those
/// allocations (and the frees racing them on the same carrier thread)
/// dominate the simulator's wall clock — the virtual clocks themselves
/// are free.  An `ObjectPool<T>` keeps every node it ever constructed
/// and hands them out through `PoolRef<T>` handles; when the last
/// handle drops, the node is `reset()` (fields cleared, buffer
/// *capacities kept*) and pushed on the free list.  Steady-state
/// messaging therefore does zero heap allocation: the pool grows to
/// the peak number of simultaneously-live objects during warm-up and
/// then recycles forever.
///
/// Why this is invisible to the model (DESIGN.md §2.12): a recycled
/// node is observationally identical to a fresh one — `reset()`
/// restores every field `T` declares to its default-constructed value
/// — and handing out *which* node is a host-memory identity the
/// simulation never observes (no virtual-time decision reads an
/// object's address).  The substitution is purely mechanical, so all
/// golden artifacts stay byte-identical.
///
/// Threading: a pool and all handles into it belong to one universe's
/// carrier thread (rank bodies are fibers on that thread; the
/// `--jobs N` executor gives every universe its own world and pools).
/// The refcount is a plain integer — cross-thread handle sharing is
/// not supported and not needed.
///
/// `T` must derive from `Poolable<T>` and provide `void reset()`
/// restoring all fields to their default-constructed values (keeping
/// container capacities is encouraged — that is the point).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "minimpi/base/sanitize.hpp"

namespace minimpi {

template <class T>
class ObjectPool;

template <class T>
class PoolRef;

/// \brief CRTP base giving `T` its intrusive refcount and home-pool
/// backpointer.  The two fields are pool bookkeeping, not object
/// state: `reset()` implementations must leave them alone (they are
/// private, so they cannot touch them anyway).
template <class T>
class Poolable {
 private:
  friend class ObjectPool<T>;
  friend class PoolRef<T>;
  std::uint32_t pool_refs_ = 0;
  ObjectPool<T>* pool_home_ = nullptr;  ///< null: standalone, delete on drop
};

/// \brief Single-pointer smart handle to a pooled `T`.  Copying bumps
/// the intrusive refcount; dropping the last handle returns the node
/// to its home pool (or deletes it when the node was made standalone,
/// e.g. by a unit test constructing envelopes without a pool).
template <class T>
class PoolRef {
 public:
  PoolRef() noexcept = default;
  PoolRef(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Take shared ownership of `p` (which may be standalone or from a
  /// pool).  The pool's `acquire()` is the usual way to get a first
  /// handle; this constructor also lets tests wrap a `new T`.
  explicit PoolRef(T* p) noexcept : p_(p) {
    if (p_ != nullptr) ++hook(p_).pool_refs_;
  }

  PoolRef(const PoolRef& o) noexcept : p_(o.p_) {
    if (p_ != nullptr) ++hook(p_).pool_refs_;
  }
  PoolRef(PoolRef&& o) noexcept : p_(std::exchange(o.p_, nullptr)) {}

  PoolRef& operator=(const PoolRef& o) noexcept {
    PoolRef(o).swap(*this);
    return *this;
  }
  PoolRef& operator=(PoolRef&& o) noexcept {
    PoolRef(std::move(o)).swap(*this);
    return *this;
  }
  PoolRef& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~PoolRef() { reset(); }

  void reset() noexcept {
    T* p = std::exchange(p_, nullptr);
    if (p != nullptr && --hook(p).pool_refs_ == 0) release(p);
  }

  void swap(PoolRef& o) noexcept { std::swap(p_, o.p_); }

  [[nodiscard]] T* get() const noexcept { return p_; }
  T& operator*() const noexcept { return *p_; }
  T* operator->() const noexcept { return p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  friend bool operator==(const PoolRef& a, const PoolRef& b) noexcept {
    return a.p_ == b.p_;
  }
  friend bool operator==(const PoolRef& a, std::nullptr_t) noexcept {
    return a.p_ == nullptr;
  }

 private:
  static Poolable<T>& hook(T* p) noexcept {
    return *static_cast<Poolable<T>*>(p);
  }
  static void release(T* p) noexcept;

  T* p_ = nullptr;
};

/// \brief Free-list pool owning every node it ever constructed.
/// `acquire()` pops a recycled node (a *hit*) or constructs a new one
/// (a *miss* — the growth path); nodes come back automatically when
/// their last `PoolRef` drops.  The hit/miss counters are the raw
/// material of the perf-counter layer's allocs-per-message figure.
template <class T>
class ObjectPool {
 public:
  explicit ObjectPool(std::size_t reserve_nodes = 0) {
    nodes_.reserve(reserve_nodes);
    free_.reserve(reserve_nodes);
    for (std::size_t i = 0; i < reserve_nodes; ++i) {
      nodes_.push_back(std::make_unique<T>());
      hook(nodes_.back().get()).pool_home_ = this;
      free_.push_back(nodes_.back().get());
      MINIMPI_ASAN_POISON(nodes_.back().get(), sizeof(T));
    }
  }
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Parked nodes are poisoned (see `recycle`); their destructors must
  /// be able to read their own fields, so clear the shadow first.
  ~ObjectPool() {
    for (const auto& n : nodes_) MINIMPI_ASAN_UNPOISON(n.get(), sizeof(T));
  }

  /// A fresh handle to a clean node.  Recycled nodes were `reset()` on
  /// their way into the free list, so hits and misses are
  /// indistinguishable to the caller.
  [[nodiscard]] PoolRef<T> acquire() {
    ++acquires_;
    T* p;
    if (!free_.empty()) {
      p = free_.back();
      free_.pop_back();
      MINIMPI_ASAN_UNPOISON(p, sizeof(T));
    } else {
      ++misses_;
      nodes_.push_back(std::make_unique<T>());
      p = nodes_.back().get();
      hook(p).pool_home_ = this;
    }
    return PoolRef<T>(p);
  }

  /// Total `acquire()` calls (for envelopes: the message count).
  [[nodiscard]] std::uint64_t acquires() const noexcept { return acquires_; }
  /// Acquires that had to construct a node — the heap allocations the
  /// pool did *not* avoid.  Steady state: stays flat at the warm-up
  /// peak while `acquires()` keeps climbing.
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  /// Nodes owned (live + free): the high-water mark of simultaneously
  /// live objects.
  [[nodiscard]] std::size_t capacity() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t free_count() const noexcept {
    return free_.size();
  }

 private:
  friend class PoolRef<T>;
  static Poolable<T>& hook(T* p) noexcept {
    return *static_cast<Poolable<T>*>(p);
  }
  /// Under ASan the parked node's whole footprint is poisoned: any
  /// touch through a stale handle between here and the next `acquire`
  /// is a hard use-after-poison report instead of silent revival.
  void recycle(T* p) {
    p->reset();
    free_.push_back(p);
    MINIMPI_ASAN_POISON(p, sizeof(T));
  }

  std::vector<std::unique_ptr<T>> nodes_;
  std::vector<T*> free_;
  std::uint64_t acquires_ = 0;
  std::uint64_t misses_ = 0;
};

template <class T>
void PoolRef<T>::release(T* p) noexcept {
  ObjectPool<T>* home = hook(p).pool_home_;
  if (home != nullptr)
    home->recycle(p);
  else
    delete p;
}

}  // namespace minimpi
