#pragma once
/// \file sanitize.hpp
/// \brief AddressSanitizer feature gate + poison/unpoison macros.
///
/// The fiber scheduler (coop.cpp) and the object pools (pool.hpp) need
/// explicit ASan cooperation: ucontext stack switches look like wild
/// stack-pointer jumps without `__sanitizer_*_switch_fiber`
/// annotations, and free-list recycling silently revives stale
/// references unless the parked object's memory is poisoned.  Both
/// compile to nothing in ordinary builds; `-DNCSEND_SANITIZE=address`
/// (see the top-level CMakeLists) turns them on everywhere.

#if defined(__SANITIZE_ADDRESS__)
#define MINIMPI_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MINIMPI_ASAN 1
#endif
#endif

#if defined(MINIMPI_ASAN)
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
/// Mark [addr, addr+size) unreadable: any touch is a hard ASan report
/// ("use-after-poison") until the region is unpoisoned.
#define MINIMPI_ASAN_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define MINIMPI_ASAN_UNPOISON(addr, size) \
  ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define MINIMPI_ASAN_POISON(addr, size) ((void)(addr), (void)(size))
#define MINIMPI_ASAN_UNPOISON(addr, size) ((void)(addr), (void)(size))
#endif
