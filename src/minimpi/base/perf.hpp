#pragma once
/// \file perf.hpp
/// \brief Host-side performance counters for one universe run.
///
/// The hot-path overhaul (pooled envelopes, inline charge sequences,
/// recycled request states) is a claim about *host* work per simulated
/// message — so the engine counts it instead of asserting it.  A
/// `PerfCounters` snapshot is filled by `Universe::run` on exit (pool
/// hit/miss statistics, fiber context switches, mailbox match probes)
/// and surfaced as extra columns of the two engine-throughput
/// artifacts (`BENCH_engine_scale.json`, `BENCH_universe_scale.json`).
/// None of these numbers feed back into the model: virtual clocks are
/// computed the same whether anyone is counting or not.
///
/// Attach a sink via `UniverseOptions::perf`; successive runs
/// *accumulate* into it (`operator+=` semantics), so a multi-rep bench
/// leg reports totals over the leg.

#include <cstdint>

namespace minimpi {

struct PerfCounters {
  /// Envelopes acquired — one per point-to-point message the universe
  /// carried (collectives ride clock barriers, not envelopes).
  std::uint64_t messages = 0;
  /// Envelope-pool acquires that had to heap-allocate a node (pool
  /// growth).  Steady state: bounded by peak in-flight messages.
  std::uint64_t envelope_allocs = 0;
  /// Request states acquired (one per nonblocking operation).
  std::uint64_t requests = 0;
  /// Request-state-pool acquires that had to heap-allocate a node.
  std::uint64_t request_allocs = 0;
  /// Fiber resumes on the cooperative scheduler (each is one
  /// carrier->fiber context-switch pair).
  std::uint64_t fiber_switches = 0;
  /// Mailbox bucket probes: 1 per addressed lookup, plus one per
  /// bucket scanned by a wildcard receive.
  std::uint64_t match_probes = 0;

  void add(const PerfCounters& o) noexcept {
    messages += o.messages;
    envelope_allocs += o.envelope_allocs;
    requests += o.requests;
    request_allocs += o.request_allocs;
    fiber_switches += o.fiber_switches;
    match_probes += o.match_probes;
  }

  /// Hot-path heap allocations per message: the figure the pools are
  /// judged by (→ 0 as pools warm; was ≥ 3 before them).
  [[nodiscard]] double allocs_per_message() const noexcept {
    return messages == 0
               ? 0.0
               : static_cast<double>(envelope_allocs + request_allocs) /
                     static_cast<double>(messages);
  }
  [[nodiscard]] double probes_per_message() const noexcept {
    return messages == 0 ? 0.0
                         : static_cast<double>(match_probes) /
                               static_cast<double>(messages);
  }
};

}  // namespace minimpi
