#pragma once
/// \file buffer.hpp
/// \brief 64-byte-aligned message buffers, with an optional "phantom" mode.
///
/// The paper's harness allocates all buffers outside the timing loop with
/// 64-byte alignment and instantiates pages by zeroing (§3.2).  `Buffer`
/// reproduces that.  In addition it supports a *phantom* mode used by the
/// benchmark sweeps: a phantom buffer records its size but owns no
/// storage, letting the virtual-time simulation sweep to 10^9-byte
/// messages without touching gigabytes of host memory.  All data-movement
/// helpers in the library are phantom-aware: they charge the cost model
/// unconditionally and move bytes only when both sides are real.

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>

#include "minimpi/base/error.hpp"

namespace minimpi {

/// Alignment used for every allocation, matching the paper's setup.
inline constexpr std::size_t buffer_alignment = 64;

/// \brief Owning, aligned, optionally phantom byte buffer.
class Buffer {
 public:
  Buffer() = default;

  /// \brief Allocate `n` zeroed bytes (real) or record a size (phantom).
  ///
  /// Zeroing real memory instantiates pages outside any timing loop,
  /// exactly as the paper does.
  static Buffer allocate(std::size_t n, bool real = true) {
    Buffer b;
    b.size_ = n;
    if (real && n > 0) {
      void* p = std::aligned_alloc(buffer_alignment, round_up(n));
      require(p != nullptr, ErrorClass::internal, "aligned_alloc failed");
      std::memset(p, 0, round_up(n));
      b.data_.reset(static_cast<std::byte*>(p));
    }
    return b;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool is_phantom() const noexcept {
    return data_ == nullptr && size_ > 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// \brief Raw pointer; null for phantom buffers.
  [[nodiscard]] std::byte* data() noexcept { return data_.get(); }
  [[nodiscard]] const std::byte* data() const noexcept { return data_.get(); }

  /// \brief Typed view; throws for phantom buffers (real data expected).
  template <class T>
  [[nodiscard]] std::span<T> as() {
    require(!is_phantom(), ErrorClass::invalid_arg,
            "typed access to phantom buffer");
    return {reinterpret_cast<T*>(data_.get()), size_ / sizeof(T)};
  }
  template <class T>
  [[nodiscard]] std::span<const T> as() const {
    require(!is_phantom(), ErrorClass::invalid_arg,
            "typed access to phantom buffer");
    return {reinterpret_cast<const T*>(data_.get()), size_ / sizeof(T)};
  }

  /// \brief Zero the contents (no-op for phantom buffers).
  void zero() noexcept {
    if (data_) std::memset(data_.get(), 0, round_up(size_));
  }

 private:
  static std::size_t round_up(std::size_t n) noexcept {
    return (n + buffer_alignment - 1) / buffer_alignment * buffer_alignment;
  }

  struct FreeDeleter {
    void operator()(std::byte* p) const noexcept { std::free(p); }
  };

  std::unique_ptr<std::byte, FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace minimpi
