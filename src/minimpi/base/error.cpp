#include "minimpi/base/error.hpp"

namespace minimpi {

std::string_view to_string(ErrorClass ec) noexcept {
  switch (ec) {
    case ErrorClass::internal: return "MM_ERR_INTERNAL";
    case ErrorClass::invalid_arg: return "MM_ERR_ARG";
    case ErrorClass::invalid_type: return "MM_ERR_TYPE";
    case ErrorClass::invalid_rank: return "MM_ERR_RANK";
    case ErrorClass::invalid_tag: return "MM_ERR_TAG";
    case ErrorClass::truncate: return "MM_ERR_TRUNCATE";
    case ErrorClass::buffer: return "MM_ERR_BUFFER";
    case ErrorClass::rma_sync: return "MM_ERR_RMA_SYNC";
    case ErrorClass::rma_range: return "MM_ERR_RMA_RANGE";
    case ErrorClass::type_mismatch: return "MM_ERR_TYPE_MISMATCH";
    case ErrorClass::not_supported: return "MM_ERR_NOT_SUPPORTED";
    case ErrorClass::resource: return "MM_ERR_RESOURCE";
    case ErrorClass::deadlock: return "MM_ERR_DEADLOCK";
  }
  return "MM_ERR_UNKNOWN";
}

}  // namespace minimpi
