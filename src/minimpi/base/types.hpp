#pragma once
/// \file types.hpp
/// \brief Fundamental identifiers and constants shared across minimpi.

#include <cstddef>
#include <cstdint>
#include <limits>

namespace minimpi {

using Rank = int;
using Tag = int;

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr Rank any_source = -1;
inline constexpr Tag any_tag = -1;

/// Largest user tag (MPI guarantees at least 32767; we are more generous).
inline constexpr Tag tag_ub = std::numeric_limits<int>::max() / 2;

/// Basic (predefined) datatypes of the subset.  The study sends doubles,
/// but the datatype engine is exercised with all of these in tests.
enum class BasicType : std::uint8_t {
  byte_,
  char_,
  int32,
  int64,
  uint32,
  uint64,
  float_,
  double_,
  packed,  ///< MPI_PACKED: raw bytes produced by the pack engine
};

/// \brief Size in bytes of a basic type (MPI_Type_size for predefined types).
constexpr std::size_t basic_size(BasicType t) noexcept {
  switch (t) {
    case BasicType::byte_:
    case BasicType::char_:
    case BasicType::packed: return 1;
    case BasicType::int32:
    case BasicType::uint32:
    case BasicType::float_: return 4;
    case BasicType::int64:
    case BasicType::uint64:
    case BasicType::double_: return 8;
  }
  return 0;
}

/// \brief Stable name for diagnostics.
constexpr const char* basic_name(BasicType t) noexcept {
  switch (t) {
    case BasicType::byte_: return "byte";
    case BasicType::char_: return "char";
    case BasicType::int32: return "int32";
    case BasicType::int64: return "int64";
    case BasicType::uint32: return "uint32";
    case BasicType::uint64: return "uint64";
    case BasicType::float_: return "float";
    case BasicType::double_: return "double";
    case BasicType::packed: return "packed";
  }
  return "?";
}

/// \brief Map a C++ arithmetic type to its BasicType tag at compile time.
template <class T>
constexpr BasicType basic_type_of() noexcept {
  if constexpr (sizeof(T) == 1) return BasicType::byte_;
  else if constexpr (std::is_same_v<T, float>) return BasicType::float_;
  else if constexpr (std::is_same_v<T, double>) return BasicType::double_;
  else if constexpr (std::is_same_v<T, std::int32_t>) return BasicType::int32;
  else if constexpr (std::is_same_v<T, std::uint32_t>) return BasicType::uint32;
  else if constexpr (std::is_same_v<T, std::int64_t>) return BasicType::int64;
  else if constexpr (std::is_same_v<T, std::uint64_t>) return BasicType::uint64;
  else return BasicType::byte_;
}

/// Completion information for a receive, mirroring MPI_Status.
struct Status {
  Rank source = any_source;
  Tag tag = any_tag;
  std::size_t count_bytes = 0;  ///< bytes of type data actually received

  /// \brief MPI_Get_count for a given element size; returns element count.
  [[nodiscard]] std::size_t count(std::size_t elem_size) const noexcept {
    return elem_size == 0 ? 0 : count_bytes / elem_size;
  }
};

}  // namespace minimpi
