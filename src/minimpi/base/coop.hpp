#pragma once
/// \file coop.hpp
/// \brief Cooperative rank tasks: stackful fibers, the run-to-blocking
/// scheduler, and the wait-queue primitive the runtime blocks on.
///
/// Every simulated rank used to be an OS thread; a 1024-rank universe
/// meant 1024 kernel threads fighting over a handful of cores, with
/// every `Mailbox` match and `ClockBarrier` round paying a
/// condition-variable wakeup and a full scheduler trip.  This file
/// replaces that with *cooperative* execution: each rank body becomes a
/// resumable task (a ucontext stackful fiber with its own guard-paged
/// stack) multiplexed over one carrier thread per `Universe::run`.  The
/// carrier is the bounded worker pool's unit — the experiment executor
/// still runs whole universes on `--jobs N` workers, and each worker
/// drives its own scheduler.
///
/// Why one carrier and not M: the simulator's results are *virtual*
/// clocks, already proven independent of host interleaving (DESIGN.md
/// §2.5/§2.10).  Serial scheduling order is therefore the spec:
/// spawn-order round-robin, run each task to its next blocking point,
/// wake exactly the tasks an event readies.  Concurrency of rank
/// bodies is an executor detail the model never observes, so the
/// cheapest correct executor — no locks contended, no kernel wakeups,
/// an event-driven ready queue instead of per-step full-rank drains —
/// wins.
///
/// Blocking vocabulary: runtime objects (mailboxes, barriers, RMA
/// epochs, NIC ledgers, bsend pools) wait on a `WaitQueue`.  Its API is
/// deliberately condition-variable shaped (`wait(lock, pred)` /
/// `notify_all()`) so converting a wait site is a type change, not a
/// rewrite; on a fiber it parks the task on the queue and switches to
/// the scheduler, while plain OS threads (raw `NicLedger` users in
/// tests) fall back to a real condition variable.
///
/// Deadlock is detected, not hung on: when the ready queue drains and
/// blocked tasks remain, the scheduler forces one full re-poll round;
/// if no wait predicate flipped and no notify arrived, the blocked
/// tasks are cancelled (unwinding their stacks) and `Universe::run`
/// reports a typed `MM_ERR_DEADLOCK` — or the first real rank error,
/// if one caused the pile-up.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include <ucontext.h>

namespace minimpi::coop {

class Scheduler;

/// \brief One resumable rank task: a ucontext fiber with a private
/// mmap'd stack (guard page at the low end).  Internal to the
/// scheduler; exposed only so `WaitQueue` can park and wake tasks.
struct Fiber {
  enum class State { ready, running, blocked, done };

  Scheduler* sched = nullptr;
  int index = 0;                      ///< spawn order (the rank id)
  ucontext_t ctx{};
  void* stack_base = nullptr;         ///< mmap base (guard page here)
  std::size_t stack_span = 0;         ///< mapped bytes incl. guard
  std::function<void()> body;
  std::exception_ptr error;           ///< what the body threw, if anything
  bool cancelled = false;             ///< unwound by deadlock cancellation
  State state = State::ready;
  class WaitQueue* waiting_on = nullptr;
  /// Index of this fiber in `waiting_on->fibers_` / the scheduler's
  /// blocked list — O(1) swap-remove bookkeeping, so waking one fiber
  /// (or sweeping all blocked ones) never rescans either vector.
  std::size_t wq_pos = 0;
  std::size_t blocked_pos = 0;
  /// ASan fake-stack handle saved while this fiber is switched out
  /// (null when not running under ASan, or before the first switch).
  void* asan_fake = nullptr;
};

/// \brief Power-of-two ring buffer of ready fibers.  The ready queue
/// is the single hottest scheduler structure (two touches per fiber
/// resume); a `std::deque` pays chunk-map indirection and, worse,
/// allocates/frees chunks as the queue breathes at 1k ranks.  The
/// ring reuses one flat allocation forever and grows (rarely —
/// capacity is bounded by the fiber count) by re-linearizing.
class ReadyRing {
 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void push(Fiber* f) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = f;
    ++size_;
  }

  Fiber* pop() noexcept {
    Fiber* f = buf_[head_];
    head_ = (head_ + 1) & mask_;
    --size_;
    return f;
  }

 private:
  void grow() {
    std::vector<Fiber*> next(buf_.size() * 2);
    for (std::size_t i = 0; i < size_; ++i)
      next[i] = buf_[(head_ + i) & mask_];
    buf_ = std::move(next);
    mask_ = buf_.size() - 1;
    head_ = 0;
  }

  std::vector<Fiber*> buf_ = std::vector<Fiber*>(64);
  std::size_t mask_ = 63;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// \brief The event queue every runtime blocking site waits on.
///
/// Condition-variable-compatible surface: `wait(lk, pred)` blocks until
/// `pred()` holds, `notify_all()` wakes every waiter.  On a fiber the
/// wait releases the lock, parks the task, and switches to the
/// scheduler (so no carrier-thread self-deadlock is possible); a plain
/// OS thread uses the embedded condition variable.  A single queue may
/// serve both kinds of waiter over its lifetime, but fiber bookkeeping
/// is only ever touched from the owning carrier thread.
class WaitQueue {
 public:
  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  /// Block until `pred()` holds.  `lk` must be held; it is released
  /// while parked and re-acquired before re-checking the predicate.
  template <class Pred>
  void wait(std::unique_lock<std::mutex>& lk, Pred pred);

  /// Lock-free variant for objects whose state only fibers touch
  /// (e.g. a rendezvous ack inside an `Envelope`): no mutex needed
  /// because nothing preempts a fiber between its predicate check and
  /// its park.  Must be called on a fiber.
  template <class Pred>
  void wait(Pred pred);

  /// Wake every waiter: parked fibers move to their scheduler's ready
  /// queue, thread waiters get a condition-variable broadcast.
  void notify_all();

 private:
  friend class Scheduler;
  std::vector<Fiber*> fibers_;   ///< parked fibers (carrier thread only)
  std::condition_variable cv_;   ///< fallback for raw OS threads
};

/// \brief Run-to-blocking-point scheduler: multiplexes rank fibers
/// over the calling (carrier) thread in deterministic spawn order.
class Scheduler {
 public:
  /// Per-universe rank-task capacity.  Each task costs one fixed-size
  /// virtual stack mapping; the cap keeps a typo'd rank count from
  /// exhausting address mappings before anything useful fails.
  [[nodiscard]] static constexpr int max_tasks() noexcept { return 16384; }

  /// Default fiber stack: 512 KiB of lazily-committed pages plus a
  /// guard page.  Rank bodies are harness loops, not recursions —
  /// the deepest observed frames are well under one tenth of this.
  static constexpr std::size_t default_stack_bytes = 512 * 1024;

  explicit Scheduler(std::size_t stack_bytes = default_stack_bytes);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// The scheduler driving the calling thread, or null on a plain
  /// thread (then every wait falls back to condition variables).
  [[nodiscard]] static Scheduler* current() noexcept;

  /// Create one task.  Throws `Error(ErrorClass::resource)` when the
  /// task capacity is exceeded or a stack cannot be mapped.
  void spawn(std::function<void()> body);

  /// Drive every task to completion (or cancellation after a detected
  /// deadlock).  Task errors are collected, not thrown — inspect
  /// `first_error()` / `deadlocked()` afterwards.
  void run();

  /// First exception a task body threw, in completion order; null if
  /// every task finished clean.
  [[nodiscard]] std::exception_ptr first_error() const noexcept {
    return errors_.empty() ? nullptr : errors_.front();
  }
  /// True if the last `run()` had to cancel blocked tasks.
  [[nodiscard]] bool deadlocked() const noexcept { return deadlocked_; }
  /// How many tasks were blocked when the deadlock was declared.
  [[nodiscard]] int blocked_at_deadlock() const noexcept {
    return blocked_at_deadlock_;
  }

  /// Fiber resumes performed so far (each is one carrier→fiber context
  /// switch pair) — the perf-counter layer's switches figure.
  [[nodiscard]] std::uint64_t switches() const noexcept { return switches_; }

  /// Reschedule the running fiber at the ready-queue tail (cooperative
  /// poll loops: test / iprobe / waitany).
  void yield();

  /// Park the running fiber on `wq` until someone notifies it (or the
  /// scheduler force-wakes it; callers always re-check their predicate
  /// in a loop).
  void block_on(WaitQueue& wq);

 private:
  friend class WaitQueue;
  static void trampoline_entry();

  void make_ready(Fiber* f);
  void resume(Fiber* f);
  void switch_out(Fiber* f);
  int wake_all_blocked();

  std::size_t stack_bytes_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  ReadyRing ready_;
  /// Currently-blocked fibers (order immaterial; positions tracked in
  /// `Fiber::blocked_pos`).  The deadlock detector's forced re-poll
  /// rounds walk exactly this set instead of rescanning every fiber —
  /// O(blocked) per round instead of O(nranks).
  std::vector<Fiber*> blocked_;
  ucontext_t main_ctx_{};
  Fiber* running_ = nullptr;
  /// ASan bookkeeping for the carrier side of every context switch:
  /// the carrier's fake-stack handle while a fiber runs, and the
  /// carrier stack's bounds (learned on the first fiber entry) that
  /// departing fibers must name as their switch target.
  void* asan_main_fake_ = nullptr;
  const void* asan_carrier_bottom_ = nullptr;
  std::size_t asan_carrier_size_ = 0;
  int live_ = 0;
  std::uint64_t switches_ = 0;
  /// Bumped by every `notify_all` that actually woke a fiber: the
  /// progress signal the deadlock detector compares across a forced
  /// re-poll round.
  std::uint64_t notify_events_ = 0;
  bool cancelling_ = false;
  bool deadlocked_ = false;
  int blocked_at_deadlock_ = 0;
  std::vector<std::exception_ptr> errors_;
};

/// Thrown into parked/yielding fibers to unwind their stacks after a
/// deadlock is declared; never escapes `Scheduler::run`.
struct Cancelled {};

/// Cooperative yield that is safe anywhere: reschedules the fiber when
/// on one, yields the OS thread otherwise.  Poll loops
/// (`Request::test`, `iprobe`, `waitany`) call this so a spinning rank
/// cannot starve the carrier.
void yield_now();

// ---------------------------------------------------------------------------
// inline implementations
// ---------------------------------------------------------------------------

template <class Pred>
void WaitQueue::wait(std::unique_lock<std::mutex>& lk, Pred pred) {
  Scheduler* s = Scheduler::current();
  if (s == nullptr) {
    cv_.wait(lk, std::move(pred));
    return;
  }
  // Single carrier: nothing runs between the predicate check and the
  // park, so dropping the lock first cannot lose a wakeup — and keeps
  // the next fiber from self-deadlocking on the same mutex.
  while (!pred()) {
    lk.unlock();
    s->block_on(*this);
    lk.lock();
  }
}

template <class Pred>
void WaitQueue::wait(Pred pred) {
  while (!pred()) {
    Scheduler* s = Scheduler::current();
    if (s == nullptr)
      throw std::logic_error("coop::WaitQueue: lock-free wait off-fiber");
    s->block_on(*this);
  }
}

}  // namespace minimpi::coop
