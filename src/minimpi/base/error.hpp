#pragma once
/// \file error.hpp
/// \brief Error codes and exception type for the minimpi substrate.
///
/// minimpi mirrors the MPI error-class model: every failure carries a
/// stable error class plus a human-readable explanation.  Unlike the MPI
/// C API (which returns int codes), minimpi throws `minimpi::Error`,
/// which is the idiomatic C++ surface for a library whose callers are
/// expected to treat any MPI failure as fatal for the affected
/// communicator (the default MPI_ERRORS_ARE_FATAL world view).

#include <stdexcept>
#include <string>
#include <string_view>

namespace minimpi {

/// Stable error classes, modeled on the MPI_ERR_* classes the paper's
/// harness can run into.
enum class ErrorClass {
  internal,        ///< bug in minimpi itself
  invalid_arg,     ///< bad argument (count < 0, null buffer with count > 0, ...)
  invalid_type,    ///< datatype not committed / not a valid handle
  invalid_rank,    ///< rank outside communicator
  invalid_tag,     ///< tag outside valid range
  truncate,        ///< receive buffer too small for matched message
  buffer,          ///< bsend: attached buffer absent or exhausted
  rma_sync,        ///< one-sided call outside an access epoch
  rma_range,       ///< put/get outside the target window
  type_mismatch,   ///< send/recv type signatures incompatible (debug checking)
  not_supported,   ///< feature intentionally outside the subset
  resource,        ///< host resource exhausted (rank-task capacity, stacks)
  deadlock,        ///< every live rank task blocked on the others
};

/// \brief Convert an error class to its stable name (e.g. "MM_ERR_TRUNCATE").
std::string_view to_string(ErrorClass ec) noexcept;

/// \brief Exception thrown by every minimpi entry point on failure.
class Error : public std::runtime_error {
 public:
  Error(ErrorClass ec, const std::string& what_arg)
      : std::runtime_error(std::string(to_string(ec)) + ": " + what_arg),
        class_(ec) {}

  [[nodiscard]] ErrorClass error_class() const noexcept { return class_; }

 private:
  ErrorClass class_;
};

/// \brief Throw `Error(ec, msg)` unless `cond` holds.
inline void require(bool cond, ErrorClass ec, const std::string& msg) {
  if (!cond) throw Error(ec, msg);
}

}  // namespace minimpi
