#include "minimpi/base/coop.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <thread>

#include "minimpi/base/error.hpp"
#include "minimpi/base/sanitize.hpp"

namespace minimpi::coop {

namespace {

thread_local Scheduler* tl_current = nullptr;

// --- ASan fiber-switch protocol -------------------------------------------
// Every swapcontext must be bracketed: `start_switch` before leaving a
// context (saving the departing context's fake-stack handle and naming
// the destination stack), `finish_switch` first thing on arrival
// (restoring the arriving context's fake stack).  A context that will
// never run again passes a null save slot so its fake stack is freed.
// Without these, ASan interprets the stack-pointer jump as corruption
// and false-positives (or crashes) on the first fiber resume.

#if defined(MINIMPI_ASAN)
inline void asan_start_switch(void** save, const void* target_bottom,
                              std::size_t target_size) {
  __sanitizer_start_switch_fiber(save, target_bottom, target_size);
}
inline void asan_finish_switch(void* restore, const void** from_bottom,
                               std::size_t* from_size) {
  __sanitizer_finish_switch_fiber(restore, from_bottom, from_size);
}
#else
inline void asan_start_switch(void**, const void*, std::size_t) {}
inline void asan_finish_switch(void*, const void**, std::size_t*) {}
#endif

std::size_t page_size() {
  static const std::size_t p = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return p;
}

std::size_t round_up(std::size_t n, std::size_t unit) {
  return (n + unit - 1) / unit * unit;
}

/// RAII: publish `s` as the carrier thread's scheduler for the
/// duration of `run()` (restoring any outer value, so a rank body
/// that itself drives a nested universe would still resolve waits
/// against the innermost scheduler).
struct CurrentGuard {
  Scheduler* saved;
  explicit CurrentGuard(Scheduler* s) : saved(tl_current) { tl_current = s; }
  ~CurrentGuard() { tl_current = saved; }
};

#ifndef MAP_STACK
#define MAP_STACK 0
#endif

}  // namespace

Scheduler* Scheduler::current() noexcept { return tl_current; }

Scheduler::Scheduler(std::size_t stack_bytes)
    : stack_bytes_(round_up(std::max(stack_bytes, page_size()), page_size())) {}

Scheduler::~Scheduler() {
  for (const auto& f : fibers_) {
    if (f->stack_base != nullptr) {
      MINIMPI_ASAN_UNPOISON(f->stack_base, f->stack_span);
      munmap(f->stack_base, f->stack_span);
    }
  }
}

void Scheduler::spawn(std::function<void()> body) {
  require(static_cast<int>(fibers_.size()) < max_tasks(),
          ErrorClass::resource,
          "cooperative scheduler: task capacity exceeded (" +
              std::to_string(max_tasks()) + " rank tasks)");
  auto f = std::make_unique<Fiber>();
  f->sched = this;
  f->index = static_cast<int>(fibers_.size());
  f->body = std::move(body);

  // Stack layout: one PROT_NONE guard page at the low end (stacks grow
  // down), then the usable span.  Pages commit lazily, so a 1k-rank
  // universe costs virtual address space, not resident memory.
  const std::size_t span = stack_bytes_ + page_size();
  void* base = mmap(nullptr, span, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  require(base != MAP_FAILED, ErrorClass::resource,
          "cooperative scheduler: fiber stack mmap failed at task " +
              std::to_string(f->index));
  if (mprotect(base, page_size(), PROT_NONE) != 0) {
    munmap(base, span);
    throw Error(ErrorClass::resource,
                "cooperative scheduler: fiber guard page mprotect failed");
  }
  f->stack_base = base;
  f->stack_span = span;

  if (getcontext(&f->ctx) != 0) {
    throw Error(ErrorClass::resource,
                "cooperative scheduler: getcontext failed");
  }
  f->ctx.uc_stack.ss_sp = static_cast<char*>(base) + page_size();
  f->ctx.uc_stack.ss_size = stack_bytes_;
  f->ctx.uc_link = &main_ctx_;  // returning from the trampoline resumes run()
  makecontext(&f->ctx, &Scheduler::trampoline_entry, 0);

  ready_.push(f.get());
  ++live_;
  fibers_.push_back(std::move(f));
}

void Scheduler::trampoline_entry() {
  Scheduler* s = tl_current;
  Fiber* f = s->running_;
  // First arrival on this stack: no fake stack to restore yet (null
  // handle), but the out-params tell us where we came *from* — the
  // carrier's stack, whose bounds every departing fiber must name.
  asan_finish_switch(f->asan_fake, &s->asan_carrier_bottom_,
                     &s->asan_carrier_size_);
  try {
    f->body();
  } catch (const Cancelled&) {
    f->cancelled = true;
  } catch (...) {
    f->error = std::current_exception();
  }
  f->state = Fiber::State::done;
  // Falling off the trampoline switches to uc_link == main_ctx_.  This
  // context never runs again: a null save slot tells ASan to free its
  // fake stack.
  asan_start_switch(nullptr, s->asan_carrier_bottom_, s->asan_carrier_size_);
}

void Scheduler::resume(Fiber* f) {
  f->state = Fiber::State::running;
  running_ = f;
  ++switches_;
  asan_start_switch(&asan_main_fake_, f->ctx.uc_stack.ss_sp,
                    f->ctx.uc_stack.ss_size);
  swapcontext(&main_ctx_, &f->ctx);
  asan_finish_switch(asan_main_fake_, nullptr, nullptr);
  running_ = nullptr;
}

void Scheduler::switch_out(Fiber* f) {
  asan_start_switch(&f->asan_fake, asan_carrier_bottom_, asan_carrier_size_);
  swapcontext(&f->ctx, &main_ctx_);
  asan_finish_switch(f->asan_fake, nullptr, nullptr);
}

void Scheduler::make_ready(Fiber* f) {
  if (f->state == Fiber::State::blocked) {
    // O(1) swap-remove from the blocked set; the caller has already
    // detached the fiber from its wait queue (or is about to clear it).
    Fiber* last = blocked_.back();
    blocked_[f->blocked_pos] = last;
    last->blocked_pos = f->blocked_pos;
    blocked_.pop_back();
  }
  f->waiting_on = nullptr;
  f->state = Fiber::State::ready;
  ready_.push(f);
}

int Scheduler::wake_all_blocked() {
  int woken = 0;
  while (!blocked_.empty()) {
    Fiber* f = blocked_.back();
    if (f->waiting_on != nullptr) {
      auto& parked = f->waiting_on->fibers_;
      Fiber* last = parked.back();
      parked[f->wq_pos] = last;
      last->wq_pos = f->wq_pos;
      parked.pop_back();
    }
    make_ready(f);
    ++woken;
  }
  return woken;
}

void Scheduler::run() {
  CurrentGuard guard(this);
  bool forced = false;
  std::uint64_t events_at_force = 0;
  while (live_ > 0) {
    if (ready_.empty()) {
      // Every live task is blocked.  Force one full re-poll round:
      // each task re-checks its wait predicate (a missed notify turns
      // into a wasted poll, never a hang).  If the previous forced
      // round changed nothing — no notify fired, everyone re-parked —
      // the wait graph is cyclic: cancel the blocked tasks so their
      // stacks unwind, and report the deadlock.
      if (forced && notify_events_ == events_at_force && !cancelling_) {
        deadlocked_ = true;
        cancelling_ = true;
        blocked_at_deadlock_ = wake_all_blocked();
        continue;
      }
      forced = true;
      events_at_force = notify_events_;
      wake_all_blocked();
      continue;
    }
    Fiber* f = ready_.pop();
    resume(f);
    if (f->state == Fiber::State::done) {
      --live_;
      if (f->error != nullptr) errors_.push_back(f->error);
      // The stack is dead; release the mapping eagerly so long-lived
      // schedulers at high rank counts do not hold 1k stacks resident.
      // ASan shadow for the span must be cleared first — the pages may
      // be re-mmap'd by anyone, who would inherit stale poison.
      MINIMPI_ASAN_UNPOISON(f->stack_base, f->stack_span);
      munmap(f->stack_base, f->stack_span);
      f->stack_base = nullptr;
    }
  }
  cancelling_ = false;
}

void Scheduler::yield() {
  Fiber* f = running_;
  require(f != nullptr, ErrorClass::internal, "coop yield outside a fiber");
  f->state = Fiber::State::ready;
  ready_.push(f);
  switch_out(f);
  if (cancelling_) throw Cancelled{};
}

void Scheduler::block_on(WaitQueue& wq) {
  Fiber* f = running_;
  require(f != nullptr, ErrorClass::internal,
          "coop blocking wait outside a fiber");
  if (cancelling_) throw Cancelled{};
  f->wq_pos = wq.fibers_.size();
  wq.fibers_.push_back(f);
  f->blocked_pos = blocked_.size();
  blocked_.push_back(f);
  f->waiting_on = &wq;
  f->state = Fiber::State::blocked;
  switch_out(f);
  if (cancelling_) throw Cancelled{};
}

void WaitQueue::notify_all() {
  if (!fibers_.empty()) {
    for (Fiber* f : fibers_) {
      f->sched->make_ready(f);
      ++f->sched->notify_events_;
    }
    fibers_.clear();
  }
  cv_.notify_all();
}

void yield_now() {
  Scheduler* s = Scheduler::current();
  if (s != nullptr)
    s->yield();
  else
    std::this_thread::yield();
}

}  // namespace minimpi::coop
