#include "ncsend/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ncsend {

TimingStats summarize(std::span<const double> samples) {
  TimingStats s;
  s.samples = static_cast<int>(samples.size());
  if (samples.empty()) return s;
  double sum = 0.0;
  s.min = samples[0];
  s.max = samples[0];
  for (const double x : samples) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  const double mean_all = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (const double x : samples) var += (x - mean_all) * (x - mean_all);
  var /= static_cast<double>(samples.size());
  s.stddev = std::sqrt(var);

  // Floor sigma at the timer's relative precision: virtual clocks carry
  // ~1-ulp noise from subtracting nearby doubles, and real MPI_Wtime has
  // finite resolution; neither should count as "more than one standard
  // deviation from the average".
  const double sigma_floor = std::abs(mean_all) * 1e-9 + 1e-15;
  double kept_sum = 0.0;
  int kept = 0;
  for (const double x : samples) {
    if (std::abs(x - mean_all) <= s.stddev + sigma_floor) {
      kept_sum += x;
      ++kept;
    }
  }
  s.rejected = s.samples - kept;
  s.mean = kept > 0 ? kept_sum / kept : mean_all;
  return s;
}

}  // namespace ncsend
