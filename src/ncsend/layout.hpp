#pragma once
/// \file layout.hpp
/// \brief Non-contiguous data layouts: what the study actually sends.
///
/// A `Layout` names a set of double-precision elements inside a host
/// array.  The paper's canonical case is the stride-2 vector ("the real
/// parts of a complex array"); the library also provides the other
/// motifs the introduction motivates — multigrid coarsening (stride 2^k),
/// irregular FEM boundary transfers, and 2-D subarray faces — so the
/// same eight send schemes can be compared on realistic workloads.
///
/// Each layout can describe itself as a derived datatype in several
/// *styles* (vector, subarray, indexed), because the paper treats
/// "vector type" and "subarray" as distinct schemes for the same bytes.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "minimpi/datatype/datatype.hpp"
#include "minimpi/datatype/pack.hpp"

namespace ncsend {

/// Which MPI type constructor to describe the layout with.
enum class TypeStyle {
  best,      ///< the layout's natural constructor
  vector,    ///< MPI_Type_vector (regular layouts only)
  subarray,  ///< MPI_Type_create_subarray
  indexed,   ///< MPI_Type_create_indexed_block / indexed
};

class Layout {
 public:
  /// \brief `count` doubles, contiguous (the reference case).
  static Layout contiguous(std::size_t count);

  /// \brief The canonical strided layout: `nblocks` blocks of `blocklen`
  /// doubles, block starts `stride` doubles apart.  The paper's default
  /// is blocklen = 1, stride = 2.
  static Layout strided(std::size_t nblocks, std::size_t blocklen = 1,
                        std::size_t stride = 2);

  /// \brief Every 2^level-th point of a fine grid (multigrid coarsening).
  static Layout multigrid(std::size_t coarse_points, int level);

  /// \brief Irregularly spaced single elements, as in an FEM boundary
  /// transfer: `count` distinct sorted positions inside a host array of
  /// `footprint` doubles, pseudo-randomly placed (deterministic seed).
  static Layout fem_boundary(std::size_t count, std::size_t footprint,
                             std::uint64_t seed = 42);

  /// \brief A `subrows` x `subcols` face of a `rows` x `cols` row-major
  /// array, anchored at (row0, col0).
  static Layout subarray2d(std::size_t rows, std::size_t cols,
                           std::size_t subrows, std::size_t subcols,
                           std::size_t row0, std::size_t col0);

  /// \brief Explicit block starts (element offsets) with fixed blocklen.
  static Layout indexed(std::vector<std::size_t> block_starts,
                        std::size_t blocklen);

  // --- queries -------------------------------------------------------------
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Doubles in one message.
  [[nodiscard]] std::size_t element_count() const noexcept { return elems_; }
  /// Message payload in bytes.
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return elems_ * sizeof(double);
  }
  /// Host-array length (doubles) the layout lives in.
  [[nodiscard]] std::size_t footprint_elems() const noexcept {
    return footprint_;
  }
  [[nodiscard]] bool is_contiguous() const noexcept;
  /// True if the layout is expressible as a single MPI_Type_vector.
  [[nodiscard]] bool regular() const noexcept { return regular_; }

  /// \brief Committed datatype describing one whole message (send count
  /// 1).  Throws MM_ERR_ARG for styles the layout cannot express.
  [[nodiscard]] minimpi::Datatype datatype(
      TypeStyle style = TypeStyle::best) const;

  /// \brief Flattened-block statistics (drives the cost model).
  [[nodiscard]] minimpi::BlockStats stats() const {
    return datatype().block_stats();
  }

  /// \brief Enumerate message elements: `fn(message_index, source_elem)`
  /// in typemap order.  Used to fill and verify buffers.
  template <class Fn>
  void for_each_element(Fn&& fn) const {
    std::size_t k = 0;
    minimpi::for_each_block(
        datatype(), 1, [&](std::ptrdiff_t off, std::size_t nbytes) {
          const auto first = static_cast<std::size_t>(off) / sizeof(double);
          for (std::size_t e = 0; e < nbytes / sizeof(double); ++e)
            fn(k++, first + e);
        });
  }

 private:
  enum class Kind { contiguous, strided, indexed, subarray2d };

  Layout() = default;

  Kind kind_ = Kind::contiguous;
  std::string name_;
  std::size_t elems_ = 0;
  std::size_t footprint_ = 0;
  bool regular_ = false;

  // strided parameters
  std::size_t nblocks_ = 0, blocklen_ = 0, stride_ = 0;
  // indexed parameters
  std::vector<std::size_t> block_starts_;
  // subarray parameters
  std::size_t rows_ = 0, cols_ = 0, subrows_ = 0, subcols_ = 0, row0_ = 0,
              col0_ = 0;
};

}  // namespace ncsend
