#pragma once
/// \file collective.hpp
/// \brief Collective algorithms as schedules of peer-addressed
/// transfers on the N-rank pattern engine.
///
/// The runtime's built-in collectives (comm.hpp: bcast / reduce /
/// allreduce / gather) charge one closed-form `ceil(log2 N)` tree cost
/// and sit entirely outside the scheme/pattern/timeline machinery.
/// This subsystem rebuilds the four workhorse collectives — allreduce,
/// bcast, allgather, reduce-scatter — as *schedules*: per-round lists
/// of peer-addressed transfers, each executed through a real
/// `TransferScheme` on the pattern engine's per-rank CPU/NIC
/// timelines.  The algorithm's cost is not asserted, it *emerges* from
/// resource occupancy, exactly as §4.7 contention does — so the
/// textbook small-message-tree vs large-message-ring crossover shows
/// up per machine profile in `BENCH_collective_sweep.json`.
///
/// Three pluggable topologies:
///   * `tree` — binomial tree: ceil(log2 N) rounds of full-vector
///     hops (reduce to rank 0 + scatter/bcast back).  Latency-optimal,
///     bandwidth-wasteful: K * B bytes cross the wire.
///   * `ring` — chunked ring pipeline: 2(N-1) rounds of B/N-byte
///     chunks for allreduce (reduce-scatter phase + allgather phase).
///     Bandwidth-optimal (2B(N-1)/N total), latency-heavy.
///   * `rd`   — recursive doubling: log2 N rounds of pairwise
///     exchange (power-of-two rank counts only; the spec parser
///     rejects anything else).  Rooted bcast has no doubling form and
///     degenerates to the binomial tree schedule.
///
/// The pattern axis spells it `collective(op:algo:N)` — e.g.
/// `collective(allreduce:ring:64)` — registered in
/// `CommPattern::by_name` like every other family.  A collective cell
/// runs, compiles, and replays through the same experiment-engine path
/// as halo or transpose cells (DESIGN.md §2.11).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ncsend/patterns/pattern.hpp"

namespace ncsend {
namespace coll {

enum class CollOp { allreduce, bcast, allgather, reduce_scatter };
enum class CollAlgo { tree, ring, rdouble };

std::string_view op_name(CollOp op);
std::string_view algo_name(CollAlgo algo);
std::optional<CollOp> op_by_name(std::string_view name);
std::optional<CollAlgo> algo_by_name(std::string_view name);

/// One directed hop of a collective schedule: `elems` doubles from
/// `src`'s working vector at `src_offset` to `dst`'s at `dst_offset`.
/// `combine` makes the receiver reduce (sum) into place instead of
/// copying — the difference between a reduction tree and a scatter.
struct CollTransfer {
  int src = 0;
  int dst = 0;
  std::size_t elems = 0;
  std::size_t src_offset = 0;
  std::size_t dst_offset = 0;
  bool combine = false;
};

/// \brief A collective algorithm as a round-indexed transfer schedule.
///
/// The schedule is *closed-form*: `send_of` / `recv_of` answer "what
/// does rank r do in round t" in O(1), so a 1024-rank ring never
/// materializes its ~2 million global transfers — each rank derives
/// only its own row, the same scalability trick the sparse `graph`
/// patterns use.  `round_transfers` (tests, `sends` flattening)
/// iterates ranks on demand.
///
/// Data model: every rank holds a working vector of `elems` doubles.
/// The vector is split into `nranks` chunks at `chunk_lo/chunk_hi`
/// boundaries (chunk c owns elements [c*elems/N, (c+1)*elems/N); empty
/// chunks are legal and simply produce no transfer).  Initial contents
/// and final expectations per op are defined by the engine
/// (collective_harness.cpp).
class CollectiveSchedule {
 public:
  CollectiveSchedule(CollOp op, CollAlgo algo, int nranks,
                     std::size_t elems);

  [[nodiscard]] CollOp op() const noexcept { return op_; }
  [[nodiscard]] CollAlgo algo() const noexcept { return algo_; }
  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] std::size_t elems() const noexcept { return elems_; }
  [[nodiscard]] int round_count() const noexcept { return rounds_; }

  /// Chunk boundaries in elements (chunk index in [0, nranks]).
  [[nodiscard]] std::size_t chunk_lo(int c) const noexcept {
    return static_cast<std::size_t>(c) * elems_ /
           static_cast<std::size_t>(nranks_);
  }
  [[nodiscard]] std::size_t chunk_hi(int c) const noexcept {
    return chunk_lo(c + 1);
  }

  /// Rank `rank`'s outgoing transfer in round `round`, if any.  Every
  /// schedule has at most one send and one receive per rank per round.
  [[nodiscard]] std::optional<CollTransfer> send_of(int rank,
                                                    int round) const;
  /// Rank `rank`'s incoming transfer in round `round`, if any —
  /// exactly `send_of(src, round)` of the peer that targets `rank`,
  /// derived independently (the mirror the digest verification pins).
  [[nodiscard]] std::optional<CollTransfer> recv_of(int rank,
                                                    int round) const;

  /// All transfers of one round (iterates ranks; tests and the
  /// pattern-layer `sends` flattening).
  [[nodiscard]] std::vector<CollTransfer> round_transfers(int round) const;

 private:
  CollOp op_;
  CollAlgo algo_;
  int nranks_;
  std::size_t elems_;
  int rounds_ = 0;
  int log2n_ = 0;  ///< ceil(log2 nranks)
};

/// \brief The `collective(op:algo:N)` pattern: one measurement cell is
/// a full N-rank collective whose step executes the whole schedule —
/// every round's transfers through real per-transfer `TransferScheme`s
/// — with its own engine (`run_collective_rank`) replacing the generic
/// exchange loop.
class CollectivePattern final : public CommPattern {
 public:
  CollectivePattern(CollOp op, CollAlgo algo, int nranks);

  [[nodiscard]] int nranks() const override { return nranks_; }
  [[nodiscard]] int concurrent_senders() const override { return 1; }
  [[nodiscard]] std::vector<Transfer> sends(int rank,
                                            const Layout& base) const override;
  [[nodiscard]] std::string cell_layout_name(
      const Layout& base) const override;
  [[nodiscard]] RunResult run(const minimpi::UniverseOptions& opts,
                              std::string_view scheme_name,
                              const Layout& base,
                              const HarnessConfig& cfg) const override;

  [[nodiscard]] CollOp op() const noexcept { return op_; }
  [[nodiscard]] CollAlgo algo() const noexcept { return algo_; }
  [[nodiscard]] CollectiveSchedule schedule(std::size_t elems) const {
    return CollectiveSchedule(op_, algo_, nranks_, elems);
  }

 private:
  CollOp op_;
  CollAlgo algo_;
  int nranks_;
};

/// \brief Spec parser + factory for the `collective(...)` registry
/// family: accepts `op:algo:N` (and bare defaults handled by the
/// caller).  Ops: allreduce, bcast, allgather, reduce-scatter.  Algos:
/// tree, ring, rd (rd requires N a power of two).  N in [2, 4096].
/// Returns null on malformed input (`CommPattern::by_name` raises
/// MM_ERR_ARG, so CLIs exit 2).
std::unique_ptr<CommPattern> make_collective_pattern(std::string_view args);

/// True for canonical `collective(...)` pattern ids.
bool is_collective_pattern_name(std::string_view pattern_name);

/// \brief The scheme legend the collective engine drives: the
/// message-mode schemes whose `start()` reads the live user buffer
/// (pipelined rounds re-stage data every hop).  Excluded: `reference`
/// (snapshots its payload once in `setup`), `rsend(v)` (receives are
/// posted per round, not pre-posted), `buffered` (the rank-wide bsend
/// pool cannot be sized for a round count that varies per cell), and
/// the RMA schemes (the engine's choreography is two-sided).
const std::vector<std::string>& collective_scheme_names();
bool collective_scheme_supported(std::string_view scheme);

/// \brief Schemes valid for every pattern in `patterns`: the full
/// pattern legend, intersected down to `collective_scheme_names()`
/// when any collective pattern is present (benches compose mixed
/// `--pattern` lists).
std::vector<std::string> schemes_for_patterns(
    const std::vector<std::string>& patterns);

/// \brief Per-rank body of one collective measurement, run inside
/// `Universe::run` on every rank: executes the schedule once per timed
/// step, verifies delivered values in functional runs and mirrored
/// schedule digests (via the typed int64 allreduce) in modeled runs.
/// Rank 0 writes the fused result to `*out`.
void run_collective_rank(minimpi::Comm& comm,
                         const CollectivePattern& pattern,
                         std::string_view scheme_name, const Layout& base,
                         const HarnessConfig& cfg, RunResult* out);

}  // namespace coll
}  // namespace ncsend
