/// \file collective.cpp
/// \brief Closed-form collective schedules, the `collective(...)` spec
/// parser, and the pattern-layer plumbing.
///
/// Every schedule below is written twice — `send_of` and `recv_of` are
/// derived independently from the round index — and the two derivations
/// must agree transfer-for-transfer.  Tests pin that mirror exhaustively
/// (test_collective_algorithms.cpp) and the modeled digest re-checks it
/// at every rank count a bench sweeps.

#include "ncsend/collectives/collective.hpp"

#include <algorithm>
#include <charconv>

#include "minimpi/minimpi.hpp"

namespace ncsend {
namespace coll {

namespace {

/// ceil(log2(n)) for n >= 1.
int ceil_log2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

std::string_view op_name(CollOp op) {
  switch (op) {
    case CollOp::allreduce: return "allreduce";
    case CollOp::bcast: return "bcast";
    case CollOp::allgather: return "allgather";
    case CollOp::reduce_scatter: return "reduce-scatter";
  }
  return "?";
}

std::string_view algo_name(CollAlgo algo) {
  switch (algo) {
    case CollAlgo::tree: return "tree";
    case CollAlgo::ring: return "ring";
    case CollAlgo::rdouble: return "rd";
  }
  return "?";
}

std::optional<CollOp> op_by_name(std::string_view name) {
  if (name == "allreduce") return CollOp::allreduce;
  if (name == "bcast") return CollOp::bcast;
  if (name == "allgather") return CollOp::allgather;
  if (name == "reduce-scatter") return CollOp::reduce_scatter;
  return std::nullopt;
}

std::optional<CollAlgo> algo_by_name(std::string_view name) {
  if (name == "tree") return CollAlgo::tree;
  if (name == "ring") return CollAlgo::ring;
  if (name == "rd") return CollAlgo::rdouble;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// CollectiveSchedule
// ---------------------------------------------------------------------------

CollectiveSchedule::CollectiveSchedule(CollOp op, CollAlgo algo, int nranks,
                                       std::size_t elems)
    : op_(op), algo_(algo), nranks_(nranks), elems_(elems) {
  minimpi::require(nranks >= 2, minimpi::ErrorClass::invalid_arg,
                   "collective schedule needs at least 2 ranks");
  // Rooted bcast has no recursive-doubling form: the butterfly needs
  // data on every rank to exchange.  It degenerates to the binomial
  // tree, which *is* the rooted half of the doubling butterfly.
  if (op_ == CollOp::bcast && algo_ == CollAlgo::rdouble)
    algo_ = CollAlgo::tree;
  minimpi::require(algo_ != CollAlgo::rdouble || is_pow2(nranks),
                   minimpi::ErrorClass::invalid_arg,
                   "recursive doubling needs a power-of-two rank count");
  log2n_ = ceil_log2(nranks_);
  switch (algo_) {
    case CollAlgo::tree:
      // bcast: K one-way rounds.  Everything else pays a down *and* an
      // up sweep: reduce+bcast (allreduce), gather+bcast (allgather),
      // reduce+scatter (reduce-scatter).
      rounds_ = op_ == CollOp::bcast ? log2n_ : 2 * log2n_;
      break;
    case CollAlgo::ring:
      switch (op_) {
        case CollOp::allreduce: rounds_ = 2 * (nranks_ - 1); break;
        case CollOp::allgather:
        case CollOp::reduce_scatter: rounds_ = nranks_ - 1; break;
        case CollOp::bcast:
          // Pipelined line: N segments ripple down N-1 hops; the last
          // segment leaves rank N-2 at round (N-2)+(N-1).
          rounds_ = 2 * nranks_ - 2;
          break;
      }
      break;
    case CollAlgo::rdouble:
      rounds_ = log2n_;
      break;
  }
}

std::optional<CollTransfer> CollectiveSchedule::send_of(int rank,
                                                        int round) const {
  if (rank < 0 || rank >= nranks_ || round < 0 || round >= rounds_)
    return std::nullopt;
  const int N = nranks_;
  const int K = log2n_;
  const auto make = [&](int src, int dst, std::size_t lo, std::size_t hi,
                        bool combine) -> std::optional<CollTransfer> {
    if (hi <= lo) return std::nullopt;
    return CollTransfer{src, dst, hi - lo, lo, lo, combine};
  };

  switch (algo_) {
    case CollAlgo::tree: {
      // Phase split: ops other than bcast run K "down" rounds (toward
      // rank 0) followed by K "up" rounds (away from rank 0).
      const bool down_phase = op_ != CollOp::bcast && round < K;
      if (down_phase) {
        const int mask = 1 << round;
        if ((rank & (2 * mask - 1)) != mask) return std::nullopt;
        const int dst = rank - mask;
        if (op_ == CollOp::allgather) {
          // Gather: forward the chunk range this rank has accumulated,
          // [chunk rank, chunk min(rank+mask, N)), at its own offsets.
          return make(rank, dst, chunk_lo(rank),
                      chunk_lo(std::min(rank + mask, N)), /*combine=*/false);
        }
        // Reduce: the full working vector, summed into the parent.
        return make(rank, dst, 0, elems_, /*combine=*/true);
      }
      // Up phase (bcast rounds, or the scatter half of reduce-scatter):
      // masks shrink so the tree fans out from rank 0.
      const int t = op_ == CollOp::bcast ? round : round - K;
      const int mask = 1 << (K - 1 - t);
      if ((rank & (2 * mask - 1)) != 0 || rank + mask >= N)
        return std::nullopt;
      const int dst = rank + mask;
      if (op_ == CollOp::reduce_scatter) {
        // Scatter: hand the subtree rooted at dst its chunk range.
        return make(rank, dst, chunk_lo(dst),
                    chunk_lo(std::min(dst + mask, N)), /*combine=*/false);
      }
      // bcast / the broadcast half of allreduce & allgather: full vector.
      return make(rank, dst, 0, elems_, /*combine=*/false);
    }

    case CollAlgo::ring: {
      if (op_ == CollOp::bcast) {
        // Pipelined line: rank r forwards segment (round - r) to r+1.
        if (rank > N - 2) return std::nullopt;
        const int seg = round - rank;
        if (seg < 0 || seg > N - 1) return std::nullopt;
        return make(rank, rank + 1, chunk_lo(seg), chunk_hi(seg),
                    /*combine=*/false);
      }
      // Reduce-scatter phase (combine) then allgather phase (copy).
      // The -1 shift in the RS chunk index makes rank r end the RS
      // phase owning fully reduced chunk r, which the AG phase then
      // circulates starting from each owner.
      const bool rs_phase =
          op_ == CollOp::reduce_scatter ||
          (op_ == CollOp::allreduce && round < N - 1);
      const int k = rs_phase ? round : (op_ == CollOp::allreduce
                                            ? round - (N - 1)
                                            : round);
      const int chunk = rs_phase ? (((rank - k - 1) % N) + N) % N
                                 : (((rank - k) % N) + N) % N;
      return make(rank, (rank + 1) % N, chunk_lo(chunk), chunk_hi(chunk),
                  /*combine=*/rs_phase);
    }

    case CollAlgo::rdouble: {
      switch (op_) {
        case CollOp::allreduce: {
          // Butterfly: exchange the full vector with the round's partner.
          const int partner = rank ^ (1 << round);
          return make(rank, partner, 0, elems_, /*combine=*/true);
        }
        case CollOp::allgather: {
          // This rank owns chunks [base, base + 2^t); send them all.
          const int mask = 1 << round;
          const int partner = rank ^ mask;
          const int base = rank & ~(mask - 1);
          return make(rank, partner, chunk_lo(base), chunk_lo(base + mask),
                      /*combine=*/false);
        }
        case CollOp::reduce_scatter: {
          // Halving: send the half of the active range containing the
          // partner, keep (and next round halve) the half containing us.
          const int dist = N >> (round + 1);
          const int partner = rank ^ dist;
          const int base = rank & ~(2 * dist - 1);
          const bool low = (rank & dist) == 0;
          const int lo_chunk = low ? base + dist : base;
          return make(rank, partner, chunk_lo(lo_chunk),
                      chunk_lo(lo_chunk + dist), /*combine=*/true);
        }
        case CollOp::bcast: break;  // rewritten to tree in the ctor
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<CollTransfer> CollectiveSchedule::recv_of(int rank,
                                                        int round) const {
  if (rank < 0 || rank >= nranks_ || round < 0 || round >= rounds_)
    return std::nullopt;
  const int N = nranks_;
  const int K = log2n_;
  const auto make = [&](int src, int dst, std::size_t lo, std::size_t hi,
                        bool combine) -> std::optional<CollTransfer> {
    if (hi <= lo) return std::nullopt;
    return CollTransfer{src, dst, hi - lo, lo, lo, combine};
  };

  switch (algo_) {
    case CollAlgo::tree: {
      const bool down_phase = op_ != CollOp::bcast && round < K;
      if (down_phase) {
        const int mask = 1 << round;
        if ((rank & (2 * mask - 1)) != 0 || rank + mask >= N)
          return std::nullopt;
        const int src = rank + mask;
        if (op_ == CollOp::allgather)
          return make(src, rank, chunk_lo(src),
                      chunk_lo(std::min(src + mask, N)), /*combine=*/false);
        return make(src, rank, 0, elems_, /*combine=*/true);
      }
      const int t = op_ == CollOp::bcast ? round : round - K;
      const int mask = 1 << (K - 1 - t);
      if ((rank & (2 * mask - 1)) != mask) return std::nullopt;
      const int src = rank - mask;
      if (op_ == CollOp::reduce_scatter)
        return make(src, rank, chunk_lo(rank),
                    chunk_lo(std::min(rank + mask, N)), /*combine=*/false);
      return make(src, rank, 0, elems_, /*combine=*/false);
    }

    case CollAlgo::ring: {
      if (op_ == CollOp::bcast) {
        if (rank < 1) return std::nullopt;
        const int seg = round - (rank - 1);
        if (seg < 0 || seg > N - 1) return std::nullopt;
        return make(rank - 1, rank, chunk_lo(seg), chunk_hi(seg),
                    /*combine=*/false);
      }
      const bool rs_phase =
          op_ == CollOp::reduce_scatter ||
          (op_ == CollOp::allreduce && round < N - 1);
      const int k = rs_phase ? round : (op_ == CollOp::allreduce
                                            ? round - (N - 1)
                                            : round);
      const int src = (rank + N - 1) % N;
      const int chunk = rs_phase ? (((src - k - 1) % N) + N) % N
                                 : (((src - k) % N) + N) % N;
      return make(src, rank, chunk_lo(chunk), chunk_hi(chunk),
                  /*combine=*/rs_phase);
    }

    case CollAlgo::rdouble: {
      switch (op_) {
        case CollOp::allreduce: {
          const int partner = rank ^ (1 << round);
          return make(partner, rank, 0, elems_, /*combine=*/true);
        }
        case CollOp::allgather: {
          const int mask = 1 << round;
          const int partner = rank ^ mask;
          const int pbase = partner & ~(mask - 1);
          return make(partner, rank, chunk_lo(pbase), chunk_lo(pbase + mask),
                      /*combine=*/false);
        }
        case CollOp::reduce_scatter: {
          const int dist = N >> (round + 1);
          const int partner = rank ^ dist;
          const int base = rank & ~(2 * dist - 1);
          // We receive the half containing *us* (the partner sent the
          // half containing its partner — which is this rank's half).
          const bool low = (rank & dist) == 0;
          const int lo_chunk = low ? base : base + dist;
          return make(partner, rank, chunk_lo(lo_chunk),
                      chunk_lo(lo_chunk + dist), /*combine=*/true);
        }
        case CollOp::bcast: break;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::vector<CollTransfer> CollectiveSchedule::round_transfers(
    int round) const {
  std::vector<CollTransfer> out;
  for (int r = 0; r < nranks_; ++r)
    if (auto t = send_of(r, round)) out.push_back(*t);
  return out;
}

// ---------------------------------------------------------------------------
// CollectivePattern
// ---------------------------------------------------------------------------

CollectivePattern::CollectivePattern(CollOp op, CollAlgo algo, int nranks)
    : CommPattern(std::string("collective(") + std::string(op_name(op)) +
                  ":" + std::string(algo_name(algo)) + ":" +
                  std::to_string(nranks) + ")"),
      op_(op), algo_(algo), nranks_(nranks) {}

std::vector<Transfer> CollectivePattern::sends(int rank,
                                               const Layout& base) const {
  // Informational flattening (advisor bytes, tests): one contiguous
  // transfer per scheduled hop, across all rounds.
  const CollectiveSchedule sched = schedule(base.element_count());
  std::vector<Transfer> out;
  for (int t = 0; t < sched.round_count(); ++t)
    if (auto tr = sched.send_of(rank, t))
      out.push_back({tr->dst, Layout::contiguous(tr->elems)});
  return out;
}

std::string CollectivePattern::cell_layout_name(const Layout& base) const {
  return "coll(n=" + std::to_string(base.element_count()) + ")";
}

RunResult CollectivePattern::run(const minimpi::UniverseOptions& opts,
                                 std::string_view scheme_name,
                                 const Layout& base,
                                 const HarnessConfig& cfg) const {
  RunResult result;
  minimpi::Universe::run(opts, [&](minimpi::Comm& comm) {
    run_collective_rank(comm, *this, scheme_name, base, cfg, &result);
  });
  return result;
}

// ---------------------------------------------------------------------------
// Spec parsing & scheme legend
// ---------------------------------------------------------------------------

std::unique_ptr<CommPattern> make_collective_pattern(std::string_view args) {
  // "op:algo:N" — e.g. "allreduce:ring:64".
  const std::size_t c1 = args.find(':');
  if (c1 == std::string_view::npos) return nullptr;
  const std::size_t c2 = args.find(':', c1 + 1);
  if (c2 == std::string_view::npos) return nullptr;
  const auto op = op_by_name(args.substr(0, c1));
  const auto algo = algo_by_name(args.substr(c1 + 1, c2 - c1 - 1));
  if (!op || !algo) return nullptr;
  const std::string_view ntext = args.substr(c2 + 1);
  int n = 0;
  const auto [ptr, ec] =
      std::from_chars(ntext.data(), ntext.data() + ntext.size(), n);
  if (ec != std::errc{} || ptr != ntext.data() + ntext.size()) return nullptr;
  if (n < 2 || n > 4096) return nullptr;
  // rd demands a power of two *as spelled*; only bcast (which has no
  // doubling form and always means the tree) is exempt.
  if (*algo == CollAlgo::rdouble && *op != CollOp::bcast && !is_pow2(n))
    return nullptr;
  return std::make_unique<CollectivePattern>(*op, *algo, n);
}

bool is_collective_pattern_name(std::string_view pattern_name) {
  return pattern_name == "collective" ||
         pattern_name.substr(0, 11) == "collective(";
}

const std::vector<std::string>& collective_scheme_names() {
  // Message-mode schemes whose start() restages the live user buffer.
  // Out: "reference" (one-shot setup snapshot goes stale across
  // pipelined rounds), "buffered" (unbounded per-round bsend-pool
  // demand), "rsend(v)" (receives are posted round-by-round, so the
  // ready-mode guarantee cannot be given), and the RMA epochs.
  static const std::vector<std::string> names = {
      "copying",    "vector type", "subarray",      "packing(e)",
      "packing(v)", "isend(v)",    "ssend(v)",      "persistent(v)",
      "packing(p)",
  };
  return names;
}

bool collective_scheme_supported(std::string_view scheme) {
  const auto& names = collective_scheme_names();
  return std::find(names.begin(), names.end(), scheme) != names.end();
}

std::vector<std::string> schemes_for_patterns(
    const std::vector<std::string>& patterns) {
  for (const std::string& p : patterns)
    if (is_collective_pattern_name(p)) return collective_scheme_names();
  return pattern_scheme_names();
}

}  // namespace coll
}  // namespace ncsend
