/// \file collective_harness.cpp
/// \brief The per-round collective engine behind `CollectivePattern::run`.
///
/// One timed step executes the whole schedule: for each round, this
/// rank posts the round's receive (through the scheme's
/// `post_receives`, so chunked schemes land correctly), stages its
/// outgoing range into the transfer's host array, starts the real
/// `TransferScheme` in posted mode, drains the receive, applies the
/// delivered bytes to the working vector (summing for `combine`
/// transfers, with the reduction arithmetic charged as a copy loop),
/// and completes the send.  Receives are posted per round — never
/// pre-posted globally — so a `ring:1024` schedule keeps O(1) request
/// state per rank instead of materializing ~2M outstanding receives.
///
/// Charging policy: the staging copy into the scheme's host array and
/// the receive-side placement copy are *not* charged — a real
/// implementation sends from and receives into the working vector
/// directly; both copies are artifacts of the scheme owning its own
/// endpoint buffers.  The `combine` summation *is* charged
/// (`charge_copy` over the received bytes): reduction arithmetic is
/// genuine per-element work every allreduce algorithm pays.  Everything
/// else — pack loops, eager/rendezvous protocol, NIC serialization —
/// is charged by the schemes and the runtime exactly as in every other
/// pattern, which is the point: algorithm cost *emerges* from the same
/// timeline machinery.
///
/// Matching safety: all transfers use `ping_tag`.  Rounds may skew
/// between ranks (there is no per-round barrier), but each rank posts
/// receives and injects sends in round order, and mailbox matching is
/// FIFO per (src, tag) — so the k-th send from a given neighbor always
/// meets the k-th posted receive from it, and sizes line up because
/// both endpoints derive the same closed-form schedule.  Receives are
/// drained before send-waits, the same host-level deadlock-freedom
/// argument as the generic engine.

#include "ncsend/collectives/collective.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "memsim/flusher.hpp"
#include "ncsend/schemes/schemes.hpp"

namespace ncsend {
namespace coll {
namespace {

using minimpi::Buffer;
using minimpi::Comm;
using minimpi::Rank;
using minimpi::Request;

/// One reusable scheme endpoint: collective schedules revisit the same
/// (peer, size) pair many times (every ring round, say), and scheme
/// state — staging buffers, committed datatypes, persistent requests —
/// is per (peer, layout), so one instance serves all of them.  Reuse is
/// safe because the engine completes each round's requests (and calls
/// `finish`) before the slot's next use, and because envelopes snapshot
/// the payload at injection time.
struct SchemeSlot {
  Rank peer = 0;
  Layout layout = Layout::contiguous(0);
  Buffer user;  ///< host array the scheme sends from
  std::unique_ptr<TransferScheme> scheme;
};

std::int64_t ipow_mix(std::int64_t h, std::int64_t v) {
  // Mix on the unsigned type: the digest deliberately wraps at large
  // rank counts, and two's-complement wraparound gives the same bits
  // as the old signed multiply without the UB.
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(h) *
                                       1'000'003u +
                                   static_cast<std::uint64_t>(v));
}

/// Structural + sampled digest of one scheduled transfer: both
/// endpoints compute it from their *own* closed-form derivation
/// (`send_of` on the sender, `recv_of` on the receiver), so equal fused
/// totals certify the two derivations describe the same transfers.
/// Terms are integers and totals can exceed 2^53 at large rank counts,
/// which is exactly what the typed int64 allreduce is for.
std::int64_t transfer_digest(const CollTransfer& t, int round,
                             int verify_samples) {
  std::int64_t h = 0;
  h = ipow_mix(h, round);
  h = ipow_mix(h, t.src);
  h = ipow_mix(h, t.dst);
  h = ipow_mix(h, static_cast<std::int64_t>(t.elems));
  h = ipow_mix(h, static_cast<std::int64_t>(t.src_offset));
  h = ipow_mix(h, static_cast<std::int64_t>(t.dst_offset));
  h = ipow_mix(h, t.combine ? 1 : 0);
  const auto samples = std::min<std::size_t>(
      static_cast<std::size_t>(verify_samples), t.elems);
  if (samples > 0) {
    const std::size_t step =
        t.elems / samples + (t.elems % samples != 0 ? 1 : 0);
    for (std::size_t k = 0; k < t.elems; k += step)
      h = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(h) +
          ((t.src_offset + k) * 2654435761ULL) % 100003);
  }
  return h;
}

}  // namespace

void run_collective_rank(Comm& comm, const CollectivePattern& pattern,
                         std::string_view scheme_name, const Layout& base,
                         const HarnessConfig& cfg, RunResult* out) {
  minimpi::require(comm.size() == pattern.nranks(),
                   minimpi::ErrorClass::invalid_arg,
                   "collective universe has the wrong rank count");
  // Resolves the name first (junk throws on every rank alike), then
  // narrows to the collective legend.
  const std::unique_ptr<TransferScheme> proto =
      make_transfer_scheme(scheme_name);
  minimpi::require(collective_scheme_supported(scheme_name),
                   minimpi::ErrorClass::invalid_arg,
                   "scheme not supported by the collective engine");

  const int me = comm.rank();
  const int N = comm.size();
  const std::size_t elems = base.element_count();
  const CollectiveSchedule sched = pattern.schedule(elems);
  const int rounds = sched.round_count();

  // --- this rank's row of the schedule, derived once -----------------------
  std::vector<std::optional<CollTransfer>> my_sends;
  std::vector<std::optional<CollTransfer>> my_recvs;
  my_sends.reserve(static_cast<std::size_t>(rounds));
  my_recvs.reserve(static_cast<std::size_t>(rounds));
  for (int t = 0; t < rounds; ++t) {
    my_sends.push_back(sched.send_of(me, t));
    my_recvs.push_back(sched.recv_of(me, t));
  }

  // --- buffers and scheme state, outside the timing loop -------------------
  memsim::CacheModel cache(comm.profile().cache_bytes);
  const std::size_t vec_bytes = elems * sizeof(double);
  Buffer working = Buffer::allocate(vec_bytes, comm.moves_payload(vec_bytes));

  // One scheme instance per distinct (peer, size); `slot_of[t]` maps
  // each sending round to its slot.
  std::vector<SchemeSlot> slots;
  std::vector<int> slot_of(static_cast<std::size_t>(rounds), -1);
  {
    std::map<std::pair<Rank, std::size_t>, int> index;
    for (int t = 0; t < rounds; ++t) {
      if (!my_sends[t]) continue;
      const auto key = std::make_pair(static_cast<Rank>(my_sends[t]->dst),
                                      my_sends[t]->elems);
      auto [it, inserted] =
          index.emplace(key, static_cast<int>(index.size()));
      slot_of[static_cast<std::size_t>(t)] = it->second;
      if (!inserted) continue;
      SchemeSlot slot;
      slot.peer = key.first;
      slot.layout = Layout::contiguous(key.second);
      slots.push_back(std::move(slot));
    }
  }
  std::vector<TransferContext> contexts;
  contexts.reserve(slots.size());
  for (std::size_t si = 0; si < slots.size(); ++si) {
    SchemeSlot& slot = slots[si];
    const std::size_t bytes = slot.layout.payload_bytes();
    slot.user = Buffer::allocate(bytes, comm.moves_payload(bytes));
    slot.scheme = make_transfer_scheme(scheme_name);
    contexts.push_back(TransferContext{comm, slot.layout, cache, slot.user,
                                       slot.peer,
                                       /*user_region=*/1 + 2 * si,
                                       /*staging_region=*/2 + 2 * si,
                                       ping_tag,
                                       /*blocking=*/false});
  }
  // One reusable ghost buffer sized for the largest incoming round.
  std::size_t max_recv_bytes = 0;
  for (const auto& r : my_recvs)
    if (r) max_recv_bytes =
        std::max(max_recv_bytes, r->elems * sizeof(double));
  Buffer ghost = Buffer::allocate(max_recv_bytes,
                                  comm.moves_payload(max_recv_bytes));

  for (std::size_t si = 0; si < slots.size(); ++si)
    slots[si].scheme->setup(contexts[si]);

  // --- initial working-vector contents (functional runs) -------------------
  // Recognizable per-rank values: rank r's element i starts as
  // fill_value(salt_r + i) wherever the op gives r initial data.  All
  // fills are exact multiples of 1/8 below 100003, so every reduced sum
  // this engine can produce (<= 4096 terms) is exact in double and the
  // end-state comparison below is an equality, not a tolerance.
  const bool data = !working.is_phantom() && comm.moves_payload(vec_bytes);
  const auto rank_salt = [](int r) { return pattern_fill_salt(r, 0); };
  const auto initialize = [&] {
    if (!data) return;
    auto w = working.as<double>();
    switch (sched.op()) {
      case CollOp::bcast:
        for (std::size_t i = 0; i < elems; ++i)
          w[i] = me == 0 ? fill_value(rank_salt(0) + i) : 0.0;
        break;
      case CollOp::allreduce:
      case CollOp::reduce_scatter:
        for (std::size_t i = 0; i < elems; ++i)
          w[i] = fill_value(rank_salt(me) + i);
        break;
      case CollOp::allgather:
        for (std::size_t i = 0; i < elems; ++i) w[i] = 0.0;
        for (std::size_t i = sched.chunk_lo(me); i < sched.chunk_hi(me); ++i)
          w[i] = fill_value(rank_salt(me) + i);
        break;
    }
  };

  memsim::CacheFlusher flusher(cache, cfg.flush, cfg.flush_bytes);
  comm.barrier();

  // --- timed steps ---------------------------------------------------------
  // Same capture choreography as the generic engine: everything above
  // is compile-phase state a `CommPlan` pins; the loop is the replay
  // phase.  The working-vector reset is host-only (no charges, no plan
  // actions), so reps stay identical — the compile self-check depends
  // on that.
  std::vector<double> local;
  local.reserve(static_cast<std::size_t>(cfg.reps));
  std::vector<Request> rreqs;
  std::vector<Request> sreqs;
  const auto execute_step = [&] {
    for (int t = 0; t < rounds; ++t) {
      const auto& rv = my_recvs[t];
      const auto& sv = my_sends[t];
      rreqs.clear();
      if (rv) {
        const Layout rlayout = Layout::contiguous(rv->elems);
        proto->post_receives(comm, rv->src, rlayout, ghost.data(), ping_tag,
                             rreqs);
      }
      sreqs.clear();
      SchemeSlot* sslot = nullptr;
      TransferContext* sctx = nullptr;
      if (sv) {
        const int si = slot_of[static_cast<std::size_t>(t)];
        SchemeSlot& slot = slots[static_cast<std::size_t>(si)];
        sslot = &slot;
        sctx = &contexts[static_cast<std::size_t>(si)];
        if (data && !slot.user.is_phantom()) {
          const auto w = working.as<const double>();
          auto u = slot.user.as<double>();
          std::copy(w.begin() + static_cast<std::ptrdiff_t>(sv->src_offset),
                    w.begin() + static_cast<std::ptrdiff_t>(sv->src_offset +
                                                            sv->elems),
                    u.begin());
        }
        slot.scheme->start(*sctx, sreqs);
      }
      waitall(rreqs);
      if (rv) {
        const std::size_t bytes = rv->elems * sizeof(double);
        if (rv->combine) {
          // The reduction arithmetic is genuine per-element work; cold
          // (the flusher evicted both operands between steps).
          comm.charge_copy(bytes, minimpi::BlockStats{1, bytes, bytes, bytes},
                           /*warm_fraction=*/0.0);
          if (data && !ghost.is_phantom()) {
            const auto g = ghost.as<const double>();
            auto w = working.as<double>();
            for (std::size_t i = 0; i < rv->elems; ++i)
              w[rv->dst_offset + i] += g[i];
          }
        } else if (data && !ghost.is_phantom()) {
          const auto g = ghost.as<const double>();
          auto w = working.as<double>();
          for (std::size_t i = 0; i < rv->elems; ++i)
            w[rv->dst_offset + i] = g[i];
        }
      }
      waitall(sreqs);
      if (sslot != nullptr) sslot->scheme->finish(*sctx);
    }
  };
  for (int rep = 0; rep < cfg.reps; ++rep) {
    comm.plan_begin_rep();
    initialize();
    comm.plan_sample_begin();
    const double t0 = comm.wtime();
    execute_step();
    const double dt = comm.wtime() - t0;
    comm.plan_sample_end(/*contributes=*/true);
    local.push_back(dt);
    flusher.flush(comm);
    comm.barrier();
    comm.plan_end_rep();
  }

  // --- end-state verification (functional runs) ----------------------------
  bool checked = false;
  bool ok = true;
  if (cfg.verify && data) {
    checked = true;
    const auto w = working.as<const double>();
    const auto reduced = [&](std::size_t i) {
      double sum = 0.0;
      for (int r = 0; r < N; ++r) sum += fill_value(rank_salt(r) + i);
      return sum;
    };
    switch (sched.op()) {
      case CollOp::bcast:
        for (std::size_t i = 0; i < elems; ++i)
          if (w[i] != fill_value(rank_salt(0) + i)) ok = false;
        break;
      case CollOp::allreduce:
        for (std::size_t i = 0; i < elems; ++i)
          if (w[i] != reduced(i)) ok = false;
        break;
      case CollOp::reduce_scatter:
        for (std::size_t i = sched.chunk_lo(me); i < sched.chunk_hi(me); ++i)
          if (w[i] != reduced(i)) ok = false;
        break;
      case CollOp::allgather:
        for (int c = 0; c < N; ++c)
          for (std::size_t i = sched.chunk_lo(c); i < sched.chunk_hi(c); ++i)
            if (w[i] != fill_value(rank_salt(c) + i)) ok = false;
        break;
    }
  }

  // --- sampled digest verification (modeled runs) --------------------------
  // Send-side and receive-side digests are fused separately over the
  // typed int64 allreduce and compared: a mismatch means `recv_of`
  // drifted from `send_of` — the schedule-mirror invariant byte
  // verification would have caught, checkable at any rank count.
  if (cfg.verify_samples > 0) {
    // Digest terms span the whole int64 range (ipow_mix wraps), so the
    // fusion sum must wrap too — accumulate on the unsigned type.
    const auto wrap_add = [](std::int64_t a, std::int64_t b) {
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                       static_cast<std::uint64_t>(b));
    };
    std::int64_t send_digest = 0;
    std::int64_t recv_digest = 0;
    for (int t = 0; t < rounds; ++t) {
      if (my_sends[t])
        send_digest = wrap_add(
            send_digest, transfer_digest(*my_sends[t], t, cfg.verify_samples));
      if (my_recvs[t])
        recv_digest = wrap_add(
            recv_digest, transfer_digest(*my_recvs[t], t, cfg.verify_samples));
    }
    const std::int64_t send_total =
        comm.allreduce(send_digest, minimpi::ReduceOp::sum);
    const std::int64_t recv_total =
        comm.allreduce(recv_digest, minimpi::ReduceOp::sum);
    checked = true;
    if (send_total != recv_total) ok = false;
  }

  // --- fuse the per-step times and the verdict -----------------------------
  std::vector<double> samples;
  samples.reserve(local.size());
  for (const double dt : local)
    samples.push_back(comm.allreduce(dt, minimpi::ReduceOp::max));
  std::size_t my_bytes = 0;
  for (const auto& sv : my_sends)
    if (sv) my_bytes += sv->elems * sizeof(double);
  const double busiest =
      comm.allreduce(static_cast<double>(my_bytes), minimpi::ReduceOp::max);
  const double all_ok =
      comm.allreduce(checked && !ok ? 0.0 : 1.0, minimpi::ReduceOp::min);
  const double any_checked =
      comm.allreduce(checked ? 1.0 : 0.0, minimpi::ReduceOp::max);

  for (std::size_t si = 0; si < slots.size(); ++si)
    slots[si].scheme->teardown(contexts[si]);
  comm.barrier();

  if (me == 0 && out != nullptr) {
    out->scheme = std::string(scheme_name);
    out->layout = pattern.cell_layout_name(base);
    out->payload_bytes = static_cast<std::size_t>(busiest);
    out->timing = summarize(samples);
    out->data_checked = any_checked > 0.5;
    out->verified = all_ok > 0.5;
  }
}

}  // namespace coll
}  // namespace ncsend
