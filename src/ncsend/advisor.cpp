#include "ncsend/advisor.hpp"

#include <limits>

#include "minimpi/net/cost_model.hpp"
#include "ncsend/collectives/collective.hpp"
#include "ncsend/patterns/pattern.hpp"

namespace ncsend {

namespace {
/// The paper's "large" threshold: beyond ~1e8 bytes the schemes diverge
/// (§5: "For any but large (over 10^8 bytes) messages the various
/// schemes perform fairly similarly").
constexpr std::size_t large_message_bytes = 100'000'000;
}  // namespace

Recommendation advise(const minimpi::MachineProfile& profile,
                      std::size_t payload_bytes, const Layout& layout) {
  Recommendation rec;

  if (layout.is_contiguous()) {
    rec.scheme = "reference";
    rec.rationale =
        "The layout is contiguous: a plain send already attains the "
        "hardware rate; no gather or derived type is needed.";
    return rec;
  }

  rec.avoid.push_back(
      "buffered: MPI_Bsend pays an extra staging copy and still goes "
      "through MPI's internal machinery; it is at a disadvantage even at "
      "intermediate sizes (paper §4.2, §5).");
  rec.avoid.push_back(
      "packing(e): one MPI_Pack call per element is dominated by call "
      "overhead (paper §4.3: 'performs predictably very badly').");
  if (profile.put_bandwidth_factor < 0.5) {
    rec.avoid.push_back(
        "onesided: this installation's RMA puts run at " +
        std::to_string(static_cast<int>(profile.put_bandwidth_factor * 100)) +
        "% of the fabric rate (cf. MVAPICH2 in paper §4.4).");
  }

  if (payload_bytes >= large_message_bytes) {
    rec.scheme = "packing(v)";
    rec.rationale =
        "Large message: a single MPI_Pack of the derived type into a "
        "user-space buffer followed by a contiguous send avoids MPI's "
        "internal buffer bookkeeping, which degrades direct derived-type "
        "sends beyond a few tens of MB (paper §4.1, §5: 'the scheme that "
        "consistently performs best').";
    rec.avoid.push_back(
        "vector type / subarray sent directly: MPI-internal buffering "
        "degrades beyond ~3e7 bytes (paper §4.1).");
  } else {
    rec.scheme = layout.regular() ? "vector type" : "vector type";
    rec.rationale =
        "Below ~1e8 bytes all reasonable schemes track manual copying "
        "within noise, so use the most user-friendly one: send the "
        "derived datatype directly (paper §5: 'there should be no reason "
        "not to use derived datatypes').  packing(v) performs identically "
        "if you prefer explicit buffer control.";
  }
  return rec;
}

Recommendation advise(const minimpi::MachineProfile& profile,
                      std::size_t payload_bytes, const Layout& layout,
                      const CommPattern& pattern) {
  Recommendation rec = advise(profile, payload_bytes, layout);
  if (layout.is_contiguous()) return rec;

  // Fence epochs synchronize the whole universe every step; beyond the
  // 2-rank ping-pong that cost scales with the rank count, not with
  // the neighbor count (paper §4.4 item 1, amplified).
  if (pattern.nranks() > 2) {
    rec.avoid.push_back(
        "onesided: MPI_Win_fence epochs synchronize all " +
        std::to_string(pattern.nranks()) + " ranks of " + pattern.name() +
        " every step; prefer onesided-pscw (pairwise post/start/"
        "complete/wait) if one-sided transfers are required.");
  }

  // Concurrent senders sharing one NIC divide the effective per-sender
  // wire bandwidth by the *static* contention multiplier, so the
  // large-message regime — where only user-space packing stays at the
  // attainable rate — begins at proportionally smaller payloads.  The
  // multiplier comes from the cost model itself, so the advice cannot
  // drift from what the simulator actually charges.  (The emergent
  // NIC-occupancy model needs no rescaled threshold: its contention
  // appears only where one rank's injections genuinely overlap, which
  // the pattern sweeps measure directly — bench/ablation_contention.)
  const int senders = pattern.concurrent_senders();
  const double multiplier =
      minimpi::CostModel(profile, {}, senders).contention_multiplier();
  if (multiplier > 1.0) {
    const auto threshold = static_cast<std::size_t>(
        static_cast<double>(large_message_bytes) / multiplier);
    if (payload_bytes >= threshold && rec.scheme != "packing(v)") {
      rec.scheme = "packing(v)";
      rec.rationale =
          pattern.name() + " drives " + std::to_string(senders) +
          " concurrent senders through one NIC (contention multiplier " +
          std::to_string(multiplier) +
          "), so the per-sender wire runs at a fraction of the fabric "
          "rate and the large-message regime starts near " +
          std::to_string(threshold) +
          " bytes: pack the derived type into user space and send "
          "contiguous bytes (paper §5, threshold rescaled).";
      rec.avoid.push_back(
          "vector type / subarray sent directly: MPI-internal buffering "
          "degrades sooner under link contention (paper §4.1 threshold "
          "divided by the contention multiplier).");
    } else if (payload_bytes < threshold) {
      rec.rationale +=
          "  (" + pattern.name() + " runs " + std::to_string(senders) +
          " concurrent senders; below the contention-rescaled threshold "
          "of " + std::to_string(threshold) +
          " bytes the ranking is unchanged.)";
    }
  }
  return rec;
}

CollectiveAdvice advise_collective(const minimpi::MachineProfile& profile,
                                   std::string_view op,
                                   std::size_t payload_bytes, int nranks) {
  const auto parsed = coll::op_by_name(op);
  minimpi::require(parsed.has_value(), minimpi::ErrorClass::invalid_arg,
                   "advise_collective: unknown collective op: " +
                       std::string(op));
  minimpi::require(nranks >= 2, minimpi::ErrorClass::invalid_arg,
                   "advise_collective: need at least 2 ranks");
  // Round counts come from the schedules themselves, so the advice
  // cannot drift from what the engine executes.
  const double tree_r = coll::CollectiveSchedule(*parsed, coll::CollAlgo::tree,
                                                 nranks, 1)
                            .round_count();
  const double ring_r = coll::CollectiveSchedule(*parsed, coll::CollAlgo::ring,
                                                 nranks, 1)
                            .round_count();
  // Recursive doubling only exists for power-of-two rank counts, and
  // rooted bcast has no doubling form (the schedule aliases it to tree).
  const bool pow2 = ((nranks & (nranks - 1)) == 0) &&
                    *parsed != coll::CollOp::bcast;

  // Per-round latency and wire bandwidth: tree rounds carry the full
  // vector, ring rounds a 1/N chunk.  Equating
  //   tree_r·(α + B/β)  =  ring_r·(α + B/(Nβ))
  // gives the switch point B*.
  const double alpha = profile.send_overhead_s + profile.net_latency_s;
  const double beta = profile.net_bandwidth_Bps;
  const double numer = ring_r - tree_r;
  const double denom = tree_r - ring_r / static_cast<double>(nranks);

  CollectiveAdvice adv;
  const std::string scale = "N=" + std::to_string(nranks) + ": " +
                            std::to_string(static_cast<int>(tree_r)) +
                            " tree rounds vs " +
                            std::to_string(static_cast<int>(ring_r)) +
                            " ring rounds";
  if (numer <= 0.0) {
    // The ring needs no more rounds than the tree (tiny N): it wins on
    // latency *and* bandwidth, at every size.
    adv.crossover_bytes = 0;
    adv.algorithm = "ring";
    adv.rationale = "At " + scale +
                    " the ring never pays more latency than the tree and "
                    "moves 1/N of the bytes per round; there is no "
                    "crossover to wait for.";
    return adv;
  }
  if (denom <= 0.0) {
    adv.crossover_bytes = std::numeric_limits<std::size_t>::max();
    adv.algorithm = pow2 ? "rd" : "tree";
    adv.rationale = "At " + scale +
                    " the ring's round count overwhelms its per-round "
                    "byte savings at every message size; stay with the "
                    "logarithmic schedule.";
    return adv;
  }
  adv.crossover_bytes = static_cast<std::size_t>(alpha * beta * numer / denom);
  const bool ring = payload_bytes >= adv.crossover_bytes;
  adv.algorithm = ring ? "ring" : (pow2 ? "rd" : "tree");
  adv.rationale =
      std::string(op) + " at " + scale + "; with per-round latency " +
      std::to_string(alpha) + " s and wire bandwidth " +
      std::to_string(beta / 1e9) + " GB/s the tree/ring crossover sits at " +
      std::to_string(adv.crossover_bytes) + " bytes, and this payload (" +
      std::to_string(payload_bytes) + " B) is " +
      (ring ? "past it: the ring's 1/N-sized chunks amortize the extra "
              "rounds (bandwidth-bound regime)."
            : std::string("below it: log2(N) latency-bound rounds beat "
                          "the ring's O(N) chain") +
                  (pow2 ? ", and recursive doubling halves even the "
                          "tree's round count at a power-of-two rank "
                          "count."
                        : "."));
  return adv;
}

}  // namespace ncsend
