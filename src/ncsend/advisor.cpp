#include "ncsend/advisor.hpp"

#include "minimpi/net/cost_model.hpp"
#include "ncsend/patterns/pattern.hpp"

namespace ncsend {

namespace {
/// The paper's "large" threshold: beyond ~1e8 bytes the schemes diverge
/// (§5: "For any but large (over 10^8 bytes) messages the various
/// schemes perform fairly similarly").
constexpr std::size_t large_message_bytes = 100'000'000;
}  // namespace

Recommendation advise(const minimpi::MachineProfile& profile,
                      std::size_t payload_bytes, const Layout& layout) {
  Recommendation rec;

  if (layout.is_contiguous()) {
    rec.scheme = "reference";
    rec.rationale =
        "The layout is contiguous: a plain send already attains the "
        "hardware rate; no gather or derived type is needed.";
    return rec;
  }

  rec.avoid.push_back(
      "buffered: MPI_Bsend pays an extra staging copy and still goes "
      "through MPI's internal machinery; it is at a disadvantage even at "
      "intermediate sizes (paper §4.2, §5).");
  rec.avoid.push_back(
      "packing(e): one MPI_Pack call per element is dominated by call "
      "overhead (paper §4.3: 'performs predictably very badly').");
  if (profile.put_bandwidth_factor < 0.5) {
    rec.avoid.push_back(
        "onesided: this installation's RMA puts run at " +
        std::to_string(static_cast<int>(profile.put_bandwidth_factor * 100)) +
        "% of the fabric rate (cf. MVAPICH2 in paper §4.4).");
  }

  if (payload_bytes >= large_message_bytes) {
    rec.scheme = "packing(v)";
    rec.rationale =
        "Large message: a single MPI_Pack of the derived type into a "
        "user-space buffer followed by a contiguous send avoids MPI's "
        "internal buffer bookkeeping, which degrades direct derived-type "
        "sends beyond a few tens of MB (paper §4.1, §5: 'the scheme that "
        "consistently performs best').";
    rec.avoid.push_back(
        "vector type / subarray sent directly: MPI-internal buffering "
        "degrades beyond ~3e7 bytes (paper §4.1).");
  } else {
    rec.scheme = layout.regular() ? "vector type" : "vector type";
    rec.rationale =
        "Below ~1e8 bytes all reasonable schemes track manual copying "
        "within noise, so use the most user-friendly one: send the "
        "derived datatype directly (paper §5: 'there should be no reason "
        "not to use derived datatypes').  packing(v) performs identically "
        "if you prefer explicit buffer control.";
  }
  return rec;
}

Recommendation advise(const minimpi::MachineProfile& profile,
                      std::size_t payload_bytes, const Layout& layout,
                      const CommPattern& pattern) {
  Recommendation rec = advise(profile, payload_bytes, layout);
  if (layout.is_contiguous()) return rec;

  // Fence epochs synchronize the whole universe every step; beyond the
  // 2-rank ping-pong that cost scales with the rank count, not with
  // the neighbor count (paper §4.4 item 1, amplified).
  if (pattern.nranks() > 2) {
    rec.avoid.push_back(
        "onesided: MPI_Win_fence epochs synchronize all " +
        std::to_string(pattern.nranks()) + " ranks of " + pattern.name() +
        " every step; prefer onesided-pscw (pairwise post/start/"
        "complete/wait) if one-sided transfers are required.");
  }

  // Concurrent senders sharing one NIC divide the effective per-sender
  // wire bandwidth by the *static* contention multiplier, so the
  // large-message regime — where only user-space packing stays at the
  // attainable rate — begins at proportionally smaller payloads.  The
  // multiplier comes from the cost model itself, so the advice cannot
  // drift from what the simulator actually charges.  (The emergent
  // NIC-occupancy model needs no rescaled threshold: its contention
  // appears only where one rank's injections genuinely overlap, which
  // the pattern sweeps measure directly — bench/ablation_contention.)
  const int senders = pattern.concurrent_senders();
  const double multiplier =
      minimpi::CostModel(profile, {}, senders).contention_multiplier();
  if (multiplier > 1.0) {
    const auto threshold = static_cast<std::size_t>(
        static_cast<double>(large_message_bytes) / multiplier);
    if (payload_bytes >= threshold && rec.scheme != "packing(v)") {
      rec.scheme = "packing(v)";
      rec.rationale =
          pattern.name() + " drives " + std::to_string(senders) +
          " concurrent senders through one NIC (contention multiplier " +
          std::to_string(multiplier) +
          "), so the per-sender wire runs at a fraction of the fabric "
          "rate and the large-message regime starts near " +
          std::to_string(threshold) +
          " bytes: pack the derived type into user space and send "
          "contiguous bytes (paper §5, threshold rescaled).";
      rec.avoid.push_back(
          "vector type / subarray sent directly: MPI-internal buffering "
          "degrades sooner under link contention (paper §4.1 threshold "
          "divided by the contention multiplier).");
    } else if (payload_bytes < threshold) {
      rec.rationale +=
          "  (" + pattern.name() + " runs " + std::to_string(senders) +
          " concurrent senders; below the contention-rescaled threshold "
          "of " + std::to_string(threshold) +
          " bytes the ranking is unchanged.)";
    }
  }
  return rec;
}

}  // namespace ncsend
