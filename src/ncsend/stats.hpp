#pragma once
/// \file stats.hpp
/// \brief Repetition statistics with the paper's outlier policy.

#include <cstddef>
#include <span>

namespace ncsend {

struct TimingStats {
  double mean = 0.0;    ///< mean of kept samples
  double stddev = 0.0;  ///< stddev of all samples
  double min = 0.0;
  double max = 0.0;
  int samples = 0;      ///< total repetitions
  int rejected = 0;     ///< dropped by the 1-sigma rule
};

/// \brief Summarize per-repetition times.
///
/// Paper §3.2: "Our code is set up to dismiss measurements that are more
/// than one standard deviation from the average" — we compute mean and
/// stddev over all samples, drop samples beyond one stddev from the
/// mean, and report the mean of the survivors.  (The paper notes the
/// rule in practice never fires; with deterministic virtual time it
/// fires exactly never, which a test asserts.)
TimingStats summarize(std::span<const double> samples);

}  // namespace ncsend
