#pragma once
/// \file sweep.hpp
/// \brief Single-figure sweeps: one profile, one layout, sizes x schemes.
///
/// `SweepConfig` predates the experiment engine and remains the
/// convenient way to ask for one figure's worth of cells; it is adapted
/// to a single-profile `ExperimentPlan` (`to_plan`) and executed by the
/// engine's worker pool, so `run_sweep` inherits `--jobs`-style
/// parallelism and its byte-identical determinism guarantee.

#include <functional>
#include <optional>

#include "ncsend/experiment/plan.hpp"
#include "ncsend/experiment/result.hpp"

namespace ncsend {

struct SweepConfig {
  const minimpi::MachineProfile* profile = &minimpi::MachineProfile::skx_impi();
  std::vector<std::string> schemes = all_scheme_names();
  /// Payload sizes in bytes (rounded down to whole doubles).
  std::vector<std::size_t> sizes_bytes;
  /// Layout for a given element count; default: the paper's stride-2
  /// vector ("the real parts of a complex array").
  std::function<Layout(std::size_t elems)> layout_factory =
      [](std::size_t elems) { return Layout::strided(elems, 1, 2); };
  HarnessConfig harness;
  /// §4.5 experiment: force the eager limit.
  std::optional<std::size_t> eager_limit_override;
  /// Payloads up to this size move physically (and get verified).
  std::size_t functional_payload_limit = 1u << 20;
  /// MPI_Wtime tick (paper: 1e-6 s); 0 for exact clocks.
  double wtime_resolution = 1e-6;
};

/// \brief Adapt a legacy sweep config to a one-profile, one-layout plan.
ExperimentPlan to_plan(const SweepConfig& cfg);

/// \brief Run the full sweep; one fresh 2-rank universe per cell,
/// dispatched over the experiment engine's worker pool (`jobs` 0 means
/// the engine default: NCSEND_JOBS, else hardware concurrency).
SweepResult run_sweep(const SweepConfig& cfg, int jobs = 0);

}  // namespace ncsend
