#pragma once
/// \file sweep.hpp
/// \brief Parameter sweeps: one figure = one sweep over sizes x schemes.

#include <functional>
#include <optional>

#include "ncsend/harness.hpp"

namespace ncsend {

struct SweepConfig {
  const minimpi::MachineProfile* profile = &minimpi::MachineProfile::skx_impi();
  std::vector<std::string> schemes = all_scheme_names();
  /// Payload sizes in bytes (rounded down to whole doubles).
  std::vector<std::size_t> sizes_bytes;
  /// Layout for a given element count; default: the paper's stride-2
  /// vector ("the real parts of a complex array").
  std::function<Layout(std::size_t elems)> layout_factory =
      [](std::size_t elems) { return Layout::strided(elems, 1, 2); };
  HarnessConfig harness;
  /// §4.5 experiment: force the eager limit.
  std::optional<std::size_t> eager_limit_override;
  /// Payloads up to this size move physically (and get verified).
  std::size_t functional_payload_limit = 1u << 20;
  /// MPI_Wtime tick (paper: 1e-6 s); 0 for exact clocks.
  double wtime_resolution = 1e-6;
};

struct SweepResult {
  std::string profile_name;
  std::string layout_name;
  std::vector<std::size_t> sizes_bytes;
  std::vector<std::string> schemes;
  /// cells[size_index][scheme_index]
  std::vector<std::vector<RunResult>> cells;

  [[nodiscard]] double time(std::size_t si, std::size_t ci) const {
    return cells[si][ci].time();
  }
  [[nodiscard]] double bandwidth_GBps(std::size_t si, std::size_t ci) const {
    return cells[si][ci].bandwidth_Bps() / 1e9;
  }
  /// Slowdown vs the "reference" column (paper's third panel); 0 when no
  /// reference scheme is in the sweep.
  [[nodiscard]] double slowdown(std::size_t si, std::size_t ci) const;
  [[nodiscard]] bool all_verified() const;
};

/// \brief Log-spaced sizes from `lo` to `hi` (inclusive-ish) with
/// `per_decade` points per decade, each rounded to a multiple of 8.
std::vector<std::size_t> log_sizes(double lo, double hi, int per_decade);

/// \brief The paper's sweep range: 1e3 .. 1e9 bytes.
std::vector<std::size_t> paper_sizes(int per_decade = 4);

/// \brief Run the full sweep; one fresh 2-rank universe per cell.
SweepResult run_sweep(const SweepConfig& cfg);

}  // namespace ncsend
