#pragma once
/// \file result.hpp
/// \brief Result containers for the experiment engine.
///
/// A `SweepResult` is one (profile, layout) slice of a plan: the
/// sizes x schemes grid of `RunResult` cells the paper prints as one
/// figure.  A `PlanResult` is everything a plan produced — one
/// `SweepResult` per (profile, layout) pair, profiles-major — and is
/// what the unified writers (result_store.hpp) consume.

#include <cstddef>
#include <string>
#include <vector>

#include "ncsend/harness.hpp"

namespace ncsend {

struct SweepResult {
  /// Canonical communication-pattern id ("pingpong", "halo2d(3x3)", ...).
  std::string pattern = "pingpong";
  /// Ranks per cell universe (2 for the ping-pong pattern).
  int nranks = 2;
  std::string profile_name;
  /// Concrete layout name at the first size (e.g. "strided(b=1,s=2)").
  std::string layout_name;
  /// Stable layout-axis id ("stride2", "indexed-blocks(b=4)", ...);
  /// equals `layout_name` when the plan did not name the axis.
  std::string layout_axis;
  std::vector<std::size_t> sizes_bytes;
  std::vector<std::string> schemes;
  /// cells[size_index][scheme_index]
  std::vector<std::vector<RunResult>> cells;

  [[nodiscard]] double time(std::size_t si, std::size_t ci) const {
    return cells[si][ci].time();
  }
  [[nodiscard]] double bandwidth_GBps(std::size_t si, std::size_t ci) const {
    return cells[si][ci].bandwidth_Bps() / 1e9;
  }
  /// Slowdown vs the "reference" column (paper's third panel); 0 when no
  /// reference scheme is in the sweep.
  [[nodiscard]] double slowdown(std::size_t si, std::size_t ci) const;
  [[nodiscard]] bool all_verified() const;
};

/// \brief All sweeps one plan produced, ordered patterns-major, then
/// profiles, layouts-minor:
/// `sweeps[(ti * profile_count + pi) * layout_count + li]`.
struct PlanResult {
  std::string plan_name;
  std::size_t pattern_count = 1;
  std::size_t profile_count = 0;
  std::size_t layout_count = 0;
  std::vector<SweepResult> sweeps;

  /// First-pattern accessor: the common single-pattern case (and every
  /// caller that predates the pattern axis).
  [[nodiscard]] const SweepResult& sweep(std::size_t profile_index,
                                         std::size_t layout_index) const {
    return sweeps.at(profile_index * layout_count + layout_index);
  }
  [[nodiscard]] const SweepResult& sweep(std::size_t pattern_index,
                                         std::size_t profile_index,
                                         std::size_t layout_index) const {
    return sweeps.at((pattern_index * profile_count + profile_index) *
                         layout_count +
                     layout_index);
  }
  [[nodiscard]] bool all_verified() const {
    for (const auto& s : sweeps)
      if (!s.all_verified()) return false;
    return true;
  }
};

}  // namespace ncsend
