#include "ncsend/experiment/result.hpp"

namespace ncsend {

double SweepResult::slowdown(std::size_t si, std::size_t ci) const {
  for (std::size_t r = 0; r < schemes.size(); ++r) {
    if (schemes[r] == "reference") {
      const double ref = time(si, r);
      return ref > 0.0 ? time(si, ci) / ref : 0.0;
    }
  }
  return 0.0;
}

bool SweepResult::all_verified() const {
  for (const auto& row : cells)
    for (const auto& cell : row)
      if (!cell.verified) return false;
  return true;
}

}  // namespace ncsend
