#pragma once
/// \file result_store.hpp
/// \brief The unified result pipeline: one store, one writer per format.
///
/// Every machine-readable artifact the repo produces — per-figure CSV,
/// the per-sweep JSON documents, and the three `BENCH_*.json` families
/// CI tracks — is emitted from here, so each schema lives in exactly
/// one place.  Benches fill a store (sweeps from the executor, kernel
/// records from wall-clock micro-benchmarks) and pick a writer.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "ncsend/experiment/result.hpp"

namespace ncsend {

/// One wall-clock kernel measurement (the `BENCH_pack_engine` family:
/// the single place real hardware speed matters).
struct KernelRecord {
  std::string kernel;
  std::size_t payload_bytes = 0;
  double gbps = 0.0;
};

/// One engine-throughput measurement (the `BENCH_engine_scale` family):
/// wall-clock cost of simulating one cell directly vs compiling its
/// charge program once and replaying it.  `rank_steps` is the work
/// unit the ISSUE's speedup target counts: nranks x iterations.
/// Host-side perf counters of one benchmark leg (base/perf.hpp totals,
/// shared by the two engine-throughput record types below).  The
/// derived ratios are what the JSON surfaces: per-message heap
/// allocations (the pooled hot path's figure of merit), mailbox probes
/// per message, and fiber switches per rank-step.
struct PerfCounterColumns {
  std::uint64_t messages = 0;
  std::uint64_t hot_allocs = 0;      ///< envelope + request pool misses
  std::uint64_t fiber_switches = 0;
  std::uint64_t match_probes = 0;
  [[nodiscard]] double allocs_per_message() const {
    return messages > 0 ? static_cast<double>(hot_allocs) /
                              static_cast<double>(messages)
                        : 0.0;
  }
  [[nodiscard]] double probes_per_message() const {
    return messages > 0 ? static_cast<double>(match_probes) /
                              static_cast<double>(messages)
                        : 0.0;
  }
  [[nodiscard]] double switches_per_rank_step(double rank_steps) const {
    return rank_steps > 0.0 ? static_cast<double>(fiber_switches) /
                                  rank_steps
                            : 0.0;
  }
};

struct EngineScaleRecord {
  std::string pattern;
  std::string scheme;
  int nranks = 0;
  std::size_t payload_bytes = 0;
  int iters = 0;
  double direct_seconds = 0.0;    ///< wall clock, direct execution
  double compiled_seconds = 0.0;  ///< wall clock, compile + replay
  bool identical = false;         ///< replayed timing == direct timing
  PerfCounterColumns perf;        ///< direct leg's host-side counters
  [[nodiscard]] double rank_steps() const {
    return static_cast<double>(nranks) * static_cast<double>(iters);
  }
  [[nodiscard]] double direct_rank_steps_per_sec() const {
    return direct_seconds > 0.0 ? rank_steps() / direct_seconds : 0.0;
  }
  [[nodiscard]] double compiled_rank_steps_per_sec() const {
    return compiled_seconds > 0.0 ? rank_steps() / compiled_seconds : 0.0;
  }
  [[nodiscard]] double speedup() const {
    return compiled_seconds > 0.0 ? direct_seconds / compiled_seconds : 0.0;
  }
};

/// One universe-scaling measurement (the `BENCH_universe_scale`
/// family): wall-clock cost of simulating one whole modeled-mode
/// universe at growing rank counts under the cooperative scheduler —
/// the scaling curve the 1k-rank tentpole is judged by.  `rank_steps`
/// counts the same work unit as `EngineScaleRecord`.
struct UniverseScaleRecord {
  std::string pattern;
  std::string scheme;
  int nranks = 0;
  std::size_t payload_bytes = 0;
  int reps = 0;
  double direct_seconds = 0.0;  ///< wall clock, direct execution
  double replay_seconds = 0.0;  ///< wall clock, compile + replay (0 = n/a)
  bool verified = false;        ///< sampled digest verification passed
  PerfCounterColumns perf;      ///< direct leg's host-side counters
  [[nodiscard]] double rank_steps() const {
    return static_cast<double>(nranks) * static_cast<double>(reps);
  }
  [[nodiscard]] double direct_rank_steps_per_sec() const {
    return direct_seconds > 0.0 ? rank_steps() / direct_seconds : 0.0;
  }
  [[nodiscard]] double replay_rank_steps_per_sec() const {
    return replay_seconds > 0.0 ? rank_steps() / replay_seconds : 0.0;
  }
};

/// One collective-algorithm measurement series (the
/// `BENCH_collective_sweep` family): virtual seconds for one
/// (profile, op, algo, nranks, scheme) cell across a message-size
/// grid.  The writer groups records by (profile, op, nranks) and
/// reports which algorithm wins at the smallest and largest size —
/// the small-message-tree vs large-message-ring crossover the sweep
/// exists to expose.
struct CollectiveSweepRecord {
  std::string profile;
  std::string op;     ///< "allreduce", "bcast", "allgather", "reduce-scatter"
  std::string algo;   ///< "tree", "ring", "rd"
  int nranks = 0;
  std::string scheme;
  std::vector<std::size_t> sizes_bytes;
  std::vector<double> times_s;  ///< virtual seconds, one per size
  bool verified = false;        ///< sampled digest verification passed
};

/// \brief JSON string escaping for every writer below.
std::string json_escape(std::string_view s);

class ResultStore {
 public:
  void add_sweep(SweepResult r) { sweeps_.push_back(std::move(r)); }
  void add_plan(const PlanResult& r) {
    for (const auto& s : r.sweeps) sweeps_.push_back(s);
  }
  void add_kernel(KernelRecord k) { kernels_.push_back(std::move(k)); }

  [[nodiscard]] const std::vector<SweepResult>& sweeps() const {
    return sweeps_;
  }
  [[nodiscard]] const std::vector<KernelRecord>& kernels() const {
    return kernels_;
  }

  /// Machine-readable rows over every stored sweep:
  /// `pattern,profile,layout,size_bytes,scheme,time_s,bandwidth_GBps,slowdown,verified`.
  void write_csv(std::ostream& os) const;

  /// Self-describing JSON: a single sweep emits the flat
  /// `{pattern, nranks, profile, layout, sizes_bytes, schemes,
  /// cells: [...]}` document; several sweeps are wrapped as
  /// `{"sweeps": [...]}`.
  void write_sweep_json(std::ostream& os) const;

  /// The `BENCH_scheme_sweep.json` schema: per-(profile, layout) time
  /// grids, flat enough for CI to diff successive runs.
  void write_bench_sweep_json(std::ostream& os) const;

  /// The `BENCH_pattern_sweep.json` schema: per-(pattern, profile,
  /// layout) time grids of the N-rank communication patterns, with the
  /// pattern id and its rank count on every entry.
  void write_bench_pattern_sweep_json(std::ostream& os) const;

  /// The `BENCH_pack_engine.json` schema over the stored kernel records.
  void write_bench_pack_engine_json(std::ostream& os) const;

  /// The `BENCH_eager_limit.json` schema: paired base/raised times from
  /// two runs of the same plan (paper §4.5).
  static void write_bench_eager_limit_json(std::ostream& os,
                                           const SweepResult& base,
                                           const SweepResult& raised,
                                           std::size_t override_bytes);

  /// One labeled variant of an ablation comparison (what-if runs of
  /// the same grid under different model configurations).
  struct AblationVariant {
    std::string label;  ///< e.g. "static-factor", "nic-occupancy"
    SweepResult sweep;
  };

  /// The `BENCH_ablation_*.json` schema: the same grid measured under
  /// several model configurations, one entry per labeled variant
  /// (`ablation_nic_pipelining`, `ablation_contention`).
  static void write_bench_ablation_json(
      std::ostream& os, std::string_view name,
      const std::vector<AblationVariant>& variants);

  /// The `BENCH_engine_scale.json` schema: wall-clock engine throughput
  /// (cells/sec and rank-steps/sec), compiled replay vs direct.
  static void write_bench_engine_scale_json(
      std::ostream& os, const std::vector<EngineScaleRecord>& records);

  /// The `BENCH_universe_scale.json` schema: simulated rank-steps/sec
  /// vs rank count for whole modeled-mode universes, direct and
  /// compiled replay.
  static void write_bench_universe_scale_json(
      std::ostream& os, const std::vector<UniverseScaleRecord>& records);

  /// The `BENCH_collective_sweep.json` schema: per-algorithm virtual
  /// time series for each (profile, op, nranks) cell, plus a
  /// `crossovers` section naming the fastest algorithm at the smallest
  /// and largest swept size of every such cell.
  static void write_bench_collective_sweep_json(
      std::ostream& os, const std::vector<CollectiveSweepRecord>& records);

 private:
  std::vector<SweepResult> sweeps_;
  std::vector<KernelRecord> kernels_;
};

}  // namespace ncsend
