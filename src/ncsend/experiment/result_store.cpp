#include "ncsend/experiment/result_store.hpp"

#include <cstdio>
#include <iomanip>
#include <ostream>

namespace ncsend {
namespace {

/// Emit one sweep as the flat self-describing JSON object (the schema
/// plotting scripts ingest; matplotlib/pandas can regenerate the
/// paper's figures directly from it).
void emit_sweep_document(std::ostream& os, const SweepResult& r,
                         const char* indent) {
  const std::string in(indent);
  os << "{\n" << in << "  \"pattern\": \"" << json_escape(r.pattern)
     << "\",\n" << in << "  \"nranks\": " << r.nranks << ",\n"
     << in << "  \"profile\": \"" << json_escape(r.profile_name)
     << "\",\n" << in << "  \"layout\": \"" << json_escape(r.layout_name)
     << "\",\n" << in << "  \"sizes_bytes\": [";
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si)
    os << (si ? ", " : "") << r.sizes_bytes[si];
  os << "],\n" << in << "  \"schemes\": [";
  for (std::size_t ci = 0; ci < r.schemes.size(); ++ci)
    os << (ci ? ", " : "") << "\"" << json_escape(r.schemes[ci]) << "\"";
  os << "],\n" << in << "  \"cells\": [\n";
  bool first = true;
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
    for (std::size_t ci = 0; ci < r.schemes.size(); ++ci) {
      const auto& cell = r.cells[si][ci];
      os << (first ? "" : ",\n") << in << "    {\"size_bytes\": "
         << r.sizes_bytes[si] << ", \"scheme\": \""
         << json_escape(r.schemes[ci]) << "\", \"time_s\": "
         << std::scientific << std::setprecision(9) << cell.time()
         << ", \"bandwidth_GBps\": " << cell.bandwidth_Bps() / 1e9
         << ", \"slowdown\": " << r.slowdown(si, ci) << ", \"stddev_s\": "
         << cell.timing.stddev << ", \"reps\": " << cell.timing.samples
         << ", \"verified\": " << (cell.verified ? "true" : "false") << "}";
      first = false;
    }
  }
  os << "\n" << in << "  ]\n" << in << "}";
}

/// Shared tail of one BENCH grid entry: the sizes/schemes/time_s
/// arrays both flat-JSON benchmark writers emit (single source for the
/// grammar CI byte-compares).
void emit_grid_entry_tail(std::ostream& os, const SweepResult& r) {
  os << "\"sizes_bytes\": [";
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si)
    os << (si ? ", " : "") << r.sizes_bytes[si];
  os << "], \"schemes\": [";
  for (std::size_t ci = 0; ci < r.schemes.size(); ++ci)
    os << (ci ? ", " : "") << "\"" << json_escape(r.schemes[ci]) << "\"";
  os << "],\n     \"time_s\": [";
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
    os << (si ? ", " : "") << "[";
    for (std::size_t ci = 0; ci < r.schemes.size(); ++ci)
      os << (ci ? ", " : "") << r.time(si, ci);
    os << "]";
  }
  os << "]}";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void ResultStore::write_csv(std::ostream& os) const {
  const auto old_flags = os.flags();
  const auto old_precision = os.precision();
  os << "pattern,profile,layout,size_bytes,scheme,time_s,bandwidth_GBps,"
        "slowdown,verified\n";
  for (const auto& r : sweeps_) {
    for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
      for (std::size_t ci = 0; ci < r.schemes.size(); ++ci) {
        const auto& cell = r.cells[si][ci];
        os << r.pattern << "," << r.profile_name << "," << r.layout_name
           << ","
           << r.sizes_bytes[si] << "," << r.schemes[ci] << ","
           << std::scientific << std::setprecision(6) << cell.time() << ","
           << cell.bandwidth_Bps() / 1e9 << "," << r.slowdown(si, ci) << ","
           << (cell.verified ? 1 : 0) << "\n";
      }
    }
  }
  os.flags(old_flags);
  os.precision(old_precision);
}

void ResultStore::write_sweep_json(std::ostream& os) const {
  const auto old_flags = os.flags();
  const auto old_precision = os.precision();
  if (sweeps_.size() == 1) {
    emit_sweep_document(os, sweeps_.front(), "");
    os << "\n";
  } else {
    os << "{\n  \"sweeps\": [\n";
    for (std::size_t i = 0; i < sweeps_.size(); ++i) {
      os << "    ";
      emit_sweep_document(os, sweeps_[i], "    ");
      os << (i + 1 < sweeps_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
  }
  os.flags(old_flags);
  os.precision(old_precision);
}

void ResultStore::write_bench_sweep_json(std::ostream& os) const {
  // Pin the number format so the emitted bytes do not depend on the
  // caller's ambient stream state (CI byte-compares these files).
  const auto old_flags = os.flags();
  const auto old_precision = os.precision();
  os << std::defaultfloat << std::setprecision(6);
  os << "{\n  \"benchmark\": \"scheme_sweep\",\n  \"unit\": \"s\",\n"
     << "  \"profiles\": [\n";
  for (std::size_t i = 0; i < sweeps_.size(); ++i) {
    const SweepResult& r = sweeps_[i];
    os << "    {\"profile\": \"" << json_escape(r.profile_name)
       << "\", \"layout\": \"" << json_escape(r.layout_axis) << "\", ";
    emit_grid_entry_tail(os, r);
    os << (i + 1 < sweeps_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.flags(old_flags);
  os.precision(old_precision);
}

void ResultStore::write_bench_pattern_sweep_json(std::ostream& os) const {
  const auto old_flags = os.flags();
  const auto old_precision = os.precision();
  os << std::defaultfloat << std::setprecision(6);
  os << "{\n  \"benchmark\": \"pattern_sweep\",\n  \"unit\": \"s\",\n"
     << "  \"entries\": [\n";
  for (std::size_t i = 0; i < sweeps_.size(); ++i) {
    const SweepResult& r = sweeps_[i];
    os << "    {\"pattern\": \"" << json_escape(r.pattern)
       << "\", \"nranks\": " << r.nranks << ", \"profile\": \""
       << json_escape(r.profile_name) << "\", \"layout\": \""
       << json_escape(r.layout_axis) << "\",\n     \"payload_bytes\": [";
    // sizes_bytes labels the per-message size axis; payload_bytes is
    // what the busiest rank actually injects per step (e.g. 4 faces for
    // an interior halo2d rank) — the denominator behind bandwidth.
    for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si)
      os << (si ? ", " : "")
         << (r.cells[si].empty() ? r.sizes_bytes[si]
                                 : r.cells[si].front().payload_bytes);
    os << "], ";
    emit_grid_entry_tail(os, r);
    os << (i + 1 < sweeps_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.flags(old_flags);
  os.precision(old_precision);
}

void ResultStore::write_bench_pack_engine_json(std::ostream& os) const {
  const auto old_flags = os.flags();
  const auto old_precision = os.precision();
  os << std::defaultfloat << std::setprecision(6);
  os << "{\n  \"benchmark\": \"pack_engine\",\n  \"unit\": \"GB/s\",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < kernels_.size(); ++i)
    os << "    {\"kernel\": \"" << json_escape(kernels_[i].kernel)
       << "\", \"payload_bytes\": " << kernels_[i].payload_bytes
       << ", \"gbps\": " << kernels_[i].gbps << "}"
       << (i + 1 < kernels_.size() ? "," : "") << "\n";
  os << "  ]\n}\n";
  os.flags(old_flags);
  os.precision(old_precision);
}

void ResultStore::write_bench_eager_limit_json(std::ostream& os,
                                               const SweepResult& base,
                                               const SweepResult& raised,
                                               std::size_t override_bytes) {
  const auto old_flags = os.flags();
  const auto old_precision = os.precision();
  os << std::defaultfloat << std::setprecision(6);
  os << "{\n  \"benchmark\": \"eager_limit\",\n"
     << "  \"profile\": \"" << json_escape(base.profile_name)
     << "\",\n  \"override_bytes\": " << override_bytes
     << ",\n  \"results\": [\n";
  bool first = true;
  for (std::size_t si = 0; si < base.sizes_bytes.size(); ++si)
    for (std::size_t ci = 0; ci < base.schemes.size(); ++ci) {
      if (!first) os << ",\n";
      first = false;
      os << "    {\"scheme\": \"" << json_escape(base.schemes[ci])
         << "\", \"size_bytes\": " << base.sizes_bytes[si]
         << ", \"time_s\": " << base.time(si, ci)
         << ", \"time_raised_s\": " << raised.time(si, ci) << "}";
    }
  os << "\n  ]\n}\n";
  os.flags(old_flags);
  os.precision(old_precision);
}

void ResultStore::write_bench_engine_scale_json(
    std::ostream& os, const std::vector<EngineScaleRecord>& records) {
  const auto old_flags = os.flags();
  const auto old_precision = os.precision();
  os << std::defaultfloat << std::setprecision(6);
  os << "{\n  \"benchmark\": \"engine_scale\",\n"
     << "  \"unit\": \"rank_steps_per_sec\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const EngineScaleRecord& r = records[i];
    os << "    {\"pattern\": \"" << json_escape(r.pattern)
       << "\", \"scheme\": \"" << json_escape(r.scheme)
       << "\", \"nranks\": " << r.nranks
       << ", \"payload_bytes\": " << r.payload_bytes
       << ", \"iters\": " << r.iters << ",\n     \"direct_seconds\": "
       << r.direct_seconds
       << ", \"compiled_seconds\": " << r.compiled_seconds
       << ", \"cells_per_sec_direct\": "
       << (r.direct_seconds > 0.0 ? 1.0 / r.direct_seconds : 0.0)
       << ", \"cells_per_sec_compiled\": "
       << (r.compiled_seconds > 0.0 ? 1.0 / r.compiled_seconds : 0.0)
       << ",\n     \"rank_steps_per_sec_direct\": "
       << r.direct_rank_steps_per_sec()
       << ", \"rank_steps_per_sec_compiled\": "
       << r.compiled_rank_steps_per_sec()
       << ", \"speedup\": " << r.speedup()
       << ", \"identical\": " << (r.identical ? "true" : "false")
       << ",\n     \"messages\": " << r.perf.messages
       << ", \"hot_allocs\": " << r.perf.hot_allocs
       << ", \"allocs_per_message\": " << r.perf.allocs_per_message()
       << ", \"probes_per_message\": " << r.perf.probes_per_message()
       << ", \"fiber_switches_per_rank_step\": "
       << r.perf.switches_per_rank_step(r.rank_steps()) << "}"
       << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.flags(old_flags);
  os.precision(old_precision);
}

void ResultStore::write_bench_universe_scale_json(
    std::ostream& os, const std::vector<UniverseScaleRecord>& records) {
  const auto old_flags = os.flags();
  const auto old_precision = os.precision();
  os << std::defaultfloat << std::setprecision(6);
  os << "{\n  \"benchmark\": \"universe_scale\",\n"
     << "  \"unit\": \"rank_steps_per_sec\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const UniverseScaleRecord& r = records[i];
    os << "    {\"pattern\": \"" << json_escape(r.pattern)
       << "\", \"scheme\": \"" << json_escape(r.scheme)
       << "\", \"nranks\": " << r.nranks
       << ", \"payload_bytes\": " << r.payload_bytes
       << ", \"reps\": " << r.reps << ",\n     \"direct_seconds\": "
       << r.direct_seconds << ", \"replay_seconds\": " << r.replay_seconds
       << ", \"rank_steps_per_sec_direct\": "
       << r.direct_rank_steps_per_sec()
       << ", \"rank_steps_per_sec_replay\": " << r.replay_rank_steps_per_sec()
       << ", \"verified\": " << (r.verified ? "true" : "false")
       << ",\n     \"messages\": " << r.perf.messages
       << ", \"hot_allocs\": " << r.perf.hot_allocs
       << ", \"allocs_per_message\": " << r.perf.allocs_per_message()
       << ", \"probes_per_message\": " << r.perf.probes_per_message()
       << ", \"fiber_switches_per_rank_step\": "
       << r.perf.switches_per_rank_step(r.rank_steps()) << "}"
       << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.flags(old_flags);
  os.precision(old_precision);
}

void ResultStore::write_bench_collective_sweep_json(
    std::ostream& os, const std::vector<CollectiveSweepRecord>& records) {
  const auto old_flags = os.flags();
  const auto old_precision = os.precision();
  os << std::defaultfloat << std::setprecision(6);
  os << "{\n  \"benchmark\": \"collective_sweep\",\n"
     << "  \"unit\": \"s\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const CollectiveSweepRecord& r = records[i];
    os << "    {\"profile\": \"" << json_escape(r.profile)
       << "\", \"op\": \"" << json_escape(r.op) << "\", \"algo\": \""
       << json_escape(r.algo) << "\", \"nranks\": " << r.nranks
       << ", \"scheme\": \"" << json_escape(r.scheme)
       << "\",\n     \"sizes_bytes\": [";
    for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si)
      os << (si ? ", " : "") << r.sizes_bytes[si];
    os << "], \"times_s\": [";
    for (std::size_t si = 0; si < r.times_s.size(); ++si)
      os << (si ? ", " : "") << r.times_s[si];
    os << "], \"verified\": " << (r.verified ? "true" : "false") << "}"
       << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"crossovers\": [\n";
  // One summary entry per (profile, op, nranks) cell: which algorithm
  // is fastest at the smallest and at the largest swept size.  The
  // tree-vs-ring story is readable straight from this section.
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const CollectiveSweepRecord& r = records[i];
    bool lead = true;  // first record of its (profile, op, nranks) group
    for (std::size_t j = 0; j < i; ++j)
      if (records[j].profile == r.profile && records[j].op == r.op &&
          records[j].nranks == r.nranks)
        lead = false;
    if (!lead || r.times_s.empty()) continue;
    const CollectiveSweepRecord* small = &r;
    const CollectiveSweepRecord* large = &r;
    for (const CollectiveSweepRecord& c : records) {
      if (c.profile != r.profile || c.op != r.op || c.nranks != r.nranks ||
          c.times_s.empty())
        continue;
      if (c.times_s.front() < small->times_s.front()) small = &c;
      if (c.times_s.back() < large->times_s.back()) large = &c;
    }
    lines.push_back("    {\"profile\": \"" + json_escape(r.profile) +
                    "\", \"op\": \"" + json_escape(r.op) +
                    "\", \"nranks\": " + std::to_string(r.nranks) +
                    ", \"small_winner\": \"" + json_escape(small->algo) +
                    "\", \"large_winner\": \"" + json_escape(large->algo) +
                    "\"}");
  }
  for (std::size_t i = 0; i < lines.size(); ++i)
    os << lines[i] << (i + 1 < lines.size() ? "," : "") << "\n";
  os << "  ]\n}\n";
  os.flags(old_flags);
  os.precision(old_precision);
}

void ResultStore::write_bench_ablation_json(
    std::ostream& os, std::string_view name,
    const std::vector<AblationVariant>& variants) {
  const auto old_flags = os.flags();
  const auto old_precision = os.precision();
  os << std::defaultfloat << std::setprecision(6);
  os << "{\n  \"benchmark\": \"" << json_escape(name)
     << "\",\n  \"unit\": \"s\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const SweepResult& r = variants[i].sweep;
    os << "    {\"variant\": \"" << json_escape(variants[i].label)
       << "\", \"pattern\": \"" << json_escape(r.pattern)
       << "\", \"profile\": \"" << json_escape(r.profile_name)
       << "\", \"layout\": \"" << json_escape(r.layout_axis) << "\",\n     ";
    emit_grid_entry_tail(os, r);
    os << (i + 1 < variants.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.flags(old_flags);
  os.precision(old_precision);
}

}  // namespace ncsend
