#include "ncsend/experiment/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "minimpi/base/error.hpp"
#include "ncsend/patterns/pattern.hpp"
#include "ncsend/plan/comm_plan.hpp"

namespace ncsend {
namespace {

/// One unit of work: a (pattern, profile, layout, size, scheme)
/// coordinate.
struct Cell {
  std::size_t ti, pi, li, si, ci;
};

}  // namespace

int default_jobs() {
  if (const char* env = std::getenv("NCSEND_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1'000'000)
      return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

PlanResult run_plan(const ExperimentPlan& plan, const ExecutorOptions& exec) {
  plan.validate();  // resolve every axis name before universes spin up
  const std::vector<std::size_t> sizes = plan.effective_sizes();

  // Materialize the pattern and layout axes up front (factories and
  // registry lookups need not be thread-safe) and the per-profile
  // universe options.
  std::vector<std::unique_ptr<CommPattern>> patterns;
  patterns.reserve(plan.patterns.size());
  for (const auto& name : plan.patterns)
    patterns.push_back(CommPattern::by_name(name));
  std::vector<std::vector<Layout>> layouts;  // [li][si]
  layouts.reserve(plan.layouts.size());
  for (const auto& axis : plan.layouts) {
    std::vector<Layout> per_size;
    per_size.reserve(sizes.size());
    for (const std::size_t bytes : sizes) {
      const std::size_t elems =
          std::max<std::size_t>(1, bytes / sizeof(double));
      per_size.push_back(axis.factory(elems));
    }
    layouts.push_back(std::move(per_size));
  }
  std::vector<minimpi::UniverseOptions> opts;
  opts.reserve(plan.profiles.size());
  for (std::size_t pi = 0; pi < plan.profiles.size(); ++pi)
    opts.push_back(plan.universe_options(pi));

  // Preallocate every result slot so workers write disjoint memory.
  PlanResult result;
  result.plan_name = plan.name;
  result.pattern_count = patterns.size();
  result.profile_count = plan.profiles.size();
  result.layout_count = plan.layouts.size();
  result.sweeps.resize(patterns.size() * plan.profiles.size() *
                       plan.layouts.size());
  for (std::size_t ti = 0; ti < patterns.size(); ++ti) {
    for (std::size_t pi = 0; pi < plan.profiles.size(); ++pi) {
      for (std::size_t li = 0; li < plan.layouts.size(); ++li) {
        SweepResult& s =
            result.sweeps[(ti * plan.profiles.size() + pi) *
                              plan.layouts.size() +
                          li];
        s.pattern = patterns[ti]->name();
        s.nranks = patterns[ti]->nranks();
        s.profile_name = plan.profiles[pi]->name;
        s.layout_name = layouts[li].empty() ? std::string()
                                            : layouts[li].front().name();
        s.layout_axis =
            plan.layouts[li].name.empty() ? s.layout_name
                                          : plan.layouts[li].name;
        // Label rows with the per-message payload the layout actually
        // carries: factories may round a grid size down (e.g. to whole
        // blocks).  For multi-rank patterns each cell additionally
        // records the busiest rank's per-step traffic in its own
        // payload_bytes (a halo2d interior rank sends several faces),
        // which is what bandwidth readings divide by.
        s.sizes_bytes.reserve(sizes.size());
        for (const Layout& l : layouts[li])
          s.sizes_bytes.push_back(l.payload_bytes());
        s.schemes = plan.schemes;
        s.cells.assign(sizes.size(),
                       std::vector<RunResult>(plan.schemes.size()));
      }
    }
  }

  std::vector<Cell> cells;
  cells.reserve(plan.cell_count());
  for (std::size_t ti = 0; ti < patterns.size(); ++ti)
    for (std::size_t pi = 0; pi < plan.profiles.size(); ++pi)
      for (std::size_t li = 0; li < plan.layouts.size(); ++li)
        for (std::size_t si = 0; si < sizes.size(); ++si)
          for (std::size_t ci = 0; ci < plan.schemes.size(); ++ci)
            cells.push_back({ti, pi, li, si, ci});

  const bool replaying = plan.compiled_replay || plan.replay_iters > 0;
  const auto run_cell = [&](const Cell& c) {
    RunResult& slot =
        result
            .sweeps[(c.ti * plan.profiles.size() + c.pi) *
                        plan.layouts.size() +
                    c.li]
            .cells[c.si][c.ci];
    if (replaying) {
      // Compile once (a 2-3 rep capture), then interpret the frozen
      // charge program for the full rep count.  With the passes off
      // the replayed samples are bit-identical to direct execution, so
      // an uncompilable cell can silently fall back — unless the plan
      // demands extrapolated iterations, where silence would change
      // the sample count.
      ncsend::plan::PassOptions passes;
      passes.aggregate_small = plan.replay_aggregate_small;
      passes.sort_injections = plan.replay_sort_injections;
      const ncsend::plan::CommPlan cp = ncsend::plan::compile_cell(
          opts[c.pi], *patterns[c.ti], plan.schemes[c.ci],
          layouts[c.li][c.si], plan.harness, passes);
      if (cp.valid) {
        slot = cp.replay(plan.replay_iters > 0 ? plan.replay_iters
                                               : plan.harness.reps);
        return;
      }
      minimpi::require(plan.replay_iters <= 0,
                       minimpi::ErrorClass::invalid_arg,
                       "cell (" + std::string(patterns[c.ti]->name()) +
                           ", " + plan.schemes[c.ci] +
                           ") is not compilable: " + cp.invalid_reason);
    }
    slot = run_pattern_experiment(opts[c.pi], *patterns[c.ti],
                                  plan.schemes[c.ci], layouts[c.li][c.si],
                                  plan.harness);
  };

  int jobs = exec.jobs > 0 ? exec.jobs : default_jobs();
  jobs = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), cells.size()));

  if (jobs <= 1) {
    for (const Cell& c : cells) run_cell(c);
    return result;
  }

  // Worker pool over an atomic cursor.  Cells land in preallocated
  // slots, so completion order cannot affect the assembled result; a
  // failing cell stops the dispatch and its exception is rethrown once
  // the pool has drained.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    pool.emplace_back([&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= cells.size()) return;
        try {
          run_cell(cells[i]);
        } catch (...) {
          std::lock_guard lk(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

}  // namespace ncsend
