#pragma once
/// \file cli.hpp
/// \brief The engine's shared command-line parser for bench drivers.
///
/// Every bench executable (figures, ablations, run_all) accepts the
/// same flag set, parsed here.  Unknown flags and malformed values are
/// hard errors: `parse` prints usage to stderr and exits with status 2
/// (the old per-bench parsers silently kept going).
///
/// Flags:
///   --quick           CI-friendly grids (2 points/decade, 5 reps)
///   --per-decade N    size-grid density (default 4)
///   --reps N          ping-pongs per measurement (default 20, §3.2)
///   --jobs N          worker threads for independent cells
///                     (default: NCSEND_JOBS, else hardware concurrency;
///                     results are byte-identical at any job count)
///   --pattern NAME    communication pattern to sweep (repeatable;
///                     "pingpong", "multi-pair(P)", "halo2d(RxC)",
///                     "halo3d(XxYxZ)", "transpose(N)",
///                     "graph(ring:N|star:N|hyper:N|N:a>b.c>d...)");
///                     default: each bench's own set.  Malformed specs
///                     exit 2; output labels use the canonical form
///   --collective SPEC collective cell to sweep (repeatable;
///                     "op:algo:N" or "collective(op:algo:N)" with
///                     op = allreduce|bcast|allgather|reduce-scatter
///                     and algo = tree|ring|rd); default: each bench's
///                     own set.  Malformed specs exit 2
///   --replay          route cells through compiled-plan replay
///                     (capture once, interpret; byte-identical output)
///   --iters N         replay iteration count (implies --replay;
///                     extrapolates the compiled plan past --reps)
///   --out-dir DIR     output directory (default "results")
///   --no-csv          skip CSV/JSON output files
///   --help            print usage and exit 0

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

namespace ncsend {

struct BenchCli {
  bool quick = false;
  int per_decade = 4;
  int reps = 20;
  int jobs = 0;  ///< 0 = default_jobs()
  /// `--pattern` values, validated against the pattern registry; empty
  /// means "the bench's default patterns".
  std::vector<std::string> patterns;
  /// `--collective` values, stored as canonical
  /// `collective(op:algo:N)` pattern names; empty means "the bench's
  /// default collective cells".
  std::vector<std::string> collectives;
  /// `--replay`: run every sweep through compiled-plan replay
  /// (`ExperimentPlan::compiled_replay`).
  bool replay = false;
  /// `--iters N`: strict replay iteration count
  /// (`ExperimentPlan::replay_iters`); 0 = use `--reps`.  Implies
  /// `--replay`.
  int iters = 0;
  std::string out_dir = "results";
  bool csv = true;

  /// Grid density with `--quick` applied.
  [[nodiscard]] int effective_per_decade() const {
    return quick ? 2 : per_decade;
  }
  /// Repetitions with `--quick` applied (never raises an explicit
  /// `--reps` below the default cap).
  [[nodiscard]] int effective_reps() const {
    return quick ? std::min(reps, 5) : reps;
  }

  /// \brief Parse or die: on any unknown flag or malformed value,
  /// prints the error and usage to stderr and exits with status 2.
  /// `--help` prints usage to stdout and exits 0.
  static BenchCli parse(int argc, char** argv);

  /// \brief For benches whose scenario is fixed (the ablations,
  /// model_validation): exit 2 if `--pattern` was given, instead of
  /// silently ignoring it.  `program` names the binary in the message.
  void reject_patterns(const std::string& program) const;

  /// \brief Testable core: returns the parsed flags, or `nullopt` with
  /// the offending diagnostic in `*error`.
  static std::optional<BenchCli> try_parse(int argc, char** argv,
                                           std::string* error);

  /// The usage text `parse` prints.
  static std::string usage(const std::string& program);
};

}  // namespace ncsend
