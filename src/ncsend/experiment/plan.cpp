#include "ncsend/experiment/plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "minimpi/base/error.hpp"
#include "ncsend/patterns/pattern.hpp"

namespace ncsend {

void ExperimentPlan::validate() const {
  minimpi::require(!profiles.empty(), minimpi::ErrorClass::invalid_arg,
                   "plan '" + name + "' names no machine profiles");
  for (const auto* p : profiles)
    minimpi::require(p != nullptr, minimpi::ErrorClass::invalid_arg,
                     "plan '" + name + "' carries a null machine profile");
  for (const auto& p : patterns) (void)CommPattern::by_name(p);
  for (const auto& s : schemes) {
    const auto scheme = make_transfer_scheme(s);
    // Strict extrapolated replay pins per-rank state (bsend pools) past
    // the capture run's teardown; schemes that tear that state down
    // cannot honor more iterations than were captured.
    minimpi::require(
        !(replay_iters > 0 && scheme->teardown_invalidates_pinned_state()),
        minimpi::ErrorClass::invalid_arg,
        "plan '" + name + "': scheme '" + s +
            "' tears down pinned state at teardown and cannot be "
            "replayed for extrapolated iterations (replay_iters)");
  }
  for (const auto& l : layouts)
    minimpi::require(static_cast<bool>(l.factory),
                     minimpi::ErrorClass::invalid_arg,
                     "layout axis '" + l.name + "' has no factory");
}

LayoutAxis LayoutAxis::stride2() {
  return {"stride2",
          [](std::size_t elems) { return Layout::strided(elems, 1, 2); }};
}

LayoutAxis LayoutAxis::indexed_blocks(std::size_t blocklen,
                                      std::uint64_t seed) {
  minimpi::require(blocklen >= 1, minimpi::ErrorClass::invalid_arg,
                   "indexed_blocks axis: blocklen must be >= 1");
  return {"indexed-blocks(b=" + std::to_string(blocklen) + ")",
          [blocklen, seed](std::size_t elems) {
            // `nblocks` fixed-length blocks scattered over a host array
            // twice the payload, only expressible as an indexed type.
            // The payload is rounded down to whole blocks (the executor
            // labels rows with the actual bytes sent).  Block starts
            // come from a deterministic LCG, snapped to non-overlapping
            // slots of 2*blocklen so the footprint matches stride2's.
            const std::size_t nblocks =
                std::max<std::size_t>(1, elems / blocklen);
            const std::size_t slots = 2 * nblocks;
            std::vector<std::size_t> chosen;
            chosen.reserve(nblocks);
            std::vector<bool> used(slots, false);
            std::uint64_t x = seed * 2654435761ULL + 1;
            while (chosen.size() < nblocks) {
              x = x * 6364136223846793005ULL + 1442695040888963407ULL;
              const std::size_t slot =
                  static_cast<std::size_t>((x >> 17) % slots);
              if (!used[slot]) {
                used[slot] = true;
                chosen.push_back(slot * blocklen);
              }
            }
            std::sort(chosen.begin(), chosen.end());
            return Layout::indexed(std::move(chosen), blocklen);
          }};
}

LayoutAxis LayoutAxis::by_name(std::string_view name) {
  if (name == "stride2") return stride2();
  if (name == "indexed-blocks") return indexed_blocks();
  // Round-trip the parameterized ids the engine records in results:
  // "indexed-blocks(b=N)".
  constexpr std::string_view prefix = "indexed-blocks(b=";
  if (name.size() > prefix.size() + 1 && name.starts_with(prefix) &&
      name.back() == ')') {
    const std::string digits(
        name.substr(prefix.size(), name.size() - prefix.size() - 1));
    char* end = nullptr;
    const unsigned long b = std::strtoul(digits.c_str(), &end, 10);
    if (end != digits.c_str() && *end == '\0' && b >= 1)
      return indexed_blocks(b);
  }
  minimpi::require(false, minimpi::ErrorClass::invalid_arg,
                   "unknown layout axis: " + std::string(name));
  return {};
}

const std::vector<std::string>& LayoutAxis::names() {
  static const std::vector<std::string> v = {"stride2", "indexed-blocks"};
  return v;
}

std::vector<std::size_t> ExperimentPlan::effective_sizes() const {
  return sizes_bytes.empty() ? paper_sizes() : sizes_bytes;
}

std::size_t ExperimentPlan::cell_count() const {
  return patterns.size() * profiles.size() * layouts.size() *
         effective_sizes().size() * schemes.size();
}

minimpi::UniverseOptions ExperimentPlan::universe_options(
    std::size_t profile_index) const {
  minimpi::UniverseOptions opts;
  opts.nranks = 2;
  opts.profile = profiles.at(profile_index);
  opts.functional = true;
  opts.functional_payload_limit = functional_payload_limit;
  opts.eager_limit_override = eager_limit_override;
  opts.nic_occupancy_contention = nic_occupancy_contention;
  opts.wtime_resolution = wtime_resolution;
  return opts;
}

std::vector<std::size_t> log_sizes(double lo, double hi, int per_decade) {
  std::vector<std::size_t> sizes;
  const double step = std::pow(10.0, 1.0 / per_decade);
  for (double s = lo; s <= hi * 1.0001; s *= step) {
    auto bytes = static_cast<std::size_t>(std::llround(s));
    bytes -= bytes % 8;  // whole doubles
    if (bytes >= 8 && (sizes.empty() || bytes != sizes.back()))
      sizes.push_back(bytes);
  }
  return sizes;
}

std::vector<std::size_t> paper_sizes(int per_decade) {
  return log_sizes(1e3, 1e9, per_decade);
}

}  // namespace ncsend
