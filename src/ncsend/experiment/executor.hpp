#pragma once
/// \file executor.hpp
/// \brief Parallel plan execution over a worker pool.
///
/// Every cell of an `ExperimentPlan` is one independent simulated
/// Universe (2-rank for the ping-pong pattern, N-rank for the
/// multi-rank patterns): its timing is *virtual*, computed from the
/// cost model, and completely insensitive to host scheduling
/// (DESIGN.md §2, §2.6).
/// The executor therefore dispatches cells across `jobs` worker threads
/// and is required — and tested — to produce byte-identical results to
/// the serial walk.  `jobs <= 1` falls back to a plain loop on the
/// calling thread.

#include "ncsend/experiment/plan.hpp"
#include "ncsend/experiment/result.hpp"

namespace ncsend {

struct ExecutorOptions {
  /// Worker threads for independent cells; 0 = `default_jobs()`,
  /// 1 = serial on the calling thread.
  int jobs = 0;
};

/// \brief Default worker count: the `NCSEND_JOBS` environment variable
/// if set to a positive integer, else the hardware concurrency (>= 1).
int default_jobs();

/// \brief Run every cell of the plan and assemble the per-(profile,
/// layout) sweeps.  Rethrows the first cell failure after the pool
/// drains.  Parallel and serial execution produce identical results.
PlanResult run_plan(const ExperimentPlan& plan,
                    const ExecutorOptions& exec = {});

}  // namespace ncsend
