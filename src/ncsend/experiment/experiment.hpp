#pragma once
/// \file experiment.hpp
/// \brief Umbrella header for the experiment engine.
///
/// The engine turns the paper's deliverable — a grid of experiments
/// over machine profiles x layouts x sizes x send schemes — into a
/// subsystem:
///   * `ExperimentPlan` (plan.hpp) — the declarative grid;
///   * `run_plan` (executor.hpp) — parallel, deterministic execution
///     of independent cells over a worker pool;
///   * `SweepResult` / `PlanResult` (result.hpp) — the result grids;
///   * `ResultStore` (result_store.hpp) — the one writer layer for
///     CSV, sweep JSON, and the `BENCH_*.json` families;
///   * `BenchCli` (cli.hpp) — the shared bench command line.

#include "ncsend/experiment/cli.hpp"
#include "ncsend/experiment/executor.hpp"
#include "ncsend/experiment/plan.hpp"
#include "ncsend/experiment/result.hpp"
#include "ncsend/experiment/result_store.hpp"
