#include "ncsend/experiment/cli.hpp"

#include <cstdlib>
#include <iostream>

#include "minimpi/base/error.hpp"
#include "ncsend/collectives/collective.hpp"
#include "ncsend/patterns/pattern.hpp"

namespace ncsend {
namespace {

/// Parse a positive integer flag value; false on junk.
bool parse_positive(const std::string& text, int* out) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 1 || v > 1'000'000)
    return false;
  *out = static_cast<int>(v);
  return true;
}

std::string basename_of(const char* argv0) {
  std::string p = argv0 != nullptr ? argv0 : "bench";
  const auto slash = p.find_last_of('/');
  return slash == std::string::npos ? p : p.substr(slash + 1);
}

}  // namespace

std::string BenchCli::usage(const std::string& program) {
  return "usage: " + program +
         " [--quick] [--per-decade N] [--reps N] [--jobs N]"
         " [--pattern NAME] [--collective SPEC] [--replay] [--iters N]"
         " [--out-dir DIR] [--no-csv] [--help]\n"
         "  --quick        CI-friendly grids (2 points/decade, 5 reps)\n"
         "  --per-decade N size-grid density (default 4)\n"
         "  --reps N       ping-pongs per measurement (default 20)\n"
         "  --jobs N       worker threads for independent sweep cells\n"
         "                 (default: NCSEND_JOBS env, else hardware "
         "concurrency)\n"
         "  --pattern NAME communication pattern (repeatable): pingpong,\n"
         "                 multi-pair(P), halo2d(RxC), halo3d(XxYxZ),\n"
         "                 transpose(N), graph(ring:N|star:N|hyper:N),\n"
         "                 graph(N:a>b.c>d...)\n"
         "  --collective SPEC\n"
         "                 collective cell (repeatable): op:algo:N or\n"
         "                 collective(op:algo:N); op = allreduce, bcast,\n"
         "                 allgather, reduce-scatter; algo = tree, ring,\n"
         "                 rd (rd needs power-of-two N)\n"
         "  --replay       route cells through compiled-plan replay\n"
         "                 (capture once, interpret; byte-identical "
         "output)\n"
         "  --iters N      replay iteration count (implies --replay;\n"
         "                 extrapolates the compiled plan past --reps)\n"
         "  --out-dir DIR  output directory (default \"results\")\n"
         "  --no-csv       skip CSV/JSON output files\n";
}

std::optional<BenchCli> BenchCli::try_parse(int argc, char** argv,
                                            std::string* error) {
  BenchCli cli;
  const auto value_of = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cli.quick = true;
    } else if (arg == "--no-csv") {
      cli.csv = false;
    } else if (arg == "--per-decade" || arg == "--reps" ||
               arg == "--jobs" || arg == "--iters") {
      const char* v = value_of(i);
      int* target = arg == "--per-decade" ? &cli.per_decade
                    : arg == "--reps"     ? &cli.reps
                    : arg == "--jobs"     ? &cli.jobs
                                          : &cli.iters;
      if (v == nullptr || !parse_positive(v, target)) {
        if (error)
          *error = arg + " needs a positive integer argument";
        return std::nullopt;
      }
      if (arg == "--iters") cli.replay = true;
    } else if (arg == "--replay") {
      cli.replay = true;
    } else if (arg == "--pattern") {
      const char* v = value_of(i);
      if (v == nullptr) {
        if (error) *error = "--pattern needs a pattern name argument";
        return std::nullopt;
      }
      try {
        // Validate against the registry and record the canonical id.
        cli.patterns.push_back(CommPattern::by_name(v)->name());
      } catch (const minimpi::Error&) {
        if (error)
          *error = "--pattern: unknown communication pattern: " +
                   std::string(v);
        return std::nullopt;
      }
    } else if (arg == "--collective") {
      const char* v = value_of(i);
      if (v == nullptr) {
        if (error) *error = "--collective needs an op:algo:N argument";
        return std::nullopt;
      }
      // Accept a bare "op:algo:N" spec or the full pattern name; either
      // way validate through the registry and store the canonical form.
      std::string spec = v;
      if (!coll::is_collective_pattern_name(spec))
        spec = "collective(" + spec + ")";
      try {
        cli.collectives.push_back(CommPattern::by_name(spec)->name());
      } catch (const minimpi::Error&) {
        if (error)
          *error = "--collective: malformed collective spec: " +
                   std::string(v) +
                   " (want op:algo:N, e.g. allreduce:ring:32)";
        return std::nullopt;
      }
    } else if (arg == "--out-dir") {
      const char* v = value_of(i);
      if (v == nullptr) {
        if (error) *error = "--out-dir needs a directory argument";
        return std::nullopt;
      }
      cli.out_dir = v;
    } else {
      if (error) *error = "unknown flag: " + arg;
      return std::nullopt;
    }
  }
  return cli;
}

void BenchCli::reject_patterns(const std::string& program) const {
  if (patterns.empty()) return;
  std::cerr << program
            << ": --pattern is not supported here (this bench's "
               "communication scenario is fixed)\n";
  std::exit(2);
}

BenchCli BenchCli::parse(int argc, char** argv) {
  const std::string program = basename_of(argc > 0 ? argv[0] : nullptr);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::cout << usage(program);
      std::exit(0);
    }
  }
  std::string error;
  if (auto cli = try_parse(argc, argv, &error)) return *cli;
  std::cerr << program << ": " << error << "\n" << usage(program);
  std::exit(2);
}

}  // namespace ncsend
