#pragma once
/// \file plan.hpp
/// \brief Declarative experiment plans: the full grid a study runs.
///
/// An `ExperimentPlan` names every axis of the paper's deliverable —
/// communication patterns x machine profiles x layouts x message sizes
/// x send schemes — plus the harness options shared by all cells.  A
/// plan is pure data: nothing runs until the executor (executor.hpp)
/// walks the grid.  Each cell is one independent simulated Universe
/// (2-rank for the default ping-pong pattern, N-rank for the
/// multi-rank patterns) with a deterministic virtual clock, which is
/// what makes the grid embarrassingly parallel (DESIGN.md §2.5, §2.6).

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "minimpi/net/machine_profile.hpp"
#include "minimpi/runtime/comm.hpp"
#include "ncsend/harness.hpp"
#include "ncsend/layout.hpp"

namespace ncsend {

/// \brief One value of the layout axis: a named factory mapping an
/// element count to the `Layout` to send at that size.
struct LayoutAxis {
  std::string name;  ///< stable axis id ("" = use the layout's own name)
  std::function<Layout(std::size_t elems)> factory;

  /// The paper's canonical case: stride-2 vector ("the real parts of a
  /// complex array").
  static LayoutAxis stride2();
  /// Irregularly spaced fixed-length blocks (deterministic seed): the
  /// indexed-type workload the introduction motivates but the paper
  /// never sweeps.  `blocklen` doubles per block, blocks placed
  /// pseudo-randomly in a host array ~2x the payload; element counts
  /// round down to whole blocks (result rows are labeled with the
  /// actual payload).
  static LayoutAxis indexed_blocks(std::size_t blocklen = 4,
                                   std::uint64_t seed = 42);
  /// Registry lookup by axis name; throws MM_ERR_ARG for unknown names.
  static LayoutAxis by_name(std::string_view name);
  /// All registered axis names.
  static const std::vector<std::string>& names();
};

/// \brief The declarative grid; subsumes the old per-figure SweepConfig.
struct ExperimentPlan {
  /// Plan id, used for output file stems (`results/<name>.csv`).
  std::string name = "plan";
  /// Communication patterns to measure (`CommPattern::by_name` ids).
  /// The default is the paper's 2-rank ping-pong; the multi-rank
  /// patterns ("multi-pair(P)", "halo2d(RxC)", "halo3d(XxYxZ)",
  /// "transpose(N)") run the same peer-addressed transfer schemes as
  /// the harness, so every scheme name is valid under every pattern
  /// (`pattern_scheme_names()`).
  std::vector<std::string> patterns = {"pingpong"};
  std::vector<const minimpi::MachineProfile*> profiles = {
      &minimpi::MachineProfile::skx_impi()};
  std::vector<std::string> schemes = all_scheme_names();
  /// Payload sizes in bytes; empty means `paper_sizes()`.
  std::vector<std::size_t> sizes_bytes;
  std::vector<LayoutAxis> layouts = {LayoutAxis::stride2()};
  HarnessConfig harness;
  /// §4.5 experiment: force the eager limit.
  std::optional<std::size_t> eager_limit_override;
  /// Emergent NIC-occupancy contention: injections queue FIFO on each
  /// rank's NIC timeline instead of overlapping for free
  /// (`UniverseOptions::nic_occupancy_contention`).  Off by default —
  /// every seed curve is measured without it; `ablation_contention`
  /// compares it against the static `link_contention_factor` fallback.
  bool nic_occupancy_contention = false;
  /// Payloads up to this size move physically (and get verified).
  std::size_t functional_payload_limit = 1u << 20;
  /// MPI_Wtime tick (paper: 1e-6 s); 0 for exact clocks.
  double wtime_resolution = 1e-6;

  // --- compiled-plan replay (ncsend/plan/) -------------------------------
  /// Route every cell through compile-once/replay-many: capture a short
  /// program, interpret it for the full rep count.  Cells whose capture
  /// is not compilable silently fall back to direct execution, so
  /// results are identical either way (the passes-off guarantee).
  bool compiled_replay = false;
  /// When > 0: replay each compiled plan for this many iterations
  /// instead of `harness.reps` (implies `compiled_replay`).  Strict —
  /// an uncompilable cell is an error, and `validate()` rejects schemes
  /// whose teardown invalidates the pinned state replay extrapolates
  /// from (buffered's bsend-pool detach).
  int replay_iters = 0;
  /// Optimization passes applied to each compiled plan.  Both change
  /// modeled time (visibly, as plan-level charge actions); goldens hold
  /// only with both off.
  bool replay_aggregate_small = false;
  bool replay_sort_injections = false;

  /// Fail fast: resolve every pattern, scheme, and layout-axis entry
  /// before any universe spins up; throws MM_ERR_ARG naming the first
  /// offender.  `run_plan` calls this on entry.
  void validate() const;

  /// Sizes with the empty-means-paper default applied.
  [[nodiscard]] std::vector<std::size_t> effective_sizes() const;
  /// Total number of grid cells (universes the executor will run).
  [[nodiscard]] std::size_t cell_count() const;
  /// Universe options for one profile of the plan.
  [[nodiscard]] minimpi::UniverseOptions universe_options(
      std::size_t profile_index) const;
};

/// \brief Log-spaced sizes from `lo` to `hi` (inclusive-ish) with
/// `per_decade` points per decade, each rounded down to a multiple of 8
/// (whole doubles); duplicates after rounding are dropped.
std::vector<std::size_t> log_sizes(double lo, double hi, int per_decade);

/// \brief The paper's sweep range: 1e3 .. 1e9 bytes.
std::vector<std::size_t> paper_sizes(int per_decade = 4);

}  // namespace ncsend
