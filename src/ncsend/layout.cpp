#include "ncsend/layout.hpp"

#include <algorithm>
#include <unordered_set>

#include "minimpi/base/error.hpp"

namespace ncsend {

using minimpi::Datatype;
using minimpi::Error;
using minimpi::ErrorClass;

Layout Layout::contiguous(std::size_t count) {
  Layout l;
  l.kind_ = Kind::contiguous;
  l.name_ = "contiguous";
  l.elems_ = count;
  l.footprint_ = count;
  l.regular_ = true;
  return l;
}

Layout Layout::strided(std::size_t nblocks, std::size_t blocklen,
                       std::size_t stride) {
  minimpi::require(blocklen >= 1 && stride >= blocklen,
                   ErrorClass::invalid_arg,
                   "strided layout: need stride >= blocklen >= 1");
  Layout l;
  l.kind_ = Kind::strided;
  l.name_ = "strided(b=" + std::to_string(blocklen) +
            ",s=" + std::to_string(stride) + ")";
  l.nblocks_ = nblocks;
  l.blocklen_ = blocklen;
  l.stride_ = stride;
  l.elems_ = nblocks * blocklen;
  l.footprint_ = nblocks == 0 ? 0 : (nblocks - 1) * stride + blocklen;
  l.regular_ = true;
  return l;
}

Layout Layout::multigrid(std::size_t coarse_points, int level) {
  minimpi::require(level >= 1 && level < 30, ErrorClass::invalid_arg,
                   "multigrid level out of range");
  Layout l = strided(coarse_points, 1, std::size_t{1} << level);
  l.name_ = "multigrid(level=" + std::to_string(level) + ")";
  return l;
}

Layout Layout::fem_boundary(std::size_t count, std::size_t footprint,
                            std::uint64_t seed) {
  minimpi::require(count <= footprint, ErrorClass::invalid_arg,
                   "fem_boundary: more boundary nodes than mesh points");
  // Deterministic distinct positions via an LCG, then sorted: an
  // irregular but reproducible "boundary node" set.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(count * 2);
  std::uint64_t x = seed * 2654435761u + 1;
  while (chosen.size() < count) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    chosen.insert(static_cast<std::size_t>((x >> 17) % footprint));
  }
  std::vector<std::size_t> starts(chosen.begin(), chosen.end());
  std::sort(starts.begin(), starts.end());
  Layout l = indexed(std::move(starts), 1);
  l.name_ = "fem-boundary(n=" + std::to_string(count) + ")";
  l.footprint_ = footprint;
  return l;
}

Layout Layout::indexed(std::vector<std::size_t> block_starts,
                       std::size_t blocklen) {
  minimpi::require(blocklen >= 1, ErrorClass::invalid_arg,
                   "indexed layout: blocklen must be >= 1");
  for (std::size_t i = 1; i < block_starts.size(); ++i)
    minimpi::require(block_starts[i] >= block_starts[i - 1] + blocklen,
                     ErrorClass::invalid_arg,
                     "indexed layout: blocks must be sorted, non-overlapping");
  Layout l;
  l.kind_ = Kind::indexed;
  l.name_ = "indexed(blocks=" + std::to_string(block_starts.size()) + ")";
  l.blocklen_ = blocklen;
  l.elems_ = block_starts.size() * blocklen;
  l.footprint_ =
      block_starts.empty() ? 0 : block_starts.back() + blocklen;
  l.regular_ = false;
  l.block_starts_ = std::move(block_starts);
  return l;
}

Layout Layout::subarray2d(std::size_t rows, std::size_t cols,
                          std::size_t subrows, std::size_t subcols,
                          std::size_t row0, std::size_t col0) {
  minimpi::require(row0 + subrows <= rows && col0 + subcols <= cols,
                   ErrorClass::invalid_arg, "subarray2d: face out of range");
  Layout l;
  l.kind_ = Kind::subarray2d;
  l.name_ = "subarray2d(" + std::to_string(subrows) + "x" +
            std::to_string(subcols) + ")";
  l.rows_ = rows;
  l.cols_ = cols;
  l.subrows_ = subrows;
  l.subcols_ = subcols;
  l.row0_ = row0;
  l.col0_ = col0;
  l.elems_ = subrows * subcols;
  l.footprint_ = rows * cols;
  l.regular_ = true;  // fixed row pitch
  return l;
}

bool Layout::is_contiguous() const noexcept {
  switch (kind_) {
    case Kind::contiguous: return true;
    case Kind::strided: return stride_ == blocklen_ || nblocks_ <= 1;
    case Kind::indexed: return block_starts_.size() <= 1;
    case Kind::subarray2d: return subcols_ == cols_ || subrows_ <= 1;
  }
  return false;
}

minimpi::Datatype Layout::datatype(TypeStyle style) const {
  const Datatype f64 = Datatype::float64();
  Datatype t;
  switch (kind_) {
    case Kind::contiguous: {
      minimpi::require(style != TypeStyle::subarray, ErrorClass::invalid_arg,
                       "contiguous layout has no subarray description");
      t = Datatype::contiguous(elems_, f64);
      break;
    }
    case Kind::strided: {
      switch (style) {
        case TypeStyle::best:
        case TypeStyle::vector:
          t = Datatype::vector(nblocks_, blocklen_,
                               static_cast<std::ptrdiff_t>(stride_), f64);
          break;
        case TypeStyle::subarray: {
          // The same bytes described as the leading columns of an
          // (nblocks x stride) row-major array of doubles.
          const std::size_t sizes[] = {nblocks_, stride_};
          const std::size_t subsizes[] = {nblocks_, blocklen_};
          const std::size_t starts[] = {0, 0};
          t = Datatype::subarray(sizes, subsizes, starts, f64);
          break;
        }
        case TypeStyle::indexed: {
          std::vector<std::ptrdiff_t> displs(nblocks_);
          for (std::size_t i = 0; i < nblocks_; ++i)
            displs[i] = static_cast<std::ptrdiff_t>(i * stride_);
          t = Datatype::indexed_block(blocklen_, displs, f64);
          break;
        }
      }
      break;
    }
    case Kind::indexed: {
      minimpi::require(
          style == TypeStyle::best || style == TypeStyle::indexed,
          ErrorClass::invalid_arg,
          "irregular layout is only expressible as an indexed type");
      std::vector<std::ptrdiff_t> displs(block_starts_.size());
      for (std::size_t i = 0; i < block_starts_.size(); ++i)
        displs[i] = static_cast<std::ptrdiff_t>(block_starts_[i]);
      t = Datatype::indexed_block(blocklen_, displs, f64);
      break;
    }
    case Kind::subarray2d: {
      switch (style) {
        case TypeStyle::best:
        case TypeStyle::subarray: {
          const std::size_t sizes[] = {rows_, cols_};
          const std::size_t subsizes[] = {subrows_, subcols_};
          const std::size_t starts[] = {row0_, col0_};
          t = Datatype::subarray(sizes, subsizes, starts, f64);
          break;
        }
        case TypeStyle::vector: {
          // vector over rows, shifted to the anchor via hindexed.
          Datatype v = Datatype::vector(
              subrows_, subcols_, static_cast<std::ptrdiff_t>(cols_), f64);
          const std::size_t bl[] = {1};
          const std::ptrdiff_t d[] = {static_cast<std::ptrdiff_t>(
              (row0_ * cols_ + col0_) * sizeof(double))};
          t = Datatype::hindexed(bl, d, v);
          break;
        }
        case TypeStyle::indexed: {
          std::vector<std::ptrdiff_t> displs(subrows_);
          for (std::size_t r = 0; r < subrows_; ++r)
            displs[r] = static_cast<std::ptrdiff_t>((row0_ + r) * cols_ +
                                                    col0_);
          t = Datatype::indexed_block(subcols_, displs, f64);
          break;
        }
      }
      break;
    }
  }
  t.commit();
  return t;
}

}  // namespace ncsend
