#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

void OneSidedScheme::setup(TransferContext& ctx) {
  dtype_ = ctx.layout.datatype();
}

void OneSidedScheme::start(TransferContext& ctx,
                           std::vector<minimpi::Request>&) {
  // Paper §3.2: "we surrounded the transfer with active target
  // synchronization fences; the timers surrounded these fences."  The
  // driver opens and closes the fence epoch; the transfer itself is
  // one MPI_Put of the derived type into the peer's exposed region.
  ctx.window->put(ctx.user_data.data(), 1, dtype_, ctx.peer,
                  ctx.window_offset);
}

}  // namespace ncsend
