#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

void OneSidedScheme::setup(SchemeContext& ctx) {
  dtype_ = ctx.sender() ? ctx.layout.datatype() : minimpi::Datatype::float64();
  // Rank 1 exposes its contiguous receive buffer; rank 0 exposes nothing.
  if (ctx.sender()) {
    win_.emplace(ctx.comm.win_create(nullptr, 0));
  } else {
    win_.emplace(
        ctx.comm.win_create(ctx.recv_buf.data(), ctx.recv_buf.size()));
  }
}

void OneSidedScheme::teardown(SchemeContext&) { win_.reset(); }

void OneSidedScheme::run_rep(SchemeContext& ctx) {
  // Paper §3.2: "we surrounded the transfer with active target
  // synchronization fences; the timers surrounded these fences."
  win_->fence();
  if (ctx.sender()) win_->put(ctx.user_data.data(), 1, dtype_, 1, 0);
  win_->fence();
}

}  // namespace ncsend
