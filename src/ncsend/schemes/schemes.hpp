#pragma once
/// \file schemes.hpp
/// \brief Concrete peer-addressed transfer schemes (paper §2).  Tests
/// instantiate these directly; everything else goes through
/// `make_transfer_scheme` (engines) or `make_scheme` (ping-pong).

#include <optional>

#include "ncsend/scheme.hpp"

namespace ncsend {

/// §2.1 — contiguous send of the same byte count: the attainable rate.
/// The layout's data is staged once in `setup`, outside the timing
/// loop; the timed path is a pure contiguous send.
class ReferenceScheme final : public TransferScheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "reference"; }
  void setup(TransferContext& ctx) override;
  void start(TransferContext& ctx,
             std::vector<minimpi::Request>& out) override;

 private:
  minimpi::Buffer sendbuf_;
};

/// §2.2 — user gather loop into a reused contiguous buffer, then send.
class CopyingScheme final : public TransferScheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "copying"; }
  void setup(TransferContext& ctx) override;
  void start(TransferContext& ctx,
             std::vector<minimpi::Request>& out) override;

 private:
  minimpi::Buffer sendbuf_;
  minimpi::Datatype dtype_;
  minimpi::BlockStats stats_;
};

/// §2.4 — MPI_Buffer_attach + MPI_Bsend of the derived type.  The
/// attach itself is rank-wide, so the scheme only *sizes* its share
/// (`attach_bytes`); the driver attaches one pool for all transfers.
class BufferedScheme final : public TransferScheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "buffered"; }
  [[nodiscard]] std::size_t attach_bytes(
      const TransferContext& ctx) const override;
  /// The rank-wide attach pool a plan pins is detached at teardown.
  [[nodiscard]] bool teardown_invalidates_pinned_state() const override {
    return true;
  }
  void setup(TransferContext& ctx) override;
  void start(TransferContext& ctx,
             std::vector<minimpi::Request>& out) override;

 private:
  minimpi::Datatype dtype_;
};

/// §2.3 — direct send of a derived datatype (vector or subarray flavor).
class DerivedTypeScheme final : public TransferScheme {
 public:
  explicit DerivedTypeScheme(TypeStyle style) : style_(style) {}
  [[nodiscard]] std::string_view name() const override {
    return style_ == TypeStyle::subarray ? "subarray" : "vector type";
  }
  void setup(TransferContext& ctx) override;
  void start(TransferContext& ctx,
             std::vector<minimpi::Request>& out) override;

 private:
  TypeStyle style_;
  minimpi::Datatype dtype_;
};

/// §2.5 — MPI_Put of the derived type inside MPI_Win_fence epochs.  The
/// driver owns the window and the fences; `start` is just the put.
class OneSidedScheme final : public TransferScheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "onesided"; }
  [[nodiscard]] SyncMode sync_mode() const override {
    return SyncMode::fence;
  }
  void setup(TransferContext& ctx) override;
  void start(TransferContext& ctx,
             std::vector<minimpi::Request>& out) override;

 private:
  minimpi::Datatype dtype_;
};

/// §2.6 — one MPI_Pack call per element, send MPI_PACKED.
class PackingElementScheme final : public TransferScheme {
 public:
  /// Above this element count the functional path uses one engine
  /// gather instead of N literal pack calls (identical bytes; the model
  /// still charges N call overheads).
  static constexpr std::size_t element_loop_limit = 65536;

  [[nodiscard]] std::string_view name() const override {
    return "packing(e)";
  }
  void setup(TransferContext& ctx) override;
  void start(TransferContext& ctx,
             std::vector<minimpi::Request>& out) override;

 private:
  minimpi::Buffer packbuf_;
  minimpi::Datatype dtype_;
  minimpi::BlockStats stats_;
  std::vector<std::size_t> element_offsets_;  // element offsets, if looping
};

/// §2.6 — one MPI_Pack call on the whole derived type, send MPI_PACKED.
class PackingVectorScheme final : public TransferScheme {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "packing(v)";
  }
  void setup(TransferContext& ctx) override;
  void start(TransferContext& ctx,
             std::vector<minimpi::Request>& out) override;

 private:
  minimpi::Buffer packbuf_;
  minimpi::Datatype dtype_;
  minimpi::BlockStats stats_;
};

// ---------------------------------------------------------------------------
// Extension schemes (beyond the paper's eight; §4.7 "further tests")
// ---------------------------------------------------------------------------

/// Send-mode variants of the direct derived-type send: nonblocking
/// (isend+wait), synchronous (ssend), ready (rsend, receiver guaranteed
/// posted by both drivers' structure), and persistent
/// (send_init/start/wait).  Useful for isolating protocol costs.
class SendModeScheme final : public TransferScheme {
 public:
  enum class Mode { isend, ssend, rsend, persistent };

  explicit SendModeScheme(Mode mode) : mode_(mode) {}
  [[nodiscard]] std::string_view name() const override {
    switch (mode_) {
      case Mode::isend: return "isend(v)";
      case Mode::ssend: return "ssend(v)";
      case Mode::rsend: return "rsend(v)";
      case Mode::persistent: return "persistent(v)";
    }
    return "?";
  }
  void setup(TransferContext& ctx) override;
  void start(TransferContext& ctx,
             std::vector<minimpi::Request>& out) override;
  void finish(TransferContext& ctx) override;

 private:
  Mode mode_;
  minimpi::Datatype dtype_;
  minimpi::PersistentRequest preq_;
};

/// One-sided put synchronized with post/start/complete/wait instead of
/// fences: pairwise sync, so the small-message fence overhead (paper
/// §4.4 item 1) largely disappears.  The driver owns the window and
/// the PSCW epochs; `start` is just the put.
class OneSidedPscwScheme final : public TransferScheme {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "onesided-pscw";
  }
  [[nodiscard]] SyncMode sync_mode() const override { return SyncMode::pscw; }
  void setup(TransferContext& ctx) override;
  void start(TransferContext& ctx,
             std::vector<minimpi::Request>& out) override;

 private:
  minimpi::Datatype dtype_;
};

/// Pipelined packing — the "beat packing(v)" follow-up the paper's
/// conclusion invites: pack the derived type into user-space chunks and
/// isend each chunk while packing the next, double-buffered.  The pack
/// loop overlaps the wire instead of preceding it, so the large-message
/// time is bounded by max(pack, wire) instead of their sum.
class PackingPipelinedScheme final : public TransferScheme {
 public:
  /// Chunk granularity; the blocking driver keeps two chunk buffers in
  /// flight (double buffering).
  static constexpr std::size_t chunk_bytes = 512 * 1024;

  [[nodiscard]] std::string_view name() const override {
    return "packing(p)";
  }
  void setup(TransferContext& ctx) override;
  void start(TransferContext& ctx,
             std::vector<minimpi::Request>& out) override;
  void post_receives(minimpi::Comm& comm, minimpi::Rank from,
                     const Layout& layout, std::byte* ghost,
                     minimpi::Tag tag,
                     std::vector<minimpi::Request>& out) const override;

 private:
  std::vector<minimpi::Buffer> chunks_;
  minimpi::Datatype dtype_;
  minimpi::BlockStats stats_;
};

/// \brief Extension scheme names (not part of the paper's legend).
const std::vector<std::string>& extended_scheme_names();

/// \brief `layout.datatype(style)`, falling back to the layout's natural
/// constructor when the requested style cannot express it (e.g. a
/// "vector type" run over an irregular FEM boundary).
minimpi::Datatype styled_or_best(const Layout& layout, TypeStyle style);

}  // namespace ncsend
