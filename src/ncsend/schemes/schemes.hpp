#pragma once
/// \file schemes.hpp
/// \brief Concrete send schemes (paper §2).  Tests instantiate these
/// directly; everything else goes through `make_scheme`.

#include <optional>

#include "ncsend/scheme.hpp"

namespace ncsend {

/// §2.1 — contiguous send of the same byte count: the attainable rate.
class ReferenceScheme final : public TwoSidedScheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "reference"; }
  void setup(SchemeContext& ctx) override;
  void ping(SchemeContext& ctx) override;

 private:
  minimpi::Buffer sendbuf_;
};

/// §2.2 — user gather loop into a reused contiguous buffer, then send.
class CopyingScheme final : public TwoSidedScheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "copying"; }
  void setup(SchemeContext& ctx) override;
  void ping(SchemeContext& ctx) override;

 private:
  minimpi::Buffer sendbuf_;
  minimpi::Datatype dtype_;
  minimpi::BlockStats stats_;
};

/// §2.4 — MPI_Buffer_attach + MPI_Bsend of the derived type.
class BufferedScheme final : public TwoSidedScheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "buffered"; }
  void setup(SchemeContext& ctx) override;
  void teardown(SchemeContext& ctx) override;
  void ping(SchemeContext& ctx) override;

 private:
  minimpi::Buffer attach_buf_;
  minimpi::Datatype dtype_;
};

/// §2.3 — direct send of a derived datatype (vector or subarray flavor).
class DerivedTypeScheme final : public TwoSidedScheme {
 public:
  explicit DerivedTypeScheme(TypeStyle style) : style_(style) {}
  [[nodiscard]] std::string_view name() const override {
    return style_ == TypeStyle::subarray ? "subarray" : "vector type";
  }
  void setup(SchemeContext& ctx) override;
  void ping(SchemeContext& ctx) override;

 private:
  TypeStyle style_;
  minimpi::Datatype dtype_;
};

/// §2.5 — MPI_Put of the derived type inside MPI_Win_fence epochs.
class OneSidedScheme final : public SendScheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "onesided"; }
  void setup(SchemeContext& ctx) override;
  void teardown(SchemeContext& ctx) override;
  void run_rep(SchemeContext& ctx) override;

 private:
  std::optional<minimpi::Window> win_;
  minimpi::Datatype dtype_;
};

/// §2.6 — one MPI_Pack call per element, send MPI_PACKED.
class PackingElementScheme final : public TwoSidedScheme {
 public:
  /// Above this element count the functional path uses one engine
  /// gather instead of N literal pack calls (identical bytes; the model
  /// still charges N call overheads).
  static constexpr std::size_t element_loop_limit = 65536;

  [[nodiscard]] std::string_view name() const override {
    return "packing(e)";
  }
  void setup(SchemeContext& ctx) override;
  void ping(SchemeContext& ctx) override;

 private:
  minimpi::Buffer packbuf_;
  minimpi::Datatype dtype_;
  minimpi::BlockStats stats_;
  std::vector<std::size_t> element_offsets_;  // element offsets, if looping
};

/// §2.6 — one MPI_Pack call on the whole derived type, send MPI_PACKED.
class PackingVectorScheme final : public TwoSidedScheme {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "packing(v)";
  }
  void setup(SchemeContext& ctx) override;
  void ping(SchemeContext& ctx) override;

 private:
  minimpi::Buffer packbuf_;
  minimpi::Datatype dtype_;
  minimpi::BlockStats stats_;
};

// ---------------------------------------------------------------------------
// Extension schemes (beyond the paper's eight; §4.7 "further tests")
// ---------------------------------------------------------------------------

/// Send-mode variants of the direct derived-type send: nonblocking
/// (isend+wait), synchronous (ssend), ready (rsend, receiver guaranteed
/// posted by the ping-pong structure), and persistent
/// (send_init/start/wait).  Useful for isolating protocol costs.
class SendModeScheme final : public TwoSidedScheme {
 public:
  enum class Mode { isend, ssend, rsend, persistent };

  explicit SendModeScheme(Mode mode) : mode_(mode) {}
  [[nodiscard]] std::string_view name() const override {
    switch (mode_) {
      case Mode::isend: return "isend(v)";
      case Mode::ssend: return "ssend(v)";
      case Mode::rsend: return "rsend(v)";
      case Mode::persistent: return "persistent(v)";
    }
    return "?";
  }
  void setup(SchemeContext& ctx) override;
  void ping(SchemeContext& ctx) override;

 private:
  Mode mode_;
  minimpi::Datatype dtype_;
  minimpi::PersistentRequest preq_;
};

/// One-sided put synchronized with post/start/complete/wait instead of
/// fences: pairwise sync, so the small-message fence overhead (paper
/// §4.4 item 1) largely disappears.
class OneSidedPscwScheme final : public SendScheme {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "onesided-pscw";
  }
  void setup(SchemeContext& ctx) override;
  void teardown(SchemeContext& ctx) override;
  void run_rep(SchemeContext& ctx) override;

 private:
  std::optional<minimpi::Window> win_;
  minimpi::Datatype dtype_;
};

/// Pipelined packing — the "beat packing(v)" follow-up the paper's
/// conclusion invites: pack the derived type into user-space chunks and
/// isend each chunk while packing the next, double-buffered.  The pack
/// loop overlaps the wire instead of preceding it, so the large-message
/// time is bounded by max(pack, wire) instead of their sum.
class PackingPipelinedScheme final : public SendScheme {
 public:
  /// Chunk granularity; two chunk buffers are kept in flight.
  static constexpr std::size_t chunk_bytes = 512 * 1024;

  [[nodiscard]] std::string_view name() const override {
    return "packing(p)";
  }
  void setup(SchemeContext& ctx) override;
  void run_rep(SchemeContext& ctx) override;

 private:
  minimpi::Buffer chunk_[2];
  minimpi::Datatype dtype_;
  minimpi::BlockStats stats_;
};

/// \brief Extension scheme names (not part of the paper's legend).
const std::vector<std::string>& extended_scheme_names();

/// \brief `layout.datatype(style)`, falling back to the layout's natural
/// constructor when the requested style cannot express it (e.g. a
/// "vector type" run over an irregular FEM boundary).
minimpi::Datatype styled_or_best(const Layout& layout, TypeStyle style);

}  // namespace ncsend
