#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

void DerivedTypeScheme::setup(SchemeContext& ctx) {
  if (!ctx.sender()) return;
  // Type construction and commit happen outside the timing loop, as in
  // the paper; only the send itself is measured.
  dtype_ = styled_or_best(ctx.layout, style_);
}

void DerivedTypeScheme::ping(SchemeContext& ctx) {
  ctx.comm.send(ctx.user_data.data(), 1, dtype_, 1, ping_tag);
}

}  // namespace ncsend
