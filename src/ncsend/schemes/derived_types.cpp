#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

void DerivedTypeScheme::setup(TransferContext& ctx) {
  // Type construction and commit happen outside the timing loop, as in
  // the paper; only the send itself is measured.
  dtype_ = styled_or_best(ctx.layout, style_);
}

void DerivedTypeScheme::start(TransferContext& ctx,
                              std::vector<minimpi::Request>& out) {
  minimpi::Request r = ctx.inject(ctx.user_data.data(), 1, dtype_);
  if (r.valid()) out.push_back(std::move(r));
}

}  // namespace ncsend
