#include "minimpi/runtime/matching.hpp"
#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

void BufferedScheme::setup(SchemeContext& ctx) {
  if (!ctx.sender()) return;
  dtype_ = styled_or_best(ctx.layout, TypeStyle::vector);
  // Attach room for one in-flight message plus MPI's per-message
  // overhead (paper §2.4: MPI_Buffer_attach + MPI_Bsend).
  const std::size_t need =
      ctx.payload_bytes() + minimpi::detail::BsendPool::bsend_overhead_bytes;
  attach_buf_ = ctx.allocate(need);
  ctx.comm.buffer_attach(attach_buf_);
}

void BufferedScheme::teardown(SchemeContext& ctx) {
  if (!ctx.sender()) return;
  ctx.comm.buffer_detach();
}

void BufferedScheme::ping(SchemeContext& ctx) {
  ctx.comm.bsend(ctx.user_data.data(), 1, dtype_, 1, ping_tag);
}

}  // namespace ncsend
