#include "minimpi/runtime/matching.hpp"
#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

std::size_t BufferedScheme::attach_bytes(const TransferContext& ctx) const {
  // Room for one in-flight message plus MPI's per-message overhead
  // (paper §2.4: MPI_Buffer_attach + MPI_Bsend).  The driver attaches
  // one rank-wide pool summing every transfer's share.
  return ctx.payload_bytes() +
         minimpi::detail::BsendPool::bsend_overhead_bytes;
}

void BufferedScheme::setup(TransferContext& ctx) {
  dtype_ = styled_or_best(ctx.layout, TypeStyle::vector);
}

void BufferedScheme::start(TransferContext& ctx,
                           std::vector<minimpi::Request>&) {
  // Bsend never blocks on the receiver (the attached buffer absorbs
  // the message), so the blocking and posted drivers share this call.
  ctx.comm.bsend(ctx.user_data.data(), 1, dtype_, ctx.peer, ctx.tag);
}

}  // namespace ncsend
