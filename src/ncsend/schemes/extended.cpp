#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

// ---------------------------------------------------------------------------
// Send-mode variants of the direct derived-type send
// ---------------------------------------------------------------------------

void SendModeScheme::setup(TransferContext& ctx) {
  dtype_ = styled_or_best(ctx.layout, TypeStyle::vector);
  if (mode_ == Mode::persistent) {
    preq_ = ctx.comm.send_init(ctx.user_data.data(), 1, dtype_, ctx.peer,
                               ctx.tag);
  }
}

void SendModeScheme::start(TransferContext& ctx,
                           std::vector<minimpi::Request>& out) {
  switch (mode_) {
    case Mode::isend:
      // Nonblocking under both drivers; the blocking ping-pong driver
      // waits the request immediately, reproducing isend+wait.
      out.push_back(
          ctx.comm.isend(ctx.user_data.data(), 1, dtype_, ctx.peer, ctx.tag));
      break;
    case Mode::ssend: {
      minimpi::Request r = ctx.inject_sync(ctx.user_data.data(), 1, dtype_);
      if (r.valid()) out.push_back(std::move(r));
      break;
    }
    case Mode::rsend:
      // The ping-pong structure guarantees the receiver is already
      // posted, so ready mode is legal there and skips the handshake.
      // The N-rank engine posts every receive before any send within a
      // step, but cross-rank host timing is not enforced — the
      // simulator delivers regardless and charges ready-mode timing,
      // an idealization real MPI would leave undefined.  rsend never
      // blocks on the receiver.
      ctx.comm.rsend(ctx.user_data.data(), 1, dtype_, ctx.peer, ctx.tag);
      break;
    case Mode::persistent:
      preq_.start();
      break;
  }
}

void SendModeScheme::finish(TransferContext&) {
  if (mode_ == Mode::persistent) preq_.wait();
}

// ---------------------------------------------------------------------------
// One-sided with generalized active target synchronization
// ---------------------------------------------------------------------------

void OneSidedPscwScheme::setup(TransferContext& ctx) {
  dtype_ = ctx.layout.datatype();
}

void OneSidedPscwScheme::start(TransferContext& ctx,
                               std::vector<minimpi::Request>&) {
  // The driver has opened a start() access epoch to the peer; the
  // transfer is one put into its exposed contiguous region.
  ctx.window->put(ctx.user_data.data(), 1, dtype_, ctx.peer,
                  ctx.window_offset);
}

// ---------------------------------------------------------------------------
// Pipelined packing
// ---------------------------------------------------------------------------

void PackingPipelinedScheme::setup(TransferContext& ctx) {
  dtype_ = styled_or_best(ctx.layout, TypeStyle::vector);
  stats_ = dtype_.block_stats();
  const std::size_t total = ctx.payload_bytes();
  const std::size_t cb = std::min(chunk_bytes, total);
  // The chunk buffers follow the *whole message's* functional/phantom
  // mode: when a 1 GB sweep point runs modeled, individually-small
  // chunks must not smuggle gigabytes of real copies back in.
  const bool functional = ctx.comm.moves_payload(total);
  // The blocking ping-pong driver double-buffers (two chunks in
  // flight); the posted engine completes all chunk sends after its
  // receive drain, so functional runs need one live buffer per chunk.
  std::size_t nbuf = 2;
  if (!ctx.blocking && functional)
    nbuf = std::max<std::size_t>(1, (total + chunk_bytes - 1) / chunk_bytes);
  chunks_.clear();
  chunks_.reserve(nbuf);
  for (std::size_t i = 0; i < nbuf; ++i)
    chunks_.push_back(minimpi::Buffer::allocate(cb, functional));
}

void PackingPipelinedScheme::start(TransferContext& ctx,
                                   std::vector<minimpi::Request>& out) {
  const std::size_t total = ctx.payload_bytes();
  const std::size_t nchunks = (total + chunk_bytes - 1) / chunk_bytes;
  const minimpi::Datatype packed = minimpi::Datatype::packed();
  const auto& model = ctx.comm.model();

  // Pack chunk k and isend it; under the blocking driver, wait for the
  // send still using chunk k's buffer before refilling it (double
  // buffering: the pack loop overlaps the wire).  Under the posted
  // engine the chunk injections ride like any other concurrent
  // transfers — completed after the receive drain, wires overlapping —
  // which keeps cyclic patterns deadlock-free (DESIGN.md §2.7).
  minimpi::Request in_flight[2];
  std::size_t offset = 0;
  const double warm =
      ctx.cache.touch(ctx.user_region,
                      ctx.layout.footprint_elems() * sizeof(double));
  for (std::size_t k = 0; k < nchunks; ++k) {
    const std::size_t len = std::min(chunk_bytes, total - offset);
    // One pack call per chunk, chunk's share of the gather cost.
    ctx.comm.charge(model.call_overhead(1));
    minimpi::BlockStats chunk_stats = stats_;
    chunk_stats.total_bytes = len;
    chunk_stats.block_count =
        std::max<std::size_t>(1, stats_.block_count * len / total);
    ctx.comm.charge(model.user_copy_time(len, chunk_stats, warm));
    auto& buf = chunks_[k % chunks_.size()];
    if (ctx.blocking && in_flight[k % 2].valid()) in_flight[k % 2].wait();
    if (!buf.is_phantom() && !ctx.user_data.is_phantom()) {
      minimpi::pack_region(ctx.user_data.data(), 1, dtype_, offset,
                           buf.data(), len);
    }
    minimpi::Request r =
        ctx.comm.isend(buf.data(), len, packed, ctx.peer, ctx.tag);
    if (ctx.blocking)
      in_flight[k % 2] = std::move(r);
    else
      out.push_back(std::move(r));
    offset += len;
  }
  for (auto& r : in_flight)
    if (r.valid()) out.push_back(std::move(r));
}

void PackingPipelinedScheme::post_receives(
    minimpi::Comm& comm, minimpi::Rank from, const Layout& layout,
    std::byte* ghost, minimpi::Tag tag,
    std::vector<minimpi::Request>& out) const {
  // The chunked counterpart of the default contiguous receive: one
  // irecv per chunk, landing at the chunk's offset.
  const std::size_t total = layout.payload_bytes();
  const std::size_t nchunks = (total + chunk_bytes - 1) / chunk_bytes;
  const minimpi::Datatype f64 = minimpi::Datatype::float64();
  std::size_t offset = 0;
  for (std::size_t k = 0; k < nchunks; ++k) {
    const std::size_t len = std::min(chunk_bytes, total - offset);
    std::byte* dst = ghost == nullptr ? nullptr : ghost + offset;
    out.push_back(comm.irecv(dst, len / sizeof(double), f64, from, tag));
    offset += len;
  }
}

// ---------------------------------------------------------------------------
// Registry additions
// ---------------------------------------------------------------------------

const std::vector<std::string>& extended_scheme_names() {
  static const std::vector<std::string> names = {
      "isend(v)",      "ssend(v)",      "rsend(v)",
      "persistent(v)", "onesided-pscw", "packing(p)"};
  return names;
}

}  // namespace ncsend
