#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

// ---------------------------------------------------------------------------
// Send-mode variants of the direct derived-type send
// ---------------------------------------------------------------------------

void SendModeScheme::setup(SchemeContext& ctx) {
  if (!ctx.sender()) return;
  dtype_ = styled_or_best(ctx.layout, TypeStyle::vector);
  if (mode_ == Mode::persistent) {
    preq_ = ctx.comm.send_init(ctx.user_data.data(), 1, dtype_, 1, ping_tag);
  }
}

void SendModeScheme::ping(SchemeContext& ctx) {
  switch (mode_) {
    case Mode::isend: {
      minimpi::Request r =
          ctx.comm.isend(ctx.user_data.data(), 1, dtype_, 1, ping_tag);
      r.wait();
      break;
    }
    case Mode::ssend:
      ctx.comm.ssend(ctx.user_data.data(), 1, dtype_, 1, ping_tag);
      break;
    case Mode::rsend:
      // The ping-pong structure guarantees the receiver has served the
      // previous rep and is blocked in its next receive: ready mode is
      // legal here and skips the handshake entirely.
      ctx.comm.rsend(ctx.user_data.data(), 1, dtype_, 1, ping_tag);
      break;
    case Mode::persistent:
      preq_.start();
      preq_.wait();
      break;
  }
}

// ---------------------------------------------------------------------------
// One-sided with generalized active target synchronization
// ---------------------------------------------------------------------------

void OneSidedPscwScheme::setup(SchemeContext& ctx) {
  dtype_ = ctx.sender() ? ctx.layout.datatype() : minimpi::Datatype::float64();
  if (ctx.sender()) {
    win_.emplace(ctx.comm.win_create(nullptr, 0));
  } else {
    win_.emplace(
        ctx.comm.win_create(ctx.recv_buf.data(), ctx.recv_buf.size()));
  }
}

void OneSidedPscwScheme::teardown(SchemeContext&) { win_.reset(); }

void OneSidedPscwScheme::run_rep(SchemeContext& ctx) {
  // Pairwise epochs: the target exposes to rank 0 only; rank 0 accesses
  // rank 1 only.  No global fence is involved.
  if (ctx.sender()) {
    const minimpi::Rank targets[] = {1};
    win_->start(targets);
    win_->put(ctx.user_data.data(), 1, dtype_, 1, 0);
    win_->complete();
    // Completion notification closes the timed transfer; a zero-byte
    // ack from the target keeps the timing symmetric with run_rep on
    // the target side.
    ctx.comm.recv(nullptr, 0, minimpi::Datatype::byte(), 1, ping_tag + 1);
  } else {
    const minimpi::Rank origins[] = {0};
    win_->post(origins);
    win_->wait_post();
    ctx.comm.send(nullptr, 0, minimpi::Datatype::byte(), 0, ping_tag + 1);
  }
}

// ---------------------------------------------------------------------------
// Pipelined packing
// ---------------------------------------------------------------------------

void PackingPipelinedScheme::setup(SchemeContext& ctx) {
  if (!ctx.sender()) return;
  dtype_ = styled_or_best(ctx.layout, TypeStyle::vector);
  stats_ = dtype_.block_stats();
  const std::size_t cb = std::min(chunk_bytes, ctx.payload_bytes());
  // The chunk buffers follow the *whole message's* functional/phantom
  // mode: when a 1 GB sweep point runs modeled, individually-small
  // chunks must not smuggle gigabytes of real copies back in.
  const bool functional = ctx.comm.moves_payload(ctx.payload_bytes());
  chunk_[0] = minimpi::Buffer::allocate(cb, functional);
  chunk_[1] = minimpi::Buffer::allocate(cb, functional);
}

void PackingPipelinedScheme::run_rep(SchemeContext& ctx) {
  const std::size_t total = ctx.payload_bytes();
  const std::size_t nchunks = (total + chunk_bytes - 1) / chunk_bytes;
  const minimpi::Datatype f64 = minimpi::Datatype::float64();
  const minimpi::Datatype packed = minimpi::Datatype::packed();
  const minimpi::Datatype byte = minimpi::Datatype::byte();
  const auto& model = ctx.comm.model();

  if (ctx.sender()) {
    // Pack chunk k into buffer k%2 and isend it; wait for chunk k-1's
    // send before reusing its buffer (double buffering).
    minimpi::Request in_flight[2];
    std::size_t offset = 0;
    const double warm =
        ctx.cache.touch(SchemeContext::user_region,
                        ctx.layout.footprint_elems() * sizeof(double));
    for (std::size_t k = 0; k < nchunks; ++k) {
      const std::size_t len = std::min(chunk_bytes, total - offset);
      // One pack call per chunk, chunk's share of the gather cost.
      ctx.comm.charge(model.call_overhead(1));
      minimpi::BlockStats chunk_stats = stats_;
      chunk_stats.total_bytes = len;
      chunk_stats.block_count =
          std::max<std::size_t>(1, stats_.block_count * len / total);
      ctx.comm.charge(model.user_copy_time(len, chunk_stats, warm));
      auto& buf = chunk_[k % 2];
      if (in_flight[k % 2].valid()) in_flight[k % 2].wait();
      if (!buf.is_phantom() && !ctx.user_data.is_phantom()) {
        minimpi::pack_region(ctx.user_data.data(), 1, dtype_, offset,
                             buf.data(), len);
      }
      in_flight[k % 2] =
          ctx.comm.isend(buf.data(), len, packed, 1, ping_tag);
      offset += len;
    }
    for (auto& r : in_flight)
      if (r.valid()) r.wait();
    ctx.comm.recv(nullptr, 0, byte, 1, ping_tag + 1);
  } else {
    const std::size_t elems = ctx.layout.element_count();
    std::size_t offset = 0;
    for (std::size_t k = 0; k < nchunks; ++k) {
      const std::size_t len = std::min(chunk_bytes, total - offset);
      std::byte* dst = ctx.recv_buf.is_phantom()
                           ? nullptr
                           : ctx.recv_buf.data() + offset;
      ctx.comm.recv(dst, len / sizeof(double), f64, 0, ping_tag);
      offset += len;
    }
    (void)elems;
    ctx.comm.send(nullptr, 0, byte, 0, ping_tag + 1);
  }
}

// ---------------------------------------------------------------------------
// Registry additions
// ---------------------------------------------------------------------------

const std::vector<std::string>& extended_scheme_names() {
  static const std::vector<std::string> names = {
      "isend(v)",      "ssend(v)",      "rsend(v)",
      "persistent(v)", "onesided-pscw", "packing(p)"};
  return names;
}

}  // namespace ncsend
