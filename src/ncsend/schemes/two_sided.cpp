/// \file two_sided.cpp
/// \brief The §3.2 ping-pong driver over peer-addressed transfers, the
/// legacy `TwoSidedScheme` convenience base, and the scheme factories.

#include <optional>

#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

void TwoSidedScheme::run_rep(SchemeContext& ctx) {
  const minimpi::Datatype f64 = minimpi::Datatype::float64();
  const minimpi::Datatype byte = minimpi::Datatype::byte();
  if (ctx.sender()) {
    ping(ctx);
    // Zero-byte pong closes the ping-pong (paper §3.2).
    ctx.comm.recv(nullptr, 0, byte, 1, ping_tag + 1);
  } else {
    ctx.comm.recv(ctx.recv_buf.data(), ctx.layout.element_count(), f64, 0,
                  ping_tag);
    ctx.comm.send(nullptr, 0, byte, 0, ping_tag + 1);
  }
}

minimpi::Datatype styled_or_best(const Layout& layout, TypeStyle style) {
  try {
    return layout.datatype(style);
  } catch (const minimpi::Error&) {
    return layout.datatype();
  }
}

namespace {

/// \brief The §3.2 ping-pong harness side of the unified scheme layer:
/// drives one `TransferScheme` as a single rank-0 -> rank-1 transfer
/// with blocking completion.  Message-mode steps close with the
/// zero-byte pong; RMA modes run the §3.2 epoch choreography (fences,
/// or post/start/complete/wait plus the symmetric ack).  This class is
/// what keeps every ping-pong charge sequence bit-identical to the
/// pre-refactor per-scheme classes.
class PingPongDriver final : public SendScheme {
 public:
  explicit PingPongDriver(std::unique_ptr<TransferScheme> transfer)
      : transfer_(std::move(transfer)) {}

  [[nodiscard]] std::string_view name() const override {
    return transfer_->name();
  }

  void setup(SchemeContext& ctx) override {
    tctx_.emplace(TransferContext{ctx.comm, ctx.layout, ctx.cache,
                                  ctx.user_data, /*peer=*/1,
                                  SchemeContext::user_region,
                                  SchemeContext::staging_region, ping_tag,
                                  /*blocking=*/true});
    if (transfer_->sync_mode() != SyncMode::message) {
      // §3.2: the receiver exposes its contiguous buffer; the sender
      // exposes nothing.
      win_.emplace(ctx.sender()
                       ? ctx.comm.win_create(nullptr, 0)
                       : ctx.comm.win_create(ctx.recv_buf.data(),
                                             ctx.recv_buf.size()));
      tctx_->window = &*win_;
    }
    if (!ctx.sender()) return;
    const std::size_t attach = transfer_->attach_bytes(*tctx_);
    if (attach > 0) {
      attach_buf_ = ctx.allocate(attach);
      ctx.comm.buffer_attach(attach_buf_);
      attached_ = true;
    }
    transfer_->setup(*tctx_);
  }

  void teardown(SchemeContext& ctx) override {
    if (ctx.sender()) {
      transfer_->teardown(*tctx_);
      if (attached_) {
        ctx.comm.buffer_detach();
        attached_ = false;
      }
    }
    win_.reset();
    tctx_.reset();
  }

  void run_rep(SchemeContext& ctx) override {
    const minimpi::Datatype byte = minimpi::Datatype::byte();
    std::vector<minimpi::Request> reqs;
    switch (transfer_->sync_mode()) {
      case SyncMode::message:
        if (ctx.sender()) {
          transfer_->start(*tctx_, reqs);
          for (minimpi::Request& r : reqs) r.wait();
          transfer_->finish(*tctx_);
          ctx.comm.recv(nullptr, 0, byte, 1, ping_tag + 1);
        } else {
          transfer_->post_receives(ctx.comm, 0, ctx.layout,
                                   ctx.recv_buf.data(), ping_tag, reqs);
          for (minimpi::Request& r : reqs) r.wait();
          ctx.comm.send(nullptr, 0, byte, 0, ping_tag + 1);
        }
        break;
      case SyncMode::fence:
        // Paper §3.2: the timers surround the fences.
        win_->fence();
        if (ctx.sender()) transfer_->start(*tctx_, reqs);
        win_->fence();
        break;
      case SyncMode::pscw:
        if (ctx.sender()) {
          const minimpi::Rank targets[] = {1};
          win_->start(targets);
          transfer_->start(*tctx_, reqs);
          win_->complete();
          // Completion notification closes the timed transfer; a
          // zero-byte ack from the target keeps the timing symmetric.
          ctx.comm.recv(nullptr, 0, byte, 1, ping_tag + 1);
        } else {
          const minimpi::Rank origins[] = {0};
          win_->post(origins);
          win_->wait_post();
          ctx.comm.send(nullptr, 0, byte, 0, ping_tag + 1);
        }
        break;
    }
  }

 private:
  std::unique_ptr<TransferScheme> transfer_;
  std::optional<TransferContext> tctx_;
  std::optional<minimpi::Window> win_;
  minimpi::Buffer attach_buf_;
  bool attached_ = false;
};

}  // namespace

void TransferScheme::post_receives(minimpi::Comm& comm, minimpi::Rank from,
                                   const Layout& layout, std::byte* ghost,
                                   minimpi::Tag tag,
                                   std::vector<minimpi::Request>& out) const {
  out.push_back(comm.irecv(ghost, layout.element_count(),
                           minimpi::Datatype::float64(), from, tag));
}

const std::vector<std::string>& all_scheme_names() {
  static const std::vector<std::string> names = {
      "reference",  "copying",    "buffered",   "vector type",
      "subarray",   "onesided",   "packing(e)", "packing(v)"};
  return names;
}

std::unique_ptr<TransferScheme> make_transfer_scheme(std::string_view name) {
  if (name == "reference") return std::make_unique<ReferenceScheme>();
  if (name == "copying") return std::make_unique<CopyingScheme>();
  if (name == "buffered") return std::make_unique<BufferedScheme>();
  if (name == "vector type")
    return std::make_unique<DerivedTypeScheme>(TypeStyle::vector);
  if (name == "subarray")
    return std::make_unique<DerivedTypeScheme>(TypeStyle::subarray);
  if (name == "onesided") return std::make_unique<OneSidedScheme>();
  if (name == "packing(e)") return std::make_unique<PackingElementScheme>();
  if (name == "packing(v)") return std::make_unique<PackingVectorScheme>();
  // Extension schemes (not in the paper's legend).
  if (name == "isend(v)")
    return std::make_unique<SendModeScheme>(SendModeScheme::Mode::isend);
  if (name == "ssend(v)")
    return std::make_unique<SendModeScheme>(SendModeScheme::Mode::ssend);
  if (name == "rsend(v)")
    return std::make_unique<SendModeScheme>(SendModeScheme::Mode::rsend);
  if (name == "persistent(v)")
    return std::make_unique<SendModeScheme>(SendModeScheme::Mode::persistent);
  if (name == "onesided-pscw")
    return std::make_unique<OneSidedPscwScheme>();
  if (name == "packing(p)")
    return std::make_unique<PackingPipelinedScheme>();
  throw minimpi::Error(minimpi::ErrorClass::invalid_arg,
                       "unknown send scheme: " + std::string(name));
}

std::unique_ptr<SendScheme> make_scheme(std::string_view name) {
  return std::make_unique<PingPongDriver>(make_transfer_scheme(name));
}

}  // namespace ncsend
