#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

void TwoSidedScheme::run_rep(SchemeContext& ctx) {
  const minimpi::Datatype f64 = minimpi::Datatype::float64();
  const minimpi::Datatype byte = minimpi::Datatype::byte();
  if (ctx.sender()) {
    ping(ctx);
    // Zero-byte pong closes the ping-pong (paper §3.2).
    ctx.comm.recv(nullptr, 0, byte, 1, ping_tag + 1);
  } else {
    ctx.comm.recv(ctx.recv_buf.data(), ctx.layout.element_count(), f64, 0,
                  ping_tag);
    ctx.comm.send(nullptr, 0, byte, 0, ping_tag + 1);
  }
}

minimpi::Datatype styled_or_best(const Layout& layout, TypeStyle style) {
  try {
    return layout.datatype(style);
  } catch (const minimpi::Error&) {
    return layout.datatype();
  }
}

std::unique_ptr<SendScheme> make_reference() {
  return std::make_unique<ReferenceScheme>();
}
std::unique_ptr<SendScheme> make_copying() {
  return std::make_unique<CopyingScheme>();
}
std::unique_ptr<SendScheme> make_buffered() {
  return std::make_unique<BufferedScheme>();
}
std::unique_ptr<SendScheme> make_vector_type() {
  return std::make_unique<DerivedTypeScheme>(TypeStyle::vector);
}
std::unique_ptr<SendScheme> make_subarray() {
  return std::make_unique<DerivedTypeScheme>(TypeStyle::subarray);
}
std::unique_ptr<SendScheme> make_onesided() {
  return std::make_unique<OneSidedScheme>();
}
std::unique_ptr<SendScheme> make_packing_element() {
  return std::make_unique<PackingElementScheme>();
}
std::unique_ptr<SendScheme> make_packing_vector() {
  return std::make_unique<PackingVectorScheme>();
}

const std::vector<std::string>& all_scheme_names() {
  static const std::vector<std::string> names = {
      "reference",  "copying",    "buffered",   "vector type",
      "subarray",   "onesided",   "packing(e)", "packing(v)"};
  return names;
}

std::unique_ptr<SendScheme> make_scheme(std::string_view name) {
  if (name == "reference") return make_reference();
  if (name == "copying") return make_copying();
  if (name == "buffered") return make_buffered();
  if (name == "vector type") return make_vector_type();
  if (name == "subarray") return make_subarray();
  if (name == "onesided") return make_onesided();
  if (name == "packing(e)") return make_packing_element();
  if (name == "packing(v)") return make_packing_vector();
  // Extension schemes (not in the paper's legend).
  if (name == "isend(v)")
    return std::make_unique<SendModeScheme>(SendModeScheme::Mode::isend);
  if (name == "ssend(v)")
    return std::make_unique<SendModeScheme>(SendModeScheme::Mode::ssend);
  if (name == "rsend(v)")
    return std::make_unique<SendModeScheme>(SendModeScheme::Mode::rsend);
  if (name == "persistent(v)")
    return std::make_unique<SendModeScheme>(SendModeScheme::Mode::persistent);
  if (name == "onesided-pscw")
    return std::make_unique<OneSidedPscwScheme>();
  if (name == "packing(p)")
    return std::make_unique<PackingPipelinedScheme>();
  throw minimpi::Error(minimpi::ErrorClass::invalid_arg,
                       "unknown send scheme: " + std::string(name));
}

}  // namespace ncsend
