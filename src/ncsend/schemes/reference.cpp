#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

void ReferenceScheme::setup(TransferContext& ctx) {
  sendbuf_ = ctx.allocate(ctx.payload_bytes());
  // Outside the timing loop, stage the layout's data once so the
  // receiver sees the same bytes as every other scheme (verification
  // stays uniform); the timed path is a pure contiguous send.
  if (!sendbuf_.is_phantom() && !ctx.user_data.is_phantom()) {
    minimpi::gather(ctx.user_data.data(), 1, ctx.layout.datatype(),
                    sendbuf_.data());
  }
}

void ReferenceScheme::start(TransferContext& ctx,
                            std::vector<minimpi::Request>& out) {
  minimpi::Request r = ctx.inject(sendbuf_.data(), ctx.layout.element_count(),
                                  minimpi::Datatype::float64());
  if (r.valid()) out.push_back(std::move(r));
}

}  // namespace ncsend
