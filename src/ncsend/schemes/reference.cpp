#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

void ReferenceScheme::setup(SchemeContext& ctx) {
  if (!ctx.sender()) return;
  sendbuf_ = ctx.allocate(ctx.payload_bytes());
  // Outside the timing loop, stage the layout's data once so the
  // receiver sees the same bytes as every other scheme (verification
  // stays uniform); the timed path is a pure contiguous send.
  if (!sendbuf_.is_phantom() && !ctx.user_data.is_phantom()) {
    minimpi::gather(ctx.user_data.data(), 1, ctx.layout.datatype(),
                    sendbuf_.data());
  }
}

void ReferenceScheme::ping(SchemeContext& ctx) {
  ctx.comm.send(sendbuf_.data(), ctx.layout.element_count(),
                minimpi::Datatype::float64(), 1, ping_tag);
}

}  // namespace ncsend
