#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

void CopyingScheme::setup(TransferContext& ctx) {
  // Paper §2.2: "We allocate the send buffer outside the timing loop,
  // and reuse it."
  sendbuf_ = ctx.allocate(ctx.payload_bytes());
  dtype_ = ctx.layout.datatype();
  stats_ = dtype_.block_stats();
}

void CopyingScheme::start(TransferContext& ctx,
                          std::vector<minimpi::Request>& out) {
  // The user-space gather loop: 2N loads + N stores, charged through
  // the machine profile's copy bandwidth (and the cache model's warmth).
  ctx.charge_user_gather(stats_);
  if (!sendbuf_.is_phantom() && !ctx.user_data.is_phantom())
    minimpi::gather(ctx.user_data.data(), 1, dtype_, sendbuf_.data());
  ctx.cache.touch(ctx.staging_region, sendbuf_.size());
  minimpi::Request r = ctx.inject(sendbuf_.data(), ctx.layout.element_count(),
                                  minimpi::Datatype::float64());
  if (r.valid()) out.push_back(std::move(r));
}

}  // namespace ncsend
