#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

// ---------------------------------------------------------------------------
// packing(e): one MPI_Pack call per element
// ---------------------------------------------------------------------------

void PackingElementScheme::setup(TransferContext& ctx) {
  packbuf_ = ctx.allocate(ctx.payload_bytes());
  dtype_ = ctx.layout.datatype();
  stats_ = dtype_.block_stats();
  element_offsets_.clear();
  if (!packbuf_.is_phantom() && !ctx.user_data.is_phantom() &&
      ctx.layout.element_count() <= element_loop_limit) {
    element_offsets_.reserve(ctx.layout.element_count());
    ctx.layout.for_each_element(
        [&](std::size_t, std::size_t src) { element_offsets_.push_back(src); });
  }
}

void PackingElementScheme::start(TransferContext& ctx,
                                 std::vector<minimpi::Request>& out) {
  const std::size_t n = ctx.layout.element_count();
  // Model: N library calls dominate (paper §2.6: "we expect a low
  // performance"), plus the data movement itself.
  ctx.comm.charge(ctx.comm.model().call_overhead(n));
  ctx.charge_user_gather(stats_);
  if (!element_offsets_.empty()) {
    // Literal per-element MPI_Pack loop for functional runs.
    const minimpi::Datatype f64 = minimpi::Datatype::float64();
    const auto* base = ctx.user_data.data();
    std::size_t pos = 0;
    for (const std::size_t off : element_offsets_) {
      minimpi::pack(base + off * sizeof(double), 1, f64, packbuf_.data(),
                    packbuf_.size(), pos);
    }
  } else if (!packbuf_.is_phantom() && !ctx.user_data.is_phantom()) {
    // Same bytes via one engine gather (element loop would be O(N) host
    // work the model already accounts for).
    minimpi::gather(ctx.user_data.data(), 1, dtype_, packbuf_.data());
  }
  minimpi::Request r = ctx.inject(packbuf_.data(), ctx.payload_bytes(),
                                  minimpi::Datatype::packed());
  if (r.valid()) out.push_back(std::move(r));
}

// ---------------------------------------------------------------------------
// packing(v): one MPI_Pack call on the derived type
// ---------------------------------------------------------------------------

void PackingVectorScheme::setup(TransferContext& ctx) {
  packbuf_ = ctx.allocate(ctx.payload_bytes());
  dtype_ = styled_or_best(ctx.layout, TypeStyle::vector);
  stats_ = dtype_.block_stats();
}

void PackingVectorScheme::start(TransferContext& ctx,
                                std::vector<minimpi::Request>& out) {
  // One pack call; the MPI pack engine costs the same as a user copy
  // loop (paper §4.3), so it is charged through the same model path.
  ctx.comm.charge(ctx.comm.model().call_overhead(1));
  ctx.charge_user_gather(stats_);
  if (!packbuf_.is_phantom() && !ctx.user_data.is_phantom()) {
    std::size_t pos = 0;
    minimpi::pack(ctx.user_data.data(), 1, dtype_, packbuf_.data(),
                  packbuf_.size(), pos);
  }
  ctx.cache.touch(ctx.staging_region, packbuf_.size());
  // The send is now of *user-space* contiguous bytes: MPI's internal
  // buffer management is out of the picture — the paper's winning move.
  minimpi::Request r = ctx.inject(packbuf_.data(), ctx.payload_bytes(),
                                  minimpi::Datatype::packed());
  if (r.valid()) out.push_back(std::move(r));
}

}  // namespace ncsend
