#include "ncsend/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <vector>

#include "ncsend/experiment/result_store.hpp"
#include "ncsend/scheme.hpp"

namespace ncsend {
namespace {

double metric_value(const SweepResult& r, Metric m, std::size_t si,
                    std::size_t ci) {
  switch (m) {
    case Metric::time: return r.time(si, ci);
    case Metric::bandwidth: return r.bandwidth_GBps(si, ci);
    case Metric::slowdown: return r.slowdown(si, ci);
  }
  return 0.0;
}

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::time: return "time (s)";
    case Metric::bandwidth: return "bandwidth (GB/s)";
    case Metric::slowdown: return "slowdown vs reference";
  }
  return "?";
}

constexpr const char* plot_symbols = "rcbvsoEP";  // one per paper scheme

char symbol_for(const std::string& scheme) {
  const auto& names = all_scheme_names();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == scheme)
      return plot_symbols[i % 8];
  return '*';
}

}  // namespace

void print_tables(std::ostream& os, const SweepResult& r) {
  const auto old_flags = os.flags();
  for (const Metric m :
       {Metric::time, Metric::bandwidth, Metric::slowdown}) {
    os << "\n== " << metric_name(m) << " ==\n";
    os << std::setw(12) << "bytes";
    for (const auto& s : r.schemes) os << std::setw(13) << s;
    os << "\n";
    for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
      os << std::setw(12) << r.sizes_bytes[si];
      for (std::size_t ci = 0; ci < r.schemes.size(); ++ci) {
        os << std::setw(13) << std::scientific << std::setprecision(3)
           << metric_value(r, m, si, ci);
      }
      os << "\n";
    }
  }
  os.flags(old_flags);
}

void write_csv(std::ostream& os, const SweepResult& r) {
  ResultStore store;
  store.add_sweep(r);
  store.write_csv(os);
}

void write_json(std::ostream& os, const SweepResult& r) {
  ResultStore store;
  store.add_sweep(r);
  store.write_sweep_json(os);
}

void ascii_plot(std::ostream& os, const SweepResult& r, Metric metric,
                int width, int height) {
  if (r.sizes_bytes.empty() || r.schemes.empty()) return;
  // Collect log-transformed points.
  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
    const double x = std::log10(static_cast<double>(r.sizes_bytes[si]));
    xmin = std::min(xmin, x);
    xmax = std::max(xmax, x);
    for (std::size_t ci = 0; ci < r.schemes.size(); ++ci) {
      const double v = metric_value(r, metric, si, ci);
      if (v <= 0.0) continue;
      const double y =
          metric == Metric::bandwidth ? v : std::log10(v);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  if (ymin > ymax) return;
  if (ymax - ymin < 1e-12) ymax = ymin + 1.0;
  if (xmax - xmin < 1e-12) xmax = xmin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
    const double x = std::log10(static_cast<double>(r.sizes_bytes[si]));
    const int col = static_cast<int>(std::lround(
        (x - xmin) / (xmax - xmin) * (width - 1)));
    for (std::size_t ci = 0; ci < r.schemes.size(); ++ci) {
      const double v = metric_value(r, metric, si, ci);
      if (v <= 0.0) continue;
      const double y = metric == Metric::bandwidth ? v : std::log10(v);
      const int row = static_cast<int>(std::lround(
          (ymax - y) / (ymax - ymin) * (height - 1)));
      auto& cell = grid[static_cast<std::size_t>(row)]
                       [static_cast<std::size_t>(col)];
      const char sym = symbol_for(r.schemes[ci]);
      if (cell == ' ') cell = sym;
      else if (cell != sym) cell = '#';  // overlapping schemes
    }
  }

  os << "\n-- " << metric_name(r.schemes.empty() ? Metric::time : metric)
     << " (x: log10 bytes " << std::fixed << std::setprecision(1) << xmin
     << ".." << xmax << ", y: "
     << (metric == Metric::bandwidth ? "GB/s " : "log10 ") << std::setprecision(2)
     << ymin << ".." << ymax << ") --\n";
  for (const auto& line : grid) os << "|" << line << "|\n";
  os << "legend: ";
  for (const auto& s : r.schemes)
    os << symbol_for(s) << "=" << s << "  ";
  os << "#=overlap\n";
  os.unsetf(std::ios::fixed);
}

void print_figure(std::ostream& os, const SweepResult& r,
                  const std::string& title) {
  os << "==============================================================\n";
  os << title << "\n";
  os << "profile: " << r.profile_name << "   layout: " << r.layout_name
     << "   sizes: " << r.sizes_bytes.size() << "   schemes: "
     << r.schemes.size() << "\n";
  os << "==============================================================\n";
  ascii_plot(os, r, Metric::time);
  ascii_plot(os, r, Metric::bandwidth);
  ascii_plot(os, r, Metric::slowdown);
  print_tables(os, r);
  os << "\ndata verification: "
     << (r.all_verified() ? "all functional transfers byte-exact"
                          : "FAILED — see CSV")
     << "\n";
}

}  // namespace ncsend
