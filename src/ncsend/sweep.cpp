#include "ncsend/sweep.hpp"

#include <utility>

#include "ncsend/experiment/executor.hpp"

namespace ncsend {

ExperimentPlan to_plan(const SweepConfig& cfg) {
  ExperimentPlan plan;
  plan.name = "sweep";
  plan.profiles = {cfg.profile};
  plan.schemes = cfg.schemes;
  plan.sizes_bytes = cfg.sizes_bytes;
  // Unnamed axis: the sweep result reports the layout's own name.
  plan.layouts = {LayoutAxis{"", cfg.layout_factory}};
  plan.harness = cfg.harness;
  plan.eager_limit_override = cfg.eager_limit_override;
  plan.functional_payload_limit = cfg.functional_payload_limit;
  plan.wtime_resolution = cfg.wtime_resolution;
  return plan;
}

SweepResult run_sweep(const SweepConfig& cfg, int jobs) {
  PlanResult r = run_plan(to_plan(cfg), ExecutorOptions{jobs});
  return std::move(r.sweeps.front());
}

}  // namespace ncsend
