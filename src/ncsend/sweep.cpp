#include "ncsend/sweep.hpp"

#include <cmath>

namespace ncsend {

double SweepResult::slowdown(std::size_t si, std::size_t ci) const {
  for (std::size_t r = 0; r < schemes.size(); ++r) {
    if (schemes[r] == "reference") {
      const double ref = time(si, r);
      return ref > 0.0 ? time(si, ci) / ref : 0.0;
    }
  }
  return 0.0;
}

bool SweepResult::all_verified() const {
  for (const auto& row : cells)
    for (const auto& cell : row)
      if (!cell.verified) return false;
  return true;
}

std::vector<std::size_t> log_sizes(double lo, double hi, int per_decade) {
  std::vector<std::size_t> sizes;
  const double step = std::pow(10.0, 1.0 / per_decade);
  for (double s = lo; s <= hi * 1.0001; s *= step) {
    auto bytes = static_cast<std::size_t>(std::llround(s));
    bytes -= bytes % 8;  // whole doubles
    if (bytes >= 8 && (sizes.empty() || bytes != sizes.back()))
      sizes.push_back(bytes);
  }
  return sizes;
}

std::vector<std::size_t> paper_sizes(int per_decade) {
  return log_sizes(1e3, 1e9, per_decade);
}

SweepResult run_sweep(const SweepConfig& cfg) {
  SweepResult result;
  result.profile_name = cfg.profile->name;
  result.sizes_bytes = cfg.sizes_bytes.empty() ? paper_sizes()
                                               : cfg.sizes_bytes;
  result.schemes = cfg.schemes;

  minimpi::UniverseOptions opts;
  opts.nranks = 2;
  opts.profile = cfg.profile;
  opts.functional = true;
  opts.functional_payload_limit = cfg.functional_payload_limit;
  opts.eager_limit_override = cfg.eager_limit_override;
  opts.wtime_resolution = cfg.wtime_resolution;

  result.cells.reserve(result.sizes_bytes.size());
  for (const std::size_t bytes : result.sizes_bytes) {
    const std::size_t elems = std::max<std::size_t>(1, bytes / sizeof(double));
    const Layout layout = cfg.layout_factory(elems);
    if (result.layout_name.empty()) result.layout_name = layout.name();
    std::vector<RunResult> row;
    row.reserve(cfg.schemes.size());
    for (const auto& scheme : cfg.schemes)
      row.push_back(run_experiment(opts, scheme, layout, cfg.harness));
    result.cells.push_back(std::move(row));
  }
  return result;
}

}  // namespace ncsend
