#pragma once
/// \file scheme.hpp
/// \brief The send-scheme interface: the paper's §2 as a class hierarchy.
///
/// The primitive is the peer-addressed `TransferScheme`: one way of
/// moving a non-contiguous message from a host array on this rank to a
/// contiguous region on *any* peer rank.  Its `setup` / `start` /
/// `finish` / `teardown` lifecycle is the single source of every
/// scheme's timed charge sequence, shared by the two drivers:
///
///   * the §3.2 ping-pong harness (`harness.cpp` + the driver in
///     `schemes/two_sided.cpp`), which runs one transfer to rank 1 with
///     blocking completion and a zero-byte pong; and
///   * the N-rank pattern engine (`patterns/pattern_harness.cpp`),
///     which instantiates one `TransferScheme` per outgoing transfer
///     and completes the posted requests after draining its receives.
///
/// A scheme never knows which driver is running it: the
/// `TransferContext` carries the peer rank, layout, buffers, cache
/// model, and the blocking/posted completion style, and the
/// `inject`/`inject_sync` helpers map to blocking or nonblocking MPI
/// calls accordingly.  `SendScheme` remains the 2-rank measurement
/// interface the harness consumes; `make_scheme` wraps each
/// `TransferScheme` in the ping-pong driver.

#include <memory>
#include <string_view>
#include <vector>

#include "memsim/cache_model.hpp"
#include "minimpi/minimpi.hpp"
#include "ncsend/layout.hpp"

namespace ncsend {

/// \brief Model charge of one user-space gather of `layout` into a
/// contiguous buffer: consults the cache model for warmth of the host
/// array region, charges the copy-loop cost to the rank's clock, and
/// returns the warm fraction used.  The single source of this formula,
/// shared by every driver through `TransferContext`.
inline double charge_user_gather(minimpi::Comm& comm,
                                 memsim::CacheModel& cache,
                                 const Layout& layout,
                                 const minimpi::BlockStats& stats,
                                 std::uint64_t user_region) {
  const std::size_t fp = layout.footprint_elems() * sizeof(double);
  const double warm = cache.touch(user_region, fp);
  comm.charge_copy(stats.total_bytes, stats, warm);
  return warm;
}

/// Tag used by every data ping; the pong/ack uses tag + 1.
inline constexpr minimpi::Tag ping_tag = 17;

/// \brief How a transfer's bytes synchronize between the endpoints.
enum class SyncMode {
  message,  ///< two-sided: receiver posts contiguous receives
  fence,    ///< RMA put inside MPI_Win_fence epochs (paper §2.5)
  pscw,     ///< RMA put inside post/start/complete/wait epochs
};

/// \brief Everything one peer-addressed transfer needs on the sending
/// rank.  Subsumes the old rank-0/rank-1 `SchemeContext`: the receive
/// side (contiguous buffer or exposed window region) is owned by the
/// driver, so a scheme only ever sees its own endpoint.
struct TransferContext {
  minimpi::Comm& comm;
  const Layout& layout;        ///< what this transfer sends
  memsim::CacheModel& cache;
  minimpi::Buffer& user_data;  ///< host array the layout lives in
  minimpi::Rank peer = 1;      ///< destination rank
  /// Stable cache-model region ids for this transfer's host array and
  /// staging buffer (the drivers keep them distinct per transfer).
  std::uint64_t user_region = 1;
  std::uint64_t staging_region = 2;
  minimpi::Tag tag = ping_tag;
  /// Blocking drivers (the §3.2 ping-pong) complete every injection
  /// inline; posted drivers (the N-rank engine) collect the returned
  /// requests and complete them only after draining their receives, so
  /// cyclic patterns cannot deadlock at the host level.
  bool blocking = true;
  /// RMA schemes: the collectively created window exposing the
  /// receiver's contiguous region, and where this transfer lands in it.
  minimpi::Window* window = nullptr;
  std::size_t window_offset = 0;

  [[nodiscard]] std::size_t payload_bytes() const {
    return layout.payload_bytes();
  }

  /// \brief Allocate a scheme-owned buffer obeying the phantom policy.
  [[nodiscard]] minimpi::Buffer allocate(std::size_t bytes) const {
    return minimpi::Buffer::allocate(bytes, comm.moves_payload(bytes));
  }

  /// \brief Model a user-space gather of the layout into a contiguous
  /// buffer; delegates to the shared `ncsend::charge_user_gather`.
  /// Returns the warm fraction used (tests inspect it).
  double charge_user_gather(const minimpi::BlockStats& stats) {
    return ncsend::charge_user_gather(comm, cache, layout, stats,
                                      user_region);
  }

  /// \brief Inject `(buf, count, t)` toward the peer: a blocking send
  /// under the ping-pong driver (bit-identical to the paper's §3.2
  /// procedure), an isend under the posted engine.  Returns an invalid
  /// request when the call completed inline.
  minimpi::Request inject(const void* buf, std::size_t count,
                          const minimpi::Datatype& t) {
    if (blocking) {
      comm.send(buf, count, t, peer, tag);
      return {};
    }
    return comm.isend(buf, count, t, peer, tag);
  }

  /// \brief Synchronous-mode injection: ssend when blocking, issend
  /// when posted (both handshake regardless of size).
  minimpi::Request inject_sync(const void* buf, std::size_t count,
                               const minimpi::Datatype& t) {
    if (blocking) {
      comm.ssend(buf, count, t, peer, tag);
      return {};
    }
    return comm.issend(buf, count, t, peer, tag);
  }
};

/// \brief One peer-addressed transfer scheme: the paper's §2 charge
/// sequences, driver-agnostic.  A scheme instance owns the state of
/// exactly one directed transfer (staging buffers, datatypes,
/// persistent requests); drivers create one instance per transfer.
class TransferScheme {
 public:
  virtual ~TransferScheme() = default;

  /// Legend name, matching the paper's figures ("vector type", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// How this scheme's bytes synchronize (drives the engines'
  /// receive/epoch choreography).
  [[nodiscard]] virtual SyncMode sync_mode() const {
    return SyncMode::message;
  }

  /// Bsend-pool headroom this transfer needs; drivers attach one
  /// rank-wide buffer covering all transfers before calling `setup`.
  [[nodiscard]] virtual std::size_t attach_bytes(
      const TransferContext&) const {
    return 0;
  }

  /// Called once before the timing loop (allocate staging, build
  /// datatypes, pre-stage reference data, ...).
  virtual void setup(TransferContext&) {}
  /// Called once after the timing loop.
  virtual void teardown(TransferContext&) {}

  /// \brief True when this scheme's teardown tears down state a
  /// compiled plan pins — e.g. the buffered scheme's rank-wide bsend
  /// pool, detached after the capture run.  Replaying such a plan for
  /// *more* iterations than captured would assume the pinned binding
  /// outlives its teardown, so `ExperimentPlan::validate()` rejects
  /// grids combining `replay_iters` with such schemes.
  [[nodiscard]] virtual bool teardown_invalidates_pinned_state() const {
    return false;
  }

  /// \brief One step's send: charge the scheme's §2 model terms, move
  /// the bytes (functional runs), and inject the transfer.  Requests
  /// pushed to `out` are completed by the driver — immediately under
  /// the blocking ping-pong, after the receive drain under the engine.
  virtual void start(TransferContext& ctx,
                     std::vector<minimpi::Request>& out) = 0;

  /// Called once the started requests have completed (persistent
  /// wait, ...).
  virtual void finish(TransferContext&) {}

  /// \brief Receiver endpoint of one incoming transfer: post the
  /// nonblocking receive(s) of `layout`'s payload into the contiguous
  /// `ghost` bytes (null when phantom).  Default: a single irecv of
  /// the whole payload as float64.  RMA schemes receive through the
  /// window instead and never see this call.
  virtual void post_receives(minimpi::Comm& comm, minimpi::Rank from,
                             const Layout& layout, std::byte* ghost,
                             minimpi::Tag tag,
                             std::vector<minimpi::Request>& out) const;
};

/// \brief Instantiate a peer-addressed transfer scheme by legend name
/// (paper legend + extension schemes); throws MM_ERR_ARG for unknown
/// names.
std::unique_ptr<TransferScheme> make_transfer_scheme(std::string_view name);

// ---------------------------------------------------------------------------
// The 2-rank ping-pong layer (paper §3.2)
// ---------------------------------------------------------------------------

/// Everything the ping-pong harness shares with a 2-rank scheme.
struct SchemeContext {
  minimpi::Comm& comm;
  const Layout& layout;
  memsim::CacheModel& cache;

  /// Rank 0: the host array the layout lives in (may be phantom).
  minimpi::Buffer& user_data;
  /// Rank 1: the contiguous receive buffer (may be phantom).
  minimpi::Buffer& recv_buf;

  /// Stable region ids for the cache model.
  static constexpr std::uint64_t user_region = 1;
  static constexpr std::uint64_t staging_region = 2;

  [[nodiscard]] std::size_t payload_bytes() const {
    return layout.payload_bytes();
  }
  [[nodiscard]] bool sender() const { return comm.rank() == 0; }

  /// \brief Allocate a scheme-owned buffer obeying the phantom policy.
  [[nodiscard]] minimpi::Buffer allocate(std::size_t bytes) const {
    return minimpi::Buffer::allocate(bytes, comm.moves_payload(bytes));
  }

  /// \brief Model a user-space gather of the layout into a contiguous
  /// buffer; delegates to the shared `ncsend::charge_user_gather`.
  double charge_user_gather(const minimpi::BlockStats& stats) {
    return ncsend::charge_user_gather(comm, cache, layout, stats,
                                      user_region);
  }
};

/// \brief One 2-rank measurement unit: what `run_pingpong_rank` times.
/// The concrete schemes no longer implement this directly — they are
/// `TransferScheme`s, and `make_scheme` wraps them in the generic
/// ping-pong driver.  The interface stays for custom harness schemes
/// (tests subclass `TwoSidedScheme` below).
class SendScheme {
 public:
  virtual ~SendScheme() = default;

  /// Legend name, matching the paper's figures ("vector type", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called on both ranks before the timing loop (allocate staging,
  /// attach buffers, create windows, ...).
  virtual void setup(SchemeContext&) {}
  /// Called on both ranks after the timing loop.
  virtual void teardown(SchemeContext&) {}

  /// One complete, timed ping-pong; called on *both* ranks.
  virtual void run_rep(SchemeContext& ctx) = 0;
};

/// \brief Convenience base for hand-written two-sided harness schemes:
/// the receiver does a contiguous recv followed by a zero-byte pong
/// (paper §3.2); subclasses supply the non-contiguous `ping`.
class TwoSidedScheme : public SendScheme {
 public:
  void run_rep(SchemeContext& ctx) final;

 protected:
  /// The non-contiguous "ping" on rank 0.
  virtual void ping(SchemeContext& ctx) = 0;
};

/// \brief Instantiate a scheme by legend name: the named
/// `TransferScheme` wrapped in the §3.2 ping-pong driver.
std::unique_ptr<SendScheme> make_scheme(std::string_view name);

/// \brief All legend names, in the paper's order.
const std::vector<std::string>& all_scheme_names();

}  // namespace ncsend
