#pragma once
/// \file scheme.hpp
/// \brief The send-scheme interface: the paper's §2 as a class hierarchy.
///
/// A `SendScheme` implements one way of moving a non-contiguous message
/// from rank 0's host array to a contiguous buffer on rank 1.  The
/// harness calls `setup` once per experiment (buffers live outside the
/// timing loop, as in the paper), then times `run_rep` — one complete
/// ping-pong — on rank 0.  Two-sided schemes inherit the
/// recv-then-zero-byte-pong serving loop from `TwoSidedScheme`; the
/// one-sided scheme overrides `run_rep` entirely so the timers surround
/// its fences (paper §3.2).

#include <memory>
#include <string_view>
#include <vector>

#include "memsim/cache_model.hpp"
#include "minimpi/minimpi.hpp"
#include "ncsend/layout.hpp"

namespace ncsend {

/// \brief Model charge of one user-space gather of `layout` into a
/// contiguous buffer: consults the cache model for warmth of the host
/// array region, charges the copy-loop cost to the rank's clock, and
/// returns the warm fraction used.  The single source of this formula,
/// shared by the ping-pong schemes (via `SchemeContext`) and the
/// N-rank pattern engine (patterns/pattern_harness.cpp).
inline double charge_user_gather(minimpi::Comm& comm,
                                 memsim::CacheModel& cache,
                                 const Layout& layout,
                                 const minimpi::BlockStats& stats,
                                 std::uint64_t user_region) {
  const std::size_t fp = layout.footprint_elems() * sizeof(double);
  const double warm = cache.touch(user_region, fp);
  comm.charge_copy(stats.total_bytes, stats, warm);
  return warm;
}

/// Everything a scheme needs for one experiment on one rank.
struct SchemeContext {
  minimpi::Comm& comm;
  const Layout& layout;
  memsim::CacheModel& cache;

  /// Rank 0: the host array the layout lives in (may be phantom).
  minimpi::Buffer& user_data;
  /// Rank 1: the contiguous receive buffer (may be phantom).
  minimpi::Buffer& recv_buf;

  /// Stable region ids for the cache model.
  static constexpr std::uint64_t user_region = 1;
  static constexpr std::uint64_t staging_region = 2;

  [[nodiscard]] std::size_t payload_bytes() const {
    return layout.payload_bytes();
  }
  [[nodiscard]] bool sender() const { return comm.rank() == 0; }

  /// \brief Allocate a scheme-owned buffer obeying the phantom policy.
  [[nodiscard]] minimpi::Buffer allocate(std::size_t bytes) const {
    return minimpi::Buffer::allocate(bytes, comm.moves_payload(bytes));
  }

  /// \brief Model a user-space gather of the layout into a contiguous
  /// buffer; delegates to the shared `ncsend::charge_user_gather`.
  /// Returns the warm fraction used (tests inspect it).
  double charge_user_gather(const minimpi::BlockStats& stats) {
    return ncsend::charge_user_gather(comm, cache, layout, stats,
                                      user_region);
  }
};

/// Tag used by every data ping; the pong uses tag + 1.
inline constexpr minimpi::Tag ping_tag = 17;

class SendScheme {
 public:
  virtual ~SendScheme() = default;

  /// Legend name, matching the paper's figures ("vector type", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called on both ranks before the timing loop (allocate staging,
  /// attach buffers, create windows, ...).
  virtual void setup(SchemeContext&) {}
  /// Called on both ranks after the timing loop.
  virtual void teardown(SchemeContext&) {}

  /// One complete, timed ping-pong; called on *both* ranks.
  virtual void run_rep(SchemeContext& ctx) = 0;
};

/// \brief Base for the seven two-sided schemes: receiver does a
/// contiguous recv followed by a zero-byte pong (paper §3.2).
class TwoSidedScheme : public SendScheme {
 public:
  void run_rep(SchemeContext& ctx) final;

 protected:
  /// The non-contiguous "ping" on rank 0.
  virtual void ping(SchemeContext& ctx) = 0;
};

/// \brief Instantiate a scheme by legend name.
std::unique_ptr<SendScheme> make_scheme(std::string_view name);

/// \brief All legend names, in the paper's order.
const std::vector<std::string>& all_scheme_names();

/// Which derived-type style the direct-send schemes use.
std::unique_ptr<SendScheme> make_reference();
std::unique_ptr<SendScheme> make_copying();
std::unique_ptr<SendScheme> make_buffered();
std::unique_ptr<SendScheme> make_vector_type();
std::unique_ptr<SendScheme> make_subarray();
std::unique_ptr<SendScheme> make_onesided();
std::unique_ptr<SendScheme> make_packing_element();
std::unique_ptr<SendScheme> make_packing_vector();

}  // namespace ncsend
