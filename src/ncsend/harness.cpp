#include "ncsend/harness.hpp"

#include <vector>

namespace ncsend {

using minimpi::Buffer;
using minimpi::Comm;

void run_pingpong_rank(Comm& comm, SendScheme& scheme, const Layout& layout,
                       const HarnessConfig& cfg, RunResult* out) {
  minimpi::require(comm.size() >= 2, minimpi::ErrorClass::invalid_arg,
                   "ping-pong harness needs at least 2 ranks");
  const bool is_sender = comm.rank() == 0;
  const bool is_receiver = comm.rank() == 1;

  // --- buffers, outside the timing loop (§3.2) ---------------------------
  const std::size_t footprint_bytes =
      layout.footprint_elems() * sizeof(double);
  Buffer user_data;
  Buffer recv_buf;
  if (is_sender) {
    user_data =
        Buffer::allocate(footprint_bytes, comm.moves_payload(footprint_bytes));
    if (!user_data.is_phantom() && footprint_bytes > 0) {
      auto elems = user_data.as<double>();
      for (std::size_t i = 0; i < elems.size(); ++i)
        elems[i] = fill_value(i);
    }
  }
  if (is_receiver) {
    recv_buf = Buffer::allocate(layout.payload_bytes(),
                                comm.moves_payload(layout.payload_bytes()));
  }

  memsim::CacheModel cache(comm.profile().cache_bytes);
  memsim::CacheFlusher flusher(cache, cfg.flush, cfg.flush_bytes);
  SchemeContext ctx{comm, layout, cache, user_data, recv_buf};

  scheme.setup(ctx);
  comm.barrier();

  // --- timed repetitions ---------------------------------------------------
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(cfg.reps));
  for (int rep = 0; rep < cfg.reps; ++rep) {
    comm.plan_begin_rep();
    comm.plan_sample_begin();
    const double t0 = comm.wtime();
    scheme.run_rep(ctx);
    const double dt = comm.wtime() - t0;
    comm.plan_sample_end(is_sender);
    if (is_sender) samples.push_back(dt);
    // Between every two ping-pongs a 50 MB array is rewritten (§3.2).
    flusher.flush(comm);
    comm.plan_end_rep();
  }

  // --- verification (functional runs only) --------------------------------
  bool checked = false;
  bool ok = true;
  if (cfg.verify && is_receiver && !recv_buf.is_phantom() &&
      recv_buf.size() > 0 && comm.moves_payload(footprint_bytes)) {
    checked = true;
    const auto got = recv_buf.as<const double>();
    layout.for_each_element([&](std::size_t k, std::size_t src) {
      if (got[k] != fill_value(src)) ok = false;
    });
  }
  // Share the verdict: min over (checked ? ok : 1) tells everyone whether
  // any checker failed; max over checked tells whether anyone checked.
  const double all_ok =
      comm.allreduce(checked && !ok ? 0.0 : 1.0, minimpi::ReduceOp::min);
  const double any_checked =
      comm.allreduce(checked ? 1.0 : 0.0, minimpi::ReduceOp::max);

  scheme.teardown(ctx);
  comm.barrier();

  if (is_sender && out != nullptr) {
    out->scheme = std::string(scheme.name());
    out->layout = layout.name();
    out->payload_bytes = layout.payload_bytes();
    out->timing = summarize(samples);
    out->data_checked = any_checked > 0.5;
    out->verified = all_ok > 0.5;
  }
}

RunResult run_experiment(const minimpi::UniverseOptions& opts,
                         std::string_view scheme_name, const Layout& layout,
                         const HarnessConfig& cfg) {
  RunResult result;
  minimpi::Universe::run(opts, [&](Comm& comm) {
    // Each rank owns its own scheme instance (schemes hold rank-local
    // buffers and windows): the named peer-addressed TransferScheme
    // wrapped in the §3.2 ping-pong driver (schemes/two_sided.cpp).
    auto scheme = make_scheme(scheme_name);
    run_pingpong_rank(comm, *scheme, layout, cfg, &result);
  });
  return result;
}

}  // namespace ncsend
