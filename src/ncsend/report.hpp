#pragma once
/// \file report.hpp
/// \brief Emit a sweep as the paper's three panels, CSV, or ASCII plots.

#include <iosfwd>
#include <string>

#include "ncsend/experiment/result.hpp"

namespace ncsend {

enum class Metric { time, bandwidth, slowdown };

/// \brief The three panels of each figure (time / bandwidth / slowdown)
/// as aligned text tables: rows = sizes, columns = schemes.
void print_tables(std::ostream& os, const SweepResult& r);

/// \brief Machine-readable rows for one sweep; delegates to the unified
/// `ResultStore` writer (result_store.hpp), where the schema lives.
void write_csv(std::ostream& os, const SweepResult& r);

/// \brief One sweep as the self-describing JSON document; delegates to
/// the unified `ResultStore` writer (result_store.hpp).
void write_json(std::ostream& os, const SweepResult& r);

/// \brief Log-log ASCII rendering of one panel, one symbol per scheme
/// (the closest a terminal gets to the paper's matplotlib figures).
void ascii_plot(std::ostream& os, const SweepResult& r, Metric metric,
                int width = 72, int height = 24);

/// \brief Full figure output: header, plots, tables, verification note.
void print_figure(std::ostream& os, const SweepResult& r,
                  const std::string& title);

}  // namespace ncsend
