#pragma once
/// \file report.hpp
/// \brief Emit a sweep as the paper's three panels, CSV, or ASCII plots.

#include <iosfwd>
#include <string>

#include "ncsend/sweep.hpp"

namespace ncsend {

enum class Metric { time, bandwidth, slowdown };

/// \brief The three panels of each figure (time / bandwidth / slowdown)
/// as aligned text tables: rows = sizes, columns = schemes.
void print_tables(std::ostream& os, const SweepResult& r);

/// \brief Machine-readable rows:
/// `profile,layout,size_bytes,scheme,time_s,bandwidth_GBps,slowdown,verified`.
void write_csv(std::ostream& os, const SweepResult& r);

/// \brief The same data as a self-describing JSON document:
/// `{profile, layout, sizes, schemes, cells: [{...}]}` — convenient for
/// plotting scripts (matplotlib/pandas can regenerate the paper's
/// figures directly from it).
void write_json(std::ostream& os, const SweepResult& r);

/// \brief Log-log ASCII rendering of one panel, one symbol per scheme
/// (the closest a terminal gets to the paper's matplotlib figures).
void ascii_plot(std::ostream& os, const SweepResult& r, Metric metric,
                int width = 72, int height = 24);

/// \brief Full figure output: header, plots, tables, verification note.
void print_figure(std::ostream& os, const SweepResult& r,
                  const std::string& title);

}  // namespace ncsend
