#pragma once
/// \file ncsend.hpp
/// \brief Umbrella header for the non-contiguous-send study library.
///
/// `ncsend` packages the paper's contribution for downstream use:
///   * `Layout` — the non-contiguous data patterns of interest;
///   * `TransferScheme` + `make_transfer_scheme` — the §2 charge
///     sequences as peer-addressed transfers, the single source both
///     measurement engines drive;
///   * `SendScheme` + `make_scheme` — the 2-rank ping-pong face of the
///     same schemes;
///   * `run_pingpong_rank` / `run_experiment` — the §3.2 measurement
///     harness (20 timed ping-pongs, cache flushing, outlier rejection,
///     data verification);
///   * `CommPattern` + `run_pattern_experiment` (patterns/) — N-rank
///     communication patterns (multi-pair, 2-D/3-D halo, transpose) on
///     the same deterministic measurement machinery;
///   * collectives (`collectives/`) — allreduce/bcast/allgather/
///     reduce-scatter as schedules of peer-addressed transfers over
///     binomial-tree, ring, and recursive-doubling topologies,
///     registered as `collective(op:algo:N)` pattern cells;
///   * the experiment engine (`experiment/`) — declarative
///     `ExperimentPlan` grids, parallel deterministic execution via
///     `run_plan`, and the unified `ResultStore` writers;
///   * `run_sweep` + reporting — regenerate any of the paper's figures;
///   * `advise` — the §5 conclusion as a queryable recommendation.

#include "ncsend/advisor.hpp"
#include "ncsend/collectives/collective.hpp"
#include "ncsend/experiment/experiment.hpp"
#include "ncsend/harness.hpp"
#include "ncsend/layout.hpp"
#include "ncsend/patterns/pattern.hpp"
#include "ncsend/report.hpp"
#include "ncsend/scheme.hpp"
#include "ncsend/schemes/schemes.hpp"
#include "ncsend/stats.hpp"
#include "ncsend/sweep.hpp"
