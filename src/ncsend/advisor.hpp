#pragma once
/// \file advisor.hpp
/// \brief The paper's conclusion (§5), executable.

#include <string>
#include <vector>

#include "ncsend/layout.hpp"
#include "minimpi/net/machine_profile.hpp"

namespace ncsend {

struct Recommendation {
  std::string scheme;               ///< legend name of the recommended scheme
  std::string rationale;            ///< why, in the paper's terms
  std::vector<std::string> avoid;   ///< schemes to stay away from, with reasons
};

/// \brief Recommend a send scheme for a message, encoding the paper's
/// findings: derived datatypes are fine (and friendliest) below ~1e8
/// bytes; `packing(v)` — MPI_Pack on a derived type, then a contiguous
/// send from user space — is the consistent winner and the safe default
/// for large messages; buffered sends are always at a disadvantage;
/// one-sided depends on the installation.
Recommendation advise(const minimpi::MachineProfile& profile,
                      std::size_t payload_bytes, const Layout& layout);

}  // namespace ncsend
