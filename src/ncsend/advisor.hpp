#pragma once
/// \file advisor.hpp
/// \brief The paper's conclusion (§5), executable.

#include <string>
#include <string_view>
#include <vector>

#include "ncsend/layout.hpp"
#include "minimpi/net/machine_profile.hpp"

namespace ncsend {

class CommPattern;

struct Recommendation {
  std::string scheme;               ///< legend name of the recommended scheme
  std::string rationale;            ///< why, in the paper's terms
  std::vector<std::string> avoid;   ///< schemes to stay away from, with reasons
};

/// \brief Recommend a send scheme for a message, encoding the paper's
/// findings: derived datatypes are fine (and friendliest) below ~1e8
/// bytes; `packing(v)` — MPI_Pack on a derived type, then a contiguous
/// send from user space — is the consistent winner and the safe default
/// for large messages; buffered sends are always at a disadvantage;
/// one-sided depends on the installation.
Recommendation advise(const minimpi::MachineProfile& profile,
                      std::size_t payload_bytes, const Layout& layout);

/// \brief Pattern-aware overload: the §5 conclusion adjusted for the
/// communication pattern the message rides in.  Neighbor count and the
/// profile's link-contention term shift the large-message threshold
/// (concurrent senders divide the effective per-sender wire bandwidth,
/// so the schemes diverge at proportionally smaller payloads), and
/// fence-synchronized one-sided transfers are flagged in multi-rank
/// universes (every step synchronizes all ranks, not just neighbors).
Recommendation advise(const minimpi::MachineProfile& profile,
                      std::size_t payload_bytes, const Layout& layout,
                      const CommPattern& pattern);

/// \brief Algorithm choice for one collective call.
struct CollectiveAdvice {
  std::string algorithm;         ///< "tree", "ring", or "rd"
  std::size_t crossover_bytes;   ///< tree→ring switch point on this machine
  std::string rationale;         ///< the α/β trade, in the machine's numbers
};

/// \brief Recommend a collective algorithm (the BENCH_collective_sweep
/// crossover, closed-form): binomial trees pay ceil(log2 N) full-vector
/// rounds — latency-optimal, bandwidth-wasteful — while rings pay O(N)
/// rounds of B/N-byte chunks — bandwidth-optimal, latency-heavy.  With
/// per-round latency α = send_overhead + net_latency and wire bandwidth
/// β, the switch point is
///
///   B* = α·β · (ring_rounds − tree_rounds) / (tree_rounds − ring_rounds/N)
///
/// so machines with expensive sends (knl's slow protocol core) switch
/// to the ring *later* than machines with cheap ones (skx) — the
/// per-profile ordering the sweep exposes empirically.  Below the
/// crossover, power-of-two rank counts get "rd" (recursive doubling
/// halves the tree's round count for the all-to-all ops).  `op` is a
/// collective op name ("allreduce", "bcast", "allgather",
/// "reduce-scatter"); throws MM_ERR_ARG for junk.
CollectiveAdvice advise_collective(const minimpi::MachineProfile& profile,
                                   std::string_view op,
                                   std::size_t payload_bytes, int nranks);

}  // namespace ncsend
