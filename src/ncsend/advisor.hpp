#pragma once
/// \file advisor.hpp
/// \brief The paper's conclusion (§5), executable.

#include <string>
#include <vector>

#include "ncsend/layout.hpp"
#include "minimpi/net/machine_profile.hpp"

namespace ncsend {

class CommPattern;

struct Recommendation {
  std::string scheme;               ///< legend name of the recommended scheme
  std::string rationale;            ///< why, in the paper's terms
  std::vector<std::string> avoid;   ///< schemes to stay away from, with reasons
};

/// \brief Recommend a send scheme for a message, encoding the paper's
/// findings: derived datatypes are fine (and friendliest) below ~1e8
/// bytes; `packing(v)` — MPI_Pack on a derived type, then a contiguous
/// send from user space — is the consistent winner and the safe default
/// for large messages; buffered sends are always at a disadvantage;
/// one-sided depends on the installation.
Recommendation advise(const minimpi::MachineProfile& profile,
                      std::size_t payload_bytes, const Layout& layout);

/// \brief Pattern-aware overload: the §5 conclusion adjusted for the
/// communication pattern the message rides in.  Neighbor count and the
/// profile's link-contention term shift the large-message threshold
/// (concurrent senders divide the effective per-sender wire bandwidth,
/// so the schemes diverge at proportionally smaller payloads), and
/// fence-synchronized one-sided transfers are flagged in multi-rank
/// universes (every step synchronizes all ranks, not just neighbors).
Recommendation advise(const minimpi::MachineProfile& profile,
                      std::size_t payload_bytes, const Layout& layout,
                      const CommPattern& pattern);

}  // namespace ncsend
