#pragma once
/// \file harness.hpp
/// \brief The timed ping-pong harness (paper §3.2).
///
/// Reproduces the paper's measurement procedure: buffers allocated
/// 64-byte aligned outside the timing loop and zeroed (page
/// instantiation), 20 individually-timed ping-pongs with MPI_Wtime, a
/// 50 MB cache-flushing rewrite between repetitions, 1-sigma outlier
/// rejection, and — because this substrate is functional — an optional
/// end-to-end data verification after the timed loop.  The measured
/// unit is a `SendScheme`: for the legend names that is the generic
/// ping-pong driver over one peer-addressed `TransferScheme`, the same
/// object the N-rank pattern engine drives (scheme.hpp).

#include <string>

#include "memsim/flusher.hpp"
#include "ncsend/scheme.hpp"
#include "ncsend/stats.hpp"

namespace ncsend {

struct HarnessConfig {
  int reps = 20;                    ///< ping-pongs per measurement (paper: 20)
  bool flush = true;                ///< rewrite 50 MB between reps (§3.2)
  std::size_t flush_bytes = memsim::CacheFlusher::default_flush_bytes;
  bool verify = true;               ///< check delivered bytes (functional runs)
  /// Sampled verification cells for modeled (metadata-only) runs: each
  /// transfer endpoint digests this many sampled fill values from the
  /// layout map, and the fused send-side and receive-side digest totals
  /// must agree — catching a drifted layout-map mirror without ever
  /// materializing ghost bytes.  0 (the default) disables the pass, so
  /// existing runs and their goldens are untouched.
  int verify_samples = 0;
};

struct RunResult {
  std::string scheme;
  std::string layout;
  std::size_t payload_bytes = 0;
  TimingStats timing;        ///< per-ping-pong times, rank 0
  bool data_checked = false; ///< verification actually ran (real buffers)
  bool verified = true;      ///< bytes matched (true when not checked)

  [[nodiscard]] double time() const { return timing.mean; }
  [[nodiscard]] double bandwidth_Bps() const {
    return timing.mean > 0.0
               ? static_cast<double>(payload_bytes) / timing.mean
               : 0.0;
  }
};

/// \brief Deterministic fill pattern for the sender's host array; the
/// receiver recomputes it for verification.
inline double fill_value(std::size_t elem_index) {
  return static_cast<double>((elem_index * 2654435761ULL) % 100003) * 0.125;
}

/// \brief Per-rank body of one measurement: run inside `Universe::run`.
/// Rank 0 writes the result to `*out` (if non-null); other ranks leave
/// it untouched.  `scheme` must be a per-rank instance.
void run_pingpong_rank(minimpi::Comm& comm, SendScheme& scheme,
                       const Layout& layout, const HarnessConfig& cfg,
                       RunResult* out);

/// \brief Convenience: spin up a 2-rank universe and measure one
/// (scheme, layout) pair.
RunResult run_experiment(const minimpi::UniverseOptions& opts,
                         std::string_view scheme_name, const Layout& layout,
                         const HarnessConfig& cfg = {});

}  // namespace ncsend
