/// \file pattern_harness.cpp
/// \brief The generic N-rank exchange engine behind `CommPattern::run`.
///
/// One measurement is one `Universe::run`: every rank derives its
/// outgoing transfers from the pattern's layout map, mirrors the other
/// ranks' maps to learn what it receives, and instantiates one real
/// `TransferScheme` per outgoing transfer — the same objects the §3.2
/// ping-pong harness drives, so the per-scheme charge sequences have a
/// single source (scheme.hpp / schemes/*.cpp) instead of the
/// hand-mirrored switch this file used to carry.
///
/// Message-mode schemes run `reps` timed steps that post all receives
/// (via the scheme's `post_receives`, so chunked schemes land
/// correctly), start every outgoing transfer in posted mode, complete
/// receives before send-waits (so rendezvous cycles cannot deadlock at
/// the host level), and — for acked patterns — close ping-pong style
/// with zero-byte acks.  RMA schemes instead expose each rank's
/// concatenated ghost regions in one collectively created window and
/// run the §3.2 epoch choreography per step: a fence epoch around all
/// puts (`onesided`), or post/start/complete/wait over the neighbor
/// groups (`onesided-pscw`); the epoch close is the synchronization,
/// so no acks are exchanged.  The per-step sample is the maximum step
/// time over all sending ranks (the bottleneck rank), fused after the
/// timed loop; data verification mirrors the §3.2 harness, per
/// incoming transfer.

#include "ncsend/patterns/pattern.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "memsim/flusher.hpp"
#include "ncsend/schemes/schemes.hpp"

namespace ncsend {
namespace {

using minimpi::Buffer;
using minimpi::Comm;
using minimpi::Datatype;
using minimpi::Rank;
using minimpi::Request;

/// One outgoing transfer: the real scheme instance plus the host array
/// the layout lives in (filled with the transfer's recognizable
/// pattern) and its context.
struct OutgoingTransfer {
  Rank peer = 0;
  Layout layout = Layout::contiguous(0);
  Buffer user;  ///< host array (filled with the transfer's pattern)
  std::unique_ptr<TransferScheme> scheme;
};

/// One expected incoming transfer: who sends, with which layout, and
/// where the contiguous ghost bytes land (its own buffer in message
/// mode, an offset into the rank's window arena in RMA mode).
struct IncomingTransfer {
  Rank peer = 0;
  std::size_t sender_index = 0;  ///< index in the sender's layout map
  /// The *sender's* layout view (drives size and verification).
  Layout layout = Layout::contiguous(0);
  Buffer ghost;                  ///< message mode only
  std::size_t arena_offset = 0;  ///< RMA mode only
};

}  // namespace

PatternMap PatternMap::build(const CommPattern& pattern, const Layout& base) {
  const int n = pattern.nranks();
  PatternMap m;
  m.outgoing.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) m.outgoing.push_back(pattern.sends(r, base));
  m.incoming.resize(static_cast<std::size_t>(n));
  m.arena_offset_out.resize(static_cast<std::size_t>(n));
  // One pass over all transfers, bucketed by receiver.  Outer loop
  // sender-ascending, inner loop transfer-index-ascending: for any
  // fixed receiver the bucket fills in exactly the order the old
  // per-rank mirror enumerated (self-sends excluded, as before).
  for (int q = 0; q < n; ++q) {
    const auto& qs = m.outgoing[static_cast<std::size_t>(q)];
    m.arena_offset_out[static_cast<std::size_t>(q)].assign(qs.size(), 0);
    for (std::size_t ti = 0; ti < qs.size(); ++ti) {
      if (qs[ti].peer == q) continue;
      m.incoming[static_cast<std::size_t>(qs[ti].peer)].push_back(
          {q, ti, 0});
    }
  }
  // Arena prefix sums per receiver, recorded on both endpoints: the
  // incoming entry (the receiver's view) and the sender's outgoing
  // slot (where its put lands) — the same offsets the old
  // `arena_offset_at` re-derived per query.
  for (auto& ins : m.incoming) {
    std::size_t offset = 0;
    for (Incoming& in : ins) {
      in.arena_offset = offset;
      m.arena_offset_out[static_cast<std::size_t>(in.peer)]
                        [in.sender_index] = offset;
      offset += m.incoming_layout(in).payload_bytes();
    }
  }
  return m;
}

void run_pattern_rank(Comm& comm, const CommPattern& pattern,
                      const PatternMap& map, std::string_view scheme_name,
                      const Layout& base, const HarnessConfig& cfg,
                      RunResult* out) {
  minimpi::require(comm.size() == pattern.nranks(),
                   minimpi::ErrorClass::invalid_arg,
                   "pattern universe has the wrong rank count");
  const int me = comm.rank();
  // A rank-local prototype: resolves the name (throwing for junk on
  // every rank alike) and answers sync-mode / receive-side questions.
  const std::unique_ptr<TransferScheme> proto =
      make_transfer_scheme(scheme_name);
  const SyncMode mode = proto->sync_mode();

  // --- this rank's slice of the precomputed layout map --------------------
  const std::vector<Transfer>& outgoing_map =
      map.outgoing[static_cast<std::size_t>(me)];
  std::vector<IncomingTransfer> incoming;
  incoming.reserve(map.incoming[static_cast<std::size_t>(me)].size());
  for (const PatternMap::Incoming& in :
       map.incoming[static_cast<std::size_t>(me)])
    incoming.push_back({in.peer, in.sender_index, map.incoming_layout(in),
                        Buffer{}, in.arena_offset});

  // --- buffers and scheme state, outside the timing loop (§3.2) ----------
  memsim::CacheModel cache(comm.profile().cache_bytes);
  std::vector<OutgoingTransfer> sends(outgoing_map.size());
  std::vector<TransferContext> contexts;
  contexts.reserve(sends.size());
  for (std::size_t ti = 0; ti < sends.size(); ++ti) {
    OutgoingTransfer& s = sends[ti];
    s.peer = outgoing_map[ti].peer;
    s.layout = outgoing_map[ti].layout;
    s.scheme = make_transfer_scheme(scheme_name);
    const std::size_t footprint_bytes =
        s.layout.footprint_elems() * sizeof(double);
    s.user = Buffer::allocate(footprint_bytes,
                              comm.moves_payload(footprint_bytes));
    if (!s.user.is_phantom() && footprint_bytes > 0) {
      const std::size_t salt = pattern_fill_salt(me, ti);
      auto elems = s.user.as<double>();
      for (std::size_t i = 0; i < elems.size(); ++i)
        elems[i] = fill_value(salt + i);
    }
    contexts.push_back(TransferContext{comm, s.layout, cache, s.user, s.peer,
                                       /*user_region=*/1 + 2 * ti,
                                       /*staging_region=*/2 + 2 * ti,
                                       ping_tag,
                                       /*blocking=*/false});
  }

  // Receive side: individual ghost buffers for message schemes, one
  // contiguous arena exposed through a collectively created window for
  // RMA schemes.
  Buffer arena;
  std::optional<minimpi::Window> win;
  if (mode == SyncMode::message) {
    for (IncomingTransfer& in : incoming)
      in.ghost =
          Buffer::allocate(in.layout.payload_bytes(),
                           comm.moves_payload(in.layout.payload_bytes()));
  } else {
    std::size_t total = 0;
    for (const IncomingTransfer& in : incoming)
      total += in.layout.payload_bytes();
    // Receiver and sender address the arena through the same map
    // prefix sums (PatternMap::build), so the layout cannot drift
    // between the two endpoints.
    arena = Buffer::allocate(total, comm.moves_payload(total));
    // Collective: every rank participates, exposing its arena (null
    // base is fine for phantom arenas — the model still charges).
    win.emplace(comm.win_create(arena.data(), arena.size()));
    for (std::size_t ti = 0; ti < sends.size(); ++ti) {
      contexts[ti].window = &*win;
      contexts[ti].window_offset =
          map.arena_offset_out[static_cast<std::size_t>(me)][ti];
    }
  }

  // Buffered sends draw on one rank-wide attached pool sized for every
  // transfer's in-flight share.
  std::size_t attach_total = 0;
  for (std::size_t ti = 0; ti < sends.size(); ++ti)
    attach_total += sends[ti].scheme->attach_bytes(contexts[ti]);
  Buffer attach_buf;
  if (attach_total > 0) {
    attach_buf = Buffer::allocate(attach_total,
                                  comm.moves_payload(attach_total));
    comm.buffer_attach(attach_buf);
  }

  for (std::size_t ti = 0; ti < sends.size(); ++ti)
    sends[ti].scheme->setup(contexts[ti]);

  // PSCW neighbor groups: who exposes to whom each step.
  std::vector<Rank> origins;
  for (const IncomingTransfer& in : incoming) origins.push_back(in.peer);
  std::vector<Rank> targets;
  for (const OutgoingTransfer& s : sends) targets.push_back(s.peer);

  memsim::CacheFlusher flusher(cache, cfg.flush, cfg.flush_bytes);
  const Datatype byte = Datatype::byte();
  comm.barrier();

  // --- timed steps --------------------------------------------------------
  // Everything above this point is the engine's *compile phase*: the
  // neighbor map, transfer contexts, window/arena bindings, attach pool,
  // and scheme state it produced are exactly what a compiled `CommPlan`
  // pins (ncsend/plan/).  The loop below is the *replay phase* — the
  // part a plan replaces with a flat action program.
  const bool sender = !sends.empty();
  std::vector<double> local;
  local.reserve(static_cast<std::size_t>(cfg.reps));
  std::vector<Request> rreqs;
  std::vector<Request> sreqs;
  const auto execute_step = [&] {
    switch (mode) {
      case SyncMode::message:
        rreqs.clear();
        for (IncomingTransfer& in : incoming)
          proto->post_receives(comm, in.peer, in.layout, in.ghost.data(),
                               ping_tag, rreqs);
        sreqs.clear();
        for (std::size_t ti = 0; ti < sends.size(); ++ti)
          sends[ti].scheme->start(contexts[ti], sreqs);
        // Receives complete first: a rendezvous send finishes only once
        // its receiver matches, so draining receives before send-waits
        // keeps cyclic patterns (halo, all-to-all) free of host-level
        // deadlock.
        waitall(rreqs);
        waitall(sreqs);
        for (std::size_t ti = 0; ti < sends.size(); ++ti)
          sends[ti].scheme->finish(contexts[ti]);
        if (pattern.acked()) {
          for (const IncomingTransfer& in : incoming)
            comm.send(nullptr, 0, byte, in.peer, ping_tag + 1);
          for (const OutgoingTransfer& s : sends)
            comm.recv(nullptr, 0, byte, s.peer, ping_tag + 1);
        }
        break;
      case SyncMode::fence:
        // One fence epoch per step over the whole universe, as in the
        // paper's §3.2 fence choreography; the closing fence is the
        // step's synchronization.
        win->fence();
        sreqs.clear();
        for (std::size_t ti = 0; ti < sends.size(); ++ti)
          sends[ti].scheme->start(contexts[ti], sreqs);
        win->fence();
        break;
      case SyncMode::pscw:
        // Generalized active target over the neighbor groups: each
        // rank exposes to the peers that send to it and accesses the
        // peers it sends to.  Every rank posts before any rank starts,
        // so the access-epoch waits cannot cycle.
        if (!origins.empty()) win->post(origins);
        if (!targets.empty()) {
          win->start(targets);
          sreqs.clear();
          for (std::size_t ti = 0; ti < sends.size(); ++ti)
            sends[ti].scheme->start(contexts[ti], sreqs);
          win->complete();
        }
        if (!origins.empty()) win->wait_post();
        break;
    }
  };
  for (int rep = 0; rep < cfg.reps; ++rep) {
    comm.plan_begin_rep();
    comm.plan_sample_begin();
    const double t0 = comm.wtime();
    execute_step();
    const double dt = comm.wtime() - t0;
    comm.plan_sample_end(sender);
    local.push_back(sender ? dt : 0.0);
    // The §3.2 flush between repetitions, then a clock-fusing barrier
    // so every step starts from a common virtual time.
    flusher.flush(comm);
    comm.barrier();
    comm.plan_end_rep();
  }

  // --- verification (functional runs only) --------------------------------
  bool checked = false;
  bool ok = true;
  if (cfg.verify) {
    for (const IncomingTransfer& in : incoming) {
      const std::size_t footprint_bytes =
          in.layout.footprint_elems() * sizeof(double);
      const Buffer& ghost = mode == SyncMode::message ? in.ghost : arena;
      if (ghost.is_phantom() || ghost.size() == 0 ||
          !comm.moves_payload(footprint_bytes))
        continue;
      checked = true;
      const std::size_t salt = pattern_fill_salt(in.peer, in.sender_index);
      const std::size_t first =
          (mode == SyncMode::message ? 0 : in.arena_offset) / sizeof(double);
      const auto got = ghost.as<const double>();
      in.layout.for_each_element([&](std::size_t k, std::size_t src) {
        if (got[first + k] != fill_value(salt + src)) ok = false;
      });
    }
  }

  // --- sampled digest verification (modeled runs) --------------------------
  // With no payload in flight there are no bytes to compare, but both
  // endpoints of every transfer can still digest sampled cells of the
  // layout map they believe in: each side sums `8 * fill_value` (an
  // exact integer < 800024, computed directly as an integer) over the
  // same sampled source elements, and the fused send-side and
  // receive-side totals must agree.  The terms accumulate and fuse as
  // int64 through the typed allreduce, so the sums stay exact and
  // order-independent at *any* rank count — fused totals above 2^53
  // would round in a double and could mask (or fake) a mismatch.  A
  // mismatch means the mirrored incoming map drifted from the sender's
  // view (wrong peer, transfer index, or layout) — precisely the
  // invariant byte verification would have caught.
  if (cfg.verify_samples > 0) {
    const auto digest = [&](int sender, std::size_t transfer_index,
                            const Layout& layout) -> std::int64_t {
      const std::size_t elems = layout.element_count();
      if (elems == 0) return 0;
      const auto samples =
          std::min<std::size_t>(static_cast<std::size_t>(cfg.verify_samples),
                                elems);
      const std::size_t step = elems / samples + (elems % samples != 0);
      const std::size_t salt = pattern_fill_salt(sender, transfer_index);
      std::int64_t sum = 0;
      layout.for_each_element([&](std::size_t k, std::size_t src) {
        // == 8 * fill_value(salt + src), exactly, with no double detour.
        if (k % step == 0)
          sum += static_cast<std::int64_t>(((salt + src) * 2654435761ULL) %
                                           100003);
      });
      return sum;
    };
    std::int64_t send_digest = 0;
    for (std::size_t ti = 0; ti < sends.size(); ++ti)
      send_digest += digest(me, ti, sends[ti].layout);
    std::int64_t recv_digest = 0;
    for (const IncomingTransfer& in : incoming)
      recv_digest += digest(in.peer, in.sender_index, in.layout);
    const std::int64_t send_total =
        comm.allreduce(send_digest, minimpi::ReduceOp::sum);
    const std::int64_t recv_total =
        comm.allreduce(recv_digest, minimpi::ReduceOp::sum);
    checked = true;
    if (send_total != recv_total) ok = false;
  }

  // --- fuse the per-step bottleneck times and the verdict ------------------
  std::vector<double> samples;
  samples.reserve(local.size());
  for (const double dt : local)
    samples.push_back(comm.allreduce(dt, minimpi::ReduceOp::max));
  std::size_t my_bytes = 0;
  for (const OutgoingTransfer& s : sends)
    my_bytes += s.layout.payload_bytes();
  const double busiest =
      comm.allreduce(static_cast<double>(my_bytes), minimpi::ReduceOp::max);
  const double all_ok =
      comm.allreduce(checked && !ok ? 0.0 : 1.0, minimpi::ReduceOp::min);
  const double any_checked =
      comm.allreduce(checked ? 1.0 : 0.0, minimpi::ReduceOp::max);

  for (std::size_t ti = 0; ti < sends.size(); ++ti)
    sends[ti].scheme->teardown(contexts[ti]);
  if (attach_total > 0) comm.buffer_detach();
  win.reset();
  comm.barrier();

  if (me == 0 && out != nullptr) {
    out->scheme = std::string(scheme_name);
    out->layout = pattern.cell_layout_name(base);
    out->payload_bytes = static_cast<std::size_t>(busiest);
    out->timing = summarize(samples);
    out->data_checked = any_checked > 0.5;
    out->verified = all_ok > 0.5;
  }
}

RunResult CommPattern::run(const minimpi::UniverseOptions& opts,
                           std::string_view scheme_name, const Layout& base,
                           const HarnessConfig& cfg) const {
  // Resolve the layout map once on the host; every rank fiber reads
  // its slice (O(total transfers) setup instead of O(nranks²)).
  const PatternMap map = PatternMap::build(*this, base);
  RunResult result;
  minimpi::Universe::run(opts, [&](Comm& comm) {
    run_pattern_rank(comm, *this, map, scheme_name, base, cfg, &result);
  });
  return result;
}

}  // namespace ncsend
