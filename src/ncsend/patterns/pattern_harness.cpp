/// \file pattern_harness.cpp
/// \brief The generic N-rank exchange engine behind `CommPattern::run`.
///
/// One measurement is one `Universe::run`: every rank derives its
/// outgoing transfers from the pattern's layout map, mirrors the other
/// ranks' maps to learn what it receives, and then performs `reps`
/// timed steps.  A step posts all receives, applies the send scheme to
/// every outgoing transfer, completes receives before sends (so
/// rendezvous cycles cannot deadlock at the host level), and — for
/// acked patterns — closes ping-pong style with zero-byte acks.  The
/// per-step sample is the maximum step time over all sending ranks
/// (the bottleneck rank), fused after the timed loop; data verification
/// mirrors the §3.2 harness, per incoming transfer.

#include "ncsend/patterns/pattern.hpp"

#include <string>
#include <vector>

#include "memsim/flusher.hpp"
#include "ncsend/schemes/schemes.hpp"

namespace ncsend {
namespace {

using minimpi::BlockStats;
using minimpi::Buffer;
using minimpi::Comm;
using minimpi::Datatype;
using minimpi::Rank;
using minimpi::Request;

enum class SendKind { reference, copying, vector, subarray, packing_e,
                      packing_v };

SendKind parse_scheme(std::string_view name) {
  if (name == "reference") return SendKind::reference;
  if (name == "copying") return SendKind::copying;
  if (name == "vector type") return SendKind::vector;
  if (name == "subarray") return SendKind::subarray;
  if (name == "packing(e)") return SendKind::packing_e;
  if (name == "packing(v)") return SendKind::packing_v;
  throw minimpi::Error(
      minimpi::ErrorClass::invalid_arg,
      "scheme not supported by the N-rank pattern engine: " +
          std::string(name) + " (see pattern_scheme_names())");
}

/// Send-side application of one scheme for one outgoing transfer: owns
/// the host array the layout lives in plus any staging, charges the
/// same model terms as the scheme's §2 ping, and posts the isend.
///
/// The charge sequences deliberately mirror the ping-pong schemes
/// (reference.cpp / copying.cpp / derived_types.cpp / packing.cpp) —
/// peer-addressed and nonblocking where those are rank-1 and blocking.
/// A change to a scheme's timed charges must be made in both places,
/// or the pattern sweeps drift from the ping-pong sweeps for the same
/// legend name (the halo2d shape test in test_patterns.cpp guards the
/// ranking).  One intended divergence: packing(e) always moves bytes
/// through one engine gather, while the harness scheme issues literal
/// per-element MPI_Pack calls below its element_loop_limit — the bytes
/// and the modeled charges are identical either way.
struct SchemeSend {
  SendKind kind = SendKind::reference;
  Rank peer = 0;
  Layout layout = Layout::contiguous(0);
  Datatype dtype;
  BlockStats stats;
  Buffer user;     ///< host array (filled with the transfer's pattern)
  Buffer staging;  ///< contiguous send buffer (kinds that stage)
  std::uint64_t user_region = 0, staging_region = 0;

  void setup(Comm& comm, SendKind k, const Transfer& t, std::size_t ti) {
    kind = k;
    peer = t.peer;
    layout = t.layout;
    user_region = 1 + 2 * ti;
    staging_region = 2 + 2 * ti;
    const std::size_t footprint_bytes =
        layout.footprint_elems() * sizeof(double);
    user = Buffer::allocate(footprint_bytes,
                            comm.moves_payload(footprint_bytes));
    if (!user.is_phantom() && footprint_bytes > 0) {
      const std::size_t salt = pattern_fill_salt(comm.rank(), ti);
      auto elems = user.as<double>();
      for (std::size_t i = 0; i < elems.size(); ++i)
        elems[i] = fill_value(salt + i);
    }
    switch (kind) {
      case SendKind::reference:
        staging = allocate_staging(comm);
        // Staged once outside the timing loop: the timed path is a pure
        // contiguous send of the same byte count.
        if (!staging.is_phantom() && !user.is_phantom())
          minimpi::gather(user.data(), 1, layout.datatype(), staging.data());
        break;
      case SendKind::copying:
        staging = allocate_staging(comm);
        dtype = layout.datatype();
        stats = dtype.block_stats();
        break;
      case SendKind::vector:
        dtype = styled_or_best(layout, TypeStyle::vector);
        break;
      case SendKind::subarray:
        dtype = styled_or_best(layout, TypeStyle::subarray);
        break;
      case SendKind::packing_e:
      case SendKind::packing_v:
        staging = allocate_staging(comm);
        dtype = kind == SendKind::packing_v
                    ? styled_or_best(layout, TypeStyle::vector)
                    : layout.datatype();
        stats = dtype.block_stats();
        break;
    }
  }

  [[nodiscard]] Buffer allocate_staging(Comm& comm) const {
    return Buffer::allocate(layout.payload_bytes(),
                            comm.moves_payload(layout.payload_bytes()));
  }

  /// Gather-loop charge: the same shared formula the ping-pong schemes
  /// use through SchemeContext.
  double charge_user_gather(Comm& comm, memsim::CacheModel& cache) {
    return ncsend::charge_user_gather(comm, cache, layout, stats,
                                      user_region);
  }

  /// One step's send: charge the scheme's model terms, move the bytes
  /// (functional runs), post the isend.
  Request start(Comm& comm, memsim::CacheModel& cache) {
    const Datatype f64 = Datatype::float64();
    switch (kind) {
      case SendKind::reference:
        return comm.isend(staging.data(), layout.element_count(), f64, peer,
                          ping_tag);
      case SendKind::copying:
        charge_user_gather(comm, cache);
        if (!staging.is_phantom() && !user.is_phantom())
          minimpi::gather(user.data(), 1, dtype, staging.data());
        cache.touch(staging_region, staging.size());
        return comm.isend(staging.data(), layout.element_count(), f64, peer,
                          ping_tag);
      case SendKind::vector:
      case SendKind::subarray:
        return comm.isend(user.data(), 1, dtype, peer, ping_tag);
      case SendKind::packing_e:
        // One library call per element dominates (§2.6); the bytes move
        // through one engine gather either way.
        comm.charge(comm.model().call_overhead(layout.element_count()));
        charge_user_gather(comm, cache);
        if (!staging.is_phantom() && !user.is_phantom())
          minimpi::gather(user.data(), 1, dtype, staging.data());
        return comm.isend(staging.data(), layout.payload_bytes(),
                          Datatype::packed(), peer, ping_tag);
      case SendKind::packing_v:
        comm.charge(comm.model().call_overhead(1));
        charge_user_gather(comm, cache);
        if (!staging.is_phantom() && !user.is_phantom()) {
          std::size_t pos = 0;
          minimpi::pack(user.data(), 1, dtype, staging.data(),
                        staging.size(), pos);
        }
        cache.touch(staging_region, staging.size());
        return comm.isend(staging.data(), layout.payload_bytes(),
                          Datatype::packed(), peer, ping_tag);
    }
    throw minimpi::Error(minimpi::ErrorClass::internal,
                         "unreachable send kind");
  }
};

/// One expected incoming transfer: who sends, with which layout, and
/// where the contiguous ghost bytes land.
struct IncomingTransfer {
  Rank peer = 0;
  std::size_t sender_index = 0;  ///< index in the sender's layout map
  /// The *sender's* layout view (drives size and verification).
  Layout layout = Layout::contiguous(0);
  Buffer ghost;
};

}  // namespace

void run_pattern_rank(Comm& comm, const CommPattern& pattern,
                      std::string_view scheme_name, const Layout& base,
                      const HarnessConfig& cfg, RunResult* out) {
  minimpi::require(comm.size() == pattern.nranks(),
                   minimpi::ErrorClass::invalid_arg,
                   "pattern universe has the wrong rank count");
  const SendKind kind = parse_scheme(scheme_name);
  const int me = comm.rank();

  // --- the layout map, outgoing and mirrored incoming --------------------
  const std::vector<Transfer> outgoing = pattern.sends(me, base);
  std::vector<IncomingTransfer> incoming;
  for (int q = 0; q < comm.size(); ++q) {
    if (q == me) continue;
    const std::vector<Transfer> qs = pattern.sends(q, base);
    for (std::size_t ti = 0; ti < qs.size(); ++ti)
      if (qs[ti].peer == me)
        incoming.push_back({q, ti, qs[ti].layout, Buffer{}});
  }

  // --- buffers and scheme state, outside the timing loop (§3.2) ----------
  std::vector<SchemeSend> sends(outgoing.size());
  for (std::size_t ti = 0; ti < outgoing.size(); ++ti)
    sends[ti].setup(comm, kind, outgoing[ti], ti);
  for (IncomingTransfer& in : incoming)
    in.ghost = Buffer::allocate(in.layout.payload_bytes(),
                                comm.moves_payload(in.layout.payload_bytes()));

  memsim::CacheModel cache(comm.profile().cache_bytes);
  memsim::CacheFlusher flusher(cache, cfg.flush, cfg.flush_bytes);
  const Datatype f64 = Datatype::float64();
  const Datatype byte = Datatype::byte();
  comm.barrier();

  // --- timed steps --------------------------------------------------------
  const bool sender = !sends.empty();
  std::vector<double> local;
  local.reserve(static_cast<std::size_t>(cfg.reps));
  std::vector<Request> rreqs(incoming.size());
  std::vector<Request> sreqs(sends.size());
  for (int rep = 0; rep < cfg.reps; ++rep) {
    const double t0 = comm.wtime();
    for (std::size_t j = 0; j < incoming.size(); ++j)
      rreqs[j] = comm.irecv(incoming[j].ghost.data(),
                            incoming[j].layout.element_count(), f64,
                            incoming[j].peer, ping_tag);
    for (std::size_t i = 0; i < sends.size(); ++i)
      sreqs[i] = sends[i].start(comm, cache);
    // Receives complete first: a rendezvous send finishes only once its
    // receiver matches, so draining receives before send-waits keeps
    // cyclic patterns (halo, all-to-all) free of host-level deadlock.
    waitall(rreqs);
    waitall(sreqs);
    if (pattern.acked()) {
      for (const IncomingTransfer& in : incoming)
        comm.send(nullptr, 0, byte, in.peer, ping_tag + 1);
      for (const SchemeSend& s : sends)
        comm.recv(nullptr, 0, byte, s.peer, ping_tag + 1);
    }
    const double dt = comm.wtime() - t0;
    local.push_back(sender ? dt : 0.0);
    // The §3.2 flush between repetitions, then a clock-fusing barrier
    // so every step starts from a common virtual time.
    flusher.flush(comm);
    comm.barrier();
  }

  // --- verification (functional runs only) --------------------------------
  bool checked = false;
  bool ok = true;
  if (cfg.verify) {
    for (const IncomingTransfer& in : incoming) {
      const std::size_t footprint_bytes =
          in.layout.footprint_elems() * sizeof(double);
      if (in.ghost.is_phantom() || in.ghost.size() == 0 ||
          !comm.moves_payload(footprint_bytes))
        continue;
      checked = true;
      const std::size_t salt = pattern_fill_salt(in.peer, in.sender_index);
      const auto got = in.ghost.as<const double>();
      in.layout.for_each_element([&](std::size_t k, std::size_t src) {
        if (got[k] != fill_value(salt + src)) ok = false;
      });
    }
  }

  // --- fuse the per-step bottleneck times and the verdict ------------------
  std::vector<double> samples;
  samples.reserve(local.size());
  for (const double dt : local)
    samples.push_back(comm.allreduce(dt, minimpi::ReduceOp::max));
  std::size_t my_bytes = 0;
  for (const SchemeSend& s : sends) my_bytes += s.layout.payload_bytes();
  const double busiest =
      comm.allreduce(static_cast<double>(my_bytes), minimpi::ReduceOp::max);
  const double all_ok =
      comm.allreduce(checked && !ok ? 0.0 : 1.0, minimpi::ReduceOp::min);
  const double any_checked =
      comm.allreduce(checked ? 1.0 : 0.0, minimpi::ReduceOp::max);
  comm.barrier();

  if (me == 0 && out != nullptr) {
    out->scheme = std::string(scheme_name);
    out->layout = pattern.cell_layout_name(base);
    out->payload_bytes = static_cast<std::size_t>(busiest);
    out->timing = summarize(samples);
    out->data_checked = any_checked > 0.5;
    out->verified = all_ok > 0.5;
  }
}

RunResult CommPattern::run(const minimpi::UniverseOptions& opts,
                           std::string_view scheme_name, const Layout& base,
                           const HarnessConfig& cfg) const {
  RunResult result;
  minimpi::Universe::run(opts, [&](Comm& comm) {
    run_pattern_rank(comm, *this, scheme_name, base, cfg, &result);
  });
  return result;
}

}  // namespace ncsend
