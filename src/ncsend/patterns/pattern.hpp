#pragma once
/// \file pattern.hpp
/// \brief N-rank communication patterns: the paper's §4.7 question as a
/// first-class subsystem.
///
/// Every first-class measurement used to be the 2-rank ping-pong of
/// §3.2, yet the paper's findings matter because real applications send
/// non-contiguous data inside multi-rank traffic (its §4.7 explicitly
/// asks whether the picture survives when all node pairs communicate).
/// A `CommPattern` generalizes the harness: it names a rank count, a
/// per-rank *layout map* (which non-contiguous `Layout` each rank sends
/// to each neighbor per step), and whether steps are closed by a
/// zero-byte ack (ping-pong style).  One (pattern, scheme, base-layout)
/// measurement is still a single self-contained `Universe::run`, so the
/// §2.5 byte-determinism argument carries over unchanged (DESIGN.md
/// §2.6).
///
/// Shipped patterns (`CommPattern::names()`):
///   * `pingpong`        — the existing §3.2 harness, now a pattern;
///   * `multi-pair(P)`   — P concurrent ping-pong pairs (the §4.7
///                         "all node pairs" ablation, subsumed);
///   * `halo2d(RxC)`     — 2-D Cartesian grid exchanging faces: rows
///                         travel contiguous, columns as the canonical
///                         blocklen-1 strided vector;
///   * `halo3d(XxYxZ)`   — 3-D Cartesian grid exchanging six faces:
///                         contiguous slabs, blocked strided planes,
///                         and blocklen-1 strided planes;
///   * `transpose(N)`    — all-to-all of strided panels (each rank
///                         scatters the columns of its local block);
///   * `graph(...)`      — sparse neighbor topology from an explicit
///                         adjacency: `graph(ring:N)`, `graph(star:N)`,
///                         `graph(hyper:N)` (N a power of two), or an
///                         explicit edge list `graph(N:a>b.c>d...)`.
///                         Each edge carries the base layout itself;
///                         this is the pattern that scales a universe
///                         to 1k+ ranks (total traffic grows linearly,
///                         not quadratically as in transpose).

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "minimpi/runtime/comm.hpp"
#include "ncsend/harness.hpp"
#include "ncsend/layout.hpp"

namespace ncsend {

/// One directed transfer a rank performs every step.
struct Transfer {
  minimpi::Rank peer;  ///< destination rank
  Layout layout;       ///< what the sender sends (its non-contiguous view)
};

class CommPattern {
 public:
  virtual ~CommPattern() = default;

  /// Canonical parameterized id ("halo2d(3x3)", "multi-pair(4)", ...).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Ranks one measurement universe needs.
  [[nodiscard]] virtual int nranks() const = 0;

  /// The layout map: transfers `rank` performs per step when each
  /// message carries `base.element_count()` doubles.  Patterns with
  /// intrinsic layouts (halo2d, transpose) use only the element count;
  /// pair patterns forward `base` itself.
  [[nodiscard]] virtual std::vector<Transfer> sends(
      int rank, const Layout& base) const = 0;

  /// True if each step is closed ping-pong style: every data transfer
  /// is answered by a zero-byte ack the sender waits for (§3.2).
  [[nodiscard]] virtual bool acked() const { return false; }

  /// Simultaneous senders contending for one NIC in steady state
  /// (feeds `UniverseOptions::concurrent_senders`).
  [[nodiscard]] virtual int concurrent_senders() const = 0;

  /// Row label for result cells; defaults to the base layout's name,
  /// overridden by patterns whose layouts are intrinsic.
  [[nodiscard]] virtual std::string cell_layout_name(
      const Layout& base) const {
    return base.name();
  }

  /// \brief One (scheme, base-layout) measurement of this pattern:
  /// spins up the universe and runs the generic N-rank exchange engine
  /// (pattern_harness.cpp).  `pingpong` overrides this to delegate to
  /// the §3.2 harness unchanged.  `opts.nranks` must already match
  /// `nranks()` (use `run_pattern_experiment`).
  [[nodiscard]] virtual RunResult run(const minimpi::UniverseOptions& opts,
                                      std::string_view scheme_name,
                                      const Layout& base,
                                      const HarnessConfig& cfg) const;

  /// \brief Registry lookup: canonical names and the parameterized
  /// forms ("multi-pair(2)", "halo2d(4x2)", "halo3d(2x2x2)",
  /// "transpose(8)", "graph(ring:1024)"); bare family names pick the
  /// default parameters.
  /// Throws MM_ERR_ARG for unknown names or out-of-range parameters.
  static std::unique_ptr<CommPattern> by_name(std::string_view name);
  /// Default instances of every registered pattern family.
  static const std::vector<std::string>& names();

 protected:
  explicit CommPattern(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
};

/// \brief Send schemes the generic N-rank engine can apply per
/// transfer: the full legend — the paper's eight plus the extension
/// schemes — because the engine instantiates the same peer-addressed
/// `TransferScheme` objects the §3.2 harness drives.
const std::vector<std::string>& pattern_scheme_names();
bool pattern_scheme_supported(std::string_view scheme);

/// \brief Deterministic fill salt for (sender rank, transfer index):
/// each directed transfer carries a distinct recognizable payload.
inline std::size_t pattern_fill_salt(int rank, std::size_t transfer_index) {
  return static_cast<std::size_t>(rank) * 1'000'003 + transfer_index * 101;
}

/// \brief Patch `opts` with the pattern's topology (rank count,
/// concurrent senders) and run one measurement.
RunResult run_pattern_experiment(minimpi::UniverseOptions opts,
                                 const CommPattern& pattern,
                                 std::string_view scheme_name,
                                 const Layout& base,
                                 const HarnessConfig& cfg = {});

/// \brief The pattern's full layout map, resolved once per universe on
/// the host before any fiber runs.
///
/// Each rank used to *mirror* the map itself — call `sends(q, base)`
/// for every other rank q to learn what it receives and where its RMA
/// transfers land — which made universe setup O(nranks²) calls into
/// the pattern and the dominant cost of a 1k-rank measurement.  The
/// map is rank-agnostic, so building it once and letting every fiber
/// read its slice is pure host-side mechanics: the per-receiver
/// enumeration order (senders ascending, transfer index ascending)
/// and the arena prefix sums are exactly those of the old mirror loop,
/// so matching order, arena addressing — and therefore every virtual
/// clock — are unchanged.
struct PatternMap {
  /// One expected incoming transfer of some rank: who sends it, and
  /// where it lands in the receiving rank's RMA ghost arena.  The
  /// layout lives in the sender's outgoing list (`incoming_layout`).
  struct Incoming {
    minimpi::Rank peer = 0;        ///< sending rank
    std::size_t sender_index = 0;  ///< index in the sender's outgoing list
    std::size_t arena_offset = 0;  ///< RMA mode: offset in the arena
  };

  std::vector<std::vector<Transfer>> outgoing;   ///< per rank: its sends
  std::vector<std::vector<Incoming>> incoming;   ///< per rank: its receives
  /// Per (rank, outgoing index): the transfer's offset in *its
  /// receiver's* arena — the sender side of the RMA addressing that
  /// both endpoints must agree on without a coordination message.
  std::vector<std::vector<std::size_t>> arena_offset_out;

  [[nodiscard]] const Layout& incoming_layout(const Incoming& in) const {
    return outgoing[static_cast<std::size_t>(in.peer)][in.sender_index]
        .layout;
  }

  static PatternMap build(const CommPattern& pattern, const Layout& base);
};

/// \brief Per-rank body of the generic N-rank exchange: run inside
/// `Universe::run` on every rank, against a `PatternMap` built once
/// for the universe.  Rank 0 writes the fused result to `*out` (if
/// non-null); the timing is the per-step maximum over all sending
/// ranks and `payload_bytes` the busiest rank's per-step send volume.
void run_pattern_rank(minimpi::Comm& comm, const CommPattern& pattern,
                      const PatternMap& map, std::string_view scheme_name,
                      const Layout& base, const HarnessConfig& cfg,
                      RunResult* out);

}  // namespace ncsend
