#include "ncsend/patterns/pattern.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <utility>

#include "minimpi/base/error.hpp"
#include "ncsend/collectives/collective.hpp"
#include "ncsend/schemes/schemes.hpp"

namespace ncsend {

using minimpi::ErrorClass;
using minimpi::Rank;

namespace {

/// Parse the decimal in `text`; nullopt on junk or out-of-range.
std::optional<int> parse_int(std::string_view text, int lo, int hi) {
  const std::string s(text);
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v < lo || v > hi)
    return std::nullopt;
  return static_cast<int>(v);
}

/// Split "family(args)" into family and args ("" when bare).
std::pair<std::string_view, std::string_view> split_name(
    std::string_view name) {
  const auto open = name.find('(');
  if (open == std::string_view::npos) return {name, {}};
  if (name.back() != ')') return {name, name.substr(name.size())};
  return {name.substr(0, open),
          name.substr(open + 1, name.size() - open - 2)};
}

// ---------------------------------------------------------------------------
// pingpong: the §3.2 harness, now a pattern
// ---------------------------------------------------------------------------

class PingPongPattern final : public CommPattern {
 public:
  PingPongPattern() : CommPattern("pingpong") {}

  [[nodiscard]] int nranks() const override { return 2; }
  [[nodiscard]] bool acked() const override { return true; }
  [[nodiscard]] int concurrent_senders() const override { return 1; }

  [[nodiscard]] std::vector<Transfer> sends(
      int rank, const Layout& base) const override {
    if (rank == 0) return {{1, base}};
    return {};
  }

  [[nodiscard]] RunResult run(const minimpi::UniverseOptions& opts,
                              std::string_view scheme_name,
                              const Layout& base,
                              const HarnessConfig& cfg) const override {
    // The existing harness *is* this pattern; delegating keeps every
    // 2-rank curve (and the BENCH_scheme_sweep bytes) bit-identical.
    return run_experiment(opts, scheme_name, base, cfg);
  }
};

// ---------------------------------------------------------------------------
// multi-pair(P): P concurrent ping-pong pairs (paper §4.7)
// ---------------------------------------------------------------------------

class MultiPairPattern final : public CommPattern {
 public:
  explicit MultiPairPattern(int pairs)
      : CommPattern("multi-pair(" + std::to_string(pairs) + ")"),
        pairs_(pairs) {}

  [[nodiscard]] int nranks() const override { return 2 * pairs_; }
  [[nodiscard]] bool acked() const override { return true; }
  /// All pairs live on one node, as in the paper's test: P senders
  /// share the NIC.
  [[nodiscard]] int concurrent_senders() const override { return pairs_; }

  [[nodiscard]] std::vector<Transfer> sends(
      int rank, const Layout& base) const override {
    if (rank % 2 == 0) return {{rank + 1, base}};
    return {};
  }

 private:
  int pairs_;
};

// ---------------------------------------------------------------------------
// halo2d(RxC): 2-D Cartesian grid exchanging faces
// ---------------------------------------------------------------------------

class Halo2dPattern final : public CommPattern {
 public:
  Halo2dPattern(int rows, int cols)
      : CommPattern("halo2d(" + std::to_string(rows) + "x" +
                    std::to_string(cols) + ")"),
        rows_(rows), cols_(cols) {}

  [[nodiscard]] int nranks() const override { return rows_ * cols_; }

  [[nodiscard]] std::vector<Transfer> sends(
      int rank, const Layout& base) const override {
    // Each rank owns an n x n row-major block of doubles, n = the
    // per-face element count.  Faces to row-neighbors (north/south) are
    // contiguous rows; faces to column-neighbors (west/east) are true
    // columns — the canonical blocklen-1 strided vector, stride = the
    // local row length.
    const std::size_t n = base.element_count();
    const int r = rank / cols_;
    const int c = rank % cols_;
    std::vector<Transfer> out;
    if (r > 0) out.push_back({rank - cols_, Layout::contiguous(n)});
    if (r + 1 < rows_) out.push_back({rank + cols_, Layout::contiguous(n)});
    if (c > 0) out.push_back({rank - 1, Layout::strided(n, 1, n)});
    if (c + 1 < cols_) out.push_back({rank + 1, Layout::strided(n, 1, n)});
    return out;
  }

  [[nodiscard]] int concurrent_senders() const override {
    // The busiest rank's out-degree: how many faces leave one NIC at
    // once in steady state.
    const int vertical = rows_ >= 3 ? 2 : rows_ - 1;
    const int horizontal = cols_ >= 3 ? 2 : cols_ - 1;
    return std::max(1, vertical + horizontal);
  }

  [[nodiscard]] std::string cell_layout_name(
      const Layout& base) const override {
    return "halo-faces(n=" + std::to_string(base.element_count()) + ")";
  }

 private:
  int rows_, cols_;
};

// ---------------------------------------------------------------------------
// halo3d(XxYxZ): 3-D Cartesian grid exchanging faces
// ---------------------------------------------------------------------------

class Halo3dPattern final : public CommPattern {
 public:
  Halo3dPattern(int nx, int ny, int nz)
      : CommPattern("halo3d(" + std::to_string(nx) + "x" +
                    std::to_string(ny) + "x" + std::to_string(nz) + ")"),
        nx_(nx), ny_(ny), nz_(nz) {}

  [[nodiscard]] int nranks() const override { return nx_ * ny_ * nz_; }

  [[nodiscard]] std::vector<Transfer> sends(
      int rank, const Layout& base) const override {
    // Each rank owns an s x s x s row-major block of doubles (x slowest,
    // z fastest) with s*s = the per-face element count, and exchanges
    // its six faces:
    //   * x-faces (yz-planes) are whole contiguous slabs;
    //   * y-faces (xz-planes) are s blocks of s contiguous doubles,
    //     stride s^2 — the blocked strided case halo2d never produces;
    //   * z-faces (xy-planes) are s^2 single elements at stride s — the
    //     canonical blocklen-1 strided vector.
    const std::size_t s = face_side(base);
    const std::size_t face = s * s;
    const int ix = rank / (ny_ * nz_);
    const int iy = (rank / nz_) % ny_;
    const int iz = rank % nz_;
    const int stride_x = ny_ * nz_;
    std::vector<Transfer> out;
    if (ix > 0) out.push_back({rank - stride_x, Layout::contiguous(face)});
    if (ix + 1 < nx_)
      out.push_back({rank + stride_x, Layout::contiguous(face)});
    if (iy > 0) out.push_back({rank - nz_, Layout::strided(s, s, s * s)});
    if (iy + 1 < ny_)
      out.push_back({rank + nz_, Layout::strided(s, s, s * s)});
    if (iz > 0) out.push_back({rank - 1, Layout::strided(face, 1, s)});
    if (iz + 1 < nz_) out.push_back({rank + 1, Layout::strided(face, 1, s)});
    return out;
  }

  [[nodiscard]] int concurrent_senders() const override {
    // The busiest rank's out-degree: two faces per dimension that has
    // an interior, one on a 2-wide dimension, none on a flat one.
    const auto faces = [](int n) { return n >= 3 ? 2 : n - 1; };
    return std::max(1, faces(nx_) + faces(ny_) + faces(nz_));
  }

  [[nodiscard]] std::string cell_layout_name(
      const Layout& base) const override {
    const std::size_t s = face_side(base);
    return "halo3d-faces(n=" + std::to_string(s * s) + ")";
  }

 private:
  /// Side length of one square face: the largest s with s^2 <= the
  /// requested per-face element count (all six faces carry s^2 doubles,
  /// so result rows are labeled with the actual payload).
  [[nodiscard]] static std::size_t face_side(const Layout& base) {
    std::size_t s = 1;
    while ((s + 1) * (s + 1) <= base.element_count()) ++s;
    return s;
  }

  int nx_, ny_, nz_;
};

// ---------------------------------------------------------------------------
// transpose(N): all-to-all of strided panels
// ---------------------------------------------------------------------------

class TransposePattern final : public CommPattern {
 public:
  explicit TransposePattern(int n)
      : CommPattern("transpose(" + std::to_string(n) + ")"), n_(n) {}

  [[nodiscard]] int nranks() const override { return n_; }

  [[nodiscard]] std::vector<Transfer> sends(
      int rank, const Layout& base) const override {
    // Matrix transpose traffic: each rank holds a row-major block of
    // row length N and scatters its columns, one strided panel of
    // `elems` doubles per peer.
    const std::size_t n = base.element_count();
    const auto stride = static_cast<std::size_t>(n_);
    std::vector<Transfer> out;
    out.reserve(static_cast<std::size_t>(n_ - 1));
    for (int q = 0; q < n_; ++q) {
      if (q == rank) continue;
      out.push_back({q, Layout::strided(n, 1, stride)});
    }
    return out;
  }

  [[nodiscard]] int concurrent_senders() const override { return n_ - 1; }

  [[nodiscard]] std::string cell_layout_name(
      const Layout& base) const override {
    return "panels(n=" + std::to_string(base.element_count()) +
           ",s=" + std::to_string(n_) + ")";
  }

 private:
  int n_;
};

// ---------------------------------------------------------------------------
// graph(...): sparse neighbor topologies from an explicit adjacency
// ---------------------------------------------------------------------------

class GraphPattern final : public CommPattern {
 public:
  GraphPattern(std::string name, std::vector<std::vector<Rank>> adj)
      : CommPattern(std::move(name)), adj_(std::move(adj)) {}

  [[nodiscard]] int nranks() const override {
    return static_cast<int>(adj_.size());
  }

  [[nodiscard]] std::vector<Transfer> sends(
      int rank, const Layout& base) const override {
    // Every edge carries the requested base layout itself: graph
    // patterns parameterize the *topology*, pair-style, leaving the
    // non-contiguity axis to the layout sweep.
    std::vector<Transfer> out;
    out.reserve(adj_[static_cast<std::size_t>(rank)].size());
    for (const Rank peer : adj_[static_cast<std::size_t>(rank)])
      out.push_back({peer, base});
    return out;
  }

  [[nodiscard]] int concurrent_senders() const override {
    // The busiest rank's out-degree, as for the Cartesian patterns.
    std::size_t deg = 1;
    for (const auto& n : adj_) deg = std::max(deg, n.size());
    return static_cast<int>(deg);
  }

 private:
  std::vector<std::vector<Rank>> adj_;
};

/// Parse the graph(...) argument forms:
///   ring:N   — rank i sends to (i+1) mod N;
///   star:N   — rank 0 (the hub) sends to every leaf;
///   hyper:N  — hypercube, N a power of two: rank i sends to i^2^d;
///   N:a>b.c>d... — explicit directed edge list over N ranks.
/// Null on malformed input (caller raises MM_ERR_ARG).
std::unique_ptr<CommPattern> make_graph(std::string_view args) {
  // Cap at the cooperative scheduler's task capacity: one fiber per rank.
  constexpr int max_n = 16384;
  const auto colon = args.find(':');
  if (colon == std::string_view::npos) return nullptr;
  const auto head = args.substr(0, colon);
  const auto tail = args.substr(colon + 1);

  if (head == "ring") {
    const auto n = parse_int(tail, 2, max_n);
    if (!n) return nullptr;
    std::vector<std::vector<Rank>> adj(static_cast<std::size_t>(*n));
    for (int i = 0; i < *n; ++i)
      adj[static_cast<std::size_t>(i)] = {(i + 1) % *n};
    return std::make_unique<GraphPattern>(
        "graph(ring:" + std::to_string(*n) + ")", std::move(adj));
  }
  if (head == "star") {
    const auto n = parse_int(tail, 2, max_n);
    if (!n) return nullptr;
    std::vector<std::vector<Rank>> adj(static_cast<std::size_t>(*n));
    for (int i = 1; i < *n; ++i) adj[0].push_back(i);
    return std::make_unique<GraphPattern>(
        "graph(star:" + std::to_string(*n) + ")", std::move(adj));
  }
  if (head == "hyper") {
    const auto n = parse_int(tail, 2, max_n);
    if (!n || (*n & (*n - 1)) != 0) return nullptr;  // power of two only
    std::vector<std::vector<Rank>> adj(static_cast<std::size_t>(*n));
    for (int i = 0; i < *n; ++i)
      for (int bit = 1; bit < *n; bit <<= 1)
        adj[static_cast<std::size_t>(i)].push_back(i ^ bit);
    return std::make_unique<GraphPattern>(
        "graph(hyper:" + std::to_string(*n) + ")", std::move(adj));
  }

  // Explicit edge list: "N:a>b.c>d..." over ranks 0..N-1.
  const auto n = parse_int(head, 2, max_n);
  if (!n || tail.empty()) return nullptr;
  std::vector<std::vector<Rank>> adj(static_cast<std::size_t>(*n));
  std::string canon;
  std::string_view rest = tail;
  while (!rest.empty()) {
    const auto dot = rest.find('.');
    const auto edge =
        dot == std::string_view::npos ? rest : rest.substr(0, dot);
    rest = dot == std::string_view::npos ? std::string_view{}
                                         : rest.substr(dot + 1);
    const auto gt = edge.find('>');
    if (gt == std::string_view::npos) return nullptr;
    const auto a = parse_int(edge.substr(0, gt), 0, *n - 1);
    const auto b = parse_int(edge.substr(gt + 1), 0, *n - 1);
    if (!a || !b || *a == *b) return nullptr;
    adj[static_cast<std::size_t>(*a)].push_back(*b);
    if (!canon.empty()) canon += '.';
    canon += std::to_string(*a) + ">" + std::to_string(*b);
  }
  return std::make_unique<GraphPattern>(
      "graph(" + std::to_string(*n) + ":" + canon + ")", std::move(adj));
}

}  // namespace

std::unique_ptr<CommPattern> CommPattern::by_name(std::string_view name) {
  const auto [family, args] = split_name(name);
  if (family == "pingpong" && args.empty())
    return std::make_unique<PingPongPattern>();
  // Geometry caps bound one universe at the cooperative scheduler's
  // task capacity (16384 fibers), not at thread-per-rank feasibility.
  if (family == "multi-pair") {
    const auto pairs = args.empty() ? std::optional<int>{4}
                                    : parse_int(args, 1, 512);
    if (pairs) return std::make_unique<MultiPairPattern>(*pairs);
  }
  if (family == "halo2d") {
    if (args.empty()) return std::make_unique<Halo2dPattern>(3, 3);
    const auto x = args.find('x');
    if (x != std::string_view::npos) {
      const auto rows = parse_int(args.substr(0, x), 1, 64);
      const auto cols = parse_int(args.substr(x + 1), 1, 64);
      if (rows && cols && *rows * *cols >= 2 && *rows * *cols <= 4096)
        return std::make_unique<Halo2dPattern>(*rows, *cols);
    }
  }
  if (family == "halo3d") {
    if (args.empty()) return std::make_unique<Halo3dPattern>(2, 2, 2);
    const auto x1 = args.find('x');
    const auto x2 = x1 == std::string_view::npos ? std::string_view::npos
                                                 : args.find('x', x1 + 1);
    if (x2 != std::string_view::npos) {
      const auto nx = parse_int(args.substr(0, x1), 1, 16);
      const auto ny = parse_int(args.substr(x1 + 1, x2 - x1 - 1), 1, 16);
      const auto nz = parse_int(args.substr(x2 + 1), 1, 16);
      if (nx && ny && nz && *nx * *ny * *nz >= 2 && *nx * *ny * *nz <= 4096)
        return std::make_unique<Halo3dPattern>(*nx, *ny, *nz);
    }
  }
  if (family == "transpose") {
    const auto n = args.empty() ? std::optional<int>{4}
                                : parse_int(args, 2, 256);
    if (n) return std::make_unique<TransposePattern>(*n);
  }
  if (family == "graph") {
    auto g = args.empty() ? make_graph("ring:8") : make_graph(args);
    if (g) return g;
  }
  if (family == "collective") {
    auto c = args.empty() ? coll::make_collective_pattern("allreduce:tree:8")
                          : coll::make_collective_pattern(args);
    if (c) return c;
  }
  minimpi::require(false, ErrorClass::invalid_arg,
                   "unknown communication pattern: " + std::string(name));
  return nullptr;
}

const std::vector<std::string>& CommPattern::names() {
  static const std::vector<std::string> v = {
      "pingpong", "multi-pair", "halo2d",    "halo3d",
      "transpose", "graph",     "collective"};
  return v;
}

const std::vector<std::string>& pattern_scheme_names() {
  // The full legend: since the engine instantiates the real
  // peer-addressed TransferSchemes per outgoing transfer, every scheme
  // the §3.2 harness measures — the paper's eight plus the extension
  // schemes — also runs under the N-rank patterns.
  static const std::vector<std::string> v = [] {
    std::vector<std::string> names = all_scheme_names();
    for (const auto& n : extended_scheme_names()) names.push_back(n);
    return names;
  }();
  return v;
}

bool pattern_scheme_supported(std::string_view scheme) {
  const auto& names = pattern_scheme_names();
  return std::find(names.begin(), names.end(), scheme) != names.end();
}

RunResult run_pattern_experiment(minimpi::UniverseOptions opts,
                                 const CommPattern& pattern,
                                 std::string_view scheme_name,
                                 const Layout& base,
                                 const HarnessConfig& cfg) {
  opts.nranks = pattern.nranks();
  opts.concurrent_senders = pattern.concurrent_senders();
  return pattern.run(opts, scheme_name, base, cfg);
}

}  // namespace ncsend
