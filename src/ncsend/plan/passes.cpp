/// \file passes.cpp
/// \brief Optimization passes over the compiled action form.
///
/// Both passes rewrite the flat program *visibly*: every inserted
/// action carries `inserted = true` and a typed `ChargeAtom`, and the
/// aggregate cost is reported in the plan's `pass_charges` — nothing is
/// optimized away silently.  Passes deliberately change modeled time
/// (that is their point), so the bit-exact-replay guarantee and the
/// seed goldens hold only with passes off.
///
/// Safety rules, both conservative:
///  * aggregation only merges groups where *every* send from the rank
///    to the (peer, tag) key in the rep is a small posted (eager) send
///    and the receiver's recv count for the key matches exactly — so
///    mailbox FIFO pairing is preserved wholesale;
///  * injection sorting only reorders runs of *consecutive* posted
///    sends (nothing blocks between them) and reverts any run where
///    two messages to the same (peer, tag) would swap relative order
///    (MPI's non-overtaking rule).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "ncsend/plan/comm_plan.hpp"

namespace ncsend::plan {

namespace {

using minimpi::ChargeAtom;
using minimpi::Rank;
using mplan::Action;
using mplan::Op;
using mplan::SendArm;

[[nodiscard]] bool posted_arm(SendArm arm) noexcept {
  switch (arm) {
    case SendArm::eager_posted:
    case SendArm::rdv_posted:
    case SendArm::ready:
    case SendArm::buffered:
      return true;
    case SendArm::eager_blocking:
    case SendArm::rdv_blocking:
      return false;
  }
  return false;
}

/// Merge `b`'s block statistics into `a`.
void merge_stats(minimpi::BlockStats& a, const minimpi::BlockStats& b) {
  if (a.block_count == 0) {
    a = b;
    return;
  }
  if (b.block_count == 0) return;
  a.block_count += b.block_count;
  a.total_bytes += b.total_bytes;
  a.min_block = std::min(a.min_block, b.min_block);
  a.max_block = std::max(a.max_block, b.max_block);
}

/// One applicable aggregation opportunity found by scanning a rep.
struct MergeGroup {
  Rank sender = -1;
  Rank receiver = -1;
  int tag = 0;
  std::vector<std::size_t> send_idx;  ///< positions in sender's program
  std::vector<std::size_t> recv_idx;  ///< positions in receiver's program
};

/// Find the first mergeable (sender, peer, tag) group in the rep, or
/// nullopt.  A group qualifies when the sender posts >= 2 sends to the
/// key, all of them eager_posted, and the receiver's recv count for the
/// key matches the send count exactly.
[[nodiscard]] std::optional<MergeGroup> find_group(
    const std::vector<mplan::RankProgram>& progs,
    const minimpi::CostModel& model) {
  for (std::size_t r = 0; r < progs.size(); ++r) {
    std::map<std::tuple<Rank, int>, std::vector<std::size_t>> sends;
    std::map<std::tuple<Rank, int>, bool> all_eager_posted;
    for (std::size_t i = 0; i < progs[r].size(); ++i) {
      const Action& a = progs[r][i];
      if (a.op != Op::send) continue;
      const auto key = std::make_tuple(a.peer, a.tag);
      sends[key].push_back(i);
      auto it = all_eager_posted.try_emplace(key, true).first;
      it->second = it->second && a.arm == SendArm::eager_posted;
    }
    for (const auto& [key, idxs] : sends) {
      if (idxs.size() < 2 || !all_eager_posted[key]) continue;
      // The merged message keeps the eager arm, so its total must stay
      // under the model's eager limit — otherwise the rewrite would
      // claim an eager wire for a rendezvous-sized message (and the
      // post-pass static verifier would reject the plan).
      std::size_t total = 0;
      for (const std::size_t i : idxs) total += progs[r][i].bytes;
      if (total > model.eager_limit()) continue;
      const auto [peer, tag] = key;
      if (peer < 0 || static_cast<std::size_t>(peer) >= progs.size())
        continue;
      std::vector<std::size_t> ridx;
      for (std::size_t j = 0; j < progs[static_cast<std::size_t>(peer)].size();
           ++j) {
        const Action& b = progs[static_cast<std::size_t>(peer)][j];
        if (b.op == Op::recv && b.peer == static_cast<Rank>(r) &&
            b.tag == tag)
          ridx.push_back(j);
      }
      if (ridx.size() != idxs.size()) continue;
      MergeGroup g;
      g.sender = static_cast<Rank>(r);
      g.receiver = peer;
      g.tag = tag;
      g.send_idx = idxs;
      g.recv_idx = ridx;
      return g;
    }
  }
  return std::nullopt;
}

/// Apply one merge group: coalesce the sender's sends into the last
/// one (plus a visible coalescing-copy action before it) and the
/// receiver's recvs into the first one.
void apply_group(std::vector<mplan::RankProgram>& progs, const MergeGroup& g,
                 const minimpi::CostModel& model,
                 std::vector<PassCharge>& charges) {
  mplan::RankProgram& sp = progs[static_cast<std::size_t>(g.sender)];
  mplan::RankProgram& rp = progs[static_cast<std::size_t>(g.receiver)];

  const std::size_t last = g.send_idx.back();
  Action merged = sp[last];
  std::vector<std::uint32_t> dropped_events;
  for (std::size_t k = 0; k + 1 < g.send_idx.size(); ++k) {
    const Action& a = sp[g.send_idx[k]];
    merged.bytes += a.bytes;
    merge_stats(merged.stats, a.stats);
    dropped_events.push_back(a.event);
  }
  {
    // merged.stats currently holds the last send's stats merged with
    // the earlier ones in reverse order; rebuild deterministically.
    minimpi::BlockStats s{};
    for (const std::size_t i : g.send_idx) merge_stats(s, sp[i].stats);
    merged.stats = s;
  }

  // The coalescing copy: the bytes of all merged messages move once
  // more into one contiguous wire buffer — a visible plan-level charge.
  Action copy;
  copy.op = Op::advance;
  copy.seconds = model.internal_contiguous_copy_time(merged.bytes);
  copy.bytes = merged.bytes;
  copy.inserted = true;
  copy.atom = ChargeAtom::internal_copy;
  charges.push_back(
      {ChargeAtom::internal_copy, copy.seconds, g.send_idx.size()});

  // Rewrite the sender: drop the early sends, keep the merged one at
  // the last position (prefixed by the copy), and fix up wait_sends on
  // dropped events — drop waits before the merged send (nothing to
  // wait for yet), retarget waits after it to the merged event.
  const auto is_dropped = [&](std::uint32_t ev) {
    return std::find(dropped_events.begin(), dropped_events.end(), ev) !=
           dropped_events.end();
  };
  mplan::RankProgram out;
  out.reserve(sp.size() + 1);
  for (std::size_t i = 0; i < sp.size(); ++i) {
    const Action& a = sp[i];
    const bool early_send =
        std::find(g.send_idx.begin(), g.send_idx.end(), i) !=
            g.send_idx.end() &&
        i != last;
    if (early_send) continue;
    if (i == last) {
      out.push_back(copy);
      out.push_back(merged);
      continue;
    }
    if (a.op == Op::wait_send && is_dropped(a.event)) {
      if (i < last) continue;  // subsumed by the merged send's wait
      Action w = a;
      w.event = merged.event;
      out.push_back(w);
      continue;
    }
    out.push_back(a);
  }
  sp = std::move(out);

  // Rewrite the receiver: one recv (summed bytes, merged stats) at the
  // first matching position.
  Action rmerged = rp[g.recv_idx.front()];
  {
    minimpi::BlockStats s{};
    std::size_t bytes = 0;
    for (const std::size_t j : g.recv_idx) {
      merge_stats(s, rp[j].stats);
      bytes += rp[j].bytes;
    }
    rmerged.stats = s;
    rmerged.bytes = bytes;
  }
  mplan::RankProgram rout;
  rout.reserve(rp.size());
  for (std::size_t j = 0; j < rp.size(); ++j) {
    const bool in_group = std::find(g.recv_idx.begin(), g.recv_idx.end(),
                                    j) != g.recv_idx.end();
    if (!in_group) {
      rout.push_back(rp[j]);
    } else if (j == g.recv_idx.front()) {
      rout.push_back(rmerged);
    }
  }
  rp = std::move(rout);
}

}  // namespace

bool aggregate_small_rep(std::vector<mplan::RankProgram>& rep_programs,
                         const minimpi::CostModel& model,
                         std::vector<PassCharge>& charges) {
  bool changed = false;
  // Apply one group at a time and rescan: positions shift after each
  // rewrite, and groups touch two ranks' programs.
  while (auto g = find_group(rep_programs, model)) {
    apply_group(rep_programs, *g, model, charges);
    changed = true;
  }
  return changed;
}

bool sort_injections_program(mplan::RankProgram& program,
                             const minimpi::CostModel& model,
                             std::vector<PassCharge>& charges) {
  bool changed = false;
  std::size_t i = 0;
  while (i < program.size()) {
    if (!(program[i].op == Op::send && posted_arm(program[i].arm))) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < program.size() && program[j].op == Op::send &&
           posted_arm(program[j].arm))
      ++j;
    const std::size_t n = j - i;
    if (n < 2) {
      i = j;
      continue;
    }
    // Stable sort by ascending wire size: short injections drain the
    // FIFO NIC ledger first.
    std::vector<std::size_t> order(n);
    for (std::size_t k = 0; k < n; ++k) order[k] = i + k;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return program[a].bytes < program[b].bytes;
                     });
    // Non-overtaking guard: two sends to the same (peer, tag) must not
    // swap relative order.
    bool fifo_ok = true;
    std::map<std::tuple<Rank, int>, std::size_t> last_seen;
    for (const std::size_t idx : order) {
      const auto key =
          std::make_tuple(program[idx].peer, program[idx].tag);
      auto it = last_seen.find(key);
      if (it != last_seen.end() && it->second > idx) fifo_ok = false;
      last_seen[key] = idx;
    }
    bool identity = true;
    for (std::size_t k = 0; k < n; ++k)
      if (order[k] != i + k) identity = false;
    if (!fifo_ok || identity) {
      i = j;
      continue;
    }
    std::vector<Action> run;
    run.reserve(n);
    for (const std::size_t idx : order) run.push_back(program[idx]);
    for (std::size_t k = 0; k < n; ++k) program[i + k] = run[k];
    // The reorder bookkeeping: one library-call charge for rewriting
    // the injection queue, visible in the program.
    Action cost;
    cost.op = Op::advance;
    cost.seconds = model.call_overhead(n);
    cost.inserted = true;
    cost.atom = ChargeAtom::call_overhead;
    program.insert(program.begin() + static_cast<std::ptrdiff_t>(i), cost);
    charges.push_back({ChargeAtom::call_overhead, cost.seconds, n});
    changed = true;
    i = j + 1;  // account for the inserted action
  }
  return changed;
}

}  // namespace ncsend::plan
