#pragma once
/// \file verify.hpp
/// \brief Static plan verifier: pure dataflow/graph analysis over the
/// compiled `CommPlan` IR.
///
/// The interpreter self-check (compile.cpp) can prove "this capture
/// replays bit-exactly" but not *why* a plan is safe.  This layer
/// proves safety properties without interpreting a single clock, by
/// analysing the flat per-rank action arrays directly:
///
///  * **match completeness** — per captured rep, every posted send
///    pairs with exactly one recv of compatible (peer, tag, bytes) in
///    mailbox FIFO order, and vice versa;
///  * **deadlock freedom** — the cross-rank wait-for graph (rendezvous
///    handshakes, ssend acks, send waits, barriers, fences, PSCW
///    post/start/complete/wait groups, and — under emergent contention
///    — per-sender rendezvous NIC-ticket resolution order) is acyclic,
///    so a valid topological execution order exists;
///  * **pass safety** — re-derived on the *rewritten* program, never
///    trusted from the pass: `sort_injections` must not have reordered
///    a same-(peer, tag) pair (detected as a FIFO inversion against the
///    receiver's recv sequence), and `aggregate_small` must only have
///    merged eager-armed sends (an eager-armed send whose merged bytes
///    exceed the model's eager limit claims an eager wire for a
///    rendezvous-sized message);
///  * **RMA window safety** — every put/get offset stays within the
///    captured per-rank window bounds, and no two puts into one target
///    rank overlap byte ranges within a single epoch.
///
/// Each violation yields a typed `PlanDiagnostic`; `compile_cell` runs
/// `verify_plan` as a mandatory stage before the interpreter self-check
/// (and again after any optimization pass rewrote the program), so a
/// statically-rejected plan is `valid == false` before a clock is ever
/// interpreted.  `tools/plan_lint` exposes the same analysis as a CLI.
/// DESIGN.md §2.13 spells out what this proves vs. what the
/// interpreter self-check proves — complementary, neither subsumes the
/// other.

#include <cstddef>
#include <string>
#include <vector>

namespace ncsend::plan {

struct CommPlan;

/// What a diagnostic is about.  Grouped per check so the lint report
/// can show one PASS/FAIL line per proved property.
enum class DiagKind {
  // match completeness
  unmatched_send,   ///< a posted send no recv ever consumes
  unmatched_recv,   ///< a recv with no send to satisfy it
  size_mismatch,    ///< FIFO-paired send/recv disagree on bytes
  // deadlock freedom
  deadlock_cycle,   ///< cyclic cross-rank wait-for dependency
  collective_arity, ///< barrier/fence generations differ across ranks
  malformed,        ///< dangling event id / out-of-range rank or window
  // pass safety
  fifo_violation,   ///< same-(peer,tag) pair delivered out of order
  eager_overflow,   ///< eager-armed send above the model's eager limit
  // RMA window safety
  rma_out_of_bounds, ///< put/get outside the captured window extent
  rma_overlap,       ///< two puts overlap in one target epoch
};

[[nodiscard]] const char* diag_kind_name(DiagKind kind) noexcept;

/// One typed verifier finding, anchored to an action in the plan.
struct PlanDiagnostic {
  DiagKind kind = DiagKind::malformed;
  int rank = -1;          ///< rank whose program the finding anchors to
  int rep = -1;           ///< captured rep index (-1: spans reps)
  std::size_t action = 0; ///< index into programs[rank][rep]
  std::string message;    ///< human-readable explanation

  /// "rank 2 rep 1 action 7: unmatched_send: ..." (lint/dump format).
  [[nodiscard]] std::string to_string() const;
};

/// Result of one verification run: the findings plus a per-check
/// verdict (a check passes iff it produced no diagnostic).
struct VerifyReport {
  std::vector<PlanDiagnostic> diagnostics;
  bool match_complete = true;
  bool deadlock_free = true;
  bool pass_safe = true;
  bool rma_safe = true;

  [[nodiscard]] bool ok() const noexcept { return diagnostics.empty(); }
};

/// \brief Verify `plan` statically.  Pure analysis: interprets no
/// clocks, mutates nothing; callable on hand-mutated programs (tests)
/// as well as fresh captures.  Requires `plan.model` and
/// `plan.programs` to be populated; `valid` is not consulted.
[[nodiscard]] VerifyReport verify_plan(const CommPlan& plan);

}  // namespace ncsend::plan
