/// \file verify.cpp
/// \brief Static plan verifier implementation.
///
/// All four check families work on a flattened view of the plan: each
/// rank's captured reps concatenated in execution order, every action
/// tagged with its (rank, rep, index) provenance so diagnostics point
/// at real program positions.  Concatenation matches the interpreter's
/// semantics — mailbox FIFOs, barrier generations, and fence epochs all
/// persist across rep boundaries (ranks drift; replay.cpp) — so a
/// cross-rep pairing here is exactly the pairing replay would perform.
///
/// The deadlock check builds an explicit wait-for graph with two nodes
/// per blocking-relevant action (begin = the action starts executing /
/// deposits its envelope or arrival, end = the action completes and the
/// rank may proceed) plus one virtual node per barrier/fence
/// generation.  Acyclicity (Kahn) proves a topological execution order
/// exists; a leftover strongly-connected remainder is walked to print
/// the concrete cycle.

#include "ncsend/plan/verify.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <tuple>
#include <vector>

#include "ncsend/plan/comm_plan.hpp"

namespace ncsend::plan {

namespace {

using minimpi::Rank;
using mplan::Action;
using mplan::Op;
using mplan::SendArm;

[[nodiscard]] bool is_rdv(SendArm arm) noexcept {
  return arm == SendArm::rdv_blocking || arm == SendArm::rdv_posted;
}

[[nodiscard]] bool is_eager_arm(SendArm arm) noexcept {
  return arm == SendArm::eager_blocking || arm == SendArm::eager_posted;
}

/// One action in the flattened cross-rep view.
struct Ref {
  int rank = -1;
  int rep = -1;
  std::size_t idx = 0;  ///< index within programs[rank][rep]
  const Action* a = nullptr;
};

/// "send rdv-posted peer=3 tag=7 bytes=4096" — for diagnostic text.
[[nodiscard]] std::string describe(const Ref& ref) {
  std::ostringstream os;
  const Action& a = *ref.a;
  os << mplan::op_name(a.op);
  if (a.op == Op::send) os << " " << mplan::arm_name(a.arm);
  if (a.peer >= 0) os << " peer=" << a.peer;
  if (a.op == Op::send || a.op == Op::recv) os << " tag=" << a.tag;
  if (a.bytes > 0) os << " bytes=" << a.bytes;
  if (a.win >= 0) os << " win=" << a.win;
  return os.str();
}

void set_flag(VerifyReport& report, DiagKind kind) {
  switch (kind) {
    case DiagKind::unmatched_send:
    case DiagKind::unmatched_recv:
    case DiagKind::size_mismatch:
      report.match_complete = false;
      break;
    case DiagKind::deadlock_cycle:
    case DiagKind::collective_arity:
    case DiagKind::malformed:
      report.deadlock_free = false;
      break;
    case DiagKind::fifo_violation:
    case DiagKind::eager_overflow:
      report.pass_safe = false;
      break;
    case DiagKind::rma_out_of_bounds:
    case DiagKind::rma_overlap:
      report.rma_safe = false;
      break;
  }
}

constexpr std::size_t npos = static_cast<std::size_t>(-1);

/// Shared state of one verification run.
struct Verifier {
  const CommPlan& plan;
  VerifyReport report;

  std::vector<Ref> acts;                      ///< flattened actions
  std::vector<std::vector<std::size_t>> by_rank;  ///< flat ids, exec order
  /// send flat id <-> FIFO-paired recv flat id (npos: unmatched).
  std::vector<std::size_t> match;

  explicit Verifier(const CommPlan& p) : plan(p) {}

  void emit(DiagKind kind, const Ref& ref, std::string msg) {
    set_flag(report, kind);
    report.diagnostics.push_back({kind, ref.rank, ref.rep, ref.idx,
                                  std::move(msg)});
  }

  void flatten() {
    by_rank.resize(static_cast<std::size_t>(plan.nranks));
    for (int r = 0; r < plan.nranks; ++r) {
      const auto& reps = plan.programs[static_cast<std::size_t>(r)];
      for (std::size_t k = 0; k < reps.size(); ++k)
        for (std::size_t i = 0; i < reps[k].size(); ++i) {
          by_rank[static_cast<std::size_t>(r)].push_back(acts.size());
          acts.push_back({r, static_cast<int>(k), i, &reps[k][i]});
        }
    }
    match.assign(acts.size(), npos);
  }

  [[nodiscard]] bool rank_ok(Rank r) const {
    return r >= 0 && r < plan.nranks;
  }
  [[nodiscard]] bool win_ok(int w) const {
    return w >= 0 && static_cast<std::size_t>(w) < plan.window_count;
  }

  // --- structural well-formedness ----------------------------------------

  void check_malformed() {
    // event id -> send flat id, per (rank, rep) — event ids reset per rep.
    std::map<std::tuple<int, int, std::uint32_t>, std::size_t> send_events;
    for (std::size_t f = 0; f < acts.size(); ++f) {
      const Ref& ref = acts[f];
      const Action& a = *ref.a;
      switch (a.op) {
        case Op::send:
          if (!rank_ok(a.peer))
            emit(DiagKind::malformed, ref,
                 "send targets out-of-range rank " + std::to_string(a.peer));
          send_events[{ref.rank, ref.rep, a.event}] = f;
          break;
        case Op::recv:
          if (!rank_ok(a.peer))
            emit(DiagKind::malformed, ref,
                 "recv sources out-of-range rank " + std::to_string(a.peer));
          break;
        case Op::wait_send:
          if (send_events.find({ref.rank, ref.rep, a.event}) ==
              send_events.end())
            emit(DiagKind::malformed, ref,
                 "wait on send event " + std::to_string(a.event) +
                     " with no prior send in this rep");
          break;
        case Op::put:
        case Op::get:
          if (!rank_ok(a.peer))
            emit(DiagKind::malformed, ref,
                 "RMA op targets out-of-range rank " +
                     std::to_string(a.peer));
          [[fallthrough]];
        case Op::fence:
        case Op::pscw_post:
        case Op::pscw_wait:
          if (!win_ok(a.win))
            emit(DiagKind::malformed, ref,
                 "window id " + std::to_string(a.win) +
                     " out of range (plan has " +
                     std::to_string(plan.window_count) + ")");
          break;
        case Op::pscw_start:
        case Op::pscw_complete:
          if (!win_ok(a.win))
            emit(DiagKind::malformed, ref,
                 "window id " + std::to_string(a.win) + " out of range");
          for (const Rank g : a.group)
            if (!rank_ok(g))
              emit(DiagKind::malformed, ref,
                   "PSCW group names out-of-range rank " +
                       std::to_string(g));
          break;
        default:
          break;
      }
    }
  }

  // --- match completeness + FIFO order (pass safety part 1) ---------------

  void check_matching() {
    // (src, dst, tag) -> flat ids in program order: exactly the
    // interpreter's per-key mailbox FIFO.
    std::map<std::tuple<int, int, int>, std::vector<std::size_t>> sends;
    std::map<std::tuple<int, int, int>, std::vector<std::size_t>> recvs;
    for (std::size_t f = 0; f < acts.size(); ++f) {
      const Action& a = *acts[f].a;
      if (a.op == Op::send && rank_ok(a.peer))
        sends[{acts[f].rank, a.peer, a.tag}].push_back(f);
      else if (a.op == Op::recv && rank_ok(a.peer))
        recvs[{a.peer, acts[f].rank, a.tag}].push_back(f);
    }
    // Walk the union of keys.
    auto keys = sends;
    for (const auto& [k, v] : recvs) keys.try_emplace(k);
    for (const auto& [key, _] : keys) {
      const auto& s = sends[key];
      const auto& r = recvs[key];
      const auto [src, dst, tag] = key;
      const std::size_t paired = std::min(s.size(), r.size());
      // FIFO prefix pairing — what replay's mailbox queues would do.
      for (std::size_t i = 0; i < paired; ++i) {
        match[s[i]] = r[i];
        match[r[i]] = s[i];
      }
      for (std::size_t i = paired; i < s.size(); ++i)
        emit(DiagKind::unmatched_send, acts[s[i]],
             describe(acts[s[i]]) + ": no recv on rank " +
                 std::to_string(dst) + " consumes this message");
      for (std::size_t i = paired; i < r.size(); ++i)
        emit(DiagKind::unmatched_recv, acts[r[i]],
             describe(acts[r[i]]) + ": no send from rank " +
                 std::to_string(src) + " satisfies this receive");
      if (s.size() != r.size()) continue;  // sizes are noise after that
      // Equal counts: distinguish a pure reorder (multiset of byte
      // sizes equal — a pass broke MPI's non-overtaking rule) from a
      // genuine payload disagreement.
      bool seq_equal = true;
      for (std::size_t i = 0; i < paired; ++i)
        if (acts[s[i]].a->bytes != acts[r[i]].a->bytes) {
          seq_equal = false;
          break;
        }
      if (seq_equal) continue;
      std::vector<std::size_t> sb, rb;
      for (const std::size_t f : s) sb.push_back(acts[f].a->bytes);
      for (const std::size_t f : r) rb.push_back(acts[f].a->bytes);
      std::sort(sb.begin(), sb.end());
      std::sort(rb.begin(), rb.end());
      const bool reorder = sb == rb;
      for (std::size_t i = 0; i < paired; ++i) {
        if (acts[s[i]].a->bytes == acts[r[i]].a->bytes) continue;
        std::ostringstream os;
        os << describe(acts[r[i]]) << ": FIFO-paired with send #" << i
           << " to (" << dst << ", tag " << tag << ") of "
           << acts[s[i]].a->bytes << " bytes";
        if (reorder)
          os << "; byte multisets agree, so a same-(peer,tag) pair was "
                "delivered out of order";
        emit(reorder ? DiagKind::fifo_violation : DiagKind::size_mismatch,
             acts[r[i]], os.str());
        break;  // one diagnostic per key: the first inversion
      }
    }
  }

  // --- pass safety part 2: eager arms honor the model's limit ------------

  void check_eager() {
    if (!plan.model.has_value()) return;
    const std::size_t limit = plan.model->eager_limit();
    for (const Ref& ref : acts) {
      const Action& a = *ref.a;
      if (a.op != Op::send || !is_eager_arm(a.arm) || a.bytes <= limit)
        continue;
      emit(DiagKind::eager_overflow, ref,
           describe(ref) + ": eager-armed send exceeds the model's eager "
                           "limit (" +
               std::to_string(limit) +
               " bytes); an aggregation pass merged past the threshold");
    }
  }

  // --- RMA window safety ---------------------------------------------------

  void check_rma() {
    struct PutSpan {
      std::size_t lo = 0, hi = 0;  ///< [lo, hi) target bytes
      std::size_t flat = 0;
    };
    // (win, target, fence epoch, pscw epoch) -> put spans.  Epoch
    // ordinals are per-origin counters; fences are collective and PSCW
    // rounds pair one-to-one, so equal ordinals mean "same epoch".
    std::map<std::tuple<int, int, std::size_t, std::size_t>,
             std::vector<PutSpan>>
        puts;
    for (int r = 0; r < plan.nranks; ++r) {
      std::vector<std::size_t> fence_cnt(plan.window_count, 0);
      std::vector<std::size_t> start_cnt(plan.window_count, 0);
      for (const std::size_t f : by_rank[static_cast<std::size_t>(r)]) {
        const Ref& ref = acts[f];
        const Action& a = *ref.a;
        if (!win_ok(a.win)) continue;  // malformed already reported
        const auto w = static_cast<std::size_t>(a.win);
        if (a.op == Op::fence) {
          ++fence_cnt[w];
        } else if (a.op == Op::pscw_start) {
          ++start_cnt[w];
        } else if (a.op == Op::put || a.op == Op::get) {
          if (!rank_ok(a.peer)) continue;
          // Bounds: offset + bytes within the target's exposed extent.
          if (w < plan.window_sizes.size() &&
              static_cast<std::size_t>(a.peer) <
                  plan.window_sizes[w].size()) {
            const std::size_t extent =
                plan.window_sizes[w][static_cast<std::size_t>(a.peer)];
            if (a.offset + a.bytes > extent) {
              std::ostringstream os;
              os << describe(ref) << ": offset " << a.offset << " + "
                 << a.bytes << " bytes overruns the " << extent
                 << "-byte window exposed by rank " << a.peer;
              emit(DiagKind::rma_out_of_bounds, ref, os.str());
            }
          }
          // Overlap: puts only; accumulate (event == 1) may legally
          // land on the same location within an epoch.
          if (a.op == Op::put && a.event == 0 && a.bytes > 0)
            puts[{a.win, a.peer, fence_cnt[w], start_cnt[w]}].push_back(
                {a.offset, a.offset + a.bytes, f});
        }
      }
    }
    for (auto& [key, spans] : puts) {
      if (spans.size() < 2) continue;
      std::sort(spans.begin(), spans.end(),
                [](const PutSpan& x, const PutSpan& y) {
                  return std::tie(x.lo, x.hi) < std::tie(y.lo, y.hi);
                });
      for (std::size_t i = 1; i < spans.size(); ++i) {
        if (spans[i].lo >= spans[i - 1].hi) continue;
        const Ref& cur = acts[spans[i].flat];
        const Ref& prev = acts[spans[i - 1].flat];
        std::ostringstream os;
        os << describe(cur) << ": bytes [" << spans[i].lo << ", "
           << spans[i].hi << ") overlap a put from rank " << prev.rank
           << " covering [" << spans[i - 1].lo << ", " << spans[i - 1].hi
           << ") in the same epoch";
        emit(DiagKind::rma_overlap, cur, os.str());
        break;  // one per (win, target, epoch)
      }
    }
  }

  // --- deadlock freedom ----------------------------------------------------

  void check_deadlock() {
    // Two graph nodes per blocking-relevant action: begin (the action
    // starts executing — its envelope / arrival / barrier count is
    // deposited) and end (it completes; the rank proceeds).
    std::vector<std::size_t> node_of(acts.size(), npos);
    std::vector<std::size_t> graph_acts;  ///< flat ids with nodes
    for (std::size_t f = 0; f < acts.size(); ++f) {
      switch (acts[f].a->op) {
        case Op::send:
        case Op::wait_send:
        case Op::recv:
        case Op::barrier:
        case Op::fence:
        case Op::pscw_post:
        case Op::pscw_start:
        case Op::pscw_complete:
        case Op::pscw_wait:
          node_of[f] = graph_acts.size();
          graph_acts.push_back(f);
          break;
        default:
          break;  // advance / put / get / marks never block
      }
    }
    const std::size_t n_act_nodes = 2 * graph_acts.size();
    std::vector<std::vector<std::size_t>> adj(n_act_nodes);
    const auto B = [&](std::size_t f) { return 2 * node_of[f]; };
    const auto E = [&](std::size_t f) { return 2 * node_of[f] + 1; };
    const auto add = [&](std::size_t from, std::size_t to) {
      adj[from].push_back(to);
    };
    const auto gen_node = [&]() {
      adj.emplace_back();
      return adj.size() - 1;
    };

    // Intra-action and program order.
    for (const std::size_t f : graph_acts) add(B(f), E(f));
    for (const auto& order : by_rank) {
      std::size_t prev = npos;
      for (const std::size_t f : order) {
        if (node_of[f] == npos) continue;
        if (prev != npos) add(E(prev), B(f));
        prev = f;
      }
    }

    // Point-to-point: a recv completes only once the send posted; a
    // rendezvous send (or its wait) completes only once the matching
    // recv resolved the handshake.
    std::map<std::tuple<int, int, std::uint32_t>, std::size_t> waits;
    for (const std::size_t f : graph_acts)
      if (acts[f].a->op == Op::wait_send)
        waits[{acts[f].rank, acts[f].rep, acts[f].a->event}] = f;
    for (const std::size_t f : graph_acts) {
      const Action& a = *acts[f].a;
      if (a.op != Op::send || match[f] == npos) continue;
      const std::size_t rv = match[f];
      add(B(f), E(rv));
      if (a.arm == SendArm::rdv_blocking) {
        add(E(rv), E(f));
      } else if (a.arm == SendArm::rdv_posted) {
        const auto it = waits.find({acts[f].rank, acts[f].rep, a.event});
        if (it != waits.end()) add(E(rv), E(it->second));
      }
    }

    // Under emergent NIC contention each sender's rendezvous handshakes
    // resolve in strict ticket (= post) order: chain the resolving
    // recvs (replay.cpp's `led.resolved() != ev->ticket` spin).
    if (plan.contention) {
      for (const auto& order : by_rank) {
        std::size_t prev_recv = npos;
        for (const std::size_t f : order) {
          const Action& a = *acts[f].a;
          if (a.op != Op::send || !is_rdv(a.arm)) continue;
          if (match[f] == npos) continue;
          if (prev_recv != npos) add(E(prev_recv), E(match[f]));
          prev_recv = match[f];
        }
      }
    }

    // Barriers: generation g = each rank's g-th barrier (the global
    // counter never resets across reps).  One virtual node per
    // generation: all begins feed it, it feeds all ends.
    {
      std::vector<std::vector<std::size_t>> gens;
      std::vector<std::size_t> cnt(static_cast<std::size_t>(plan.nranks),
                                   0);
      for (const auto& order : by_rank)
        for (const std::size_t f : order)
          if (acts[f].a->op == Op::barrier) {
            const auto g = cnt[static_cast<std::size_t>(acts[f].rank)]++;
            if (g >= gens.size()) gens.resize(g + 1);
            gens[g].push_back(f);
          }
      link_generations(gens, "barrier", adj, B, E, gen_node);
    }

    // Fences: same shape, one generation sequence per window.
    for (std::size_t w = 0; w < plan.window_count; ++w) {
      std::vector<std::vector<std::size_t>> gens;
      std::vector<std::size_t> cnt(static_cast<std::size_t>(plan.nranks),
                                   0);
      for (const auto& order : by_rank)
        for (const std::size_t f : order)
          if (acts[f].a->op == Op::fence &&
              acts[f].a->win == static_cast<int>(w)) {
            const auto g = cnt[static_cast<std::size_t>(acts[f].rank)]++;
            if (g >= gens.size()) gens.resize(g + 1);
            gens[g].push_back(f);
          }
      link_generations(gens, "fence", adj, B, E, gen_node);
    }

    // PSCW: an origin's n-th start involving target t waits for t's
    // n-th post on that window; a target's n-th wait collects each
    // origin's n-th complete.  Ordinal pairing mirrors the replica's
    // post_seq/consumed bookkeeping for the captured one-epoch-per-
    // round patterns.
    {
      // (target, win) -> post flat ids in order.
      std::map<std::tuple<int, int>, std::vector<std::size_t>> posts;
      // (origin, target, win) -> complete flat ids in order.
      std::map<std::tuple<int, int, int>, std::vector<std::size_t>> comps;
      for (const auto& order : by_rank)
        for (const std::size_t f : order) {
          const Action& a = *acts[f].a;
          if (a.op == Op::pscw_post && win_ok(a.win))
            posts[{acts[f].rank, a.win}].push_back(f);
          else if (a.op == Op::pscw_complete && win_ok(a.win))
            for (const Rank t : a.group)
              if (rank_ok(t)) comps[{acts[f].rank, t, a.win}].push_back(f);
        }
      for (int r = 0; r < plan.nranks; ++r) {
        // ordinal of this rank's starts per (target, win), waits per win
        std::map<std::tuple<int, int>, std::size_t> start_ord;
        std::map<int, std::size_t> wait_ord;
        for (const std::size_t f : by_rank[static_cast<std::size_t>(r)]) {
          const Action& a = *acts[f].a;
          if (a.op == Op::pscw_start && win_ok(a.win)) {
            for (const Rank t : a.group) {
              if (!rank_ok(t)) continue;
              const std::size_t n = start_ord[{t, a.win}]++;
              const auto& plist = posts[{t, a.win}];
              if (n < plist.size()) {
                add(E(plist[n]), E(f));
              } else {
                emit(DiagKind::collective_arity, acts[f],
                     describe(acts[f]) + ": waits for post #" +
                         std::to_string(n + 1) + " by rank " +
                         std::to_string(t) + " which never happens");
              }
            }
          } else if (a.op == Op::pscw_wait && win_ok(a.win)) {
            const std::size_t n = wait_ord[a.win]++;
            std::size_t feeders = 0;
            for (auto& [key, clist] : comps) {
              if (std::get<1>(key) != r || std::get<2>(key) != a.win)
                continue;
              if (n < clist.size()) {
                add(E(clist[n]), E(f));
                ++feeders;
              }
            }
            if (feeders < a.event)
              emit(DiagKind::collective_arity, acts[f],
                   describe(acts[f]) + ": expects " +
                       std::to_string(a.event) +
                       " completes but only " + std::to_string(feeders) +
                       " origins ever complete round " +
                       std::to_string(n + 1));
          }
        }
      }
    }

    // Kahn's toposort.  All nodes drain <=> a valid execution order
    // exists; a remainder contains at least one cycle — walk it out.
    std::vector<std::size_t> indeg(adj.size(), 0);
    for (const auto& out : adj)
      for (const std::size_t v : out) ++indeg[v];
    std::vector<std::size_t> queue;
    for (std::size_t v = 0; v < adj.size(); ++v)
      if (indeg[v] == 0) queue.push_back(v);
    std::size_t drained = 0;
    while (!queue.empty()) {
      const std::size_t v = queue.back();
      queue.pop_back();
      ++drained;
      for (const std::size_t w : adj[v])
        if (--indeg[w] == 0) queue.push_back(w);
    }
    if (drained == adj.size()) return;

    // Find a concrete cycle among the undrained nodes.  Every undrained
    // node has at least one undrained *predecessor* (otherwise its
    // in-degree would have reached zero), so walking predecessors must
    // revisit a node; the revisited suffix is a cycle.
    std::vector<std::vector<std::size_t>> radj(adj.size());
    for (std::size_t u = 0; u < adj.size(); ++u) {
      if (indeg[u] == 0) continue;
      for (const std::size_t w : adj[u])
        if (indeg[w] != 0) radj[w].push_back(u);
    }
    std::size_t start = 0;
    while (indeg[start] == 0) ++start;
    std::vector<std::size_t> path;
    std::vector<std::size_t> pos(adj.size(), npos);
    std::size_t v = start;
    while (pos[v] == npos) {
      pos[v] = path.size();
      path.push_back(v);
      v = radj[v].front();
    }
    // path[pos[v]..] is the cycle in reverse wait-for order.
    std::vector<std::size_t> cycle(path.begin() +
                                       static_cast<std::ptrdiff_t>(pos[v]),
                                   path.end());
    std::reverse(cycle.begin(), cycle.end());
    std::ostringstream os;
    os << "cyclic wait-for dependency:";
    const Ref* anchor = nullptr;
    std::size_t named = 0;
    for (std::size_t i = 0; i < cycle.size() && named < 6; ++i) {
      const std::size_t node = cycle[i];
      if (node >= n_act_nodes) continue;  // virtual generation node
      const Ref& ref = acts[graph_acts[node / 2]];
      if (anchor == nullptr) anchor = &ref;
      os << " [rank " << ref.rank << " rep " << ref.rep << " #" << ref.idx
         << " " << describe(ref) << "]";
      ++named;
    }
    if (anchor == nullptr) anchor = &acts[graph_acts[0]];
    emit(DiagKind::deadlock_cycle, *anchor, os.str());
  }

  /// Wire one collective's generations: every participating rank's
  /// begin feeds the generation node, which feeds every end; a
  /// generation that not every rank reaches can never release.
  template <typename BFn, typename EFn, typename GenFn>
  void link_generations(const std::vector<std::vector<std::size_t>>& gens,
                        const char* what,
                        std::vector<std::vector<std::size_t>>& adj, BFn B,
                        EFn E, GenFn gen_node) {
    for (std::size_t g = 0; g < gens.size(); ++g) {
      if (static_cast<int>(gens[g].size()) != plan.nranks) {
        emit(DiagKind::collective_arity, acts[gens[g].front()],
             std::string(what) + " generation " + std::to_string(g) +
                 " has " + std::to_string(gens[g].size()) + " of " +
                 std::to_string(plan.nranks) + " arrivals");
        continue;
      }
      const std::size_t node = gen_node();
      for (const std::size_t f : gens[g]) {
        adj[B(f)].push_back(node);
        adj[node].push_back(E(f));
      }
    }
  }

  VerifyReport run() {
    flatten();
    check_malformed();
    check_matching();
    check_eager();
    check_rma();
    check_deadlock();
    return std::move(report);
  }
};

}  // namespace

const char* diag_kind_name(DiagKind kind) noexcept {
  switch (kind) {
    case DiagKind::unmatched_send: return "unmatched_send";
    case DiagKind::unmatched_recv: return "unmatched_recv";
    case DiagKind::size_mismatch: return "size_mismatch";
    case DiagKind::deadlock_cycle: return "deadlock_cycle";
    case DiagKind::collective_arity: return "collective_arity";
    case DiagKind::malformed: return "malformed";
    case DiagKind::fifo_violation: return "fifo_violation";
    case DiagKind::eager_overflow: return "eager_overflow";
    case DiagKind::rma_out_of_bounds: return "rma_out_of_bounds";
    case DiagKind::rma_overlap: return "rma_overlap";
  }
  return "?";
}

std::string PlanDiagnostic::to_string() const {
  std::ostringstream os;
  os << "rank " << rank << " rep " << rep << " action " << action << ": "
     << diag_kind_name(kind) << ": " << message;
  return os.str();
}

VerifyReport verify_plan(const CommPlan& plan) {
  Verifier v(plan);
  return v.run();
}

}  // namespace ncsend::plan
