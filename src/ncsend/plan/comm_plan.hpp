#pragma once
/// \file comm_plan.hpp
/// \brief Compiled communication plans: build-once / replay-many charge
/// programs for one (pattern, scheme, layout) experiment cell.
///
/// `compile_cell` runs a short *capture* universe (2–3 reps) with a
/// `minimpi::plan::Recorder` attached: every in-rep communication op
/// appends one typed action to the executing rank's program
/// (plan_record.hpp).  The result is a `CommPlan` — a flat per-rank
/// action array plus the virtual-clock state at the first rep boundary —
/// which `replay()` re-executes with a single-threaded interpreter that
/// reproduces the `Comm` clock arithmetic exactly: same `CostModel`
/// compositions, same NIC-ledger FIFO queueing, same barrier/fence/PSCW
/// clock fusion, same `wtime()` quantization.  With all optimization
/// passes off the replayed samples are bit-identical to direct execution
/// (DESIGN.md §2.9 gives the substitution argument; a compile-time
/// self-check *proves* it per plan by interpreting the captured reps and
/// comparing every timer mark).
///
/// Validity is conservative: anything the interpreter cannot reproduce
/// (wildcards, probes, tests, mid-rep collectives, a non-converging
/// steady state) yields `valid == false` and the experiment layer falls
/// back to direct execution — a plan can be missing, never wrong.
///
/// Optimization passes rewrite the compiled form *visibly*: each
/// inserted action is flagged and its cost accounted in `pass_charges`,
/// and passes deliberately change modeled time — goldens only hold with
/// passes off.

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "minimpi/net/cost_model.hpp"
#include "minimpi/runtime/plan_record.hpp"
#include "minimpi/runtime/world.hpp"
#include "ncsend/harness.hpp"
#include "ncsend/patterns/pattern.hpp"

namespace ncsend::plan {

namespace mplan = minimpi::plan;

/// Toggleable rewrites of the compiled form.  Both default off: the
/// passes-off plan is the bit-exact substitute for direct execution.
struct PassOptions {
  /// Merge consecutive small (eager) posted sends to the same
  /// (peer, tag) into one wire atom per peer, charging the coalescing
  /// copy as a visible plan-level `internal_copy` action.
  bool aggregate_small = false;
  /// Stable-sort runs of consecutive posted sends by ascending size so
  /// short injections drain first on the FIFO NIC ledger, charging the
  /// reorder bookkeeping as a visible `call_overhead` action.
  bool sort_injections = false;

  [[nodiscard]] bool any() const noexcept {
    return aggregate_small || sort_injections;
  }
};

/// One pass-inserted plan-level charge (accounting for dump/tests).
struct PassCharge {
  minimpi::ChargeAtom atom = minimpi::ChargeAtom::internal_copy;
  double seconds = 0.0;
  std::size_t merged = 0;  ///< actions merged/reordered by this charge
};

/// A compiled experiment cell: per-rank action programs for the cold
/// rep and the steady-state rep, plus the initial virtual-clock state.
struct CommPlan {
  int nranks = 0;
  std::optional<minimpi::CostModel> model;  ///< copied capture model
  bool contention = false;                  ///< NIC-occupancy ledgers on
  double wtime_resolution = 1e-6;
  int captured_reps = 0;      ///< programs per rank (>=2; last = steady)
  std::size_t window_count = 0;
  /// Per-window, per-rank exposed byte extents captured at window
  /// creation (verifier input for RMA bound checks).
  std::vector<std::vector<std::size_t>> window_sizes;

  /// programs[rank][k]: rep-k program; k >= captured_reps replays the
  /// last (steady-state) program with clocks carried forward.
  std::vector<std::vector<mplan::RankProgram>> programs;
  /// Per-rank clock/ledger state at the first `plan_begin_rep`.
  std::vector<mplan::Recorder::Snapshot> start;
  /// Per-rank clock at each captured `plan_end_rep` (self-check oracle).
  std::vector<std::vector<double>> end_clocks;

  RunResult base;  ///< capture-run result (scheme/layout/verify verdict)
  bool valid = false;
  std::string invalid_reason;

  PassOptions passes;  ///< passes applied to this plan
  std::vector<PassCharge> pass_charges;
  /// True when the interpreter must reproduce the captured timer marks
  /// bit-exactly over the captured reps (any applied pass clears it).
  bool verify_marks = false;

  /// Interpret `reps` repetitions and return the fused per-rep samples
  /// (max over contributing ranks), exactly as the harness would have
  /// collected them.  Requires `valid`.
  [[nodiscard]] std::vector<double> replay_samples(int reps) const;

  /// Full replayed result: `base` with the timing replaced by
  /// `summarize(replay_samples(reps))`.
  [[nodiscard]] RunResult replay(int reps) const;

  /// Human-readable action-array listing (examples/protocol_trace).
  void dump(std::ostream& os) const;
};

/// \brief Compile one experiment cell: capture `min(cfg.reps, flush ?
/// 2 : 3)` reps through the recorder, validate (uncompilable ops,
/// steady-state convergence, the static verifier of verify.hpp, then
/// the interpreter self-check against the captured timer marks), then
/// apply the requested passes — and statically re-verify the rewritten
/// program, since pass safety is proved on the output, never trusted
/// from the pass.
///
/// On any validation failure the returned plan has `valid == false`
/// and `invalid_reason` set; `base` still holds the capture-run result.
[[nodiscard]] CommPlan compile_cell(const minimpi::UniverseOptions& opts,
                                    const CommPattern& pattern,
                                    std::string_view scheme_name,
                                    const Layout& layout,
                                    const HarnessConfig& cfg,
                                    const PassOptions& passes = {});

// --- optimization passes (exposed for unit tests) -------------------------

/// Aggregation pass over one rep's programs (all ranks: sender and
/// receiver rewritten together).  Returns true if anything was merged.
bool aggregate_small_rep(std::vector<mplan::RankProgram>& rep_programs,
                         const minimpi::CostModel& model,
                         std::vector<PassCharge>& charges);

/// Injection-order pass over one rank's program.  Returns true if any
/// run was reordered.
bool sort_injections_program(mplan::RankProgram& program,
                             const minimpi::CostModel& model,
                             std::vector<PassCharge>& charges);

namespace detail {
/// The single-threaded interpreter behind `replay_samples`: executes
/// `reps` repetitions of `plan` and returns the fused samples.  The
/// first `verify_reps` reps additionally compare every captured timer
/// mark and rep-end clock bit-exactly, throwing on divergence.
std::vector<double> interpret(const CommPlan& plan, int reps,
                              int verify_reps);
}  // namespace detail

}  // namespace ncsend::plan
