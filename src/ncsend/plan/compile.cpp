/// \file compile.cpp
/// \brief Plan compilation: one short capture run, validation, and the
/// bit-exact replay self-check.
///
/// Capture cost is deliberately tiny: with per-rep cache flushing every
/// rep charges identically, so two reps (one cold, one steady) pin the
/// whole program; without flushing the warm-up transient needs a third
/// rep, and the last two captured programs must agree structurally —
/// otherwise there is no steady state to extrapolate and the plan is
/// rejected.
///
/// The self-check is the load-bearing safety device: before a plan is
/// declared valid, the interpreter re-executes the captured reps from
/// the captured initial state and every `wtime()` timer mark plus every
/// rep-end clock must equal the capture bit-for-bit.  Divergence — any
/// arithmetic the interpreter does not reproduce exactly — invalidates
/// the plan, and the experiment layer falls back to direct execution,
/// so a wrong plan can never reach a result table.

#include <cmath>
#include <ostream>
#include <sstream>

#include "ncsend/plan/comm_plan.hpp"
#include "ncsend/plan/verify.hpp"

namespace ncsend::plan {

namespace {

using mplan::Action;
using mplan::Op;

/// Structural equality of two captured programs: same ops in the same
/// order with the same frozen operands.  (Timer-mark absolutes differ
/// across reps by construction and are excluded.)
[[nodiscard]] bool same_shape(const mplan::RankProgram& a,
                              const mplan::RankProgram& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Action& x = a[i];
    const Action& y = b[i];
    if (x.op != y.op || x.arm != y.arm || x.peer != y.peer ||
        x.tag != y.tag || x.bytes != y.bytes || x.event != y.event ||
        x.win != y.win || x.offset != y.offset || x.group != y.group)
      return false;
    if (x.stats.block_count != y.stats.block_count ||
        x.stats.total_bytes != y.stats.total_bytes ||
        x.stats.min_block != y.stats.min_block ||
        x.stats.max_block != y.stats.max_block)
      return false;
    const bool is_mark = x.op == Op::sample_begin || x.op == Op::sample_end;
    if (!is_mark && x.seconds != y.seconds) return false;
  }
  return true;
}

}  // namespace

CommPlan compile_cell(const minimpi::UniverseOptions& opts,
                      const CommPattern& pattern,
                      std::string_view scheme_name, const Layout& layout,
                      const HarnessConfig& cfg, const PassOptions& passes) {
  CommPlan plan;
  plan.nranks = pattern.nranks();
  plan.contention = opts.nic_occupancy_contention;
  plan.wtime_resolution = opts.wtime_resolution;
  // Patterns patch the model's static-contention input
  // (run_pattern_experiment); the replica must match.
  plan.model.emplace(*opts.profile, opts.eager_limit_override,
                     pattern.concurrent_senders());

  if (cfg.reps < 2) {
    plan.invalid_reason = "fewer than 2 reps: no steady state to capture";
    return plan;
  }
  if (!cfg.flush && cfg.reps < 3) {
    // Without per-rep flushing the second rep is still inside the
    // cache warm-up transient: there is no verified steady program to
    // extrapolate from.
    plan.invalid_reason = "unflushed capture needs at least 3 reps";
    return plan;
  }
  // Flushed reps all charge identically (every rep is cold), so cold +
  // steady = 2.  Unflushed runs need a third rep to get past the
  // warm-up transient.
  const int capture_reps = std::min(cfg.reps, cfg.flush ? 2 : 3);
  plan.captured_reps = capture_reps;

  mplan::Recorder rec(plan.nranks);
  minimpi::UniverseOptions copts = opts;
  copts.plan_recorder = &rec;
  HarnessConfig ccfg = cfg;
  ccfg.reps = capture_reps;
  plan.base = run_pattern_experiment(copts, pattern, scheme_name, layout,
                                     ccfg);

  if (rec.uncompilable()) {
    plan.invalid_reason = rec.reason();
    return plan;
  }

  // --- harvest -------------------------------------------------------------
  plan.window_count = rec.window_count();
  plan.window_sizes = rec.window_sizes();
  plan.programs.resize(static_cast<std::size_t>(plan.nranks));
  plan.start.resize(static_cast<std::size_t>(plan.nranks));
  plan.end_clocks.resize(static_cast<std::size_t>(plan.nranks));
  for (int r = 0; r < plan.nranks; ++r) {
    const auto& reps = rec.reps(r);
    const auto& begins = rec.begin_snapshots(r);
    const auto& ends = rec.end_snapshots(r);
    if (static_cast<int>(reps.size()) != capture_reps ||
        begins.size() != reps.size() || ends.size() != reps.size()) {
      plan.invalid_reason = "capture produced an incomplete program";
      return plan;
    }
    plan.programs[static_cast<std::size_t>(r)] = reps;
    plan.start[static_cast<std::size_t>(r)] = begins.front();
    for (const auto& s : ends)
      plan.end_clocks[static_cast<std::size_t>(r)].push_back(s.clock);
  }

  // --- steady-state convergence -------------------------------------------
  if (capture_reps >= 3) {
    for (int r = 0; r < plan.nranks; ++r) {
      const auto& reps = plan.programs[static_cast<std::size_t>(r)];
      if (!same_shape(reps[reps.size() - 2], reps.back())) {
        plan.invalid_reason =
            "no steady state: last two captured reps differ structurally";
        return plan;
      }
    }
  }

  // --- static verification ------------------------------------------------
  // Mandatory stage *before* the interpreter self-check: a plan that
  // fails the structural proofs (match completeness, deadlock freedom,
  // RMA bounds) is rejected without interpreting a single clock.
  {
    const VerifyReport vr = verify_plan(plan);
    if (!vr.ok()) {
      plan.invalid_reason =
          "static verify: " + vr.diagnostics.front().to_string();
      return plan;
    }
  }

  // --- bit-exact replay self-check ----------------------------------------
  plan.valid = true;
  plan.verify_marks = true;
  try {
    (void)detail::interpret(plan, capture_reps, capture_reps);
  } catch (const std::exception& e) {
    plan.valid = false;
    plan.verify_marks = false;
    plan.invalid_reason = e.what();
    return plan;
  }

  // --- optimization passes (after the self-check: they deliberately
  // change modeled time, so the mark oracle no longer applies) -------------
  if (passes.any()) {
    plan.passes = passes;
    bool changed = false;
    if (passes.aggregate_small) {
      for (int k = 0; k < capture_reps; ++k) {
        std::vector<mplan::RankProgram> slice;
        slice.reserve(static_cast<std::size_t>(plan.nranks));
        for (int r = 0; r < plan.nranks; ++r)
          slice.push_back(
              plan.programs[static_cast<std::size_t>(r)]
                           [static_cast<std::size_t>(k)]);
        if (aggregate_small_rep(slice, *plan.model, plan.pass_charges))
          changed = true;
        for (int r = 0; r < plan.nranks; ++r)
          plan.programs[static_cast<std::size_t>(r)]
                       [static_cast<std::size_t>(k)] =
              std::move(slice[static_cast<std::size_t>(r)]);
      }
    }
    if (passes.sort_injections) {
      for (int r = 0; r < plan.nranks; ++r)
        for (auto& prog : plan.programs[static_cast<std::size_t>(r)])
          if (sort_injections_program(prog, *plan.model,
                                      plan.pass_charges))
            changed = true;
    }
    if (changed) plan.verify_marks = false;
    // Pass safety is proved on the rewritten program, never trusted
    // from the pass: re-run the verifier so a FIFO inversion or an
    // over-merged eager send invalidates the plan.
    if (changed) {
      const VerifyReport vr = verify_plan(plan);
      if (!vr.ok()) {
        plan.valid = false;
        plan.invalid_reason =
            "static verify (post-pass): " + vr.diagnostics.front().to_string();
        return plan;
      }
    }
  }

  return plan;
}

void CommPlan::dump(std::ostream& os) const {
  os << "CommPlan: " << base.scheme << " / " << base.layout << " ("
     << nranks << " ranks, " << captured_reps << " captured reps, "
     << window_count << " windows"
     << (contention ? ", NIC contention" : "") << ")\n";
  if (!valid) {
    os << "  INVALID: " << invalid_reason << "\n";
    return;
  }
  if (passes.any()) {
    os << "  passes:" << (passes.aggregate_small ? " aggregate_small" : "")
       << (passes.sort_injections ? " sort_injections" : "") << "\n";
    for (const PassCharge& c : pass_charges)
      os << "    +" << minimpi::to_string(c.atom) << " " << c.seconds
         << "s (" << c.merged << " actions)\n";
  }
  for (int r = 0; r < nranks; ++r) {
    const auto& reps = programs[static_cast<std::size_t>(r)];
    os << "  rank " << r << " (clock0 = "
       << start[static_cast<std::size_t>(r)].clock << "s):\n";
    for (std::size_t k = 0; k < reps.size(); ++k) {
      os << "    rep " << k
         << (k + 1 == reps.size() ? " (steady)" : k == 0 ? " (cold)" : "")
         << ": " << reps[k].size() << " actions\n";
      for (std::size_t i = 0; i < reps[k].size(); ++i) {
        const Action& a = reps[k][i];
        os << "      [" << i << "] " << mplan::op_name(a.op);
        if (a.op == Op::send) os << " " << mplan::arm_name(a.arm);
        if (a.peer >= 0) os << " peer=" << a.peer;
        if (a.op == Op::send || a.op == Op::recv) os << " tag=" << a.tag;
        if (a.bytes > 0) os << " bytes=" << a.bytes;
        if (a.stats.block_count > 1)
          os << " blocks=" << a.stats.block_count;
        if (a.op == Op::advance)
          os << " " << minimpi::to_string(a.atom) << " +" << a.seconds
             << "s";
        if (a.op == Op::send || a.op == Op::wait_send)
          os << " ev=" << a.event;
        if (a.win >= 0) os << " win=" << a.win;
        if (!a.group.empty()) {
          os << " group=[";
          for (std::size_t gi = 0; gi < a.group.size(); ++gi)
            os << (gi ? "," : "") << a.group[gi];
          os << "]";
        }
        if (a.op == Op::pscw_wait) os << " expected=" << a.event;
        if (a.op == Op::sample_end) os << " contributes=" << a.event;
        if (a.inserted) os << " (pass-inserted)";
        os << "\n";
      }
    }
  }
}

}  // namespace ncsend::plan
