/// \file replay.cpp
/// \brief Single-threaded interpreter for compiled communication plans.
///
/// Re-executes the per-rank action programs with the *exact* clock
/// arithmetic of `Comm` (comm.cpp): the same `CostModel` compositions
/// against the same initial state must produce bit-identical clocks,
/// which the compile-time self-check verifies against the captured
/// timer marks.  Cross-rank constructs (mailbox FIFOs, NIC-ledger
/// tickets, barrier/fence clock fusion, PSCW epochs) are replayed on
/// host-lock-free replicas driven by a cooperative round-robin
/// scheduler: each rank executes until it blocks, and a full sweep with
/// no progress is a structural deadlock (compile rejects such plans).
///
/// Ranks deliberately do NOT synchronize at rep boundaries — the
/// ping-pong harness has no per-rep barrier, so its two ranks drift
/// across reps exactly as the threaded runtime lets them.

#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "ncsend/plan/comm_plan.hpp"

namespace ncsend::plan {
namespace detail {

namespace {

using minimpi::BlockStats;
using minimpi::Charge;
using minimpi::ChargeAtom;
using minimpi::CostModel;
using minimpi::NicGate;
using minimpi::NicLedger;
using minimpi::Rank;
using mplan::Action;
using mplan::Op;
using mplan::SendArm;

[[nodiscard]] bool is_rdv(SendArm arm) noexcept {
  return arm == SendArm::rdv_blocking || arm == SendArm::rdv_posted;
}

/// The sender side of one replayed message, addressed by the receiver
/// through the per-(dst,src,tag) FIFO and by the sender's wait_send
/// through the per-rep event table.
struct SendEvent {
  SendArm arm = SendArm::eager_blocking;
  Rank src = -1;
  std::size_t bytes = 0;
  BlockStats stats;
  // staged arms: known at post time
  double sender_done = 0.0;
  double arrival = 0.0;
  // rendezvous arms: resolved by the matching receiver
  double sender_ready = 0.0;
  std::uint64_t ticket = 0;
  bool rdv_resolved = false;
  double rdv_done = 0.0;
};

struct BarrierGen {
  int arrived = 0;
  double maxv = -std::numeric_limits<double>::infinity();
  bool released = false;
  double fused = 0.0;
};

/// Replica of one `detail::WindowState` (world.hpp).
struct WindowReplica {
  double pending_max = 0.0;
  std::vector<BarrierGen> fence_gens;
  std::vector<int> post_seq;
  std::vector<double> post_time;
  std::vector<int> complete_count;
  std::vector<double> complete_max;
  std::vector<std::vector<int>> consumed;  ///< [origin][target]
  std::vector<double> access_pending;      ///< per rank (Window-local)

  explicit WindowReplica(int nranks)
      : post_seq(static_cast<std::size_t>(nranks), 0),
        post_time(static_cast<std::size_t>(nranks), 0.0),
        complete_count(static_cast<std::size_t>(nranks), 0),
        complete_max(static_cast<std::size_t>(nranks), 0.0),
        consumed(static_cast<std::size_t>(nranks),
                 std::vector<int>(static_cast<std::size_t>(nranks), 0)),
        access_pending(static_cast<std::size_t>(nranks), 0.0) {}
};

struct RankExec {
  double clock = 0.0;
  int rep = 0;          ///< global rep index currently executing
  std::size_t pc = 0;
  int stage = 0;        ///< two-phase progress of the action at pc
  bool done = false;
  std::vector<SendEvent*> events;  ///< current rep, indexed by event id
  double sample_t0 = 0.0;
  std::size_t barrier_idx = 0;               ///< global barrier counter
  std::vector<std::size_t> fence_idx;        ///< per window
};

struct Interp {
  const CommPlan& plan;
  const CostModel& model;
  int total_reps;
  int verify_reps;

  std::vector<RankExec> ranks;
  std::deque<SendEvent> arena;  ///< stable addresses
  std::map<std::tuple<Rank, Rank, int>, std::deque<SendEvent*>> queues;
  std::vector<std::unique_ptr<NicLedger>> staged;
  std::vector<std::unique_ptr<NicLedger>> rdv;
  std::vector<BarrierGen> barrier_gens;
  std::vector<WindowReplica> windows;
  std::vector<double> samples;  ///< fused, per global rep
  double coll0 = 0.0;           ///< collective_cost(0) replica

  Interp(const CommPlan& p, int reps, int verify)
      : plan(p), model(*p.model), total_reps(reps), verify_reps(verify) {
    const int n = plan.nranks;
    ranks.resize(static_cast<std::size_t>(n));
    staged.reserve(static_cast<std::size_t>(n));
    rdv.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      RankExec& re = ranks[static_cast<std::size_t>(r)];
      re.clock = plan.start[static_cast<std::size_t>(r)].clock;
      re.fence_idx.assign(plan.window_count, 0);
      staged.push_back(std::make_unique<NicLedger>(plan.contention));
      rdv.push_back(std::make_unique<NicLedger>(plan.contention));
      staged.back()->preload(
          plan.start[static_cast<std::size_t>(r)].staged_busy);
      rdv.back()->preload(plan.start[static_cast<std::size_t>(r)].rdv_busy);
    }
    windows.assign(plan.window_count, WindowReplica(n));
    samples.assign(static_cast<std::size_t>(reps), 0.0);
    const auto& prof = model.profile();
    const double rounds = std::ceil(std::log2(std::max(2, n)));
    coll0 = rounds *
            (prof.send_overhead_s + prof.net_latency_s + model.wire_time(0));
  }

  [[nodiscard]] double wtime(double clock) const {
    const double res = plan.wtime_resolution;
    if (res <= 0.0) return clock;
    return std::floor(clock / res) * res;
  }

  [[nodiscard]] const mplan::RankProgram& program(Rank r, int rep) const {
    const auto& reps = plan.programs[static_cast<std::size_t>(r)];
    const auto k = std::min<std::size_t>(static_cast<std::size_t>(rep),
                                         reps.size() - 1);
    return reps[k];
  }

  BarrierGen& gen_at(std::vector<BarrierGen>& gens, std::size_t idx) {
    if (idx >= gens.size()) gens.resize(idx + 1);
    return gens[idx];
  }

  void check_mark(Rank r, const Action& a, double computed) const {
    if (!plan.verify_marks) return;
    if (ranks[static_cast<std::size_t>(r)].rep >= verify_reps) return;
    if (computed != a.seconds)
      throw std::runtime_error(
          "replay self-check: timer mark diverged from capture");
  }

  /// Execute one action for rank `r`.  Returns false when the rank must
  /// block (no state beyond its recorded stage is touched).
  bool step(Rank r, const Action& a) {
    RankExec& re = ranks[static_cast<std::size_t>(r)];
    const auto& prof = model.profile();
    switch (a.op) {
      case Op::advance:
        re.clock += a.seconds;
        return true;

      case Op::send: {
        arena.emplace_back();
        SendEvent* ev = &arena.back();
        ev->arm = a.arm;
        ev->src = r;
        ev->bytes = a.bytes;
        ev->stats = a.stats;
        const auto sgate = [&] {
          NicLedger& led = *staged[static_cast<std::size_t>(r)];
          return NicGate{&led, led.ticket()};
        };
        switch (a.arm) {
          case SendArm::eager_blocking:
          case SendArm::eager_posted: {
            const auto t =
                model.eager_timing(re.clock, a.bytes, a.stats, sgate());
            ev->sender_done = t.sender_done;
            ev->arrival = t.arrival;
            break;
          }
          case SendArm::ready: {
            const auto t =
                model.rsend_timing(re.clock, a.bytes, a.stats, sgate());
            ev->sender_done = t.sender_done;
            ev->arrival = t.arrival;
            break;
          }
          case SendArm::buffered: {
            const auto t =
                model.bsend_timing(re.clock, a.bytes, a.stats, sgate());
            ev->sender_done = t.sender_done;
            ev->arrival = t.arrival;
            break;
          }
          case SendArm::rdv_blocking:
          case SendArm::rdv_posted:
            // Rendezvous sends take a slot in the *rendezvous* FIFO
            // class, never the staged one (world.hpp class split).
            ev->sender_ready = re.clock + prof.send_overhead_s;
            ev->ticket = rdv[static_cast<std::size_t>(r)]->ticket();
            break;
        }
        if (a.event >= re.events.size()) re.events.resize(a.event + 1);
        re.events[a.event] = ev;
        queues[{a.peer, r, a.tag}].push_back(ev);
        // Clock effect of the posting call.
        switch (a.arm) {
          case SendArm::eager_blocking:
          case SendArm::ready:
          case SendArm::buffered:
            re.clock = ev->sender_done;
            return true;
          case SendArm::eager_posted:
          case SendArm::rdv_posted:
            re.clock += prof.send_overhead_s;
            return true;
          case SendArm::rdv_blocking:
            // Blocks until the matching receiver resolves the
            // rendezvous; handled as stage 1 below.
            re.stage = 1;
            return false;
        }
        return true;
      }

      case Op::wait_send: {
        SendEvent* ev = a.event < re.events.size() ? re.events[a.event]
                                                   : nullptr;
        if (ev == nullptr)
          throw std::runtime_error("replay: wait on unknown send event");
        if (is_rdv(ev->arm)) {
          if (!ev->rdv_resolved) return false;
          re.clock = std::max(re.clock, ev->rdv_done);
        } else {
          re.clock = std::max(re.clock, ev->sender_done);
        }
        return true;
      }

      case Op::recv: {
        auto it = queues.find({r, a.peer, a.tag});
        if (it == queues.end() || it->second.empty()) return false;
        SendEvent* ev = it->second.front();
        double arrival;
        bool eager;
        // recv_ready == the receiver's clock at the match (the post, if
        // any, happened earlier on this same rank — see finish_recv).
        const double recv_ready = re.clock;
        if (is_rdv(ev->arm)) {
          NicLedger& led = *rdv[static_cast<std::size_t>(ev->src)];
          // Single interpreter thread: blocking inside inject() would
          // deadlock, so resolve strictly when this ticket is next.
          if (led.enabled() && led.resolved() != ev->ticket) return false;
          const NicGate g{&led, ev->ticket};
          const auto t = model.rendezvous_timing(ev->sender_ready,
                                                 recv_ready, ev->bytes,
                                                 ev->stats, g);
          ev->rdv_done = t.sender_done;
          ev->rdv_resolved = true;
          arrival = t.arrival;
          eager = false;
        } else {
          arrival = ev->arrival;
          eager = true;
        }
        it->second.pop_front();
        re.clock = model.recv_completion(recv_ready, arrival, ev->bytes,
                                         a.stats, eager);
        return true;
      }

      case Op::barrier: {
        BarrierGen& g = gen_at(barrier_gens, re.barrier_idx);
        if (re.stage == 0) {
          g.maxv = std::max(g.maxv, re.clock);
          if (++g.arrived == plan.nranks) {
            g.fused = g.maxv;
            g.released = true;
          }
          re.stage = 1;
        }
        if (!g.released) return false;
        re.clock = g.fused + coll0;
        ++re.barrier_idx;
        return true;
      }

      case Op::fence: {
        WindowReplica& w = windows[static_cast<std::size_t>(a.win)];
        BarrierGen& g = gen_at(
            w.fence_gens, re.fence_idx[static_cast<std::size_t>(a.win)]);
        if (re.stage == 0) {
          g.maxv = std::max(g.maxv, std::max(re.clock, w.pending_max));
          if (++g.arrived == plan.nranks) {
            g.fused = g.maxv;
            g.released = true;
            w.pending_max = 0.0;  // rank 0's reset between the barriers
          }
          re.stage = 1;
        }
        if (!g.released) return false;
        const Charge f{ChargeAtom::fence, model.fence_time(), 0};
        re.clock = minimpi::schedule_sequence(g.fused, {&f, 1},
                                              model.capabilities(), {})
                       .finish;
        w.access_pending[static_cast<std::size_t>(r)] = 0.0;
        ++re.fence_idx[static_cast<std::size_t>(a.win)];
        return true;
      }

      case Op::put: {
        WindowReplica& w = windows[static_cast<std::size_t>(a.win)];
        const NicGate g{staged[static_cast<std::size_t>(r)].get(),
                        staged[static_cast<std::size_t>(r)]->ticket()};
        const auto t = model.put_timing(re.clock, a.bytes, a.stats, g);
        re.clock = t.sender_done;
        w.pending_max = std::max(w.pending_max, t.arrival);
        auto& ap = w.access_pending[static_cast<std::size_t>(r)];
        ap = std::max(ap, t.arrival);
        return true;
      }

      case Op::get: {
        WindowReplica& w = windows[static_cast<std::size_t>(a.win)];
        // The response wire serializes on the target's NIC, untracked
        // by the per-rank ledgers: no gate (mirrors Window::get).
        const auto t = model.get_timing(re.clock, a.bytes, a.stats, {});
        re.clock = t.sender_done;
        w.pending_max = std::max(w.pending_max, t.arrival);
        auto& ap = w.access_pending[static_cast<std::size_t>(r)];
        ap = std::max(ap, t.arrival);
        return true;
      }

      case Op::pscw_post: {
        WindowReplica& w = windows[static_cast<std::size_t>(a.win)];
        re.clock += prof.send_overhead_s;
        const auto me = static_cast<std::size_t>(r);
        ++w.post_seq[me];
        w.post_time[me] = re.clock;
        w.complete_count[me] = 0;
        w.complete_max[me] = 0.0;
        return true;
      }

      case Op::pscw_start: {
        WindowReplica& w = windows[static_cast<std::size_t>(a.win)];
        const auto me = static_cast<std::size_t>(r);
        for (const Rank t : a.group) {
          const auto ti = static_cast<std::size_t>(t);
          if (w.post_seq[ti] <= w.consumed[me][ti]) return false;
        }
        for (const Rank t : a.group) {
          const auto ti = static_cast<std::size_t>(t);
          w.consumed[me][ti] = w.post_seq[ti];
          re.clock =
              std::max(re.clock, w.post_time[ti] + prof.net_latency_s);
        }
        w.access_pending[me] = 0.0;
        return true;
      }

      case Op::pscw_complete: {
        WindowReplica& w = windows[static_cast<std::size_t>(a.win)];
        const auto me = static_cast<std::size_t>(r);
        re.clock += prof.send_overhead_s;
        const double done = std::max(re.clock, w.access_pending[me]);
        for (const Rank t : a.group) {
          const auto ti = static_cast<std::size_t>(t);
          ++w.complete_count[ti];
          w.complete_max[ti] = std::max(w.complete_max[ti], done);
        }
        w.access_pending[me] = 0.0;
        return true;
      }

      case Op::pscw_wait: {
        WindowReplica& w = windows[static_cast<std::size_t>(a.win)];
        const auto me = static_cast<std::size_t>(r);
        if (w.complete_count[me] < static_cast<int>(a.event)) return false;
        re.clock =
            std::max(re.clock, w.complete_max[me]) + prof.recv_overhead_s;
        w.complete_count[me] = 0;
        return true;
      }

      case Op::sample_begin:
        re.sample_t0 = wtime(re.clock);
        check_mark(r, a, re.sample_t0);
        return true;

      case Op::sample_end: {
        const double now = wtime(re.clock);
        check_mark(r, a, now);
        const double dt = a.event != 0 ? now - re.sample_t0 : 0.0;
        auto& fused = samples[static_cast<std::size_t>(re.rep)];
        fused = std::max(fused, dt);
        return true;
      }
    }
    throw std::runtime_error("replay: unknown action");
  }

  /// Run rank `r` until it blocks or finishes all reps; true if any
  /// action executed.
  bool run_rank(Rank r) {
    RankExec& re = ranks[static_cast<std::size_t>(r)];
    bool progressed = false;
    while (!re.done) {
      const mplan::RankProgram& prog = program(r, re.rep);
      if (re.pc >= prog.size()) {
        if (plan.verify_marks && re.rep < verify_reps) {
          const double want = plan.end_clocks[static_cast<std::size_t>(r)]
                                             [static_cast<std::size_t>(
                                                 re.rep)];
          if (re.clock != want)
            throw std::runtime_error(
                "replay self-check: rep-end clock diverged from capture");
        }
        ++re.rep;
        re.pc = 0;
        re.stage = 0;
        re.events.clear();
        if (re.rep >= total_reps) re.done = true;
        continue;
      }
      // A blocking rendezvous send that already enqueued its envelope
      // (stage 1) only waits for resolution.
      if (re.stage == 1 && prog[re.pc].op == Op::send) {
        SendEvent* ev = re.events[prog[re.pc].event];
        if (!ev->rdv_resolved) return progressed;
        re.clock = ev->rdv_done;
        re.stage = 0;
        ++re.pc;
        progressed = true;
        continue;
      }
      const int stage_before = re.stage;
      if (!step(r, prog[re.pc])) {
        // A stage transition (rendezvous envelope enqueued, barrier
        // arrival) mutates shared state other ranks wait on: count it
        // as progress or the deadlock sweep would misfire.
        if (re.stage != stage_before) progressed = true;
        return progressed;
      }
      re.stage = 0;
      ++re.pc;
      progressed = true;
    }
    return progressed;
  }

  std::vector<double> run() {
    for (;;) {
      bool any = false;
      bool all_done = true;
      for (int r = 0; r < plan.nranks; ++r) {
        any |= run_rank(r);
        all_done &= ranks[static_cast<std::size_t>(r)].done;
      }
      if (all_done) break;
      if (!any)
        throw std::runtime_error("replay: structural deadlock (no rank "
                                 "can make progress)");
    }
    return std::move(samples);
  }
};

}  // namespace

std::vector<double> interpret(const CommPlan& plan, int reps,
                              int verify_reps) {
  if (!plan.model.has_value())
    throw std::runtime_error("replay: plan has no cost model");
  if (reps <= 0) return {};
  Interp interp(plan, reps, verify_reps);
  return interp.run();
}

}  // namespace detail

std::vector<double> CommPlan::replay_samples(int reps) const {
  if (!valid)
    throw std::runtime_error("replay on an invalid plan: " + invalid_reason);
  return detail::interpret(*this, reps,
                           verify_marks ? captured_reps : 0);
}

RunResult CommPlan::replay(int reps) const {
  RunResult r = base;
  const std::vector<double> samples = replay_samples(reps);
  r.timing = summarize(samples);
  return r;
}

}  // namespace ncsend::plan
