// The experiment engine: declarative plans, the parallel executor's
// determinism guarantee, the unified result pipeline, and the shared
// bench CLI.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "ncsend/ncsend.hpp"

using namespace ncsend;

namespace {

/// A multi-profile, multi-layout plan small enough to run many times.
ExperimentPlan small_plan() {
  ExperimentPlan plan;
  plan.name = "test-plan";
  plan.profiles = {&minimpi::MachineProfile::skx_impi(),
                   &minimpi::MachineProfile::knl_impi()};
  plan.layouts = {LayoutAxis::stride2(), LayoutAxis::indexed_blocks()};
  plan.sizes_bytes = {1024, 8192, 65536};
  plan.schemes = {"reference", "copying", "packing(v)"};
  plan.harness.reps = 3;
  return plan;
}

std::string csv_of(const PlanResult& r) {
  ResultStore store;
  store.add_plan(r);
  std::ostringstream os;
  store.write_csv(os);
  return os.str();
}

std::string json_of(const PlanResult& r) {
  ResultStore store;
  store.add_plan(r);
  std::ostringstream os;
  store.write_sweep_json(os);
  return os.str();
}

TEST(Plan, CellCountAndShape) {
  const ExperimentPlan plan = small_plan();
  EXPECT_EQ(plan.cell_count(), 2u * 2u * 3u * 3u);
  const PlanResult r = run_plan(plan, {1});
  EXPECT_EQ(r.profile_count, 2u);
  EXPECT_EQ(r.layout_count, 2u);
  ASSERT_EQ(r.sweeps.size(), 4u);
  EXPECT_EQ(r.sweep(0, 0).profile_name, "skx-impi");
  EXPECT_EQ(r.sweep(1, 1).profile_name, "knl-impi");
  EXPECT_EQ(r.sweep(0, 0).layout_axis, "stride2");
  EXPECT_EQ(r.sweep(0, 1).layout_axis, "indexed-blocks(b=4)");
  for (const auto& s : r.sweeps) {
    ASSERT_EQ(s.cells.size(), 3u);
    ASSERT_EQ(s.cells[0].size(), 3u);
  }
  EXPECT_TRUE(r.all_verified());
}

// The engine's core contract: cells are independent virtual-clock
// universes, so the parallel dispatch must be bit-for-bit equivalent to
// the serial walk — including the serialized CSV/JSON artifacts.
TEST(Executor, ParallelMatchesSerialByteForByte) {
  const ExperimentPlan plan = small_plan();
  const PlanResult serial = run_plan(plan, {1});
  const PlanResult parallel = run_plan(plan, {4});

  ASSERT_EQ(serial.sweeps.size(), parallel.sweeps.size());
  for (std::size_t s = 0; s < serial.sweeps.size(); ++s) {
    const SweepResult& a = serial.sweeps[s];
    const SweepResult& b = parallel.sweeps[s];
    ASSERT_EQ(a.sizes_bytes, b.sizes_bytes);
    ASSERT_EQ(a.schemes, b.schemes);
    for (std::size_t si = 0; si < a.sizes_bytes.size(); ++si) {
      for (std::size_t ci = 0; ci < a.schemes.size(); ++ci) {
        const RunResult& x = a.cells[si][ci];
        const RunResult& y = b.cells[si][ci];
        EXPECT_EQ(x.timing.mean, y.timing.mean);
        EXPECT_EQ(x.timing.stddev, y.timing.stddev);
        EXPECT_EQ(x.timing.samples, y.timing.samples);
        EXPECT_EQ(x.verified, y.verified);
        EXPECT_EQ(x.data_checked, y.data_checked);
      }
    }
  }
  EXPECT_EQ(csv_of(serial), csv_of(parallel));
  EXPECT_EQ(json_of(serial), json_of(parallel));
}

TEST(Executor, OversubscribedJobsStillComplete) {
  ExperimentPlan plan = small_plan();
  plan.profiles = {&minimpi::MachineProfile::skx_impi()};
  plan.layouts = {LayoutAxis::stride2()};
  // More workers than cells: the pool must clamp, not hang.
  const PlanResult r = run_plan(plan, {64});
  EXPECT_EQ(r.sweeps.size(), 1u);
  EXPECT_TRUE(r.all_verified());
}

TEST(Executor, CellFailurePropagates) {
  ExperimentPlan plan = small_plan();
  plan.schemes = {"reference", "no-such-scheme"};
  EXPECT_THROW(run_plan(plan, {4}), minimpi::Error);
  EXPECT_THROW(run_plan(plan, {1}), minimpi::Error);
}

TEST(Executor, DefaultJobsHonorsEnvironment) {
  ASSERT_EQ(setenv("NCSEND_JOBS", "3", 1), 0);
  EXPECT_EQ(default_jobs(), 3);
  ASSERT_EQ(setenv("NCSEND_JOBS", "garbage", 1), 0);
  EXPECT_GE(default_jobs(), 1);  // falls back to hardware concurrency
  ASSERT_EQ(unsetenv("NCSEND_JOBS"), 0);
  EXPECT_GE(default_jobs(), 1);
}

TEST(LayoutAxis, RegistryRoundTrip) {
  for (const auto& name : LayoutAxis::names()) {
    const LayoutAxis axis = LayoutAxis::by_name(name);
    const Layout l = axis.factory(1024);
    EXPECT_EQ(l.element_count(), 1024u) << name;
  }
  EXPECT_THROW(LayoutAxis::by_name("bogus"), minimpi::Error);
}

TEST(LayoutAxis, ByNameRoundTripsRecordedIds) {
  // The engine records parameterized ids like "indexed-blocks(b=4)" in
  // results; the registry must accept them back.
  const LayoutAxis recorded = LayoutAxis::indexed_blocks();
  const LayoutAxis reparsed = LayoutAxis::by_name(recorded.name);
  EXPECT_EQ(reparsed.name, recorded.name);
  const LayoutAxis wide = LayoutAxis::by_name("indexed-blocks(b=8)");
  EXPECT_EQ(wide.name, "indexed-blocks(b=8)");
  EXPECT_EQ(wide.factory(64).payload_bytes(), 64u * 8u);
  EXPECT_THROW(LayoutAxis::by_name("indexed-blocks(b=zero)"),
               minimpi::Error);
}

TEST(Executor, SizeLabelsReportActualPayload) {
  // 1250 elems is not divisible by the 4-element block, so the indexed
  // axis rounds the payload down; the row label must say so.
  ExperimentPlan plan;
  plan.layouts = {LayoutAxis::stride2(), LayoutAxis::indexed_blocks()};
  plan.schemes = {"reference"};
  plan.sizes_bytes = {10'000};
  plan.harness.reps = 1;
  const PlanResult r = run_plan(plan, {1});
  EXPECT_EQ(r.sweep(0, 0).sizes_bytes[0], 10'000u);
  EXPECT_EQ(r.sweep(0, 1).sizes_bytes[0], 9'984u);  // 312 blocks of 4
  EXPECT_EQ(r.sweep(0, 1).cells[0][0].payload_bytes, 9'984u);
}

TEST(LayoutAxis, IndexedBlocksIsIrregularSameBytes) {
  const Layout l = LayoutAxis::indexed_blocks().factory(4096);
  EXPECT_EQ(l.payload_bytes(), 4096u * 8u);
  EXPECT_FALSE(l.regular());
  // Same footprint ratio as the stride-2 canonical case.
  EXPECT_LE(l.footprint_elems(), 2u * 4096u);
  // Deterministic: the same seed yields the same layout.
  const Layout l2 = LayoutAxis::indexed_blocks().factory(4096);
  EXPECT_EQ(l.name(), l2.name());
  bool identical = true;
  std::vector<std::size_t> a, b;
  l.for_each_element([&](std::size_t, std::size_t src) { a.push_back(src); });
  l2.for_each_element([&](std::size_t, std::size_t src) { b.push_back(src); });
  identical = a == b;
  EXPECT_TRUE(identical);
}

TEST(LogSizes, RoundsToWholeDoublesAndDropsDuplicates) {
  // Dense grid over a narrow range: successive raw points round to the
  // same multiple of 8 and must collapse to one entry.
  const auto sizes = log_sizes(8, 100, 40);
  ASSERT_FALSE(sizes.empty());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i] % 8, 0u);
    EXPECT_GE(sizes[i], 8u);
    if (i) {
      EXPECT_GT(sizes[i], sizes[i - 1]);  // strictly increasing
    }
  }
  // 40/decade over ~1.1 decades is 45 raw points; rounding must have
  // collapsed some (only 12 distinct multiples of 8 exist in [8, 100]).
  EXPECT_LE(sizes.size(), 12u);
}

TEST(LogSizes, SubEightPointsAreDropped) {
  // Raw points below 8 bytes round to 0 and must not appear.
  const auto sizes = log_sizes(1, 64, 4);
  ASSERT_FALSE(sizes.empty());
  EXPECT_GE(sizes.front(), 8u);
}

TEST(SweepResultMetrics, SlowdownZeroWithoutReference) {
  ExperimentPlan plan = small_plan();
  plan.profiles = {&minimpi::MachineProfile::skx_impi()};
  plan.layouts = {LayoutAxis::stride2()};
  plan.schemes = {"copying", "packing(v)"};  // no "reference" column
  plan.sizes_bytes = {4096};
  const SweepResult r = run_plan(plan, {1}).sweep(0, 0);
  EXPECT_EQ(r.slowdown(0, 0), 0.0);
  EXPECT_EQ(r.slowdown(0, 1), 0.0);
}

TEST(ResultStoreWriters, BenchSweepSchemaHasLayoutAxis) {
  ExperimentPlan plan = small_plan();
  plan.sizes_bytes = {4096};
  ResultStore store;
  store.add_plan(run_plan(plan, {2}));
  std::ostringstream os;
  store.write_bench_sweep_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"benchmark\": \"scheme_sweep\""), std::string::npos);
  EXPECT_NE(out.find("\"layout\": \"stride2\""), std::string::npos);
  EXPECT_NE(out.find("\"layout\": \"indexed-blocks(b=4)\""),
            std::string::npos);
  EXPECT_NE(out.find("knl-impi"), std::string::npos);
}

TEST(ResultStoreWriters, PackEngineSchema) {
  ResultStore store;
  store.add_kernel({"memcpy_contiguous", 4096, 12.5});
  store.add_kernel({"pack_vector_type", 4096, 6.25});
  std::ostringstream os;
  store.write_bench_pack_engine_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"benchmark\": \"pack_engine\""), std::string::npos);
  EXPECT_NE(out.find("\"kernel\": \"memcpy_contiguous\""), std::string::npos);
  EXPECT_NE(out.find("\"gbps\": 6.25"), std::string::npos);
}

TEST(ResultStoreWriters, EagerLimitSchemaPairsRuns) {
  ExperimentPlan plan;
  plan.profiles = {&minimpi::MachineProfile::skx_impi()};
  plan.schemes = {"reference"};
  plan.sizes_bytes = {65544};
  plan.harness.reps = 3;
  const SweepResult base = run_plan(plan, {1}).sweep(0, 0);
  plan.eager_limit_override = std::size_t{1} << 30;
  const SweepResult raised = run_plan(plan, {1}).sweep(0, 0);
  std::ostringstream os;
  ResultStore::write_bench_eager_limit_json(os, base, raised,
                                            std::size_t{1} << 30);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"benchmark\": \"eager_limit\""), std::string::npos);
  EXPECT_NE(out.find("\"time_s\": "), std::string::npos);
  EXPECT_NE(out.find("\"time_raised_s\": "), std::string::npos);
}

TEST(ResultStoreWriters, JsonEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(BenchCliParse, AcceptsTheSharedFlagSet) {
  const char* argv[] = {"bench",      "--quick", "--per-decade", "3",
                        "--reps",     "7",       "--jobs",       "2",
                        "--out-dir",  "/tmp/x",  "--no-csv"};
  std::string error;
  const auto cli = BenchCli::try_parse(11, const_cast<char**>(argv), &error);
  ASSERT_TRUE(cli.has_value()) << error;
  EXPECT_TRUE(cli->quick);
  EXPECT_EQ(cli->per_decade, 3);
  EXPECT_EQ(cli->reps, 7);
  EXPECT_EQ(cli->jobs, 2);
  EXPECT_EQ(cli->out_dir, "/tmp/x");
  EXPECT_FALSE(cli->csv);
  EXPECT_EQ(cli->effective_per_decade(), 2);  // --quick wins
  EXPECT_EQ(cli->effective_reps(), 5);
}

TEST(BenchCliParse, RejectsUnknownFlagsAndBadValues) {
  std::string error;
  {
    const char* argv[] = {"bench", "--frobnicate"};
    EXPECT_FALSE(
        BenchCli::try_parse(2, const_cast<char**>(argv), &error).has_value());
    EXPECT_NE(error.find("unknown flag"), std::string::npos);
  }
  {
    const char* argv[] = {"bench", "--jobs", "zero"};
    EXPECT_FALSE(
        BenchCli::try_parse(3, const_cast<char**>(argv), &error).has_value());
  }
  {
    const char* argv[] = {"bench", "--reps"};
    EXPECT_FALSE(
        BenchCli::try_parse(2, const_cast<char**>(argv), &error).has_value());
  }
  {
    const char* argv[] = {"bench", "--jobs", "-4"};
    EXPECT_FALSE(
        BenchCli::try_parse(3, const_cast<char**>(argv), &error).has_value());
  }
}

TEST(SweepCompat, RunSweepMatchesEngineOutput) {
  SweepConfig cfg;
  cfg.sizes_bytes = {1024, 65536};
  cfg.schemes = {"reference", "copying"};
  cfg.harness.reps = 3;
  const SweepResult via_sweep = run_sweep(cfg, 2);
  const PlanResult via_plan = run_plan(to_plan(cfg), {1});
  const SweepResult& direct = via_plan.sweep(0, 0);
  ASSERT_EQ(via_sweep.sizes_bytes, direct.sizes_bytes);
  for (std::size_t si = 0; si < via_sweep.sizes_bytes.size(); ++si)
    for (std::size_t ci = 0; ci < via_sweep.schemes.size(); ++ci)
      EXPECT_EQ(via_sweep.time(si, ci), direct.time(si, ci));
  // Unnamed legacy axis: the axis id falls back to the layout name.
  EXPECT_EQ(via_sweep.layout_axis, via_sweep.layout_name);
}

}  // namespace
