// Ready-mode sends, persistent requests, and request-set helpers.
#include <gtest/gtest.h>

#include <numeric>

#include "minimpi/minimpi.hpp"

using namespace minimpi;

namespace {

UniverseOptions two_ranks() {
  UniverseOptions o;
  o.nranks = 2;
  o.wtime_resolution = 0.0;
  return o;
}

TEST(Rsend, DeliversLikeStandardSend) {
  Universe::run(two_ranks(), [](Comm& c) {
    if (c.rank() == 0) {
      c.recv(nullptr, 0, Datatype::byte(), 1, 0);  // receiver is ready
      std::vector<double> data(1 << 15);
      std::iota(data.begin(), data.end(), 0.0);
      c.rsend(data.data(), data.size(), Datatype::float64(), 1, 1);
    } else {
      std::vector<double> in(1 << 15);
      Request r = c.irecv(in.data(), in.size(), Datatype::float64(), 0, 1);
      c.send(nullptr, 0, Datatype::byte(), 0, 0);  // "I have posted"
      r.wait();
      EXPECT_EQ(in[12345], 12345.0);
    }
  });
}

TEST(Rsend, SkipsHandshakeAboveEagerLimit) {
  // For a large contiguous message the ready send saves the rendezvous
  // handshake relative to a standard send.
  auto elapsed = [](bool ready) {
    double dt = 0.0;
    Universe::run(UniverseOptions{.nranks = 2, .wtime_resolution = 0.0},
                  [&](Comm& c) {
      std::vector<double> buf(1 << 15);  // 256 KB > 64 KB eager limit
      if (c.rank() == 0) {
        const double t0 = c.clock();
        if (ready)
          c.rsend(buf.data(), buf.size(), Datatype::float64(), 1, 0);
        else
          c.send(buf.data(), buf.size(), Datatype::float64(), 1, 0);
        c.recv(nullptr, 0, Datatype::byte(), 1, 1);
        dt = c.clock() - t0;
      } else {
        c.recv(buf.data(), buf.size(), Datatype::float64(), 0, 0);
        c.send(nullptr, 0, Datatype::byte(), 0, 1);
      }
    });
    return dt;
  };
  const double standard = elapsed(false);
  const double ready = elapsed(true);
  EXPECT_LT(ready, standard);
  EXPECT_NEAR(standard - ready,
              MachineProfile::skx_impi().rendezvous_handshake_s, 1e-9);
}

TEST(Persistent, StartWaitCycleRepeats) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> buf(64);
    if (c.rank() == 0) {
      PersistentRequest req =
          c.send_init(buf.data(), buf.size(), Datatype::float64(), 1, 0);
      EXPECT_FALSE(req.active());
      for (int i = 0; i < 5; ++i) {
        buf[0] = i;
        req.start();
        EXPECT_TRUE(req.active());
        req.wait();
        EXPECT_FALSE(req.active());
      }
    } else {
      PersistentRequest req =
          c.recv_init(buf.data(), buf.size(), Datatype::float64(), 0, 0);
      for (int i = 0; i < 5; ++i) {
        req.start();
        const Status st = req.wait();
        EXPECT_EQ(st.count_bytes, 64u * 8);
        EXPECT_EQ(buf[0], static_cast<double>(i));
      }
    }
  });
}

TEST(Persistent, MisuseThrows) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    double x = 0.0;
    PersistentRequest req = c.send_init(&x, 1, Datatype::float64(), 0, 0);
    EXPECT_THROW(req.wait(), Error);  // wait before start
    req.start();
    EXPECT_THROW(req.start(), Error);  // double start
    // Drain the self-send so the universe shuts down cleanly.
    double y = 0.0;
    c.recv(&y, 1, Datatype::float64(), 0, 0);
    req.wait();
    PersistentRequest empty;
    EXPECT_THROW(empty.start(), Error);
  });
}

TEST(Waitall, CompletesEverything) {
  Universe::run(two_ranks(), [](Comm& c) {
    constexpr int n = 8;
    std::vector<std::vector<double>> bufs(n, std::vector<double>(32));
    std::vector<Request> reqs;
    const Rank peer = 1 - c.rank();
    for (int i = 0; i < n; ++i) {
      if (c.rank() == 0) {
        bufs[i].assign(32, static_cast<double>(i));
        reqs.push_back(
            c.isend(bufs[i].data(), 32, Datatype::float64(), peer, i));
      } else {
        reqs.push_back(
            c.irecv(bufs[i].data(), 32, Datatype::float64(), peer, i));
      }
    }
    waitall(reqs);
    if (c.rank() == 1) {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(bufs[i][0], static_cast<double>(i));
      }
    }
  });
}

TEST(Waitany, ReturnsACompletedIndex) {
  Universe::run(two_ranks(), [](Comm& c) {
    if (c.rank() == 0) {
      const double v = 3.5;
      c.send(&v, 1, Datatype::float64(), 1, 7);
      c.recv(nullptr, 0, Datatype::byte(), 1, 99);
    } else {
      double a = 0.0, b = 0.0;
      std::vector<Request> reqs;
      reqs.push_back(c.irecv(&a, 1, Datatype::float64(), 0, 6));  // never sent
      reqs.push_back(c.irecv(&b, 1, Datatype::float64(), 0, 7));
      Status st;
      const std::size_t idx = waitany(reqs, &st);
      EXPECT_EQ(idx, 1u);
      EXPECT_EQ(b, 3.5);
      EXPECT_EQ(st.tag, 7);
      c.send(nullptr, 0, Datatype::byte(), 0, 99);
      // The never-matched request is abandoned (universe teardown).
    }
  });
}

TEST(Testall, FalseUntilAllReady) {
  Universe::run(two_ranks(), [](Comm& c) {
    if (c.rank() == 0) {
      const double v = 1.0;
      c.recv(nullptr, 0, Datatype::byte(), 1, 0);  // wait for receiver
      c.send(&v, 1, Datatype::float64(), 1, 1);
      c.send(&v, 1, Datatype::float64(), 1, 2);
    } else {
      double a = 0.0, b = 0.0;
      std::vector<Request> reqs;
      reqs.push_back(c.irecv(&a, 1, Datatype::float64(), 0, 1));
      reqs.push_back(c.irecv(&b, 1, Datatype::float64(), 0, 2));
      EXPECT_FALSE(testall(reqs));  // nothing sent yet
      c.send(nullptr, 0, Datatype::byte(), 0, 0);
      while (!testall(reqs)) {
      }
      EXPECT_EQ(a, 1.0);
      EXPECT_EQ(b, 1.0);
    }
  });
}

}  // namespace
