// Machine-profile sanity: registry behaviour and the qualitative
// relations between the four clusters that the paper's figures rely on.
#include <gtest/gtest.h>

#include "minimpi/base/error.hpp"
#include "minimpi/net/machine_profile.hpp"

using namespace minimpi;

namespace {

TEST(ProfileRegistry, ByNameRoundTrips) {
  for (const auto& name : MachineProfile::names()) {
    EXPECT_EQ(MachineProfile::by_name(name).name, name);
  }
  EXPECT_THROW((void)MachineProfile::by_name("bluegene"), Error);
}

TEST(ProfileRegistry, FourClusters) {
  EXPECT_EQ(MachineProfile::names().size(), 4u);
}

class AllProfiles : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Clusters, AllProfiles,
                         ::testing::ValuesIn(MachineProfile::names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST_P(AllProfiles, PhysicallyPlausible) {
  const MachineProfile& p = MachineProfile::by_name(GetParam());
  EXPECT_GT(p.net_bandwidth_Bps, 1e9);
  EXPECT_GT(p.net_latency_s, 0.0);
  EXPECT_LT(p.net_latency_s, 1e-4);
  EXPECT_GT(p.copy_bandwidth_Bps, 1e8);
  EXPECT_GT(p.eager_limit_bytes, 0u);
  EXPECT_LT(p.eager_limit_bytes, p.internal_buffer_bytes);
  EXPECT_GT(p.internal_buffer_bytes, std::size_t{1} << 20);
  EXPECT_GT(p.fence_cost_s, p.net_latency_s);  // fences are expensive
  EXPECT_GT(p.put_bandwidth_factor, 0.0);
  EXPECT_LE(p.put_bandwidth_factor, 1.0);
  EXPECT_GE(p.warm_copy_factor, 1.0);
  // No measured system pipelines non-contiguous injection (paper §2.3).
  EXPECT_FALSE(p.nic_gather);
}

TEST_P(AllProfiles, CopySlowdownIsAtLeastThree) {
  // Paper §5: the non-contiguous slowdown is "at least a factor of
  // three": 1 (wire) + net_bw/copy_bw (gather) >= 3.
  const MachineProfile& p = MachineProfile::by_name(GetParam());
  EXPECT_GE(1.0 + p.net_bandwidth_Bps / p.copy_bandwidth_Bps, 2.9);
}

TEST(ProfileRelations, KnlHasWeakCoreSameFabric) {
  const auto& skx = MachineProfile::skx_impi();
  const auto& knl = MachineProfile::knl_impi();
  EXPECT_EQ(knl.net_bandwidth_Bps, skx.net_bandwidth_Bps);  // same Omni-Path
  EXPECT_LT(knl.copy_bandwidth_Bps, skx.copy_bandwidth_Bps / 2.0);
  EXPECT_GT(knl.per_call_overhead_s, skx.per_call_overhead_s);
}

TEST(ProfileRelations, MvapichRmaIsSlow) {
  EXPECT_LT(MachineProfile::skx_mvapich2().put_bandwidth_factor,
            MachineProfile::skx_impi().put_bandwidth_factor / 2.0);
}

TEST(ProfileRelations, CrayRmaStaysCompetitiveAtLarge) {
  EXPECT_EQ(MachineProfile::ls5_cray().rma_large_penalty, 0.0);
  EXPECT_GT(MachineProfile::skx_impi().rma_large_penalty, 0.0);
}

TEST(ProfileRelations, CrayHasLowerPeak) {
  EXPECT_LT(MachineProfile::ls5_cray().net_bandwidth_Bps,
            MachineProfile::skx_impi().net_bandwidth_Bps);
}

}  // namespace
