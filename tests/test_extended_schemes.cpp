// Extension schemes: send-mode variants and PSCW one-sided.
#include <gtest/gtest.h>

#include "ncsend/ncsend.hpp"

using namespace ncsend;

namespace {

minimpi::UniverseOptions exact_opts() {
  minimpi::UniverseOptions o;
  o.nranks = 2;
  o.wtime_resolution = 0.0;
  return o;
}

TEST(ExtendedRegistry, SixExtensionSchemes) {
  const auto& names = extended_scheme_names();
  ASSERT_EQ(names.size(), 6u);
  for (const auto& n : names) {
    auto s = make_scheme(n);
    ASSERT_NE(s, nullptr) << n;
    EXPECT_EQ(s->name(), n);
  }
}

TEST(ExtendedRegistry, NotInPaperLegend) {
  const auto& paper = all_scheme_names();
  for (const auto& n : extended_scheme_names())
    EXPECT_EQ(std::find(paper.begin(), paper.end(), n), paper.end()) << n;
}

class ExtendedDelivery : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, ExtendedDelivery,
    ::testing::ValuesIn(extended_scheme_names()), [](const auto& info) {
      std::string out;
      for (const char c : info.param)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return out;
    });

TEST_P(ExtendedDelivery, DeliversExactBytes) {
  const Layout layout = Layout::strided(512, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 4;
  const RunResult r = run_experiment(exact_opts(), GetParam(), layout, cfg);
  EXPECT_TRUE(r.data_checked);
  EXPECT_TRUE(r.verified);
}

TEST_P(ExtendedDelivery, WorksAtRendezvousSizes) {
  const Layout layout = Layout::strided(1 << 15, 1, 2);  // 256 KB
  HarnessConfig cfg;
  cfg.reps = 3;
  const RunResult r = run_experiment(exact_opts(), GetParam(), layout, cfg);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.time(), 0.0);
}

TEST(ExtendedBehaviour, IsendMatchesBlockingSend) {
  // A lone isend+wait has the same critical path as a blocking send.
  const Layout layout = Layout::strided(1 << 14, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 5;
  const double blocking =
      run_experiment(exact_opts(), "vector type", layout, cfg).time();
  const double nonblocking =
      run_experiment(exact_opts(), "isend(v)", layout, cfg).time();
  EXPECT_NEAR(nonblocking / blocking, 1.0, 0.02);
}

TEST(ExtendedBehaviour, RsendSavesTheHandshake) {
  const Layout layout = Layout::strided(1 << 15, 1, 2);  // rendezvous size
  HarnessConfig cfg;
  cfg.reps = 5;
  const double standard =
      run_experiment(exact_opts(), "vector type", layout, cfg).time();
  const double ready =
      run_experiment(exact_opts(), "rsend(v)", layout, cfg).time();
  EXPECT_LT(ready, standard);
}

TEST(ExtendedBehaviour, PscwBeatsFenceForSmallMessages) {
  const Layout layout = Layout::strided(128, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 5;
  const double fence =
      run_experiment(exact_opts(), "onesided", layout, cfg).time();
  const double pscw =
      run_experiment(exact_opts(), "onesided-pscw", layout, cfg).time();
  EXPECT_LT(pscw, fence);
}

TEST(ExtendedBehaviour, PersistentMatchesIsend) {
  const Layout layout = Layout::strided(4096, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 5;
  const double isend =
      run_experiment(exact_opts(), "isend(v)", layout, cfg).time();
  const double persistent =
      run_experiment(exact_opts(), "persistent(v)", layout, cfg).time();
  EXPECT_NEAR(persistent / isend, 1.0, 0.02);
}

TEST(ExtendedBehaviour, PipelinedPackingBeatsPackingVAtLargeSizes) {
  // Overlapping the pack loop with the wire bounds the time by
  // max(pack, wire) instead of pack + wire.
  minimpi::UniverseOptions opts = exact_opts();
  opts.functional_payload_limit = 1 << 16;  // modeled payloads
  HarnessConfig cfg;
  cfg.reps = 3;
  cfg.verify = false;
  const Layout large = Layout::strided(100'000'000 / 8, 1, 2);
  const double pv = run_experiment(opts, "packing(v)", large, cfg).time();
  const double pp = run_experiment(opts, "packing(p)", large, cfg).time();
  EXPECT_LT(pp, 0.9 * pv);
  // Still bounded below by the pure wire time of the reference scheme.
  const double ref = run_experiment(opts, "reference", large, cfg).time();
  EXPECT_GT(pp, ref);
}

TEST(ExtendedBehaviour, PipelinedPackingMatchesPackingVWhenOneChunk) {
  // Below one chunk there is nothing to overlap.
  const Layout small = Layout::strided(4096, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 5;
  const double pv =
      run_experiment(exact_opts(), "packing(v)", small, cfg).time();
  const double pp =
      run_experiment(exact_opts(), "packing(p)", small, cfg).time();
  EXPECT_NEAR(pp / pv, 1.0, 0.05);
}

TEST(ExtendedBehaviour, SsendNoSlowerThanNeededAtLargeSizes) {
  // Above the eager limit a standard send already handshakes, so the
  // synchronous mode costs the same there.
  const Layout layout = Layout::strided(1 << 15, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 5;
  const double standard =
      run_experiment(exact_opts(), "vector type", layout, cfg).time();
  const double ssend =
      run_experiment(exact_opts(), "ssend(v)", layout, cfg).time();
  EXPECT_NEAR(ssend / standard, 1.0, 0.02);
}

}  // namespace
