// Stress and cross-validation tests: the runtime under load, and
// independent implementations checked against each other.
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "minimpi/minimpi.hpp"
#include "ncsend/ncsend.hpp"

using namespace minimpi;

namespace {

TEST(Stress, ManySmallMessagesKeepOrderPerPair) {
  // 4 ranks, 200 tagged messages per directed pair, all eager: per-pair
  // FIFO must hold under real thread interleaving.
  UniverseOptions o;
  o.nranks = 4;
  Universe::run(o, [](Comm& c) {
    constexpr int msgs = 200;
    // Phase 1: everyone sends to everyone (including self).
    for (int m = 0; m < msgs; ++m) {
      for (Rank dst = 0; dst < c.size(); ++dst) {
        const double payload = c.rank() * 1e6 + m;
        c.send(&payload, 1, Datatype::float64(), dst, 3);
      }
    }
    // Phase 2: drain, checking per-source monotonicity.
    std::vector<int> next(static_cast<std::size_t>(c.size()), 0);
    for (int m = 0; m < msgs * c.size(); ++m) {
      double v = 0.0;
      const Status st = c.recv(&v, 1, Datatype::float64(), any_source, 3);
      const auto src = static_cast<std::size_t>(st.source);
      const int seq = static_cast<int>(v - st.source * 1e6);
      EXPECT_EQ(seq, next[src]) << "out of order from rank " << st.source;
      next[src] = seq + 1;
    }
    for (const int n : next) EXPECT_EQ(n, msgs);
  });
}

TEST(Stress, MixedSizeBidirectionalTraffic) {
  // Rendezvous and eager messages interleaved in both directions via
  // nonblocking ops; everything must complete and verify.
  UniverseOptions o;
  o.nranks = 2;
  Universe::run(o, [](Comm& c) {
    std::mt19937 rng(c.rank() == 0 ? 11 : 12);
    const Rank peer = 1 - c.rank();
    constexpr int rounds = 40;
    // Deterministic shared size schedule (same on both ranks).
    std::mt19937 sched(99);
    std::vector<std::size_t> sizes;
    for (int i = 0; i < rounds; ++i)
      sizes.push_back(std::uniform_int_distribution<std::size_t>(
          1, 40'000)(sched));
    for (int i = 0; i < rounds; ++i) {
      const std::size_t n = sizes[static_cast<std::size_t>(i)];
      std::vector<double> out(n, c.rank() + i * 0.5);
      std::vector<double> in(n);
      Request r = c.irecv(in.data(), n, Datatype::float64(), peer, i);
      Request s = c.isend(out.data(), n, Datatype::float64(), peer, i);
      r.wait();
      s.wait();
      EXPECT_EQ(in[0], peer + i * 0.5);
      EXPECT_EQ(in[n - 1], peer + i * 0.5);
    }
  });
}

TEST(Stress, EightRankRingWithDerivedTypes) {
  UniverseOptions o;
  o.nranks = 8;
  Universe::run(o, [](Comm& c) {
    constexpr std::size_t n = 512;
    Datatype vec = Datatype::vector(n, 1, 2, Datatype::float64());
    vec.commit();
    std::vector<double> data(2 * n);
    for (std::size_t i = 0; i < 2 * n; ++i)
      data[i] = c.rank() * 10'000.0 + static_cast<double>(i);
    std::vector<double> ghost(n);
    const Rank next = (c.rank() + 1) % c.size();
    const Rank prev = (c.rank() + c.size() - 1) % c.size();
    for (int round = 0; round < 5; ++round) {
      c.sendrecv(data.data(), 1, vec, next, round, ghost.data(), n,
                 Datatype::float64(), prev, round);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(ghost[i], prev * 10'000.0 + static_cast<double>(2 * i));
      c.barrier();
    }
  });
}

TEST(Stress, DeterminismAcrossHostSchedules) {
  // The virtual clock must be independent of OS thread interleaving:
  // run the same multi-rank workload many times and demand bit-equal
  // final clocks.
  auto run_once = [] {
    std::vector<double> clocks(4);
    UniverseOptions o;
    o.nranks = 4;
    o.wtime_resolution = 0.0;
    Universe::run(o, [&](Comm& c) {
      std::vector<double> buf(1 << 12);
      for (int i = 0; i < 10; ++i) {
        const Rank peer = c.rank() ^ 1;  // pairs (0,1) and (2,3)
        if (c.rank() < peer) {
          c.send(buf.data(), buf.size(), Datatype::float64(), peer, i);
          c.recv(buf.data(), buf.size(), Datatype::float64(), peer, i);
        } else {
          c.recv(buf.data(), buf.size(), Datatype::float64(), peer, i);
          c.send(buf.data(), buf.size(), Datatype::float64(), peer, i);
        }
        c.barrier();
      }
      clocks[static_cast<std::size_t>(c.rank())] = c.clock();
    });
    return clocks;
  };
  const auto first = run_once();
  for (int trial = 0; trial < 10; ++trial) EXPECT_EQ(run_once(), first);
}

TEST(CrossValidation, PackEqualsFlattenDrivenCopy) {
  // Two independent paths to the packed bytes: the recursive pack
  // engine vs an explicit copy over the materialized flatten() list.
  std::mt19937_64 rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t nblocks =
        std::uniform_int_distribution<std::size_t>(1, 30)(rng);
    std::vector<std::size_t> bl(nblocks);
    std::vector<std::ptrdiff_t> dis(nblocks);
    std::ptrdiff_t cursor = 0;
    for (std::size_t j = 0; j < nblocks; ++j) {
      bl[j] = std::uniform_int_distribution<std::size_t>(1, 5)(rng);
      dis[j] = cursor;
      cursor += static_cast<std::ptrdiff_t>(
          bl[j] + std::uniform_int_distribution<std::size_t>(0, 4)(rng));
    }
    Datatype t = Datatype::indexed(bl, dis, Datatype::float64());
    t.commit();
    std::vector<double> src(static_cast<std::size_t>(cursor) + 8);
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = static_cast<double>(i) * 1.25;

    std::vector<std::byte> via_pack(pack_size(1, t));
    std::size_t pos = 0;
    pack(src.data(), 1, t, via_pack.data(), via_pack.size(), pos);

    std::vector<std::byte> via_flatten(via_pack.size());
    std::size_t out = 0;
    for (const FlatBlock& b : flatten(t, 1)) {
      std::memcpy(via_flatten.data() + out,
                  reinterpret_cast<const std::byte*>(src.data()) + b.offset,
                  b.length);
      out += b.length;
    }
    ASSERT_EQ(out, via_pack.size());
    EXPECT_EQ(std::memcmp(via_pack.data(), via_flatten.data(), out), 0);
  }
}

TEST(CrossValidation, SchemesAgreeOnDeliveredBytesPairwise) {
  // All schemes must deliver the *same* bytes for the same layout: run
  // them through the harness and compare the receive buffers directly.
  const ncsend::Layout layout = ncsend::Layout::strided(333, 1, 2);
  std::vector<std::vector<double>> received;
  for (const auto& name : ncsend::all_scheme_names()) {
    std::vector<double> copy;
    UniverseOptions o;
    o.nranks = 2;
    Universe::run(o, [&](Comm& comm) {
      auto scheme = ncsend::make_scheme(name);
      ncsend::HarnessConfig cfg;
      cfg.reps = 1;
      // Re-implement the harness tail: capture the receive buffer.
      const bool receiver = comm.rank() == 1;
      Buffer user, recv_buf;
      if (!receiver) {
        user = Buffer::allocate(layout.footprint_elems() * 8);
        auto e = user.as<double>();
        for (std::size_t i = 0; i < e.size(); ++i)
          e[i] = ncsend::fill_value(i);
      } else {
        recv_buf = Buffer::allocate(layout.payload_bytes());
      }
      memsim::CacheModel cache(comm.profile().cache_bytes);
      ncsend::SchemeContext ctx{comm, layout, cache, user, recv_buf};
      scheme->setup(ctx);
      comm.barrier();
      scheme->run_rep(ctx);
      scheme->teardown(ctx);
      comm.barrier();
      if (receiver) {
        const auto got = recv_buf.as<const double>();
        copy.assign(got.begin(), got.end());
      }
    });
    received.push_back(std::move(copy));
  }
  for (std::size_t i = 1; i < received.size(); ++i)
    EXPECT_EQ(received[i], received[0])
        << ncsend::all_scheme_names()[i] << " delivered different bytes";
}

}  // namespace
