// The scheme advisor: paper §5 encoded and queryable.
#include <gtest/gtest.h>

#include "ncsend/advisor.hpp"

using namespace ncsend;
using minimpi::MachineProfile;

namespace {

TEST(Advisor, ContiguousNeedsNothing) {
  const auto rec =
      advise(MachineProfile::skx_impi(), 1 << 20, Layout::contiguous(1 << 17));
  EXPECT_EQ(rec.scheme, "reference");
}

TEST(Advisor, SmallAndIntermediateUseDerivedTypes) {
  for (const std::size_t bytes :
       {std::size_t{1} << 10, std::size_t{1} << 20, std::size_t{50'000'000}}) {
    const auto rec = advise(MachineProfile::skx_impi(), bytes,
                            Layout::strided(bytes / 8, 1, 2));
    EXPECT_EQ(rec.scheme, "vector type") << bytes;
    EXPECT_NE(rec.rationale.find("derived"), std::string::npos);
  }
}

TEST(Advisor, LargeMessagesUsePackingVector) {
  const std::size_t bytes = 200'000'000;
  const auto rec = advise(MachineProfile::skx_impi(), bytes,
                          Layout::strided(bytes / 8, 1, 2));
  EXPECT_EQ(rec.scheme, "packing(v)");
  EXPECT_NE(rec.rationale.find("internal buffer"), std::string::npos);
}

TEST(Advisor, AlwaysWarnsAgainstBufferedAndElementPacking) {
  const auto rec = advise(MachineProfile::ls5_cray(), 1 << 20,
                          Layout::strided(1 << 17, 1, 2));
  bool warned_bsend = false, warned_packe = false;
  for (const auto& a : rec.avoid) {
    if (a.find("buffered") != std::string::npos) warned_bsend = true;
    if (a.find("packing(e)") != std::string::npos) warned_packe = true;
  }
  EXPECT_TRUE(warned_bsend);
  EXPECT_TRUE(warned_packe);
}

TEST(Advisor, WarnsAgainstRmaOnMvapichOnly) {
  const auto mva = advise(MachineProfile::skx_mvapich2(), 1 << 20,
                          Layout::strided(1 << 17, 1, 2));
  const auto impi = advise(MachineProfile::skx_impi(), 1 << 20,
                           Layout::strided(1 << 17, 1, 2));
  auto warns_rma = [](const Recommendation& r) {
    for (const auto& a : r.avoid)
      if (a.find("onesided") != std::string::npos) return true;
    return false;
  };
  EXPECT_TRUE(warns_rma(mva));
  EXPECT_FALSE(warns_rma(impi));
}

TEST(Advisor, IrregularLayoutsStillAdvised) {
  const auto rec = advise(MachineProfile::knl_impi(), 1 << 16,
                          Layout::fem_boundary(1 << 13, 1 << 16));
  EXPECT_FALSE(rec.scheme.empty());
  EXPECT_FALSE(rec.rationale.empty());
}

}  // namespace
