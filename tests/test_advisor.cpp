// The scheme advisor: paper §5 encoded and queryable, including the
// pattern-aware overload (neighbor count + link contention).
#include <gtest/gtest.h>

#include "ncsend/advisor.hpp"
#include "ncsend/patterns/pattern.hpp"

using namespace ncsend;
using minimpi::MachineProfile;

namespace {

TEST(Advisor, ContiguousNeedsNothing) {
  const auto rec =
      advise(MachineProfile::skx_impi(), 1 << 20, Layout::contiguous(1 << 17));
  EXPECT_EQ(rec.scheme, "reference");
}

TEST(Advisor, SmallAndIntermediateUseDerivedTypes) {
  for (const std::size_t bytes :
       {std::size_t{1} << 10, std::size_t{1} << 20, std::size_t{50'000'000}}) {
    const auto rec = advise(MachineProfile::skx_impi(), bytes,
                            Layout::strided(bytes / 8, 1, 2));
    EXPECT_EQ(rec.scheme, "vector type") << bytes;
    EXPECT_NE(rec.rationale.find("derived"), std::string::npos);
  }
}

TEST(Advisor, LargeMessagesUsePackingVector) {
  const std::size_t bytes = 200'000'000;
  const auto rec = advise(MachineProfile::skx_impi(), bytes,
                          Layout::strided(bytes / 8, 1, 2));
  EXPECT_EQ(rec.scheme, "packing(v)");
  EXPECT_NE(rec.rationale.find("internal buffer"), std::string::npos);
}

TEST(Advisor, AlwaysWarnsAgainstBufferedAndElementPacking) {
  const auto rec = advise(MachineProfile::ls5_cray(), 1 << 20,
                          Layout::strided(1 << 17, 1, 2));
  bool warned_bsend = false, warned_packe = false;
  for (const auto& a : rec.avoid) {
    if (a.find("buffered") != std::string::npos) warned_bsend = true;
    if (a.find("packing(e)") != std::string::npos) warned_packe = true;
  }
  EXPECT_TRUE(warned_bsend);
  EXPECT_TRUE(warned_packe);
}

TEST(Advisor, WarnsAgainstRmaOnMvapichOnly) {
  const auto mva = advise(MachineProfile::skx_mvapich2(), 1 << 20,
                          Layout::strided(1 << 17, 1, 2));
  const auto impi = advise(MachineProfile::skx_impi(), 1 << 20,
                           Layout::strided(1 << 17, 1, 2));
  auto warns_rma = [](const Recommendation& r) {
    for (const auto& a : r.avoid)
      if (a.find("onesided") != std::string::npos) return true;
    return false;
  };
  EXPECT_TRUE(warns_rma(mva));
  EXPECT_FALSE(warns_rma(impi));
}

TEST(Advisor, IrregularLayoutsStillAdvised) {
  const auto rec = advise(MachineProfile::knl_impi(), 1 << 16,
                          Layout::fem_boundary(1 << 13, 1 << 16));
  EXPECT_FALSE(rec.scheme.empty());
  EXPECT_FALSE(rec.rationale.empty());
}

// --- the pattern-aware overload -----------------------------------------

TEST(PatternAdvisor, PingpongMatchesBaseAdvice) {
  // The 2-rank ping-pong adds no neighbors and no fence concern: the
  // pattern-aware answer is the base answer.
  const auto p = CommPattern::by_name("pingpong");
  const std::size_t bytes = 1 << 20;
  const Layout l = Layout::strided(bytes / 8, 1, 2);
  const auto base = advise(MachineProfile::skx_impi(), bytes, l);
  const auto aware = advise(MachineProfile::skx_impi(), bytes, l, *p);
  EXPECT_EQ(aware.scheme, base.scheme);
  EXPECT_EQ(aware.avoid.size(), base.avoid.size());
}

TEST(PatternAdvisor, MultiRankPatternsFlagFenceOneSided) {
  const auto halo = CommPattern::by_name("halo3d(2x2x2)");
  const std::size_t bytes = 1 << 20;
  const Layout l = Layout::strided(bytes / 8, 1, 2);
  const auto rec = advise(MachineProfile::skx_impi(), bytes, l, *halo);
  bool fence_flagged = false;
  for (const auto& a : rec.avoid)
    if (a.find("onesided:") != std::string::npos &&
        a.find("fence") != std::string::npos)
      fence_flagged = true;
  EXPECT_TRUE(fence_flagged);
  // The suggested alternative is the pairwise-synchronized variant.
  bool suggests_pscw = false;
  for (const auto& a : rec.avoid)
    if (a.find("onesided-pscw") != std::string::npos) suggests_pscw = true;
  EXPECT_TRUE(suggests_pscw);
}

TEST(PatternAdvisor, ContentionRescalesTheLargeMessageThreshold) {
  // Under link contention the per-sender wire slows by the contention
  // multiplier, so the §5 large-message advice kicks in at
  // proportionally smaller payloads — but only when the profile
  // actually models contention.
  MachineProfile contended = MachineProfile::skx_impi();
  contended.name = "skx-contended";
  contended.link_contention_factor = 1.0;
  const auto tp = CommPattern::by_name("transpose(4)");  // 3 senders
  const std::size_t bytes = 50'000'000;  // below 1e8, above 1e8/3
  const Layout l = Layout::strided(bytes / 8, 1, 2);

  const auto inert = advise(MachineProfile::skx_impi(), bytes, l, *tp);
  EXPECT_EQ(inert.scheme, "vector type");  // factor 0.0: nothing shifts

  const auto rescaled = advise(contended, bytes, l, *tp);
  EXPECT_EQ(rescaled.scheme, "packing(v)");
  EXPECT_NE(rescaled.rationale.find("concurrent senders"),
            std::string::npos);

  // Small payloads stay below even the rescaled threshold.
  const Layout small = Layout::strided(1 << 14, 1, 2);
  const auto small_rec = advise(contended, 1 << 17, small, *tp);
  EXPECT_EQ(small_rec.scheme, "vector type");
}

TEST(PatternAdvisor, ContiguousStillNeedsNothing) {
  const auto halo = CommPattern::by_name("halo2d(3x3)");
  const auto rec = advise(MachineProfile::skx_impi(), 1 << 20,
                          Layout::contiguous(1 << 17), *halo);
  EXPECT_EQ(rec.scheme, "reference");
  EXPECT_TRUE(rec.avoid.empty());
}

TEST(CollectiveAdvisor, SmallMessagesTreeLargeMessagesRing) {
  // Well below the crossover: latency-bound, logarithmic rounds win
  // (rd at a power-of-two rank count, tree otherwise).
  const auto small =
      advise_collective(MachineProfile::skx_impi(), "allreduce", 1024, 32);
  EXPECT_EQ(small.algorithm, "rd");
  const auto small_odd =
      advise_collective(MachineProfile::skx_impi(), "allreduce", 1024, 24);
  EXPECT_EQ(small_odd.algorithm, "tree");
  // Well past it: bandwidth-bound, the chunked ring wins.
  const auto large = advise_collective(MachineProfile::skx_impi(),
                                       "allreduce", 64 << 20, 32);
  EXPECT_EQ(large.algorithm, "ring");
  EXPECT_GT(small.crossover_bytes, 0u);
  EXPECT_EQ(small.crossover_bytes, large.crossover_bytes);
  // The payload verdict flips exactly at the published crossover.
  EXPECT_EQ(advise_collective(MachineProfile::skx_impi(), "allreduce",
                              large.crossover_bytes, 32)
                .algorithm,
            "ring");
}

TEST(CollectiveAdvisor, CrossoverOrderingSkxVsKnl) {
  // Shape test for the per-profile ordering the sweep exposes: knl's
  // protocol core makes each round's fixed cost (alpha) ~2x skx's while
  // the Omni-Path wire (beta) is identical, so knl must hold on to the
  // latency-optimal tree up to a proportionally *larger* message size
  // than skx — for every op with a genuine crossover.
  for (const char* op : {"allreduce", "bcast", "allgather",
                         "reduce-scatter"}) {
    const auto skx =
        advise_collective(MachineProfile::skx_impi(), op, 1 << 20, 64);
    const auto knl =
        advise_collective(MachineProfile::knl_impi(), op, 1 << 20, 64);
    ASSERT_GT(skx.crossover_bytes, 0u) << op;
    EXPECT_GT(knl.crossover_bytes, skx.crossover_bytes) << op;
  }
  // Same fabric => the ratio is exactly alpha_knl / alpha_skx.
  const auto& skxp = MachineProfile::skx_impi();
  const auto& knlp = MachineProfile::knl_impi();
  const double ratio = (knlp.send_overhead_s + knlp.net_latency_s) /
                       (skxp.send_overhead_s + skxp.net_latency_s);
  const auto s = advise_collective(skxp, "allreduce", 0, 64);
  const auto k = advise_collective(knlp, "allreduce", 0, 64);
  EXPECT_NEAR(static_cast<double>(k.crossover_bytes),
              ratio * static_cast<double>(s.crossover_bytes),
              4.0);  // integer truncation only
}

TEST(CollectiveAdvisor, DegenerateShapesAndJunk) {
  // N=2 allreduce: ring and tree both take 2 rounds but the ring moves
  // half the bytes per round — no crossover to wait for.
  const auto tiny =
      advise_collective(MachineProfile::skx_impi(), "allreduce", 8, 2);
  EXPECT_EQ(tiny.algorithm, "ring");
  EXPECT_EQ(tiny.crossover_bytes, 0u);
  // bcast never maps to rd (the schedule aliases rd bcast to the tree).
  const auto b =
      advise_collective(MachineProfile::skx_impi(), "bcast", 1024, 32);
  EXPECT_EQ(b.algorithm, "tree");
  EXPECT_THROW(
      advise_collective(MachineProfile::skx_impi(), "scan", 1024, 8),
      minimpi::Error);
  EXPECT_THROW(
      advise_collective(MachineProfile::skx_impi(), "allreduce", 1024, 1),
      minimpi::Error);
}

}  // namespace
