// Shape tests: the paper's qualitative findings (F1..F7 in DESIGN.md)
// asserted against small simulated sweeps on every machine profile.
// These are the "does the reproduction reproduce" tests.
#include <gtest/gtest.h>

#include "ncsend/ncsend.hpp"

using namespace ncsend;
using minimpi::MachineProfile;

namespace {

SweepConfig sweep_for(const MachineProfile& p,
                      std::vector<std::size_t> sizes,
                      std::vector<std::string> schemes) {
  SweepConfig cfg;
  cfg.profile = &p;
  cfg.sizes_bytes = std::move(sizes);
  cfg.schemes = std::move(schemes);
  cfg.harness.reps = 5;
  cfg.functional_payload_limit = 1 << 16;  // mostly modeled: fast
  return cfg;
}

class Shapes : public ::testing::TestWithParam<std::string> {
 protected:
  const MachineProfile& profile() const {
    return MachineProfile::by_name(GetParam());
  }
};

INSTANTIATE_TEST_SUITE_P(Clusters, Shapes,
                         ::testing::ValuesIn(MachineProfile::names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST_P(Shapes, F1_IntermediateSchemesTrackCopyingWithinFactorTwo) {
  // Paper §5: below ~1e8 bytes the reasonable schemes (copying, derived
  // types, packing(v)) perform fairly similarly.
  const auto r = run_sweep(sweep_for(
      profile(), {100'000, 1'000'000, 10'000'000},
      {"copying", "vector type", "subarray", "packing(v)"}));
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
    const double copying = r.time(si, 0);
    for (std::size_t ci = 1; ci < r.schemes.size(); ++ci) {
      EXPECT_LT(r.time(si, ci) / copying, 2.0)
          << r.schemes[ci] << " at " << r.sizes_bytes[si];
      EXPECT_GT(r.time(si, ci) / copying, 0.5);
    }
  }
}

TEST_P(Shapes, F1_CopyingSlowdownAboutThreeOrMore) {
  // The factor-3 argument of §2.2 (higher on KNL's weak core).
  const auto r = run_sweep(
      sweep_for(profile(), {10'000'000}, {"reference", "copying"}));
  const double slowdown = r.slowdown(0, 1);
  EXPECT_GT(slowdown, 2.0);
  EXPECT_LT(slowdown, 12.0);
  if (GetParam() == "knl-impi") {
    EXPECT_GT(slowdown, 5.0);
  }
}

TEST_P(Shapes, F2_DerivedTypesDegradeBeyondTensOfMB) {
  // vector type ~= copying at 10 MB, but clearly worse at 1 GB...
  const auto r = run_sweep(sweep_for(profile(), {10'000'000, 1'000'000'000},
                                     {"copying", "vector type",
                                      "packing(v)"}));
  EXPECT_LT(r.time(0, 1) / r.time(0, 0), 1.5);
  EXPECT_GT(r.time(1, 1) / r.time(1, 0), 1.8);
  // ...while packing(v) stays with copying at 1 GB (the winner).
  EXPECT_LT(r.time(1, 2) / r.time(1, 0), 1.2);
}

TEST_P(Shapes, F3_PackingByElementIsMuchWorse) {
  const auto r = run_sweep(
      sweep_for(profile(), {1'000'000}, {"copying", "packing(e)"}));
  EXPECT_GT(r.time(0, 1) / r.time(0, 0), 3.0);
}

TEST_P(Shapes, F3_PackingVectorEqualsCopying) {
  // Paper §4.3: "packing a derived type gives essentially the same
  // performance as manual copying" — everywhere.
  const auto r =
      run_sweep(sweep_for(profile(), {10'000, 1'000'000, 100'000'000},
                          {"copying", "packing(v)"}));
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si)
    EXPECT_NEAR(r.time(si, 1) / r.time(si, 0), 1.0, 0.15)
        << r.sizes_bytes[si];
}

TEST_P(Shapes, F4_BufferedNeverHelps) {
  const auto r = run_sweep(sweep_for(
      profile(), {100'000, 10'000'000, 1'000'000'000},
      {"copying", "buffered"}));
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si)
    EXPECT_GT(r.time(si, 1), r.time(si, 0)) << r.sizes_bytes[si];
}

TEST_P(Shapes, F5_OneSidedSlowForSmall) {
  const auto r =
      run_sweep(sweep_for(profile(), {1'000}, {"reference", "onesided"}));
  EXPECT_GT(r.slowdown(0, 1), 2.0);
}

TEST_P(Shapes, F6_EagerLimitDipOnReference) {
  const auto& p = profile();
  const std::size_t limit = p.eager_limit_bytes;
  const auto r = run_sweep(
      sweep_for(profile(), {limit, limit + 8}, {"reference"}));
  // Per-byte time jumps just above the limit.
  const double per_byte_under = r.time(0, 0) / static_cast<double>(limit);
  const double per_byte_over = r.time(1, 0) / static_cast<double>(limit + 8);
  EXPECT_GT(per_byte_over, per_byte_under * 1.05);
}

TEST_P(Shapes, PeakBandwidthApproachesProfile) {
  // The reference curve must saturate near the profile's fabric rate
  // (the figures' bandwidth panel plateau).
  const auto r =
      run_sweep(sweep_for(profile(), {100'000'000}, {"reference"}));
  const double gbps = r.bandwidth_GBps(0, 0) * 1e9;
  EXPECT_GT(gbps, 0.75 * profile().net_bandwidth_Bps);
  EXPECT_LT(gbps, 1.01 * profile().net_bandwidth_Bps);
}

TEST(ShapesCross, F5_MvapichOneSidedSlowerThanImpi) {
  // Paper §4.4: intermediate one-sided is competitive except MVAPICH2.
  auto run_one = [](const MachineProfile& p) {
    return run_sweep(sweep_for(p, {1'000'000}, {"copying", "onesided"}));
  };
  const auto impi = run_one(MachineProfile::skx_impi());
  const auto mva = run_one(MachineProfile::skx_mvapich2());
  const double impi_ratio = impi.time(0, 1) / impi.time(0, 0);
  const double mva_ratio = mva.time(0, 1) / mva.time(0, 0);
  EXPECT_GT(mva_ratio, impi_ratio * 1.5);
}

TEST(ShapesCross, F5_CrayOneSidedOnParWithDerivedAtLarge) {
  const auto cray = run_sweep(sweep_for(MachineProfile::ls5_cray(),
                                        {1'000'000'000},
                                        {"vector type", "onesided"}));
  EXPECT_NEAR(cray.time(0, 1) / cray.time(0, 0), 1.0, 0.35);
  // ...whereas on Stampede2 one-sided shows a relative degradation.
  const auto impi = run_sweep(sweep_for(MachineProfile::skx_impi(),
                                        {1'000'000'000},
                                        {"vector type", "onesided"}));
  EXPECT_GT(impi.time(0, 1) / impi.time(0, 0),
            cray.time(0, 1) / cray.time(0, 0));
}

TEST(ShapesCross, F7_KnlNoncontigHampered) {
  // Same fabric, weaker core: KNL's copying slowdown far exceeds SKX's.
  auto slowdown_of = [](const MachineProfile& p) {
    const auto r =
        run_sweep(sweep_for(p, {10'000'000}, {"reference", "copying"}));
    return r.slowdown(0, 1);
  };
  EXPECT_GT(slowdown_of(MachineProfile::knl_impi()),
            1.8 * slowdown_of(MachineProfile::skx_impi()));
}

TEST(ShapesCross, EagerOverrideDoesNotChangeLargeMessages) {
  // Paper §4.5: raising the eager limit above the message size "did not
  // appreciably change the results for large messages".
  SweepConfig cfg = sweep_for(MachineProfile::skx_impi(), {1'000'000'000},
                              {"reference", "vector type"});
  const auto normal = run_sweep(cfg);
  cfg.eager_limit_override = std::size_t{4} << 30;
  const auto raised = run_sweep(cfg);
  for (std::size_t ci = 0; ci < 2; ++ci)
    EXPECT_NEAR(raised.time(0, ci) / normal.time(0, ci), 1.0, 0.02);
}

TEST(ShapesCross, NicPipeliningWouldHelpLargeDerivedSends) {
  // Paper §2.3 / ref [2]: with NIC gather support, derived-type sends
  // could pipeline pack and injection.  Flip the capability on.
  MachineProfile umr = MachineProfile::skx_impi();
  umr.nic_gather = true;
  umr.name = "skx-umr";
  SweepConfig base = sweep_for(MachineProfile::skx_impi(),
                               {100'000'000}, {"vector type"});
  SweepConfig piped = sweep_for(umr, {100'000'000}, {"vector type"});
  EXPECT_LT(run_sweep(piped).time(0, 0), run_sweep(base).time(0, 0));
}

}  // namespace
