// Pack/unpack engine tests: walker order, round trips, cursor
// semantics, dry runs, and the gather/scatter staging helpers.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "minimpi/datatype/pack.hpp"

using namespace minimpi;

namespace {

std::vector<double> iota_doubles(std::size_t n) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), 0.0);
  return v;
}

TEST(Walker, ContiguousMergesToOneBlock) {
  const Datatype t = Datatype::contiguous(16, Datatype::float64());
  int calls = 0;
  std::size_t bytes = 0;
  for_each_block(t, 1, [&](std::ptrdiff_t off, std::size_t n) {
    EXPECT_EQ(off, 0);
    bytes += n;
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(bytes, 128u);
}

TEST(Walker, VectorBlocksInTypemapOrder) {
  const Datatype t = Datatype::vector(4, 1, 3, Datatype::float64());
  std::vector<std::ptrdiff_t> offsets;
  for_each_block(t, 1, [&](std::ptrdiff_t off, std::size_t n) {
    EXPECT_EQ(n, 8u);
    offsets.push_back(off);
  });
  EXPECT_EQ(offsets, (std::vector<std::ptrdiff_t>{0, 24, 48, 72}));
}

TEST(Walker, CountReplicationUsesExtent) {
  const Datatype t = Datatype::vector(2, 1, 2, Datatype::float64());
  // extent = 3 doubles = 24 bytes; second element starts there.
  std::vector<std::ptrdiff_t> offsets;
  for_each_block(t, 2, [&](std::ptrdiff_t off, std::size_t) {
    offsets.push_back(off);
  });
  EXPECT_EQ(offsets, (std::vector<std::ptrdiff_t>{0, 16, 24, 40}));
}

TEST(Walker, NegativeStrideDescends) {
  const Datatype t = Datatype::vector(3, 1, -2, Datatype::float64());
  std::vector<std::ptrdiff_t> offsets;
  for_each_block(t, 1, [&](std::ptrdiff_t off, std::size_t) {
    offsets.push_back(off);
  });
  EXPECT_EQ(offsets, (std::vector<std::ptrdiff_t>{0, -16, -32}));
}

TEST(PackSize, IsCountTimesSize) {
  const Datatype t = Datatype::vector(10, 2, 4, Datatype::float64());
  EXPECT_EQ(pack_size(3, t), 3u * 20 * 8);
}

TEST(PackUnpack, VectorRoundTrip) {
  Datatype t = Datatype::vector(8, 1, 2, Datatype::float64());
  t.commit();
  const auto src = iota_doubles(16);
  std::vector<std::byte> packed(pack_size(1, t));
  std::size_t pos = 0;
  pack(src.data(), 1, t, packed.data(), packed.size(), pos);
  EXPECT_EQ(pos, 64u);
  // Packed data should be elements 0,2,4,...
  const auto* packed_d = reinterpret_cast<const double*>(packed.data());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(packed_d[i], 2.0 * i);

  std::vector<double> dst(16, -1.0);
  pos = 0;
  unpack(packed.data(), packed.size(), pos, dst.data(), 1, t);
  for (int i = 0; i < 16; ++i) {
    if (i % 2 == 0) EXPECT_EQ(dst[i], static_cast<double>(i));
    else EXPECT_EQ(dst[i], -1.0);
  }
}

TEST(PackUnpack, PositionCursorAppends) {
  Datatype t = Datatype::float64();
  const double a = 1.5, b = 2.5;
  std::vector<std::byte> buf(16);
  std::size_t pos = 0;
  pack(&a, 1, t, buf.data(), buf.size(), pos);
  EXPECT_EQ(pos, 8u);
  pack(&b, 1, t, buf.data(), buf.size(), pos);
  EXPECT_EQ(pos, 16u);
  double out[2] = {};
  pos = 0;
  unpack(buf.data(), buf.size(), pos, &out[0], 1, t);
  unpack(buf.data(), buf.size(), pos, &out[1], 1, t);
  EXPECT_EQ(out[0], 1.5);
  EXPECT_EQ(out[1], 2.5);
}

TEST(PackUnpack, OverflowThrows) {
  Datatype t = Datatype::float64();
  std::vector<std::byte> buf(8);
  std::size_t pos = 8;
  const double x = 1.0;
  EXPECT_THROW(pack(&x, 1, t, buf.data(), buf.size(), pos), Error);
  pos = 8;
  double y;
  EXPECT_THROW(unpack(buf.data(), buf.size(), pos, &y, 1, t), Error);
}

TEST(PackUnpack, UncommittedThrows) {
  Datatype t = Datatype::vector(2, 1, 2, Datatype::float64());  // no commit
  std::vector<std::byte> buf(64);
  std::size_t pos = 0;
  const auto src = iota_doubles(4);
  EXPECT_THROW(pack(src.data(), 1, t, buf.data(), buf.size(), pos), Error);
}

TEST(PackUnpack, DryRunAdvancesCursorOnly) {
  Datatype t = Datatype::vector(8, 1, 2, Datatype::float64());
  t.commit();
  std::size_t pos = 0;
  pack(nullptr, 1, t, nullptr, 1 << 20, pos);
  EXPECT_EQ(pos, 64u);
  pos = 0;
  unpack(nullptr, 1 << 20, pos, nullptr, 1, t);
  EXPECT_EQ(pos, 64u);
}

TEST(PackUnpack, SubarrayRoundTrip) {
  const std::size_t sizes[] = {5, 7};
  const std::size_t sub[] = {3, 2};
  const std::size_t starts[] = {1, 4};
  Datatype t = Datatype::subarray(sizes, sub, starts, Datatype::float64());
  t.commit();
  const auto src = iota_doubles(35);
  std::vector<std::byte> packed(pack_size(1, t));
  std::size_t pos = 0;
  pack(src.data(), 1, t, packed.data(), packed.size(), pos);
  const auto* pd = reinterpret_cast<const double*>(packed.data());
  // Rows 1..3, cols 4..5 of the 5x7 array.
  std::size_t k = 0;
  for (std::size_t r = 1; r <= 3; ++r)
    for (std::size_t c = 4; c <= 5; ++c)
      EXPECT_EQ(pd[k++], static_cast<double>(r * 7 + c));

  std::vector<double> dst(35, 0.0);
  pos = 0;
  unpack(packed.data(), packed.size(), pos, dst.data(), 1, t);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 7; ++c) {
      const bool inside = r >= 1 && r <= 3 && c >= 4 && c <= 5;
      EXPECT_EQ(dst[r * 7 + c], inside ? static_cast<double>(r * 7 + c) : 0.0);
    }
}

TEST(PackUnpack, StructRoundTrip) {
  struct Particle {
    std::int32_t id;
    std::int32_t kind;
    double x, y;
  };
  const std::size_t bl[] = {2, 2};
  const std::ptrdiff_t dis[] = {0, 8};
  const Datatype fields[] = {Datatype::int32(), Datatype::float64()};
  Datatype t = Datatype::struct_(bl, dis, fields);
  t = Datatype::resized(t, 0, sizeof(Particle));
  t.commit();
  EXPECT_EQ(t.size(), sizeof(Particle));

  std::vector<Particle> ps(4);
  for (int i = 0; i < 4; ++i)
    ps[static_cast<std::size_t>(i)] = {i, 10 + i, i * 1.5, i * 2.5};
  std::vector<std::byte> packed(pack_size(4, t));
  std::size_t pos = 0;
  pack(ps.data(), 4, t, packed.data(), packed.size(), pos);

  std::vector<Particle> out(4);
  pos = 0;
  unpack(packed.data(), packed.size(), pos, out.data(), 4, t);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].id, i);
    EXPECT_EQ(out[static_cast<std::size_t>(i)].kind, 10 + i);
    EXPECT_EQ(out[static_cast<std::size_t>(i)].x, i * 1.5);
    EXPECT_EQ(out[static_cast<std::size_t>(i)].y, i * 2.5);
  }
}

TEST(GatherScatter, InverseOfEachOther) {
  Datatype t = Datatype::vector(6, 2, 5, Datatype::float64());
  t.commit();
  const auto src = iota_doubles(30);
  std::vector<double> staged(12);
  gather(src.data(), 1, t, staged.data());
  std::vector<double> back(30, -7.0);
  scatter(staged.data(), back.data(), 1, t);
  for (std::size_t i = 0; i < 30; ++i) {
    const bool in_layout = (i % 5) < 2 && i / 5 < 6;
    EXPECT_EQ(back[i], in_layout ? src[i] : -7.0) << "i=" << i;
  }
}

TEST(TypedEqualAndCopy, RespectLayoutOnly) {
  Datatype t = Datatype::vector(4, 1, 2, Datatype::float64());
  t.commit();
  auto a = iota_doubles(8);
  auto b = iota_doubles(8);
  b[1] = 99.0;  // a gap element: not part of the layout
  EXPECT_TRUE(typed_equal(a.data(), b.data(), 1, t));
  b[2] = -1.0;  // a layout element
  EXPECT_FALSE(typed_equal(a.data(), b.data(), 1, t));
  typed_copy(b.data(), a.data(), 1, t);
  EXPECT_TRUE(typed_equal(a.data(), b.data(), 1, t));
  EXPECT_EQ(b[1], 99.0);  // gaps untouched by typed_copy
}

TEST(GatherScatter, NullPointersAreNoops) {
  Datatype t = Datatype::float64();
  gather(nullptr, 1, t, nullptr);
  scatter(nullptr, nullptr, 1, t);
  typed_copy(nullptr, nullptr, 1, t);
  EXPECT_TRUE(typed_equal(nullptr, nullptr, 1, t));
  double x = 0;
  EXPECT_FALSE(typed_equal(&x, nullptr, 1, t));
}

}  // namespace
