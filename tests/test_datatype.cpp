// Unit tests for the derived-datatype engine: constructor geometry
// (size / extent / bounds), density detection, and block statistics.
#include <gtest/gtest.h>

#include "minimpi/datatype/datatype.hpp"
#include "minimpi/datatype/pack.hpp"

using namespace minimpi;

namespace {

Datatype f64() { return Datatype::float64(); }

TEST(BasicTypes, SizesMatchC) {
  EXPECT_EQ(Datatype::byte().size(), 1u);
  EXPECT_EQ(Datatype::int32().size(), 4u);
  EXPECT_EQ(Datatype::int64().size(), 8u);
  EXPECT_EQ(Datatype::float32().size(), 4u);
  EXPECT_EQ(Datatype::float64().size(), 8u);
  EXPECT_EQ(Datatype::packed().size(), 1u);
}

TEST(BasicTypes, ArePrecommittedAndDense) {
  const Datatype d = f64();
  EXPECT_TRUE(d.committed());
  EXPECT_TRUE(d.is_single_block());
  EXPECT_EQ(d.extent(), 8u);
  EXPECT_EQ(d.true_extent(), 8u);
  EXPECT_EQ(d.lb(), 0);
  EXPECT_EQ(d.block_stats().block_count, 1u);
}

TEST(Contiguous, Geometry) {
  const Datatype t = Datatype::contiguous(10, f64());
  EXPECT_EQ(t.size(), 80u);
  EXPECT_EQ(t.extent(), 80u);
  EXPECT_TRUE(t.is_single_block());
  EXPECT_EQ(t.block_stats().block_count, 1u);
  EXPECT_FALSE(t.committed());  // derived types need commit
}

TEST(Contiguous, ZeroCountIsEmpty) {
  const Datatype t = Datatype::contiguous(0, f64());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.extent(), 0u);
  EXPECT_TRUE(t.is_single_block());
  EXPECT_EQ(t.block_stats().block_count, 0u);
}

TEST(Contiguous, OfContiguousStaysDense) {
  const Datatype t = Datatype::contiguous(4, Datatype::contiguous(5, f64()));
  EXPECT_EQ(t.size(), 160u);
  EXPECT_TRUE(t.is_single_block());
}

TEST(Vector, CanonicalStride2) {
  // The paper's layout: every other double.
  const Datatype t = Datatype::vector(100, 1, 2, f64());
  EXPECT_EQ(t.size(), 800u);
  EXPECT_EQ(t.lb(), 0);
  // Last block starts at element 99*2, is 1 double long.
  EXPECT_EQ(t.ub(), static_cast<std::ptrdiff_t>((99 * 2 + 1) * 8));
  EXPECT_EQ(t.extent(), (99u * 2 + 1) * 8);
  EXPECT_FALSE(t.is_single_block());
  const BlockStats& s = t.block_stats();
  EXPECT_EQ(s.block_count, 100u);
  EXPECT_EQ(s.min_block, 8u);
  EXPECT_EQ(s.max_block, 8u);
  EXPECT_EQ(s.total_bytes, 800u);
}

TEST(Vector, StrideEqualsBlocklenIsDense) {
  const Datatype t = Datatype::vector(10, 3, 3, f64());
  EXPECT_EQ(t.size(), 240u);
  EXPECT_TRUE(t.is_single_block());
  EXPECT_EQ(t.block_stats().block_count, 1u);
}

TEST(Vector, BlockLengthGrouping) {
  const Datatype t = Datatype::vector(8, 4, 16, f64());
  EXPECT_EQ(t.size(), 8u * 4 * 8);
  const BlockStats& s = t.block_stats();
  EXPECT_EQ(s.block_count, 8u);  // blocks of 4 doubles merge
  EXPECT_EQ(s.min_block, 32u);
}

TEST(Vector, NegativeStride) {
  const Datatype t = Datatype::vector(4, 1, -2, f64());
  EXPECT_EQ(t.size(), 32u);
  EXPECT_EQ(t.lb(), static_cast<std::ptrdiff_t>(-3 * 2 * 8));
  EXPECT_EQ(t.ub(), 8);
  EXPECT_FALSE(t.is_single_block());
}

TEST(Vector, SingleCountIsChildGeometry) {
  const Datatype t = Datatype::vector(1, 5, 100, f64());
  EXPECT_EQ(t.size(), 40u);
  EXPECT_TRUE(t.is_single_block());
}

TEST(Hvector, ByteStride) {
  const Datatype t = Datatype::hvector(3, 2, 100, f64());
  EXPECT_EQ(t.size(), 48u);
  EXPECT_EQ(t.extent(), 2u * 100 + 16);
  EXPECT_EQ(t.block_stats().block_count, 3u);
}

TEST(Indexed, IrregularBlocks) {
  const std::size_t bl[] = {2, 1, 3};
  const std::ptrdiff_t dis[] = {0, 5, 10};
  const Datatype t = Datatype::indexed(bl, dis, f64());
  EXPECT_EQ(t.size(), 6u * 8);
  EXPECT_EQ(t.lb(), 0);
  EXPECT_EQ(t.ub(), static_cast<std::ptrdiff_t>((10 + 3) * 8));
  const BlockStats& s = t.block_stats();
  EXPECT_EQ(s.block_count, 3u);
  EXPECT_EQ(s.min_block, 8u);
  EXPECT_EQ(s.max_block, 24u);
}

TEST(Indexed, AdjacentBlocksDetectedDense) {
  // Blocks [0,2) and [2,5) and [5,6) tile a contiguous range.
  const std::size_t bl[] = {2, 3, 1};
  const std::ptrdiff_t dis[] = {0, 2, 5};
  const Datatype t = Datatype::indexed(bl, dis, f64());
  EXPECT_TRUE(t.is_single_block());
  EXPECT_EQ(t.block_stats().block_count, 1u);
}

TEST(Indexed, OutOfOrderBlocksNotDense) {
  // Same bytes, but typemap order differs from address order.
  const std::size_t bl[] = {3, 2};
  const std::ptrdiff_t dis[] = {2, 0};
  const Datatype t = Datatype::indexed(bl, dis, f64());
  EXPECT_FALSE(t.is_single_block());
  EXPECT_EQ(t.size(), 40u);
}

TEST(Indexed, EmptyBlockListIsEmptyType) {
  const Datatype t =
      Datatype::indexed(std::span<const std::size_t>{},
                        std::span<const std::ptrdiff_t>{}, f64());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.extent(), 0u);
}

TEST(Indexed, MismatchedArraysThrow) {
  const std::size_t bl[] = {1, 2};
  const std::ptrdiff_t dis[] = {0};
  EXPECT_THROW((void)Datatype::indexed(bl, dis, f64()), Error);
}

TEST(IndexedBlock, FixedBlockLength) {
  const std::ptrdiff_t dis[] = {0, 4, 8, 12};
  const Datatype t = Datatype::indexed_block(2, dis, f64());
  EXPECT_EQ(t.size(), 8u * 8);
  EXPECT_EQ(t.block_stats().block_count, 4u);
}

TEST(Subarray, Face2D) {
  // 4x6 array of doubles, 2x3 face at (1,2).
  const std::size_t sizes[] = {4, 6};
  const std::size_t sub[] = {2, 3};
  const std::size_t starts[] = {1, 2};
  const Datatype t = Datatype::subarray(sizes, sub, starts, f64());
  EXPECT_EQ(t.size(), 6u * 8);
  // MPI semantics: extent spans the whole array so elements tile it.
  EXPECT_EQ(t.extent(), 4u * 6 * 8);
  EXPECT_EQ(t.lb(), 0);
  const BlockStats& s = t.block_stats();
  EXPECT_EQ(s.block_count, 2u);  // two rows of 3 contiguous doubles
  EXPECT_EQ(s.min_block, 24u);
}

TEST(Subarray, FullArrayIsDense) {
  const std::size_t sizes[] = {4, 6};
  const std::size_t sub[] = {4, 6};
  const std::size_t starts[] = {0, 0};
  const Datatype t = Datatype::subarray(sizes, sub, starts, f64());
  EXPECT_EQ(t.size(), 24u * 8);
  EXPECT_TRUE(t.is_single_block());
}

TEST(Subarray, FortranOrderMatchesTransposedC) {
  // Fortran (col-major) sizes (6,4) sub (3,2) start (2,1) describes the
  // same bytes as C (4,6)/(2,3)/(1,2).
  const std::size_t csz[] = {4, 6}, csub[] = {2, 3}, cst[] = {1, 2};
  const std::size_t fsz[] = {6, 4}, fsub[] = {3, 2}, fst[] = {2, 1};
  const Datatype c = Datatype::subarray(csz, csub, cst, f64());
  const Datatype f = Datatype::subarray(fsz, fsub, fst, f64(),
                                        StorageOrder::fortran);
  EXPECT_EQ(c.size(), f.size());
  EXPECT_EQ(c.extent(), f.extent());
  EXPECT_EQ(c.block_stats().block_count, f.block_stats().block_count);
}

TEST(Subarray, ThreeDimensional) {
  const std::size_t sizes[] = {4, 4, 4};
  const std::size_t sub[] = {2, 2, 2};
  const std::size_t starts[] = {1, 1, 1};
  const Datatype t = Datatype::subarray(sizes, sub, starts, f64());
  EXPECT_EQ(t.size(), 8u * 8);
  EXPECT_EQ(t.extent(), 64u * 8);
  EXPECT_EQ(t.block_stats().block_count, 4u);  // 2x2 rows of 2 doubles
}

TEST(Subarray, InvalidRangesThrow) {
  const std::size_t sizes[] = {4, 4};
  const std::size_t sub[] = {2, 5};
  const std::size_t starts[] = {0, 0};
  EXPECT_THROW((void)Datatype::subarray(sizes, sub, starts, f64()), Error);
  const std::size_t sub2[] = {2, 2};
  const std::size_t starts2[] = {3, 0};
  EXPECT_THROW((void)Datatype::subarray(sizes, sub2, starts2, f64()), Error);
}

TEST(Struct, Heterogeneous) {
  // {int32 a[2]; double b; } with natural offsets 0 and 8.
  const std::size_t bl[] = {2, 1};
  const std::ptrdiff_t dis[] = {0, 8};
  const Datatype types[] = {Datatype::int32(), Datatype::float64()};
  const Datatype t = Datatype::struct_(bl, dis, types);
  EXPECT_EQ(t.size(), 16u);
  EXPECT_TRUE(t.is_single_block());  // 8 bytes of ints then 8 of double
  EXPECT_EQ(t.extent(), 16u);
}

TEST(Struct, WithHoles) {
  const std::size_t bl[] = {1, 1};
  const std::ptrdiff_t dis[] = {0, 16};
  const Datatype types[] = {Datatype::int32(), Datatype::float64()};
  const Datatype t = Datatype::struct_(bl, dis, types);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.extent(), 24u);
  EXPECT_FALSE(t.is_single_block());
  EXPECT_EQ(t.block_stats().block_count, 2u);
}

TEST(Resized, OverridesExtentOnly) {
  const Datatype v = Datatype::vector(4, 1, 2, f64());
  const Datatype t = Datatype::resized(v, -8, 128);
  EXPECT_EQ(t.size(), v.size());
  EXPECT_EQ(t.lb(), -8);
  EXPECT_EQ(t.extent(), 128u);
  EXPECT_EQ(t.true_lb(), v.true_lb());
  EXPECT_EQ(t.true_extent(), v.true_extent());
  EXPECT_EQ(t.block_stats().block_count, v.block_stats().block_count);
}

TEST(Commit, RequiredForUse) {
  Datatype t = Datatype::vector(4, 1, 2, f64());
  EXPECT_FALSE(t.committed());
  t.commit();
  EXPECT_TRUE(t.committed());
  // Dup preserves commit state.
  EXPECT_TRUE(t.dup().committed());
}

TEST(Commit, InvalidDatatypeThrows) {
  Datatype t;
  EXPECT_FALSE(t.valid());
  EXPECT_THROW(t.commit(), Error);
  EXPECT_THROW((void)t.size(), Error);
}

TEST(NestedTypes, VectorOfVectors) {
  // Vector of vectors: 3 groups, each = every other double out of 8.
  const Datatype inner = Datatype::vector(4, 1, 2, f64());
  const Datatype outer = Datatype::hvector(
      3, 1, static_cast<std::ptrdiff_t>(inner.extent()) + 8, inner);
  EXPECT_EQ(outer.size(), 3u * 32);
  EXPECT_EQ(outer.block_stats().block_count, 12u);
}

TEST(MessageStatsHelper, CountReplication) {
  const Datatype v = Datatype::vector(10, 1, 2, f64());
  // one element: 10 blocks; five elements: 50 blocks.
  // (declared in comm.hpp; exercised here for geometry only)
  EXPECT_EQ(v.block_stats().block_count, 10u);
}

TEST(Describe, MentionsStructure) {
  const Datatype t = Datatype::vector(4, 2, 8, f64());
  const std::string d = t.describe();
  EXPECT_NE(d.find("hvector"), std::string::npos);
  EXPECT_NE(d.find("double"), std::string::npos);
}

}  // namespace
