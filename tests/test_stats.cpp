// Timing statistics and the paper's 1-sigma outlier rule.
#include <gtest/gtest.h>

#include <vector>

#include "ncsend/stats.hpp"

using ncsend::summarize;

namespace {

TEST(Stats, EmptyIsZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.samples, 0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SingleSample) {
  const std::vector<double> v{3.0};
  const auto s = summarize(v);
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 3.0);
  EXPECT_EQ(s.max, 3.0);
  EXPECT_EQ(s.rejected, 0);
}

TEST(Stats, IdenticalSamplesKeepAll) {
  const std::vector<double> v(20, 1.5);
  const auto s = summarize(v);
  EXPECT_EQ(s.mean, 1.5);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.rejected, 0);
  EXPECT_EQ(s.samples, 20);
}

TEST(Stats, OutlierBeyondOneSigmaDropped) {
  // 19 samples at 1.0 and one at 100: the spike is > 1 sigma away.
  std::vector<double> v(19, 1.0);
  v.push_back(100.0);
  const auto s = summarize(v);
  EXPECT_EQ(s.rejected, 1);
  EXPECT_NEAR(s.mean, 1.0, 1e-12);
  EXPECT_EQ(s.max, 100.0);
}

TEST(Stats, SymmetricSpreadKeepsCore) {
  // mean 2, sigma ~0.8: 1.0 and 3.0 are beyond 1 sigma.
  const std::vector<double> v{1.0, 2.0, 2.0, 2.0, 2.0, 2.0, 3.0};
  const auto s = summarize(v);
  EXPECT_EQ(s.rejected, 2);
  EXPECT_NEAR(s.mean, 2.0, 1e-12);
}

TEST(Stats, MinMaxOverAllSamples) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  const auto s = summarize(v);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.samples, 3);
}

}  // namespace
