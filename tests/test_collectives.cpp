// Collectives: barrier clock fusion, bcast data movement, reductions.
#include <gtest/gtest.h>

#include <numeric>

#include "minimpi/minimpi.hpp"

using namespace minimpi;

namespace {

TEST(Barrier, FusesClocksToMax) {
  UniverseOptions o;
  o.nranks = 4;
  o.wtime_resolution = 0.0;
  Universe::run(o, [](Comm& c) {
    c.charge(static_cast<double>(c.rank()));  // rank r arrives at time r
    c.barrier();
    EXPECT_GE(c.clock(), 3.0);  // everyone leaves at >= the max
    const double after = c.clock();
    // All ranks have the same clock after a barrier: verify via a
    // reduction of the clock value itself.
    const double maxc = c.allreduce(after, ReduceOp::max);
    const double minc = c.allreduce(after, ReduceOp::min);
    EXPECT_EQ(maxc, minc);
  });
}

TEST(Barrier, CostsTime) {
  UniverseOptions o;
  o.nranks = 2;
  o.wtime_resolution = 0.0;
  Universe::run(o, [](Comm& c) {
    const double t0 = c.clock();
    c.barrier();
    EXPECT_GT(c.clock(), t0);
  });
}

TEST(Bcast, RootDataReachesEveryone) {
  UniverseOptions o;
  o.nranks = 4;
  Universe::run(o, [](Comm& c) {
    std::vector<double> data(32, c.rank() == 2 ? 7.5 : 0.0);
    c.bcast(data.data(), data.size(), Datatype::float64(), 2);
    for (const double v : data) EXPECT_EQ(v, 7.5);
  });
}

TEST(Bcast, WorksWithDerivedTypes) {
  UniverseOptions o;
  o.nranks = 3;
  Universe::run(o, [](Comm& c) {
    Datatype vec = Datatype::vector(4, 1, 2, Datatype::float64());
    vec.commit();
    std::vector<double> data(8, 0.0);
    if (c.rank() == 0)
      for (int i = 0; i < 8; i += 2) data[i] = i + 1.0;
    c.bcast(data.data(), 1, vec, 0);
    for (int i = 0; i < 8; ++i)
      EXPECT_EQ(data[i], i % 2 == 0 ? i + 1.0 : 0.0);
  });
}

TEST(Reduce, SumAtRootOnly) {
  UniverseOptions o;
  o.nranks = 4;
  Universe::run(o, [](Comm& c) {
    const double r = c.reduce(c.rank() + 1.0, ReduceOp::sum, 0);
    if (c.rank() == 0) {
      EXPECT_EQ(r, 10.0);
    }
  });
}

TEST(Allreduce, MinMaxSumEverywhere) {
  UniverseOptions o;
  o.nranks = 4;
  Universe::run(o, [](Comm& c) {
    EXPECT_EQ(c.allreduce(c.rank() + 1.0, ReduceOp::sum), 10.0);
    EXPECT_EQ(c.allreduce(c.rank() + 1.0, ReduceOp::min), 1.0);
    EXPECT_EQ(c.allreduce(c.rank() + 1.0, ReduceOp::max), 4.0);
  });
}

TEST(Gather, RootCollectsInRankOrder) {
  UniverseOptions o;
  o.nranks = 4;
  Universe::run(o, [](Comm& c) {
    auto v = c.gather(c.rank() * 2.0, 1);
    if (c.rank() == 1) {
      ASSERT_EQ(v.size(), 4u);
      for (int r = 0; r < 4; ++r) EXPECT_EQ(v[static_cast<std::size_t>(r)], 2.0 * r);
    } else {
      EXPECT_TRUE(v.empty());
    }
  });
}

TEST(Collectives, RepeatedUseIsSafe) {
  UniverseOptions o;
  o.nranks = 3;
  Universe::run(o, [](Comm& c) {
    double total = 0.0;
    for (int i = 0; i < 50; ++i)
      total += c.allreduce(1.0, ReduceOp::sum);
    EXPECT_EQ(total, 150.0);
  });
}

TEST(Collectives, MixWithP2P) {
  UniverseOptions o;
  o.nranks = 2;
  Universe::run(o, [](Comm& c) {
    for (int i = 0; i < 5; ++i) {
      double v = 0.0;
      if (c.rank() == 0) {
        v = i;
        c.send(&v, 1, Datatype::float64(), 1, 0);
      } else {
        c.recv(&v, 1, Datatype::float64(), 0, 0);
      }
      const double s = c.allreduce(v, ReduceOp::sum);
      EXPECT_EQ(s, 2.0 * i);
      c.barrier();
    }
  });
}

}  // namespace
