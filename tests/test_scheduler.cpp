// The cooperative rank scheduler: capacity limits, high-rank-count
// universes, deadlock detection, and error propagation while peers are
// parked — the behaviours thread-per-rank execution never had to
// define.
#include <gtest/gtest.h>

#include <vector>

#include "minimpi/base/coop.hpp"
#include "minimpi/minimpi.hpp"

using namespace minimpi;

namespace {

TEST(Scheduler, RankCountAboveCapacityIsTypedResourceError) {
  UniverseOptions o;
  o.nranks = coop::Scheduler::max_tasks() + 1;
  try {
    Universe::run(o, [](Comm&) {});
    FAIL() << "expected MM_ERR_RESOURCE";
  } catch (const Error& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::resource);
    EXPECT_NE(std::string(e.what()).find("MM_ERR_RESOURCE"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("capacity"), std::string::npos);
  }
}

TEST(Scheduler, TwoThousandRankUniverseRunsOnOneCarrier) {
  // A ring exchange over 2048 fibers: far beyond what thread-per-rank
  // could spawn comfortably, small enough to stay a fast unit test.
  UniverseOptions o;
  o.nranks = 2048;
  o.functional = true;
  double fused = 0.0;
  Universe::run(o, [&](Comm& c) {
    const Rank right = (c.rank() + 1) % c.size();
    const Rank left = (c.rank() + c.size() - 1) % c.size();
    const double payload = c.rank();
    double got = -1.0;
    Request rr = c.irecv(&got, 1, Datatype::float64(), left, 7);
    c.send(&payload, 1, Datatype::float64(), right, 7);
    rr.wait();
    EXPECT_EQ(got, static_cast<double>(left));
    const double sum = c.allreduce(1.0, ReduceOp::sum);
    if (c.rank() == 0) fused = sum;
  });
  EXPECT_EQ(fused, 2048.0);
}

TEST(Scheduler, CyclicBlockingReportsDeadlockNotHang) {
  // Both ranks post a blocking receive nothing will ever match.  Under
  // OS threads this hung forever; the scheduler must cancel the parked
  // fibers and surface a typed MM_ERR_DEADLOCK.
  UniverseOptions o;
  o.nranks = 2;
  try {
    Universe::run(o, [](Comm& c) {
      double v = 0.0;
      c.recv(&v, 1, Datatype::float64(), 1 - c.rank(), 5);
    });
    FAIL() << "expected MM_ERR_DEADLOCK";
  } catch (const Error& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::deadlock);
  }
}

TEST(Scheduler, RendezvousCycleReportsDeadlock) {
  // Two blocking rendezvous sends at each other: the classic unsafe
  // MPI program.  Each sender parks on its ack; no receiver ever runs.
  UniverseOptions o;
  o.nranks = 2;
  o.eager_limit_override = std::size_t{0};  // force rendezvous
  std::vector<double> buf(1024, 1.0);
  try {
    Universe::run(o, [&](Comm& c) {
      c.send(buf.data(), buf.size(), Datatype::float64(), 1 - c.rank(), 5);
    });
    FAIL() << "expected MM_ERR_DEADLOCK";
  } catch (const Error& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::deadlock);
  }
}

TEST(Scheduler, RankErrorPropagatesWhilePeerIsParked) {
  // Rank 1 throws while rank 0 is blocked waiting for it.  The real
  // error must come out of Universe::run — not the induced deadlock of
  // the now-unmatchable receive.
  UniverseOptions o;
  o.nranks = 2;
  try {
    Universe::run(o, [](Comm& c) {
      if (c.rank() == 1)
        throw Error(ErrorClass::truncate, "synthetic rank failure");
      double v = 0.0;
      c.recv(&v, 1, Datatype::float64(), 1, 5);
    });
    FAIL() << "expected the rank's own error";
  } catch (const Error& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::truncate);
  }
}

TEST(Scheduler, BlockedFiberStacksUnwindOnDeadlock) {
  // Destructors on a cancelled fiber's stack must run: the scheduler
  // cancels via a thrown exception, not by abandoning the stack.
  struct Tripwire {
    int* counter;
    ~Tripwire() { ++*counter; }
  };
  static int unwound = 0;
  unwound = 0;
  UniverseOptions o;
  o.nranks = 2;
  try {
    Universe::run(o, [](Comm& c) {
      Tripwire t{&unwound};
      double v = 0.0;
      c.recv(&v, 1, Datatype::float64(), 1 - c.rank(), 5);
    });
    FAIL() << "expected MM_ERR_DEADLOCK";
  } catch (const Error& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::deadlock);
  }
  EXPECT_EQ(unwound, 2);
}

TEST(Scheduler, VirtualClocksMatchThreadEraValues) {
  // The substitution argument in practice: a 4-rank pattern cell's
  // virtual timing is a pure function of the model, so the fiber
  // scheduler must reproduce it deterministically run over run.
  const auto measure = [] {
    UniverseOptions o;
    o.nranks = 4;
    double t = 0.0;
    Universe::run(o, [&](Comm& c) {
      double v = c.rank();
      for (int rep = 0; rep < 3; ++rep) {
        const Rank peer = c.rank() ^ 1;
        c.sendrecv(&v, 1, Datatype::float64(), peer, 2, &v, 1,
                   Datatype::float64(), peer, 2);
        c.barrier();
      }
      if (c.rank() == 0) t = c.wtime();
    });
    return t;
  };
  const double first = measure();
  EXPECT_GT(first, 0.0);
  EXPECT_EQ(first, measure());
}

}  // namespace
