// Send modes (bsend/ssend/isend/irecv/probe) and the functional-vs-
// modeled payload invariant.
#include <gtest/gtest.h>

#include <numeric>

#include "minimpi/minimpi.hpp"

using namespace minimpi;

namespace {

UniverseOptions two_ranks() {
  UniverseOptions o;
  o.nranks = 2;
  o.wtime_resolution = 0.0;
  return o;
}

TEST(Bsend, RequiresAttachedBuffer) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    const double x = 1.0;
    try {
      c.bsend(&x, 1, Datatype::float64(), 0, 0);
      FAIL() << "expected buffer error";
    } catch (const Error& e) {
      EXPECT_EQ(e.error_class(), ErrorClass::buffer);
    }
  });
}

TEST(Bsend, DeliversThroughAttachedBuffer) {
  Universe::run(two_ranks(), [](Comm& c) {
    if (c.rank() == 0) {
      auto attach = Buffer::allocate(4096);
      c.buffer_attach(attach);
      std::vector<double> data(16);
      std::iota(data.begin(), data.end(), 0.0);
      c.bsend(data.data(), 16, Datatype::float64(), 1, 3);
      c.buffer_detach();  // blocks until drained
      EXPECT_GT(c.bsend_high_water(), 16u * 8);
    } else {
      std::vector<double> in(16);
      c.recv(in.data(), 16, Datatype::float64(), 0, 3);
      EXPECT_EQ(in[15], 15.0);
    }
  });
}

TEST(Bsend, ExhaustionThrows) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    auto attach = Buffer::allocate(128);  // one small message only
    c.buffer_attach(attach);
    std::vector<double> data(8);
    c.bsend(data.data(), 8, Datatype::float64(), 0, 0);
    try {
      c.bsend(data.data(), 8, Datatype::float64(), 0, 0);
      FAIL() << "expected exhaustion";
    } catch (const Error& e) {
      EXPECT_EQ(e.error_class(), ErrorClass::buffer);
    }
    // Draining the first message frees space again.
    std::vector<double> in(8);
    c.recv(in.data(), 8, Datatype::float64(), 0, 0);
    c.bsend(data.data(), 8, Datatype::float64(), 0, 0);
    c.recv(in.data(), 8, Datatype::float64(), 0, 0);
    c.buffer_detach();
  });
}

TEST(Bsend, DoubleAttachThrows) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    auto b1 = Buffer::allocate(1024);
    c.buffer_attach(b1);
    auto b2 = Buffer::allocate(1024);
    EXPECT_THROW(c.buffer_attach(b2), Error);
    c.buffer_detach();
    EXPECT_THROW(c.buffer_detach(), Error);
  });
}

TEST(Bsend, SlowerThanStandardSend) {
  // The modeled reason buffered sends never help (paper §4.2).
  auto elapsed = [](bool buffered) {
    double dt = 0.0;
    UniverseOptions o;
    o.nranks = 2;
    o.wtime_resolution = 0.0;
    Universe::run(o, [&](Comm& c) {
      std::vector<double> buf(512);
      if (c.rank() == 0) {
        auto attach = Buffer::allocate(1 << 16);
        if (buffered) c.buffer_attach(attach);
        const double t0 = c.clock();
        if (buffered)
          c.bsend(buf.data(), buf.size(), Datatype::float64(), 1, 0);
        else
          c.send(buf.data(), buf.size(), Datatype::float64(), 1, 0);
        c.recv(nullptr, 0, Datatype::byte(), 1, 1);
        dt = c.clock() - t0;
        if (buffered) c.buffer_detach();
      } else {
        c.recv(buf.data(), buf.size(), Datatype::float64(), 0, 0);
        c.send(nullptr, 0, Datatype::byte(), 0, 1);
      }
    });
    return dt;
  };
  EXPECT_GT(elapsed(true), elapsed(false));
}

TEST(Ssend, CompletesOnlyAfterMatch) {
  Universe::run(two_ranks(), [](Comm& c) {
    if (c.rank() == 0) {
      const double x = 42.0;
      c.ssend(&x, 1, Datatype::float64(), 1, 0);
      // Receiver posted at virtual time >= 1.0; synchronous completion
      // cannot happen before that.
      EXPECT_GT(c.clock(), 1.0);
    } else {
      c.charge(1.0);  // receiver arrives late
      double x = 0.0;
      c.recv(&x, 1, Datatype::float64(), 0, 0);
      EXPECT_EQ(x, 42.0);
    }
  });
}

TEST(IsendIrecv, OverlapAndCompletion) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> out(256, c.rank() + 0.5);
    std::vector<double> in(256);
    const Rank peer = 1 - c.rank();
    Request r = c.irecv(in.data(), in.size(), Datatype::float64(), peer, 0);
    Request s = c.isend(out.data(), out.size(), Datatype::float64(), peer, 0);
    Status st = r.wait();
    s.wait();
    EXPECT_EQ(st.source, peer);
    EXPECT_EQ(in[0], peer + 0.5);
  });
}

TEST(IsendIrecv, TestPollsWithoutBlocking) {
  Universe::run(two_ranks(), [](Comm& c) {
    if (c.rank() == 0) {
      double x = 7.0;
      c.send(&x, 1, Datatype::float64(), 1, 0);
      c.recv(nullptr, 0, Datatype::byte(), 1, 1);  // ack
    } else {
      double x = 0.0;
      Request r = c.irecv(&x, 1, Datatype::float64(), 0, 0);
      Status st;
      while (!r.test(&st)) {
      }
      EXPECT_EQ(x, 7.0);
      EXPECT_EQ(st.count_bytes, 8u);
      c.send(nullptr, 0, Datatype::byte(), 0, 1);
    }
  });
}

TEST(IsendIrecv, WaitIsIdempotent) {
  Universe::run(two_ranks(), [](Comm& c) {
    if (c.rank() == 0) {
      double x = 1.0;
      Request s = c.isend(&x, 1, Datatype::float64(), 1, 0);
      s.wait();
      s.wait();  // second wait must be a no-op
    } else {
      double x = 0.0;
      Request r = c.irecv(&x, 1, Datatype::float64(), 0, 0);
      EXPECT_EQ(r.wait().count_bytes, 8u);
      EXPECT_EQ(r.wait().count_bytes, 8u);
    }
  });
}

TEST(Probe, ReportsSizeWithoutConsuming) {
  Universe::run(two_ranks(), [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> data(32, 1.0);
      c.send(data.data(), 32, Datatype::float64(), 1, 9);
    } else {
      Status st = c.probe(0, 9);
      EXPECT_EQ(st.count_bytes, 32u * 8);
      // Message still there: allocate exactly and receive.
      std::vector<double> in(st.count(sizeof(double)));
      c.recv(in.data(), in.size(), Datatype::float64(), 0, 9);
      EXPECT_EQ(in[31], 1.0);
    }
  });
}

TEST(Iprobe, NullWhenNothingPending) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    EXPECT_FALSE(c.iprobe(any_source, any_tag).has_value());
    const double x = 2.0;
    c.send(&x, 1, Datatype::float64(), 0, 4);
    auto st = c.iprobe(0, 4);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->count_bytes, 8u);
    double y = 0.0;
    c.recv(&y, 1, Datatype::float64(), 0, 4);
  });
}

TEST(ModeledMode, TimingIdenticalToFunctional) {
  // The central phantom-buffer invariant: virtual time must not depend
  // on whether payload bytes physically move.
  auto measure = [](bool functional) {
    double dt = 0.0;
    UniverseOptions o;
    o.nranks = 2;
    o.functional = functional;
    o.wtime_resolution = 0.0;
    Universe::run(o, [&](Comm& c) {
      Datatype vec = Datatype::vector(4096, 1, 2, Datatype::float64());
      vec.commit();
      const std::size_t fp = 8192;
      Buffer src = Buffer::allocate(fp * 8, functional);
      Buffer dst = Buffer::allocate(4096 * 8, functional);
      if (c.rank() == 0) {
        const double t0 = c.clock();
        c.send(src.data(), 1, vec, 1, 0);
        c.recv(nullptr, 0, Datatype::byte(), 1, 1);
        dt = c.clock() - t0;
      } else {
        c.recv(dst.data(), 4096, Datatype::float64(), 0, 0);
        c.send(nullptr, 0, Datatype::byte(), 0, 1);
      }
    });
    return dt;
  };
  EXPECT_EQ(measure(true), measure(false));
}

TEST(ModeledMode, PayloadLimitCutsLargeTransfersOnly) {
  UniverseOptions o;
  o.nranks = 2;
  o.functional_payload_limit = 1024;
  Universe::run(o, [](Comm& c) {
    std::vector<double> small_in(8), big_in(1024, -1.0);
    if (c.rank() == 0) {
      std::vector<double> small(8, 3.0), big(1024, 3.0);
      c.send(small.data(), 8, Datatype::float64(), 1, 0);
      c.send(big.data(), 1024, Datatype::float64(), 1, 1);
    } else {
      c.recv(small_in.data(), 8, Datatype::float64(), 0, 0);
      c.recv(big_in.data(), 1024, Datatype::float64(), 0, 1);
      EXPECT_EQ(small_in[0], 3.0);       // moved: under the limit
      EXPECT_EQ(big_in[0], -1.0);        // metadata only: over the limit
    }
  });
}

}  // namespace
