// Type-signature construction and send/recv compatibility rules.
#include <gtest/gtest.h>

#include "minimpi/datatype/datatype.hpp"

using namespace minimpi;

namespace {

TEST(Signature, HomogeneousRunsCollapse) {
  TypeSignature s;
  s.append(BasicType::double_, 3);
  s.append(BasicType::double_, 5);
  EXPECT_EQ(s.total_bytes(), 64u);
  EXPECT_TRUE(s.exact());
  EXPECT_EQ(s.to_string(), "[doublex8]");
}

TEST(Signature, MixedRunsKeepOrder) {
  TypeSignature s;
  s.append(BasicType::int32, 2);
  s.append(BasicType::double_, 1);
  EXPECT_EQ(s.to_string(), "[int32x2,doublex1]");
}

TEST(Signature, RepeatOfSingleRunStaysExact) {
  TypeSignature inner;
  inner.append(BasicType::double_, 4);
  TypeSignature s;
  s.append(inner, 1'000'000'000);  // a billion doubles: still one run
  EXPECT_TRUE(s.exact());
  EXPECT_EQ(s.total_bytes(), 32'000'000'000u);
}

TEST(Signature, PathologicalAlternationDegrades) {
  TypeSignature inner;
  inner.append(BasicType::int32, 1);
  inner.append(BasicType::double_, 1);
  TypeSignature s;
  s.append(inner, 100'000);  // 200k runs: beyond the exact cap
  EXPECT_FALSE(s.exact());
  EXPECT_EQ(s.total_bytes(), 100'000u * 12);
}

TEST(Accepts, IdenticalSignatures) {
  TypeSignature a, b;
  a.append(BasicType::double_, 10);
  b.append(BasicType::double_, 10);
  EXPECT_TRUE(a.accepts(b));
}

TEST(Accepts, LongerReceiveIsFine) {
  TypeSignature recv, send;
  recv.append(BasicType::double_, 20);
  send.append(BasicType::double_, 10);
  EXPECT_TRUE(recv.accepts(send));
  EXPECT_FALSE(send.accepts(recv));  // shorter recv truncates
}

TEST(Accepts, MismatchedBasicsRejected) {
  TypeSignature recv, send;
  recv.append(BasicType::float_, 16);
  send.append(BasicType::double_, 8);  // same bytes, wrong types
  EXPECT_FALSE(recv.accepts(send));
}

TEST(Accepts, RunsMaySplitAcrossBoundaries) {
  // recv = [i32 x4], send = [i32 x2][i32 x2] built via separate appends
  // must match (run-length form is irrelevant to the flattened sequence).
  TypeSignature recv, send;
  recv.append(BasicType::int32, 4);
  send.append(BasicType::int32, 2);
  send.append(BasicType::int32, 2);
  EXPECT_TRUE(recv.accepts(send));
}

TEST(Accepts, OrderMatters) {
  TypeSignature recv, send;
  recv.append(BasicType::int32, 1);
  recv.append(BasicType::double_, 1);
  send.append(BasicType::double_, 1);
  send.append(BasicType::int32, 1);
  EXPECT_FALSE(recv.accepts(send));
}

TEST(Accepts, PackedInteroperatesWithAnything) {
  TypeSignature packed, doubles;
  packed.append(BasicType::packed, 80);
  doubles.append(BasicType::double_, 10);
  EXPECT_TRUE(doubles.accepts(packed));  // recv doubles from packed send
  EXPECT_TRUE(packed.accepts(doubles));  // recv packed from typed send
  TypeSignature small;
  small.append(BasicType::packed, 72);
  EXPECT_FALSE(small.accepts(doubles));  // still must fit
}

TEST(Accepts, EmptySendAlwaysAccepted) {
  TypeSignature recv, send;
  recv.append(BasicType::double_, 1);
  EXPECT_TRUE(recv.accepts(send));
  TypeSignature empty_recv;
  EXPECT_TRUE(empty_recv.accepts(send));
}

TEST(Accepts, DegradedModeUsesTotals) {
  TypeSignature inner;
  inner.append(BasicType::int32, 1);
  inner.append(BasicType::double_, 1);
  TypeSignature big_send;
  big_send.append(inner, 100'000);
  ASSERT_FALSE(big_send.exact());
  TypeSignature big_recv;
  big_recv.append(inner, 100'000);
  EXPECT_TRUE(big_recv.accepts(big_send));
  TypeSignature short_recv;
  short_recv.append(inner, 50'000);
  EXPECT_FALSE(short_recv.accepts(big_send));
}

TEST(DatatypeSignature, ReflectsLeafSequence) {
  const Datatype v = Datatype::vector(5, 2, 4, Datatype::float64());
  EXPECT_EQ(v.signature().to_string(), "[doublex10]");
  const std::size_t bl[] = {1, 1};
  const std::ptrdiff_t dis[] = {0, 8};
  const Datatype kinds[] = {Datatype::int32(), Datatype::float64()};
  const Datatype st = Datatype::struct_(bl, dis, kinds);
  EXPECT_EQ(st.signature().to_string(), "[int32x1,doublex1]");
}

}  // namespace
