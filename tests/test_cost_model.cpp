// Cost-model unit tests: each term behaves per its mechanistic story.
#include <gtest/gtest.h>

#include "minimpi/net/cost_model.hpp"

using namespace minimpi;

namespace {

const MachineProfile& skx() { return MachineProfile::skx_impi(); }

BlockStats strided_stats(std::size_t bytes, std::size_t block = 8) {
  return {bytes / block, bytes, block, block};
}
BlockStats contig_stats(std::size_t bytes) {
  return {1, bytes, bytes, bytes};
}

TEST(WireTime, LinearInBytesPlusPackets) {
  CostModel m(skx());
  EXPECT_EQ(m.wire_time(0), 0.0);
  const double t1 = m.wire_time(1'000'000);
  const double t2 = m.wire_time(2'000'000);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);
  // At least the serialization term.
  EXPECT_GE(t1, 1e6 / skx().net_bandwidth_Bps);
}

TEST(BlockFactor, NormalizedToEightByteBlocks) {
  CostModel m(skx());
  EXPECT_NEAR(m.block_factor(strided_stats(1 << 20, 8)), 1.0, 1e-12);
  // Longer blocks are cheaper per byte; contiguous cheapest.
  const double f64b = m.block_factor(strided_stats(1 << 20, 64));
  const double fc = m.block_factor_contiguous();
  EXPECT_LT(f64b, 1.0);
  EXPECT_LT(fc, f64b);
  // 4-byte blocks are *more* expensive than the canonical case.
  EXPECT_GT(m.block_factor(strided_stats(1 << 20, 4)), 1.0);
}

TEST(UserCopyTime, MatchesBandwidthForCanonicalBlocks) {
  CostModel m(skx());
  const std::size_t n = 1 << 20;
  EXPECT_NEAR(m.user_copy_time(n, strided_stats(n)),
              static_cast<double>(n) / skx().copy_bandwidth_Bps, 1e-9);
}

TEST(UserCopyTime, WarmthSpeedsUp) {
  CostModel m(skx());
  const std::size_t n = 1 << 20;
  const double cold = m.user_copy_time(n, strided_stats(n), 0.0);
  const double warm = m.user_copy_time(n, strided_stats(n), 1.0);
  EXPECT_NEAR(cold / warm, skx().warm_copy_factor, 1e-9);
  const double half = m.user_copy_time(n, strided_stats(n), 0.5);
  EXPECT_GT(half, warm);
  EXPECT_LT(half, cold);
}

TEST(CallOverhead, Linear) {
  CostModel m(skx());
  EXPECT_EQ(m.call_overhead(0), 0.0);
  EXPECT_NEAR(m.call_overhead(1000), 1000 * skx().per_call_overhead_s, 1e-15);
}

TEST(InternalStaging, CapacityPenaltyKicksInBeyondBuffer) {
  CostModel m(skx());
  const std::size_t cap = skx().internal_buffer_bytes;
  const auto below = m.internal_staging_time(cap / 2, strided_stats(cap / 2));
  const auto above = m.internal_staging_time(cap * 4, strided_stats(cap * 4));
  // Below capacity the per-byte cost is flat; above it grows.
  const double per_byte_below = below / (cap / 2.0);
  const double per_byte_above = above / (cap * 4.0);
  EXPECT_GT(per_byte_above, per_byte_below * 1.5);
}

TEST(InternalStaging, SegmentOverheadCountsSegments) {
  CostModel m(skx());
  const std::size_t seg = skx().internal_segment_bytes;
  const double one = m.internal_staging_time(seg, strided_stats(seg));
  const double two = m.internal_staging_time(2 * seg, strided_stats(2 * seg));
  // Doubling bytes doubles both terms below capacity.
  EXPECT_NEAR(two / one, 2.0, 0.01);
}

TEST(EagerLimit, DefaultsAndOverride) {
  CostModel def(skx());
  EXPECT_EQ(def.eager_limit(), skx().eager_limit_bytes);
  EXPECT_TRUE(def.is_eager(skx().eager_limit_bytes));
  EXPECT_FALSE(def.is_eager(skx().eager_limit_bytes + 1));

  // Raising the limit is capped by the internal buffer capacity: the
  // paper's §4.5 "no change for large messages" mechanism.
  CostModel big(skx(), std::size_t{1} << 40);
  EXPECT_EQ(big.eager_limit(), skx().internal_buffer_bytes);

  CostModel tiny(skx(), std::size_t{1024});
  EXPECT_EQ(tiny.eager_limit(), 1024u);
}

TEST(EagerTiming, SenderReturnsBeforeArrival) {
  CostModel m(skx());
  const auto t = m.eager_timing(1.0, 1024, contig_stats(1024));
  EXPECT_TRUE(t.eager);
  EXPECT_GT(t.sender_done, 1.0);
  EXPECT_GT(t.arrival, t.sender_done);
}

TEST(EagerTiming, NoncontigPaysStaging) {
  CostModel m(skx());
  const std::size_t n = 32 * 1024;
  const auto c = m.eager_timing(0.0, n, contig_stats(n));
  const auto nc = m.eager_timing(0.0, n, strided_stats(n));
  EXPECT_GT(nc.sender_done, c.sender_done);
}

TEST(RendezvousTiming, GatedOnBothSides) {
  CostModel m(skx());
  const std::size_t n = 1 << 20;
  const auto early_recv =
      m.rendezvous_timing(1.0, 0.0, n, contig_stats(n));
  const auto late_recv = m.rendezvous_timing(1.0, 2.0, n, contig_stats(n));
  EXPECT_GT(late_recv.arrival, early_recv.arrival);
  EXPECT_NEAR(late_recv.arrival - early_recv.arrival, 1.0, 1e-9);
  EXPECT_FALSE(early_recv.eager);
}

TEST(RendezvousTiming, ContiguousIsZeroCopy) {
  CostModel m(skx());
  const std::size_t n = 1 << 24;
  const auto c = m.rendezvous_timing(0.0, 0.0, n, contig_stats(n));
  // Sender busy = handshake + wire only.
  EXPECT_NEAR(c.sender_done, m.handshake_time() + m.wire_time(n), 1e-9);
}

TEST(RendezvousTiming, PipeliningOverlapsPackAndWire) {
  MachineProfile p = skx();
  const std::size_t n = 1 << 24;
  CostModel serial(p);
  p.nic_gather = true;
  CostModel overlap(p);
  const auto ts = serial.rendezvous_timing(0.0, 0.0, n, strided_stats(n));
  const auto to = overlap.rendezvous_timing(0.0, 0.0, n, strided_stats(n));
  EXPECT_LT(to.arrival, ts.arrival);
}

TEST(BsendTiming, WorseThanPlainEager) {
  CostModel m(skx());
  const std::size_t n = 32 * 1024;
  const auto plain = m.eager_timing(0.0, n, strided_stats(n));
  const auto buffered = m.bsend_timing(0.0, n, strided_stats(n));
  EXPECT_GT(buffered.arrival, plain.arrival);
}

TEST(RecvCompletion, WaitsForArrival) {
  CostModel m(skx());
  const double done_waiting =
      m.recv_completion(0.0, 5.0, 1024, contig_stats(1024), true);
  EXPECT_GT(done_waiting, 5.0);
  const double done_late =
      m.recv_completion(9.0, 5.0, 1024, contig_stats(1024), true);
  EXPECT_GT(done_late, 9.0);
}

TEST(RecvCompletion, NoncontigRecvPaysScatter) {
  CostModel m(skx());
  const std::size_t n = 1 << 20;
  const double c = m.recv_completion(0.0, 0.0, n, contig_stats(n), false);
  const double nc = m.recv_completion(0.0, 0.0, n, strided_stats(n), false);
  EXPECT_GT(nc, c);
}

TEST(PutTiming, FenceAndFactors) {
  const MachineProfile& impi = skx();
  const MachineProfile& mva = MachineProfile::skx_mvapich2();
  CostModel mi(impi), mm(mva);
  const std::size_t n = 1 << 20;
  const auto pi = mi.put_timing(0.0, n, strided_stats(n));
  const auto pm = mm.put_timing(0.0, n, strided_stats(n));
  // MVAPICH2's puts are several factors slower (paper §4.4).
  EXPECT_GT(pm.arrival, pi.arrival * 1.5);
}

TEST(GetTiming, RoundTripLatency) {
  CostModel m(skx());
  const auto g = m.get_timing(0.0, 4096, contig_stats(4096));
  const auto p = m.put_timing(0.0, 4096, contig_stats(4096));
  EXPECT_GT(g.arrival, p.arrival);  // get pays a request leg
}

TEST(ZeroBytes, AllTermsVanish) {
  CostModel m(skx());
  EXPECT_EQ(m.wire_time(0), 0.0);
  EXPECT_EQ(m.internal_staging_time(0, {}), 0.0);
  EXPECT_EQ(m.internal_contiguous_copy_time(0), 0.0);
  EXPECT_EQ(m.user_copy_time(0, {}), 0.0);
  const auto t = m.eager_timing(3.0, 0, {});
  EXPECT_NEAR(t.sender_done, 3.0 + skx().send_overhead_s, 1e-12);
}

}  // namespace
