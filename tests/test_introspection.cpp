// Datatype introspection (envelope/child), public flattening, and the
// JSON report writer.
#include <gtest/gtest.h>

#include <sstream>

#include "minimpi/minimpi.hpp"
#include "ncsend/ncsend.hpp"

using namespace minimpi;

namespace {

TEST(Envelope, NamedType) {
  const TypeEnvelope e = Datatype::float64().envelope();
  EXPECT_EQ(e.combiner, TypeCombiner::named);
  EXPECT_EQ(e.basic, BasicType::double_);
  EXPECT_EQ(e.depth, 1);
  EXPECT_FALSE(Datatype::float64().child().valid());
}

TEST(Envelope, VectorLowersToHvector) {
  const Datatype v = Datatype::vector(10, 2, 5, Datatype::float64());
  const TypeEnvelope e = v.envelope();
  EXPECT_EQ(e.combiner, TypeCombiner::hvector);
  EXPECT_EQ(e.count, 10u);
  EXPECT_EQ(e.blocklen, 2u);
  EXPECT_EQ(e.stride_bytes, 40);
  EXPECT_EQ(e.depth, 2);
  const Datatype c = v.child();
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.envelope().combiner, TypeCombiner::named);
  EXPECT_TRUE(c.committed());  // predefined children stay committed
}

TEST(Envelope, IndexedAndStruct) {
  const std::size_t bl[] = {1, 2};
  const std::ptrdiff_t dis[] = {0, 4};
  const Datatype idx = Datatype::indexed(bl, dis, Datatype::float64());
  EXPECT_EQ(idx.envelope().combiner, TypeCombiner::hindexed);
  EXPECT_EQ(idx.envelope().nblocks, 2u);

  const std::ptrdiff_t sdis[] = {0, 8};
  const Datatype kinds[] = {Datatype::int32(), Datatype::float64()};
  const Datatype st = Datatype::struct_(bl, sdis, kinds);
  EXPECT_EQ(st.envelope().combiner, TypeCombiner::struct_);
  EXPECT_EQ(st.child().envelope().basic, BasicType::int32);
}

TEST(Envelope, ResizedWrapsChild) {
  const Datatype r =
      Datatype::resized(Datatype::vector(4, 1, 2, Datatype::float64()), 0, 256);
  EXPECT_EQ(r.envelope().combiner, TypeCombiner::resized);
  EXPECT_EQ(r.child().envelope().combiner, TypeCombiner::hvector);
  EXPECT_EQ(r.envelope().depth, 3);
}

TEST(Flatten, MatchesWalkerOrder) {
  Datatype v = Datatype::vector(5, 1, 3, Datatype::float64());
  v.commit();
  const auto blocks = flatten(v, 2);
  ASSERT_EQ(blocks.size(), 10u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(blocks[i].offset, static_cast<std::ptrdiff_t>(i * 24));
    EXPECT_EQ(blocks[i].length, 8u);
  }
  // Second element starts at one extent (13 doubles = 104 bytes).
  EXPECT_EQ(blocks[5].offset, static_cast<std::ptrdiff_t>(v.extent()));
}

TEST(Flatten, ContiguousIsOneBlock) {
  Datatype c = Datatype::contiguous(1000, Datatype::float64());
  c.commit();
  const auto blocks = flatten(c, 1);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].length, 8000u);
}

TEST(Flatten, GuardsAgainstExplosion) {
  Datatype v = Datatype::vector(1 << 20, 1, 2, Datatype::float64());
  v.commit();
  EXPECT_THROW((void)flatten(v, 1, /*max_blocks=*/1024), Error);
}

TEST(JsonReport, WellFormedAndComplete) {
  ncsend::SweepConfig cfg;
  cfg.sizes_bytes = {1024, 8192};
  cfg.schemes = {"reference", "packing(v)"};
  cfg.harness.reps = 3;
  const auto r = ncsend::run_sweep(cfg);
  std::ostringstream os;
  ncsend::write_json(os, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"profile\": \"skx-impi\""), std::string::npos);
  EXPECT_NE(out.find("\"scheme\": \"packing(v)\""), std::string::npos);
  EXPECT_NE(out.find("\"verified\": true"), std::string::npos);
  // Four cells -> four time_s entries.
  std::size_t hits = 0;
  for (std::size_t p = out.find("time_s"); p != std::string::npos;
       p = out.find("time_s", p + 1))
    ++hits;
  EXPECT_EQ(hits, 4u);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

}  // namespace
