// The collective-algorithm subsystem (src/ncsend/collectives/):
// closed-form schedule correctness for every (op, algo) pair by host
// simulation, the send_of/recv_of mirror invariant, equivalence with
// the legacy runtime collectives, end-to-end functional cells on the
// pattern engine, sampled-digest verification at 256+ ranks, the typed
// int64 allreduce regression (fused totals above 2^53), plan
// compile/replay bit-exactness for collective cells, and spec-parser
// rejection of malformed `collective(...)` names.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "ncsend/collectives/collective.hpp"
#include "ncsend/ncsend.hpp"
#include "ncsend/plan/comm_plan.hpp"

using namespace ncsend;
using coll::CollAlgo;
using coll::CollectiveSchedule;
using coll::CollOp;
using coll::CollTransfer;
using minimpi::MachineProfile;

namespace {

Layout stride2(std::size_t elems) { return Layout::strided(elems, 1, 2); }

/// Host-level schedule execution: per-rank working vectors, two-phase
/// rounds (stage every send from pre-round state, then apply), exactly
/// the concurrency semantics the engine implements.
std::vector<std::vector<double>> simulate(const CollectiveSchedule& s,
                                          std::vector<std::vector<double>> w) {
  for (int t = 0; t < s.round_count(); ++t) {
    struct Staged {
      CollTransfer tr;
      std::vector<double> data;
    };
    std::vector<Staged> staged;
    for (const CollTransfer& tr : s.round_transfers(t)) {
      std::vector<double> data(tr.elems);
      for (std::size_t i = 0; i < tr.elems; ++i)
        data[i] = w[static_cast<std::size_t>(tr.src)][tr.src_offset + i];
      staged.push_back({tr, std::move(data)});
    }
    for (const Staged& st : staged) {
      auto& dst = w[static_cast<std::size_t>(st.tr.dst)];
      for (std::size_t i = 0; i < st.tr.elems; ++i) {
        if (st.tr.combine)
          dst[st.tr.dst_offset + i] += st.data[i];
        else
          dst[st.tr.dst_offset + i] = st.data[i];
      }
    }
  }
  return w;
}

/// Initial per-rank vectors for an op: rank r element i holds
/// fill_value(salt_r + i) wherever the op gives r data (the same
/// convention the engine uses).
std::vector<std::vector<double>> initial_state(const CollectiveSchedule& s) {
  const int n = s.nranks();
  std::vector<std::vector<double>> w(
      static_cast<std::size_t>(n), std::vector<double>(s.elems(), 0.0));
  for (int r = 0; r < n; ++r) {
    const std::size_t salt = pattern_fill_salt(r, 0);
    switch (s.op()) {
      case CollOp::bcast:
        if (r == 0)
          for (std::size_t i = 0; i < s.elems(); ++i)
            w[0][i] = fill_value(salt + i);
        break;
      case CollOp::allreduce:
      case CollOp::reduce_scatter:
        for (std::size_t i = 0; i < s.elems(); ++i)
          w[static_cast<std::size_t>(r)][i] = fill_value(salt + i);
        break;
      case CollOp::allgather:
        for (std::size_t i = s.chunk_lo(r); i < s.chunk_hi(r); ++i)
          w[static_cast<std::size_t>(r)][i] = fill_value(salt + i);
        break;
    }
  }
  return w;
}

double reduced_value(int nranks, std::size_t i) {
  double sum = 0.0;
  for (int r = 0; r < nranks; ++r)
    sum += fill_value(pattern_fill_salt(r, 0) + i);
  return sum;
}

/// Assert the simulated end state satisfies the op's contract.
void expect_op_contract(const CollectiveSchedule& s,
                        const std::vector<std::vector<double>>& w) {
  const int n = s.nranks();
  const auto tag = [&](int r, std::size_t i) {
    return std::string(coll::op_name(s.op())) + ":" +
           std::string(coll::algo_name(s.algo())) + ":" + std::to_string(n) +
           " rank " + std::to_string(r) + " elem " + std::to_string(i);
  };
  for (int r = 0; r < n; ++r) {
    const auto& v = w[static_cast<std::size_t>(r)];
    switch (s.op()) {
      case CollOp::bcast:
        for (std::size_t i = 0; i < s.elems(); ++i)
          ASSERT_EQ(v[i], fill_value(pattern_fill_salt(0, 0) + i))
              << tag(r, i);
        break;
      case CollOp::allreduce:
        for (std::size_t i = 0; i < s.elems(); ++i)
          ASSERT_EQ(v[i], reduced_value(n, i)) << tag(r, i);
        break;
      case CollOp::reduce_scatter:
        for (std::size_t i = s.chunk_lo(r); i < s.chunk_hi(r); ++i)
          ASSERT_EQ(v[i], reduced_value(n, i)) << tag(r, i);
        break;
      case CollOp::allgather:
        for (int c = 0; c < n; ++c)
          for (std::size_t i = s.chunk_lo(c); i < s.chunk_hi(c); ++i)
            ASSERT_EQ(v[i], fill_value(pattern_fill_salt(c, 0) + i))
                << tag(r, i);
        break;
    }
  }
}

minimpi::UniverseOptions functional_opts() {
  minimpi::UniverseOptions opts;
  opts.profile = &MachineProfile::skx_impi();
  opts.functional = true;
  opts.functional_payload_limit = 1 << 16;
  return opts;
}

}  // namespace

// ---------------------------------------------------------------------------
// Schedule math, host-simulated
// ---------------------------------------------------------------------------

TEST(CollectiveSchedule, EveryAlgorithmReachesTheOpContract) {
  const std::vector<CollOp> ops = {CollOp::allreduce, CollOp::bcast,
                                   CollOp::allgather, CollOp::reduce_scatter};
  for (const CollOp op : ops) {
    // tree and ring cover non-powers-of-two; rd only powers of two.
    for (const int n : {2, 3, 5, 8, 13, 16, 31}) {
      for (const std::size_t elems :
           {std::size_t{1}, std::size_t{7}, static_cast<std::size_t>(n),
            static_cast<std::size_t>(4 * n + 3)}) {
        for (const CollAlgo algo : {CollAlgo::tree, CollAlgo::ring}) {
          const CollectiveSchedule s(op, algo, n, elems);
          expect_op_contract(s, simulate(s, initial_state(s)));
        }
        if ((n & (n - 1)) == 0) {
          const CollectiveSchedule s(op, CollAlgo::rdouble, n, elems);
          expect_op_contract(s, simulate(s, initial_state(s)));
        }
      }
    }
  }
}

TEST(CollectiveSchedule, SendAndRecvDerivationsMirror) {
  const std::vector<CollOp> ops = {CollOp::allreduce, CollOp::bcast,
                                   CollOp::allgather, CollOp::reduce_scatter};
  const auto key = [](const CollTransfer& t) {
    return std::make_tuple(t.src, t.dst, t.elems, t.src_offset, t.dst_offset,
                           t.combine);
  };
  for (const CollOp op : ops) {
    for (const int n : {2, 3, 8, 16, 21}) {
      for (const CollAlgo algo : {CollAlgo::tree, CollAlgo::ring,
                                  CollAlgo::rdouble}) {
        if (algo == CollAlgo::rdouble && (n & (n - 1)) != 0) continue;
        const CollectiveSchedule s(op, algo, n, 4 * static_cast<std::size_t>(n) + 1);
        for (int t = 0; t < s.round_count(); ++t) {
          std::vector<std::tuple<int, int, std::size_t, std::size_t,
                                 std::size_t, bool>>
              from_sends, from_recvs;
          for (int r = 0; r < n; ++r) {
            if (const auto sv = s.send_of(r, t)) from_sends.push_back(key(*sv));
            if (const auto rv = s.recv_of(r, t)) from_recvs.push_back(key(*rv));
          }
          std::sort(from_sends.begin(), from_sends.end());
          std::sort(from_recvs.begin(), from_recvs.end());
          ASSERT_EQ(from_sends, from_recvs)
              << coll::op_name(op) << ":" << coll::algo_name(algo) << ":" << n
              << " round " << t;
          // At most one send and one receive per rank per round, and
          // never a self-send.
          for (const auto& k : from_sends)
            ASSERT_NE(std::get<0>(k), std::get<1>(k));
        }
      }
    }
  }
}

TEST(CollectiveSchedule, RoundCountsMatchTheTextbook) {
  // K = ceil(log2 N); the crossover math in the advisor depends on
  // exactly these counts.
  EXPECT_EQ(CollectiveSchedule(CollOp::bcast, CollAlgo::tree, 8, 8)
                .round_count(), 3);
  EXPECT_EQ(CollectiveSchedule(CollOp::allreduce, CollAlgo::tree, 8, 8)
                .round_count(), 6);
  EXPECT_EQ(CollectiveSchedule(CollOp::allreduce, CollAlgo::tree, 9, 8)
                .round_count(), 8);  // ceil(log2 9) = 4
  EXPECT_EQ(CollectiveSchedule(CollOp::allreduce, CollAlgo::ring, 8, 8)
                .round_count(), 14);  // 2(N-1)
  EXPECT_EQ(CollectiveSchedule(CollOp::allgather, CollAlgo::ring, 8, 8)
                .round_count(), 7);
  EXPECT_EQ(CollectiveSchedule(CollOp::reduce_scatter, CollAlgo::ring, 8, 8)
                .round_count(), 7);
  EXPECT_EQ(CollectiveSchedule(CollOp::bcast, CollAlgo::ring, 8, 8)
                .round_count(), 14);  // pipelined line: 2N-2
  EXPECT_EQ(CollectiveSchedule(CollOp::allreduce, CollAlgo::rdouble, 8, 8)
                .round_count(), 3);
  // rd bcast degenerates to the binomial tree.
  const CollectiveSchedule rdb(CollOp::bcast, CollAlgo::rdouble, 8, 8);
  EXPECT_EQ(rdb.algo(), CollAlgo::tree);
  EXPECT_EQ(rdb.round_count(), 3);
}

// ---------------------------------------------------------------------------
// Equivalence with the legacy runtime collectives
// ---------------------------------------------------------------------------

TEST(CollectiveLegacyEquivalence, ScheduleSumsMatchRuntimeAllreduce) {
  // The schedule's reduced values must equal what the runtime's slot
  // collectives compute from the same per-rank contributions — for
  // every algorithm, at a non-power-of-two rank count.
  const int n = 6;
  const std::size_t elems = 16;
  std::vector<std::vector<double>> legacy(
      elems, std::vector<double>(static_cast<std::size_t>(n)));
  minimpi::UniverseOptions o;
  o.nranks = n;
  std::vector<double> runtime_sums(elems, 0.0);
  minimpi::Universe::run(o, [&](minimpi::Comm& c) {
    for (std::size_t i = 0; i < elems; ++i) {
      const double mine =
          fill_value(pattern_fill_salt(c.rank(), 0) + i);
      const double sum = c.allreduce(mine, minimpi::ReduceOp::sum);
      if (c.rank() == 0) runtime_sums[i] = sum;
    }
  });
  for (const CollAlgo algo : {CollAlgo::tree, CollAlgo::ring}) {
    const CollectiveSchedule s(CollOp::allreduce, algo, n, elems);
    const auto w = simulate(s, initial_state(s));
    for (int r = 0; r < n; ++r)
      for (std::size_t i = 0; i < elems; ++i)
        ASSERT_EQ(w[static_cast<std::size_t>(r)][i], runtime_sums[i])
            << coll::algo_name(algo) << " rank " << r << " elem " << i;
  }
}

TEST(CollectiveLegacyEquivalence, ScheduleBcastMatchesRuntimeBcast) {
  const int n = 5;
  const std::size_t elems = 12;
  std::vector<double> runtime_out(elems, 0.0);
  minimpi::UniverseOptions o;
  o.nranks = n;
  minimpi::Universe::run(o, [&](minimpi::Comm& c) {
    std::vector<double> data(elems, 0.0);
    if (c.rank() == 0)
      for (std::size_t i = 0; i < elems; ++i)
        data[i] = fill_value(pattern_fill_salt(0, 0) + i);
    c.bcast(data.data(), elems, minimpi::Datatype::float64(), 0);
    if (c.rank() == n - 1)
      for (std::size_t i = 0; i < elems; ++i) runtime_out[i] = data[i];
  });
  for (const CollAlgo algo : {CollAlgo::tree, CollAlgo::ring}) {
    const CollectiveSchedule s(CollOp::bcast, algo, n, elems);
    const auto w = simulate(s, initial_state(s));
    for (std::size_t i = 0; i < elems; ++i)
      ASSERT_EQ(w[static_cast<std::size_t>(n - 1)][i], runtime_out[i])
          << coll::algo_name(algo) << " elem " << i;
  }
}

// ---------------------------------------------------------------------------
// End-to-end cells on the pattern engine
// ---------------------------------------------------------------------------

TEST(CollectivePatternCells, FunctionalRunsVerifyDeliveredValues) {
  minimpi::UniverseOptions opts;  // default: everything functional
  HarnessConfig cfg;
  cfg.reps = 2;
  for (const char* spec :
       {"collective(allreduce:tree:6)", "collective(allreduce:ring:6)",
        "collective(allreduce:rd:8)", "collective(bcast:tree:5)",
        "collective(bcast:ring:5)", "collective(allgather:ring:7)",
        "collective(allgather:rd:4)", "collective(reduce-scatter:tree:6)",
        "collective(reduce-scatter:rd:8)"}) {
    const auto pattern = CommPattern::by_name(spec);
    for (const char* scheme : {"copying", "vector type", "persistent(v)"}) {
      const RunResult r = run_pattern_experiment(opts, *pattern, scheme,
                                                 stride2(96), cfg);
      EXPECT_TRUE(r.data_checked) << spec << " / " << scheme;
      EXPECT_TRUE(r.verified) << spec << " / " << scheme;
    }
  }
}

TEST(CollectivePatternCells, ChunkedAndSyncSchemesAlsoVerify) {
  minimpi::UniverseOptions opts;
  HarnessConfig cfg;
  cfg.reps = 2;
  const auto pattern = CommPattern::by_name("collective(allreduce:ring:5)");
  for (const char* scheme :
       {"packing(e)", "packing(v)", "packing(p)", "isend(v)", "ssend(v)",
        "subarray"}) {
    const RunResult r =
        run_pattern_experiment(opts, *pattern, scheme, stride2(96), cfg);
    EXPECT_TRUE(r.data_checked) << scheme;
    EXPECT_TRUE(r.verified) << scheme;
  }
}

TEST(CollectivePatternCells, UnsupportedSchemesAreRejected) {
  minimpi::UniverseOptions opts;
  HarnessConfig cfg;
  cfg.reps = 1;
  const auto pattern = CommPattern::by_name("collective(allreduce:tree:4)");
  for (const char* scheme :
       {"reference", "buffered", "rsend(v)", "onesided", "onesided-pscw"}) {
    EXPECT_THROW(
        run_pattern_experiment(opts, *pattern, scheme, stride2(64), cfg),
        minimpi::Error)
        << scheme;
    EXPECT_FALSE(coll::collective_scheme_supported(scheme)) << scheme;
  }
  for (const auto& scheme : coll::collective_scheme_names())
    EXPECT_TRUE(pattern_scheme_supported(scheme)) << scheme;
}

TEST(CollectivePatternCells, ModeledDigestVerifiesAt256Ranks) {
  // 256-rank modeled cells: no payload moves, but the sampled schedule
  // digests (fused through the typed int64 allreduce) still certify
  // the send/recv mirror at scale.
  minimpi::UniverseOptions opts;
  opts.profile = &MachineProfile::skx_impi();
  opts.functional = true;
  opts.functional_payload_limit = 64;  // everything beyond 64 B is modeled
  HarnessConfig cfg;
  cfg.reps = 2;
  cfg.verify_samples = 4;
  for (const char* spec :
       {"collective(allreduce:ring:256)", "collective(allreduce:tree:256)",
        "collective(allgather:rd:256)"}) {
    const auto pattern = CommPattern::by_name(spec);
    const RunResult r = run_pattern_experiment(opts, *pattern, "vector type",
                                               stride2(8192), cfg);
    EXPECT_TRUE(r.data_checked) << spec;
    EXPECT_TRUE(r.verified) << spec;
  }
}

// ---------------------------------------------------------------------------
// The typed int64 allreduce (verify_samples digest carrier)
// ---------------------------------------------------------------------------

TEST(TypedAllreduce, Int64SumsStayExactAbove2To53) {
  // Four contributions of 2^52 + r: the exact sum 2^54 + 6 is NOT
  // representable in double (spacing 4 at that magnitude), so the old
  // double round-trip would have rounded it.  The typed entry point
  // must return it exactly.
  minimpi::UniverseOptions o;
  o.nranks = 4;
  minimpi::Universe::run(o, [](minimpi::Comm& c) {
    const std::int64_t mine = (std::int64_t{1} << 52) + c.rank();
    const std::int64_t sum = c.allreduce(mine, minimpi::ReduceOp::sum);
    EXPECT_EQ(sum, (std::int64_t{1} << 54) + 6);
    const double approx = static_cast<double>((std::int64_t{1} << 54) + 6);
    EXPECT_NE(static_cast<std::int64_t>(approx), sum)
        << "the regression guard itself lost its teeth";
    EXPECT_EQ(c.allreduce(mine, minimpi::ReduceOp::min),
              std::int64_t{1} << 52);
    EXPECT_EQ(c.allreduce(mine, minimpi::ReduceOp::max),
              (std::int64_t{1} << 52) + 3);
  });
}

TEST(TypedAllreduce, ChargesLikeTheDoubleOverload) {
  minimpi::UniverseOptions o;
  o.nranks = 3;
  o.wtime_resolution = 0.0;
  minimpi::Universe::run(o, [](minimpi::Comm& c) {
    const double t0 = c.clock();
    (void)c.allreduce(1.0, minimpi::ReduceOp::sum);
    const double d_cost = c.clock() - t0;
    const double t1 = c.clock();
    (void)c.allreduce(std::int64_t{1}, minimpi::ReduceOp::sum);
    EXPECT_EQ(c.clock() - t1, d_cost);
  });
}

// ---------------------------------------------------------------------------
// Plan compile / replay
// ---------------------------------------------------------------------------

TEST(CollectivePlan, CompilesAndReplaysBitExactly) {
  const auto pattern = CommPattern::by_name("collective(allreduce:ring:6)");
  HarnessConfig cfg;
  cfg.reps = 5;
  const Layout layout = stride2(1024);
  const auto opts = functional_opts();
  const plan::CommPlan cp =
      plan::compile_cell(opts, *pattern, "vector type", layout, cfg);
  ASSERT_TRUE(cp.valid) << cp.invalid_reason;
  const RunResult direct =
      run_pattern_experiment(opts, *pattern, "vector type", layout, cfg);
  const RunResult replayed = cp.replay(cfg.reps);
  EXPECT_EQ(direct.timing.mean, replayed.timing.mean);
  EXPECT_EQ(direct.timing.stddev, replayed.timing.stddev);
  EXPECT_EQ(direct.timing.min, replayed.timing.min);
  EXPECT_EQ(direct.timing.max, replayed.timing.max);
  EXPECT_EQ(direct.timing.samples, replayed.timing.samples);
}

TEST(CollectivePlan, TreeCellsCompileToo) {
  const auto pattern = CommPattern::by_name("collective(bcast:tree:8)");
  HarnessConfig cfg;
  cfg.reps = 4;
  const auto opts = functional_opts();
  const plan::CommPlan cp =
      plan::compile_cell(opts, *pattern, "packing(v)", stride2(512), cfg);
  ASSERT_TRUE(cp.valid) << cp.invalid_reason;
  const RunResult direct =
      run_pattern_experiment(opts, *pattern, "packing(v)", stride2(512), cfg);
  EXPECT_EQ(direct.timing.mean, cp.replay(cfg.reps).timing.mean);
}

// ---------------------------------------------------------------------------
// Registry & spec grammar
// ---------------------------------------------------------------------------

TEST(CollectiveRegistry, CanonicalNamesAndDefaults) {
  EXPECT_EQ(CommPattern::by_name("collective")->name(),
            "collective(allreduce:tree:8)");
  const auto p = CommPattern::by_name("collective(allreduce:ring:64)");
  EXPECT_EQ(p->nranks(), 64);
  EXPECT_EQ(p->concurrent_senders(), 1);
  const auto& fams = CommPattern::names();
  EXPECT_NE(std::find(fams.begin(), fams.end(), "collective"), fams.end());
  EXPECT_TRUE(coll::is_collective_pattern_name("collective(bcast:tree:4)"));
  EXPECT_FALSE(coll::is_collective_pattern_name("graph(ring:4)"));
}

TEST(CollectiveRegistry, MalformedSpecsThrow) {
  for (const char* bad :
       {"collective(allreduce)", "collective(allreduce:ring)",
        "collective(allreduce:ring:1)", "collective(allreduce:ring:4097)",
        "collective(allreduce:ring:x)", "collective(allreduce:ring:8y)",
        "collective(frobnicate:ring:8)", "collective(allreduce:blimp:8)",
        "collective(allreduce:rd:6)", "collective(reduce-scatter:rd:12)",
        "collective(allreduce:ring:-4)"}) {
    EXPECT_THROW(CommPattern::by_name(bad), minimpi::Error) << bad;
  }
  // rd at a power of two is fine; rd bcast is the documented tree alias.
  EXPECT_NO_THROW(CommPattern::by_name("collective(allreduce:rd:16)"));
  EXPECT_NO_THROW(CommPattern::by_name("collective(bcast:rd:16)"));
}

TEST(CollectiveRegistry, SchemesForPatternsNarrowsOnCollectives) {
  const std::vector<std::string> plain = {"halo2d(3x3)", "transpose(4)"};
  EXPECT_EQ(coll::schemes_for_patterns(plain), pattern_scheme_names());
  const std::vector<std::string> mixed = {"halo2d(3x3)",
                                          "collective(allreduce:ring:8)"};
  EXPECT_EQ(coll::schemes_for_patterns(mixed), coll::collective_scheme_names());
}
