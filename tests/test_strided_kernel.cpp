// Differential tests for the strided8 fast path in the pack engine:
// the specialized kernel must be byte-identical to the generic walker
// (reached here via an hindexed type describing the same bytes, which
// the fast path cannot match).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "minimpi/datatype/pack.hpp"

using namespace minimpi;

namespace {

struct StrideCase {
  std::size_t count;
  std::ptrdiff_t stride;  // doubles
};

class StridedKernel : public ::testing::TestWithParam<StrideCase> {};

INSTANTIATE_TEST_SUITE_P(
    Strides, StridedKernel,
    ::testing::Values(StrideCase{1, 2}, StrideCase{7, 2}, StrideCase{64, 2},
                      StrideCase{33, 3}, StrideCase{16, 7},
                      StrideCase{100, 1}, StrideCase{9, -2},
                      StrideCase{21, -5}),
    [](const auto& info) {
      const auto& p = info.param;
      return "n" + std::to_string(p.count) +
             (p.stride < 0 ? "m" + std::to_string(-p.stride)
                           : "s" + std::to_string(p.stride));
    });

TEST_P(StridedKernel, PackMatchesGenericWalker) {
  const auto [count, stride] = GetParam();
  // Fast-path type: a vector (lowered to hvector of 8-byte blocks).
  Datatype vec = Datatype::vector(count, 1, stride, Datatype::float64());
  vec.commit();
  // Generic-path type with the same typemap: hindexed, one block per
  // element (as_strided8 rejects hindexed, so this takes the walker).
  std::vector<std::size_t> bl(count, 1);
  std::vector<std::ptrdiff_t> dis(count);
  for (std::size_t i = 0; i < count; ++i)
    dis[i] = static_cast<std::ptrdiff_t>(i) * stride * 8;
  Datatype idx = Datatype::hindexed(bl, dis, Datatype::float64());
  idx.commit();
  ASSERT_EQ(vec.size(), idx.size());

  // Host array large enough in both directions for negative strides.
  const std::size_t span = count * static_cast<std::size_t>(
                               stride < 0 ? -stride : stride) + 4;
  std::vector<double> host(2 * span);
  std::iota(host.begin(), host.end(), 100.0);
  const double* base = host.data() + span;  // midpoint: room both ways

  std::vector<std::byte> via_fast(vec.size());
  std::vector<std::byte> via_walker(vec.size());
  std::size_t pos = 0;
  pack(base, 1, vec, via_fast.data(), via_fast.size(), pos);
  pos = 0;
  pack(base, 1, idx, via_walker.data(), via_walker.size(), pos);
  EXPECT_EQ(std::memcmp(via_fast.data(), via_walker.data(), vec.size()), 0);

  // And the scatter direction.
  std::vector<double> out_fast(2 * span, -1.0), out_walker(2 * span, -1.0);
  pos = 0;
  unpack(via_fast.data(), via_fast.size(), pos,
         out_fast.data() + span, 1, vec);
  pos = 0;
  unpack(via_walker.data(), via_walker.size(), pos,
         out_walker.data() + span, 1, idx);
  EXPECT_EQ(out_fast, out_walker);
}

TEST(StridedKernel, MultiCountReplication) {
  Datatype vec = Datatype::vector(8, 1, 2, Datatype::float64());
  vec.commit();
  std::vector<double> host(64);
  std::iota(host.begin(), host.end(), 0.0);
  std::vector<std::byte> packed(3 * 64);
  std::size_t pos = 0;
  pack(host.data(), 3, vec, packed.data(), packed.size(), pos);
  const auto* d = reinterpret_cast<const double*>(packed.data());
  // Element e starts at e * extent (15 doubles); block i at +2i.
  for (std::size_t e = 0; e < 3; ++e)
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_EQ(d[e * 8 + i], static_cast<double>(e * 15 + 2 * i));
}

TEST(StridedKernel, BlockLengthTwoNotEligibleStillCorrect) {
  // blocklen 2 (16-byte blocks) must take the generic path and still
  // round-trip (guards the fast-path eligibility check).
  Datatype vec = Datatype::vector(10, 2, 5, Datatype::float64());
  vec.commit();
  std::vector<double> host(64);
  std::iota(host.begin(), host.end(), 0.0);
  std::vector<std::byte> packed(20 * 8);
  std::size_t pos = 0;
  pack(host.data(), 1, vec, packed.data(), packed.size(), pos);
  std::vector<double> back(64, -1.0);
  pos = 0;
  unpack(packed.data(), packed.size(), pos, back.data(), 1, vec);
  for (std::size_t i = 0; i < 50; ++i) {
    const bool in_layout = i % 5 < 2;
    EXPECT_EQ(back[i], in_layout ? host[i] : -1.0) << i;
  }
}

TEST(StridedKernel, ResizedWrapperStillEligible) {
  // resized(vector) unwraps to the same pattern; geometry must follow
  // the resized extent for count > 1.
  Datatype vec = Datatype::vector(4, 1, 2, Datatype::float64());
  Datatype rs = Datatype::resized(vec, 0, 10 * 8);
  rs.commit();
  std::vector<double> host(40);
  std::iota(host.begin(), host.end(), 0.0);
  std::vector<std::byte> packed(2 * 32);
  std::size_t pos = 0;
  pack(host.data(), 2, rs, packed.data(), packed.size(), pos);
  const auto* d = reinterpret_cast<const double*>(packed.data());
  for (std::size_t e = 0; e < 2; ++e)
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_EQ(d[e * 4 + i], static_cast<double>(e * 10 + 2 * i));
}

}  // namespace
