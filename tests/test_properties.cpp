// Property-style tests: randomized datatype round trips, cost-model
// monotonicity sweeps, and cross-cutting invariants, all via
// parameterized gtest suites.
#include <gtest/gtest.h>

#include <random>

#include "minimpi/minimpi.hpp"
#include "ncsend/layout.hpp"

using namespace minimpi;

namespace {

// ---------------------------------------------------------------------------
// Randomized nested datatypes: pack -> unpack must be the identity on
// the layout's bytes, and the walker must agree with the cached stats.
// ---------------------------------------------------------------------------

Datatype random_type(std::mt19937_64& rng, int depth) {
  std::uniform_int_distribution<int> kind(0, depth > 1 ? 4 : 0);
  const Datatype base = Datatype::float64();
  switch (kind(rng)) {
    default:
    case 0: {
      std::uniform_int_distribution<std::size_t> c(1, 8);
      return Datatype::contiguous(c(rng), base);
    }
    case 1: {
      std::uniform_int_distribution<std::size_t> c(1, 6), b(1, 3);
      const std::size_t bl = b(rng);
      std::uniform_int_distribution<std::ptrdiff_t> s(
          static_cast<std::ptrdiff_t>(bl), static_cast<std::ptrdiff_t>(bl) + 4);
      return Datatype::vector(c(rng), bl, s(rng), random_type(rng, depth - 1));
    }
    case 2: {
      const Datatype child = random_type(rng, depth - 1);
      std::uniform_int_distribution<std::size_t> nb(1, 4), b(1, 3);
      const std::size_t nblocks = nb(rng);
      std::vector<std::size_t> bl(nblocks);
      std::vector<std::ptrdiff_t> dis(nblocks);
      std::ptrdiff_t cursor = 0;
      for (std::size_t i = 0; i < nblocks; ++i) {
        bl[i] = b(rng);
        dis[i] = cursor;
        cursor += static_cast<std::ptrdiff_t>(
            (bl[i] + 1) * std::max<std::size_t>(child.extent(), 1));
      }
      return Datatype::hindexed(bl, dis, child);
    }
    case 3: {
      std::uniform_int_distribution<std::size_t> dim(2, 5);
      const std::size_t rows = dim(rng) + 2, cols = dim(rng) + 2;
      std::uniform_int_distribution<std::size_t> sr(1, rows - 1),
          sc(1, cols - 1);
      const std::size_t subr = sr(rng), subc = sc(rng);
      std::uniform_int_distribution<std::size_t> r0(0, rows - subr),
          c0(0, cols - subc);
      const std::size_t sizes[] = {rows, cols};
      const std::size_t sub[] = {subr, subc};
      const std::size_t starts[] = {r0(rng), c0(rng)};
      return Datatype::subarray(sizes, sub, starts, base);
    }
    case 4: {
      const Datatype child = random_type(rng, depth - 1);
      std::uniform_int_distribution<std::size_t> extra(0, 32);
      return Datatype::resized(
          child, child.lb(), child.extent() + extra(rng) * 8);
    }
  }
}

class RandomTypeRoundTrip : public ::testing::TestWithParam<unsigned> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTypeRoundTrip,
                         ::testing::Range(0u, 24u));

TEST_P(RandomTypeRoundTrip, PackUnpackIdentity) {
  std::mt19937_64 rng(GetParam() * 7919 + 13);
  Datatype t = random_type(rng, 3);
  t.commit();
  ASSERT_GT(t.size(), 0u);

  // Walker sanity against cached geometry.
  std::size_t walked_bytes = 0, blocks = 0;
  std::ptrdiff_t min_off = PTRDIFF_MAX, max_end = PTRDIFF_MIN;
  for_each_block(t, 2, [&](std::ptrdiff_t off, std::size_t n) {
    walked_bytes += n;
    ++blocks;
    min_off = std::min(min_off, off);
    max_end = std::max(max_end, off + static_cast<std::ptrdiff_t>(n));
  });
  EXPECT_EQ(walked_bytes, 2 * t.size());
  EXPECT_LE(blocks, 2 * t.block_stats().block_count);
  EXPECT_GE(min_off, t.true_lb());

  // Round trip on real data: host array covering both elements.
  const std::size_t span =
      static_cast<std::size_t>(max_end - std::min<std::ptrdiff_t>(0, min_off)) +
      t.extent() + 64;
  std::vector<double> src(span / 8 + 2);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<double>(i) * 0.75 + 1.0;
  const std::size_t base_off =
      min_off < 0 ? static_cast<std::size_t>(-min_off) / 8 + 1 : 0;

  std::vector<std::byte> packed(pack_size(2, t));
  std::size_t pos = 0;
  pack(src.data() + base_off, 2, t, packed.data(), packed.size(), pos);
  EXPECT_EQ(pos, packed.size());

  std::vector<double> dst(src.size(), -5.0);
  pos = 0;
  unpack(packed.data(), packed.size(), pos, dst.data() + base_off, 2, t);
  EXPECT_TRUE(
      typed_equal(src.data() + base_off, dst.data() + base_off, 2, t));
  // And bytes outside the layout are untouched.
  std::size_t touched = 0;
  for (std::size_t i = 0; i < dst.size(); ++i)
    if (dst[i] != -5.0) ++touched;
  EXPECT_EQ(touched, 2 * t.size() / 8);
}

TEST_P(RandomTypeRoundTrip, SignatureByteTotalMatchesSize) {
  std::mt19937_64 rng(GetParam() * 104729 + 7);
  const Datatype t = random_type(rng, 3);
  EXPECT_EQ(t.signature().total_bytes(), t.size());
}

// ---------------------------------------------------------------------------
// Cost-model monotonicity across all profiles.
// ---------------------------------------------------------------------------

class CostMonotonic : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Profiles, CostMonotonic,
                         ::testing::ValuesIn(MachineProfile::names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST_P(CostMonotonic, AllTermsNondecreasingInBytes) {
  const CostModel m(MachineProfile::by_name(GetParam()));
  double prev_wire = -1, prev_stage = -1, prev_copy = -1;
  for (std::size_t bytes = 8; bytes <= (std::size_t{1} << 30); bytes *= 4) {
    const BlockStats strided{bytes / 8, bytes, 8, 8};
    const double w = m.wire_time(bytes);
    const double s = m.internal_staging_time(bytes, strided);
    const double c = m.user_copy_time(bytes, strided);
    EXPECT_GT(w, prev_wire);
    EXPECT_GT(s, prev_stage);
    EXPECT_GT(c, prev_copy);
    prev_wire = w;
    prev_stage = s;
    prev_copy = c;
  }
}

TEST_P(CostMonotonic, EagerArrivalBeforeRendezvousNearLimit) {
  const auto& p = MachineProfile::by_name(GetParam());
  const CostModel m(p);
  const std::size_t n = p.eager_limit_bytes;
  const BlockStats contig{1, n, n, n};
  // With both sides ready at 0, eager (just under) beats rendezvous
  // (just over) on arrival: the eager-limit dip.
  const auto e = m.eager_timing(0.0, n, contig);
  const auto r = m.rendezvous_timing(0.0, 0.0, n + 8, contig);
  EXPECT_LT(e.arrival, r.arrival);
}

TEST_P(CostMonotonic, BlockFactorDecreasesWithBlockLength) {
  const CostModel m(MachineProfile::by_name(GetParam()));
  double prev = 1e9;
  for (std::size_t block = 4; block <= 4096; block *= 2) {
    const BlockStats s{1024, 1024 * block, block, block};
    const double f = m.block_factor(s);
    EXPECT_LT(f, prev);
    prev = f;
  }
  EXPECT_LT(m.block_factor_contiguous(), prev);
}

// ---------------------------------------------------------------------------
// Layout <-> datatype consistency over a parameter grid.
// ---------------------------------------------------------------------------

struct StrideCase {
  std::size_t nblocks, blocklen, stride;
};

class StrideGrid : public ::testing::TestWithParam<StrideCase> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, StrideGrid,
    ::testing::Values(StrideCase{1, 1, 2}, StrideCase{7, 1, 2},
                      StrideCase{16, 1, 3}, StrideCase{9, 2, 2},
                      StrideCase{33, 2, 7}, StrideCase{5, 8, 8},
                      StrideCase{128, 4, 5}, StrideCase{64, 16, 64}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.nblocks) + "b" +
             std::to_string(info.param.blocklen) + "s" +
             std::to_string(info.param.stride);
    });

TEST_P(StrideGrid, EnumerationMatchesDatatype) {
  const auto [n, b, s] = GetParam();
  const ncsend::Layout l = ncsend::Layout::strided(n, b, s);
  EXPECT_EQ(l.element_count(), n * b);
  std::size_t count = 0;
  l.for_each_element([&](std::size_t k, std::size_t src) {
    EXPECT_EQ(src, (k / b) * s + (k % b));
    ++count;
  });
  EXPECT_EQ(count, n * b);
  EXPECT_EQ(l.datatype().size(), l.payload_bytes());
  EXPECT_LE(l.stats().block_count, n);
}

TEST_P(StrideGrid, DenseWhenStrideEqualsBlocklen) {
  const auto [n, b, s] = GetParam();
  const ncsend::Layout l = ncsend::Layout::strided(n, b, s);
  EXPECT_EQ(l.datatype().is_single_block(), s == b || n <= 1);
}

}  // namespace
