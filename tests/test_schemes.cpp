// The eight send schemes: registry, end-to-end delivery for every
// scheme x layout combination, and per-scheme behavioural checks.
#include <gtest/gtest.h>

#include "ncsend/ncsend.hpp"

using namespace ncsend;

namespace {

minimpi::UniverseOptions exact_opts() {
  minimpi::UniverseOptions o;
  o.nranks = 2;
  o.wtime_resolution = 0.0;
  return o;
}

TEST(SchemeRegistry, AllEightNames) {
  const auto& names = all_scheme_names();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names.front(), "reference");
  EXPECT_EQ(names.back(), "packing(v)");
  for (const auto& n : names) {
    auto s = make_scheme(n);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), n);
  }
  EXPECT_THROW((void)make_scheme("carrier pigeon"), minimpi::Error);
}

struct Combo {
  std::string scheme;
  std::string layout;
};

class AllCombos : public ::testing::TestWithParam<Combo> {};

Layout layout_by_name(const std::string& name, std::size_t elems) {
  if (name == "strided") return Layout::strided(elems, 1, 2);
  if (name == "blocked") return Layout::strided(elems / 4, 4, 9);
  if (name == "multigrid") return Layout::multigrid(elems, 2);
  if (name == "fem") return Layout::fem_boundary(elems, elems * 7);
  if (name == "subarray2d")
    return Layout::subarray2d(64, 64, elems / 32, 32, 8, 16);
  throw std::runtime_error("bad layout name");
}

std::vector<Combo> all_combos() {
  std::vector<Combo> combos;
  for (const auto& s : all_scheme_names())
    for (const auto& l :
         {"strided", "blocked", "multigrid", "fem", "subarray2d"})
      combos.push_back({s, l});
  return combos;
}

INSTANTIATE_TEST_SUITE_P(
    DeliveryMatrix, AllCombos, ::testing::ValuesIn(all_combos()),
    [](const auto& info) {
      std::string n = info.param.scheme + "_" + info.param.layout;
      std::string out;
      for (const char c : n)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return out;
    });

TEST_P(AllCombos, DeliversExactBytes) {
  // Every scheme must deliver byte-identical data for every layout; this
  // is the integration backbone of the whole study.
  const Layout layout = layout_by_name(GetParam().layout, 256);
  HarnessConfig cfg;
  cfg.reps = 3;
  const RunResult r =
      run_experiment(exact_opts(), GetParam().scheme, layout, cfg);
  EXPECT_TRUE(r.data_checked);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.payload_bytes, layout.payload_bytes());
  EXPECT_GT(r.time(), 0.0);
}

TEST(SchemeBehaviour, ReferenceIsFastest) {
  const Layout layout = Layout::strided(4096, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 5;
  const double ref =
      run_experiment(exact_opts(), "reference", layout, cfg).time();
  for (const auto& s : all_scheme_names()) {
    if (s == "reference") continue;
    const double t = run_experiment(exact_opts(), s, layout, cfg).time();
    EXPECT_GE(t, ref) << s;
  }
}

TEST(SchemeBehaviour, PackingVectorTracksCopying) {
  // Paper §4.3: packing a derived type == manual copying.
  const Layout layout = Layout::strided(1 << 15, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 5;
  const double copying =
      run_experiment(exact_opts(), "copying", layout, cfg).time();
  const double packing =
      run_experiment(exact_opts(), "packing(v)", layout, cfg).time();
  EXPECT_NEAR(packing / copying, 1.0, 0.05);
}

TEST(SchemeBehaviour, PackingElementIsWorst) {
  const Layout layout = Layout::strided(1 << 14, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 3;
  double worst_other = 0.0;
  for (const auto& s : all_scheme_names()) {
    if (s == "packing(e)") continue;
    worst_other = std::max(
        worst_other, run_experiment(exact_opts(), s, layout, cfg).time());
  }
  const double pe =
      run_experiment(exact_opts(), "packing(e)", layout, cfg).time();
  EXPECT_GT(pe, worst_other);
}

TEST(SchemeBehaviour, BufferedSlowerThanCopying) {
  // Paper §4.2: Bsend is at a disadvantage even at intermediate sizes.
  const Layout layout = Layout::strided(1 << 16, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 5;
  const double copying =
      run_experiment(exact_opts(), "copying", layout, cfg).time();
  const double buffered =
      run_experiment(exact_opts(), "buffered", layout, cfg).time();
  EXPECT_GT(buffered, copying);
}

TEST(SchemeBehaviour, OneSidedSlowForSmallMessages) {
  // Paper §4.4: fence overhead dominates small transfers.
  const Layout layout = Layout::strided(128, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 5;
  const double ref =
      run_experiment(exact_opts(), "reference", layout, cfg).time();
  const double os =
      run_experiment(exact_opts(), "onesided", layout, cfg).time();
  EXPECT_GT(os, 2.0 * ref);
}

TEST(SchemeBehaviour, VectorAndSubarrayEquivalent) {
  // Two descriptions of the same bytes ride the same engine.
  const Layout layout = Layout::strided(1 << 14, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 5;
  const double v =
      run_experiment(exact_opts(), "vector type", layout, cfg).time();
  const double s =
      run_experiment(exact_opts(), "subarray", layout, cfg).time();
  EXPECT_NEAR(v / s, 1.0, 0.02);
}

TEST(SchemeBehaviour, TimesAreDeterministic) {
  const Layout layout = Layout::strided(2048, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 5;
  for (const auto& s : all_scheme_names()) {
    const double a = run_experiment(exact_opts(), s, layout, cfg).time();
    const double b = run_experiment(exact_opts(), s, layout, cfg).time();
    EXPECT_EQ(a, b) << s;
  }
}

TEST(SchemeBehaviour, ModeledModeTimingMatchesFunctional) {
  // Phantom sweep runs must report the same virtual times as functional
  // runs — the invariant that makes the 1e9-byte sweeps trustworthy.
  const Layout layout = Layout::strided(1 << 14, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 4;
  cfg.verify = false;
  for (const auto& s : all_scheme_names()) {
    minimpi::UniverseOptions functional = exact_opts();
    minimpi::UniverseOptions modeled = exact_opts();
    modeled.functional = false;
    const double tf = run_experiment(functional, s, layout, cfg).time();
    const double tm = run_experiment(modeled, s, layout, cfg).time();
    EXPECT_EQ(tf, tm) << s;
  }
}

}  // namespace
