// Remaining API corners: error-class names, probe on rendezvous
// messages, status accessors, dup semantics, advisor/report edges.
#include <gtest/gtest.h>

#include <sstream>

#include "minimpi/minimpi.hpp"
#include "ncsend/ncsend.hpp"

using namespace minimpi;

namespace {

TEST(ErrorClasses, AllHaveStableNames) {
  for (const ErrorClass ec :
       {ErrorClass::internal, ErrorClass::invalid_arg, ErrorClass::invalid_type,
        ErrorClass::invalid_rank, ErrorClass::invalid_tag, ErrorClass::truncate,
        ErrorClass::buffer, ErrorClass::rma_sync, ErrorClass::rma_range,
        ErrorClass::type_mismatch, ErrorClass::not_supported}) {
    const auto name = to_string(ec);
    EXPECT_TRUE(name.starts_with("MM_ERR_")) << name;
  }
  const Error e(ErrorClass::truncate, "too big");
  EXPECT_NE(std::string(e.what()).find("MM_ERR_TRUNCATE"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("too big"), std::string::npos);
}

TEST(TraceEvents, AllHaveNames) {
  for (int i = 0; i <= static_cast<int>(TraceEvent::collective); ++i) {
    const auto n = to_string(static_cast<TraceEvent>(i));
    EXPECT_NE(n, "?") << i;
    EXPECT_NE(n.find('.') == std::string_view::npos &&
                  n != "collective",
              true)
        << n;
  }
}

TEST(Status, CountConvertsBytes) {
  const Status st{2, 7, 96};
  EXPECT_EQ(st.count(sizeof(double)), 12u);
  EXPECT_EQ(st.count(sizeof(float)), 24u);
  EXPECT_EQ(st.count(0), 0u);  // guarded division
}

TEST(Probe, SeesRendezvousRtsBeforeTransfer) {
  UniverseOptions o;
  o.nranks = 2;
  o.wtime_resolution = 0.0;
  Universe::run(o, [](Comm& c) {
    const std::size_t n = 1 << 15;  // above the eager limit
    if (c.rank() == 0) {
      std::vector<double> buf(n, 1.0);
      c.send(buf.data(), n, Datatype::float64(), 1, 3);
    } else {
      const Status st = c.probe(0, 3);
      EXPECT_EQ(st.count_bytes, n * 8);
      // Probing must not complete the transfer: the sender is still
      // blocked until our matching receive.
      std::vector<double> in(n);
      c.recv(in.data(), n, Datatype::float64(), 0, 3);
      EXPECT_EQ(in[0], 1.0);
    }
  });
}

TEST(Datatype, DupSharesStructure) {
  Datatype v = Datatype::vector(8, 1, 2, Datatype::float64());
  const Datatype before_commit = v.dup();
  EXPECT_FALSE(before_commit.committed());
  v.commit();
  const Datatype after_commit = v.dup();
  EXPECT_TRUE(after_commit.committed());
  EXPECT_EQ(after_commit.size(), v.size());
  EXPECT_TRUE(after_commit == v);       // same node tree
  EXPECT_FALSE(before_commit == Datatype::float64());
}

TEST(Wtick, ReportsResolution) {
  UniverseOptions o;
  o.nranks = 1;
  o.wtime_resolution = 2.5e-7;
  Universe::run(o, [](Comm& c) { EXPECT_DOUBLE_EQ(c.wtick(), 2.5e-7); });
}

TEST(ChargeNegative, Throws) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    EXPECT_THROW(c.charge(-1.0), Error);
  });
}

TEST(Universe, ZeroRanksRejected) {
  UniverseOptions o;
  o.nranks = 0;
  EXPECT_THROW(Universe::run(o, [](Comm&) {}), Error);
}

TEST(Universe, ExceptionsPropagateToCaller) {
  UniverseOptions o;
  o.nranks = 1;
  EXPECT_THROW(Universe::run(o,
                             [](Comm&) {
                               throw Error(ErrorClass::internal, "boom");
                             }),
               Error);
}

TEST(Layout, ContiguityEdgeCases) {
  using ncsend::Layout;
  EXPECT_TRUE(Layout::contiguous(10).is_contiguous());
  EXPECT_TRUE(Layout::strided(1, 4, 9).is_contiguous());   // one block
  EXPECT_TRUE(Layout::strided(10, 3, 3).is_contiguous());  // dense stride
  EXPECT_FALSE(Layout::strided(10, 3, 4).is_contiguous());
  EXPECT_TRUE(Layout::subarray2d(4, 6, 2, 6, 1, 0).is_contiguous());
  EXPECT_FALSE(Layout::subarray2d(4, 6, 2, 3, 1, 0).is_contiguous());
}

TEST(Report, EmptySweepDoesNotCrash) {
  ncsend::SweepResult empty;
  std::ostringstream os;
  ncsend::ascii_plot(os, empty, ncsend::Metric::time);
  ncsend::write_csv(os, empty);
  ncsend::write_json(os, empty);
  SUCCEED();
}

TEST(Advisor, KnlStillRecommendsPackingForLarge) {
  const auto rec =
      ncsend::advise(MachineProfile::knl_impi(), 500'000'000,
                     ncsend::Layout::strided(62'500'000, 1, 2));
  EXPECT_EQ(rec.scheme, "packing(v)");
}

TEST(BsendPool, HighWaterTracksPeak) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    auto attach = Buffer::allocate(4096);
    c.buffer_attach(attach);
    std::vector<double> data(32);
    c.bsend(data.data(), 32, Datatype::float64(), 0, 0);
    c.bsend(data.data(), 32, Datatype::float64(), 0, 1);
    const std::size_t peak = c.bsend_high_water();
    EXPECT_GE(peak, 2 * (256 + 64));  // two messages + per-message overhead
    std::vector<double> in(32);
    c.recv(in.data(), 32, Datatype::float64(), 0, 0);
    c.recv(in.data(), 32, Datatype::float64(), 0, 1);
    c.buffer_detach();
    EXPECT_EQ(c.bsend_high_water(), peak);  // high water survives drain
  });
}

}  // namespace
