// Generalized active target (post/start/complete/wait) and passive
// target (lock/unlock) synchronization.
#include <gtest/gtest.h>

#include <numeric>

#include "minimpi/minimpi.hpp"

using namespace minimpi;

namespace {

UniverseOptions two_ranks() {
  UniverseOptions o;
  o.nranks = 2;
  o.wtime_resolution = 0.0;
  return o;
}

TEST(Pscw, PutDeliversAtWait) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> local(16, 0.0);
    Window win = c.win_create(local.data(), local.size() * 8);
    if (c.rank() == 0) {
      std::vector<double> src(16);
      std::iota(src.begin(), src.end(), 1.0);
      const Rank targets[] = {1};
      win.start(targets);
      win.put(src.data(), 16, Datatype::float64(), 1, 0);
      win.complete();
    } else {
      const Rank origins[] = {0};
      win.post(origins);
      win.wait_post();
      for (int i = 0; i < 16; ++i) EXPECT_EQ(local[i], 1.0 + i);
    }
  });
}

TEST(Pscw, StartBlocksUntilPost) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> local(1, 0.0);
    Window win = c.win_create(local.data(), 8);
    if (c.rank() == 0) {
      const Rank targets[] = {1};
      win.start(targets);  // must not proceed before the (late) post
      EXPECT_GE(c.clock(), 0.5);  // the post happened at >= 0.5
      const double x = 2.0;
      win.put(&x, 1, Datatype::float64(), 1, 0);
      win.complete();
    } else {
      c.charge(0.5);  // target posts late
      const Rank origins[] = {0};
      win.post(origins);
      win.wait_post();
      EXPECT_EQ(local[0], 2.0);
    }
  });
}

TEST(Pscw, RepeatedEpochs) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> local(1, 0.0);
    Window win = c.win_create(local.data(), 8);
    for (int i = 1; i <= 4; ++i) {
      if (c.rank() == 0) {
        const Rank targets[] = {1};
        win.start(targets);
        const double v = i;
        win.put(&v, 1, Datatype::float64(), 1, 0);
        win.complete();
      } else {
        const Rank origins[] = {0};
        win.post(origins);
        win.wait_post();
        EXPECT_EQ(local[0], static_cast<double>(i));
      }
    }
  });
}

TEST(Pscw, PutOutsideAccessGroupThrows) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    std::vector<double> local(1);
    Window win = c.win_create(local.data(), 8);
    const Rank origins[] = {0};
    win.post(origins);
    const Rank targets[] = {0};
    win.start(targets);
    // Target 0 is in the group; that works...
    const double x = 1.0;
    win.put(&x, 1, Datatype::float64(), 0, 0);
    win.complete();
    win.wait_post();
    // ...but an op with no epoch open must throw.
    try {
      win.put(&x, 1, Datatype::float64(), 0, 0);
      FAIL() << "expected rma_sync error";
    } catch (const Error& e) {
      EXPECT_EQ(e.error_class(), ErrorClass::rma_sync);
    }
  });
}

TEST(Pscw, CheaperThanFenceForSmallMessages) {
  // The fence's global synchronization cost is the paper's explanation
  // for slow small one-sided transfers; PSCW avoids it.
  auto elapsed = [](bool use_fence) {
    double dt = 0.0;
    Universe::run(UniverseOptions{.nranks = 2, .wtime_resolution = 0.0},
                  [&](Comm& c) {
      std::vector<double> local(8, 0.0);
      Window win = c.win_create(local.data(), 64);
      if (use_fence) win.fence();
      c.barrier();
      const double t0 = c.clock();
      for (int i = 0; i < 4; ++i) {
        if (use_fence) {
          if (c.rank() == 0) {
            const double x = i;
            win.put(&x, 1, Datatype::float64(), 1, 0);
          }
          win.fence();
        } else {
          if (c.rank() == 0) {
            const Rank targets[] = {1};
            win.start(targets);
            const double x = i;
            win.put(&x, 1, Datatype::float64(), 1, 0);
            win.complete();
          } else {
            const Rank origins[] = {0};
            win.post(origins);
            win.wait_post();
          }
        }
      }
      c.barrier();
      if (c.rank() == 0) dt = c.clock() - t0;
    });
    return dt;
  };
  EXPECT_LT(elapsed(false), elapsed(true));
}

TEST(PassiveTarget, LockPutUnlockDelivers) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> local(4, 0.0);
    Window win = c.win_create(local.data(), 32);
    if (c.rank() == 0) {
      win.lock(1);
      const double vals[2] = {4.0, 5.0};
      win.put(vals, 2, Datatype::float64(), 1, 8);
      win.unlock(1);
      c.send(nullptr, 0, Datatype::byte(), 1, 0);  // "done"
    } else {
      c.recv(nullptr, 0, Datatype::byte(), 0, 0);
      EXPECT_EQ(local[0], 0.0);
      EXPECT_EQ(local[1], 4.0);
      EXPECT_EQ(local[2], 5.0);
    }
  });
}

TEST(PassiveTarget, LocksAreExclusive) {
  UniverseOptions o;
  o.nranks = 3;
  o.wtime_resolution = 0.0;
  Universe::run(o, [](Comm& c) {
    std::vector<double> local(1, 0.0);
    Window win = c.win_create(local.data(), 8);
    if (c.rank() != 2) {
      // Two origins accumulate under the same exclusive lock.
      for (int i = 0; i < 10; ++i) {
        win.lock(2);
        win.accumulate_sum_f64(std::array<double, 1>{1.0}.data(), 1, 2, 0);
        win.unlock(2);
      }
    }
    c.barrier();
    if (c.rank() == 2) {
      EXPECT_EQ(local[0], 20.0);
    }
  });
}

TEST(PassiveTarget, MisuseThrows) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    std::vector<double> local(1);
    Window win = c.win_create(local.data(), 8);
    EXPECT_THROW(win.unlock(0), Error);  // not locked
    win.lock(0);
    EXPECT_THROW(win.lock(0), Error);  // double lock by same rank
    const double x = 1.0;
    win.put(&x, 1, Datatype::float64(), 0, 0);
    win.unlock(0);
  });
}

TEST(PassiveTarget, LockSerializationAdvancesClock) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> local(1, 0.0);
    Window win = c.win_create(local.data(), 8);
    // Rank 1 holds the lock busily; rank 0 must serialize behind it.
    if (c.rank() == 1) {
      win.lock(0);
      c.charge(1.0);  // long epoch
      win.unlock(0);
    } else {
      c.charge(1e-6);  // make sure rank 1 wins the race occasionally not
      win.lock(0);
      // Acquisition time must reflect the previous holder's release.
      // (Host scheduling decides who wins; if rank 0 got it first this
      // assertion is vacuous, so only check when serialized.)
      if (c.clock() > 0.5) {
        EXPECT_GE(c.clock(), 1.0);
      }
      win.unlock(0);
    }
  });
}

}  // namespace
