// Cache occupancy model and the 50 MB flusher.
#include <gtest/gtest.h>

#include "memsim/cache_model.hpp"
#include "memsim/flusher.hpp"

using memsim::CacheModel;

namespace {

TEST(CacheModel, ColdThenWarm) {
  CacheModel c(1 << 20);
  EXPECT_EQ(c.touch(1, 4096), 0.0);      // first touch: cold
  EXPECT_EQ(c.touch(1, 4096), 1.0);      // second: fully warm
  EXPECT_EQ(c.warm_fraction(1, 4096), 1.0);
  EXPECT_EQ(c.warm_fraction(2, 4096), 0.0);
}

TEST(CacheModel, FlushEvictsEverything) {
  CacheModel c(1 << 20);
  c.touch(1, 4096);
  c.touch(2, 8192);
  EXPECT_GT(c.resident_bytes(), 0u);
  c.flush();
  EXPECT_EQ(c.resident_bytes(), 0u);
  EXPECT_EQ(c.warm_fraction(1, 4096), 0.0);
}

TEST(CacheModel, OversizedRegionOnlyPartiallyWarm) {
  CacheModel c(1000);
  c.touch(1, 4000);
  // Only `capacity` bytes can be resident.
  EXPECT_NEAR(c.warm_fraction(1, 4000), 0.25, 1e-12);
  EXPECT_EQ(c.warm_fraction(1, 1000), 1.0);
}

TEST(CacheModel, LruEviction) {
  CacheModel c(1000);
  c.touch(1, 600);
  c.touch(2, 600);  // evicts region 1
  EXPECT_EQ(c.warm_fraction(1, 600), 0.0);
  EXPECT_EQ(c.warm_fraction(2, 600), 1.0);
}

TEST(CacheModel, TouchRefreshesRecency) {
  CacheModel c(1200);
  c.touch(1, 500);
  c.touch(2, 500);
  c.touch(1, 500);  // refresh region 1
  c.touch(3, 500);  // evicts region 2 (least recent), not 1
  EXPECT_EQ(c.warm_fraction(1, 500), 1.0);
  EXPECT_EQ(c.warm_fraction(2, 500), 0.0);
  EXPECT_EQ(c.warm_fraction(3, 500), 1.0);
}

TEST(CacheModel, ZeroByteTouchIsNeutral) {
  CacheModel c(1000);
  EXPECT_EQ(c.touch(1, 0), 0.0);
  EXPECT_EQ(c.resident_bytes(), 0u);
}

TEST(Flusher, ChargesTimeAndClearsCache) {
  memsim::CacheModel cache(1 << 20);
  cache.touch(1, 4096);
  minimpi::UniverseOptions opts;
  opts.nranks = 1;
  minimpi::Universe::run(opts, [&](minimpi::Comm& comm) {
    memsim::CacheFlusher f(cache, /*enabled=*/true, 50'000'000);
    const double t0 = comm.clock();
    f.flush(comm);
    EXPECT_GT(comm.clock(), t0);  // the 50 MB rewrite costs time
  });
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

TEST(Flusher, DisabledIsNoop) {
  memsim::CacheModel cache(1 << 20);
  cache.touch(1, 4096);
  minimpi::UniverseOptions opts;
  opts.nranks = 1;
  minimpi::Universe::run(opts, [&](minimpi::Comm& comm) {
    memsim::CacheFlusher f(cache, /*enabled=*/false);
    const double t0 = comm.clock();
    f.flush(comm);
    EXPECT_EQ(comm.clock(), t0);
  });
  EXPECT_GT(cache.resident_bytes(), 0u);
}

}  // namespace
