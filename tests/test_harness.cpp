// Ping-pong harness: repetition counts, flushing, verification wiring.
#include <gtest/gtest.h>

#include "ncsend/ncsend.hpp"

using namespace ncsend;

namespace {

minimpi::UniverseOptions opts() {
  minimpi::UniverseOptions o;
  o.nranks = 2;
  o.wtime_resolution = 0.0;
  return o;
}

TEST(Harness, TwentyRepsByDefault) {
  const HarnessConfig cfg;
  EXPECT_EQ(cfg.reps, 20);  // paper §3.2
  EXPECT_TRUE(cfg.flush);
  EXPECT_EQ(cfg.flush_bytes, 50'000'000u);
  const RunResult r =
      run_experiment(opts(), "copying", Layout::strided(512, 1, 2), cfg);
  EXPECT_EQ(r.timing.samples, 20);
}

TEST(Harness, OutlierRuleNeverFiresOnDeterministicClocks) {
  // Paper: "in practice this test is never needed" — with virtual time
  // it must never fire.
  for (const auto& s : all_scheme_names()) {
    const RunResult r =
        run_experiment(opts(), s, Layout::strided(1024, 1, 2));
    EXPECT_EQ(r.timing.rejected, 0) << s;
  }
}

TEST(Harness, ResultMetadata) {
  const Layout l = Layout::strided(256, 1, 2);
  const RunResult r = run_experiment(opts(), "vector type", l);
  EXPECT_EQ(r.scheme, "vector type");
  EXPECT_EQ(r.layout, l.name());
  EXPECT_EQ(r.payload_bytes, 2048u);
  EXPECT_GT(r.bandwidth_Bps(), 0.0);
}

TEST(Harness, FlushingSlowsIntermediateSizes) {
  // Paper §4.6: no cache flushing has "a clear positive effect on
  // intermediate size messages".
  const Layout l = Layout::strided(1 << 16, 1, 2);  // 512 KB payload
  HarnessConfig flushed, warm;
  flushed.reps = warm.reps = 10;
  warm.flush = false;
  const double t_flushed =
      run_experiment(opts(), "copying", l, flushed).time();
  const double t_warm = run_experiment(opts(), "copying", l, warm).time();
  EXPECT_LT(t_warm, t_flushed);
}

TEST(Harness, FlushingIrrelevantForReference) {
  // The reference scheme has no user-space copy loop, so cache warmth
  // must not change it.
  const Layout l = Layout::strided(1 << 14, 1, 2);
  HarnessConfig flushed, warm;
  flushed.reps = warm.reps = 6;
  warm.flush = false;
  const double tf = run_experiment(opts(), "reference", l, flushed).time();
  const double tw = run_experiment(opts(), "reference", l, warm).time();
  // Equal up to clock-subtraction noise (the samples are taken at
  // different absolute virtual times).
  EXPECT_NEAR(tw / tf, 1.0, 1e-9);
}

TEST(Harness, VerificationCatchesCorruption) {
  // A scheme that sends the wrong bytes must be flagged.  Run a custom
  // broken scheme through the harness.
  class BrokenScheme final : public TwoSidedScheme {
   public:
    std::string_view name() const override { return "broken"; }
    void setup(SchemeContext& ctx) override {
      if (ctx.sender()) buf_ = ctx.allocate(ctx.payload_bytes());
      // never fills buf_: receiver gets zeros instead of the layout data
    }
    void ping(SchemeContext& ctx) override {
      ctx.comm.send(buf_.data(), ctx.layout.element_count(),
                    minimpi::Datatype::float64(), 1, ping_tag);
    }

   private:
    minimpi::Buffer buf_;
  };

  RunResult result;
  minimpi::Universe::run(opts(), [&](minimpi::Comm& comm) {
    BrokenScheme scheme;
    HarnessConfig cfg;
    cfg.reps = 2;
    run_pingpong_rank(comm, scheme, Layout::strided(64, 1, 2), cfg, &result);
  });
  EXPECT_TRUE(result.data_checked);
  EXPECT_FALSE(result.verified);
}

TEST(Harness, PhantomRunsSkipVerification) {
  minimpi::UniverseOptions o = opts();
  o.functional_payload_limit = 16;  // everything phantom
  const RunResult r =
      run_experiment(o, "copying", Layout::strided(4096, 1, 2));
  EXPECT_FALSE(r.data_checked);
  EXPECT_TRUE(r.verified);  // vacuously
}

TEST(Harness, FillValueIsDeterministic) {
  EXPECT_EQ(fill_value(123), fill_value(123));
  EXPECT_NE(fill_value(1), fill_value(2));
}

TEST(Harness, NeedsTwoRanks) {
  minimpi::UniverseOptions o;
  o.nranks = 1;
  EXPECT_THROW(
      run_experiment(o, "reference", Layout::strided(16, 1, 2)),
      minimpi::Error);
}

}  // namespace
