// One-sided communication: windows, fence epochs, put/get/accumulate.
#include <gtest/gtest.h>

#include <numeric>

#include "minimpi/minimpi.hpp"

using namespace minimpi;

namespace {

UniverseOptions two_ranks() {
  UniverseOptions o;
  o.nranks = 2;
  o.wtime_resolution = 0.0;
  return o;
}

TEST(Rma, PutDeliversAtFence) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> local(16, 0.0);
    Window win = c.win_create(local.data(), local.size() * 8);
    win.fence();
    if (c.rank() == 0) {
      std::vector<double> src(16);
      std::iota(src.begin(), src.end(), 1.0);
      win.put(src.data(), 16, Datatype::float64(), 1, 0);
    }
    win.fence();
    if (c.rank() == 1) {
      for (int i = 0; i < 16; ++i) EXPECT_EQ(local[i], 1.0 + i);
    }
  });
}

TEST(Rma, PutOfDerivedTypePacksToTarget) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> local(8, 0.0);
    Window win = c.win_create(local.data(), local.size() * 8);
    win.fence();
    if (c.rank() == 0) {
      Datatype vec = Datatype::vector(8, 1, 2, Datatype::float64());
      vec.commit();
      std::vector<double> src(16);
      std::iota(src.begin(), src.end(), 0.0);
      win.put(src.data(), 1, vec, 1, 0);
    }
    win.fence();
    if (c.rank() == 1) {
      for (int i = 0; i < 8; ++i) EXPECT_EQ(local[i], 2.0 * i);
    }
  });
}

TEST(Rma, GetReadsRemoteWindow) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> local(8, c.rank() == 1 ? 5.0 : 0.0);
    Window win = c.win_create(local.data(), local.size() * 8);
    win.fence();
    std::vector<double> fetched(8, -1.0);
    if (c.rank() == 0)
      win.get(fetched.data(), 8, Datatype::float64(), 1, 0);
    win.fence();
    if (c.rank() == 0) {
      for (const double v : fetched) {
        EXPECT_EQ(v, 5.0);
      }
    }
  });
}

TEST(Rma, AccumulateSums) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> local(4, 10.0);
    Window win = c.win_create(local.data(), local.size() * 8);
    win.fence();
    if (c.rank() == 0) {
      const double add[4] = {1, 2, 3, 4};
      win.accumulate_sum_f64(add, 4, 1, 0);
    }
    win.fence();
    if (c.rank() == 1) {
      EXPECT_EQ(local[0], 11.0);
      EXPECT_EQ(local[3], 14.0);
    }
  });
}

TEST(Rma, PutOutsideEpochThrows) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    std::vector<double> local(4);
    Window win = c.win_create(local.data(), 32);
    const double x = 1.0;
    try {
      win.put(&x, 1, Datatype::float64(), 0, 0);
      FAIL() << "expected epoch error";
    } catch (const Error& e) {
      EXPECT_EQ(e.error_class(), ErrorClass::rma_sync);
    }
  });
}

TEST(Rma, PutBeyondWindowThrows) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    std::vector<double> local(4);
    Window win = c.win_create(local.data(), 32);
    win.fence();
    const double x[2] = {1.0, 2.0};
    try {
      win.put(x, 2, Datatype::float64(), 0, 24);  // 24+16 > 32
      FAIL() << "expected range error";
    } catch (const Error& e) {
      EXPECT_EQ(e.error_class(), ErrorClass::rma_range);
    }
  });
}

TEST(Rma, FenceCostsTime) {
  Universe::run(two_ranks(), [](Comm& c) {
    Window win = c.win_create(nullptr, 0);
    const double t0 = c.clock();
    win.fence();
    win.fence();
    EXPECT_GE(c.clock(), t0 + 2 * c.model().fence_time());
  });
}

TEST(Rma, FenceWaitsForTransferArrival) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> local(1 << 16, 0.0);
    Window win = c.win_create(local.data(), local.size() * 8);
    win.fence();
    const double t_open = c.clock();
    if (c.rank() == 0) {
      std::vector<double> src(1 << 16, 1.0);
      win.put(src.data(), src.size(), Datatype::float64(), 1, 0);
    }
    win.fence();
    // The closing fence must include the transfer time of a half-MB put
    // on both ranks (clocks fuse).
    const double min_xfer = (1 << 19) / c.profile().net_bandwidth_Bps;
    EXPECT_GT(c.clock() - t_open, min_xfer);
  });
}

TEST(Rma, EpochsAreRepeatable) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> local(1, 0.0);
    Window win = c.win_create(local.data(), 8);
    win.fence();
    for (int i = 1; i <= 5; ++i) {
      if (c.rank() == 0) {
        const double v = i;
        win.put(&v, 1, Datatype::float64(), 1, 0);
      }
      win.fence();
      if (c.rank() == 1) {
        EXPECT_EQ(local[0], static_cast<double>(i));
      }
      // Quiet epoch for the local read: the next iteration's put must
      // not overlap it (reading a put target within the same epoch is
      // erroneous in MPI too).
      win.fence();
    }
  });
}

TEST(Rma, MultipleWindowsIndependent) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> a(2, 0.0), b(2, 0.0);
    Window wa = c.win_create(a.data(), 16);
    Window wb = c.win_create(b.data(), 16);
    wa.fence();
    wb.fence();
    if (c.rank() == 0) {
      const double va = 1.0, vb = 2.0;
      wa.put(&va, 1, Datatype::float64(), 1, 0);
      wb.put(&vb, 1, Datatype::float64(), 1, 8);
    }
    wa.fence();
    wb.fence();
    if (c.rank() == 1) {
      EXPECT_EQ(a[0], 1.0);
      EXPECT_EQ(b[1], 2.0);
    }
  });
}

TEST(Rma, WindowSizeQuery) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> local(c.rank() == 0 ? 2 : 8);
    Window win = c.win_create(local.data(), local.size() * 8);
    EXPECT_EQ(win.size(0), 16u);
    EXPECT_EQ(win.size(1), 64u);
  });
}

}  // namespace
