// The resumable partial-pack primitive behind pipelined packing.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "minimpi/datatype/pack.hpp"

using namespace minimpi;

namespace {

Datatype stride2(std::size_t n) {
  Datatype t = Datatype::vector(n, 1, 2, Datatype::float64());
  t.commit();
  return t;
}

TEST(PackRegion, WholeMessageEqualsPack) {
  const Datatype t = stride2(64);
  std::vector<double> src(128);
  std::iota(src.begin(), src.end(), 0.0);
  std::vector<std::byte> whole(512), region(512);
  std::size_t pos = 0;
  pack(src.data(), 1, t, whole.data(), whole.size(), pos);
  const std::size_t n =
      pack_region(src.data(), 1, t, 0, region.data(), 512);
  EXPECT_EQ(n, 512u);
  EXPECT_EQ(std::memcmp(whole.data(), region.data(), 512), 0);
}

TEST(PackRegion, ChunksReassembleExactly) {
  const Datatype t = stride2(100);
  std::vector<double> src(200);
  std::iota(src.begin(), src.end(), 1.0);
  std::vector<std::byte> whole(800);
  std::size_t pos = 0;
  pack(src.data(), 1, t, whole.data(), whole.size(), pos);

  // Reassemble from odd-sized chunks that split blocks mid-element.
  for (const std::size_t chunk : {1u, 3u, 7u, 13u, 64u, 799u}) {
    std::vector<std::byte> out(800, std::byte{0xee});
    std::size_t off = 0;
    while (off < 800) {
      const std::size_t n =
          pack_region(src.data(), 1, t, off, out.data() + off, chunk);
      ASSERT_GT(n, 0u) << "chunk=" << chunk << " off=" << off;
      off += n;
    }
    EXPECT_EQ(std::memcmp(whole.data(), out.data(), 800), 0)
        << "chunk=" << chunk;
  }
}

TEST(PackRegion, MidStreamRegion) {
  const Datatype t = stride2(16);
  std::vector<double> src(32);
  std::iota(src.begin(), src.end(), 0.0);
  // Bytes [24, 56) of the stream are elements 3..6 of the packed data.
  std::vector<std::byte> out(32);
  const std::size_t n = pack_region(src.data(), 1, t, 24, out.data(), 32);
  EXPECT_EQ(n, 32u);
  const auto* d = reinterpret_cast<const double*>(out.data());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(d[i], 2.0 * (3 + i));
}

TEST(PackRegion, ClampsAtEndOfMessage) {
  const Datatype t = stride2(4);
  std::vector<double> src(8, 1.0);
  std::vector<std::byte> out(64);
  EXPECT_EQ(pack_region(src.data(), 1, t, 24, out.data(), 1000), 8u);
  EXPECT_EQ(pack_region(src.data(), 1, t, 32, out.data(), 1000), 0u);
  EXPECT_EQ(pack_region(src.data(), 1, t, 0, out.data(), 0), 0u);
}

TEST(PackRegion, DryRunReportsSizeOnly) {
  const Datatype t = stride2(16);
  EXPECT_EQ(pack_region(nullptr, 1, t, 0, nullptr, 64), 64u);
  EXPECT_EQ(pack_region(nullptr, 1, t, 100, nullptr, 1000), 28u);
}

TEST(PackRegion, MultiCountMessages) {
  Datatype t = Datatype::vector(4, 2, 3, Datatype::float64());
  t.commit();  // 8 doubles per element, extent 11 doubles
  std::vector<double> src(50);
  std::iota(src.begin(), src.end(), 0.0);
  std::vector<std::byte> whole(2 * 64);
  std::size_t pos = 0;
  pack(src.data(), 2, t, whole.data(), whole.size(), pos);
  std::vector<std::byte> out(2 * 64);
  std::size_t off = 0;
  while (off < out.size())
    off += pack_region(src.data(), 2, t, off, out.data() + off, 24);
  EXPECT_EQ(std::memcmp(whole.data(), out.data(), out.size()), 0);
}

TEST(PackRegion, UncommittedThrows) {
  Datatype t = Datatype::vector(4, 1, 2, Datatype::float64());
  std::vector<double> src(8);
  std::byte out[32];
  EXPECT_THROW((void)pack_region(src.data(), 1, t, 0, out, 32), Error);
}

}  // namespace
