// The communication-pattern subsystem: registry and neighbor maps,
// N-rank cells on the experiment engine (jobs=1 vs jobs=4 byte
// determinism), the link-contention model term, end-to-end payload
// verification for halo2d, and the paper's scheme ranking carried from
// ping-pong into multi-rank halo traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "ncsend/ncsend.hpp"

using namespace ncsend;
using minimpi::MachineProfile;

namespace {

Layout stride2(std::size_t elems) { return Layout::strided(elems, 1, 2); }

/// Transfers rank `r` performs, by peer, for quick map checks.
std::vector<int> peers_of(const CommPattern& p, int rank,
                          std::size_t elems = 64) {
  std::vector<int> peers;
  for (const Transfer& t : p.sends(rank, stride2(elems)))
    peers.push_back(t.peer);
  return peers;
}

TEST(PatternRegistry, NamesAndDefaults) {
  for (const auto& family : CommPattern::names()) {
    const auto p = CommPattern::by_name(family);
    EXPECT_GE(p->nranks(), 2) << family;
    EXPECT_GE(p->concurrent_senders(), 1) << family;
  }
  EXPECT_EQ(CommPattern::by_name("pingpong")->nranks(), 2);
  EXPECT_EQ(CommPattern::by_name("multi-pair")->name(), "multi-pair(4)");
  EXPECT_EQ(CommPattern::by_name("multi-pair(2)")->nranks(), 4);
  EXPECT_EQ(CommPattern::by_name("halo2d")->name(), "halo2d(3x3)");
  EXPECT_EQ(CommPattern::by_name("halo2d(4x2)")->nranks(), 8);
  EXPECT_EQ(CommPattern::by_name("halo3d")->name(), "halo3d(2x2x2)");
  EXPECT_EQ(CommPattern::by_name("halo3d(3x2x2)")->nranks(), 12);
  EXPECT_EQ(CommPattern::by_name("transpose(8)")->nranks(), 8);
}

TEST(PatternRegistry, RejectsJunk) {
  EXPECT_THROW(CommPattern::by_name("bogus"), minimpi::Error);
  EXPECT_THROW(CommPattern::by_name("multi-pair(zero)"), minimpi::Error);
  EXPECT_THROW(CommPattern::by_name("multi-pair(0)"), minimpi::Error);
  EXPECT_THROW(CommPattern::by_name("halo2d(1x1)"), minimpi::Error);
  EXPECT_THROW(CommPattern::by_name("halo2d(3)"), minimpi::Error);
  EXPECT_THROW(CommPattern::by_name("halo3d(1x1x1)"), minimpi::Error);
  EXPECT_THROW(CommPattern::by_name("halo3d(2x2)"), minimpi::Error);
  EXPECT_THROW(CommPattern::by_name("halo3d(17x17x17)"), minimpi::Error);
  EXPECT_THROW(CommPattern::by_name("graph(hyper:6)"), minimpi::Error);
  EXPECT_THROW(CommPattern::by_name("graph(2:0>0)"), minimpi::Error);
  EXPECT_THROW(CommPattern::by_name("graph(2:0>5)"), minimpi::Error);
  EXPECT_THROW(CommPattern::by_name("transpose(1)"), minimpi::Error);
  EXPECT_THROW(CommPattern::by_name("pingpong(2)"), minimpi::Error);
}

TEST(Halo2dNeighborMap, CornerEdgeInterior) {
  const auto halo = CommPattern::by_name("halo2d(3x3)");
  ASSERT_EQ(halo->nranks(), 9);
  // Rank layout:  0 1 2 / 3 4 5 / 6 7 8.
  EXPECT_EQ(peers_of(*halo, 0), (std::vector<int>{3, 1}));        // corner
  EXPECT_EQ(peers_of(*halo, 1), (std::vector<int>{4, 0, 2}));     // edge
  EXPECT_EQ(peers_of(*halo, 4), (std::vector<int>{1, 7, 3, 5}));  // interior
  EXPECT_EQ(peers_of(*halo, 8), (std::vector<int>{5, 7}));        // corner
  // Interior out-degree is the steady-state NIC share.
  EXPECT_EQ(halo->concurrent_senders(), 4);
  EXPECT_EQ(CommPattern::by_name("halo2d(2x2)")->concurrent_senders(), 2);
  EXPECT_EQ(CommPattern::by_name("halo2d(1x4)")->concurrent_senders(), 2);
}

TEST(Halo2dNeighborMap, RowsContiguousColumnsStrided) {
  const auto halo = CommPattern::by_name("halo2d(3x3)");
  const std::size_t n = 128;
  const auto sends = halo->sends(4, stride2(n));  // interior rank
  ASSERT_EQ(sends.size(), 4u);
  for (const Transfer& t : sends) {
    EXPECT_EQ(t.layout.element_count(), n);
    const bool row_face = t.peer == 1 || t.peer == 7;
    if (row_face) {
      EXPECT_TRUE(t.layout.is_contiguous()) << "row face to " << t.peer;
    } else {
      // The canonical blocklen-1 strided vector, stride = row length.
      EXPECT_FALSE(t.layout.is_contiguous()) << "column face to " << t.peer;
      EXPECT_TRUE(t.layout.regular());
      EXPECT_EQ(t.layout.footprint_elems(), (n - 1) * n + 1);
    }
  }
}

TEST(Halo3dNeighborMap, SixFacesThreeLayoutKinds) {
  const auto halo = CommPattern::by_name("halo3d(3x3x3)");
  ASSERT_EQ(halo->nranks(), 27);
  // Interior rank (1,1,1) = 13 exchanges all six faces: +-x first,
  // then +-y, then +-z.
  EXPECT_EQ(peers_of(*halo, 13), (std::vector<int>{4, 22, 10, 16, 12, 14}));
  // Corner rank 0 = (0,0,0) has three faces.
  EXPECT_EQ(peers_of(*halo, 0), (std::vector<int>{9, 3, 1}));

  // With 64 requested elements the local block is 8x8x8: x-faces are
  // contiguous slabs, y-faces blocked strided (8 rows of 8, stride 64),
  // z-faces the canonical blocklen-1 vector at stride 8.
  const std::size_t n = 64, s = 8;
  const auto sends = halo->sends(13, stride2(n));
  ASSERT_EQ(sends.size(), 6u);
  for (const Transfer& t : sends)
    EXPECT_EQ(t.layout.element_count(), s * s) << "face to " << t.peer;
  EXPECT_TRUE(sends[0].layout.is_contiguous());   // -x slab
  EXPECT_TRUE(sends[1].layout.is_contiguous());   // +x slab
  for (const std::size_t i : {std::size_t{2}, std::size_t{3}}) {  // y-faces
    EXPECT_FALSE(sends[i].layout.is_contiguous());
    EXPECT_TRUE(sends[i].layout.regular());
    // s blocks of s doubles, stride s^2: footprint (s-1)*s^2 + s.
    EXPECT_EQ(sends[i].layout.footprint_elems(), (s - 1) * s * s + s);
  }
  for (const std::size_t i : {std::size_t{4}, std::size_t{5}}) {  // z-faces
    EXPECT_FALSE(sends[i].layout.is_contiguous());
    EXPECT_TRUE(sends[i].layout.regular());
    // s^2 single elements at stride s: footprint (s^2-1)*s + 1.
    EXPECT_EQ(sends[i].layout.footprint_elems(), (s * s - 1) * s + 1);
  }

  // Busiest out-degree: 6 with three interior dimensions, fewer on
  // thin grids.
  EXPECT_EQ(halo->concurrent_senders(), 6);
  EXPECT_EQ(CommPattern::by_name("halo3d(2x2x2)")->concurrent_senders(), 3);
  EXPECT_EQ(CommPattern::by_name("halo3d(1x1x4)")->concurrent_senders(), 2);
}

TEST(Halo3dPattern, EndToEndPayloadVerification) {
  const auto halo = CommPattern::by_name("halo3d(2x2x2)");
  minimpi::UniverseOptions opts;  // default: everything functional
  HarnessConfig cfg;
  cfg.reps = 2;
  const RunResult r =
      run_pattern_experiment(opts, *halo, "copying", stride2(96), cfg);
  EXPECT_TRUE(r.data_checked);
  EXPECT_TRUE(r.verified);
  // face_side(96) = 9, so every face carries 81 doubles; each 2x2x2
  // rank sends 3 faces per step.
  EXPECT_EQ(r.payload_bytes, 3u * 81u * 8u);
  EXPECT_EQ(r.layout, "halo3d-faces(n=81)");
}

TEST(PatternNeighborMap, EveryTransferHasAWellFormedTarget) {
  for (const char* name : {"multi-pair(3)", "halo2d(2x4)", "transpose(5)"}) {
    const auto p = CommPattern::by_name(name);
    std::size_t transfers = 0;
    for (int r = 0; r < p->nranks(); ++r) {
      for (const Transfer& t : p->sends(r, stride2(32))) {
        ++transfers;
        EXPECT_GE(t.peer, 0) << name;
        EXPECT_LT(t.peer, p->nranks()) << name;
        EXPECT_NE(t.peer, r) << name;
      }
    }
    EXPECT_GT(transfers, 0u) << name;
  }
  // Transpose is all-to-all: N*(N-1) directed panels.
  const auto tp = CommPattern::by_name("transpose(5)");
  std::size_t panels = 0;
  for (int r = 0; r < 5; ++r) panels += tp->sends(r, stride2(32)).size();
  EXPECT_EQ(panels, 20u);
  EXPECT_EQ(tp->concurrent_senders(), 4);
}

TEST(PatternEngine, PingpongPatternMatchesHarness) {
  // "pingpong" is the §3.2 harness, now a pattern: identical results.
  const auto p = CommPattern::by_name("pingpong");
  minimpi::UniverseOptions opts;
  HarnessConfig cfg;
  cfg.reps = 5;
  const Layout l = stride2(4096);
  const RunResult via_pattern =
      run_pattern_experiment(opts, *p, "packing(v)", l, cfg);
  opts.nranks = 2;
  const RunResult via_harness = run_experiment(opts, "packing(v)", l, cfg);
  EXPECT_EQ(via_pattern.timing.mean, via_harness.timing.mean);
  EXPECT_EQ(via_pattern.timing.stddev, via_harness.timing.stddev);
  EXPECT_EQ(via_pattern.payload_bytes, via_harness.payload_bytes);
  EXPECT_EQ(via_pattern.verified, via_harness.verified);
}

TEST(PatternEngine, FullLegendSupportedUnknownSchemesThrow) {
  // The engine instantiates the real transfer schemes, so the pattern
  // legend is the harness legend: the paper's eight plus the extension
  // schemes.
  const auto& names = pattern_scheme_names();
  EXPECT_EQ(names.size(),
            all_scheme_names().size() + extended_scheme_names().size());
  for (const auto& s : all_scheme_names())
    EXPECT_TRUE(pattern_scheme_supported(s)) << s;
  for (const auto& s : extended_scheme_names())
    EXPECT_TRUE(pattern_scheme_supported(s)) << s;
  EXPECT_TRUE(pattern_scheme_supported("onesided"));
  EXPECT_TRUE(pattern_scheme_supported("packing(p)"));
  EXPECT_FALSE(pattern_scheme_supported("carrier pigeon"));

  const auto halo = CommPattern::by_name("halo2d(2x2)");
  minimpi::UniverseOptions opts;
  HarnessConfig cfg;
  cfg.reps = 1;
  EXPECT_THROW(
      run_pattern_experiment(opts, *halo, "carrier pigeon", stride2(64), cfg),
      minimpi::Error);
}

TEST(PatternEngine, OneSidedFenceEndToEndOnHalo) {
  // Fence-mode RMA inside the N-rank engine: every rank exposes its
  // concatenated ghost regions in one window; puts land at mirrored
  // offsets and must deliver the exact fill pattern.
  const auto halo = CommPattern::by_name("halo2d(2x2)");
  minimpi::UniverseOptions opts;  // default: everything functional
  HarnessConfig cfg;
  cfg.reps = 3;
  const RunResult r =
      run_pattern_experiment(opts, *halo, "onesided", stride2(96), cfg);
  EXPECT_TRUE(r.data_checked);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.payload_bytes, 2u * 96u * 8u);
  EXPECT_GT(r.time(), 0.0);
}

TEST(PatternEngine, OneSidedPscwEndToEndOnTranspose) {
  const auto tp = CommPattern::by_name("transpose(3)");
  minimpi::UniverseOptions opts;
  HarnessConfig cfg;
  cfg.reps = 2;
  const RunResult r =
      run_pattern_experiment(opts, *tp, "onesided-pscw", stride2(64), cfg);
  EXPECT_TRUE(r.data_checked);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.payload_bytes, 2u * 64u * 8u);
}

TEST(PatternEngine, BufferedSharesOneAttachedPoolAcrossTransfers) {
  // A halo interior rank bsends several faces per step out of one
  // rank-wide attached buffer sized by the schemes' attach_bytes sum.
  const auto halo = CommPattern::by_name("halo2d(3x3)");
  minimpi::UniverseOptions opts;
  HarnessConfig cfg;
  cfg.reps = 2;
  const RunResult r =
      run_pattern_experiment(opts, *halo, "buffered", stride2(96), cfg);
  EXPECT_TRUE(r.data_checked);
  EXPECT_TRUE(r.verified);
}

TEST(PatternEngine, PipelinedPackingChunksReassembleOnMultiPair) {
  // 768 KB payloads split into two 512 KB-bounded chunks per transfer;
  // the chunked receives must reassemble the exact bytes.
  const auto mp = CommPattern::by_name("multi-pair(2)");
  minimpi::UniverseOptions opts;
  HarnessConfig cfg;
  cfg.reps = 2;
  const RunResult r =
      run_pattern_experiment(opts, *mp, "packing(p)", stride2(98'304), cfg);
  EXPECT_TRUE(r.data_checked);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.payload_bytes, 98'304u * 8u);
}

TEST(PatternEngine, SendModeVariantsRunUnderCyclicPatterns) {
  // ssend posts issend under the engine (receives drain afterwards),
  // so synchronous handshakes cannot deadlock an all-to-all.
  const auto tp = CommPattern::by_name("transpose(3)");
  minimpi::UniverseOptions opts;
  HarnessConfig cfg;
  cfg.reps = 2;
  for (const char* scheme :
       {"isend(v)", "ssend(v)", "rsend(v)", "persistent(v)"}) {
    const RunResult r =
        run_pattern_experiment(opts, *tp, scheme, stride2(64), cfg);
    EXPECT_TRUE(r.verified) << scheme;
    EXPECT_GT(r.time(), 0.0) << scheme;
  }
}

TEST(PatternEngine, Halo2dEndToEndPayloadVerification) {
  // Functional mode: every face moves for real and every ghost value
  // must match the sender's per-transfer fill pattern.
  const auto halo = CommPattern::by_name("halo2d(3x3)");
  minimpi::UniverseOptions opts;  // default: everything functional
  HarnessConfig cfg;
  cfg.reps = 3;
  const RunResult r =
      run_pattern_experiment(opts, *halo, "copying", stride2(96), cfg);
  EXPECT_TRUE(r.data_checked);
  EXPECT_TRUE(r.verified);
  // Busiest (interior) rank sends 4 faces per step.
  EXPECT_EQ(r.payload_bytes, 4u * 96u * 8u);
  EXPECT_GT(r.time(), 0.0);
}

TEST(PatternEngine, TransposeEndToEndPayloadVerification) {
  const auto tp = CommPattern::by_name("transpose(4)");
  minimpi::UniverseOptions opts;
  HarnessConfig cfg;
  cfg.reps = 2;
  const RunResult r =
      run_pattern_experiment(opts, *tp, "packing(v)", stride2(64), cfg);
  EXPECT_TRUE(r.data_checked);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.payload_bytes, 3u * 64u * 8u);
}

// The §2.5/§2.6 invariant on N-rank cells: a multi-pattern plan must be
// bit-for-bit identical between serial and parallel execution.
TEST(PatternPlan, ParallelMatchesSerialByteForByte) {
  ExperimentPlan plan;
  plan.name = "pattern-test-plan";
  plan.patterns = {"pingpong", "multi-pair(2)", "halo2d(2x2)",
                   "transpose(3)"};
  plan.profiles = {&MachineProfile::skx_impi(), &MachineProfile::knl_impi()};
  plan.schemes = {"reference", "copying", "packing(v)"};
  plan.sizes_bytes = {1024, 16384};
  plan.harness.reps = 3;
  plan.functional_payload_limit = 1 << 12;
  EXPECT_EQ(plan.cell_count(), 4u * 2u * 1u * 2u * 3u);

  const PlanResult serial = run_plan(plan, {1});
  const PlanResult parallel = run_plan(plan, {4});
  ASSERT_EQ(serial.sweeps.size(), 8u);
  ASSERT_EQ(serial.pattern_count, 4u);
  EXPECT_EQ(serial.sweep(2, 0, 0).pattern, "halo2d(2x2)");
  EXPECT_EQ(serial.sweep(2, 0, 0).nranks, 4);
  EXPECT_EQ(serial.sweep(0, 1, 0).profile_name, "knl-impi");

  ASSERT_EQ(parallel.sweeps.size(), serial.sweeps.size());
  for (std::size_t s = 0; s < serial.sweeps.size(); ++s) {
    const SweepResult& a = serial.sweeps[s];
    const SweepResult& b = parallel.sweeps[s];
    EXPECT_EQ(a.pattern, b.pattern);
    for (std::size_t si = 0; si < a.sizes_bytes.size(); ++si)
      for (std::size_t ci = 0; ci < a.schemes.size(); ++ci) {
        EXPECT_EQ(a.cells[si][ci].timing.mean, b.cells[si][ci].timing.mean);
        EXPECT_EQ(a.cells[si][ci].timing.stddev,
                  b.cells[si][ci].timing.stddev);
        EXPECT_EQ(a.cells[si][ci].verified, b.cells[si][ci].verified);
      }
  }
  const auto bytes_of = [](const PlanResult& r) {
    ResultStore store;
    store.add_plan(r);
    std::ostringstream os;
    store.write_bench_pattern_sweep_json(os);
    return os.str();
  };
  EXPECT_EQ(bytes_of(serial), bytes_of(parallel));
}

TEST(PatternSweepWriter, SchemaCarriesPatternAndRankCount) {
  ExperimentPlan plan;
  plan.patterns = {"halo2d(2x2)"};
  plan.schemes = {"reference", "copying"};
  plan.sizes_bytes = {2048};
  plan.harness.reps = 1;
  ResultStore store;
  store.add_plan(run_plan(plan, {2}));
  std::ostringstream os;
  store.write_bench_pattern_sweep_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"benchmark\": \"pattern_sweep\""), std::string::npos);
  EXPECT_NE(out.find("\"pattern\": \"halo2d(2x2)\""), std::string::npos);
  EXPECT_NE(out.find("\"nranks\": 4"), std::string::npos);
  // Busiest-rank traffic rides next to the per-message size label: a
  // 2x2 corner rank sends 2 faces of 2048 B each per step.
  EXPECT_NE(out.find("\"payload_bytes\": [4096]"), std::string::npos);
  EXPECT_NE(out.find("\"sizes_bytes\": [2048]"), std::string::npos);
}

// --- the link-contention model term --------------------------------------

TEST(LinkContention, CostModelScalesWireTimeWithSenders) {
  MachineProfile p = MachineProfile::skx_impi();
  const minimpi::CostModel inert(p, {}, 4);
  EXPECT_EQ(inert.contention_multiplier(), 1.0);  // factor 0: term inert
  p.link_contention_factor = 0.5;
  const minimpi::CostModel one(p, {}, 1);
  const minimpi::CostModel four(p, {}, 4);
  EXPECT_EQ(one.contention_multiplier(), 1.0);
  EXPECT_EQ(four.contention_multiplier(), 2.5);
  EXPECT_EQ(one.wire_time(1'000'000),
            minimpi::CostModel(MachineProfile::skx_impi()).wire_time(1'000'000));
  EXPECT_GT(four.wire_time(1'000'000), one.wire_time(1'000'000));
}

TEST(LinkContention, MultiPairTimesMonotoneWhenEnabled) {
  // With the term parameterized on, concurrent pairs through one NIC
  // are charged honestly: per-pair time grows with the pair count.
  MachineProfile contended = MachineProfile::skx_impi();
  contended.name = "skx-contended";
  contended.link_contention_factor = 0.5;
  minimpi::UniverseOptions opts;
  opts.profile = &contended;
  opts.functional_payload_limit = 1 << 12;
  opts.wtime_resolution = 0.0;
  HarnessConfig cfg;
  cfg.reps = 3;
  cfg.flush = false;
  const Layout l = stride2(125'000);  // 1 MB: wire-dominated
  double prev = 0.0;
  for (const int pairs : {1, 2, 4}) {
    const auto p =
        CommPattern::by_name("multi-pair(" + std::to_string(pairs) + ")");
    const double t =
        run_pattern_experiment(opts, *p, "vector type", l, cfg).time();
    EXPECT_GT(t, prev) << pairs << " pairs";
    prev = t;
  }
}

TEST(LinkContention, OffByDefaultKeepsPairsIdentical) {
  // The canned profiles encode the paper's §4.7 observation: no
  // degradation with every pair active.
  minimpi::UniverseOptions opts;
  opts.functional_payload_limit = 1 << 12;
  opts.wtime_resolution = 0.0;
  HarnessConfig cfg;
  cfg.reps = 3;
  cfg.flush = false;
  const Layout l = stride2(125'000);
  const auto time_for = [&](const char* name) {
    return run_pattern_experiment(opts, *CommPattern::by_name(name),
                                  "vector type", l, cfg)
        .time();
  };
  // Near, not exactly equal: absolute virtual clocks sit at different
  // magnitudes in different-size universes (the pre-loop barrier cost
  // grows with log2(nranks)), so identical per-step charges can round
  // differently in their last ULPs.
  const double one = time_for("multi-pair(1)");
  EXPECT_NEAR(one, time_for("multi-pair(4)"), one * 1e-9);
  EXPECT_NEAR(one, time_for("multi-pair(8)"), one * 1e-9);
}

// --- the paper's ranking carries from ping-pong to halo2d ----------------

TEST(PatternShapes, Halo2dSchemeRankingMatchesPaper) {
  minimpi::UniverseOptions opts;
  opts.functional_payload_limit = 1 << 14;  // mostly modeled: fast
  HarnessConfig cfg;
  cfg.reps = 5;
  const auto halo = CommPattern::by_name("halo2d(3x3)");
  const Layout l = stride2(125'000);  // 1 MB faces

  const auto time_for = [&](const MachineProfile& p, const char* scheme) {
    minimpi::UniverseOptions o = opts;
    o.profile = &p;
    return run_pattern_experiment(o, *halo, scheme, l, cfg).time();
  };
  for (const auto* profile :
       {&MachineProfile::skx_impi(), &MachineProfile::knl_impi()}) {
    const double copying = time_for(*profile, "copying");
    const double packing_v = time_for(*profile, "packing(v)");
    const double packing_e = time_for(*profile, "packing(e)");
    const double vector = time_for(*profile, "vector type");
    // F3 in multi-rank traffic: whole-message packing ~= copying (the
    // winners), element-wise packing far worse.
    EXPECT_LT(packing_v / copying, 1.25) << profile->name;
    EXPECT_GT(packing_v / copying, 0.8) << profile->name;
    EXPECT_GT(packing_e / copying, 2.0) << profile->name;
    // F1: the reasonable schemes cluster.
    EXPECT_LT(vector / copying, 2.0) << profile->name;
  }
  // F7: KNL's weak core amplifies every software-copy scheme.
  const double skx_slowdown =
      time_for(MachineProfile::skx_impi(), "copying") /
      time_for(MachineProfile::skx_impi(), "reference");
  const double knl_slowdown =
      time_for(MachineProfile::knl_impi(), "copying") /
      time_for(MachineProfile::knl_impi(), "reference");
  EXPECT_GT(knl_slowdown, skx_slowdown);
}

// --- the shared CLI's --pattern flag -------------------------------------

TEST(BenchCliPattern, AcceptsAndCanonicalizes) {
  const char* argv[] = {"bench", "--pattern", "halo2d", "--pattern",
                        "multi-pair(2)"};
  std::string error;
  const auto cli = BenchCli::try_parse(5, const_cast<char**>(argv), &error);
  ASSERT_TRUE(cli.has_value()) << error;
  ASSERT_EQ(cli->patterns.size(), 2u);
  EXPECT_EQ(cli->patterns[0], "halo2d(3x3)");  // canonical id recorded
  EXPECT_EQ(cli->patterns[1], "multi-pair(2)");
}

TEST(BenchCliPattern, RejectsUnknownPatternsAndMissingValue) {
  std::string error;
  {
    const char* argv[] = {"bench", "--pattern", "frobnicate"};
    EXPECT_FALSE(
        BenchCli::try_parse(3, const_cast<char**>(argv), &error).has_value());
    EXPECT_NE(error.find("unknown communication pattern"), std::string::npos);
  }
  {
    const char* argv[] = {"bench", "--pattern"};
    EXPECT_FALSE(
        BenchCli::try_parse(2, const_cast<char**>(argv), &error).has_value());
  }
}

}  // namespace
