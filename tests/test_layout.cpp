// Layout generators: geometry, datatype styles, element enumeration.
#include <gtest/gtest.h>

#include "ncsend/layout.hpp"

using namespace ncsend;

namespace {

TEST(StridedLayout, CanonicalPaperCase) {
  const Layout l = Layout::strided(100, 1, 2);
  EXPECT_EQ(l.element_count(), 100u);
  EXPECT_EQ(l.payload_bytes(), 800u);
  EXPECT_EQ(l.footprint_elems(), 199u);
  EXPECT_TRUE(l.regular());
  EXPECT_FALSE(l.is_contiguous());
}

TEST(StridedLayout, AllStylesDescribeSameBytes) {
  const Layout l = Layout::strided(16, 2, 5);
  for (const TypeStyle s :
       {TypeStyle::vector, TypeStyle::subarray, TypeStyle::indexed}) {
    const auto t = l.datatype(s);
    EXPECT_EQ(t.size(), l.payload_bytes()) << static_cast<int>(s);
    EXPECT_TRUE(t.committed());
    // Same flattened offsets in the same order for every style.
    std::vector<std::ptrdiff_t> offsets;
    minimpi::for_each_block(t, 1, [&](std::ptrdiff_t off, std::size_t n) {
      offsets.push_back(off);
      EXPECT_EQ(n, 16u);  // blocklen 2 doubles
    });
    ASSERT_EQ(offsets.size(), 16u);
    for (std::size_t i = 0; i < 16; ++i)
      EXPECT_EQ(offsets[i], static_cast<std::ptrdiff_t>(i * 5 * 8));
  }
}

TEST(StridedLayout, BlockStatsMatchParameters) {
  const Layout l = Layout::strided(64, 4, 10);
  const auto s = l.stats();
  EXPECT_EQ(s.block_count, 64u);
  EXPECT_EQ(s.min_block, 32u);
  EXPECT_EQ(s.total_bytes, 64u * 32);
}

TEST(StridedLayout, InvalidParamsThrow) {
  EXPECT_THROW((void)Layout::strided(10, 4, 2), minimpi::Error);
  EXPECT_THROW((void)Layout::strided(10, 0, 2), minimpi::Error);
}

TEST(ContiguousLayout, SingleBlock) {
  const Layout l = Layout::contiguous(50);
  EXPECT_TRUE(l.is_contiguous());
  EXPECT_EQ(l.stats().block_count, 1u);
  EXPECT_EQ(l.footprint_elems(), 50u);
}

TEST(MultigridLayout, PowerOfTwoStride) {
  const Layout l = Layout::multigrid(32, 3);
  EXPECT_EQ(l.element_count(), 32u);
  EXPECT_EQ(l.footprint_elems(), 31u * 8 + 1);
  std::size_t k = 0;
  l.for_each_element([&](std::size_t idx, std::size_t src) {
    EXPECT_EQ(idx, k);
    EXPECT_EQ(src, k * 8);
    ++k;
  });
  EXPECT_EQ(k, 32u);
}

TEST(FemBoundaryLayout, DeterministicSortedDistinct) {
  const Layout a = Layout::fem_boundary(128, 10000, 7);
  const Layout b = Layout::fem_boundary(128, 10000, 7);
  EXPECT_EQ(a.element_count(), 128u);
  EXPECT_FALSE(a.regular());
  std::vector<std::size_t> sa, sb;
  a.for_each_element([&](std::size_t, std::size_t s) { sa.push_back(s); });
  b.for_each_element([&](std::size_t, std::size_t s) { sb.push_back(s); });
  EXPECT_EQ(sa, sb);  // same seed, same boundary
  for (std::size_t i = 1; i < sa.size(); ++i) EXPECT_GT(sa[i], sa[i - 1]);
  const Layout c = Layout::fem_boundary(128, 10000, 8);
  std::vector<std::size_t> sc;
  c.for_each_element([&](std::size_t, std::size_t s) { sc.push_back(s); });
  EXPECT_NE(sa, sc);  // different seed, different boundary
}

TEST(FemBoundaryLayout, VectorStyleRejected) {
  const Layout l = Layout::fem_boundary(16, 100);
  EXPECT_THROW((void)l.datatype(TypeStyle::vector), minimpi::Error);
  EXPECT_EQ(l.datatype(TypeStyle::indexed).size(), 16u * 8);
}

TEST(Subarray2dLayout, FaceGeometry) {
  const Layout l = Layout::subarray2d(8, 10, 3, 4, 2, 5);
  EXPECT_EQ(l.element_count(), 12u);
  EXPECT_EQ(l.footprint_elems(), 80u);
  std::vector<std::size_t> srcs;
  l.for_each_element([&](std::size_t, std::size_t s) { srcs.push_back(s); });
  ASSERT_EQ(srcs.size(), 12u);
  EXPECT_EQ(srcs[0], 2u * 10 + 5);
  EXPECT_EQ(srcs[4], 3u * 10 + 5);  // next row
}

TEST(Subarray2dLayout, StylesAgree) {
  const Layout l = Layout::subarray2d(6, 8, 2, 3, 1, 2);
  std::vector<std::ptrdiff_t> ref, alt;
  minimpi::for_each_block(l.datatype(TypeStyle::subarray), 1,
                          [&](std::ptrdiff_t o, std::size_t) {
                            ref.push_back(o);
                          });
  for (const TypeStyle s : {TypeStyle::vector, TypeStyle::indexed}) {
    alt.clear();
    minimpi::for_each_block(l.datatype(s), 1,
                            [&](std::ptrdiff_t o, std::size_t) {
                              alt.push_back(o);
                            });
    EXPECT_EQ(ref, alt) << static_cast<int>(s);
  }
}

TEST(IndexedLayout, OverlapRejected) {
  EXPECT_THROW((void)Layout::indexed({0, 1}, 2), minimpi::Error);
  EXPECT_NO_THROW((void)Layout::indexed({0, 2}, 2));
}

TEST(Layout, NamesAreDescriptive) {
  EXPECT_NE(Layout::strided(4, 1, 2).name().find("strided"),
            std::string::npos);
  EXPECT_NE(Layout::multigrid(4, 2).name().find("multigrid"),
            std::string::npos);
  EXPECT_NE(Layout::fem_boundary(4, 100).name().find("fem"),
            std::string::npos);
}

}  // namespace
