// Two-sided point-to-point: delivery, matching rules, datatypes on the
// wire, protocol timing, wildcards, errors.
#include <gtest/gtest.h>

#include <numeric>

#include "minimpi/minimpi.hpp"

using namespace minimpi;

namespace {

UniverseOptions two_ranks() {
  UniverseOptions o;
  o.nranks = 2;
  o.wtime_resolution = 0.0;  // exact clocks for assertions
  return o;
}

TEST(P2P, ContiguousDoublesDelivered) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> data(64);
    if (c.rank() == 0) {
      std::iota(data.begin(), data.end(), 100.0);
      c.send(std::span<const double>(data), 1, 5);
    } else {
      Status st = c.recv(std::span<double>(data), 0, 5);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 5);
      EXPECT_EQ(st.count_bytes, 64u * 8);
      EXPECT_EQ(st.count(sizeof(double)), 64u);
      for (int i = 0; i < 64; ++i) EXPECT_EQ(data[i], 100.0 + i);
    }
  });
}

TEST(P2P, StridedDatatypeGathersOnTheWire) {
  Universe::run(two_ranks(), [](Comm& c) {
    Datatype vec = Datatype::vector(8, 1, 2, Datatype::float64());
    vec.commit();
    if (c.rank() == 0) {
      std::vector<double> src(16);
      std::iota(src.begin(), src.end(), 0.0);
      c.send(src.data(), 1, vec, 1, 0);
    } else {
      std::vector<double> dst(8, -1.0);
      c.recv(dst.data(), 8, Datatype::float64(), 0, 0);
      for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], 2.0 * i);
    }
  });
}

TEST(P2P, StridedReceiveScatters) {
  Universe::run(two_ranks(), [](Comm& c) {
    Datatype vec = Datatype::vector(8, 1, 3, Datatype::float64());
    vec.commit();
    if (c.rank() == 0) {
      std::vector<double> src(8);
      std::iota(src.begin(), src.end(), 1.0);
      c.send(src.data(), 8, Datatype::float64(), 1, 0);
    } else {
      std::vector<double> dst(24, 0.0);
      c.recv(dst.data(), 1, vec, 0, 0);
      for (int i = 0; i < 24; ++i)
        EXPECT_EQ(dst[i], i % 3 == 0 ? 1.0 + i / 3 : 0.0);
    }
  });
}

TEST(P2P, NonOvertakingSameSource) {
  Universe::run(two_ranks(), [](Comm& c) {
    if (c.rank() == 0) {
      const double a = 1.0, b = 2.0;
      c.send(&a, 1, Datatype::float64(), 1, 7);
      c.send(&b, 1, Datatype::float64(), 1, 7);
    } else {
      double x = 0.0, y = 0.0;
      c.recv(&x, 1, Datatype::float64(), 0, 7);
      c.recv(&y, 1, Datatype::float64(), 0, 7);
      EXPECT_EQ(x, 1.0);
      EXPECT_EQ(y, 2.0);
    }
  });
}

TEST(P2P, TagSelectionSkipsNonMatching) {
  Universe::run(two_ranks(), [](Comm& c) {
    if (c.rank() == 0) {
      const double a = 1.0, b = 2.0;
      c.send(&a, 1, Datatype::float64(), 1, 10);
      c.send(&b, 1, Datatype::float64(), 1, 20);
    } else {
      double x = 0.0;
      c.recv(&x, 1, Datatype::float64(), 0, 20);
      EXPECT_EQ(x, 2.0);
      c.recv(&x, 1, Datatype::float64(), 0, 10);
      EXPECT_EQ(x, 1.0);
    }
  });
}

TEST(P2P, Wildcards) {
  UniverseOptions o;
  o.nranks = 3;
  Universe::run(o, [](Comm& c) {
    if (c.rank() != 0) {
      const double v = c.rank() * 10.0;
      c.send(&v, 1, Datatype::float64(), 0, c.rank());
    } else {
      double sum = 0.0;
      for (int i = 0; i < 2; ++i) {
        double v = 0.0;
        Status st = c.recv(&v, 1, Datatype::float64(), any_source, any_tag);
        EXPECT_EQ(st.tag, st.source);
        sum += v;
      }
      EXPECT_EQ(sum, 30.0);
    }
  });
}

TEST(P2P, TruncationThrows) {
  // Single-rank self-send so the throw happens on the only thread.
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    std::vector<double> big(16, 1.0);
    c.send(big.data(), 16, Datatype::float64(), 0, 0);
    std::vector<double> small(8);
    try {
      c.recv(small.data(), 8, Datatype::float64(), 0, 0);
      FAIL() << "expected truncation error";
    } catch (const Error& e) {
      EXPECT_EQ(e.error_class(), ErrorClass::truncate);
    }
  });
}

TEST(P2P, TypeMismatchDetected) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    const double x = 1.0;
    c.send(&x, 1, Datatype::float64(), 0, 0);
    std::int32_t out[2];
    try {
      c.recv(out, 2, Datatype::int32(), 0, 0);
      FAIL() << "expected type mismatch";
    } catch (const Error& e) {
      EXPECT_EQ(e.error_class(), ErrorClass::type_mismatch);
    }
  });
}

TEST(P2P, PackedBytesMatchTypedReceive) {
  Universe::run(two_ranks(), [](Comm& c) {
    if (c.rank() == 0) {
      Datatype vec = Datatype::vector(4, 1, 2, Datatype::float64());
      vec.commit();
      std::vector<double> src{0, 9, 1, 9, 2, 9, 3, 9};
      std::vector<std::byte> packed(32);
      std::size_t pos = 0;
      pack(src.data(), 1, vec, packed.data(), packed.size(), pos);
      c.send(packed.data(), pos, Datatype::packed(), 1, 0);
    } else {
      std::vector<double> dst(4);
      c.recv(dst.data(), 4, Datatype::float64(), 0, 0);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], i);
    }
  });
}

TEST(P2P, InvalidArgumentsThrow) {
  UniverseOptions o;
  o.nranks = 1;
  Universe::run(o, [](Comm& c) {
    const double x = 0.0;
    EXPECT_THROW(c.send(&x, 1, Datatype::float64(), 5, 0), Error);
    EXPECT_THROW(c.send(&x, 1, Datatype::float64(), 0, -3), Error);
    Datatype uncommitted = Datatype::vector(2, 1, 2, Datatype::float64());
    EXPECT_THROW(c.send(&x, 1, uncommitted, 0, 0), Error);
  });
}

TEST(P2P, ClockAdvancesMonotonically) {
  Universe::run(two_ranks(), [](Comm& c) {
    std::vector<double> buf(128);
    const double t0 = c.clock();
    for (int i = 0; i < 5; ++i) {
      if (c.rank() == 0) {
        c.send(buf.data(), buf.size(), Datatype::float64(), 1, 0);
        c.recv(buf.data(), buf.size(), Datatype::float64(), 1, 1);
      } else {
        c.recv(buf.data(), buf.size(), Datatype::float64(), 0, 0);
        c.send(buf.data(), buf.size(), Datatype::float64(), 0, 1);
      }
    }
    EXPECT_GT(c.clock(), t0);
  });
}

TEST(P2P, PingPongTimeIsDeterministic) {
  // The same experiment must produce bit-identical virtual times: the
  // whole point of the simulated clock.
  auto measure = [] {
    double elapsed = 0.0;
    Universe::run(two_ranks(), [&](Comm& c) {
      std::vector<double> buf(1024);
      if (c.rank() == 0) {
        const double t0 = c.clock();
        c.send(buf.data(), buf.size(), Datatype::float64(), 1, 0);
        c.recv(nullptr, 0, Datatype::byte(), 1, 1);
        elapsed = c.clock() - t0;
      } else {
        c.recv(buf.data(), buf.size(), Datatype::float64(), 0, 0);
        c.send(nullptr, 0, Datatype::byte(), 0, 1);
      }
    });
    return elapsed;
  };
  const double a = measure();
  const double b = measure();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

TEST(P2P, RendezvousSlowerJustAboveEagerLimit) {
  const auto& p = MachineProfile::skx_impi();
  auto pingpong_time = [&](std::size_t bytes) {
    double elapsed = 0.0;
    UniverseOptions o = two_ranks();
    Universe::run(o, [&](Comm& c) {
      std::vector<double> buf(bytes / 8);
      if (c.rank() == 0) {
        const double t0 = c.clock();
        c.send(buf.data(), buf.size(), Datatype::float64(), 1, 0);
        c.recv(nullptr, 0, Datatype::byte(), 1, 1);
        elapsed = c.clock() - t0;
      } else {
        c.recv(buf.data(), buf.size(), Datatype::float64(), 0, 0);
        c.send(nullptr, 0, Datatype::byte(), 0, 1);
      }
    });
    return elapsed;
  };
  const double just_under = pingpong_time(p.eager_limit_bytes);
  const double just_over = pingpong_time(p.eager_limit_bytes + 8);
  // Per-byte time dips right above the limit (the handshake).
  EXPECT_GT(just_over, just_under);
}

TEST(P2P, SendrecvDoesNotDeadlock) {
  Universe::run(two_ranks(), [](Comm& c) {
    // Rendezvous-sized messages in both directions simultaneously.
    std::vector<double> out(1 << 15, c.rank() + 1.0);
    std::vector<double> in(1 << 15);
    const Rank peer = 1 - c.rank();
    c.sendrecv(out.data(), out.size(), Datatype::float64(), peer, 0,
               in.data(), in.size(), Datatype::float64(), peer, 0);
    EXPECT_EQ(in[0], peer + 1.0);
    EXPECT_EQ(in.back(), peer + 1.0);
  });
}

TEST(P2P, WtimeQuantization) {
  UniverseOptions o;
  o.nranks = 1;
  o.wtime_resolution = 1e-6;
  Universe::run(o, [](Comm& c) {
    c.charge(3.7e-6);
    EXPECT_DOUBLE_EQ(c.wtime(), 3e-6);
    EXPECT_DOUBLE_EQ(c.clock(), 3.7e-6);
    EXPECT_DOUBLE_EQ(c.wtick(), 1e-6);
  });
}

}  // namespace
