// Aligned/phantom buffer semantics.
#include <gtest/gtest.h>

#include <cstdint>

#include "minimpi/base/buffer.hpp"

using namespace minimpi;

namespace {

TEST(Buffer, RealAllocationIsAlignedAndZeroed) {
  auto b = Buffer::allocate(1000);
  ASSERT_NE(b.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % buffer_alignment,
            0u);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_FALSE(b.is_phantom());
  for (const double d : b.as<double>()) EXPECT_EQ(d, 0.0);
}

TEST(Buffer, PhantomRecordsSizeOnly) {
  auto b = Buffer::allocate(std::size_t{1} << 40, /*real=*/false);
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(b.size(), std::size_t{1} << 40);
  EXPECT_TRUE(b.is_phantom());
  EXPECT_THROW((void)b.as<double>(), Error);
  b.zero();  // no-op, must not crash
}

TEST(Buffer, EmptyIsNeitherRealNorPhantom) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.is_phantom());
  EXPECT_EQ(b.data(), nullptr);
}

TEST(Buffer, TypedViewCoversWholeBuffer) {
  auto b = Buffer::allocate(64);
  auto d = b.as<double>();
  EXPECT_EQ(d.size(), 8u);
  d[7] = 3.5;
  EXPECT_EQ(b.as<double>()[7], 3.5);
  b.zero();
  EXPECT_EQ(b.as<double>()[7], 0.0);
}

TEST(Buffer, MoveTransfersOwnership) {
  auto a = Buffer::allocate(64);
  a.as<double>()[0] = 1.0;
  Buffer b = std::move(a);
  EXPECT_EQ(b.as<double>()[0], 1.0);
  EXPECT_EQ(b.size(), 64u);
}

TEST(Buffer, OddSizesRoundUpAllocationNotSize) {
  auto b = Buffer::allocate(13);
  EXPECT_EQ(b.size(), 13u);
  ASSERT_NE(b.data(), nullptr);
}

}  // namespace
