// The indexed (src, tag)-bucket mailbox: MPI matching semantics must
// survive the move from one linear deque to per-bucket FIFOs — wildcard
// receives still take the globally earliest arrival, per-source order
// is still non-overtaking, and probe peeks exactly the envelope the
// next receive takes.  Direct Mailbox unit tests cover the bucket
// accounting; universe tests cover the end-to-end semantics under the
// cooperative scheduler's deterministic arrival order.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "minimpi/minimpi.hpp"
#include "minimpi/runtime/matching.hpp"

using namespace minimpi;

namespace {

detail::EnvRef make_env(Rank src, Tag tag) {
  // Standalone (pool-less) envelopes: the handle deletes the node when
  // the last reference drops (pool.hpp).
  detail::EnvRef e{new detail::Envelope};
  e->src = src;
  e->tag = tag;
  return e;
}

TEST(MailboxIndex, ExactMatchSkipsEarlierNonMatchingEnvelopes) {
  detail::Mailbox mb;
  mb.push(make_env(1, 5));
  mb.push(make_env(1, 6));
  mb.push(make_env(2, 5));
  // A fully-addressed match takes from its own bucket, leaving earlier
  // arrivals for other (src, tag) pairs queued.
  auto got = mb.try_match(1, 6);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->src, 1);
  EXPECT_EQ(got->tag, 6);
  EXPECT_EQ(mb.pending(), 2u);
  EXPECT_EQ(mb.pending(1, 5), 1u);
  EXPECT_EQ(mb.pending(1, 6), 0u);
  EXPECT_EQ(mb.pending(2, 5), 1u);
}

TEST(MailboxIndex, WildcardTakesGloballyEarliestArrival) {
  detail::Mailbox mb;
  mb.push(make_env(3, 9));
  mb.push(make_env(1, 5));
  mb.push(make_env(2, 7));
  // any_source/any_tag drains in arrival order across buckets, exactly
  // as the old linear scan did.
  const Rank order[] = {3, 1, 2};
  for (const Rank expect : order) {
    auto got = mb.try_match(any_source, any_tag);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->src, expect);
  }
  EXPECT_EQ(mb.try_match(any_source, any_tag), nullptr);
}

TEST(MailboxIndex, WildcardSourceRespectsTagFilter) {
  detail::Mailbox mb;
  mb.push(make_env(1, 5));
  mb.push(make_env(2, 6));
  mb.push(make_env(3, 5));
  auto got = mb.try_match(any_source, 6);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->src, 2);
  // Earliest arrival among the tag-5 buckets is rank 1's.
  got = mb.try_match(any_source, 5);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->src, 1);
}

TEST(MailboxIndex, PendingCountsStayConsistentAcrossBuckets) {
  detail::Mailbox mb;
  for (int i = 0; i < 4; ++i) mb.push(make_env(1, 5));
  for (int i = 0; i < 3; ++i) mb.push(make_env(2, 5));
  mb.push(make_env(1, 8));
  EXPECT_EQ(mb.pending(), 8u);
  EXPECT_EQ(mb.pending(1, 5), 4u);
  EXPECT_EQ(mb.pending(2, 5), 3u);
  EXPECT_EQ(mb.pending(any_source, 5), 7u);
  EXPECT_EQ(mb.pending(1, any_tag), 5u);
  EXPECT_EQ(mb.pending(any_source, any_tag), 8u);
  (void)mb.try_match(1, 5);
  (void)mb.try_match(any_source, any_tag);  // takes rank 1's next tag-5
  EXPECT_EQ(mb.pending(), 6u);
  EXPECT_EQ(mb.pending(1, 5), 2u);
}

TEST(MailboxIndex, PeekReturnsExactlyWhatMatchTakes) {
  detail::Mailbox mb;
  mb.push(make_env(2, 5));
  mb.push(make_env(1, 5));
  auto peeked = mb.try_peek(any_source, 5);
  ASSERT_NE(peeked, nullptr);
  auto taken = mb.try_match(any_source, 5);
  EXPECT_EQ(peeked.get(), taken.get());
  EXPECT_EQ(taken->src, 2);
}

TEST(MatchingSemantics, WildcardReceivesArriveInDeterministicSendOrder) {
  // Ranks 1..3 each send one eager message before the barrier; under
  // the cooperative scheduler they run (and push) in spawn order, so
  // rank 0's wildcard drain must see sources 1, 2, 3.
  UniverseOptions o;
  o.nranks = 4;
  Universe::run(o, [](Comm& c) {
    if (c.rank() != 0) {
      const double v = c.rank();
      c.send(&v, 1, Datatype::float64(), 0, 3);
    }
    c.barrier();
    if (c.rank() == 0) {
      for (Rank expect = 1; expect <= 3; ++expect) {
        double v = 0.0;
        const Status st =
            c.recv(&v, 1, Datatype::float64(), any_source, any_tag);
        EXPECT_EQ(st.source, expect);
        EXPECT_EQ(v, static_cast<double>(expect));
      }
    }
  });
}

TEST(MatchingSemantics, AnyTagKeepsPerSourceProgramOrder) {
  // One sender, three different tags: tag buckets split the envelopes,
  // but an any_tag drain must still see the sender's program order.
  UniverseOptions o;
  o.nranks = 2;
  Universe::run(o, [](Comm& c) {
    const Tag tags[] = {9, 4, 7};
    if (c.rank() == 1) {
      for (const Tag t : tags) {
        const double v = t;
        c.send(&v, 1, Datatype::float64(), 0, t);
      }
    } else {
      c.barrier();
      for (const Tag expect : tags) {
        double v = 0.0;
        const Status st = c.recv(&v, 1, Datatype::float64(), 1, any_tag);
        EXPECT_EQ(st.tag, expect);
      }
    }
    if (c.rank() == 1) c.barrier();
  });
}

TEST(MatchingSemantics, InterleavedSendersKeepPerSourceFifo) {
  // Ranks 1 and 2 interleave 50 same-tag messages each; fully-addressed
  // receives must drain each source in its own program order no matter
  // how the pushes interleaved in the shared mailbox.
  UniverseOptions o;
  o.nranks = 3;
  Universe::run(o, [](Comm& c) {
    constexpr int msgs = 50;
    if (c.rank() != 0) {
      for (int m = 0; m < msgs; ++m) {
        const double v = c.rank() * 1000 + m;
        c.send(&v, 1, Datatype::float64(), 0, 3);
      }
    }
    c.barrier();
    if (c.rank() == 0) {
      for (int m = 0; m < msgs; ++m) {
        for (Rank src = 1; src <= 2; ++src) {
          double v = 0.0;
          c.recv(&v, 1, Datatype::float64(), src, 3);
          EXPECT_EQ(v, src * 1000.0 + m);
        }
      }
    }
  });
}

TEST(MatchingSemantics, ProbeSeesTheEnvelopeTheNextRecvTakes) {
  UniverseOptions o;
  o.nranks = 3;
  Universe::run(o, [](Comm& c) {
    if (c.rank() != 0) {
      const std::vector<double> v(static_cast<std::size_t>(c.rank()), 1.0);
      c.send(v.data(), v.size(), Datatype::float64(), 0,
             static_cast<Tag>(10 + c.rank()));
    }
    c.barrier();
    if (c.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        const Status probed = c.probe(any_source, any_tag);
        std::vector<double> buf(probed.count_bytes / sizeof(double));
        const Status got = c.recv(buf.data(), buf.size(),
                                  Datatype::float64(), any_source, any_tag);
        EXPECT_EQ(got.source, probed.source);
        EXPECT_EQ(got.tag, probed.tag);
        EXPECT_EQ(got.count_bytes, probed.count_bytes);
      }
    }
  });
}

TEST(MatchingSemantics, IprobeAgreesWithProbeAndRecv) {
  UniverseOptions o;
  o.nranks = 2;
  Universe::run(o, [](Comm& c) {
    if (c.rank() == 1) {
      const double v = 42.0;
      c.send(&v, 1, Datatype::float64(), 0, 6);
      c.barrier();
    } else {
      c.barrier();  // the message is queued once the barrier releases
      const auto st = c.iprobe(any_source, any_tag);
      ASSERT_TRUE(st.has_value());
      EXPECT_EQ(st->source, 1);
      EXPECT_EQ(st->tag, 6);
      double v = 0.0;
      const Status got =
          c.recv(&v, 1, Datatype::float64(), st->source, st->tag);
      EXPECT_EQ(got.source, st->source);
      EXPECT_EQ(v, 42.0);
      EXPECT_FALSE(c.iprobe(any_source, any_tag).has_value());
    }
  });
}

}  // namespace
